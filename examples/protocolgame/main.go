// Protocolgame plays the protocol-selection game behind the friendliness
// axioms: senders on a shared bottleneck each pick a protocol; payoffs
// are the goodputs (or loss-penalized utilities) the joint choice
// produces. It shows why TCP-friendliness does not survive contact with
// incentives — defecting to an aggressive protocol always pays — and
// when the resulting race to the bottom actually hurts (loss-sensitive
// traffic) versus when it is merely rude (bulk transfer on deep buffers).
//
//	go run ./examples/protocolgame
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
	"repro/internal/game"
)

func main() {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	menu := []axiomcc.Protocol{axiomcc.Reno(), axiomcc.DefaultPCC()}
	g, err := game.New(cfg, menu, 2, 3000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("menu:", g.Menu())
	fmt.Println("\n--- all-Reno profile (cooperative) ---")
	out, err := g.RenderProfile([]int{0, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	nash, dev, err := g.IsNash([]int{0, 0}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equilibrium? %v", nash)
	if dev != nil {
		fmt.Printf(" — player %d gains %.0f MSS/s by switching to %s\n",
			dev.Player, dev.Gain, g.Menu()[dev.To])
	} else {
		fmt.Println()
	}

	fmt.Println("\n--- best-response dynamics from all-Reno ---")
	final, converged, err := g.BestResponseDynamics([]int{0, 0}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v, final profile: ", converged)
	for _, s := range final {
		fmt.Printf("[%s] ", g.Menu()[s])
	}
	fmt.Println("\n\n--- the equilibrium (race to the bottom) ---")
	out, err = g.RenderProfile(final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// With goodput payoffs the race costs little; for loss-sensitive
	// traffic it is a genuine prisoner's dilemma.
	wCoop, _ := g.SocialWelfare([]int{0, 0})
	wEq, _ := g.SocialWelfare(final)
	fmt.Printf("\ngoodput welfare: cooperative %.0f vs equilibrium %.0f\n", wCoop, wEq)

	g.SetPayoff(game.LossSensitivePayoff(100))
	wCoopLS, _ := g.SocialWelfare([]int{0, 0})
	wEqLS, _ := g.SocialWelfare(final)
	fmt.Printf("loss-sensitive welfare (λ=100): cooperative %.0f vs equilibrium %.0f\n", wCoopLS, wEqLS)
	fmt.Println("\nfor loss-sensitive applications the equilibrium is strictly worse for")
	fmt.Println("everyone — the prisoner's dilemma of congestion control. The axioms'")
	fmt.Println("TCP-friendliness scores are exactly these defection incentives, measured.")
}
