// Paretodesign walks the protocol-design workflow of Section 5.2: treat
// candidate protocols as points in the axiom space, prune the dominated
// ones, and pick a Pareto-optimal design matching your priorities — here,
// "as TCP-friendly as possible subject to utilizing spare bandwidth at
// ≥ 1 MSS/RTT and ≥ 60% efficiency".
//
//	go run ./examples/paretodesign
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
)

func main() {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	opt := axiomcc.MetricOptions{Steps: 2500}

	// Candidate designs: a spread of AIMD parameterizations plus the
	// paper's named protocols.
	candidates := []axiomcc.Protocol{
		axiomcc.Reno(),
		axiomcc.NewAIMD(2, 0.5),
		axiomcc.NewAIMD(1, 0.8),
		axiomcc.NewAIMD(0.5, 0.7),
		axiomcc.Scalable(),
		axiomcc.CubicLinux(),
		axiomcc.SQRT(),
		axiomcc.NewRobustAIMD(1, 0.8, 0.01),
	}

	// Measure every candidate's full 8-tuple and embed it as a point in
	// the (higher-is-better) oriented score space. CharacterizeAll shares
	// one run-dedup session across the whole menu, so runs common to
	// several candidates simulate once.
	fmt.Println("measuring candidates on a 20 Mbps / 42 ms / 20-MSS-buffer link...")
	points, scores, err := axiomcc.CharacterizeAll(cfg, candidates, 2, opt)
	if err != nil {
		log.Fatal(err)
	}
	byName := map[string]axiomcc.MetricScores{}
	for i, p := range candidates {
		byName[p.Name()] = scores[i]
		fmt.Printf("  %-24s %s\n", p.Name(), scores[i])
	}

	// Prune dominated designs.
	frontier := axiomcc.Frontier(points)
	fmt.Printf("\nPareto frontier (%d of %d candidates survive):\n", len(frontier), len(points))
	for _, p := range frontier {
		fmt.Printf("  %s\n", p.Label)
	}

	// Apply the design constraints and pick the friendliest survivor.
	fmt.Println("\nconstraints: fast-utilization ≥ 1, efficiency ≥ 0.6; objective: max TCP-friendliness")
	best := ""
	bestFriendly := -1.0
	for _, p := range frontier {
		s := byName[p.Label]
		if s.FastUtilization >= 0.95 && s.Efficiency >= 0.6 && s.TCPFriendliness > bestFriendly {
			best, bestFriendly = p.Label, s.TCPFriendliness
		}
	}
	if best == "" {
		fmt.Println("no candidate satisfies the constraints")
		return
	}
	fmt.Printf("selected design: %s (measured TCP-friendliness %.3f)\n", best, bestFriendly)

	// Theorem 2 tells us how much friendliness the constraints leave on
	// the table.
	fmt.Printf("Theorem 2 ceiling at (α=1, β=0.6): %.3f — the selected design %s it\n",
		axiomcc.Theorem2Bound(1, 0.6),
		map[bool]string{true: "attains", false: "approaches"}[bestFriendly >= axiomcc.Theorem2Bound(1, 0.6)*0.9])
}
