// Friendliness replays the Table 2 story: when a modern loss-rate-
// tolerant protocol shares a bottleneck with legacy TCP Reno, how badly
// does Reno fare? The paper's answer: Robust-AIMD — an AIMD rule driven by
// monitor-interval loss rates — is consistently >1.5× friendlier to Reno
// than PCC while keeping most of PCC's robustness.
//
// The example runs one Table 2 cell at packet granularity and prints each
// flow's throughput share, then sweeps the cell over bandwidths.
//
//	go run ./examples/friendliness
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
)

func share(cfg axiomcc.PacketConfig, aggressor axiomcc.Protocol) (agg, reno float64) {
	res, err := axiomcc.RunPacketLevel(cfg, []axiomcc.PacketFlow{
		{Proto: aggressor, Init: 1},
		{Proto: axiomcc.Reno(), Init: 1},
	}, 60)
	if err != nil {
		log.Fatal(err)
	}
	return res.Throughput(0, 0.5), res.Throughput(1, 0.5)
}

func main() {
	raimd := axiomcc.NewRobustAIMD(1, 0.8, 0.01)
	pcc := axiomcc.DefaultPCC()

	fmt.Println("one protocol flow vs one TCP Reno flow, 42 ms RTT, 100-MSS buffer, 60 s")
	fmt.Printf("%6s | %28s | %28s | improvement\n", "Mbps", "Robust-AIMD(1,0.8,0.01) cell", "PCC cell")
	for _, mbps := range []float64{20, 30, 60, 100} {
		cfg := axiomcc.PacketConfig{
			Bandwidth: axiomcc.MbpsToMSSps(mbps),
			PropDelay: 0.021,
			Buffer:    100,
		}
		raThr, renoVsRA := share(cfg, raimd)
		pccThr, renoVsPCC := share(cfg, pcc)
		fRA := renoVsRA / raThr
		fPCC := renoVsPCC / pccThr
		fmt.Printf("%6.0f | reno/ra = %5.1f/%6.1f = %.3f | reno/pcc = %4.1f/%6.1f = %.3f | %5.2fx\n",
			mbps, renoVsRA, raThr, fRA, renoVsPCC, pccThr, fPCC, fRA/fPCC)
	}

	fmt.Println("\nfriendliness = Reno's throughput relative to the competitor's (Metric VII);")
	fmt.Println("the final column is Robust-AIMD's improvement over PCC — the paper's Table 2.")
	fmt.Println("\nTheory: Theorem 3 caps the TCP-friendliness of any ε-robust loss-based")
	fmt.Printf("protocol; at ε=0.01 on the 20 Mbps link the ceiling is %.5f, and the\n",
		axiomcc.Theorem3Bound(1, 0.8, 0.01, axiomcc.MbpsToMSSps(20)*0.042, 100))
	fmt.Println("non-robust Theorem 2 ceiling for the same AIMD(1,0.8) is 0.333 — robustness")
	fmt.Println("is paid for in friendliness, but far less than PCC pays.")
}
