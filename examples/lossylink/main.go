// Lossylink reproduces the scenario that motivates both PCC and the
// paper's robustness axiom (Metric VI): a link whose packets are dropped
// at random — wireless corruption, a flaky middlebox — independent of
// congestion. Loss-based TCP collapses because it reads every drop as
// congestion; protocols that tolerate a bounded loss *rate* (Robust-AIMD,
// PCC) keep the pipe full.
//
// The example runs at packet granularity on the event-driven testbed, then
// cross-checks with the fluid model's robustness scores.
//
//	go run ./examples/lossylink
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
)

func main() {
	const mbps = 20.0
	cfg := axiomcc.PacketConfig{
		Bandwidth:  axiomcc.MbpsToMSSps(mbps),
		PropDelay:  0.021,
		Buffer:     100,
		RandomLoss: 0.005, // 0.5% of packets vanish at random
		Seed:       42,
	}
	fmt.Printf("20 Mbps link, 42 ms RTT, 0.5%% random (non-congestion) packet loss\n\n")

	contenders := []axiomcc.Protocol{
		axiomcc.Reno(),
		axiomcc.CubicLinux(),
		axiomcc.NewRobustAIMD(1, 0.8, 0.05),
		axiomcc.DefaultPCC(),
	}
	fmt.Println("each protocol alone on the lossy link (60 s):")
	for _, p := range contenders {
		res, err := axiomcc.RunPacketLevel(cfg, []axiomcc.PacketFlow{{Proto: p, Init: 1}}, 60)
		if err != nil {
			log.Fatal(err)
		}
		thr := res.Throughput(0, 0.5)
		fmt.Printf("  %-24s %8.1f MSS/s  (%5.1f%% of link)\n", p.Name(), thr, 100*thr/cfg.Bandwidth)
	}

	// The same story in the fluid model, as Metric VI scores: the largest
	// constant loss rate each protocol tolerates while still growing.
	fmt.Println("\nMetric VI robustness scores (largest tolerated constant loss rate):")
	for _, p := range contenders {
		r, err := axiomcc.Robustness(p, 0.5, 1e-3, axiomcc.MetricOptions{Steps: 2000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %.3f\n", p.Name(), r)
	}
	fmt.Println("\nPlain AIMD/Cubic score 0 on Metric VI — under a persistent loss RATE their")
	fmt.Println("windows cannot grow without bound — while Robust-AIMD(·,·,ε) is ε-robust and")
	fmt.Println("PCC tolerates ≈1/(1+δ). Note the packet-level table above is gentler than the")
	fmt.Println("axiom: at this small BDP (~70 pkts), fast recovery plus Cubic's quick regrowth")
	fmt.Println("to its last maximum ride out 0.5% loss, whereas Reno's halvings do not; the")
	fmt.Println("axiom's infinite-capacity scenario is where both collapse. Theorem 3 prices")
	fmt.Println("robustness in TCP-friendliness; see examples/friendliness for that trade.")
}
