// Parkinglot demonstrates the network-wide extension of the framework
// (§6's "generalizing our model to capture network-wide protocol
// interaction"): a long flow crosses k congested links, each of which also
// carries a dedicated one-hop flow. Under per-flow (stochastic) loss
// observation, the long flow is beaten below the short flows' share, and
// the bias deepens with the hop count — the classic "parking lot" result,
// here derived from nothing but the paper's §2 window-update rules.
//
//	go run ./examples/parkinglot
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
)

func main() {
	link := axiomcc.NetLinkSpec{
		Bandwidth: 100 / 0.042, // C = 100 MSS per link
		PropDelay: 0.021,
		Buffer:    20,
	}

	fmt.Println("parking lot: one k-hop Reno flow vs one 1-hop Reno flow per link")
	fmt.Printf("%4s | %18s | %18s | %9s\n", "k", "long/short window", "long/short goodput", "link util")
	for _, k := range []int{1, 2, 3, 4} {
		net, err := axiomcc.ParkingLot(k, link, axiomcc.Reno(), 1, axiomcc.WithStochasticLoss(7))
		if err != nil {
			log.Fatal(err)
		}
		res := net.Run(6000)

		shortW, shortG := 0.0, 0.0
		for i := 1; i <= k; i++ {
			shortW += res.AvgWindow(i, 0.75)
			shortG += res.AvgGoodput(i, 0.75)
		}
		shortW /= float64(k)
		shortG /= float64(k)
		util := 0.0
		for l := 0; l < k; l++ {
			util += res.LinkUtilization(l, 0.75)
		}
		fmt.Printf("%4d | %18.3f | %18.3f | %9.3f\n",
			k,
			res.AvgWindow(0, 0.75)/shortW,
			res.AvgGoodput(0, 0.75)/shortG,
			util/float64(k))
	}

	fmt.Println("\nthe long flow pays twice: it sees the union of all links' loss (window")
	fmt.Println("ratio < 1, worsening with k) AND the sum of their delays (goodput ratio")
	fmt.Println("falls even faster). Custom topologies: axiomcc.NewNetwork with explicit")
	fmt.Println("NetLinkSpec / NetFlowSpec lists — any protocol mix, any paths.")
}
