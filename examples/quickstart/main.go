// Quickstart: simulate two TCP Reno flows sharing a 20 Mbps bottleneck in
// the paper's fluid-flow model, watch them converge to a fair share, and
// score the protocol on all eight axioms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	axiomcc "repro"
)

func main() {
	// A 20 Mbps link with 42 ms RTT: capacity C = B·2Θ = 70 MSS, plus a
	// 100-MSS droptail buffer — one of the paper's Emulab settings.
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20), // B in MSS/s
		PropDelay: 0.021,                   // Θ: 21 ms each way
		Buffer:    100,                     // τ in MSS
	}
	fmt.Printf("link capacity C = %.1f MSS, buffer τ = %.0f MSS\n\n", cfg.Capacity(), cfg.Buffer)

	// Start maximally unfair: one flow holds the pipe, the other joins
	// with a single segment.
	tr, err := axiomcc.RunHomogeneous(cfg, axiomcc.Reno(), 2, []float64{170, 1}, 4000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("window evolution (steps are RTTs):")
	for _, step := range []int{0, 50, 200, 1000, 3999} {
		fmt.Printf("  t=%4d   flow0=%7.1f  flow1=%7.1f\n",
			step, tr.Window(0)[step], tr.Window(1)[step])
	}

	fmt.Printf("\ntail averages: flow0=%.1f flow1=%.1f — AIMD converges to fairness\n",
		tr.AvgWindow(0, 0.75), tr.AvgWindow(1, 0.75))
	fmt.Println(tr.Summary(0.75))

	// Score Reno on all eight axioms of §3.
	scores, err := axiomcc.Characterize(cfg, axiomcc.Reno(), 2, axiomcc.MetricOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReno's empirical 8-tuple (§3 metrics):")
	fmt.Printf("  %s\n", scores)

	// And the matching theory row from Table 1.
	row, err := axiomcc.FamilyRow(axiomcc.Reno(), axiomcc.TheoryLink{C: cfg.Capacity(), Tau: cfg.Buffer, N: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1 (theory) for AIMD(1, 0.5) on this link:")
	fmt.Printf("  efficiency=%.3f loss=%.4f fast=%.0f friendly=%.2f fair=%.0f conv=%.3f\n",
		row.At.Efficiency, row.At.LossAvoidance, row.At.FastUtilization,
		row.At.TCPFriendliness, row.At.Fairness, row.At.Convergence)
}
