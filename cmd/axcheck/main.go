// Command axcheck falsifies axiom claims: it searches initial-window
// configurations for a counterexample to "protocol P is α-<metric>" on a
// given link, printing the witness when the claim dies.
//
// Examples:
//
//	axcheck -protocol reno -claim efficient -alpha 0.9          # dies (witness shown)
//	axcheck -protocol reno -claim efficient -alpha 0.55         # survives
//	axcheck -protocol scalable -claim fair -alpha 0.5 -n 2      # dies: MIMD is 0-fair
//	axcheck -protocol raimd:1,0.8,0.01 -claim friendly -alpha 0.3
//
// With -lint, axcheck instead validates JSON artifacts (scenario specs
// and chaos schedules) without simulating — the CI gate that keeps every
// file under scenarios/ loadable:
//
//	axcheck -lint scenarios                  # walk a tree of *.json
//	axcheck -lint scenarios/topo/incast.json # lint specific files
package main

import (
	"flag"
	"fmt"
	"os"

	axiomcc "repro"
	"repro/internal/axcheck"
	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// obsStop flushes profiles and the run manifest; the exiting paths invoke
// it so the FALSIFIED exit still leaves valid artifacts. Idempotent.
var obsStop func() error

var claims = map[string]axcheck.Claim{
	"efficient":     axcheck.Efficient,
	"loss-avoiding": axcheck.LossAvoiding,
	"fair":          axcheck.Fair,
	"convergent":    axcheck.Convergent,
	"friendly":      axcheck.FriendlyToReno,
}

func main() {
	var (
		spec   = flag.String("protocol", "reno", "protocol spec (see axiomsim -list)")
		claim  = flag.String("claim", "efficient", "efficient | loss-avoiding | fair | convergent | friendly")
		alpha  = flag.Float64("alpha", 0.5, "claimed score α")
		mbps   = flag.Float64("mbps", 20, "link bandwidth in Mbps")
		rttMS  = flag.Float64("rtt", 42, "round-trip propagation delay in ms")
		buffer = flag.Float64("buffer", 20, "buffer size in MSS")
		n      = flag.Int("n", 2, "number of senders")
		steps  = flag.Int("steps", 3000, "horizon per candidate configuration")
		trials = flag.Int("trials", 24, "random configurations beyond the corners")
		seed   = flag.Uint64("seed", 0, "search seed")
		slack  = flag.Float64("slack", 0.02, "violation tolerance")
		lint   = flag.Bool("lint", false, "lint the JSON artifacts (files or directories) given as arguments and exit")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	defer stfl.Apply("axcheck")()

	if *lint {
		paths := flag.Args()
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "axcheck: -lint needs files or directories as arguments")
			os.Exit(2)
		}
		results, err := axcheck.LintPaths(paths)
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcheck:", err)
			os.Exit(2)
		}
		failed := 0
		for _, r := range results {
			if r.Err != nil {
				failed++
				fmt.Printf("%s: FAIL: %v\n", r.Path, r.Err)
				continue
			}
			fmt.Printf("%s: ok (%s)\n", r.Path, r.Kind)
		}
		fmt.Printf("linted %d artifacts, %d failed\n", len(results), failed)
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	stop, err := ofl.Start("axcheck")
	if err != nil {
		fatal(err)
	}
	obsStop = stop
	lifecycle.Install("axcheck", stop)
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "axcheck:", err)
		}
	}()
	obs.RecordSeed(*seed)

	p, err := axiomcc.ParseProtocol(*spec)
	if err != nil {
		fatal(err)
	}
	cl, ok := claims[*claim]
	if !ok {
		fatal(fmt.Errorf("unknown claim %q", *claim))
	}
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(*mbps),
		PropDelay: *rttMS / 1000 / 2,
		Buffer:    *buffer,
	}
	res, err := axcheck.Check(cfg, p, cl, *alpha, *n, axcheck.Options{
		Steps:        *steps,
		RandomTrials: *trials,
		Seed:         *seed,
		Slack:        *slack,
	})
	if err != nil {
		fatal(err)
	}
	obs.RecordScore("worst_measurement", res.Worst)

	fmt.Printf("claim: %s is %.4g-%s on a %.0f Mbps / %.0f ms / %.0f MSS link (%d senders)\n",
		p.Name(), *alpha, cl, *mbps, *rttMS, *buffer, *n)
	fmt.Printf("searched %d configurations; worst measurement %.4g at init %v\n",
		res.Trials, res.Worst, res.WorstInit)
	if res.Violated {
		fmt.Printf("verdict: FALSIFIED — %s\n", res.Witness)
		stop()
		os.Exit(1)
	}
	fmt.Println("verdict: survived (not proven — no counterexample found)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "axcheck:", err)
	if obsStop != nil {
		obsStop()
	}
	os.Exit(2)
}
