// Command reproduce regenerates every table and figure of "An Axiomatic
// Approach to Congestion Control" (HotNets 2017) from this repository's
// simulators:
//
//	reproduce -exp table1        Table 1's closed forms at a chosen link
//	reproduce -exp table1-sim    Table 1 validated on the fluid model
//	reproduce -exp hierarchy     §5.1 Emulab protocol-ordering experiments
//	reproduce -exp table2        Table 2: Robust-AIMD vs PCC friendliness
//	reproduce -exp figure1       Figure 1's frontier surface + spot checks
//	reproduce -exp claim1        Claim 1's probe demonstration
//	reproduce -exp theorem1..5   executable checks of Theorems 1-5
//	reproduce -exp robustness    Metric VI sweep (Table 1's robustness column)
//	reproduce -exp robustness-chaos  Metric VI extended with bursty-loss and flappy-link columns
//	reproduce -exp parkinglot    §6 network-wide extension (multilink parking lot)
//	reproduce -exp topo-axioms   the eight metrics measured on multi-bottleneck DAG topologies
//	reproduce -exp all           everything above
//
// -quick shrinks grids and horizons for a fast smoke pass. -chaos applies
// a fault-injection schedule (JSON, see EXPERIMENTS.md) to every
// metric-estimator run; -cell-timeout, -retries, -checkpoint, and -resume
// harden the sweep orchestrator.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	axiomcc "repro"
	"repro/internal/experiment"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/report"
)

// obsStop flushes profiles and the run manifest; the error paths invoke
// it so failed reproductions still leave valid artifacts. Idempotent.
var obsStop func() error

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (see package comment)")
		quick     = flag.Bool("quick", false, "reduced grids and horizons")
		mbps      = flag.Float64("mbps", 20, "link bandwidth for table1/table1-sim")
		buf       = flag.Float64("buffer", 100, "buffer for table1/table1-sim (MSS)")
		n         = flag.Int("n", 2, "senders for table1/table1-sim")
		reportDir = flag.String("report", "", "write a full Markdown+SVG reproduction report into this directory and exit")
		seed      = flag.Uint64("seed", 0, "seed for randomized components")
		workers   = flag.Int("workers", 0, "parallel workers for sweep grids (0 = GOMAXPROCS)")
		chaosPath = flag.String("chaos", "", "fault-injection schedule (JSON file) applied to metric runs")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	sfl := axiomcc.RegisterSweepFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	sfl.Apply()
	defer stfl.Apply("reproduce")()

	stop, err := ofl.Start("reproduce")
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
	obsStop = stop
	lifecycle.Install("reproduce", stop)
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
		}
	}()
	obs.RecordSeed(*seed)

	if *reportDir != "" {
		path, err := report.Write(*reportDir, report.Config{Quick: *quick, Seed: *seed}, time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			obsStop()
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		return
	}

	run := func(id string, f func() error) {
		if *exp != "all" && *exp != id {
			return
		}
		fmt.Printf("==== %s ====\n", id)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", id, err)
			obsStop()
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	steps := 4000
	dur := 60.0
	if *quick {
		steps = 1200
		dur = 20
	}
	opt := axiomcc.MetricOptions{Steps: steps, Workers: *workers}
	// One session across every experiment in the invocation: cross-
	// experiment baselines (Reno comparators, repeated probes) simulate
	// once, and with the persistent store enabled a rerun over an
	// unchanged tree simulates nothing at all.
	opt.Session = axiomcc.NewMetricSession()
	if *chaosPath != "" {
		sched, err := axiomcc.LoadChaosSchedule(*chaosPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			obsStop()
			os.Exit(1)
		}
		opt.Chaos = sched
		opt.ChaosSeed = *seed
	}

	run("table1", func() error {
		cfg := experiment.FluidLink(*mbps, *buf)
		lp := experiment.LinkParams(cfg, *n)
		fmt.Printf("link: C=%.1f MSS, τ=%.0f MSS, n=%d\n\n", lp.C, lp.Tau, lp.N)
		fmt.Print(experiment.RenderTable1Theory(experiment.Table1Theory(lp)))
		return nil
	})

	run("table1-sim", func() error {
		cfg := experiment.FluidLink(*mbps, *buf)
		scores, err := experiment.Table1Empirical(cfg, *n, opt)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTable1Empirical(scores))
		return nil
	})

	run("hierarchy", func() error {
		hc := experiment.HierarchyConfig{Duration: dur, Workers: *workers}
		if *quick {
			hc.Senders = []int{2}
			hc.Bandwidths = []float64{20, 60}
			hc.Buffers = []int{100}
		}
		res, err := experiment.Hierarchy(hc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("table2", func() error {
		tc := experiment.Table2Config{Duration: dur, Workers: *workers}
		if *quick {
			tc.Senders = []int{2, 3}
			tc.Bandwidths = []float64{20, 60}
		}
		res, err := experiment.Table2(tc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("figure1", func() error {
		pts := experiment.Figure1(12, 9)
		fmt.Print(experiment.RenderFigure1(pts))
		fmt.Println()
		checks, err := experiment.Figure1SpotChecks([][2]float64{{1, 0.5}, {2, 0.5}, {1, 0.8}, {0.5, 0.5}}, opt)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFigure1Checks(checks))
		return nil
	})

	run("claim1", func() error {
		ev, err := experiment.CheckClaim1(opt)
		if err != nil {
			return err
		}
		fmt.Printf("probe-until-loss on a finite link:\n  tail loss      = %.6f (0-loss)\n  tail efficiency = %.3f\n  fast-utilization = %.6f (not α-fast-utilizing for any α>0)\n  claim holds    = %v\n",
			ev.TailLoss, ev.Efficiency, ev.FastUtil, ev.Holds)
		return nil
	})

	run("theorem1", func() error {
		checks, err := experiment.CheckTheorem1(opt, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChecks("α-convergent ∧ β-fast-utilizing ⇒ α/(2−α)-efficient", checks,
			func(c experiment.Theorem1Check) string {
				return fmt.Sprintf("%s\tconv=%.3f\tfast=%.3f\teff=%.3f\tbound=%.3f\tholds=%v",
					c.Name, c.Convergence, c.FastUtil, c.Efficiency, c.Bound, c.Holds)
			}))
		return nil
	})

	run("theorem2", func() error {
		checks, err := experiment.CheckTheorem2(nil, opt, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChecks("TCP-friendliness ≤ 3(1−β)/(α(1+β)), tight for AIMD(α,β)", checks,
			func(c experiment.Theorem2Check) string {
				return fmt.Sprintf("AIMD(%g,%g)\tbound=%.3f\tmeasured=%.3f\ttightness=%.2f\tholds=%v",
					c.A, c.B, c.Bound, c.Measured, c.Tightness, c.Holds)
			}))
		return nil
	})

	run("theorem3", func() error {
		checks, err := experiment.CheckTheorem3(nil, opt, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChecks("ε-robustness caps TCP-friendliness (Theorem 3)", checks,
			func(c experiment.Theorem3Check) string {
				return fmt.Sprintf("ε=%g\tceiling=%.5f\tnon-robust ceiling=%.3f\tmeasured=%.4f\tholds=%v",
					c.Eps, c.Bound, c.NonRobustCeiling, c.Measured, c.Holds)
			}))
		return nil
	})

	run("theorem4", func() error {
		checks, err := experiment.CheckTheorem4(opt, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChecks("α-TCP-friendly ⇒ α-friendly to protocols more aggressive than Reno", checks,
			func(c experiment.Theorem4Check) string {
				return fmt.Sprintf("P=%s\tQ=%s\tQ-more-aggressive=%v\tfriendly-to-Reno=%.3f\tfriendly-to-Q=%.3f\tholds=%v",
					c.P, c.Q, c.QMoreAggressive, c.FriendlyToReno, c.FriendlyToQ, c.Holds)
			}))
		return nil
	})

	run("robustness", func() error {
		entries, err := experiment.RobustnessSweep(opt)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderRobustness(entries))
		return nil
	})

	run("robustness-chaos", func() error {
		entries, err := experiment.ChaosRobustnessSweep(opt, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChaosRobustness(entries))
		return nil
	})

	run("topo-axioms", func() error {
		rows, err := experiment.TopoAxioms(opt)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTopoAxioms(rows))
		return nil
	})

	run("parkinglot", func() error {
		hops := []int{1, 2, 3, 4}
		if *quick {
			hops = []int{1, 3}
		}
		entries, err := experiment.ParkingLotExperiment(hops, steps, 7)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderParkingLot(entries))
		return nil
	})

	run("theorem5", func() error {
		checks, err := experiment.CheckTheorem5(opt, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderChecks("efficient loss-based protocols starve latency avoiders", checks,
			func(c experiment.Theorem5Check) string {
				return fmt.Sprintf("%s vs %s\teff=%.3f\tavoider-latency=%.4f\tfriendliness=%.4f\tholds=%v",
					c.LossBased, c.LatencyAvoider, c.LossBasedEff, c.AvoiderLatency, c.Friendliness, c.Holds)
			}))
		return nil
	})
}
