// Command benchcmp is CI's bench-regression gate: it compares a freshly
// generated benchmark baseline (BENCH_sweep.json, BENCH_characterize.json)
// against the committed one and exits non-zero when a timing, allocation,
// or simulated-work counter regressed beyond the limit.
//
//	benchcmp -old BENCH_sweep.json -new /tmp/fresh/BENCH_sweep.json -limit 1.25
//
// Timing keys are only compared between records from the same machine
// shape; the machine-independent work counters are compared always.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	var (
		oldPath = flag.String("old", "", "committed baseline record (JSON)")
		newPath = flag.String("new", "", "freshly generated record (JSON)")
		limit   = flag.Float64("limit", 1.25, "allowed new/old ratio for ns_per_op and allocs_per_op keys")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -old committed.json -new fresh.json [-limit 1.25]")
		os.Exit(2)
	}
	oldRaw, err := os.ReadFile(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRaw, err := os.ReadFile(*newPath)
	if err != nil {
		fatal(err)
	}
	rep, err := benchcmp.Compare(oldRaw, newRaw, *limit)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchcmp: %s vs %s (limit %.2fx)\n%s", *oldPath, *newPath, *limit, benchcmp.Format(rep))
	if rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s)\n", rep.Regressions)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
