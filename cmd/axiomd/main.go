// Command axiomd is the characterization daemon: POST a sweep spec to
// /jobs and stream per-cell axiom scores back as NDJSON while they
// compute. Cells dedupe against the persistent run store, fan out
// across worker shards (child processes of this binary), and survive
// the chaos a long-lived service actually sees: shard crashes are
// requeued and respawned under a backoff budget, slow cells are bounded
// by per-cell deadlines, a failing store trips a circuit breaker into
// cache-only serving, a full queue sheds load with 429, and SIGTERM
// drains gracefully — stop admitting, finish in-flight jobs, flush the
// run record.
//
//	axiomd -listen 127.0.0.1:8080 -shards 4
//	curl -s -X POST --data-binary @job.json http://127.0.0.1:8080/jobs
//	curl -s http://127.0.0.1:8080/healthz
//
// Endpoints: /jobs (POST), /healthz (liveness, always 200), /readyz
// (503 once draining), and the observability surface /metrics,
// /snapshot, /trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	axiomcc "repro"
	"repro/internal/jobd"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// obsStop flushes profiles and the run manifest; fatal invokes it so
// error exits still leave valid artifacts behind. Idempotent.
var obsStop func() error

func main() {
	// Worker shards are this same binary re-exec'd by the parent; the
	// env marker routes them into the NDJSON request/reply loop before
	// any flag or store setup.
	if os.Getenv(jobd.WorkerEnv) != "" {
		if err := jobd.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "axiomd worker:", err)
			os.Exit(1)
		}
		return
	}

	var (
		listen          = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (port 0 picks a free one)")
		shards          = flag.Int("shards", 0, "worker shard processes (0 = in-process goroutines)")
		workers         = flag.Int("workers", 0, "in-process worker goroutines when -shards=0 (0 = GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 16, "admission queue bound; beyond it jobs are shed with 429")
		maxActive       = flag.Int("max-active", 2, "jobs executing concurrently")
		cellTimeout     = flag.Duration("cell-timeout", 2*time.Minute, "default per-cell deadline (specs may override)")
		jobTimeout      = flag.Duration("job-timeout", 30*time.Minute, "default whole-job deadline (specs may override)")
		cellRetries     = flag.Int("cell-retries", 3, "attempts per cell before it fails (transient failures only)")
		drainGrace      = flag.Duration("drain-grace", 30*time.Second, "how long SIGTERM waits for in-flight jobs")
		breakerTrip     = flag.Int("breaker-threshold", 3, "consecutive store failures that trip the breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open time before a half-open probe")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	report := stfl.Apply("axiomd")

	stop, err := ofl.Start("axiomd")
	if err != nil {
		fatal(err)
	}
	obsStop = stop

	cfg := jobd.Config{
		Tool:             "axiomd",
		Shards:           *shards,
		Workers:          *workers,
		MaxQueue:         *maxQueue,
		MaxActive:        *maxActive,
		CellTimeout:      *cellTimeout,
		JobTimeout:       *jobTimeout,
		BreakerThreshold: *breakerTrip,
		BreakerCooldown:  *breakerCooldown,
	}
	cfg.CellRetry.Attempts = *cellRetries
	if st := metrics.DefaultStore(); st != nil {
		cfg.Store = st
	}
	srv := jobd.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "axiomd: listening on http://%s (shards=%d store=%v)\n",
		ln.Addr(), *shards, cfg.Store != nil)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Graceful drain: the first SIGTERM/SIGINT stops admission (readyz
	// flips 503), lets in-flight jobs finish streaming within the grace
	// window, then flushes observability artifacts. A second signal
	// skips the grace and exits immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var sig os.Signal
	select {
	case sig = <-sigc:
	case err := <-serveErr:
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "axiomd: %v: draining (grace %v)\n", sig, *drainGrace)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "axiomd: second signal, exiting now")
		os.Exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "axiomd: drain grace expired with jobs in flight: %v\n", err)
	}
	httpSrv.Shutdown(ctx) //nolint:errcheck // jobs already drained; expiry is reported above
	report()
	lifecycle.Drain("axiomd", sig.String(), stop)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "axiomd:", err)
	if obsStop != nil {
		obsStop()
	}
	os.Exit(1)
}
