package main

import (
	"strings"
	"testing"

	axiomcc "repro"
)

func TestParseProtocolsSimple(t *testing.T) {
	ps, err := parseProtocols("reno,cubic")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name() != "AIMD(1,0.5)" || ps[1].Name() != "CUBIC(0.4,0.8)" {
		t.Fatalf("parsed %v", names(ps))
	}
}

func TestParseProtocolsWithParameters(t *testing.T) {
	// Parameter commas must not split protocols.
	ps, err := parseProtocols("aimd:1,0.5,raimd:1,0.8,0.01,reno")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"AIMD(1,0.5)", "RobustAIMD(1,0.8,0.01)", "AIMD(1,0.5)"}
	got := names(ps)
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestParseProtocolsErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string
	}{
		{"", "no protocols"},
		{"0.5,reno", "dangling parameter"},
		{"nosuch", "unknown protocol"},
		{"aimd:1", "want 2 parameters"},
	}
	for _, c := range cases {
		_, err := parseProtocols(c.in)
		if err == nil {
			t.Errorf("parseProtocols(%q): expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("parseProtocols(%q) error = %v, want substring %q", c.in, err, c.errPart)
		}
	}
}

func TestParseProtocolsWhitespace(t *testing.T) {
	ps, err := parseProtocols(" reno , vegas ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %v", names(ps))
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("1, 2.5 ,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2.5 {
		t.Fatalf("parsed %v", got)
	}
	if got, err := parseFloats(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := parseFloats("1,x"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func names(ps []axiomcc.Protocol) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}
