// Command axiomsim runs a single congestion-control scenario — on the
// fluid-flow model or the packet-level testbed — and prints a summary, the
// per-sender outcomes and, optionally, the full trace as TSV.
//
// Examples:
//
//	axiomsim -protocols reno,reno -mbps 20 -buffer 100 -steps 4000
//	axiomsim -model packet -protocols raimd:1,0.8,0.01,pcc -mbps 60 -duration 60
//	axiomsim -protocols reno -loss 0.01 -infinite -steps 500 -tsv
//	axiomsim -protocols reno,cubic -chaos scenarios/chaos/flappy-link.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	axiomcc "repro"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/svgplot"
	"repro/internal/trace"
)

// obsStop flushes profiles and the run manifest; fatal invokes it so
// error exits still leave valid artifacts behind. Idempotent.
var obsStop func() error

func main() {
	var (
		protoSpecs = flag.String("protocols", "reno,reno", "comma-separated protocol specs (see -list)")
		mbps       = flag.Float64("mbps", 20, "link bandwidth in Mbps")
		rttMS      = flag.Float64("rtt", 42, "round-trip propagation delay in ms")
		buffer     = flag.Float64("buffer", 100, "buffer size in MSS")
		steps      = flag.Int("steps", 4000, "fluid model: steps to simulate")
		duration   = flag.Float64("duration", 60, "packet model: seconds to simulate")
		model      = flag.String("model", "fluid", "simulator: fluid or packet")
		initStr    = flag.String("init", "", "comma-separated initial windows (default all 1)")
		lossRate   = flag.Float64("loss", 0, "non-congestion loss rate (fluid: constant process; packet: per-packet drop)")
		infinite   = flag.Bool("infinite", false, "fluid model: infinite-capacity link (Metric VI scenario)")
		seed       = flag.Uint64("seed", 0, "random seed for loss processes")
		tsv        = flag.Bool("tsv", false, "dump the full trace as TSV")
		svgPath    = flag.String("svg", "", "write a window-trace SVG chart to this file")
		tailFrac   = flag.Float64("tail", 0.75, "tail fraction for summary statistics")
		list       = flag.Bool("list", false, "list accepted protocol specs and exit")
		scenarioF  = flag.String("scenario", "", "run JSON scenario file(s), comma-separated (see scenarios/), and ignore the other flags")
		jsonOut    = flag.Bool("json", false, "with -scenario: emit the outcome as JSON")
		workers    = flag.Int("workers", 0, "with -scenario: parallel workers across scenario files (0 = GOMAXPROCS)")
		chaosPath  = flag.String("chaos", "", "fault-injection schedule (JSON file) applied to the run")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	sfl := axiomcc.RegisterSweepFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	sfl.Apply()
	defer stfl.Apply("axiomsim")()

	stop, err := ofl.Start("axiomsim")
	if err != nil {
		fatal(err)
	}
	obsStop = stop
	lifecycle.Install("axiomsim", stop)
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "axiomsim:", err)
		}
	}()
	obs.RecordSeed(*seed)

	if *scenarioF != "" {
		runScenarios(strings.Split(*scenarioF, ","), *jsonOut, *workers)
		return
	}

	if *list {
		fmt.Println(`protocol specs:
  reno                 AIMD(1,0.5)         scalable    MIMD(1.01,0.875)
  scalable-aimd        AIMD(1,0.875)       cubic       CUBIC(0.4,0.8)
  iiad                 BIN(1,1,1,0)        sqrt        BIN(1,0.5,0.5,0.5)
  pcc                  PCC stand-in        vegas       Vegas(2,4)
  tfrc                 equation-based      hstcp       HighSpeed TCP
  bbr                  BBR-style model     probe:a     Claim 1 probe
  aimd:a,b  mimd:a,b  bin:a,b,k,l  cubic:c,b  raimd:a,b,eps  pcc:delta
  vegas:alpha,beta  tfrc:alpha`)
		return
	}

	protos, err := parseProtocols(*protoSpecs)
	if err != nil {
		fatal(err)
	}
	inits, err := parseFloats(*initStr)
	if err != nil {
		fatal(err)
	}
	var chaosSched *axiomcc.ChaosSchedule
	if *chaosPath != "" {
		if chaosSched, err = axiomcc.LoadChaosSchedule(*chaosPath); err != nil {
			fatal(err)
		}
	}

	theta := *rttMS / 1000 / 2
	switch *model {
	case "fluid":
		cfg := axiomcc.LinkConfig{
			Bandwidth: axiomcc.MbpsToMSSps(*mbps),
			PropDelay: theta,
			Buffer:    *buffer,
			Infinite:  *infinite,
			Seed:      *seed,
		}
		if *lossRate > 0 {
			cfg.Loss = axiomcc.NewConstantLoss(*lossRate)
		}
		// Even a single run goes through the sweep orchestrator as a
		// 1-cell grid: the trace is bit-identical to RunMixed, and with
		// observability engaged the run record picks up the cell latency
		// histogram and worker-pool stats.
		trs, err := axiomcc.EngineSweep(context.Background(), 1, axiomcc.SweepConfig{BaseSeed: *seed},
			func(ctx context.Context, _ int, _ uint64) (*trace.Trace, error) {
				res, err := axiomcc.EngineRun(ctx, axiomcc.EngineSpec{
					Substrate: &axiomcc.EngineFluidSpec{Cfg: cfg, Senders: axiomcc.MixedSenders(protos, inits), Steps: *steps},
					Record:    true,
					Chaos:     chaosSched,
					ChaosSeed: *seed,
				})
				if err != nil {
					return nil, err
				}
				return res.Trace, nil
			})
		if err != nil {
			fatal(err)
		}
		tr := trs[0]
		if *tsv {
			if err := tr.WriteTSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if *svgPath != "" {
			if err := writeWindowSVG(*svgPath, tr, protos); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *svgPath)
		}
		fmt.Printf("fluid link: C=%.1f MSS, buffer=%.0f MSS, base RTT=%.0f ms\n",
			cfg.Capacity(), cfg.Buffer, 2*theta*1000)
		fmt.Println(tr.Summary(*tailFrac))
		for i, p := range protos {
			fmt.Printf("  sender %d %-24s avg window %8.2f  avg goodput %9.1f MSS/s\n",
				i, p.Name(), tr.AvgWindow(i, *tailFrac), tr.AvgGoodput(i, *tailFrac))
		}
		fmt.Printf("tail metrics: efficiency=%.3f loss=%.4f fairness=%.3f latency-inflation=%.3f\n",
			metrics.EfficiencyFromTrace(tr, *tailFrac),
			metrics.LossAvoidanceFromTrace(tr, *tailFrac),
			metrics.FairnessFromTrace(tr, *tailFrac),
			metrics.LatencyAvoidanceFromTrace(tr, *tailFrac))

	case "packet":
		cfg := axiomcc.PacketConfig{
			Bandwidth:  axiomcc.MbpsToMSSps(*mbps),
			PropDelay:  theta,
			Buffer:     int(*buffer),
			RandomLoss: *lossRate,
			Seed:       *seed,
		}
		flows := make([]axiomcc.PacketFlow, len(protos))
		for i, p := range protos {
			init := 1.0
			if len(inits) > 0 {
				init = inits[i%len(inits)]
			}
			flows[i] = axiomcc.PacketFlow{Proto: p, Init: init}
		}
		ress, err := axiomcc.EngineSweep(context.Background(), 1, axiomcc.SweepConfig{BaseSeed: *seed},
			func(ctx context.Context, _ int, _ uint64) (*axiomcc.PacketResult, error) {
				eres, err := axiomcc.EngineRun(ctx, axiomcc.EngineSpec{
					Substrate: &axiomcc.EnginePacketSpec{Cfg: cfg, Flows: flows, Duration: *duration},
					Record:    true,
					Chaos:     chaosSched,
					ChaosSeed: *seed,
				})
				if err != nil {
					return nil, err
				}
				return eres.Packet, nil
			})
		if err != nil {
			fatal(err)
		}
		res := ress[0]
		if *tsv {
			if err := res.Trace.WriteTSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if *svgPath != "" {
			if err := writeWindowSVG(*svgPath, res.Trace, protos); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *svgPath)
		}
		fmt.Printf("packet link: %.0f MSS/s (%.0f Mbps), buffer=%d pkts, base RTT=%.0f ms, %.0fs simulated\n",
			cfg.Bandwidth, *mbps, cfg.Buffer, 2*theta*1000, *duration)
		total := 0.0
		for i, p := range protos {
			thr := res.Throughput(i, *tailFrac)
			total += thr
			fmt.Printf("  flow %d %-24s delivered %8d pkts  tail throughput %9.1f MSS/s (%.1f%% of link)\n",
				i, p.Name(), res.Delivered[i], thr, 100*thr/cfg.Bandwidth)
		}
		fmt.Printf("aggregate tail utilization: %.1f%%\n", 100*total/cfg.Bandwidth)

	default:
		fatal(fmt.Errorf("unknown -model %q (want fluid or packet)", *model))
	}
}

func parseProtocols(specs string) ([]axiomcc.Protocol, error) {
	// Specs contain commas inside parameter lists (aimd:1,0.5), so split
	// on commas that are followed by a protocol-name character sequence
	// containing a letter. Simpler and unambiguous: parameters are
	// numeric, names start with a letter — split greedily.
	var out []axiomcc.Protocol
	fields := strings.Split(specs, ",")
	cur := ""
	flush := func() error {
		if cur == "" {
			return nil
		}
		p, err := axiomcc.ParseProtocol(cur)
		if err != nil {
			return err
		}
		out = append(out, p)
		cur = ""
		return nil
	}
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if startsWithLetter(f) {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = f
		} else {
			if cur == "" {
				return nil, fmt.Errorf("axiomsim: dangling parameter %q in -protocols", f)
			}
			cur += "," + f
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("axiomsim: no protocols given")
	}
	return out, nil
}

func startsWithLetter(s string) bool {
	c := s[0]
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
			return nil, fmt.Errorf("axiomsim: bad initial window %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScenarios loads the given JSON scenarios and runs them through the
// engine orchestrator — independent files execute in parallel across
// workers; outcomes print in input order.
func runScenarios(paths []string, jsonOut bool, workers int) {
	specs := make([]*scenario.Spec, 0, len(paths))
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		spec, err := scenario.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		fatal(fmt.Errorf("no scenario files given"))
	}
	outs, err := axiomcc.EngineSweep(context.Background(), len(specs), axiomcc.SweepConfig{Workers: workers},
		func(ctx context.Context, i int, _ uint64) (*scenario.Outcome, error) {
			return specs[i].RunContext(ctx)
		})
	if err != nil {
		fatal(err)
	}
	for _, out := range outs {
		if jsonOut {
			raw, err := out.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(raw))
			continue
		}
		fmt.Print(out.Render())
	}
}

// writeWindowSVG renders every sender's window series as a line chart.
func writeWindowSVG(path string, tr *trace.Trace, protos []axiomcc.Protocol) error {
	series := make([]svgplot.Series, len(protos))
	for i, p := range protos {
		series[i] = svgplot.Series{
			Name: fmt.Sprintf("%d: %s", i, p.Name()),
			Y:    tr.Window(i),
		}
	}
	svg := svgplot.Lines(series, svgplot.LineOptions{
		Title:  "congestion windows",
		XLabel: "time step",
		YLabel: "window (MSS)",
	})
	return os.WriteFile(path, []byte(svg), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "axiomsim:", err)
	if obsStop != nil {
		obsStop()
	}
	os.Exit(1)
}
