// Command axiomscore places a congestion-control protocol in the paper's
// 8-dimensional metric space: it prints the protocol's theoretical Table 1
// row (when the protocol belongs to a characterized family) next to its
// measured scores on a concrete link, one line per axiom.
//
// Examples:
//
//	axiomscore -protocol reno -mbps 20 -buffer 100 -n 2
//	axiomscore -protocol raimd:1,0.8,0.01 -mbps 60 -n 3
//	axiomscore -protocol pcc -steps 2000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	axiomcc "repro"
	"repro/internal/experiment"
	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// obsStop flushes profiles and the run manifest; fatal invokes it so
// error exits still leave valid artifacts behind. Idempotent.
var obsStop func() error

func main() {
	var (
		spec    = flag.String("protocol", "reno", "protocol spec (see axiomsim -list)")
		mbps    = flag.Float64("mbps", 20, "link bandwidth in Mbps")
		rttMS   = flag.Float64("rtt", 42, "round-trip propagation delay in ms")
		buffer  = flag.Float64("buffer", 100, "buffer size in MSS")
		n       = flag.Int("n", 2, "number of senders for the multi-sender axioms")
		steps   = flag.Int("steps", 4000, "simulation horizon in RTT steps")
		workers = flag.Int("workers", 0, "parallel workers for the per-metric init sweeps (0 = GOMAXPROCS)")
		nocache = flag.Bool("nocache", false, "disable run deduplication (re-simulate every estimator's runs; scores are bit-identical either way)")
		stats   = flag.Bool("cache-stats", false, "print run-cache hit/miss/steps-saved counters to stderr")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	defer stfl.Apply("axiomscore")()

	stop, err := ofl.Start("axiomscore")
	if err != nil {
		fatal(err)
	}
	obsStop = stop
	lifecycle.Install("axiomscore", stop)
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "axiomscore:", err)
		}
	}()

	p, err := axiomcc.ParseProtocol(*spec)
	if err != nil {
		fatal(err)
	}
	theta := *rttMS / 1000 / 2
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(*mbps),
		PropDelay: theta,
		Buffer:    *buffer,
	}
	lp := experiment.LinkParams(cfg, *n)

	fmt.Printf("%s on a %.0f Mbps / %.0f ms RTT / %.0f MSS buffer link (C=%.1f MSS), %d sender(s)\n\n",
		p.Name(), *mbps, *rttMS, *buffer, lp.C, *n)

	row, rowErr := axiomcc.FamilyRow(p, lp)
	opt := axiomcc.MetricOptions{Steps: *steps, Workers: *workers, NoCache: *nocache}
	if !*nocache {
		opt.Session = axiomcc.NewMetricSession()
	}
	scores, err := axiomcc.Characterize(cfg, p, *n, opt)
	if err != nil {
		fatal(err)
	}
	if *stats && opt.Session != nil {
		st := opt.Session.Stats()
		fmt.Fprintf(os.Stderr, "run cache: %d simulated, %d deduped, %d uncacheable; %d steps simulated, %d saved\n",
			st.Misses, st.Hits, st.Uncacheable, st.StepsSimulated, st.StepsSaved)
	}
	for name, v := range map[string]float64{
		"efficiency":        scores.Efficiency,
		"fast_utilization":  scores.FastUtilization,
		"loss_avoidance":    scores.LossAvoidance,
		"fairness":          scores.Fairness,
		"convergence":       scores.Convergence,
		"robustness":        scores.Robustness,
		"tcp_friendliness":  scores.TCPFriendliness,
		"latency_avoidance": scores.LatencyAvoidance,
	} {
		obs.RecordScore(name, v)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	if rowErr == nil {
		fmt.Fprintln(w, "metric\ttheory@link\ttheory<worst>\tmeasured")
		line := func(name string, at, worst, meas float64) {
			fmt.Fprintf(w, "%s\t%s\t<%s>\t%s\n", name, num(at), num(worst), num(meas))
		}
		line("efficiency (I)", row.At.Efficiency, row.WorstCase.Efficiency, scores.Efficiency)
		line("fast-utilization (II)", row.At.FastUtilization, row.WorstCase.FastUtilization, scores.FastUtilization)
		line("loss-avoidance (III)", row.At.LossAvoidance, row.WorstCase.LossAvoidance, scores.LossAvoidance)
		line("fairness (IV)", row.At.Fairness, row.WorstCase.Fairness, scores.Fairness)
		line("convergence (V)", row.At.Convergence, row.WorstCase.Convergence, scores.Convergence)
		line("robustness (VI)", row.At.Robustness, row.At.Robustness, scores.Robustness)
		line("tcp-friendliness (VII)", row.At.TCPFriendliness, row.WorstCase.TCPFriendliness, scores.TCPFriendliness)
		fmt.Fprintf(w, "latency-avoidance (VIII)\tunbounded\t<unbounded>\t%s\n", num(scores.LatencyAvoidance))
	} else {
		fmt.Fprintf(os.Stdout, "(no Table 1 row: %v)\n\n", rowErr)
		fmt.Fprintln(w, "metric\tmeasured")
		fmt.Fprintf(w, "efficiency (I)\t%s\n", num(scores.Efficiency))
		fmt.Fprintf(w, "fast-utilization (II)\t%s\n", num(scores.FastUtilization))
		fmt.Fprintf(w, "loss-avoidance (III)\t%s\n", num(scores.LossAvoidance))
		fmt.Fprintf(w, "fairness (IV)\t%s\n", num(scores.Fairness))
		fmt.Fprintf(w, "convergence (V)\t%s\n", num(scores.Convergence))
		fmt.Fprintf(w, "robustness (VI)\t%s\n", num(scores.Robustness))
		fmt.Fprintf(w, "tcp-friendliness (VII)\t%s\n", num(scores.TCPFriendliness))
		fmt.Fprintf(w, "latency-avoidance (VIII)\t%s\n", num(scores.LatencyAvoidance))
	}
	w.Flush()
}

func num(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case math.IsNaN(v):
		return "-"
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "axiomscore:", err)
	if obsStop != nil {
		obsStop()
	}
	os.Exit(1)
}
