// Command runstore inspects and maintains the persistent run store that
// the simulation tools share (see internal/runstore).
//
//	runstore stats                  # entry count, bytes, directory
//	runstore [-max-bytes N] gc      # evict least-recently-used entries
//	runstore clear                  # drop every entry
//
// All subcommands accept -store to target a non-default directory. The
// store is self-invalidating — entries written by older source trees are
// unreachable, not wrong — so gc exists for disk hygiene, never for
// correctness.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/runstore"
)

func main() {
	var (
		dir      = flag.String("store", "", "run store directory (default: OS user cache dir)")
		maxBytes = flag.Int64("max-bytes", runstore.DefaultMaxBytes, "gc: evict oldest entries until the store fits this budget")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: runstore [flags] stats|gc|clear\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	// Maintenance operates on files, not keys, so it needs no source
	// hash: a fixed version keeps Open usable even when the binary runs
	// away from its source checkout.
	st, err := runstore.Open(*dir, runstore.Options{Version: "maintenance", MaxBytes: -1})
	if err != nil {
		fatal(err)
	}

	switch flag.Arg(0) {
	case "stats":
		s := st.Stats()
		fmt.Printf("dir:     %s\nbytes:   %d\n", st.Dir(), s.Bytes)
	case "gc":
		removed, remaining, err := st.GC(*maxBytes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evicted %d entries; %d bytes remain in %s\n", removed, remaining, st.Dir())
	case "clear":
		if err := st.Clear(); err != nil {
			fatal(err)
		}
		fmt.Printf("cleared %s\n", st.Dir())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runstore:", err)
	os.Exit(1)
}
