// Command paretoexplore navigates the Pareto frontier of Section 5.2:
// it prints Figure 1's frontier surface (fast-utilization × efficiency ×
// TCP-friendliness), tests user-supplied points for feasibility against
// Theorems 2 and 3, spot-checks that AIMD(α, β) empirically attains
// frontier points, and runs the adaptive empirical frontier search
// (coarse pass + successive-halving refinement with dominance pruning)
// over the (α, β) box.
//
// Examples:
//
//	paretoexplore -surface -alphas 10 -betas 10          # Figure 1 data
//	paretoexplore -point 1,0.5,1                          # feasible? on frontier?
//	paretoexplore -point 1,0.8,0.9                        # infeasible point
//	paretoexplore -check "1,0.5;2,0.5;1,0.8"              # empirical AIMD spot checks
//	paretoexplore -explore -rounds 3 -refine-factor 2     # adaptive frontier search
//	paretoexplore -explore -dense -store runs/            # verify vs the dense lattice
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	axiomcc "repro"
	"repro/internal/experiment"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/svgplot"
)

// obsStop flushes profiles and the run manifest; fatal invokes it so
// error exits still leave valid artifacts behind. Idempotent.
var obsStop func() error

func main() {
	var (
		surface = flag.Bool("surface", false, "print Figure 1's frontier surface as TSV")
		alphaN  = flag.Int("alphas", 12, "surface grid size for α (fast-utilization)")
		betaN   = flag.Int("betas", 9, "surface grid size for β (efficiency)")
		point   = flag.String("point", "", "test a fast,eff,friendly point against Theorem 2")
		eps     = flag.Float64("eps", 0, "robustness ε for the -point test (engages Theorem 3)")
		cap     = flag.Float64("capacity", 100, "link capacity C in MSS for Theorem 3")
		tau     = flag.Float64("tau", 20, "buffer τ in MSS for Theorem 3")
		check   = flag.String("check", "", "semicolon-separated a,b pairs: empirically verify AIMD(a,b) attains its frontier point")
		steps   = flag.Int("steps", 3000, "simulation horizon for -check")
		workers = flag.Int("workers", 0, "parallel workers for -check cells (0 = GOMAXPROCS)")
		svgPath = flag.String("svg", "", "with -surface: also write a friendliness heatmap SVG to this file")
		chaosP  = flag.String("chaos", "", "with -check: fault-injection schedule (JSON file) applied to the spot-check runs")
		seed    = flag.Uint64("seed", 0, "with -chaos: seed for the schedule's randomized components")

		explore  = flag.Bool("explore", false, "run the adaptive empirical frontier search over the (α, β) box")
		dense    = flag.Bool("dense", false, "evaluate the full finest-resolution lattice (verification reference; combine with -explore to compare)")
		coarse   = flag.Int("coarse", 7, "with -explore/-dense: coarse-pass grid points per axis")
		rounds   = flag.Int("rounds", 3, "with -explore/-dense: successive-halving refinement rounds (-1 = coarse pass only)")
		refine   = flag.Int("refine-factor", 2, "with -explore/-dense: lattice subdivision factor per round")
		budget   = flag.Int("budget-cells", 0, "with -explore: cap on total cells evaluated (0 = unlimited)")
		slack    = flag.Float64("prune-slack", 0, "with -explore: dominance-bandit optimism margin as a fraction of each objective's spread (0 = default)")
		box      = flag.String("box", "", "with -explore/-dense: αLo,αHi,βLo,βHi bounds (default 0.25,3,0.1,0.9)")
		linkMbps = flag.Float64("mbps", 20, "with -explore/-dense: link bandwidth in Mbps")
		linkBuf  = flag.Float64("buf", 0, "with -explore/-dense: buffer in MSS beyond the bandwidth-delay product")
	)
	ofl := obs.RegisterFlags(flag.CommandLine)
	sfl := axiomcc.RegisterSweepFlags(flag.CommandLine)
	stfl := axiomcc.RegisterStoreFlags(flag.CommandLine)
	flag.Parse()
	sfl.Apply()
	defer stfl.Apply("paretoexplore")()

	stop, err := ofl.Start("paretoexplore")
	if err != nil {
		fatal(err)
	}
	obsStop = stop
	lifecycle.Install("paretoexplore", stop)
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "paretoexplore:", err)
		}
	}()

	did := false
	if *surface {
		did = true
		pts := experiment.Figure1(*alphaN, *betaN)
		fmt.Print(experiment.RenderFigure1(pts))
		if *svgPath != "" {
			if err := writeSurfaceSVG(*svgPath, pts, *alphaN, *betaN); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
		}
	}
	if *point != "" {
		did = true
		coords, err := parseTriple(*point)
		if err != nil {
			fatal(err)
		}
		fast, eff, friendly := coords[0], coords[1], coords[2]
		bound := axiomcc.Theorem2Bound(fast, eff)
		fmt.Printf("point: fast-utilization=%g efficiency=%g tcp-friendliness=%g\n", fast, eff, friendly)
		fmt.Printf("Theorem 2 ceiling at (α=%g, β=%g): %.4f\n", fast, eff, bound)
		if *eps > 0 {
			b3 := axiomcc.Theorem3Bound(fast, eff, *eps, *cap, *tau)
			fmt.Printf("Theorem 3 ceiling with ε=%g on C=%g τ=%g: %.6f\n", *eps, *cap, *tau, b3)
			fmt.Printf("feasible (Theorem 3): %v\n", axiomcc.FeasibleRobust(fast, eff, *eps, friendly, *cap, *tau))
		} else {
			switch {
			case !axiomcc.Feasible(fast, eff, friendly):
				fmt.Println("verdict: INFEASIBLE — no loss-based protocol can attain this point")
			case friendly >= bound-1e-9:
				fmt.Println("verdict: ON the Pareto frontier — attained by AIMD(α, β)")
			default:
				fmt.Println("verdict: feasible but DOMINATED — raising friendliness to the ceiling improves it")
			}
		}
	}
	if *check != "" {
		did = true
		var pairs [][2]float64
		for _, part := range strings.Split(*check, ";") {
			fs := strings.Split(part, ",")
			if len(fs) != 2 {
				fatal(fmt.Errorf("bad -check pair %q", part))
			}
			a, err1 := strconv.ParseFloat(strings.TrimSpace(fs[0]), 64)
			b, err2 := strconv.ParseFloat(strings.TrimSpace(fs[1]), 64)
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad -check pair %q", part))
			}
			pairs = append(pairs, [2]float64{a, b})
		}
		opt := axiomcc.MetricOptions{Steps: *steps, Workers: *workers}
		if *chaosP != "" {
			sched, err := axiomcc.LoadChaosSchedule(*chaosP)
			if err != nil {
				fatal(err)
			}
			opt.Chaos = sched
			opt.ChaosSeed = *seed
		}
		checks, err := experiment.Figure1SpotChecks(pairs, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.RenderFigure1Checks(checks))
	}
	if *explore || *dense {
		did = true
		cfg := experiment.FluidLink(*linkMbps, *linkBuf)
		// One session across both modes: when -explore and -dense run
		// together, the dense pass resolves every cell the adaptive pass
		// already measured from memory (the lattices are bit-identical).
		opt := axiomcc.MetricOptions{Steps: *steps, Workers: *workers, Session: axiomcc.NewMetricSession()}
		if *chaosP != "" {
			sched, err := axiomcc.LoadChaosSchedule(*chaosP)
			if err != nil {
				fatal(err)
			}
			opt.Chaos = sched
			opt.ChaosSeed = *seed
		}
		ec := axiomcc.ExploreConfig{
			Coarse:       *coarse,
			Rounds:       *rounds,
			RefineFactor: *refine,
			BudgetCells:  *budget,
			PruneSlack:   *slack,
			Eval:         axiomcc.AIMDEvaluator(cfg, opt),
		}
		if *box != "" {
			b, err := parseBox(*box)
			if err != nil {
				fatal(err)
			}
			ec.AlphaRange = [2]float64{b[0], b[1]}
			ec.BetaRange = [2]float64{b[2], b[3]}
		}
		var expRes, denseRes *axiomcc.ExploreResult
		if *explore {
			ec.OnRound = func(r axiomcc.ExploreRound) {
				fmt.Fprintf(os.Stderr, "explore round %d: spacing α=%.4g β=%.4g evaluated=%d simulated=%d cache-hits=%d pruned=%d deferred=%d frontier=%d\n",
					r.Round, r.SpacingAlpha, r.SpacingBeta, r.Evaluated, r.Simulated, r.CacheHits, r.Pruned, r.Deferred, len(r.Frontier))
			}
			res, err := axiomcc.Explore(context.Background(), ec)
			if err != nil {
				fatal(err)
			}
			expRes = res
			printFrontier(res)
			fmt.Fprintf(os.Stderr, "explore: evaluated=%d simulated=%d cache-hits=%d pruned=%d rounds=%d frontier=%d\n",
				res.Stats.CellsEvaluated, res.Stats.CellsSimulated, res.Stats.CacheHits, res.Stats.CellsPruned, res.Stats.Rounds, len(res.Frontier))
		}
		if *dense {
			dc := ec
			dc.OnRound = nil
			res, err := axiomcc.ExploreDense(context.Background(), dc)
			if err != nil {
				fatal(err)
			}
			denseRes = res
			if !*explore {
				printFrontier(res)
			}
			fmt.Fprintf(os.Stderr, "dense: evaluated=%d simulated=%d cache-hits=%d frontier=%d\n",
				res.Stats.CellsEvaluated, res.Stats.CellsSimulated, res.Stats.CacheHits, len(res.Frontier))
		}
		if expRes != nil && denseRes != nil {
			missed := denseFrontierMisses(expRes, denseRes)
			ratio := float64(denseRes.Stats.CellsEvaluated) / float64(expRes.Stats.CellsEvaluated)
			fmt.Fprintf(os.Stderr, "compare: explore evaluated %d cells vs dense %d (%.1f× fewer); dense frontier points unmatched by explore: %d\n",
				expRes.Stats.CellsEvaluated, denseRes.Stats.CellsEvaluated, ratio, missed)
		}
	}
	if !did {
		flag.Usage()
		stop()
		os.Exit(2)
	}
}

// printFrontier emits the explored frontier as TSV, sorted as evaluated.
func printFrontier(res *axiomcc.ExploreResult) {
	fmt.Println("alpha\tbeta\tefficiency\ttcp_friendliness")
	for _, p := range res.Frontier {
		fmt.Printf("%g\t%g\t%.6f\t%.6f\n", p.Alpha, p.Beta, p.Coords[0], p.Coords[1])
	}
}

// denseFrontierMisses counts dense frontier points that no explored
// point matches or dominates — 0 means the adaptive search reached the
// dense frontier at full resolution.
func denseFrontierMisses(exp, dense *axiomcc.ExploreResult) int {
	missed := 0
	for _, dp := range dense.Frontier {
		ok := false
		for _, ep := range exp.Points {
			if coordsEqual(ep.Coords, dp.Coords) || axiomcc.Dominates(ep.Coords, dp.Coords) {
				ok = true
				break
			}
		}
		if !ok {
			missed++
		}
	}
	return missed
}

func coordsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parseBox parses αLo,αHi,βLo,βHi.
func parseBox(s string) ([4]float64, error) {
	var out [4]float64
	fs := strings.Split(s, ",")
	if len(fs) != 4 {
		return out, fmt.Errorf("want αLo,αHi,βLo,βHi — got %q", s)
	}
	for i, f := range fs {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return out, fmt.Errorf("bad box bound %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// writeSurfaceSVG renders Figure 1's frontier as a heatmap: friendliness
// over the (α, β) grid.
func writeSurfaceSVG(path string, pts []axiomcc.SurfacePoint, alphaN, betaN int) error {
	// pts iterate α-major (β fastest); build grid[βIdx][αIdx].
	grid := make([][]float64, betaN)
	for y := range grid {
		grid[y] = make([]float64, alphaN)
	}
	var xs, ys []float64
	for i, p := range pts {
		a, b := i/betaN, i%betaN
		grid[b][a] = p.Friendliness
		if b == 0 {
			xs = append(xs, p.FastUtilization)
		}
		if a == 0 {
			ys = append(ys, p.Efficiency)
		}
	}
	svg := svgplot.Heatmap(grid, svgplot.HeatmapOptions{
		Title:   "Figure 1: TCP-friendliness frontier 3(1−β)/(α(1+β))",
		XLabel:  "fast-utilization α",
		YLabel:  "efficiency β",
		XValues: xs,
		YValues: ys,
	})
	return os.WriteFile(path, []byte(svg), 0o644)
}

func parseTriple(s string) ([3]float64, error) {
	var out [3]float64
	fs := strings.Split(s, ",")
	if len(fs) != 3 {
		return out, fmt.Errorf("want fast,eff,friendly — got %q", s)
	}
	for i, f := range fs {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return out, fmt.Errorf("bad coordinate %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paretoexplore:", err)
	if obsStop != nil {
		obsStop()
	}
	os.Exit(1)
}
