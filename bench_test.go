package axiomcc_test

// One benchmark per table and figure of the paper, plus ablation benches
// for the design choices DESIGN.md calls out. Each bench both measures the
// cost of regenerating its artifact and reports the artifact's headline
// numbers via b.ReportMetric, so `go test -bench=. -benchmem` doubles as a
// compact reproduction log:
//
//	BenchmarkTable1Theory          Table 1 (closed forms)
//	BenchmarkTable1Empirical       Table 1 validated on the fluid model
//	BenchmarkEmulabHierarchy       §5.1 ordering experiments (one cell)
//	BenchmarkTable2Friendliness    Table 2 (one cell; R-AIMD vs PCC)
//	BenchmarkFigure1Frontier       Figure 1 surface
//	BenchmarkTheorem1Sweep ...     executable theorem checks
//	BenchmarkAblation*             design-choice ablations
//	BenchmarkFluidStep / BenchmarkPacketSimSecond   raw simulator cost
//
// Three benchmarks double as CI perf baselines and emit JSON records:
// BenchmarkSweep (BENCH_sweep.json) compares the per-cell serial code
// path to the orchestrated engine (engine.Sweep for the packet grid,
// engine.SweepSpecs' SoA grid-batch path for the fluid grid), with both
// legs interleaved inside each iteration so the measurement is
// position-free; BenchmarkCharacterize (BENCH_characterize.json)
// compares a full eight-axiom characterization with the
// content-addressed run cache off and on — the cached pass simulates
// each unique (config, init) run once (4× fewer steps for Reno, n = 2)
// and the fluid/stream hot loops are allocation-free, so -benchmem
// numbers track both wins; BenchmarkExplore (BENCH_pareto.json) pins
// the adaptive frontier explorer's cell economy against the dense grid
// it replaces — cells_evaluated/cells_simulated are exact-gated and
// frontier_points/cells_reduction are floor-gated via the record's
// declared key lists. BenchmarkGridStep tracks the raw batch stepping
// rate as the grid grows.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	axiomcc "repro"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
)

var benchOpt = axiomcc.MetricOptions{Steps: 1500}

func link20() axiomcc.LinkConfig {
	return axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    100,
	}
}

// BenchmarkTable1Theory regenerates Table 1's five closed-form rows.
func BenchmarkTable1Theory(b *testing.B) {
	lp := axiomcc.TheoryLink{C: 70, Tau: 100, N: 2}
	var rows []axiomcc.TheoryRow
	for i := 0; i < b.N; i++ {
		rows = axiomcc.Table1Rows(lp)
	}
	b.ReportMetric(rows[0].At.Efficiency, "reno-eff")
	b.ReportMetric(rows[0].At.TCPFriendliness, "reno-friendly")
}

// BenchmarkTable1Empirical measures one full empirical Table 1 pass on the
// fluid model (five protocols × eight metrics).
func BenchmarkTable1Empirical(b *testing.B) {
	var scores []experiment.ProtocolScores
	var err error
	for i := 0; i < b.N; i++ {
		scores, err = experiment.Table1Empirical(link20(), 2, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(scores[0].Empirical.Efficiency, "reno-eff")
	b.ReportMetric(scores[4].Empirical.Robustness, "raimd-robust")
}

// BenchmarkEmulabHierarchy runs one §5.1 grid cell (three protocols on the
// packet-level link).
func BenchmarkEmulabHierarchy(b *testing.B) {
	var res *experiment.HierarchyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Hierarchy(experiment.HierarchyConfig{
			Senders:    []int{2},
			Bandwidths: []float64{20},
			Buffers:    []int{100},
			Duration:   30,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Agreement["efficiency"], "eff-agreement")
	b.ReportMetric(res.Agreement["fairness"], "fair-agreement")
}

// BenchmarkTable2Friendliness runs one Table 2 cell: Robust-AIMD vs PCC
// friendliness toward Reno on the 20 Mbps packet link.
func BenchmarkTable2Friendliness(b *testing.B) {
	var res *experiment.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Table2(experiment.Table2Config{
			Senders:    []int{2},
			Bandwidths: []float64{20},
			Duration:   30,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].RAIMD, "raimd-friendliness")
	b.ReportMetric(res.Cells[0].PCC, "pcc-friendliness")
	b.ReportMetric(res.Cells[0].Improvement, "improvement-x")
}

// BenchmarkFigure1Frontier regenerates the Figure 1 surface at the
// resolution used by cmd/reproduce.
func BenchmarkFigure1Frontier(b *testing.B) {
	var pts []axiomcc.SurfacePoint
	for i := 0; i < b.N; i++ {
		pts = experiment.Figure1(12, 9)
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkTheorem1Sweep runs the Theorem 1 implication check over its
// protocol sweep.
func BenchmarkTheorem1Sweep(b *testing.B) {
	var checks []experiment.Theorem1Check
	var err error
	for i := 0; i < b.N; i++ {
		checks, err = experiment.CheckTheorem1(benchOpt, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	holds := 0.0
	for _, c := range checks {
		if c.Holds {
			holds++
		}
	}
	b.ReportMetric(holds/float64(len(checks)), "holds-frac")
}

// BenchmarkTheorem2Sweep measures the Theorem 2 bound's empirical
// tightness across the AIMD sweep.
func BenchmarkTheorem2Sweep(b *testing.B) {
	var checks []experiment.Theorem2Check
	var err error
	for i := 0; i < b.N; i++ {
		checks, err = experiment.CheckTheorem2(nil, benchOpt, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, c := range checks {
		if c.Tightness > worst {
			worst = c.Tightness
		}
	}
	b.ReportMetric(worst, "max-tightness")
}

// BenchmarkTheorem3Sweep runs the ε sweep of the robustness-friendliness
// trade.
func BenchmarkTheorem3Sweep(b *testing.B) {
	var checks []experiment.Theorem3Check
	var err error
	for i := 0; i < b.N; i++ {
		checks, err = experiment.CheckTheorem3(nil, benchOpt, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(checks[len(checks)-1].Measured, "friendliness-at-eps-max")
}

// BenchmarkRobustnessSweep locates Robust-AIMD's robustness threshold by
// bisection (Metric VI).
func BenchmarkRobustnessSweep(b *testing.B) {
	ra := axiomcc.NewRobustAIMD(1, 0.8, 0.02)
	var r float64
	var err error
	for i := 0; i < b.N; i++ {
		r, err = axiomcc.Robustness(ra, 0.5, 2e-3, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r, "threshold")
}

// BenchmarkAblationEpsilon sweeps Robust-AIMD's ε, the design knob that
// trades robustness (Metric VI) against TCP-friendliness (Theorem 3):
// reported metrics show friendliness falling as ε rises.
func BenchmarkAblationEpsilon(b *testing.B) {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(100),
		PropDelay: 0.021,
		Buffer:    350,
	}
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		var err error
		lo, err = axiomcc.TCPFriendliness(cfg, axiomcc.NewRobustAIMD(1, 0.8, 0.005), 1, 1, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		hi, err = axiomcc.TCPFriendliness(cfg, axiomcc.NewRobustAIMD(1, 0.8, 0.02), 1, 1, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lo, "friendly-eps-0.005")
	b.ReportMetric(hi, "friendly-eps-0.02")
}

// BenchmarkAblationBufferDepth sweeps τ/C, the knob behind Table 1's
// efficiency entry min(1, b(1+τ/C)): shallow buffers hurt Reno (b = 0.5)
// far more than Cubic-style gentle backoff (b = 0.8).
func BenchmarkAblationBufferDepth(b *testing.B) {
	var shallowReno, shallowGentle float64
	for i := 0; i < b.N; i++ {
		cfg := axiomcc.LinkConfig{
			Bandwidth: axiomcc.MbpsToMSSps(20),
			PropDelay: 0.021,
			Buffer:    5, // τ/C ≈ 0.07
		}
		var err error
		shallowReno, err = axiomcc.Efficiency(cfg, axiomcc.Reno(), 1, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		shallowGentle, err = axiomcc.Efficiency(cfg, axiomcc.NewAIMD(1, 0.8), 1, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shallowReno, "reno-eff-shallow")
	b.ReportMetric(shallowGentle, "gentle-eff-shallow")
}

// BenchmarkAblationMonotoneFriendliness tests the paper's §5.2 claim that
// Robust-AIMD's TCP-friendliness improves as more Robust-AIMD connections
// share the link.
func BenchmarkAblationMonotoneFriendliness(b *testing.B) {
	cfg := experiment.EmulabLink(20, 100)
	var one, three float64
	for i := 0; i < b.N; i++ {
		res1, err := experiment.Table2(experiment.Table2Config{
			Senders: []int{2}, Bandwidths: []float64{20}, Duration: 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		res3, err := experiment.Table2(experiment.Table2Config{
			Senders: []int{4}, Bandwidths: []float64{20}, Duration: 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		one, three = res1.Cells[0].RAIMD, res3.Cells[0].RAIMD
	}
	_ = cfg
	b.ReportMetric(one, "friendliness-1-raimd")
	b.ReportMetric(three, "friendliness-3-raimd")
}

// BenchmarkRobustnessTable regenerates Table 1's robustness column (all
// protocols' Metric VI thresholds).
func BenchmarkRobustnessTable(b *testing.B) {
	var entries []experiment.RobustnessEntry
	var err error
	for i := 0; i < b.N; i++ {
		entries, err = experiment.RobustnessSweep(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range entries {
		if e.Name == "RobustAIMD(1,0.8,0.05)" {
			b.ReportMetric(e.Threshold, "raimd-0.05-threshold")
		}
		if e.Name == "PCC(δ=20)" {
			b.ReportMetric(e.Threshold, "pcc-threshold")
		}
	}
}

// BenchmarkParkingLotSweep runs the §6 network-wide extension sweep.
func BenchmarkParkingLotSweep(b *testing.B) {
	var entries []experiment.ParkingLotEntry
	var err error
	for i := 0; i < b.N; i++ {
		entries, err = experiment.ParkingLotExperiment([]int{1, 2, 4}, 3000, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(entries[len(entries)-1].WindowRatio, "4hop-window-ratio")
	b.ReportMetric(entries[len(entries)-1].GoodputRatio, "4hop-goodput-ratio")
}

// BenchmarkAblationQueueDiscipline compares droptail to RED on the packet
// link: the AQM trades a little throughput for much lower standing delay.
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	base := experiment.EmulabLink(20, 100)
	red := base
	red.Queue = axiomcc.NewRED(10, 40, 0.1, 100)
	flows := []axiomcc.PacketFlow{{Proto: axiomcc.Reno(), Init: 1}}
	var dtThr, redThr float64
	for i := 0; i < b.N; i++ {
		resDT, err := axiomcc.RunPacketLevel(base, flows, 30)
		if err != nil {
			b.Fatal(err)
		}
		resRED, err := axiomcc.RunPacketLevel(red, flows, 30)
		if err != nil {
			b.Fatal(err)
		}
		dtThr = resDT.Throughput(0, 0.5)
		redThr = resRED.Throughput(0, 0.5)
	}
	b.ReportMetric(dtThr, "droptail-thr")
	b.ReportMetric(redThr, "red-thr")
}

// fluidGridSteps is the horizon of BenchmarkSweep's fluid grid; with
// fluidGridCells() producing 24 cells, one op advances exactly
// 24 × 16,000 = 384,000 grid-steps — the exact work counters the bench
// gate pins (grid_cells, grid_steps in BENCH_sweep.json).
const fluidGridSteps = 16000

// fluidGridCells builds a fresh 24-cell kernel-steppable sweep grid:
// eight closed-form protocol configurations (AIMD, MIMD, binomial,
// robust-AIMD, HighSpeed families) × the three default initial
// configurations, two senders each. Substrates are single-use, so every
// benchmark leg rebuilds them.
func fluidGridCells() []*engine.FluidSpec {
	cfg := link20()
	protos := []axiomcc.Protocol{
		protocol.Reno(),
		protocol.ScalableAIMD(),
		protocol.Scalable(),
		protocol.IIAD(),
		protocol.SQRT(),
		protocol.NewRobustAIMD(1, 0.8, 0.01),
		protocol.NewRobustAIMD(1, 0.8, 0.05),
		protocol.NewHighSpeed(),
	}
	inits := metrics.DefaultInitConfigs(cfg, 2)
	subs := make([]*engine.FluidSpec, 0, len(protos)*len(inits))
	for _, p := range protos {
		for _, init := range inits {
			senders, err := fluid.HomogeneousSenders(p, 2, init)
			if err != nil {
				panic(err) // static bench grid; cannot fail
			}
			subs = append(subs, &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: fluidGridSteps})
		}
	}
	return subs
}

// BenchmarkSweep is the perf baseline for the sweep engine. Every
// iteration pushes the same two-part workload through both code paths,
// with the order alternating between iterations (serial first on even
// ops, engine first on odd) so cache warmth and background drift cannot
// bias one side — the flaw that made earlier positional measurements
// report phantom ratios:
//
//   - packet part: the small Table 2 grid, per-cell recorded runs (the
//     pre-engine loop) vs experiment.Table2 through engine.Sweep;
//   - fluid part: the 24-cell kernel grid of fluidGridCells, one
//     engine.Run per cell feeding a streaming observer vs
//     engine.SweepSpecs over the same specs and observers, which steps
//     the whole grid in lockstep through the SoA batch path — both legs
//     produce identical Streams, so the ratio isolates orchestration.
//
// The headline speedup is the MEDIAN of the per-iteration paired ratios,
// not the ratio of summed times: each iteration times both legs back to
// back, so its ratio is immune to machine-load drift across iterations,
// and the median discards iterations where a background burst hit one
// leg only. The summed serial/engine ns_per_op keys are still recorded
// for the timing gate.
//
// Alongside the timing ratio the record pins the grid's exact work
// counters (grid_cells, grid_steps — any growth fails the bench gate
// even across machines) and grid_steps_per_sec, the batched fluid
// phase's throughput, gated on same-shape machines.
func BenchmarkSweep(b *testing.B) {
	grid := experiment.Table2Config{
		Senders:    []int{2, 3},
		Bandwidths: []float64{20, 30},
		Duration:   4,
		Seeds:      1,
	}
	// serialCell mirrors Table 2's friendliness measurement the way the
	// pre-engine loop computed it: a recording packet-level run per cell.
	serialCell := func(p axiomcc.Protocol, nProto int, mbps float64) (float64, error) {
		cfg := experiment.EmulabLink(mbps, 100)
		flows := make([]axiomcc.PacketFlow, 0, nProto+1)
		for i := 0; i < nProto; i++ {
			flows = append(flows, axiomcc.PacketFlow{Proto: p, Init: 1, Start: float64(i) * 0.003})
		}
		flows = append(flows, axiomcc.PacketFlow{Proto: axiomcc.Reno(), Init: 1})
		res, err := axiomcc.RunPacketLevel(cfg, flows, grid.Duration)
		if err != nil {
			return 0, err
		}
		reno := res.Throughput(nProto, 0.5)
		strongest := 0.0
		for i := 0; i < nProto; i++ {
			if t := res.Throughput(i, 0.5); t > strongest {
				strongest = t
			}
		}
		if strongest == 0 {
			return math.Inf(1), nil
		}
		return reno / strongest, nil
	}
	var serialMean, engineMean float64
	serialLeg := func() error {
		sum, cells := 0.0, 0
		for _, n := range grid.Senders {
			for _, mbps := range grid.Bandwidths {
				ra, err := serialCell(axiomcc.NewRobustAIMD(1, 0.8, 0.01), n-1, mbps)
				if err != nil {
					return err
				}
				pc, err := serialCell(axiomcc.DefaultPCC(), n-1, mbps)
				if err != nil {
					return err
				}
				sum += ra / pc
				cells++
			}
		}
		serialMean = sum / float64(cells)
		for _, sub := range fluidGridCells() {
			st := metrics.NewStream(sub.Meta(), metrics.DefaultTailFrac)
			if _, err := engine.Run(context.Background(), engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}); err != nil {
				return err
			}
		}
		return nil
	}
	var fluidNs int64 // batched fluid phase only, for grid_steps_per_sec
	engineLeg := func() error {
		res, err := experiment.Table2(grid) // Workers 0 = GOMAXPROCS pool
		if err != nil {
			return err
		}
		engineMean = res.MeanImprovement
		subs := fluidGridCells()
		specs := make([]engine.Spec, len(subs))
		for i, sub := range subs {
			st := metrics.NewStream(sub.Meta(), metrics.DefaultTailFrac)
			specs[i] = engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}
		}
		t0 := time.Now()
		_, err = engine.SweepSpecs(context.Background(), specs, engine.SweepConfig{})
		fluidNs += time.Since(t0).Nanoseconds()
		return err
	}
	var serialNs, engineNs, serialAllocs, engineAllocs int64
	timed := func(leg func() error, ns, allocs *int64) int64 {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if err := leg(); err != nil {
			b.Fatal(err)
		}
		d := time.Since(t0).Nanoseconds()
		*ns += d
		runtime.ReadMemStats(&ms1)
		*allocs += int64(ms1.Mallocs - ms0.Mallocs)
		return d
	}
	ratios := make([]float64, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s, e int64
		if i%2 == 0 {
			s = timed(serialLeg, &serialNs, &serialAllocs)
			e = timed(engineLeg, &engineNs, &engineAllocs)
		} else {
			e = timed(engineLeg, &engineNs, &engineAllocs)
			s = timed(serialLeg, &serialNs, &serialAllocs)
		}
		if s > 0 && e > 0 {
			ratios = append(ratios, float64(s)/float64(e))
		}
	}
	b.StopTimer()
	n := int64(b.N)
	gridCells := int64(len(fluidGridCells()))
	gridSteps := gridCells * fluidGridSteps
	// The baseline record CI archives: same workload through both code
	// paths, so a regression in the engine layer, the batch kernels, or
	// the obs hooks (disabled here and required to stay free) shows up as
	// a ratio shift.
	rec := benchSweepRecord{
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		MaxProcs:          runtime.GOMAXPROCS(0),
		SerialNsPerOp:     serialNs / n,
		EngineNsPerOp:     engineNs / n,
		SerialAllocsPerOp: serialAllocs / n,
		EngineAllocsPerOp: engineAllocs / n,
		SerialMean:        serialMean,
		EngineMean:        engineMean,
		GridCells:         gridCells,
		GridSteps:         gridSteps,
		ObsEnabled:        obs.Enabled(),
		MeanImprovement:   engineMean,
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		rec.Speedup = ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			rec.Speedup = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
	}
	if fluidNs > 0 {
		rec.GridStepsPerSec = float64(gridSteps*n) / (float64(fluidNs) * 1e-9)
	}
	b.ReportMetric(rec.Speedup, "serial/engine")
	b.ReportMetric(rec.GridStepsPerSec, "grid-steps/sec")
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_sweep.json (speedup %.2fx, %.1fM grid-steps/sec)", rec.Speedup, rec.GridStepsPerSec/1e6)

	// One untimed instrumented pass exports the engine leg's span timeline
	// as Chrome trace-event JSON (BENCH_sweep_timeline.json, uploaded next
	// to the baseline by CI): one track per sweep worker, batched groups
	// visible as engine.batch.* spans. Runs outside the timer, so it
	// cannot perturb the baseline numbers above.
	obs.Enable()
	obs.EnableTimeline()
	if err := engineLeg(); err != nil {
		b.Fatal(err)
	}
	obs.DisableTimeline()
	if err := obs.WriteTimeline("BENCH_sweep_timeline.json", "BenchmarkSweep"); err != nil {
		b.Fatal(err)
	}
	obs.Disable()
	obs.Reset()
	b.Logf("wrote BENCH_sweep_timeline.json")
}

// benchSweepRecord is the schema of BENCH_sweep.json, the sweep perf
// baseline BenchmarkSweep writes (and CI uploads as an artifact).
// grid_cells/grid_steps are exact machine-independent work counters;
// grid_steps_per_sec is the batched fluid phase's throughput.
type benchSweepRecord struct {
	GoVersion         string  `json:"go_version"`
	GOOS              string  `json:"os"`
	GOARCH            string  `json:"arch"`
	MaxProcs          int     `json:"max_procs"`
	SerialNsPerOp     int64   `json:"serial_ns_per_op"`
	EngineNsPerOp     int64   `json:"engine_ns_per_op"`
	SerialAllocsPerOp int64   `json:"serial_allocs_per_op"`
	EngineAllocsPerOp int64   `json:"engine_allocs_per_op"`
	Speedup           float64 `json:"speedup"`
	SerialMean        float64 `json:"serial_mean_improvement"`
	EngineMean        float64 `json:"engine_mean_improvement"`
	GridCells         int64   `json:"grid_cells"`
	GridSteps         int64   `json:"grid_steps"`
	GridStepsPerSec   float64 `json:"grid_steps_per_sec"`
	ObsEnabled        bool    `json:"obs_enabled"`
	MeanImprovement   float64 `json:"mean_improvement"`
}

// BenchmarkGridStep measures the raw SoA batch stepping rate as the grid
// grows: one op is one lockstep Step() over the whole batch, and the
// reported grid-steps/sec rate (cells × ops / sec) shows how per-step
// overhead amortizes across cells.
func BenchmarkGridStep(b *testing.B) {
	for _, cells := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("cells-%d", cells), func(b *testing.B) {
			protos := []axiomcc.Protocol{
				protocol.Reno(),
				protocol.Scalable(),
				protocol.IIAD(),
				protocol.NewRobustAIMD(1, 0.8, 0.01),
			}
			bc := make([]fluid.BatchCell, cells)
			for i := range bc {
				senders, err := fluid.HomogeneousSenders(protos[i%len(protos)], 2, []float64{1, 40})
				if err != nil {
					b.Fatal(err)
				}
				bc[i] = fluid.BatchCell{Cfg: link20(), Senders: senders}
			}
			batch, err := fluid.NewBatch(bc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Step()
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(cells)*float64(b.N)/sec, "grid-steps/sec")
			}
		})
	}
}

// BenchmarkCharacterize is the perf baseline for the run-deduplication
// layer: a full eight-axiom characterization of Reno (2 senders) with the
// content-addressed cache disabled — the pre-cache baseline, every
// estimator re-simulating its own runs — and enabled, where the five
// tail estimators and the Reno-vs-Reno friendliness mix all share the
// same simulated cells. Alongside wall clock it records the simulated-
// vs-saved step counts from the session, the acceptance metric for the
// dedup layer, into BENCH_characterize.json (mirroring BENCH_sweep.json).
func BenchmarkCharacterize(b *testing.B) {
	cfg := link20()
	var uncachedNs, cachedNs, uncachedAllocs, cachedAllocs int64
	var uncached, cached axiomcc.MetricScores
	var stats axiomcc.MetricSessionStats
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		opt := benchOpt
		opt.NoCache = true
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			var err error
			uncached, err = axiomcc.Characterize(cfg, axiomcc.Reno(), 2, opt)
			if err != nil {
				b.Fatal(err)
			}
		}
		runtime.ReadMemStats(&ms1)
		uncachedNs = b.Elapsed().Nanoseconds() / int64(b.N)
		uncachedAllocs = int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N)
		b.ReportMetric(uncached.Efficiency, "reno-eff")
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			// A fresh session per iteration: the measured win is intra-call
			// dedup, not reuse across iterations.
			opt := benchOpt
			opt.Session = axiomcc.NewMetricSession()
			var err error
			cached, err = axiomcc.Characterize(cfg, axiomcc.Reno(), 2, opt)
			if err != nil {
				b.Fatal(err)
			}
			stats = opt.Session.Stats()
		}
		runtime.ReadMemStats(&ms1)
		cachedNs = b.Elapsed().Nanoseconds() / int64(b.N)
		cachedAllocs = int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N)
		b.ReportMetric(cached.Efficiency, "reno-eff")
		b.ReportMetric(float64(stats.Misses), "runs-simulated")
		b.ReportMetric(float64(stats.Hits), "runs-deduped")
	})
	// The cache must never move a score: bit-identity is part of the
	// baseline contract.
	if math.Float64bits(uncached.Efficiency) != math.Float64bits(cached.Efficiency) ||
		math.Float64bits(uncached.TCPFriendliness) != math.Float64bits(cached.TCPFriendliness) {
		b.Fatalf("cached scores diverged from uncached:\n  uncached %v\n  cached   %v", uncached, cached)
	}
	rec := benchCharacterizeRecord{
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		MaxProcs:            runtime.GOMAXPROCS(0),
		UncachedNsPerOp:     uncachedNs,
		CachedNsPerOp:       cachedNs,
		UncachedAllocsPerOp: uncachedAllocs,
		CachedAllocsPerOp:   cachedAllocs,
		RunsSimulated:       stats.Misses,
		RunsDeduped:         stats.Hits,
		StepsSimulated:      stats.StepsSimulated,
		StepsSaved:          stats.StepsSaved,
		ObsEnabled:          obs.Enabled(),
		RenoEfficiency:      cached.Efficiency,
	}
	if uncachedNs > 0 && cachedNs > 0 {
		rec.Speedup = float64(uncachedNs) / float64(cachedNs)
	}
	if stats.StepsSimulated > 0 {
		rec.StepsRatio = float64(stats.StepsSimulated+stats.StepsSaved) / float64(stats.StepsSimulated)
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_characterize.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_characterize.json (steps ratio %.2fx, wall %.2fx)", rec.StepsRatio, rec.Speedup)
}

// benchCharacterizeRecord is the schema of BENCH_characterize.json, the
// run-cache perf baseline BenchmarkCharacterize writes (and CI uploads as
// an artifact). steps_ratio is the acceptance metric: simulated steps the
// same call would have cost uncached, relative to what actually ran.
type benchCharacterizeRecord struct {
	GoVersion           string  `json:"go_version"`
	GOOS                string  `json:"os"`
	GOARCH              string  `json:"arch"`
	MaxProcs            int     `json:"max_procs"`
	UncachedNsPerOp     int64   `json:"uncached_ns_per_op"`
	CachedNsPerOp       int64   `json:"cached_ns_per_op"`
	UncachedAllocsPerOp int64   `json:"uncached_allocs_per_op"`
	CachedAllocsPerOp   int64   `json:"cached_allocs_per_op"`
	Speedup             float64 `json:"speedup"`
	RunsSimulated       int64   `json:"runs_simulated"`
	RunsDeduped         int64   `json:"runs_deduped"`
	StepsSimulated      int64   `json:"steps_simulated"`
	StepsSaved          int64   `json:"steps_saved"`
	StepsRatio          float64 `json:"steps_ratio"`
	ObsEnabled          bool    `json:"obs_enabled"`
	RenoEfficiency      float64 `json:"reno_eff"`
}

// benchExploreConfig is BenchmarkExplore's fixed workload: the paper's
// full Figure 1 box refined down to a 65×65 lattice (coarse 9 + three
// halving rounds), the grid a dense reproduction would simulate
// outright. Steps 400 keeps one op around a second while exercising the
// same limit-cycle landscape as the long-horizon experiments.
func benchExploreConfig() axiomcc.ExploreConfig {
	return axiomcc.ExploreConfig{Coarse: 9, Rounds: 3, RefineFactor: 2}
}

// benchExploreFrontierEps is the per-objective relative tolerance the
// dense-coverage assertion allows. The empirical AIMD landscape has
// non-monotone ~1–2% efficiency wiggles along its β ≈ 0.9 edge (fluid
// limit cycles, persistent at longer horizons), which produce isolated
// dense-frontier points no ring-adjacent refinement can reach; measured
// worst-case shortfall is 2.5%, everything else under 1.2%.
const benchExploreFrontierEps = 0.03

// BenchmarkExplore is the perf baseline for adaptive frontier
// exploration: each timed op runs pareto.Explore cold (fresh in-memory
// session, no store) over benchExploreConfig, so cells_evaluated and
// cells_simulated are deterministic machine-independent counters — the
// cell economy the successive-halving ladder and the dominance bandit
// buy. An untimed ExploreDense pass over the same finest lattice then
// verifies the acceptance contract in the bench itself: at least 10×
// fewer cells evaluated, and every dense frontier point matched,
// dominated, or within benchExploreFrontierEps per objective. The record
// declares its own gate keys (exact_keys/floor_keys), so benchcmp pins
// them across machine shapes without a code change.
func BenchmarkExplore(b *testing.B) {
	cfg := experiment.FluidLink(20, 0)
	var exp *axiomcc.ExploreResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec := benchExploreConfig()
		opt := axiomcc.MetricOptions{Steps: 400, Session: axiomcc.NewMetricSession()}
		ec.Eval = axiomcc.AIMDEvaluator(cfg, opt)
		var err error
		exp, err = axiomcc.Explore(context.Background(), ec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	exploreNs := b.Elapsed().Nanoseconds() / int64(b.N)

	// Untimed verification leg: the dense grid the explorer replaces.
	dc := benchExploreConfig()
	dc.Eval = axiomcc.AIMDEvaluator(cfg, axiomcc.MetricOptions{Steps: 400, Session: axiomcc.NewMetricSession()})
	t0 := time.Now()
	dense, err := axiomcc.ExploreDense(context.Background(), dc)
	if err != nil {
		b.Fatal(err)
	}
	denseNs := time.Since(t0).Nanoseconds()

	reduction := float64(dense.Stats.CellsEvaluated) / float64(exp.Stats.CellsEvaluated)
	if reduction < 10 {
		b.Fatalf("explore evaluated %d cells vs dense %d: %.1f× reduction, want >= 10×",
			exp.Stats.CellsEvaluated, dense.Stats.CellsEvaluated, reduction)
	}
	// Equal-or-finer frontier up to simulation noise: every dense
	// frontier point must be covered by some explored point to within
	// the documented per-objective tolerance.
	worstEps := 0.0
	for _, dp := range dense.Frontier {
		best := math.Inf(1)
		for _, ep := range exp.Points {
			eps := 0.0
			for k := range dp.Coords {
				if ep.Coords[k] < dp.Coords[k] && dp.Coords[k] > 0 {
					if short := (dp.Coords[k] - ep.Coords[k]) / dp.Coords[k]; short > eps {
						eps = short
					}
				}
			}
			if eps < best {
				best = eps
			}
		}
		if best > benchExploreFrontierEps {
			b.Fatalf("dense frontier point (α=%g, β=%g) uncovered: nearest explored shortfall %.4f > %.4f",
				dp.Alpha, dp.Beta, best, benchExploreFrontierEps)
		}
		if best > worstEps {
			worstEps = best
		}
	}

	rec := benchParetoRecord{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		MaxProcs:       runtime.GOMAXPROCS(0),
		ExactKeys:      []string{"cells_evaluated", "cells_simulated"},
		FloorKeys:      []string{"frontier_points", "cells_reduction"},
		ExploreNsPerOp: exploreNs,
		DenseNs:        denseNs,
		CellsEvaluated: exp.Stats.CellsEvaluated,
		CellsSimulated: exp.Stats.CellsSimulated,
		CacheHits:      exp.Stats.CacheHits,
		CellsPruned:    exp.Stats.CellsPruned,
		Rounds:         exp.Stats.Rounds,
		FrontierPoints: len(exp.Frontier),
		DenseCells:     dense.Stats.CellsEvaluated,
		DenseFrontier:  len(dense.Frontier),
		CellsReduction: reduction,
		WorstEps:       worstEps,
		ObsEnabled:     obs.Enabled(),
	}
	b.ReportMetric(float64(rec.CellsEvaluated), "cells")
	b.ReportMetric(rec.CellsReduction, "dense/explore")
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pareto.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_pareto.json (%d cells vs %d dense, %.1fx fewer, worst frontier eps %.4f)",
		rec.CellsEvaluated, rec.DenseCells, rec.CellsReduction, rec.WorstEps)
}

// benchParetoRecord is the schema of BENCH_pareto.json, the adaptive
// exploration baseline BenchmarkExplore writes (and CI uploads as an
// artifact). cells_evaluated/cells_simulated are exact work counters
// (any growth regresses); frontier_points/cells_reduction are quality
// floors (any shrink regresses) — both declared in the record itself so
// benchcmp gates them machine-independently.
type benchParetoRecord struct {
	GoVersion      string   `json:"go_version"`
	GOOS           string   `json:"os"`
	GOARCH         string   `json:"arch"`
	MaxProcs       int      `json:"max_procs"`
	ExactKeys      []string `json:"exact_keys"`
	FloorKeys      []string `json:"floor_keys"`
	ExploreNsPerOp int64    `json:"explore_ns_per_op"`
	DenseNs        int64    `json:"dense_ns"`
	CellsEvaluated int      `json:"cells_evaluated"`
	CellsSimulated int      `json:"cells_simulated"`
	CacheHits      int      `json:"cache_hits"`
	CellsPruned    int      `json:"cells_pruned"`
	Rounds         int      `json:"rounds"`
	FrontierPoints int      `json:"frontier_points"`
	DenseCells     int      `json:"dense_cells"`
	DenseFrontier  int      `json:"dense_frontier_points"`
	CellsReduction float64  `json:"cells_reduction"`
	WorstEps       float64  `json:"worst_frontier_eps"`
	ObsEnabled     bool     `json:"obs_enabled"`
}

// BenchmarkMultilinkStep measures the raw cost of one network step on a
// 4-hop parking lot (5 flows, 4 links).
func BenchmarkMultilinkStep(b *testing.B) {
	net, err := axiomcc.ParkingLot(4, axiomcc.NetLinkSpec{
		Bandwidth: 100 / 0.042, PropDelay: 0.021, Buffer: 20,
	}, axiomcc.Reno(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkFluidStep measures the raw cost of one fluid-model time step
// with 4 senders.
func BenchmarkFluidStep(b *testing.B) {
	l, err := axiomcc.NewLink(link20(),
		axiomcc.LinkSender{Proto: axiomcc.Reno(), Init: 1},
		axiomcc.LinkSender{Proto: axiomcc.CubicLinux(), Init: 10},
		axiomcc.LinkSender{Proto: axiomcc.Scalable(), Init: 20},
		axiomcc.LinkSender{Proto: axiomcc.NewRobustAIMD(1, 0.8, 0.01), Init: 30},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

// BenchmarkPacketSimSecond measures the cost of one simulated second on
// the packet-level 20 Mbps link with two flows (~3.3k packets).
func BenchmarkPacketSimSecond(b *testing.B) {
	cfg := experiment.EmulabLink(20, 100)
	flows := []axiomcc.PacketFlow{
		{Proto: axiomcc.Reno(), Init: 1},
		{Proto: axiomcc.CubicLinux(), Init: 1},
	}
	for i := 0; i < b.N; i++ {
		if _, err := axiomcc.RunPacketLevel(cfg, flows, 1); err != nil {
			b.Fatal(err)
		}
	}
}
