package axiomcc_test

import (
	"math"
	"strings"
	"testing"

	axiomcc "repro"
)

// TestEndToEndFluid drives the public API the way the quickstart example
// does: build a link, run two Reno flows, inspect the trace and score the
// protocol.
func TestEndToEndFluid(t *testing.T) {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    50,
	}
	tr, err := axiomcc.RunHomogeneous(cfg, axiomcc.Reno(), 2, []float64{1, 40}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 || tr.Senders() != 2 {
		t.Fatalf("trace shape: %d steps, %d senders", tr.Len(), tr.Senders())
	}
	// Two Renos converge to a fair split.
	a, b := tr.AvgWindow(0, 0.75), tr.AvgWindow(1, 0.75)
	if r := math.Min(a, b) / math.Max(a, b); r < 0.85 {
		t.Fatalf("fairness ratio = %v", r)
	}
	scores, err := axiomcc.Characterize(cfg, axiomcc.Reno(), 2, axiomcc.MetricOptions{Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if scores.Efficiency <= 0 || scores.Fairness < 0.8 {
		t.Fatalf("scores = %+v", scores)
	}
}

// TestEndToEndPacket exercises the packet-level facade.
func TestEndToEndPacket(t *testing.T) {
	cfg := axiomcc.PacketConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    100,
	}
	res, err := axiomcc.RunPacketLevel(cfg, []axiomcc.PacketFlow{
		{Proto: axiomcc.Reno(), Init: 1},
		{Proto: axiomcc.CubicLinux(), Init: 1},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Throughput(0, 0.5) + res.Throughput(1, 0.5)
	if total < 0.8*cfg.Bandwidth {
		t.Fatalf("aggregate throughput %v too low", total)
	}
}

// TestTheoryMatchesFacade cross-checks the re-exported theory functions.
func TestTheoryMatchesFacade(t *testing.T) {
	lp := axiomcc.TheoryLink{C: 100, Tau: 20, N: 2}
	rows := axiomcc.Table1Rows(lp)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if got := axiomcc.Theorem2Bound(1, 0.5); got != 1 {
		t.Fatalf("Theorem2Bound(1,0.5) = %v", got)
	}
	row, err := axiomcc.FamilyRow(axiomcc.Reno(), lp)
	if err != nil {
		t.Fatal(err)
	}
	if row.At.TCPFriendliness != 1 {
		t.Fatalf("Reno friendliness = %v", row.At.TCPFriendliness)
	}
}

// TestParetoFacade exercises dominance and the Figure 1 surface through
// the facade.
func TestParetoFacade(t *testing.T) {
	pts := axiomcc.Figure1Surface(axiomcc.Grid(0.5, 2, 4), axiomcc.Grid(0.2, 0.8, 4))
	if len(pts) != 16 {
		t.Fatalf("surface = %d points", len(pts))
	}
	generic := make([]axiomcc.ParetoPoint, len(pts))
	for i, p := range pts {
		generic[i] = p.Point()
	}
	if f := axiomcc.Frontier(generic); len(f) != len(generic) {
		t.Fatalf("surface not a frontier: %d of %d survive", len(f), len(generic))
	}
}

// TestProtocolSpecFacade round-trips the spec parser.
func TestProtocolSpecFacade(t *testing.T) {
	p, err := axiomcc.ParseProtocol("raimd:1,0.8,0.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "RobustAIMD(1,0.8,0.01)" {
		t.Fatalf("name = %q", p.Name())
	}
	if _, err := axiomcc.ParseProtocol("bogus"); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

// TestFalsifyFacade drives the axiom-falsification layer through the
// facade: a true claim survives, an overclaim dies with a witness.
func TestFalsifyFacade(t *testing.T) {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	opt := axiomcc.FalsifyOptions{Steps: 1200, RandomTrials: 4, Seed: 1}
	res, err := axiomcc.Falsify(cfg, axiomcc.Reno(), axiomcc.ClaimEfficient, 0.9, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("0.9-efficiency survived; worst %v", res.Worst)
	}
	res, err = axiomcc.Falsify(cfg, axiomcc.Reno(), axiomcc.ClaimEfficient, 0.5, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("0.5-efficiency falsified: %v", res.Witness)
	}
}

// TestScenarioFacade loads and runs a spec through the facade.
func TestScenarioFacade(t *testing.T) {
	spec, err := axiomcc.LoadScenario(strings.NewReader(`{
		"name": "facade", "model": "fluid", "steps": 800,
		"link": {"mbps": 20, "rtt_ms": 42, "buffer_mss": 50},
		"flows": [{"protocol": "reno"}, {"protocol": "reno"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Flows) != 2 || out.Summary["efficiency"] <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestSelectionGameFacade plays one defection through the facade.
func TestSelectionGameFacade(t *testing.T) {
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	g, err := axiomcc.NewSelectionGame(cfg, []axiomcc.Protocol{axiomcc.Reno(), axiomcc.Scalable()}, 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	nash, dev, err := g.IsNash([]int{0, 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if nash || dev == nil {
		t.Fatal("all-Reno reported as equilibrium through the facade")
	}
}

// TestCustomProtocolViaFunc shows the extension point: a user-defined
// update rule participates in simulation and metrics.
func TestCustomProtocolViaFunc(t *testing.T) {
	// A timid AIMD that adds 0.5 and halves: valid, just slow.
	timid := &axiomcc.ProtocolFunc{
		Label: "Timid",
		Fn: func(fb axiomcc.Feedback) float64 {
			if fb.Loss > 0 {
				return fb.Window * 0.5
			}
			return fb.Window + 0.5
		},
	}
	cfg := axiomcc.LinkConfig{
		Bandwidth: axiomcc.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	eff, err := axiomcc.Efficiency(cfg, timid, 1, axiomcc.MetricOptions{Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.4 {
		t.Fatalf("timid AIMD efficiency = %v", eff)
	}
	fast, err := axiomcc.FastUtilization(timid, axiomcc.MetricOptions{Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-0.5) > 0.05 {
		t.Fatalf("timid fast-utilization = %v, want ≈ 0.5", fast)
	}
}
