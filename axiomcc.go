// Package axiomcc is a from-scratch Go implementation of the framework in
// "An Axiomatic Approach to Congestion Control" (Zarchy, Schapira, Mittal,
// Shenker — HotNets 2017): congestion-control protocols as points in the
// multidimensional space induced by eight parameterized axioms, the
// theoretical trade-offs between those axioms, and the simulators and
// experiment harnesses that reproduce the paper's tables and figures.
//
// The package is a facade over the implementation packages; importing it
// gives access to the entire public API:
//
//   - Protocols (§2): AIMD, MIMD, Binomial, Cubic, Robust-AIMD, plus the
//     PCC stand-in, a Vegas-style latency avoider, and the Claim 1 probe.
//     All implement the Protocol interface and can be built from textual
//     specs via ParseProtocol ("aimd:1,0.5", "raimd:1,0.8,0.01", ...).
//   - The fluid-flow model (§2): LinkConfig + NewLink / RunHomogeneous /
//     RunMixed simulate synchronized RTT-quantized dynamics on a single
//     bottleneck, with optional non-congestion loss processes.
//   - The packet-level testbed (§5.1): PacketConfig + RunPacketLevel give
//     an event-driven droptail-queue simulation with per-packet ACKs and
//     monitor intervals — the repository's stand-in for the paper's
//     Emulab experiments.
//   - The eight axioms (§3) as empirical estimators: Efficiency,
//     FastUtilization, LossAvoidance, Fairness, Convergence, Robustness,
//     Friendliness / TCPFriendliness, LatencyAvoidance, and Characterize
//     for the full 8-tuple.
//   - The theory (§4, Table 1): closed-form rows (Table1Rows, FamilyRow)
//     and theorem bounds (Theorem1Bound, Theorem2Bound, Theorem3Bound).
//   - Pareto machinery (§5.2, Figure 1): Dominates, Frontier,
//     Figure1Surface.
//
// A minimal session:
//
//	cfg := axiomcc.LinkConfig{Bandwidth: axiomcc.MbpsToMSSps(20), PropDelay: 0.021, Buffer: 100}
//	tr, err := axiomcc.RunHomogeneous(cfg, axiomcc.Reno(), 2, []float64{1, 50}, 4000)
//	...
//	scores, err := axiomcc.Characterize(cfg, axiomcc.Reno(), 2, axiomcc.MetricOptions{})
//
// The cmd/ tools (axiomsim, axiomscore, paretoexplore, reproduce) and the
// examples/ programs are thin clients of this facade.
package axiomcc

import (
	"context"

	"repro/internal/axcheck"
	"repro/internal/axioms"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/multilink"
	"repro/internal/nettopo"
	"repro/internal/packetsim"
	"repro/internal/pareto"
	"repro/internal/protocol"
	"repro/internal/runstore"
	"repro/internal/scenario"
	"repro/internal/storeflags"
	"repro/internal/trace"
)

// ---- Protocols (§2) ----

// Protocol is a congestion-control protocol in the paper's model: a
// deterministic map from observed (window, RTT, loss) history to the next
// congestion window.
type Protocol = protocol.Protocol

// Feedback is the per-step observation a protocol reacts to.
type Feedback = protocol.Feedback

// Protocol families and comparators.
type (
	// AIMD is additive-increase / multiplicative-decrease.
	AIMD = protocol.AIMD
	// MIMD is multiplicative-increase / multiplicative-decrease.
	MIMD = protocol.MIMD
	// Binomial is the BIN(a,b,k,l) family.
	Binomial = protocol.Binomial
	// Cubic is TCP Cubic's window curve.
	Cubic = protocol.Cubic
	// RobustAIMD is the paper's §5.2 Robust-AIMD(a,b,ε).
	RobustAIMD = protocol.RobustAIMD
	// PCC is the monitor-interval, utility-gradient PCC stand-in.
	PCC = protocol.PCC
	// Vegas is the latency-avoiding comparator for Theorem 5.
	Vegas = protocol.Vegas
	// ProbeUntilLoss is Claim 1's 0-loss, non-fast-utilizing probe.
	ProbeUntilLoss = protocol.ProbeUntilLoss
	// TFRC is the equation-based (TCP-friendly rate control style)
	// protocol.
	TFRC = protocol.TFRC
	// HighSpeed is HighSpeed TCP (RFC 3649).
	HighSpeed = protocol.HighSpeed
	// BBRish is the window-based BBR-style model-based protocol.
	BBRish = protocol.BBRish
	// ProtocolFunc adapts a stateless update function to Protocol.
	ProtocolFunc = protocol.Func
)

// Constructors.
var (
	NewAIMD           = protocol.NewAIMD
	NewMIMD           = protocol.NewMIMD
	NewBinomial       = protocol.NewBinomial
	NewCubic          = protocol.NewCubic
	NewRobustAIMD     = protocol.NewRobustAIMD
	NewPCC            = protocol.NewPCC
	NewVegas          = protocol.NewVegas
	NewProbeUntilLoss = protocol.NewProbeUntilLoss
	NewTFRC           = protocol.NewTFRC
	NewHighSpeed      = protocol.NewHighSpeed
	NewBBRish         = protocol.NewBBRish

	// Reno returns AIMD(1, 0.5), the paper's TCP Reno.
	Reno = protocol.Reno
	// Scalable returns MIMD(1.01, 0.875), the paper's TCP Scalable.
	Scalable = protocol.Scalable
	// ScalableAIMD returns AIMD(1, 0.875).
	ScalableAIMD = protocol.ScalableAIMD
	// CubicLinux returns CUBIC(0.4, 0.8), Linux's TCP Cubic.
	CubicLinux = protocol.CubicLinux
	// IIAD returns BIN(1, 1, 1, 0).
	IIAD = protocol.IIAD
	// SQRT returns BIN(1, 0.5, 0.5, 0.5).
	SQRT = protocol.SQRT
	// DefaultPCC returns the PCC stand-in with loss penalty δ = 20.
	DefaultPCC = protocol.DefaultPCC
	// DefaultVegas returns Vegas(2, 4).
	DefaultVegas = protocol.DefaultVegas
	// DefaultTFRC returns TFRC with the calibrated EWMA weight 0.01.
	DefaultTFRC = protocol.DefaultTFRC

	// ParseProtocol builds a Protocol from a spec like "aimd:1,0.5".
	ParseProtocol = protocol.Parse
	// MustParseProtocol is ParseProtocol that panics on error.
	MustParseProtocol = protocol.MustParse
)

// MinWindow is the window floor applied by both simulators (1 MSS).
const MinWindow = protocol.MinWindow

// ---- Fluid-flow model (§2) ----

// LinkConfig describes a bottleneck link for the fluid model.
type LinkConfig = fluid.Config

// Link is a fluid-model bottleneck shared by a set of senders.
type Link = fluid.Link

// LinkSender pairs a protocol with its initial window.
type LinkSender = fluid.Sender

// Non-congestion loss processes (Metric VI).
type (
	// LossProcess injects non-congestion loss into a fluid link.
	LossProcess = fluid.LossProcess
	// ConstantLoss is the deterministic fluid limit of i.i.d. drops.
	ConstantLoss = fluid.ConstantLoss
	// PacketLoss samples binomial per-window loss.
	PacketLoss = fluid.PacketLoss
	// OnOffLoss alternates lossy bursts with clean periods.
	OnOffLoss = fluid.OnOffLoss
)

var (
	// NewLink builds a fluid link (errors on invalid configs).
	NewLink = fluid.New
	// RunHomogeneous simulates n clones of one protocol.
	RunHomogeneous = fluid.Homogeneous
	// RunMixed simulates one sender per supplied protocol.
	RunMixed = fluid.Mixed
	// HomogeneousSenders builds n clones of one protocol, for
	// EngineFluidSpec.
	HomogeneousSenders = fluid.HomogeneousSenders
	// MixedSenders builds one sender per supplied protocol, for
	// EngineFluidSpec.
	MixedSenders = fluid.MixedSenders
	// MbpsToMSSps converts megabits/s to the model's MSS/s (1500 B MSS).
	MbpsToMSSps = fluid.MbpsToMSSps

	NewConstantLoss = fluid.NewConstantLoss
	NewPacketLoss   = fluid.NewPacketLoss
	NewOnOffLoss    = fluid.NewOnOffLoss
)

// Trace is the recorded time evolution of a simulated link.
type Trace = trace.Trace

// ---- Packet-level testbed (§5.1) ----

// PacketConfig describes the event-driven packet-level bottleneck.
type PacketConfig = packetsim.Config

// PacketFlow is one sender on the packet-level link.
type PacketFlow = packetsim.Flow

// PacketResult is the outcome of a packet-level run.
type PacketResult = packetsim.Result

// Queue disciplines for the packet-level bottleneck (§6 extension).
type (
	// QueueDiscipline decides packet admission at the bottleneck.
	QueueDiscipline = packetsim.Discipline
	// DroptailQueue is the paper's FIFO droptail policy.
	DroptailQueue = packetsim.Droptail
	// REDQueue is Random Early Detection AQM.
	REDQueue = packetsim.RED
)

var (
	// RunPacketLevel simulates flows on the packet-level link.
	RunPacketLevel = packetsim.Run
	// NewRED builds a RED discipline.
	NewRED = packetsim.NewRED
)

// ---- Network-wide model (§6 extension) ----

// Multilink types: the fluid model generalized to a network of links.
type (
	// NetLinkSpec describes one link of a multilink network.
	NetLinkSpec = multilink.LinkSpec
	// NetFlowSpec is one flow and its path through the network.
	NetFlowSpec = multilink.FlowSpec
	// Network is a multilink fluid network.
	Network = multilink.Network
	// NetworkResult is a recorded multilink run.
	NetworkResult = multilink.Result
	// NetworkOption tweaks network construction.
	NetworkOption = multilink.Option
)

var (
	// NewNetwork builds a multilink network.
	NewNetwork = multilink.New
	// ParkingLot builds the canonical k-hop parking-lot scenario.
	ParkingLot = multilink.ParkingLot
	// WithStochasticLoss samples per-flow loss observation (needed for
	// the parking-lot bias of magnitude-insensitive protocols).
	WithStochasticLoss = multilink.WithStochasticLoss
	// WithNetMaxWindow caps windows in a multilink network.
	WithNetMaxWindow = multilink.WithMaxWindow
)

// ---- Arbitrary DAG topologies (§6 generalized) ----

// Nettopo types: the multilink model generalized to arbitrary DAG
// topologies with named endpoints and per-flow extra RTT. A linear
// chain is bit-identical to the multilink parking lot.
type (
	// TopoLinkSpec describes one directed link (optional src/dst names).
	TopoLinkSpec = nettopo.LinkSpec
	// TopoFlowSpec is one flow: protocol, path over links, extra RTT.
	TopoFlowSpec = nettopo.FlowSpec
	// Topology is a DAG network of links and flows.
	Topology = nettopo.Network
	// TopologyResult is a recorded nettopo run.
	TopologyResult = nettopo.Result
	// TopologyOption tweaks topology construction.
	TopologyOption = nettopo.Option
)

var (
	// NewTopology builds a DAG topology, validating acyclicity and path
	// contiguity.
	NewTopology = nettopo.New
	// NewTopologyFromRouting builds a topology from a routing matrix.
	NewTopologyFromRouting = nettopo.NewFromRouting
	// TopoLinearChain builds the k-hop chain shared by every flow.
	TopoLinearChain = nettopo.LinearChain
	// TopoParkingLot builds the parking-lot scenario on the DAG model.
	TopoParkingLot = nettopo.ParkingLot
	// TopoIncast builds n senders converging on one core link.
	TopoIncast = nettopo.Incast
	// TopoFatTreeFanIn builds a leaf/agg/core fan-in tree.
	TopoFatTreeFanIn = nettopo.FatTreeFanIn
	// WithTopoStochasticLoss samples per-flow loss observation.
	WithTopoStochasticLoss = nettopo.WithStochasticLoss
	// WithTopoMaxWindow caps windows in a topology.
	WithTopoMaxWindow = nettopo.WithMaxWindow
)

// ---- Engine (unified simulator layer) ----

// The engine runs any of the three simulators behind one interface:
// build a substrate spec (EngineFluidSpec, EnginePacketSpec,
// EngineNetSpec), wrap it in an EngineSpec with optional streaming
// observers, and call EngineRun. EngineSweep shards independent cells
// across a worker pool with deterministic per-cell seeds.
type (
	// EngineSpec selects a substrate, trace recording, and observers.
	EngineSpec = engine.Spec
	// EngineMeta describes a substrate (flows, capacity, horizon) so
	// observers can size their buffers before the run.
	EngineMeta = engine.Meta
	// EngineStep is the per-step snapshot streamed to observers.
	EngineStep = engine.Step
	// EngineObserver consumes per-step snapshots during a run.
	EngineObserver = engine.Observer
	// EngineObserverFunc adapts a function to EngineObserver.
	EngineObserverFunc = engine.ObserverFunc
	// EngineStrip is a run of consecutive steps delivered in bulk by the
	// grid-batch path (flow-major window columns).
	EngineStrip = engine.Strip
	// EngineStripObserver is the optional Observer upgrade that receives
	// whole strips instead of one Step at a time.
	EngineStripObserver = engine.StripObserver
	// EngineResult carries whichever outputs the run recorded.
	EngineResult = engine.Result
	// EngineSubstrate is one runnable simulator configuration.
	EngineSubstrate = engine.Substrate
	// EngineFluidSpec adapts the §2 fluid model.
	EngineFluidSpec = engine.FluidSpec
	// EnginePacketSpec adapts the packet-level testbed.
	EnginePacketSpec = engine.PacketSpec
	// EngineNetSpec adapts the §6 multilink network.
	EngineNetSpec = engine.NetSpec
	// EngineTopoSpec adapts the DAG topology substrate.
	EngineTopoSpec = engine.TopoSpec
	// SweepConfig tunes EngineSweep (workers, base seed, progress).
	SweepConfig = engine.SweepConfig
	// MetricStream is the streaming observer computing the axiom
	// estimators online (no recorded trace needed).
	MetricStream = metrics.Stream
)

var (
	// EngineRun executes one substrate under a context.
	EngineRun = engine.Run
	// EngineSweepSpecs runs one EngineSpec per grid cell, stepping
	// lockstep-compatible fluid cells as structure-of-arrays batches and
	// falling back per-cell everywhere else; results are bit-identical
	// either way (cfg.NoBatch forces the per-cell path).
	EngineSweepSpecs = engine.SweepSpecs
	// EngineCellSeed derives the deterministic seed of sweep cell i.
	EngineCellSeed = engine.CellSeed
	// NewMetricStream sizes a MetricStream from a substrate's Meta.
	NewMetricStream = metrics.NewStream
)

// EngineSweep runs cell(ctx, i, seed) for i in [0, n) on a worker pool
// (cfg.Workers; 0 = GOMAXPROCS) with fail-fast errors and context
// cancellation. It is a thin generic wrapper over engine.Sweep so facade
// clients don't import internal packages.
func EngineSweep[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, error) {
	return engine.Sweep(ctx, n, cfg, cell)
}

// EngineSweepSettled is EngineSweep without fail-fast: every cell runs
// (panics and timeouts included) and failures are reported per cell, so
// one pathological grid point cannot abort a long sweep.
func EngineSweepSettled[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, []error, error) {
	return engine.SweepSettled(ctx, n, cfg, cell)
}

// ---- Deterministic fault injection (chaos schedules) ----

type (
	// ChaosSchedule is a deterministic, seed-derived fault-injection
	// schedule: capacity shocks/ramps/flaps, bursty Gilbert–Elliott loss,
	// RTT jitter and base-RTT steps, and flow churn. Attach one to an
	// EngineSpec (Chaos + ChaosSeed) or to MetricOptions.
	ChaosSchedule = chaos.Schedule
	// ChaosEvent is one timed fault event of a ChaosSchedule.
	ChaosEvent = chaos.Event
	// ChaosInjector is a schedule compiled against a substrate shape.
	ChaosInjector = chaos.Injector
	// EngineHardening carries process-wide sweep-hardening defaults
	// (per-cell timeout, retries, checkpoint/resume).
	EngineHardening = engine.Hardening
)

var (
	// ParseChaosSchedule decodes a schedule from JSON (unknown fields are
	// rejected; events are validated and sorted).
	ParseChaosSchedule = chaos.Parse
	// LoadChaosSchedule reads a schedule from a file.
	LoadChaosSchedule = chaos.LoadFile
	// BurstyLossSchedule builds the Gilbert–Elliott bursty-loss preset.
	BurstyLossSchedule = chaos.BurstyLoss
	// FlappyLinkSchedule builds the periodically-flapping-link preset.
	FlappyLinkSchedule = chaos.FlappyLink
	// SetEngineHardening installs process-wide sweep-hardening defaults.
	SetEngineHardening = engine.SetHardening
	// RegisterSweepFlags mounts -cell-timeout/-retries/-checkpoint/-resume.
	RegisterSweepFlags = engine.RegisterSweepFlags
	// RegisterStoreFlags mounts -store/-nostore/-store-max-bytes/-store-stats
	// (the persistent cross-process run store).
	RegisterStoreFlags = storeflags.Register
	// OpenRunStore opens (or creates) a persistent run store directory.
	OpenRunStore = runstore.Open
	// SetDefaultRunStore installs the store every new metric session
	// inherits; SetCheckpointStore is its sweep-checkpoint counterpart.
	SetDefaultRunStore = metrics.SetDefaultStore
	// SetCheckpointStore externalizes sweep-checkpoint cell payloads.
	SetCheckpointStore = engine.SetCheckpointStore
	// MetricTotalStats aggregates run-cache counters across every metric
	// session in the process.
	MetricTotalStats = metrics.TotalStats
	// EngineCheckpointable opts a sweep config into the process-wide
	// checkpoint default (the cell result type must round-trip JSON).
	EngineCheckpointable = engine.Checkpointable
	// ErrSimulationDiverged matches (errors.Is) the typed error the fluid
	// stepper returns when a cell's windows blow up to NaN/Inf instead of
	// silently poisoning axiom scores.
	ErrSimulationDiverged = fluid.ErrDiverged
)

// ---- Axioms as empirical estimators (§3) ----

// MetricOptions controls horizons, tails and initial configurations.
type MetricOptions = metrics.Options

// MetricScores is a protocol's measured 8-tuple.
type MetricScores = metrics.Scores

// MetricSession is the content-addressed run cache: runs whose complete
// inputs fingerprint identically are simulated once and shared across the
// estimators (and across sweep cells that share a session via
// MetricOptions.Session). Cached scores are bit-identical to uncached.
type MetricSession = metrics.Session

// MetricSessionStats reports a session's hit/miss/steps-saved counters.
type MetricSessionStats = metrics.SessionStats

// RunStore is the disk-backed, content-addressed store that persists
// simulation results across processes (see internal/runstore).
type RunStore = runstore.Store

// RunStoreOptions configures OpenRunStore (size budget, key version).
type RunStoreOptions = runstore.Options

// StoreFlags holds the parsed persistent-store CLI flags.
type StoreFlags = storeflags.Flags

// DefaultMetricPropDelay is the 21 ms propagation delay (the paper's
// 42 ms reference RTT) of the metric-specific infinite-link scenarios.
const DefaultMetricPropDelay = metrics.DefaultPropDelay

// NewMetricSession builds an empty run-deduplication session.
var NewMetricSession = metrics.NewSession

var (
	Efficiency       = metrics.Efficiency
	FastUtilization  = metrics.FastUtilization
	LossAvoidance    = metrics.LossAvoidance
	Fairness         = metrics.Fairness
	Convergence      = metrics.Convergence
	Robustness       = metrics.Robustness
	RobustTo         = metrics.RobustTo
	Friendliness     = metrics.Friendliness
	TCPFriendliness  = metrics.TCPFriendliness
	LatencyAvoidance = metrics.LatencyAvoidance
	// Characterize measures all eight metrics at once.
	Characterize = metrics.Characterize

	// Extension metrics (§6 "other axioms"): convergence time, RFC-5166
	// smoothness, and responsiveness to capacity jumps.
	ConvergenceTime = metrics.ConvergenceTime
	Smoothness      = metrics.Smoothness
	Responsiveness  = metrics.Responsiveness
	CharacterizeExt = metrics.CharacterizeExt
)

// ExtMetricScores bundles the extension metrics.
type ExtMetricScores = metrics.ExtScores

// Multi-bottleneck metrics: the eight estimators re-stated over DAG
// topologies (per-flow bottleneck attribution, per-shared-link fairness).
type (
	// TopoMetricStream streams a topology run into tail rings for the
	// multi-bottleneck estimators.
	TopoMetricStream = metrics.TopoStream
	// TopoRunSpec is one cacheable topology run.
	TopoRunSpec = metrics.TopoRunSpec
	// TopoMetricScores bundles the eight multi-bottleneck scores.
	TopoMetricScores = metrics.TopoScores
)

var (
	// NewTopoMetricStream sizes a TopoMetricStream for a topology run.
	NewTopoMetricStream = metrics.NewTopoStream
	// RunTopo executes (or replays from cache) one topology run.
	RunTopo = metrics.RunTopo
	// CharacterizeTopo measures all eight metrics on a topology.
	CharacterizeTopo = metrics.CharacterizeTopo
)

// ---- Theory (§4, Table 1) ----

// TheoryLink is the (C, τ, n) triple Table 1's entries depend on.
type TheoryLink = axioms.Link

// TheoryRow is one Table 1 row: at-link scores plus worst-case bounds.
type TheoryRow = axioms.Row

// TheoryScores is the per-metric score tuple used in TheoryRow.
type TheoryScores = axioms.Scores

var (
	// Table1Rows evaluates the paper's five Table 1 rows at a link.
	Table1Rows = axioms.Table1
	// FamilyRow maps a Protocol to its Table 1 row.
	FamilyRow = axioms.FamilyRow
	// AIMDRow, MIMDRow, BinRow, CubicRow, RobustAIMDRow evaluate single
	// family rows at explicit parameters.
	AIMDRow       = axioms.AIMDRow
	MIMDRow       = axioms.MIMDRow
	BinRow        = axioms.BinRow
	CubicRow      = axioms.CubicRow
	RobustAIMDRow = axioms.RobustAIMDRow

	// Theorem bounds.
	Theorem1Bound = axioms.Theorem1Bound
	Theorem2Bound = axioms.Theorem2Bound
	Theorem3Bound = axioms.Theorem3Bound
	// Feasible / FeasibleRobust test points against Theorems 2 / 3.
	Feasible       = axioms.Feasible
	FeasibleRobust = axioms.FeasibleRobust
)

// ---- Pareto machinery (§5.2, Figure 1) ----

// ParetoPoint is a labeled position in (higher-is-better) score space.
type ParetoPoint = pareto.Point

// SurfacePoint is one point of Figure 1's frontier.
type SurfacePoint = pareto.SurfacePoint

var (
	// Dominates tests Pareto dominance between score vectors.
	Dominates = pareto.Dominates
	// Frontier extracts the non-dominated subset.
	Frontier = pareto.Frontier
	// OnFrontier tests a single point against a set.
	OnFrontier = pareto.OnFrontier
	// OrientScores converts MetricScores to higher-is-better coordinates.
	OrientScores = pareto.OrientScores
	// Figure1Surface evaluates the Theorem 2 frontier on a grid.
	Figure1Surface = pareto.Figure1Surface
	// Grid builds evenly spaced parameter grids.
	Grid = pareto.Grid
	// CharacterizeAll scores a protocol menu into oriented Pareto points,
	// sharing one run-dedup session across all candidates.
	CharacterizeAll = pareto.CharacterizeAll
)

// ---- Adaptive frontier exploration ----

type (
	// ExploreConfig parameterizes the adaptive frontier search: coarse
	// pass, successive-halving refinement, dominance-pruning bandit.
	ExploreConfig = pareto.ExploreConfig
	// ExploreResult is the search outcome: every measured point, the
	// final frontier, per-round snapshots, aggregate stats.
	ExploreResult = pareto.ExploreResult
	// ExploreStats aggregates one Explore call.
	ExploreStats = pareto.ExploreStats
	// ExploreRound describes one completed exploration round.
	ExploreRound = pareto.RoundSnapshot
	// ExploredPoint is one measured (α, β) cell with its oriented scores.
	ExploredPoint = pareto.ExploredPoint
	// ExploreCell is one candidate (α, β) parameter point.
	ExploreCell = pareto.Cell
	// ExploreCellResult is an evaluator's measurement of one cell.
	ExploreCellResult = pareto.CellResult
	// ExploreEvaluator measures batches of candidate cells.
	ExploreEvaluator = pareto.CellEvaluator
)

var (
	// Explore runs the adaptive frontier search; ExploreDense evaluates
	// the equivalent finest-resolution lattice as the brute-force
	// reference. Both are incremental over a shared session/run store.
	Explore      = pareto.Explore
	ExploreDense = pareto.ExploreDense
	// AIMDEvaluator measures AIMD(α, β) cells on a link in the
	// (efficiency, TCP-friendliness) plane, batching whole rounds
	// through the engine's structure-of-arrays fast path.
	AIMDEvaluator = pareto.AIMDEvaluator
)

// ---- Falsification (internal/axcheck) ----

// Axiom-claim falsification: adversarial search for counterexamples to
// "P is α-<claim>" statements, with reproducible witnesses.
type (
	// FalsifyClaim names a checkable axiom (ClaimEfficient, ...).
	FalsifyClaim = axcheck.Claim
	// FalsifyOptions bounds the counterexample search.
	FalsifyOptions = axcheck.Options
	// FalsifyResult reports the search outcome and witness.
	FalsifyResult = axcheck.Result
	// LinkPoint identifies a link configuration in worst-case searches.
	LinkPoint = axcheck.LinkPoint
)

// The falsifiable claims.
const (
	ClaimEfficient      = axcheck.Efficient
	ClaimLossAvoiding   = axcheck.LossAvoiding
	ClaimFair           = axcheck.Fair
	ClaimConvergent     = axcheck.Convergent
	ClaimFriendlyToReno = axcheck.FriendlyToReno
)

var (
	// Falsify searches initial configurations on one link.
	Falsify = axcheck.Check
	// FalsifyWorstCase additionally searches link parameters (the
	// angle-bracket quantifier of Table 1).
	FalsifyWorstCase = axcheck.CheckWorstCase
)

// ---- Scenarios (internal/scenario) ----

// JSON-defined experiments across all three simulators; the scenarios/
// directory ships canonical specs and `axiomsim -scenario` runs them.
type (
	// ScenarioSpec is a parsed scenario.
	ScenarioSpec = scenario.Spec
	// ScenarioOutcome is the uniform result of running one.
	ScenarioOutcome = scenario.Outcome
)

// LoadScenario parses and validates a JSON scenario.
var LoadScenario = scenario.Load

// ---- Protocol-selection game (internal/game) ----

// Protocol choice as a game: Nash equilibria, best-response dynamics, and
// the prisoner's dilemma of congestion control (examples/protocolgame).
type (
	// SelectionGame is an n-player protocol-selection game.
	SelectionGame = game.Game
	// GamePayoff maps simulation outcomes to player utility.
	GamePayoff = game.Payoff
)

var (
	// NewSelectionGame builds a game over a protocol menu.
	NewSelectionGame = game.New
	// GoodputPayoff values raw delivered throughput.
	GoodputPayoff = game.GoodputPayoff
	// LossSensitivePayoff penalizes delivered-but-lossy service.
	LossSensitivePayoff = game.LossSensitivePayoff
)
