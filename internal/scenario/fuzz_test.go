package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad hardens the JSON loader: arbitrary input must never panic, and
// accepted specs must validate cleanly.
func FuzzLoad(f *testing.F) {
	f.Add(fluidSpec)
	f.Add(`{"name":"x","model":"packet","duration":1,"link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[{"protocol":"reno"}]}`)
	f.Add(`{"name":"x","model":"multilink","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10}],"flows":[{"protocol":"reno","path":[0]}]}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"model": 7}`)
	f.Add(`{"name":"x","model":"fluid","link":null,"flows":[]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever Load accepts must re-validate.
		if err := s.Validate(); err != nil {
			t.Fatalf("Load accepted a spec Validate rejects: %v", err)
		}
	})
}
