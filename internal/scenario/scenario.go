// Package scenario loads and runs experiment descriptions from JSON, so
// that scenarios are shareable artifacts rather than code: a spec selects
// one of the four simulators (the §2 fluid model, the packet-level
// testbed, the §6 multilink chain, or the nettopo DAG substrate),
// describes the link(s) and flows in the paper's units (Mbps, ms, MSS),
// and produces a uniform outcome with per-flow shares and link-level
// metrics. The repository ships a library of canonical specs under
// scenarios/.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/multilink"
	"repro/internal/nettopo"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Link describes one link in paper units.
type Link struct {
	Mbps       float64 `json:"mbps"`
	RTTms      float64 `json:"rtt_ms"`                // round-trip propagation delay
	BufferMSS  float64 `json:"buffer_mss"`            // τ
	RandomLoss float64 `json:"random_loss,omitempty"` // non-congestion loss rate
	Infinite   bool    `json:"infinite,omitempty"`    // fluid only

	// Src and Dst name the link's endpoints in a nettopo topology; given
	// for every link, they let the loader reject cyclic or discontiguous
	// wiring before the simulator runs.
	Src string `json:"src,omitempty"` // nettopo only
	Dst string `json:"dst,omitempty"` // nettopo only

	// RED, when present, replaces droptail at a packet-level bottleneck.
	RED *REDSpec `json:"red,omitempty"`
}

// REDSpec configures Random Early Detection for packet scenarios.
type REDSpec struct {
	MinThresh int     `json:"min_thresh"`
	MaxThresh int     `json:"max_thresh"`
	MaxP      float64 `json:"max_p"`
}

// Flow describes one sender.
type Flow struct {
	Protocol     string  `json:"protocol"`                 // spec string, e.g. "raimd:1,0.8,0.01"
	Init         float64 `json:"init,omitempty"`           // initial window (MSS)
	Start        float64 `json:"start,omitempty"`          // packet: start time (s)
	ExtraDelayMs float64 `json:"extra_delay_ms,omitempty"` // packet: one-way extra delay
	Path         []int   `json:"path,omitempty"`           // multilink/nettopo: link indices
	ExtraRTTms   float64 `json:"extra_rtt_ms,omitempty"`   // nettopo: fixed extra round-trip delay
	Period       int     `json:"period,omitempty"`         // fluid: update period (unsync)
	Phase        int     `json:"phase,omitempty"`          // fluid: update phase
}

// Spec is a complete scenario.
type Spec struct {
	Name     string  `json:"name"`
	Model    string  `json:"model"`              // "fluid" | "packet" | "multilink" | "nettopo"
	Steps    int     `json:"steps,omitempty"`    // fluid/multilink/nettopo horizon (default 4000)
	Duration float64 `json:"duration,omitempty"` // packet horizon in seconds (default 60)
	Seed     uint64  `json:"seed,omitempty"`
	TailFrac float64 `json:"tail_frac,omitempty"` // summary window (default 0.75)

	Link  *Link  `json:"link,omitempty"`  // fluid/packet
	Links []Link `json:"links,omitempty"` // multilink/nettopo
	Flows []Flow `json:"flows"`

	// StochasticLoss enables per-flow loss sampling in multilink and
	// nettopo runs.
	StochasticLoss bool `json:"stochastic_loss,omitempty"`
}

// Load parses a spec from JSON, rejecting unknown fields.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency (protocol specs are validated at
// Run time, when they are parsed).
func (s *Spec) Validate() error {
	switch s.Model {
	case "fluid", "packet":
		if s.Link == nil {
			return fmt.Errorf("scenario %q: model %q needs a \"link\"", s.Name, s.Model)
		}
		if len(s.Links) > 0 {
			return fmt.Errorf("scenario %q: \"links\" is for the multilink model", s.Name)
		}
	case "multilink", "nettopo":
		if len(s.Links) == 0 {
			return fmt.Errorf("scenario %q: %s needs \"links\"", s.Name, s.Model)
		}
		if s.Link != nil {
			return fmt.Errorf("scenario %q: use \"links\" (not \"link\") for %s", s.Name, s.Model)
		}
	default:
		return fmt.Errorf("scenario %q: unknown model %q", s.Name, s.Model)
	}
	multi := s.Model == "multilink" || s.Model == "nettopo"
	if s.Model != "nettopo" {
		for i, l := range s.Links {
			if l.Src != "" || l.Dst != "" {
				return fmt.Errorf("scenario %q: link %d: \"src\"/\"dst\" are for nettopo", s.Name, i)
			}
		}
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("scenario %q: at least one flow required", s.Name)
	}
	for i, f := range s.Flows {
		if f.Protocol == "" {
			return fmt.Errorf("scenario %q: flow %d has no protocol", s.Name, i)
		}
		if multi && len(f.Path) == 0 {
			return fmt.Errorf("scenario %q: flow %d needs a path", s.Name, i)
		}
		if !multi && len(f.Path) > 0 {
			return fmt.Errorf("scenario %q: flow %d: \"path\" is for multilink/nettopo", s.Name, i)
		}
		if s.Model != "nettopo" && f.ExtraRTTms != 0 {
			return fmt.Errorf("scenario %q: flow %d: \"extra_rtt_ms\" is for nettopo", s.Name, i)
		}
	}
	if s.Model == "nettopo" {
		// Dry-build the network with placeholder protocols so topology
		// errors — cycles, discontiguous or duplicate-hop paths, half-named
		// links — surface at load/lint time rather than mid-run.
		links := s.topoLinks()
		flows := make([]nettopo.FlowSpec, len(s.Flows))
		placeholder := protocol.Reno()
		for i, f := range s.Flows {
			flows[i] = nettopo.FlowSpec{
				Proto:    placeholder,
				Init:     1,
				Path:     f.Path,
				ExtraRTT: f.ExtraRTTms / 1000,
			}
		}
		if _, err := nettopo.New(links, flows); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// topoLinks converts the spec's links to nettopo units.
func (s *Spec) topoLinks() []nettopo.LinkSpec {
	links := make([]nettopo.LinkSpec, len(s.Links))
	for i, l := range s.Links {
		links[i] = nettopo.LinkSpec{
			Bandwidth: fluid.MbpsToMSSps(l.Mbps),
			PropDelay: l.RTTms / 1000 / 2,
			Buffer:    l.BufferMSS,
			Src:       l.Src,
			Dst:       l.Dst,
		}
	}
	return links
}

func (s *Spec) steps() int {
	if s.Steps == 0 {
		return 4000
	}
	return s.Steps
}

func (s *Spec) duration() float64 {
	if s.Duration == 0 {
		return 60
	}
	return s.Duration
}

func (s *Spec) tail() float64 {
	if s.TailFrac == 0 {
		return 0.75
	}
	return s.TailFrac
}

// FlowOutcome is one flow's summary.
type FlowOutcome struct {
	Protocol  string  `json:"protocol"`
	AvgWindow float64 `json:"avg_window"`          // MSS, tail mean
	Goodput   float64 `json:"goodput_mss_per_sec"` // tail mean
	Share     float64 `json:"share"`               // goodput fraction of all flows
}

// Outcome is the uniform result of running any scenario.
type Outcome struct {
	Name  string        `json:"name"`
	Model string        `json:"model"`
	Flows []FlowOutcome `json:"flows"`
	// Summary carries model-appropriate link metrics: efficiency,
	// tail loss, fairness (Jain index over goodputs), and, for fluid and
	// packet runs, latency inflation.
	Summary map[string]float64 `json:"summary"`
}

// Run executes the scenario.
func (s *Spec) Run() (*Outcome, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the scenario through the engine, honoring ctx
// cancellation (the engine polls it between simulation steps).
func (s *Spec) RunContext(ctx context.Context) (*Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Model {
	case "fluid":
		return s.runFluid(ctx)
	case "packet":
		return s.runPacket(ctx)
	case "nettopo":
		return s.runTopo(ctx)
	default:
		return s.runMultilink(ctx)
	}
}

func (s *Spec) parseProtocols() ([]protocol.Protocol, error) {
	out := make([]protocol.Protocol, len(s.Flows))
	for i, f := range s.Flows {
		p, err := protocol.Parse(f.Protocol)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		out[i] = p
	}
	return out, nil
}

func (s *Spec) runFluid(ctx context.Context) (*Outcome, error) {
	protos, err := s.parseProtocols()
	if err != nil {
		return nil, err
	}
	cfg := fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(s.Link.Mbps),
		PropDelay: s.Link.RTTms / 1000 / 2,
		Buffer:    s.Link.BufferMSS,
		Infinite:  s.Link.Infinite,
		Seed:      s.Seed,
	}
	if s.Link.RandomLoss > 0 {
		cfg.Loss = fluid.NewConstantLoss(s.Link.RandomLoss)
	}
	senders := make([]fluid.Sender, len(s.Flows))
	for i, f := range s.Flows {
		init := f.Init
		if init == 0 {
			init = 1
		}
		senders[i] = fluid.Sender{
			Proto:  protos[i],
			Init:   init,
			Period: f.Period,
			Phase:  f.Phase,
		}
	}
	// Only tail summaries are reported, so the run streams through an
	// observer instead of materializing a trace.
	tail := s.tail()
	sub := &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: s.steps()}
	st := metrics.NewStream(sub.Meta(), tail)
	if _, err := engine.Run(ctx, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}); err != nil {
		return nil, err
	}

	out := &Outcome{Name: s.Name, Model: s.Model, Summary: map[string]float64{}}
	var goodputs []float64
	for i := range s.Flows {
		g := st.AvgGoodput(i)
		goodputs = append(goodputs, g)
		out.Flows = append(out.Flows, FlowOutcome{
			Protocol:  protos[i].Name(),
			AvgWindow: st.AvgWindow(i),
			Goodput:   g,
		})
	}
	fillShares(out.Flows, goodputs)
	out.Summary["efficiency"] = st.Efficiency()
	out.Summary["tail_loss"] = st.LossAvoidance()
	out.Summary["jain_goodput"] = stats.JainIndex(goodputs)
	out.Summary["latency_inflation"] = st.LatencyAvoidance()
	return out, nil
}

func (s *Spec) runPacket(ctx context.Context) (*Outcome, error) {
	protos, err := s.parseProtocols()
	if err != nil {
		return nil, err
	}
	cfg := packetsim.Config{
		Bandwidth:  fluid.MbpsToMSSps(s.Link.Mbps),
		PropDelay:  s.Link.RTTms / 1000 / 2,
		Buffer:     int(s.Link.BufferMSS),
		RandomLoss: s.Link.RandomLoss,
		Seed:       s.Seed,
	}
	if s.Link.RED != nil {
		cfg.Queue = packetsim.NewRED(s.Link.RED.MinThresh, s.Link.RED.MaxThresh, s.Link.RED.MaxP, cfg.Buffer)
	}
	flows := make([]packetsim.Flow, len(s.Flows))
	for i, f := range s.Flows {
		init := f.Init
		if init == 0 {
			init = 1
		}
		flows[i] = packetsim.Flow{
			Proto:      protos[i],
			Init:       init,
			Start:      f.Start,
			ExtraDelay: f.ExtraDelayMs / 1000,
		}
	}
	tail := s.tail()
	sub := &engine.PacketSpec{Cfg: cfg, Flows: flows, Duration: s.duration()}
	st := metrics.NewStream(sub.Meta(), tail)
	eres, err := engine.Run(ctx, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}})
	if err != nil {
		return nil, err
	}
	res := eres.Packet

	out := &Outcome{Name: s.Name, Model: s.Model, Summary: map[string]float64{}}
	var goodputs []float64
	total := 0.0
	for i := range s.Flows {
		g := res.Throughput(i, tail)
		goodputs = append(goodputs, g)
		total += g
		out.Flows = append(out.Flows, FlowOutcome{
			Protocol:  protos[i].Name(),
			AvgWindow: st.AvgWindow(i),
			Goodput:   g,
		})
	}
	fillShares(out.Flows, goodputs)
	out.Summary["efficiency"] = total / cfg.Bandwidth
	out.Summary["tail_loss"] = stats.Mean(st.TailLoss())
	out.Summary["jain_goodput"] = stats.JainIndex(goodputs)
	base := 2 * cfg.PropDelay
	out.Summary["latency_inflation"] = math.Max(0, stats.Mean(st.TailRTT())/base-1)
	return out, nil
}

func (s *Spec) runMultilink(ctx context.Context) (*Outcome, error) {
	protos, err := s.parseProtocols()
	if err != nil {
		return nil, err
	}
	links := make([]multilink.LinkSpec, len(s.Links))
	for i, l := range s.Links {
		links[i] = multilink.LinkSpec{
			Bandwidth: fluid.MbpsToMSSps(l.Mbps),
			PropDelay: l.RTTms / 1000 / 2,
			Buffer:    l.BufferMSS,
		}
	}
	flows := make([]multilink.FlowSpec, len(s.Flows))
	for i, f := range s.Flows {
		init := f.Init
		if init == 0 {
			init = 1
		}
		flows[i] = multilink.FlowSpec{Proto: protos[i], Init: init, Path: f.Path}
	}
	var opts []multilink.Option
	if s.StochasticLoss {
		opts = append(opts, multilink.WithStochasticLoss(s.Seed))
	}
	// Per-flow and per-link tail summaries need the full recorded series.
	eres, err := engine.Run(ctx, engine.Spec{
		Substrate: &engine.NetSpec{Links: links, Flows: flows, Opts: opts, Steps: s.steps()},
		Record:    true,
	})
	if err != nil {
		return nil, err
	}
	res := eres.Net

	tail := s.tail()
	out := &Outcome{Name: s.Name, Model: s.Model, Summary: map[string]float64{}}
	var goodputs []float64
	for i := range s.Flows {
		g := res.AvgGoodput(i, tail)
		goodputs = append(goodputs, g)
		out.Flows = append(out.Flows, FlowOutcome{
			Protocol:  protos[i].Name(),
			AvgWindow: res.AvgWindow(i, tail),
			Goodput:   g,
		})
	}
	fillShares(out.Flows, goodputs)
	util := 0.0
	for l := range links {
		util += res.LinkUtilization(l, tail)
	}
	out.Summary["efficiency"] = util / float64(len(links))
	out.Summary["jain_goodput"] = stats.JainIndex(goodputs)
	worstLoss := 0.0
	for l := range links {
		if m := stats.Mean(stats.Tail(res.LinkLoss[l], tail)); m > worstLoss {
			worstLoss = m
		}
	}
	out.Summary["tail_loss"] = worstLoss
	return out, nil
}

func (s *Spec) runTopo(ctx context.Context) (*Outcome, error) {
	protos, err := s.parseProtocols()
	if err != nil {
		return nil, err
	}
	links := s.topoLinks()
	flows := make([]nettopo.FlowSpec, len(s.Flows))
	for i, f := range s.Flows {
		init := f.Init
		if init == 0 {
			init = 1
		}
		flows[i] = nettopo.FlowSpec{
			Proto:    protos[i],
			Init:     init,
			Path:     f.Path,
			ExtraRTT: f.ExtraRTTms / 1000,
		}
	}
	// Unlike runMultilink, all summaries come from tail rings, so the run
	// streams through a TopoStream and resolves through the session cache:
	// a warm persistent store serves the whole scenario without simulating.
	tail := s.tail()
	st, err := metrics.RunTopo(ctx, metrics.TopoRunSpec{
		Links:      links,
		Flows:      flows,
		Steps:      s.steps(),
		TailFrac:   tail,
		Stochastic: s.StochasticLoss,
		Seed:       s.Seed,
		Session:    metrics.NewSession(),
	})
	if err != nil {
		return nil, err
	}

	out := &Outcome{Name: s.Name, Model: s.Model, Summary: map[string]float64{}}
	var goodputs []float64
	for i := range s.Flows {
		g := st.AvgGoodput(i)
		goodputs = append(goodputs, g)
		out.Flows = append(out.Flows, FlowOutcome{
			Protocol:  protos[i].Name(),
			AvgWindow: st.AvgWindow(i),
			Goodput:   g,
		})
	}
	fillShares(out.Flows, goodputs)
	util := 0.0
	for l := range links {
		util += st.LinkUtilization(l)
	}
	out.Summary["efficiency"] = util / float64(len(links))
	out.Summary["jain_goodput"] = stats.JainIndex(goodputs)
	worstLoss := 0.0
	for l := range links {
		if m := stats.Mean(st.TailLinkLoss(l)); m > worstLoss {
			worstLoss = m
		}
	}
	out.Summary["tail_loss"] = worstLoss
	out.Summary["latency_inflation"] = st.LatencyAvoidance()
	if f := st.Fairness(); !math.IsNaN(f) {
		out.Summary["fairness"] = f
	}
	return out, nil
}

func fillShares(flows []FlowOutcome, goodputs []float64) {
	total := stats.Sum(goodputs)
	if total <= 0 {
		return
	}
	for i := range flows {
		flows[i].Share = goodputs[i] / total
	}
}

// Render formats the outcome as an aligned text table.
func (o *Outcome) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %q (%s model)\n", o.Name, o.Model)
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\tprotocol\tavg window\tgoodput (MSS/s)\tshare")
	for i, f := range o.Flows {
		fmt.Fprintf(w, "%d\t%s\t%.2f\t%.1f\t%.1f%%\n", i, f.Protocol, f.AvgWindow, f.Goodput, 100*f.Share)
	}
	w.Flush()
	keys := []string{"efficiency", "tail_loss", "jain_goodput", "fairness", "latency_inflation"}
	for _, k := range keys {
		if v, ok := o.Summary[k]; ok {
			fmt.Fprintf(&sb, "%s=%.4f ", k, v)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// JSON marshals the outcome, indented.
func (o *Outcome) JSON() ([]byte, error) {
	return json.MarshalIndent(o, "", "  ")
}
