package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const fluidSpec = `{
  "name": "two-renos",
  "model": "fluid",
  "steps": 1500,
  "link": {"mbps": 20, "rtt_ms": 42, "buffer_mss": 100},
  "flows": [
    {"protocol": "reno", "init": 1},
    {"protocol": "reno", "init": 60}
  ]
}`

func TestLoadAndRunFluid(t *testing.T) {
	s, err := Load(strings.NewReader(fluidSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "two-renos" || s.Model != "fluid" {
		t.Fatalf("spec = %+v", s)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Flows) != 2 {
		t.Fatalf("flows = %d", len(out.Flows))
	}
	// Two Renos split fairly.
	if math.Abs(out.Flows[0].Share-0.5) > 0.1 {
		t.Errorf("share = %v, want ≈ 0.5", out.Flows[0].Share)
	}
	if out.Summary["efficiency"] < 0.9 {
		t.Errorf("efficiency = %v", out.Summary["efficiency"])
	}
	if out.Summary["jain_goodput"] < 0.95 {
		t.Errorf("jain = %v", out.Summary["jain_goodput"])
	}
}

func TestRunPacketWithREDAndDelays(t *testing.T) {
	spec := `{
	  "name": "red-mix",
	  "model": "packet",
	  "duration": 20,
	  "link": {"mbps": 20, "rtt_ms": 42, "buffer_mss": 100,
	           "red": {"min_thresh": 10, "max_thresh": 40, "max_p": 0.1}},
	  "flows": [
	    {"protocol": "reno"},
	    {"protocol": "cubic", "extra_delay_ms": 20, "start": 2}
	  ]
	}`
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary["efficiency"] < 0.5 {
		t.Errorf("efficiency = %v", out.Summary["efficiency"])
	}
	// RED keeps the standing queue short.
	if out.Summary["latency_inflation"] > 1 {
		t.Errorf("latency inflation = %v under RED", out.Summary["latency_inflation"])
	}
}

func TestRunMultilinkParkingLot(t *testing.T) {
	spec := `{
	  "name": "lot",
	  "model": "multilink",
	  "steps": 2000,
	  "stochastic_loss": true,
	  "seed": 7,
	  "links": [
	    {"mbps": 20, "rtt_ms": 42, "buffer_mss": 20},
	    {"mbps": 20, "rtt_ms": 42, "buffer_mss": 20}
	  ],
	  "flows": [
	    {"protocol": "reno", "path": [0, 1]},
	    {"protocol": "reno", "path": [0]},
	    {"protocol": "reno", "path": [1]}
	  ]
	}`
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The long flow's share is the smallest.
	if out.Flows[0].Share >= out.Flows[1].Share {
		t.Errorf("long flow share %v ≥ short %v", out.Flows[0].Share, out.Flows[1].Share)
	}
}

func TestRunNettopoIncast(t *testing.T) {
	spec := `{
	  "name": "mini-incast",
	  "model": "nettopo",
	  "steps": 1500,
	  "links": [
	    {"mbps": 40, "rtt_ms": 10, "buffer_mss": 20, "src": "s0", "dst": "sw"},
	    {"mbps": 40, "rtt_ms": 10, "buffer_mss": 20, "src": "s1", "dst": "sw"},
	    {"mbps": 20, "rtt_ms": 20, "buffer_mss": 40, "src": "sw", "dst": "sink"}
	  ],
	  "flows": [
	    {"protocol": "reno", "path": [0, 2], "extra_rtt_ms": 5},
	    {"protocol": "reno", "path": [1, 2]}
	  ]
	}`
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Flows) != 2 {
		t.Fatalf("got %d flow outcomes", len(out.Flows))
	}
	for i, f := range out.Flows {
		if f.Goodput <= 0 || f.AvgWindow <= 0 {
			t.Errorf("flow %d: goodput %v window %v", i, f.Goodput, f.AvgWindow)
		}
	}
	// Both flows share the core link, so fairness is defined.
	fair, ok := out.Summary["fairness"]
	if !ok || fair <= 0 || fair > 1 {
		t.Errorf("fairness = %v (present=%v)", fair, ok)
	}
	if eff, ok := out.Summary["efficiency"]; !ok || eff <= 0 {
		t.Errorf("efficiency = %v (present=%v)", eff, ok)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"unknown model", `{"name":"x","model":"ns3","flows":[{"protocol":"reno"}]}`, "unknown model"},
		{"fluid without link", `{"name":"x","model":"fluid","flows":[{"protocol":"reno"}]}`, `needs a "link"`},
		{"multilink without links", `{"name":"x","model":"multilink","flows":[{"protocol":"reno","path":[0]}]}`, `needs "links"`},
		{"no flows", `{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[]}`, "at least one flow"},
		{"missing protocol", `{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[{}]}`, "no protocol"},
		{"path on fluid", `{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[{"protocol":"reno","path":[0]}]}`, "multilink"},
		{"multilink flow without path", `{"name":"x","model":"multilink","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10}],"flows":[{"protocol":"reno"}]}`, "needs a path"},
		{"unknown field", `{"name":"x","model":"fluid","bogus":1,"link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[{"protocol":"reno"}]}`, "bogus"},
		{"links on fluid", `{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10}],"flows":[{"protocol":"reno"}]}`, "multilink"},
		{"src/dst on multilink", `{"name":"x","model":"multilink","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10,"src":"a","dst":"b"}],"flows":[{"protocol":"reno","path":[0]}]}`, "nettopo"},
		{"extra_rtt_ms on multilink", `{"name":"x","model":"multilink","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10}],"flows":[{"protocol":"reno","path":[0],"extra_rtt_ms":5}]}`, "nettopo"},
		{"cyclic nettopo", `{"name":"x","model":"nettopo","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10,"src":"a","dst":"b"},{"mbps":20,"rtt_ms":42,"buffer_mss":10,"src":"b","dst":"a"}],"flows":[{"protocol":"reno","path":[0]}]}`, "cycle"},
		{"discontiguous nettopo path", `{"name":"x","model":"nettopo","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":10,"src":"a","dst":"b"},{"mbps":20,"rtt_ms":42,"buffer_mss":10,"src":"c","dst":"d"}],"flows":[{"protocol":"reno","path":[0,1]}]}`, "contiguous"},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.spec))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.want)
		}
	}
}

func TestBadProtocolSurfacesAtRun(t *testing.T) {
	spec := `{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":10},"flows":[{"protocol":"nosuch"}]}`
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutcomeRenderAndJSON(t *testing.T) {
	s, err := Load(strings.NewReader(fluidSpec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	text := out.Render()
	for _, want := range []string{"two-renos", "AIMD(1,0.5)", "efficiency="} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	raw, err := out.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Outcome
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if parsed.Name != "two-renos" || len(parsed.Flows) != 2 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestUnsyncFlowsInFluidSpec(t *testing.T) {
	spec := `{
	  "name": "unsync",
	  "model": "fluid",
	  "steps": 1500,
	  "link": {"mbps": 20, "rtt_ms": 42, "buffer_mss": 20},
	  "flows": [
	    {"protocol": "reno", "period": 1},
	    {"protocol": "reno", "period": 4}
	  ]
	}`
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The slow updater loses.
	if out.Flows[1].AvgWindow >= out.Flows[0].AvgWindow {
		t.Errorf("period-4 flow (%v) ≥ period-1 flow (%v)",
			out.Flows[1].AvgWindow, out.Flows[0].AvgWindow)
	}
}
