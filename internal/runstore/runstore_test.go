package runstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Version == "" {
		opts.Version = "testver"
	}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	payload := []byte("hello runstore \x00\x01\x02")
	if _, ok := s.Get("k1"); ok {
		t.Fatal("unexpected hit on empty store")
	}
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSharedDirAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("shared", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("shared")
	if !ok || string(got) != "payload" {
		t.Fatalf("second handle Get = %q, %v", got, ok)
	}
}

func TestVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{Version: "old"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{Version: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k"); ok {
		t.Fatal("entry survived a source-hash change")
	}
}

func TestCorruptEntryDetectedAndRemoved(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put("k", []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	// Find the object file and flip one payload byte.
	var path string
	filepath.Walk(filepath.Join(s.Dir(), "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".run") {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no object file written")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-40] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	var path string
	filepath.Walk(filepath.Join(s.Dir(), "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".run") {
			path = p
		}
		return nil
	})
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry served as a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits roughly two of the four ~1 KiB entries.
	s := openTest(t, Options{MaxBytes: 2500})
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU ordering is unambiguous even on coarse
		// filesystem timestamps.
		bumpMtimes(t, s, time.Duration(i)*2*time.Second)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions at %d bytes over a 2500-byte budget", st.Bytes)
	}
	if st := s.Stats(); st.Bytes > 2500 {
		t.Fatalf("store still over budget: %d bytes", st.Bytes)
	}
	// The newest entry must have survived.
	if _, ok := s.Get("k3"); !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

// bumpMtimes ages every current object by -age relative to now so later
// writes are strictly newer.
func bumpMtimes(t *testing.T, s *Store, age time.Duration) {
	t.Helper()
	base := time.Now().Add(-time.Hour).Add(age)
	filepath.Walk(filepath.Join(s.Dir(), "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".run") {
			os.Chtimes(p, base, base)
		}
		return nil
	})
}

func TestGCAndClear(t *testing.T) {
	s := openTest(t, Options{MaxBytes: -1})
	payload := bytes.Repeat([]byte("y"), 512)
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("g%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	removed, remaining, err := s.GC(1200)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || remaining > 1200 {
		t.Fatalf("GC removed %d, remaining %d", removed, remaining)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, remaining, _ := s.GC(0); remaining != 0 {
		t.Fatalf("Clear left %d bytes", remaining)
	}
}

func TestLockKeyExcludes(t *testing.T) {
	s := openTest(t, Options{})
	unlock, err := s.LockKey("contended")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		u, err := s.LockKey("contended")
		if err != nil {
			t.Error(err)
			return
		}
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("second LockKey acquired while first held")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("second LockKey never acquired after release")
	}
	wg.Wait()
}

func TestLockKeyTimeout(t *testing.T) {
	dir := t.TempDir()
	holder, err := Open(dir, Options{Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Open(dir, Options{Version: "v", LockTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	unlock, err := holder.LockKey("wedged")
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()
	start := time.Now()
	if _, err := bounded.LockKey("wedged"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("bounded LockKey behind a live holder: err = %v, want ErrLockTimeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timed-out LockKey waited %v for a 30ms bound", waited)
	}
	if got := bounded.Stats().LockTimeouts; got != 1 {
		t.Fatalf("Stats().LockTimeouts = %d, want 1", got)
	}
	// A different key is uncontended and must still lock instantly.
	u2, err := bounded.LockKey("free")
	if err != nil {
		t.Fatal(err)
	}
	u2()
}

func TestSourceHashStable(t *testing.T) {
	h1, err := SourceHash()
	if err != nil {
		t.Skipf("source tree unavailable: %v", err)
	}
	h2, _ := SourceHash()
	if h1 != h2 || len(h1) != 16 {
		t.Fatalf("SourceHash unstable or malformed: %q vs %q", h1, h2)
	}
}

func TestOpenSeedsSizeFromDisk(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", bytes.Repeat([]byte("z"), 2048)); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Bytes; got < 2048 {
		t.Fatalf("reopened store sees %d bytes, want >= 2048", got)
	}
}
