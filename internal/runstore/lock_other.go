//go:build !unix

package runstore

import "sync"

// Platforms without advisory flock fall back to process-local mutexes:
// correctness within one process is preserved (the store's atomic
// rename + checksum protocol keeps concurrent processes safe, they just
// lose cross-process single-flight and may duplicate work).
var fallbackLocks sync.Map // path -> *sync.Mutex

func flockPath(path string) (func(), error) {
	mu, _ := fallbackLocks.LoadOrStore(path, &sync.Mutex{})
	m := mu.(*sync.Mutex)
	m.Lock()
	return m.Unlock, nil
}
