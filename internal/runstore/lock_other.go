//go:build !unix

package runstore

import (
	"fmt"
	"sync"
	"time"
)

// Platforms without advisory flock fall back to process-local mutexes:
// correctness within one process is preserved (the store's atomic
// rename + checksum protocol keeps concurrent processes safe, they just
// lose cross-process single-flight and may duplicate work). The timeout
// contract matches the unix implementation: <= 0 blocks, positive
// bounds the wait and returns ErrLockTimeout on expiry.
var fallbackLocks sync.Map // path -> chan struct{} (1-slot semaphore)

func flockPath(path string, timeout time.Duration) (func(), error) {
	sem, _ := fallbackLocks.LoadOrStore(path, make(chan struct{}, 1))
	ch := sem.(chan struct{})
	if timeout <= 0 {
		ch <- struct{}{}
		return func() { <-ch }, nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case ch <- struct{}{}:
		return func() { <-ch }, nil
	case <-t.C:
		return nil, fmt.Errorf("runstore: lock %s after %v: %w", path, timeout, ErrLockTimeout)
	}
}
