package runstore

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// exemptPackages are internal packages that may appear in the simulation
// import closure without participating in the source hash: they sit on
// the observation/caching side of the cache boundary and cannot change
// what a simulation computes.
//
//   - internal/obs: telemetry — counters, spans, profiles. Read-only
//     taps; disabling it is the documented no-op baseline.
//   - internal/runstore: the cache layer itself. Hashing it would be
//     circular (its key schema is already versioned by SchemaVersion),
//     and by construction it only stores and replays results.
//   - internal/parallel: work scheduling for sweep cells. Cells are
//     independent and deterministic; execution order cannot change any
//     cell's value.
//   - internal/retry: re-execution policy around transient failures; a
//     retried run recomputes the same deterministic result.
var exemptPackages = map[string]bool{
	"internal/obs":      true,
	"internal/runstore": true,
	"internal/parallel": true,
	"internal/retry":    true,
}

// simulationRoots are the packages whose import closure defines "can
// affect a simulated value": every substrate runs through
// internal/engine, and every cached payload is built by internal/metrics.
var simulationRoots = []string{"internal/engine", "internal/metrics"}

// internalImportClosure walks non-test imports from the roots, restricted
// to repro/internal packages.
func internalImportClosure(t *testing.T, root string) map[string]bool {
	t.Helper()
	const prefix = "repro/"
	seen := map[string]bool{}
	queue := append([]string(nil), simulationRoots...)
	for len(queue) > 0 {
		pkg := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", pkg, err)
		}
		fset := token.NewFileSet()
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s/%s: %v", pkg, name, err)
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(path, prefix+"internal/") {
					queue = append(queue, strings.TrimPrefix(path, prefix))
				}
			}
		}
	}
	return seen
}

// TestSimulationPackagesCoverImportClosure fails when a package that can
// affect simulation output is listed in neither SimulationPackages nor
// the documented exempt set — the guard that forced internal/nettopo into
// the source hash, and will force the next substrate too.
func TestSimulationPackagesCoverImportClosure(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, p := range SimulationPackages {
		listed[p] = true
	}
	closure := internalImportClosure(t, root)
	for pkg := range closure {
		if !listed[pkg] && !exemptPackages[pkg] {
			t.Errorf("%s is imported by the simulation path but missing from SimulationPackages (or the exempt list)", pkg)
		}
	}
	// Staleness guard: everything hashed must still exist and still be on
	// the simulation path, so the hash never keys on dead directories.
	for _, pkg := range SimulationPackages {
		if exemptPackages[pkg] {
			t.Errorf("%s is both hashed and exempt", pkg)
		}
		if !closure[pkg] {
			t.Errorf("%s is in SimulationPackages but no longer in the simulation import closure", pkg)
		}
	}
}

// TestCIWarmCacheKeyMatchesSimulationPackages parses the store-warm cache
// key in .github/workflows/ci.yml and asserts its hashFiles globs cover
// exactly go.mod plus SimulationPackages — the cross-process analogue of
// SourceHash must invalidate on the same inputs.
func TestCIWarmCacheKeyMatchesSimulationPackages(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`runstore-\$\{\{ env\.RUNSTORE_SCHEMA \}\}-\$\{\{ hashFiles\(([^)]*)\)`).FindSubmatch(raw)
	if m == nil {
		t.Fatal("store-warm cache key with hashFiles(...) not found in ci.yml")
	}
	var got []string
	for _, arg := range regexp.MustCompile(`'([^']+)'`).FindAllSubmatch(m[1], -1) {
		got = append(got, string(arg[1]))
	}
	want := []string{"go.mod"}
	for _, pkg := range SimulationPackages {
		want = append(want, pkg+"/**/*.go")
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("ci.yml hashFiles globs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ci.yml hashFiles glob %q, want %q", got[i], want[i])
		}
	}
}
