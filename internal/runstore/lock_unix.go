//go:build unix

package runstore

import (
	"fmt"
	"os"
	"syscall"
	"time"
)

// flockPath takes an exclusive advisory flock on path (creating it if
// needed) and returns the release func. The lock file itself is never
// deleted: unlinking a file another process is about to flock would let
// two holders lock different inodes.
//
// timeout <= 0 blocks until the lock is free. A positive timeout bounds
// the wait: the lock is polled non-blocking with a short sleep ladder,
// and expiry returns an error wrapping ErrLockTimeout so callers can
// degrade (the session layer falls back to lock-free idempotent
// behavior) instead of hanging forever behind a wedged — but alive —
// holder.
func flockPath(path string, timeout time.Duration) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: lock %s: %w", path, err)
	}
	if timeout <= 0 {
		if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: flock %s: %w", path, err)
		}
		return releaseFunc(f), nil
	}
	deadline := time.Now().Add(timeout)
	sleep := time.Millisecond
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return releaseFunc(f), nil
		}
		if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
			f.Close()
			return nil, fmt.Errorf("runstore: flock %s: %w", path, err)
		}
		if remaining := time.Until(deadline); remaining <= 0 {
			f.Close()
			return nil, fmt.Errorf("runstore: flock %s after %v: %w", path, timeout, ErrLockTimeout)
		} else if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if sleep < 50*time.Millisecond {
			sleep *= 2
		}
	}
}

func releaseFunc(f *os.File) func() {
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
