//go:build unix

package runstore

import (
	"fmt"
	"os"
	"syscall"
)

// flockPath takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is free, and returns the release
// func. The lock file itself is never deleted: unlinking a file another
// process is about to flock would let two holders lock different inodes.
func flockPath(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: flock %s: %w", path, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
