// Package runstore is a disk-backed, content-addressed store for
// simulation results, shared by every process that points at the same
// directory. It is the persistent second tier below the in-memory
// metrics.Session run cache: keys are canonical input fingerprints
// (extended with the store schema version and a content hash of the
// simulation-relevant source packages, so any change to the simulators
// automatically invalidates stale entries), values are opaque payloads
// the caller serializes (metrics encodes Stream/Trace runs, the engine
// checkpoints sweep-cell results).
//
// Entries are written atomically (temp file + rename) with a per-entry
// SHA-256 checksum, verified — and deleted when corrupt — on every read.
// Cross-process mutual exclusion uses advisory per-key file locks
// (LockKey), so concurrent CLIs and parallel sweep workers sharing one
// store simulate each unique cell once. The store is size-capped with
// LRU eviction by access time (reads refresh an entry's mtime).
package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is baked into every canonical key. Bump it whenever the
// entry layout or any payload codec changes incompatibly; old entries
// then simply never match and age out via LRU eviction.
const SchemaVersion = 1

// DefaultMaxBytes caps the store at 1 GiB unless configured otherwise.
const DefaultMaxBytes = 1 << 30

// entryMagic heads every object file.
var entryMagic = [8]byte{'A', 'X', 'R', 'S', '0', '0', '0', '1'}

// Options configures Open.
type Options struct {
	// MaxBytes caps the store's total object size: 0 selects
	// DefaultMaxBytes, negative disables eviction entirely.
	MaxBytes int64
	// Version overrides the source-content hash folded into every key.
	// Empty (the default) computes SourceHash; tests pin it to isolate
	// store behavior from the live source tree.
	Version string
	// LockTimeout bounds every per-key (and gc) advisory-lock wait. A
	// holder that dies releases its flock automatically, but a wedged
	// live holder used to block waiters indefinitely; with a timeout the
	// wait trips with an error wrapping ErrLockTimeout — surfaced as the
	// runstore.flock.timeouts counter and a flight-recorder event — and
	// callers degrade to lock-free idempotent behavior. 0 (the default)
	// waits forever, preserving strict cross-process single-flight;
	// negative also waits forever.
	LockTimeout time.Duration
}

// ErrLockTimeout matches (errors.Is) the error LockKey returns when a
// configured Options.LockTimeout expires before the per-key advisory
// lock could be acquired.
var ErrLockTimeout = errors.New("runstore: lock wait timed out")

// Stats counts what one process observed of the store. Bytes is the
// (approximate, process-local) current object volume.
type Stats struct {
	Hits         int64
	Misses       int64
	Puts         int64
	Evictions    int64
	Corrupt      int64
	LockTimeouts int64
	Bytes        int64
}

// store telemetry, recorded only while obs is enabled. Cached pointers:
// the registry preserves metric identity across Reset.
var (
	storeHits         = obs.GetCounter("runstore.hits")
	storeMisses       = obs.GetCounter("runstore.misses")
	storePuts         = obs.GetCounter("runstore.puts")
	storeEvictions    = obs.GetCounter("runstore.evictions")
	storeCorrupt      = obs.GetCounter("runstore.corrupt")
	storeLockTimeouts = obs.GetCounter("runstore.flock.timeouts")
)

// Store is one process's handle on a shared store directory. All methods
// are safe for concurrent use by multiple goroutines, and the on-disk
// protocol is safe across processes.
type Store struct {
	dir         string
	prefix      string // canonical key prefix: "v<schema>|<srchash>|"
	maxBytes    int64  // <0 = unlimited
	lockTimeout time.Duration

	hits         atomic.Int64
	misses       atomic.Int64
	puts         atomic.Int64
	evictions    atomic.Int64
	corrupt      atomic.Int64
	lockTimeouts atomic.Int64
	bytes        atomic.Int64
}

// DefaultDir returns the per-user default store location
// (<user-cache>/axiomcc/runstore).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("runstore: no user cache dir: %w", err)
	}
	return filepath.Join(base, "axiomcc", "runstore"), nil
}

// Open creates (if needed) and opens the store rooted at dir. An empty
// dir selects DefaultDir. Opening scans the object tree once to seed the
// size accounting used by LRU eviction.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	version := opts.Version
	if version == "" {
		var err error
		if version, err = SourceHash(); err != nil {
			return nil, err
		}
	}
	for _, sub := range []string{"objects", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	s := &Store{
		dir:         dir,
		prefix:      fmt.Sprintf("v%d|%s|", SchemaVersion, version),
		maxBytes:    opts.MaxBytes,
		lockTimeout: opts.LockTimeout,
	}
	if s.maxBytes == 0 {
		s.maxBytes = DefaultMaxBytes
	}
	size, _, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.bytes.Store(size)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of this handle's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		Evictions:    s.evictions.Load(),
		Corrupt:      s.corrupt.Load(),
		LockTimeouts: s.lockTimeouts.Load(),
		Bytes:        s.bytes.Load(),
	}
}

// canonical folds the schema version and source hash into the caller's
// logical key; hashing the result yields the object address, so a source
// change re-addresses every entry at once.
func (s *Store) canonical(key string) string { return s.prefix + key }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash[2:]+".run")
}

func keyHash(canonical string) string {
	h := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(h[:])
}

// Get returns the payload stored under key, or ok=false. A torn,
// truncated, or checksum-failing entry counts as corrupt, is deleted,
// and reads as a miss; a hit refreshes the entry's mtime so eviction
// stays LRU.
func (s *Store) Get(key string) ([]byte, bool) {
	sp := obs.StartLeafSpan("runstore.get")
	defer sp.End()
	ck := s.canonical(key)
	path := s.objectPath(keyHash(ck))
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		if obs.Enabled() {
			storeMisses.Inc()
		}
		return nil, false
	}
	payload, err := decodeEntry(data, ck)
	if err != nil {
		os.Remove(path)
		s.corrupt.Add(1)
		s.misses.Add(1)
		if obs.Enabled() {
			storeCorrupt.Inc()
			storeMisses.Inc()
		}
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU recency
	s.hits.Add(1)
	if obs.Enabled() {
		storeHits.Inc()
	}
	return payload, true
}

// Put stores payload under key, atomically (temp file + rename), and
// evicts least-recently-used entries when the store exceeds its byte
// budget. Put never fails the caller's computation path for transient
// disk trouble beyond reporting the error.
func (s *Store) Put(key string, payload []byte) error {
	sp := obs.StartLeafSpan("runstore.put")
	defer sp.End()
	ck := s.canonical(key)
	path := s.objectPath(keyHash(ck))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	data := encodeEntry(ck, payload)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	s.puts.Add(1)
	if obs.Enabled() {
		storePuts.Inc()
	}
	if total := s.bytes.Add(int64(len(data))); s.maxBytes >= 0 && total > s.maxBytes {
		s.evict(s.maxBytes)
	}
	return nil
}

// GC evicts least-recently-used entries until the store's object volume
// is at most maxBytes (0 reuses the store's configured budget) and
// removes abandoned temp files. It reports how many entries were
// removed and how many bytes remain.
func (s *Store) GC(maxBytes int64) (removed int, remaining int64, err error) {
	if maxBytes <= 0 {
		maxBytes = s.maxBytes
	}
	if maxBytes < 0 {
		maxBytes = DefaultMaxBytes
	}
	removed = s.evict(maxBytes)
	return removed, s.bytes.Load(), nil
}

// Clear removes every object in the store (locks are kept: another
// process may be holding one).
func (s *Store) Clear() error {
	err := os.RemoveAll(filepath.Join(s.dir, "objects"))
	if mkErr := os.MkdirAll(filepath.Join(s.dir, "objects"), 0o755); err == nil {
		err = mkErr
	}
	s.bytes.Store(0)
	return err
}

// entryInfo is one object file seen by a scan, ordered by access time.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// scan walks the object tree, deleting stale temp files, and returns the
// total size and the per-entry listing.
func (s *Store) scan() (int64, []entryInfo, error) {
	var total int64
	var entries []entryInfo
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a vanished entry (concurrent eviction) is not an error
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if filepath.Ext(path) != ".run" {
			// Abandoned temp file from a crashed writer: reap once old
			// enough that no live writer can still be renaming it.
			if time.Since(info.ModTime()) > time.Hour {
				os.Remove(path)
			}
			return nil
		}
		total += info.Size()
		entries = append(entries, entryInfo{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("runstore: %w", err)
	}
	return total, entries, nil
}

// evict removes oldest-accessed entries until the store is within limit,
// under the store-wide gc lock so concurrent processes don't thrash.
// Returns the number of entries removed.
func (s *Store) evict(limit int64) int {
	sp := obs.StartLeafSpan("runstore.gc")
	defer sp.End()
	unlock, err := s.lockFile("gc.lock")
	if err != nil {
		return 0
	}
	defer unlock()
	total, entries, err := s.scan()
	if err != nil {
		return 0
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].mtime.Before(entries[b].mtime) })
	removed := 0
	for _, e := range entries {
		if total <= limit {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			removed++
			s.evictions.Add(1)
			if obs.Enabled() {
				storeEvictions.Inc()
			}
		}
	}
	s.bytes.Store(total)
	return removed
}

// LockKey acquires the advisory cross-process lock for key — blocking
// until it is free, or at most the store's configured LockTimeout — and
// returns the release func. Claimants simulate while holding the lock;
// everyone else blocks in LockKey, then finds the finished entry with
// Get — single-flight across processes. A timed-out wait returns an
// error wrapping ErrLockTimeout; callers treat it as "no lock" and fall
// back to idempotent lock-free behavior.
func (s *Store) LockKey(key string) (func(), error) {
	return s.lockFile(keyHash(s.canonical(key)) + ".lock")
}

func (s *Store) lockFile(name string) (func(), error) {
	// The span measures how long this process waited for the advisory
	// lock — cross-process contention on a cell shows up here.
	sp := obs.StartLeafSpan("runstore.flock.wait")
	defer sp.End()
	unlock, err := flockPath(filepath.Join(s.dir, "locks", name), s.lockTimeout)
	if errors.Is(err, ErrLockTimeout) {
		// A tripped bound is an operational event worth flying evidence
		// for: some holder is alive but stuck (or the disk is wedged),
		// and this process just chose progress over single-flight.
		s.lockTimeouts.Add(1)
		if obs.Enabled() {
			storeLockTimeouts.Inc()
			obs.NoteEvent("flock-timeout", "runstore.flock.wait",
				name+" after "+s.lockTimeout.String())
		}
	}
	return unlock, err
}

// ---- entry encoding ----

// encodeEntry frames one object file: magic, key length, payload length,
// key, payload, SHA-256 over key+payload.
func encodeEntry(canonicalKey string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(entryMagic) + 12 + len(canonicalKey) + len(payload) + sha256.Size)
	buf.Write(entryMagic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(canonicalKey)))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.WriteString(canonicalKey)
	buf.Write(payload)
	sum := sha256.New()
	sum.Write([]byte(canonicalKey))
	sum.Write(payload)
	buf.Write(sum.Sum(nil))
	return buf.Bytes()
}

var errCorrupt = errors.New("runstore: corrupt entry")

// decodeEntry verifies the frame and returns the payload. wantKey guards
// against (astronomically unlikely) SHA-256 address collisions and
// against entries copied between stores.
func decodeEntry(data []byte, wantKey string) ([]byte, error) {
	if len(data) < len(entryMagic)+12+sha256.Size || !bytes.Equal(data[:len(entryMagic)], entryMagic[:]) {
		return nil, errCorrupt
	}
	rest := data[len(entryMagic):]
	keyLen := int(binary.LittleEndian.Uint32(rest[0:4]))
	payloadLen := binary.LittleEndian.Uint64(rest[4:12])
	rest = rest[12:]
	if uint64(keyLen) > uint64(len(rest)) || payloadLen > uint64(len(rest)-keyLen) ||
		uint64(len(rest)) != uint64(keyLen)+payloadLen+sha256.Size {
		return nil, errCorrupt
	}
	key := rest[:keyLen]
	payload := rest[keyLen : uint64(keyLen)+payloadLen]
	want := rest[uint64(keyLen)+payloadLen:]
	sum := sha256.New()
	sum.Write(key)
	sum.Write(payload)
	if !bytes.Equal(sum.Sum(nil), want) {
		return nil, errCorrupt
	}
	if string(key) != wantKey {
		return nil, errCorrupt
	}
	// Copy out: data's backing array is the whole file read.
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}
