package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// SimulationPackages are the module-relative package directories whose
// source content participates in every store key: a change to any of
// them can change what a simulation produces, so it must re-address
// every cached run. Test files are excluded — they cannot affect
// simulation output. The CI workflow keys its persisted-store cache on
// the same directory set (hashFiles in .github/workflows/ci.yml); keep
// the two lists in sync.
var SimulationPackages = []string{
	"internal/chaos",
	"internal/engine",
	"internal/fluid",
	"internal/metrics",
	"internal/multilink",
	"internal/nettopo",
	"internal/packetsim",
	"internal/protocol",
	"internal/rand64",
	"internal/stats",
	"internal/trace",
}

var srcHash = sync.OnceValues(func() (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, pkg := range SimulationPackages {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", fmt.Errorf("runstore: source hash: %w", err)
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			data, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				return "", fmt.Errorf("runstore: source hash: %w", err)
			}
			fmt.Fprintf(h, "%s/%s:%d\n", pkg, n, len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
})

// SourceHash returns a 16-hex-digit content hash of the simulation-
// relevant packages' non-test source, computed once per process from the
// source tree this binary was built in. It fails (and the store stays
// disabled) when the binary runs away from its source checkout — better
// no persistence than stale entries that silently survive code changes.
func SourceHash() (string, error) { return srcHash() }

// moduleRoot locates the module root from this file's compile-time path
// (…/internal/runstore/srchash.go → three levels up), verified by the
// presence of go.mod.
func moduleRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("runstore: cannot locate source tree")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("runstore: source tree not found at %s: %w", root, err)
	}
	return root, nil
}
