package chaos

import (
	"math"
	"testing"
)

// FuzzSchedule feeds arbitrary JSON through Parse → Compile → a sampling
// of injector queries. The contract under test: events in any order with
// any overlap either normalize into a valid schedule or return an error —
// never a panic — and every injector answer stays finite and in range.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte(`{"events":[{"kind":"ge-loss","at":0,"p_good_bad":0.02,"p_bad_good":0.3,"loss_bad":0.08,"flow":-1,"link":-1}]}`))
	f.Add([]byte(`{"events":[{"kind":"link-flap","at":1200,"duration":60,"link":-1},{"kind":"link-flap","at":400,"duration":60,"link":-1}]}`))
	f.Add([]byte(`{"events":[{"kind":"capacity-ramp","at":10,"duration":20,"scale":0.25,"link":0},{"kind":"capacity-scale","at":15,"duration":20,"scale":3,"link":0}]}`))
	f.Add([]byte(`{"events":[{"kind":"rtt-jitter","at":0,"amplitude":0.004,"link":-1},{"kind":"base-rtt-step","at":30,"delta":-0.01,"link":-1}]}`))
	f.Add([]byte(`{"events":[{"kind":"flow-arrive","at":5,"flow":1},{"kind":"flow-depart","at":3,"flow":0},{"kind":"flow-arrive","at":9,"flow":0}]}`))
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`{"events":[{"kind":"capacity-scale","at":9223372036854775807,"duration":9223372036854775807,"scale":2}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Anything Parse accepts must also survive a second Normalize
		// (idempotent) and compile against a small substrate shape, or
		// fail with an error — Compile rejects out-of-range targets.
		if err := s.Normalize(); err != nil {
			t.Fatalf("re-Normalize of parsed schedule failed: %v", err)
		}
		in, err := s.Compile(12345, 3, 2)
		if err != nil {
			return
		}
		for step := 0; step < 64; step++ {
			for link := 0; link < 2; link++ {
				sc := in.CapacityScale(step, link)
				if !(sc >= FlapScale && sc <= maxScale) {
					t.Fatalf("step %d link %d: capacity scale %v out of [%v, %v]", step, link, sc, FlapScale, float64(maxScale))
				}
				off := in.RTTOffset(step, link)
				if math.IsNaN(off) || math.IsInf(off, 0) {
					t.Fatalf("step %d link %d: RTT offset %v not finite", step, link, off)
				}
			}
			for flow := 0; flow < 3; flow++ {
				l := in.ExtraLoss(step, flow)
				if !(l >= 0 && l < 1) {
					t.Fatalf("step %d flow %d: extra loss %v out of [0, 1)", step, flow, l)
				}
				in.FlowActive(step, flow)
			}
		}
	})
}
