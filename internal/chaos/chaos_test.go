package chaos

import (
	"math"
	"strings"
	"testing"
)

func mustCompile(t *testing.T, s *Schedule, seed uint64, flows, links int) *Injector {
	t.Helper()
	in, err := s.Compile(seed, flows, links)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return in
}

func TestNormalizeSortsAndValidates(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindLinkFlap, At: 500, Duration: 10, Link: -1},
		{Kind: KindCapacityScale, At: 100, Duration: 50, Scale: 0.5, Link: -1, Flow: -1},
		{Kind: KindBaseRTTStep, At: 100, Delta: 0.01, Link: -1},
	}}
	if err := s.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if s.Events[0].At != 100 || s.Events[2].At != 500 {
		t.Fatalf("events not sorted by At: %+v", s.Events)
	}
	// Stable: the two At=100 events keep their authored order.
	if s.Events[0].Kind != KindCapacityScale || s.Events[1].Kind != KindBaseRTTStep {
		t.Fatalf("same-step events reordered: %+v", s.Events)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown kind", Event{Kind: "warp-drive"}},
		{"negative at", Event{Kind: KindLinkFlap, At: -1}},
		{"zero scale", Event{Kind: KindCapacityScale, Scale: 0}},
		{"nan scale", Event{Kind: KindCapacityScale, Scale: math.NaN()}},
		{"huge scale", Event{Kind: KindCapacityScale, Scale: 1e12}},
		{"ramp without duration", Event{Kind: KindCapacityRamp, Scale: 2}},
		{"ge prob out of range", Event{Kind: KindGELoss, PGoodBad: 1.5, PBadGood: 0.5}},
		{"ge loss of one", Event{Kind: KindGELoss, PGoodBad: 0.1, PBadGood: 0.1, LossBad: 1}},
		{"negative amplitude", Event{Kind: KindRTTJitter, Amplitude: -0.1}},
		{"inf delta", Event{Kind: KindBaseRTTStep, Delta: math.Inf(1)}},
		{"churn without flow", Event{Kind: KindFlowDepart, Flow: -1}},
		{"link below -1", Event{Kind: KindLinkFlap, Link: -2}},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		if err := s.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", c.name, c.ev)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"events":[{"kind":"link-flap","att":5}]}`))
	if err == nil || !strings.Contains(err.Error(), "att") {
		t.Fatalf("want unknown-field error mentioning att, got %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(`{"events":[
		{"kind": "ge-loss", "at": 0, "p_good_bad": 0.02, "p_bad_good": 0.3, "loss_bad": 0.08, "flow": -1, "link": -1},
		{"kind": "link-flap", "at": 1200, "duration": 60, "link": -1}
	]}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Events) != 2 || s.Events[0].Kind != KindGELoss {
		t.Fatalf("unexpected schedule: %+v", s)
	}
}

func TestCompileRejectsOutOfRangeTargets(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindFlowDepart, At: 10, Flow: 3}}}
	if _, err := s.Compile(1, 2, 1); err == nil {
		t.Fatal("Compile accepted flow index 3 with only 2 flows")
	}
	s = &Schedule{Events: []Event{{Kind: KindLinkFlap, At: 10, Link: 5}}}
	if _, err := s.Compile(1, 1, 2); err == nil {
		t.Fatal("Compile accepted link index 5 with only 2 links")
	}
}

func TestCompileDoesNotMutateSchedule(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindLinkFlap, At: 50, Duration: 5, Link: -1},
		{Kind: KindLinkFlap, At: 10, Duration: 5, Link: -1},
	}}
	mustCompile(t, s, 1, 1, 1)
	if s.Events[0].At != 50 {
		t.Fatal("Compile reordered the caller's schedule")
	}
}

func TestCapacityScaleComposition(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindCapacityScale, At: 10, Duration: 10, Scale: 0.5, Link: -1},
		{Kind: KindCapacityScale, At: 15, Duration: 10, Scale: 0.5, Link: -1},
	}}
	in := mustCompile(t, s, 1, 1, 1)
	if got := in.CapacityScale(5, 0); got != 1 {
		t.Fatalf("before events: scale = %v, want 1", got)
	}
	if got := in.CapacityScale(12, 0); got != 0.5 {
		t.Fatalf("one event live: scale = %v, want 0.5", got)
	}
	if got := in.CapacityScale(17, 0); got != 0.25 {
		t.Fatalf("overlap: scale = %v, want 0.25", got)
	}
	if got := in.CapacityScale(30, 0); got != 1 {
		t.Fatalf("after events: scale = %v, want 1", got)
	}
}

func TestCapacityRampHoldsTarget(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindCapacityRamp, At: 10, Duration: 10, Scale: 2, Link: -1}}}
	in := mustCompile(t, s, 1, 1, 1)
	if got := in.CapacityScale(10, 0); got != 1 {
		t.Fatalf("ramp start: scale = %v, want 1", got)
	}
	if got := in.CapacityScale(15, 0); got != 1.5 {
		t.Fatalf("ramp midpoint: scale = %v, want 1.5", got)
	}
	if got := in.CapacityScale(1000, 0); got != 2 {
		t.Fatalf("ramp holds target: scale = %v, want 2", got)
	}
}

func TestLinkFlapTargetsOneLink(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindLinkFlap, At: 5, Duration: 5, Link: 1}}}
	in := mustCompile(t, s, 1, 1, 3)
	if got := in.CapacityScale(7, 1); got != FlapScale {
		t.Fatalf("flapped link: scale = %v, want %v", got, FlapScale)
	}
	if got := in.CapacityScale(7, 0); got != 1 {
		t.Fatalf("other link: scale = %v, want 1", got)
	}
	if got := in.CapacityScale(10, 1); got != 1 {
		t.Fatalf("after flap: scale = %v, want 1", got)
	}
}

func TestGELossDeterministicAndBounded(t *testing.T) {
	s := BurstyLoss(0.2, 0.3, 0.08)
	a := mustCompile(t, s, 42, 2, 1)
	b := mustCompile(t, s, 42, 2, 1)
	lossBad := 0.08
	badLoss := 1 - (1 - lossBad) // runtime-composed value, not the literal
	sawBad := false
	for step := 0; step < 2000; step++ {
		la := a.ExtraLoss(step, 0)
		lb := b.ExtraLoss(step, 0)
		if la != lb {
			t.Fatalf("step %d: same seed diverged: %v vs %v", step, la, lb)
		}
		if la != 0 && la != badLoss {
			t.Fatalf("step %d: loss %v outside the two GE states", step, la)
		}
		if la == badLoss {
			sawBad = true
		}
		// Both flows see the same chain.
		if got := a.ExtraLoss(step, 1); got != la {
			t.Fatalf("step %d: flow 1 loss %v != flow 0 loss %v", step, got, la)
		}
	}
	if !sawBad {
		t.Fatal("GE chain never entered the bad state in 2000 steps at p=0.2")
	}
	c := mustCompile(t, s, 43, 2, 1)
	diverged := false
	for step := 0; step < 2000; step++ {
		if c.ExtraLoss(step, 0) != a.ExtraLoss(step, 0) {
			diverged = true
			break
		}
	}
	_ = diverged // different seeds usually diverge; not guaranteed per-step, so no hard assert
}

func TestGELossMeanNearClosedForm(t *testing.T) {
	const pgb, pbg, lossBad = 0.02, 0.3, 0.08
	in := mustCompile(t, BurstyLoss(pgb, pbg, lossBad), 7, 1, 1)
	sum := 0.0
	const n = 200000
	for step := 0; step < n; step++ {
		sum += in.ExtraLoss(step, 0)
	}
	mean := sum / n
	want := lossBad * pgb / (pgb + pbg)
	if math.Abs(mean-want) > 0.3*want {
		t.Fatalf("empirical mean loss %v too far from stationary %v", mean, want)
	}
}

func TestRTTJitterBoundedAndSeeded(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindRTTJitter, At: 0, Amplitude: 0.005, Link: -1}}}
	a := mustCompile(t, s, 9, 1, 2)
	b := mustCompile(t, s, 9, 1, 2)
	nonzero := false
	for step := 0; step < 500; step++ {
		oa := a.RTTOffset(step, 0)
		if math.Abs(oa) > 0.005 {
			t.Fatalf("step %d: |offset| %v exceeds amplitude", step, oa)
		}
		if oa != b.RTTOffset(step, 0) {
			t.Fatalf("step %d: same seed diverged", step)
		}
		if oa != a.RTTOffset(step, 1) {
			t.Fatalf("step %d: jitter draw not shared across links", step)
		}
		if oa != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("jitter never produced a nonzero offset")
	}
}

func TestBaseRTTStepAccumulates(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindBaseRTTStep, At: 10, Delta: 0.02, Link: -1},
		{Kind: KindBaseRTTStep, At: 20, Delta: -0.005, Link: -1},
	}}
	in := mustCompile(t, s, 1, 1, 1)
	if got := in.RTTOffset(5, 0); got != 0 {
		t.Fatalf("before steps: offset %v, want 0", got)
	}
	if got := in.RTTOffset(15, 0); got != 0.02 {
		t.Fatalf("after first step: offset %v, want 0.02", got)
	}
	if got := in.RTTOffset(25, 0); got != 0.015 {
		t.Fatalf("after both steps: offset %v, want 0.015", got)
	}
}

func TestFlowChurn(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindFlowArrive, At: 100, Flow: 1},
		{Kind: KindFlowDepart, At: 200, Flow: 0},
		{Kind: KindFlowArrive, At: 300, Flow: 0},
	}}
	in := mustCompile(t, s, 1, 2, 1)
	if !in.FlowActive(0, 0) {
		t.Fatal("flow 0 should start active (its first churn event is a departure)")
	}
	if in.FlowActive(0, 1) {
		t.Fatal("flow 1 should start inactive (its first churn event is an arrival)")
	}
	if !in.FlowActive(150, 1) {
		t.Fatal("flow 1 should be active after its arrival")
	}
	if in.FlowActive(250, 0) {
		t.Fatal("flow 0 should be inactive after departing")
	}
	if !in.FlowActive(350, 0) {
		t.Fatal("flow 0 should be active again after re-arriving")
	}
}

func TestQueryOrderIndependence(t *testing.T) {
	// Two injectors over the same schedule+seed, one queried every step,
	// one only at sparse steps: answers at shared steps must agree, since
	// the random streams are schedule-driven, not query-driven.
	s := &Schedule{Events: []Event{
		{Kind: KindGELoss, At: 0, PGoodBad: 0.1, PBadGood: 0.2, LossBad: 0.05, Flow: -1, Link: -1},
		{Kind: KindRTTJitter, At: 0, Amplitude: 0.001, Link: -1},
	}}
	dense := mustCompile(t, s, 11, 1, 1)
	sparse := mustCompile(t, s, 11, 1, 1)
	type sample struct{ loss, rtt float64 }
	got := map[int]sample{}
	for step := 0; step < 1000; step++ {
		got[step] = sample{dense.ExtraLoss(step, 0), dense.RTTOffset(step, 0)}
	}
	for _, step := range []int{0, 17, 400, 401, 999} {
		s := sample{sparse.ExtraLoss(step, 0), sparse.RTTOffset(step, 0)}
		if s != got[step] {
			t.Fatalf("step %d: sparse query %+v != dense %+v", step, s, got[step])
		}
	}
}

func TestPastQueriesAnswerCurrentState(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindLinkFlap, At: 10, Duration: 5, Link: -1}}}
	in := mustCompile(t, s, 1, 1, 1)
	if got := in.CapacityScale(12, 0); got != FlapScale {
		t.Fatalf("at step 12: scale %v, want %v", got, FlapScale)
	}
	// A query for an earlier step does not rewind: it answers for step 12.
	if got := in.CapacityScale(3, 0); got != FlapScale {
		t.Fatalf("past query: scale %v, want current %v", got, FlapScale)
	}
}

func TestFlappyLinkPreset(t *testing.T) {
	s := FlappyLink(4000, 800, 800, 40)
	if err := s.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("want 4 flap cycles, got %d", len(s.Events))
	}
	in := mustCompile(t, s, 1, 1, 1)
	if got := in.CapacityScale(810, 0); got != FlapScale {
		t.Fatalf("during flap: scale %v", got)
	}
	if got := in.CapacityScale(900, 0); got != 1 {
		t.Fatalf("between flaps: scale %v", got)
	}
}
