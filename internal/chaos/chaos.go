// Package chaos is the repository's deterministic fault-injection layer:
// a Schedule of timed perturbation events — capacity shocks, ramps and
// link flaps, bursty correlated loss (a Gilbert–Elliott two-state chain,
// generalizing Metric VI's constant rate), RTT jitter and base-RTT steps,
// and flow churn — that any of the three simulation substrates applies
// while it runs.
//
// The paper's robustness metric (Metric VI) scores a protocol against a
// *constant* non-congestion loss rate; real links drift, fade, flap and
// reroute. A Schedule describes those dynamics once, in substrate-neutral
// units (time steps), and Compile turns it into an Injector whose
// per-step answers are fully determined by the schedule and a seed:
// the same (Schedule, seed) pair yields bit-identical perturbations at
// any sweep worker count, which keeps chaos-enabled grids reproducible.
//
// Time is measured in the substrate's own step unit: fluid and multilink
// steps are RTT-quantized model steps; the packet simulator maps its
// continuous clock onto steps of one trace tick (Config.Tick) each.
//
// Schedules are plain JSON (see Event for the field-per-kind table) so
// they can be shipped next to scenario files and loaded with the -chaos
// flag of the cmd tools:
//
//	{"events": [
//	  {"kind": "ge-loss", "at": 0, "p_good_bad": 0.02, "p_bad_good": 0.3, "loss_bad": 0.08},
//	  {"kind": "link-flap", "at": 1200, "duration": 60},
//	  {"kind": "capacity-scale", "at": 2000, "duration": 800, "scale": 0.5},
//	  {"kind": "flow-depart", "at": 3000, "flow": 1}
//	]}
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Kind names one perturbation event type.
type Kind string

// The event kinds. Durations are open-ended (rest of run) when omitted
// or non-positive, except where noted.
const (
	// KindCapacityScale multiplies the link bandwidth by Scale during
	// [At, At+Duration). Overlapping capacity events compose by
	// multiplication.
	KindCapacityScale Kind = "capacity-scale"
	// KindCapacityRamp moves the bandwidth multiplier linearly from 1 at
	// At to Scale at At+Duration and holds Scale afterwards — a gradual
	// shift to a new capacity regime (Duration must be positive).
	KindCapacityRamp Kind = "capacity-ramp"
	// KindLinkFlap takes the link down (bandwidth multiplier FlapScale)
	// during [At, At+Duration) — an outage/handover.
	KindLinkFlap Kind = "link-flap"
	// KindGELoss runs a Gilbert–Elliott two-state loss chain during
	// [At, At+Duration): each step the chain moves good→bad with
	// probability PGoodBad and bad→good with probability PBadGood, and
	// every flow experiences non-congestion loss LossGood or LossBad
	// according to the current state. The chain starts in the good state
	// at At. Overlapping loss events compose as independent drops.
	KindGELoss Kind = "ge-loss"
	// KindRTTJitter adds a uniform ±Amplitude-second perturbation to the
	// RTT during [At, At+Duration); one draw per step, shared by all
	// links so composed path RTTs stay consistent.
	KindRTTJitter Kind = "rtt-jitter"
	// KindBaseRTTStep permanently adds Delta seconds to the RTT from At
	// on — a route change. Negative deltas are allowed; substrates floor
	// the resulting RTT at a small positive value.
	KindBaseRTTStep Kind = "base-rtt-step"
	// KindFlowArrive activates flow Flow at At. A flow whose first churn
	// event is an arrival starts the run inactive (it "arrives" mid-run).
	KindFlowArrive Kind = "flow-arrive"
	// KindFlowDepart deactivates flow Flow at At. Re-arrival after a
	// departure restarts the flow from its initial window.
	KindFlowDepart Kind = "flow-depart"
)

// FlapScale is the bandwidth multiplier of a flapped link: not exactly
// zero (the fluid model divides by bandwidth) but small enough that the
// link is effectively dead — loss saturates and the RTT hits the
// timeout cap.
const FlapScale = 1e-9

// maxScale bounds capacity multipliers so schedules cannot smuggle
// effectively-infinite capacity into a run.
const maxScale = 1e6

// maxRTTPerturb bounds each RTT perturbation magnitude (seconds) so that
// sums over many events stay finite: ~11.5 days dwarfs any simulated RTT.
const maxRTTPerturb = 1e6

// Event is one timed perturbation. Only the fields of its Kind are
// meaningful; Normalize rejects events whose used fields are missing,
// non-finite, or out of range. At and Duration are in substrate steps.
type Event struct {
	Kind     Kind `json:"kind"`
	At       int  `json:"at"`
	Duration int  `json:"duration,omitempty"`

	// Scale is the bandwidth multiplier of capacity-scale / capacity-ramp.
	Scale float64 `json:"scale,omitempty"`

	// Gilbert–Elliott parameters (ge-loss).
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`

	// Amplitude is rtt-jitter's half-range in seconds.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Delta is base-rtt-step's permanent RTT shift in seconds.
	Delta float64 `json:"delta,omitempty"`

	// Link targets capacity and RTT events: a link index, or -1 for
	// every link. Single-link substrates only have link 0.
	Link int `json:"link,omitempty"`
	// Flow targets churn and loss events: a flow index, or -1 for every
	// flow (churn events must name one flow).
	Flow int `json:"flow,omitempty"`
}

// end returns the first step after the event's active window.
// Open-ended events (Duration <= 0) never end.
func (e Event) end() int {
	if e.Duration <= 0 {
		return math.MaxInt
	}
	// At + Duration can overflow for adversarial inputs; saturate.
	if e.At > math.MaxInt-e.Duration {
		return math.MaxInt
	}
	return e.At + e.Duration
}

// activeAt reports whether the event perturbs the given step.
func (e Event) activeAt(step int) bool { return step >= e.At && step < e.end() }

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func inUnit(vs ...float64) bool {
	for _, v := range vs {
		if !(v >= 0 && v <= 1) { // NaN fails too
			return false
		}
	}
	return true
}

// validate checks the fields Kind uses. It never panics: every reachable
// input maps to nil or an error.
func (e Event) validate(i int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("chaos: event %d (%s): %s", i, e.Kind, fmt.Sprintf(format, args...))
	}
	if e.At < 0 {
		return fail("at must be non-negative, got %d", e.At)
	}
	if e.Link < -1 {
		return fail("link must be an index or -1 for all, got %d", e.Link)
	}
	if e.Flow < -1 {
		return fail("flow must be an index or -1 for all, got %d", e.Flow)
	}
	switch e.Kind {
	case KindCapacityScale:
		if !finite(e.Scale) || e.Scale <= 0 || e.Scale > maxScale {
			return fail("scale must be in (0, %g], got %v", float64(maxScale), e.Scale)
		}
	case KindCapacityRamp:
		if !finite(e.Scale) || e.Scale <= 0 || e.Scale > maxScale {
			return fail("scale must be in (0, %g], got %v", float64(maxScale), e.Scale)
		}
		if e.Duration <= 0 {
			return fail("ramp needs a positive duration, got %d", e.Duration)
		}
	case KindLinkFlap:
		// No parameters beyond the window.
	case KindGELoss:
		if !inUnit(e.PGoodBad, e.PBadGood) {
			return fail("transition probabilities must be in [0,1], got p_good_bad=%v p_bad_good=%v", e.PGoodBad, e.PBadGood)
		}
		if !inUnit(e.LossGood, e.LossBad) || e.LossGood >= 1 || e.LossBad >= 1 {
			return fail("loss rates must be in [0,1), got loss_good=%v loss_bad=%v", e.LossGood, e.LossBad)
		}
	case KindRTTJitter:
		if !finite(e.Amplitude) || e.Amplitude < 0 || e.Amplitude > maxRTTPerturb {
			return fail("amplitude must be in [0, %g] seconds, got %v", float64(maxRTTPerturb), e.Amplitude)
		}
	case KindBaseRTTStep:
		if !finite(e.Delta) || math.Abs(e.Delta) > maxRTTPerturb {
			return fail("delta must be in [-%g, %g] seconds, got %v", float64(maxRTTPerturb), float64(maxRTTPerturb), e.Delta)
		}
	case KindFlowArrive, KindFlowDepart:
		if e.Flow < 0 {
			return fail("churn events must name one flow, got %d", e.Flow)
		}
	default:
		return fail("unknown kind")
	}
	return nil
}

// Schedule is an ordered set of perturbation events. Build one directly
// or parse it from JSON; call Normalize (or let Compile do it) before
// use.
type Schedule struct {
	Events []Event `json:"events"`
}

// maxEvents bounds schedule size so adversarial inputs cannot make
// Compile allocate per-event state without limit.
const maxEvents = 1 << 16

// Normalize validates every event and sorts them by activation step
// (stable, so same-step events keep their authored order). Events given
// in arbitrary order, overlapping freely, normalize to a valid schedule;
// anything invalid returns an error. It never panics.
func (s *Schedule) Normalize() error {
	if s == nil {
		return fmt.Errorf("chaos: nil schedule")
	}
	if len(s.Events) > maxEvents {
		return fmt.Errorf("chaos: %d events exceed the %d-event limit", len(s.Events), maxEvents)
	}
	for i, e := range s.Events {
		if err := e.validate(i); err != nil {
			return err
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return nil
}

// Parse decodes and normalizes a JSON schedule. Unknown fields are
// rejected so typos in hand-written schedules fail loudly.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a JSON schedule.
func Load(r io.Reader) (*Schedule, error) {
	data, err := io.ReadAll(io.LimitReader(r, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return Parse(data)
}

// LoadFile reads and parses the JSON schedule at path.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// BurstyLoss returns the canonical bursty-correlated-loss schedule: one
// open-ended Gilbert–Elliott chain over every flow with the given
// transition probabilities, lossless good state and loss rate lossBad in
// the bad state. The long-run mean loss rate is
// lossBad · pGoodBad/(pGoodBad+pBadGood).
func BurstyLoss(pGoodBad, pBadGood, lossBad float64) *Schedule {
	return &Schedule{Events: []Event{{
		Kind:     KindGELoss,
		Flow:     -1,
		Link:     -1,
		PGoodBad: pGoodBad,
		PBadGood: pBadGood,
		LossBad:  lossBad,
	}}}
}

// FlappyLink returns the canonical flappy-link schedule: starting at
// step start, the link goes down for down steps at the beginning of
// every period-step cycle, across all links.
func FlappyLink(horizon, start, period, down int) *Schedule {
	s := &Schedule{}
	for at := start; at < horizon; at += period {
		s.Events = append(s.Events, Event{Kind: KindLinkFlap, At: at, Duration: down, Link: -1})
	}
	return s
}
