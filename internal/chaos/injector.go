package chaos

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rand64"
)

// eventsApplied counts event activations across all injectors; recorded
// only while obs is enabled. The pointer is cached once — the registry
// preserves metric identity across Reset.
var eventsApplied = obs.GetCounter("chaos.events.applied")

// Injector is a compiled Schedule: the deterministic per-step oracle a
// substrate consults while it runs. Each substrate defines a small
// structurally-matching Perturber interface (fluid.Perturber,
// packetsim.Perturber, multilink.Perturber) that Injector satisfies, so
// the simulators stay free of chaos imports.
//
// An Injector is single-use and single-goroutine, like the substrate
// run that owns it. Queries must be monotone in step (each simulator's
// clock only moves forward); a query for an earlier step answers with
// the current state.
type Injector struct {
	events       []Event
	flows, links int

	step   int // last advanced step; -1 before the first query
	nextAt int // index of the first event not yet activated

	ge        []geChain // one chain per ge-loss event, in event order
	jitterRng *rand64.Source
	hasJitter bool
	curJitter float64 // this step's shared jitter draw in [-1, 1]

	active []bool // per-flow churn state

	// Per-step memo: every query in one simulator step hits the same
	// answers, so they are computed once per (step, index).
	memoStep  int
	scaleMemo []float64 // per link; NaN = not yet computed this step
	lossMemo  []float64 // per flow
	rttMemo   []float64 // per link
}

// geChain is the state of one Gilbert–Elliott event: bad/good plus a
// dedicated RNG so its transition stream is independent of every other
// randomized component.
type geChain struct {
	bad bool
	rng *rand64.Source
}

// mix is the SplitMix64 finalizer over seed + φ·(i+1), the same
// derivation engine.CellSeed uses: bijective, avalanching, so per-event
// RNG streams are independent even for small seeds.
func mix(seed, i uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Compile validates the schedule against a substrate shape (flows
// senders, links links) and returns the deterministic Injector for it.
// The schedule itself is not mutated, so one Schedule value can be
// compiled concurrently by every cell of a sweep.
func (s *Schedule) Compile(seed uint64, flows, links int) (*Injector, error) {
	if s == nil {
		return nil, fmt.Errorf("chaos: nil schedule")
	}
	if flows < 1 || links < 1 {
		return nil, fmt.Errorf("chaos: compile needs at least one flow and one link, got %d/%d", flows, links)
	}
	norm := &Schedule{Events: append([]Event(nil), s.Events...)}
	if err := norm.Normalize(); err != nil {
		return nil, err
	}
	in := &Injector{
		events:    norm.Events,
		flows:     flows,
		links:     links,
		step:      -1,
		memoStep:  -1,
		active:    make([]bool, flows),
		scaleMemo: make([]float64, links),
		lossMemo:  make([]float64, flows),
		rttMemo:   make([]float64, links),
	}
	firstChurn := make([]Kind, flows)
	for i, e := range in.events {
		switch e.Kind {
		case KindFlowArrive, KindFlowDepart:
			if e.Flow >= flows {
				return nil, fmt.Errorf("chaos: event %d (%s) targets flow %d of %d", i, e.Kind, e.Flow, flows)
			}
			if firstChurn[e.Flow] == "" {
				firstChurn[e.Flow] = e.Kind
			}
		case KindGELoss:
			if e.Flow >= flows {
				return nil, fmt.Errorf("chaos: event %d (%s) targets flow %d of %d", i, e.Kind, e.Flow, flows)
			}
			in.ge = append(in.ge, geChain{rng: rand64.New(mix(seed, uint64(i)))})
		case KindRTTJitter:
			in.hasJitter = true
		}
		if e.Link >= links {
			return nil, fmt.Errorf("chaos: event %d (%s) targets link %d of %d", i, e.Kind, e.Link, links)
		}
	}
	// A flow whose first churn event is an arrival starts the run
	// inactive — it arrives mid-run. Everyone else is on from step 0.
	for f := range in.active {
		in.active[f] = firstChurn[f] != KindFlowArrive
	}
	if in.hasJitter {
		in.jitterRng = rand64.New(mix(seed, uint64(len(in.events))+1))
	}
	return in, nil
}

// advance moves the injector's clock forward to step, processing every
// intermediate step exactly once: event activations (counted in the
// chaos.events.applied metric), churn toggles, one transition per active
// Gilbert–Elliott chain, and one shared jitter draw when any jitter
// event is live. Random draw counts depend only on the schedule, never
// on which queries were issued, so all query orders see one stream.
func (in *Injector) advance(step int) {
	for s := in.step + 1; s <= step; s++ {
		count := uint64(0)
		for in.nextAt < len(in.events) && in.events[in.nextAt].At <= s {
			e := in.events[in.nextAt]
			switch e.Kind {
			case KindFlowArrive:
				in.active[e.Flow] = true
			case KindFlowDepart:
				in.active[e.Flow] = false
			}
			count++
			in.nextAt++
		}
		if count > 0 && obs.Enabled() {
			eventsApplied.Add(count)
		}
		gi := 0
		for _, e := range in.events {
			if e.Kind != KindGELoss {
				continue
			}
			c := &in.ge[gi]
			if e.activeAt(s) && s > e.At {
				u := c.rng.Float64()
				if c.bad {
					c.bad = u >= e.PBadGood
				} else {
					c.bad = u < e.PGoodBad
				}
			}
			gi++
		}
		if in.hasJitter {
			live := false
			for _, e := range in.events {
				if e.Kind == KindRTTJitter && e.activeAt(s) {
					live = true
					break
				}
			}
			if live {
				in.curJitter = 2*in.jitterRng.Float64() - 1
			} else {
				in.curJitter = 0
			}
		}
	}
	if step > in.step {
		in.step = step
	}
	if in.memoStep != in.step {
		in.memoStep = in.step
		for i := range in.scaleMemo {
			in.scaleMemo[i] = math.NaN()
		}
		for i := range in.lossMemo {
			in.lossMemo[i] = math.NaN()
		}
		for i := range in.rttMemo {
			in.rttMemo[i] = math.NaN()
		}
	}
}

// targets reports whether an event aimed at link index t applies to
// link l (t == -1 means every link).
func targets(t, l int) bool { return t == -1 || t == l }

// CapacityScale returns the bandwidth multiplier for link at step: the
// product of every live capacity shock, ramp, and flap, clamped to
// [FlapScale, maxScale].
func (in *Injector) CapacityScale(step, link int) float64 {
	in.advance(step)
	step = in.step
	if !math.IsNaN(in.scaleMemo[link]) {
		return in.scaleMemo[link]
	}
	scale := 1.0
	for _, e := range in.events {
		if !targets(e.Link, link) || step < e.At {
			continue
		}
		switch e.Kind {
		case KindCapacityScale:
			if e.activeAt(step) {
				scale *= e.Scale
			}
		case KindCapacityRamp:
			// Linear approach to Scale across the window, holding the
			// target afterwards — a permanent regime change.
			frac := float64(step-e.At) / float64(e.Duration)
			if frac > 1 {
				frac = 1
			}
			scale *= 1 + (e.Scale-1)*frac
		case KindLinkFlap:
			if e.activeAt(step) {
				scale *= FlapScale
			}
		}
	}
	if scale < FlapScale {
		scale = FlapScale
	}
	if scale > maxScale {
		scale = maxScale
	}
	in.scaleMemo[link] = scale
	return scale
}

// ExtraLoss returns the composed non-congestion loss rate flow sees at
// step from every live Gilbert–Elliott chain (independent drops), in
// [0, 1).
func (in *Injector) ExtraLoss(step, flow int) float64 {
	in.advance(step)
	step = in.step
	if !math.IsNaN(in.lossMemo[flow]) {
		return in.lossMemo[flow]
	}
	survive := 1.0
	gi := 0
	for _, e := range in.events {
		if e.Kind != KindGELoss {
			continue
		}
		if e.activeAt(step) && targets(e.Flow, flow) {
			rate := e.LossGood
			if in.ge[gi].bad {
				rate = e.LossBad
			}
			survive *= 1 - rate
		}
		gi++
	}
	loss := 1 - survive
	// Many stacked near-certain events can underflow survival to zero;
	// keep the composed rate strictly below 1 (a total blackout is the
	// link-flap kind's job, not the loss process's).
	if loss > maxCompositeLoss {
		loss = maxCompositeLoss
	}
	in.lossMemo[flow] = loss
	return loss
}

// maxCompositeLoss caps the composed extra-loss rate strictly below 1.
const maxCompositeLoss = 1 - 0x1p-20

// RTTOffset returns the additive RTT perturbation in seconds for link
// at step: the shared jitter draw scaled by every live jitter
// amplitude, plus all base-RTT steps taken so far. The result may be
// negative; substrates floor the final RTT at a small positive value.
func (in *Injector) RTTOffset(step, link int) float64 {
	in.advance(step)
	step = in.step
	if !math.IsNaN(in.rttMemo[link]) {
		return in.rttMemo[link]
	}
	off := 0.0
	for _, e := range in.events {
		if !targets(e.Link, link) || step < e.At {
			continue
		}
		switch e.Kind {
		case KindRTTJitter:
			if e.activeAt(step) {
				off += in.curJitter * e.Amplitude
			}
		case KindBaseRTTStep:
			off += e.Delta
		}
	}
	in.rttMemo[link] = off
	return off
}

// FlowActive reports whether flow is live at step per the schedule's
// churn events.
func (in *Injector) FlowActive(step, flow int) bool {
	in.advance(step)
	return in.active[flow]
}
