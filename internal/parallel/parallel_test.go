package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSerialFallback(t *testing.T) {
	out, err := Map(5, 1, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != "3" {
		t.Fatalf("out = %v", out)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapNegative(t *testing.T) {
	if _, err := Map(-1, 4, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestMapErrorFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(1000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Fail-fast: nowhere near all 1000 items should have run.
	if calls.Load() > 900 {
		t.Fatalf("%d calls despite early error", calls.Load())
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	out, err := Map(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// Property: Map(n, w, identity) is the identity for any worker count.
func TestQuickMapIdentity(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw % 9)
		out, err := Map(n, w, func(i int) (int, error) { return i, nil })
		if err != nil || len(out) != n {
			return false
		}
		for i, v := range out {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapCtxCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := MapCtx(ctx, 1000, 4, func(ctx context.Context, i int) (int, error) {
		if calls.Add(1) == 5 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 900 {
		t.Fatalf("%d calls despite cancellation", calls.Load())
	}
}

func TestMapCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	_, err := MapCtx(ctx, 100, 1, func(ctx context.Context, i int) (int, error) {
		calls++
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 4 {
		t.Fatalf("%d calls after serial cancel, want 4", calls)
	}
}

func TestMapCtxErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), 50, 4, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestMapCtxCompletesWithoutCancel(t *testing.T) {
	out, err := MapCtx(context.Background(), 20, 3, func(ctx context.Context, i int) (int, error) {
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
