package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSerialFallback(t *testing.T) {
	out, err := Map(5, 1, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != "3" {
		t.Fatalf("out = %v", out)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapNegative(t *testing.T) {
	if _, err := Map(-1, 4, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestMapErrorFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(1000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Fail-fast: nowhere near all 1000 items should have run.
	if calls.Load() > 900 {
		t.Fatalf("%d calls despite early error", calls.Load())
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	out, err := Map(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// Property: Map(n, w, identity) is the identity for any worker count.
func TestQuickMapIdentity(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw % 9)
		out, err := Map(n, w, func(i int) (int, error) { return i, nil })
		if err != nil || len(out) != n {
			return false
		}
		for i, v := range out {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
