// Package parallel provides the small worker-pool helper the experiment
// sweeps use to exploit multiple cores. Every simulation in this
// repository is deterministic and cell-independent, so grid sweeps
// parallelize without affecting results; Map preserves input order and
// fails fast on the first error.
//
// With observability enabled (internal/obs), each pool reports item
// success/failure counts, a queue-wait histogram (time a worker spends
// between finishing one item and starting the next, i.e. claim
// contention plus drain), and a worker-utilization gauge
// (Σ busy time / (workers × wall time)). Disabled, the instrumentation
// costs one atomic load per MapCtx call and nothing per item.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// PanicError is a worker panic converted into a per-item error: the item
// index, the recovered value, and the goroutine stack at the panic site.
// A panicking cell no longer kills the whole process — it fails like any
// other erroring item. Test with errors.As.
type PanicError struct {
	Item  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v\n%s", e.Item, e.Value, e.Stack)
}

// call invokes f with panic recovery.
func call[T any](ctx context.Context, i int, f func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Item: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return f(ctx, i)
}

// pool telemetry; pointers cached once, values recorded only while
// obs is enabled.
var (
	poolItemsOK     = obs.GetCounter("parallel.items.ok")
	poolItemsFailed = obs.GetCounter("parallel.items.failed")
	poolQueueWait   = obs.GetHistogram("parallel.queue.wait")
	poolUtilization = obs.GetGauge("parallel.worker.utilization")
	poolRuns        = obs.GetCounter("parallel.pools")
)

// Map applies f to every item index in [0, n), using up to workers
// goroutines (0 = GOMAXPROCS), and collects the results in input order.
// The first error cancels the remaining work (in-flight calls finish) and
// is returned.
func Map[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return f(i)
	})
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop claiming new items (in-flight calls finish) and the context error
// is returned unless an item error occurred first. The per-item function
// receives ctx so long-running cells can also abort mid-call.
func MapCtx[T any](ctx context.Context, n, workers int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative item count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	instrumented := obs.Enabled()
	var (
		poolStart time.Time
		busyNs    atomic.Int64
	)
	if instrumented {
		poolRuns.Inc()
		poolStart = time.Now()
	}
	finishPool := func() {
		if !instrumented {
			return
		}
		wall := time.Since(poolStart)
		if wall > 0 {
			poolUtilization.Set(float64(busyNs.Load()) / (float64(workers) * float64(wall.Nanoseconds())))
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				finishPool()
				return nil, err
			}
			var itemStart time.Time
			if instrumented {
				itemStart = time.Now()
			}
			v, err := call(ctx, i, f)
			if instrumented {
				busyNs.Add(int64(time.Since(itemStart)))
				if err != nil {
					poolItemsFailed.Inc()
				} else {
					poolItemsOK.Inc()
				}
			}
			if err != nil {
				finishPool()
				return nil, err
			}
			out[i] = v
		}
		finishPool()
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n || ctx.Err() != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idleSince := poolStart
			for {
				i := claim()
				if i < 0 {
					return
				}
				var itemStart time.Time
				if instrumented {
					itemStart = time.Now()
					poolQueueWait.Observe(itemStart.Sub(idleSince))
				}
				v, err := call(ctx, i, f)
				if instrumented {
					idleSince = time.Now()
					busyNs.Add(int64(idleSince.Sub(itemStart)))
					if err != nil {
						poolItemsFailed.Inc()
					} else {
						poolItemsOK.Inc()
					}
				}
				if err != nil {
					fail(fmt.Errorf("parallel: item %d: %w", i, err))
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	finishPool()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MapSettled is MapCtx without fail-fast: every item runs to completion
// (panics included, recovered into PanicError) and failures are reported
// per item instead of aborting the pool. It returns the results, a
// parallel slice of per-item errors (nil for successes), and ctx.Err()
// if cancellation stopped items from being claimed — those items carry
// the context error in their errs slot.
func MapSettled[T any](ctx context.Context, n, workers int, f func(ctx context.Context, i int) (T, error)) ([]T, []error, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("parallel: negative item count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs, nil
	}
	instrumented := obs.Enabled()
	var (
		poolStart time.Time
		busyNs    atomic.Int64
	)
	if instrumented {
		poolRuns.Inc()
		poolStart = time.Now()
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	worker := func() {
		defer wg.Done()
		idleSince := poolStart
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			var itemStart time.Time
			if instrumented {
				itemStart = time.Now()
				poolQueueWait.Observe(itemStart.Sub(idleSince))
			}
			v, err := call(ctx, i, f)
			if instrumented {
				idleSince = time.Now()
				busyNs.Add(int64(idleSince.Sub(itemStart)))
				if err != nil {
					poolItemsFailed.Inc()
				} else {
					poolItemsOK.Inc()
				}
			}
			out[i], errs[i] = v, err
		}
	}
	if workers <= 1 {
		wg.Add(1)
		worker()
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go worker()
		}
		wg.Wait()
	}
	if instrumented {
		wall := time.Since(poolStart)
		if wall > 0 {
			poolUtilization.Set(float64(busyNs.Load()) / (float64(workers) * float64(wall.Nanoseconds())))
		}
	}
	if err := ctx.Err(); err != nil {
		// Workers check ctx before claiming, so exactly the indexes below
		// next were handed out and ran; everything from next on never
		// started and carries the context error instead of a zero result.
		for i := int(next.Load()); i < n; i++ {
			if i >= 0 && errs[i] == nil {
				errs[i] = err
			}
		}
		return out, errs, err
	}
	return out, errs, nil
}
