package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// A worker panic becomes a per-item PanicError instead of crashing the
// process, and the other items' results are unaffected.
func TestMapCtxPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(context.Background(), 8, workers, func(_ context.Context, i int) (int, error) {
			if i == 2 {
				panic("item 2 exploded")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want a *PanicError", workers, err)
		}
		if pe.Item != 2 {
			t.Fatalf("workers=%d: panicked item = %d, want 2", workers, pe.Item)
		}
		if !strings.Contains(pe.Error(), "item 2 exploded") || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error lacks value or stack: %v", workers, pe)
		}
	}
}

// MapSettled reports failures per item; healthy items keep their
// results.
func TestMapSettledPerItemErrors(t *testing.T) {
	boom := errors.New("boom")
	out, errs, err := MapSettled(context.Background(), 10, 3, func(_ context.Context, i int) (int, error) {
		switch i {
		case 1:
			panic("item 1 exploded")
		case 5:
			return 0, boom
		}
		return i * 2, nil
	})
	if err != nil {
		t.Fatalf("pool error = %v, want nil", err)
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("errs[1] = %v, want a *PanicError", errs[1])
	}
	if !errors.Is(errs[5], boom) {
		t.Fatalf("errs[5] = %v, want %v", errs[5], boom)
	}
	for i := 0; i < 10; i++ {
		if i == 1 || i == 5 {
			continue
		}
		if errs[i] != nil || out[i] != i*2 {
			t.Fatalf("item %d: out=%d errs=%v, want %d/nil", i, out[i], errs[i], i*2)
		}
	}
}

// Cancellation stops claiming; never-started items carry the context
// error and MapSettled reports ctx.Err() as its third value.
func TestMapSettledCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, errs, err := MapSettled(ctx, 1000, 2, func(_ context.Context, i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := ran.Load(); total >= 1000 {
		t.Fatalf("all %d items ran despite cancellation", total)
	}
	var canceled int
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no item carries the context error")
	}
}

func TestMapSettledSerialAndEmpty(t *testing.T) {
	out, errs, err := MapSettled(context.Background(), 4, 1, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != i+1 || errs[i] != nil {
			t.Fatalf("item %d: %d/%v", i, out[i], errs[i])
		}
	}
	out, errs, err = MapSettled(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 0 || len(errs) != 0 {
		t.Fatalf("empty settled map: %v %v %v", out, errs, err)
	}
}
