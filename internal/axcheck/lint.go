package axcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// LintResult is one linted artifact.
type LintResult struct {
	Path string
	Kind string // "scenario" | "chaos"
	Err  error
}

// LintJSON classifies a JSON artifact by its top-level key and validates
// it: scenario specs (a "model" key) load through scenario.Load, which
// also dry-builds nettopo topologies, and additionally have every
// protocol spec parsed; chaos schedules (an "events" key) parse through
// chaos.Parse. Anything else is an error — a malformed artifact must not
// pass because it fits neither schema.
func LintJSON(data []byte) (string, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("not a JSON object: %w", err)
	}
	_, isScenario := probe["model"]
	_, isChaos := probe["events"]
	switch {
	case isScenario && isChaos:
		return "", fmt.Errorf("has both \"model\" and \"events\": scenario or chaos schedule, not both")
	case isScenario:
		spec, err := scenario.Load(bytes.NewReader(data))
		if err != nil {
			return "scenario", err
		}
		// Validate defers protocol parsing to run time; a lint pass must
		// catch spec typos without simulating.
		for i, f := range spec.Flows {
			if _, err := protocol.Parse(f.Protocol); err != nil {
				return "scenario", fmt.Errorf("flow %d: %w", i, err)
			}
		}
		return "scenario", nil
	case isChaos:
		_, err := chaos.Parse(data)
		return "chaos", err
	default:
		return "", fmt.Errorf("neither a scenario (\"model\") nor a chaos schedule (\"events\")")
	}
}

// LintPath lints one JSON file.
func LintPath(path string) LintResult {
	data, err := os.ReadFile(path)
	if err != nil {
		return LintResult{Path: path, Err: err}
	}
	kind, err := LintJSON(data)
	return LintResult{Path: path, Kind: kind, Err: err}
}

// LintPaths expands the given files and directories (walked recursively
// for *.json) and lints each artifact, returning results in path order.
func LintPaths(paths []string) ([]LintResult, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	out := make([]LintResult, len(files))
	for i, f := range files {
		out[i] = LintPath(f)
	}
	return out, nil
}
