package axcheck

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLintJSON(t *testing.T) {
	cases := []struct {
		name string
		data string
		kind string
		ok   bool
	}{
		{"valid fluid scenario",
			`{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":20},"flows":[{"protocol":"reno"}]}`,
			"scenario", true},
		{"valid chaos schedule",
			`{"events":[{"kind":"link-flap","at":5,"duration":2}]}`,
			"chaos", true},
		{"valid nettopo scenario",
			`{"name":"t","model":"nettopo","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":20,"src":"a","dst":"b"}],"flows":[{"protocol":"reno","path":[0]}]}`,
			"scenario", true},
		{"not json", `{`, "", false},
		{"neither schema", `{"foo": 1}`, "", false},
		{"both schemas", `{"model":"fluid","events":[]}`, "", false},
		{"unknown scenario field",
			`{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":20},"flows":[{"protocol":"reno"}],"bogus":1}`,
			"scenario", false},
		{"bad protocol spec",
			`{"name":"x","model":"fluid","link":{"mbps":20,"rtt_ms":42,"buffer_mss":20},"flows":[{"protocol":"renno"}]}`,
			"scenario", false},
		{"cyclic nettopo",
			`{"name":"t","model":"nettopo","links":[{"mbps":20,"rtt_ms":42,"buffer_mss":20,"src":"a","dst":"b"},{"mbps":20,"rtt_ms":42,"buffer_mss":20,"src":"b","dst":"a"}],"flows":[{"protocol":"reno","path":[0]}]}`,
			"scenario", false},
		{"bad chaos event kind",
			`{"events":[{"kind":"nonsense","at":0}]}`,
			"chaos", false},
	}
	for _, c := range cases {
		kind, err := LintJSON([]byte(c.data))
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.kind != "" && kind != c.kind {
			t.Errorf("%s: kind = %q, want %q", c.name, kind, c.kind)
		}
	}
}

// TestLintShippedScenarios keeps every artifact the repository ships
// loadable — the in-process version of CI's axcheck -lint gate.
func TestLintShippedScenarios(t *testing.T) {
	results, err := LintPaths([]string{"../../scenarios"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("only %d artifacts under scenarios/ — walk broken?", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Path, r.Err)
		}
	}
}

func TestLintPathsWalksAndFails(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "sub", "bad.json")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, []byte(`{"events":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"nope":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := LintPaths([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Path != good || results[0].Err != nil {
		t.Errorf("good file: %+v", results[0])
	}
	if results[1].Path != bad || results[1].Err == nil {
		t.Errorf("bad file not flagged: %+v", results[1])
	}
	if _, err := LintPaths([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing path accepted")
	}
}
