package axcheck

import (
	"fmt"
	"math"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

// LinkResult is the outcome of a worst-case search over link parameters:
// Table 1's angle-bracket bounds hold "across all choices of network
// parameters", so falsifying one requires searching (C, τ, n) as well as
// initial configurations.
type LinkResult struct {
	// Violated reports whether some link+init combination broke the claim.
	Violated bool
	// Witness is valid when Violated is true.
	Witness LinkCounterexample
	// Worst is the most adversarial measurement across all links.
	Worst float64
	// WorstLink achieved it.
	WorstLink LinkPoint
	// Trials counts link configurations × init configurations evaluated.
	Trials int
}

// LinkPoint identifies one link configuration of the search grid.
type LinkPoint struct {
	C   float64 // capacity in MSS
	Tau float64 // buffer in MSS
	N   int     // senders
}

// LinkCounterexample is a falsifying witness including the link.
type LinkCounterexample struct {
	Counterexample
	Link LinkPoint
}

// String renders the witness.
func (c LinkCounterexample) String() string {
	return fmt.Sprintf("%s on link C=%g τ=%g n=%d", c.Counterexample, c.Link.C, c.Link.Tau, c.Link.N)
}

// DefaultLinkGrid returns the structured link corners the worst-case
// search visits: shallow and deep buffers at small and large capacities,
// and one- to four-sender populations. Fairness-style claims skip n = 1.
func DefaultLinkGrid() []LinkPoint {
	var out []LinkPoint
	for _, c := range []float64{30, 100, 500} {
		for _, tauFrac := range []float64{0.02, 0.2, 1.0} {
			for _, n := range []int{1, 2, 4} {
				out = append(out, LinkPoint{C: c, Tau: math.Max(1, c*tauFrac), N: n})
			}
		}
	}
	return out
}

// CheckWorstCase searches links × initial configurations for a violation
// of the worst-case claim "p is α-<claim> across all network parameters".
// Links with fewer than 2 senders are skipped for Fair claims.
func CheckWorstCase(p protocol.Protocol, claim Claim, alpha float64, grid []LinkPoint, opt Options) (LinkResult, error) {
	if len(grid) == 0 {
		grid = DefaultLinkGrid()
	}
	res := LinkResult{Worst: math.Inf(1)}
	if claim == LossAvoiding {
		res.Worst = math.Inf(-1)
	}
	for _, lp := range grid {
		if claim == Fair && lp.N < 2 {
			continue
		}
		theta := 0.021
		cfg := fluid.Config{
			Bandwidth: lp.C / (2 * theta),
			PropDelay: theta,
			Buffer:    lp.Tau,
		}
		r, err := Check(cfg, p, claim, alpha, lp.N, opt)
		if err != nil {
			return LinkResult{}, err
		}
		res.Trials += r.Trials
		adversarial := r.Worst < res.Worst
		if claim == LossAvoiding {
			adversarial = r.Worst > res.Worst
		}
		if adversarial {
			res.Worst = r.Worst
			res.WorstLink = lp
		}
		if r.Violated && !res.Violated {
			res.Violated = true
			res.Witness = LinkCounterexample{Counterexample: r.Witness, Link: lp}
		}
	}
	return res, nil
}
