package axcheck

import (
	"strings"
	"testing"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

func cap100() fluid.Config {
	theta := 0.021
	return fluid.Config{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
}

var opt = Options{Steps: 1500, RandomTrials: 8, Seed: 1}

func TestTrueClaimSurvives(t *testing.T) {
	// Reno is ≈0.6-efficient on this link (b(1+τ/C) = 0.6); claiming 0.5
	// must survive the search.
	res, err := Check(cap100(), protocol.Reno(), Efficient, 0.5, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("true claim falsified: %v", res.Witness)
	}
	if res.Trials < 10 {
		t.Fatalf("only %d trials", res.Trials)
	}
	if res.Worst < 0.5 {
		t.Fatalf("worst efficiency %v below the claim yet not flagged", res.Worst)
	}
}

func TestFalseEfficiencyClaimKilled(t *testing.T) {
	// Claiming Reno is 0.9-efficient is false (sawtooth bottoms at 0.6).
	res, err := Check(cap100(), protocol.Reno(), Efficient, 0.9, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("false claim survived; worst = %v", res.Worst)
	}
	w := res.Witness
	if w.Measured >= 0.9 {
		t.Fatalf("witness does not violate: %v", w)
	}
	if len(w.Init) != 1 {
		t.Fatalf("witness init = %v", w.Init)
	}
	if !strings.Contains(w.String(), "efficient") {
		t.Fatalf("witness string = %q", w.String())
	}
}

func TestMIMDFairnessClaimKilled(t *testing.T) {
	// MIMD is 0-fair: any positive fairness claim dies, and the witness
	// should be a skewed start (the hog corners).
	res, err := Check(cap100(), protocol.Scalable(), Fair, 0.5, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("MIMD 0.5-fairness survived; worst = %v", res.Worst)
	}
	if res.Witness.Measured > 0.5 {
		t.Fatalf("bad witness: %v", res.Witness)
	}
}

func TestAIMDFairnessClaimSurvives(t *testing.T) {
	res, err := Check(cap100(), protocol.Reno(), Fair, 0.8, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("AIMD 0.8-fairness falsified: %v", res.Witness)
	}
}

func TestLossAvoidingInvertedComparison(t *testing.T) {
	// Reno with n=2 on this link keeps tail loss under ~4%; claiming
	// loss ≤ 0.1 survives, claiming loss ≤ 0.0001 dies.
	res, err := Check(cap100(), protocol.Reno(), LossAvoiding, 0.1, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("loose loss claim falsified: %v", res.Witness)
	}
	// Tight claim: with a slack smaller than the claim's scale.
	tight := opt
	tight.Slack = 0.001
	res, err = Check(cap100(), protocol.Reno(), LossAvoiding, 0.0001, 2, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("tight loss claim survived; worst = %v", res.Worst)
	}
	if res.Witness.Measured <= 0.0001 {
		t.Fatalf("bad witness: %v", res.Witness)
	}
}

func TestConvergenceClaim(t *testing.T) {
	// Reno's convergence is 2b/(1+b) = 2/3; claiming 0.9 dies.
	res, err := Check(cap100(), protocol.Reno(), Convergent, 0.9, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("0.9-convergence survived; worst = %v", res.Worst)
	}
	// Claiming 0.55 survives.
	res, err = Check(cap100(), protocol.Reno(), Convergent, 0.55, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("0.55-convergence falsified: %v", res.Witness)
	}
}

func TestFriendlinessClaim(t *testing.T) {
	// Scalable starves Reno: claiming 0.5-TCP-friendliness dies.
	res, err := Check(cap100(), protocol.Scalable(), FriendlyToReno, 0.5, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("Scalable 0.5-friendliness survived; worst = %v", res.Worst)
	}
	// Reno is ≈1-friendly to itself: claiming 0.8 survives.
	res, err = Check(cap100(), protocol.Reno(), FriendlyToReno, 0.8, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("Reno 0.8-friendliness falsified: %v", res.Witness)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Check(cap100(), protocol.Reno(), Efficient, 0.5, 0, opt); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Check(cap100(), protocol.Reno(), Fair, 0.5, 1, opt); err == nil {
		t.Fatal("fairness with 1 sender accepted")
	}
}

func TestClaimStrings(t *testing.T) {
	for claim, want := range map[Claim]string{
		Efficient:      "efficient",
		LossAvoiding:   "loss-avoiding",
		Fair:           "fair",
		Convergent:     "convergent",
		FriendlyToReno: "friendly-to-reno",
		Claim(99):      "claim(99)",
	} {
		if got := claim.String(); got != want {
			t.Errorf("Claim(%d).String() = %q, want %q", int(claim), got, want)
		}
	}
}

func TestDeterministicSearch(t *testing.T) {
	run := func() Result {
		res, err := Check(cap100(), protocol.Scalable(), Fair, 0.5, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Worst != b.Worst || a.Trials != b.Trials {
		t.Fatalf("search not deterministic: %+v vs %+v", a, b)
	}
}

func TestTable1WorstCasesSurviveCheck(t *testing.T) {
	// The angle-bracket efficiency bounds of Table 1 must survive
	// falsification for the protocols they describe (claiming slightly
	// below the bound to absorb estimation noise).
	cases := []struct {
		p     protocol.Protocol
		claim float64
	}{
		{protocol.Reno(), 0.5 * 0.95},                      // <b> = 0.5
		{protocol.NewAIMD(1, 0.8), 0.8 * 0.95},             // <b> = 0.8
		{protocol.NewRobustAIMD(1, 0.8, 0.01), 0.8 * 0.95}, // <b/(1−k)> ≥ 0.8
	}
	for _, c := range cases {
		res, err := Check(cap100(), c.p, Efficient, c.claim, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated {
			t.Errorf("%s: Table 1 efficiency bound falsified: %v", c.p.Name(), res.Witness)
		}
	}
}
