package axcheck

import (
	"strings"
	"testing"

	"repro/internal/protocol"
)

// smallGrid keeps the worst-case tests fast.
var smallGrid = []LinkPoint{
	{C: 50, Tau: 1, N: 1},
	{C: 50, Tau: 1, N: 2},
	{C: 100, Tau: 50, N: 2},
	{C: 300, Tau: 6, N: 4},
}

var wcOpt = Options{Steps: 1200, RandomTrials: 4, Seed: 2}

func TestWorstCaseEfficiencyBoundSurvives(t *testing.T) {
	// Table 1's angle-bracket efficiency for AIMD is <b> = 0.5; the
	// claim (with slack for estimation noise) must survive every corner,
	// including the near-bufferless ones where it is tight.
	res, err := CheckWorstCase(protocol.Reno(), Efficient, 0.45, smallGrid, wcOpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("worst-case efficiency <0.5> falsified: %v", res.Witness)
	}
	if res.Trials == 0 {
		t.Fatal("no trials ran")
	}
}

func TestWorstCaseOverclaimKilled(t *testing.T) {
	// Claiming AIMD(1,0.5) is 0.8-efficient across ALL links dies at the
	// shallow-buffer corners (where efficiency → b = 0.5), even though it
	// holds on deep buffers.
	res, err := CheckWorstCase(protocol.Reno(), Efficient, 0.8, smallGrid, wcOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("0.8-efficiency across links survived; worst %v at %+v", res.Worst, res.WorstLink)
	}
	// The witness must be a shallow-buffer link.
	if res.Witness.Link.Tau > res.Witness.Link.C*0.1 {
		t.Fatalf("witness link not shallow: %+v", res.Witness.Link)
	}
	if !strings.Contains(res.Witness.String(), "on link") {
		t.Fatalf("witness string = %q", res.Witness.String())
	}
}

func TestWorstCaseFairSkipsSingleSender(t *testing.T) {
	res, err := CheckWorstCase(protocol.Reno(), Fair, 0.8, smallGrid, wcOpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatalf("AIMD worst-case fairness falsified: %v", res.Witness)
	}
	// n=1 links contribute no trials for fairness: 3 usable links ×
	// (corners+random) each; just assert some ran.
	if res.Trials == 0 {
		t.Fatal("no trials")
	}
}

func TestWorstCaseLossBoundDirection(t *testing.T) {
	// AIMD's worst-case loss-avoidance is <1> — i.e. no useful bound; any
	// specific small claim should die somewhere (more senders on a small
	// link push per-event loss up).
	tight := wcOpt
	tight.Slack = 0.001
	res, err := CheckWorstCase(protocol.Reno(), LossAvoiding, 0.001, smallGrid, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("0.1%%-loss claim survived all links; worst %v", res.Worst)
	}
}

func TestDefaultLinkGridShape(t *testing.T) {
	grid := DefaultLinkGrid()
	if len(grid) != 27 {
		t.Fatalf("grid size = %d, want 27", len(grid))
	}
	for _, lp := range grid {
		if lp.C <= 0 || lp.Tau <= 0 || lp.N < 1 {
			t.Fatalf("bad grid point %+v", lp)
		}
	}
}
