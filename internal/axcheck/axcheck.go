// Package axcheck is the falsification harness for the axioms: given a
// protocol and a claimed score ("P is α-efficient", "P is α-fair", …), it
// searches the quantified-over space — initial window configurations and,
// optionally, link parameters — for a counterexample run that violates the
// claim, and reports the witness when one is found.
//
// The §3 axioms are universally quantified ("for ANY initial configuration
// of senders' window sizes", and the angle-bracket bounds of Table 1 hold
// "across all choices of network parameters"). The estimators in
// internal/metrics realize those quantifiers by sampling a small fixed set
// of configurations; axcheck complements them with adversarial search:
// structured corner cases (floor starts, capacity hogs, near-overflow
// totals) plus seeded random exploration. A claim that survives axcheck is
// not proven — but a claim axcheck kills comes with a concrete,
// reproducible counterexample, which is how the axiomatic method is meant
// to be used experimentally.
package axcheck

import (
	"fmt"
	"math"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/rand64"
)

// Claim names a scored axiom to falsify.
type Claim int

// The checkable claims. Each corresponds to one §3 metric whose
// quantifier ranges over initial configurations.
const (
	// Efficient claims "from some T on, X(t) ≥ α·C" (Metric I).
	Efficient Claim = iota
	// LossAvoiding claims "from some T on, L(t) ≤ α" (Metric III).
	LossAvoiding
	// Fair claims "every sender's tail average ≥ α × any other's"
	// (Metric IV).
	Fair
	// Convergent claims the tail stays within [αx*, (2−α)x*] (Metric V).
	Convergent
	// FriendlyToReno claims Reno keeps ≥ α of the protocol's tail share
	// (Metric VII).
	FriendlyToReno
)

// String implements fmt.Stringer.
func (c Claim) String() string {
	switch c {
	case Efficient:
		return "efficient"
	case LossAvoiding:
		return "loss-avoiding"
	case Fair:
		return "fair"
	case Convergent:
		return "convergent"
	case FriendlyToReno:
		return "friendly-to-reno"
	default:
		return fmt.Sprintf("claim(%d)", int(c))
	}
}

// Options bounds the search.
type Options struct {
	// Steps is the horizon per candidate run (default 3000).
	Steps int
	// TailFrac is the "from T onwards" window (default 0.75).
	TailFrac float64
	// RandomTrials is the number of random initial configurations tried
	// after the structured corners (default 24).
	RandomTrials int
	// Seed drives the random exploration.
	Seed uint64
	// Slack is the tolerance subtracted before declaring a violation
	// (default 0.02): measured < claimed − Slack counts as a
	// counterexample. For LossAvoiding the comparison is inverted.
	Slack float64
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 3000
	}
	if o.TailFrac == 0 {
		o.TailFrac = 0.75
	}
	if o.RandomTrials == 0 {
		o.RandomTrials = 24
	}
	if o.Slack == 0 {
		o.Slack = 0.02
	}
	return o
}

// Counterexample is a falsifying witness.
type Counterexample struct {
	Claim   Claim
	Claimed float64 // the score that was claimed
	// Measured is the violating measurement (below Claimed−Slack, or
	// above it for LossAvoiding).
	Measured float64
	// Init is the initial window configuration that produced it.
	Init []float64
}

// String renders the witness.
func (c Counterexample) String() string {
	return fmt.Sprintf("%s: claimed %.4g, measured %.4g at init %v",
		c.Claim, c.Claimed, c.Measured, c.Init)
}

// Result is the outcome of a search.
type Result struct {
	// Violated reports whether a counterexample was found.
	Violated bool
	// Witness is valid when Violated is true.
	Witness Counterexample
	// Worst is the most adversarial measurement observed, whether or not
	// it violated the claim (for LossAvoiding it is the largest loss).
	Worst float64
	// WorstInit is the configuration achieving Worst.
	WorstInit []float64
	// Trials is the number of configurations evaluated.
	Trials int
}

// Check searches for a violation of "p is α-<claim>" with n senders on
// cfg. For FriendlyToReno the population is one p-sender and one Reno
// sender regardless of n.
func Check(cfg fluid.Config, p protocol.Protocol, claim Claim, alpha float64, n int, opt Options) (Result, error) {
	o := opt.withDefaults()
	if n < 1 {
		return Result{}, fmt.Errorf("axcheck: need at least one sender, got %d", n)
	}
	if (claim == Fair || claim == Convergent) && n < 2 && claim == Fair {
		return Result{}, fmt.Errorf("axcheck: fairness needs ≥ 2 senders")
	}

	senders := n
	if claim == FriendlyToReno {
		senders = 2
	}
	configs := candidateInits(cfg, senders, o)

	res := Result{Worst: math.Inf(1)}
	if claim == LossAvoiding {
		res.Worst = math.Inf(-1)
	}
	for _, init := range configs {
		measured, err := measure(cfg, p, claim, init, o)
		if err != nil {
			return Result{}, err
		}
		res.Trials++
		adversarial := measured < res.Worst
		violated := measured < alpha-o.Slack
		if claim == LossAvoiding {
			adversarial = measured > res.Worst
			violated = measured > alpha+o.Slack
		}
		if adversarial {
			res.Worst = measured
			res.WorstInit = append([]float64(nil), init...)
		}
		if violated && !res.Violated {
			res.Violated = true
			res.Witness = Counterexample{
				Claim:    claim,
				Claimed:  alpha,
				Measured: measured,
				Init:     append([]float64(nil), init...),
			}
		}
	}
	return res, nil
}

// measure runs one configuration and scores the claim.
func measure(cfg fluid.Config, p protocol.Protocol, claim Claim, init []float64, o Options) (float64, error) {
	switch claim {
	case FriendlyToReno:
		tr, err := fluid.Mixed(cfg, []protocol.Protocol{p, protocol.Reno()}, init, o.Steps)
		if err != nil {
			return 0, err
		}
		return metrics.FriendlinessFromTrace(tr, []int{0}, []int{1}, o.TailFrac), nil
	default:
		tr, err := fluid.Homogeneous(cfg, p, len(init), init, o.Steps)
		if err != nil {
			return 0, err
		}
		switch claim {
		case Efficient:
			return metrics.EfficiencyFromTrace(tr, o.TailFrac), nil
		case LossAvoiding:
			return metrics.LossAvoidanceFromTrace(tr, o.TailFrac), nil
		case Fair:
			return metrics.FairnessFromTrace(tr, o.TailFrac), nil
		case Convergent:
			return metrics.ConvergenceFromTrace(tr, o.TailFrac), nil
		default:
			return 0, fmt.Errorf("axcheck: unknown claim %v", claim)
		}
	}
}

// candidateInits builds the adversarial corner configurations followed by
// seeded random ones. Corners: all at the floor; all at the fair share;
// all exactly at overflow; one hog holding C (rotated through positions);
// geometric ladders.
func candidateInits(cfg fluid.Config, n int, o Options) [][]float64 {
	c := cfg.Capacity()
	if math.IsInf(c, 1) || c <= 0 {
		c = 1000
	}
	tau := cfg.Buffer
	var out [][]float64

	uniform := func(v float64) []float64 {
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Max(v, protocol.MinWindow)
		}
		return row
	}
	out = append(out,
		uniform(protocol.MinWindow),
		uniform(c/float64(n)),
		uniform((c+tau)/float64(n)),     // exactly at the loss boundary
		uniform(1.5*(c+tau)/float64(n)), // deep overload
	)
	// One hog per position.
	for hog := 0; hog < n; hog++ {
		row := uniform(protocol.MinWindow)
		row[hog] = c
		out = append(out, row)
	}
	// Geometric ladder (1, 2, 4, ...) scaled to the capacity.
	ladder := make([]float64, n)
	v := protocol.MinWindow
	for i := range ladder {
		ladder[i] = v
		v = math.Min(v*2, c)
	}
	out = append(out, ladder)

	rng := rand64.New(o.Seed)
	for t := 0; t < o.RandomTrials; t++ {
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.Range(protocol.MinWindow, 1.2*(c+tau))
		}
		out = append(out, row)
	}
	return out
}
