package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTable2ReportGolden renders a small fixed Table 2 section and
// compares it byte-for-byte against testdata/table2_report.golden, so any
// drift in the Markdown assembly, fencing, or the experiment's tabwriter
// layout is caught. Regenerate with `go test ./internal/report -update`.
func TestTable2ReportGolden(t *testing.T) {
	res := &experiment.Table2Result{
		Cells: []experiment.Table2Cell{
			{N: 2, Mbps: 20, RAIMD: 0.912, PCC: 0.451, Improvement: 2.022},
			{N: 2, Mbps: 60, RAIMD: 0.874, PCC: 0.512, Improvement: 1.707},
			{N: 3, Mbps: 20, RAIMD: 0.933, PCC: 0.488, Improvement: 1.912},
			{N: 3, Mbps: 60, RAIMD: 0.901, PCC: 0.423, Improvement: 2.130},
		},
		MeanImprovement: 1.943,
		MinImprovement:  1.707,
	}
	sections := []Section{{
		Title:   "Table 2 — Robust-AIMD vs PCC TCP-friendliness",
		Comment: "Fixed fixture grid (no simulation): exercises rendering only.",
		Body:    fence(res.Render()),
	}}
	got := Render(sections, time.Unix(0, 0).UTC())

	golden := filepath.Join("testdata", "table2_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("rendered report drifted from %s (run with -update to accept):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestFence verifies the code-fence helper normalizes trailing newlines.
func TestFence(t *testing.T) {
	for _, in := range []string{"a\tb", "a\tb\n", "a\tb\n\n"} {
		if got, want := fence(in), "```\na\tb\n```\n"; got != want {
			t.Errorf("fence(%q) = %q, want %q", in, got, want)
		}
	}
}
