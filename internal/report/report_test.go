package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGenerateQuick(t *testing.T) {
	sections, err := Generate(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) < 7 {
		t.Fatalf("only %d sections", len(sections))
	}
	titles := map[string]bool{}
	for _, s := range sections {
		titles[s.Title] = true
	}
	for _, want := range []string{
		"Table 1 — theory",
		"Table 1 — fluid-model validation",
		"Figure 1 — Pareto frontier",
		"Table 2 — Robust-AIMD vs PCC TCP-friendliness",
		"§5.1 — protocol-ordering validation (Emulab substitute)",
		"Claim 1 and Theorem 2 (tightness)",
		"Metric VI — robustness thresholds",
		"§6 extension — network-wide parking lot",
	} {
		if !titles[want] {
			t.Errorf("missing section %q", want)
		}
	}
	// SVG sections actually carry SVG.
	svgs := 0
	for _, s := range sections {
		if s.SVGName != "" {
			svgs++
			if !strings.HasPrefix(s.SVG, "<svg") {
				t.Errorf("section %q: SVG malformed", s.Title)
			}
		}
	}
	if svgs < 2 {
		t.Errorf("only %d SVG sections", svgs)
	}
}

func TestRenderMarkdown(t *testing.T) {
	sections := []Section{
		{Title: "A", Comment: "c", Body: fence("row1\trow2")},
		{Title: "B", SVGName: "b.svg", SVG: "<svg/>"},
	}
	md := Render(sections, time.Unix(0, 0).UTC())
	for _, want := range []string{"# Reproduction report", "## A", "```", "![B](b.svg)"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	path, err := Write(dir, Config{Quick: true, Seed: 1}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "report.md" {
		t.Fatalf("path = %v", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Table 2") {
		t.Fatal("report.md missing Table 2 section")
	}
	// The SVG assets landed next to it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	svgs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".svg") {
			svgs++
		}
	}
	if svgs < 2 {
		t.Fatalf("only %d SVG files written", svgs)
	}
}
