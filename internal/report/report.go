// Package report generates a single self-contained reproduction report:
// it runs every experiment (at configurable scale), renders the tables as
// Markdown, plots the key figures as SVG files, and writes everything into
// an output directory. `cmd/reproduce -report <dir>` fronts it; the result
// is the artifact a reader compares against the paper.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/axioms"
	"repro/internal/experiment"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/svgplot"
)

// Config scales the report's experiments.
type Config struct {
	// Quick shrinks grids and horizons (~20× faster, noisier numbers).
	Quick bool
	// Seed drives every randomized component.
	Seed uint64
}

// Section is one finished experiment: a title, commentary, a Markdown
// body, and optionally an SVG asset to write alongside.
type Section struct {
	Title   string
	Comment string
	Body    string // Markdown (tables use fenced code blocks)
	SVGName string // file name of the asset ("" = none)
	SVG     string // SVG document
}

// Generate runs all experiments and returns the report sections.
func Generate(cfg Config) ([]Section, error) {
	steps := 4000
	dur := 60.0
	if cfg.Quick {
		steps = 1200
		dur = 20
	}
	// One run-dedup session spans every experiment below, so runs shared
	// across sections (e.g. Figure 1's Reno spot check and Theorem 2's
	// (1, 0.5) pair probe the identical mixed link) simulate once.
	opt := metrics.Options{Steps: steps, Session: metrics.NewSession()}
	var sections []Section

	// --- Table 1, theory and fluid validation ---
	lp := axioms.Link{C: 70, Tau: 100, N: 2}
	sections = append(sections, Section{
		Title:   "Table 1 — theory",
		Comment: "Closed forms at C=70 MSS (20 Mbps × 42 ms), τ=100, n=2; angle brackets are worst cases.",
		Body:    fence(experiment.RenderTable1Theory(experiment.Table1Theory(lp))),
	})
	emp, err := experiment.Table1Empirical(experiment.FluidLink(20, 100), 2, opt)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "Table 1 — fluid-model validation",
		Comment: "Theory/measured pairs per metric; see EXPERIMENTS.md for the discussion of the fast-utilization scale for superlinear protocols.",
		Body:    fence(experiment.RenderTable1Empirical(emp)),
	})

	// --- Window dynamics figure ---
	tr, err := fluid.Homogeneous(experiment.FluidLink(20, 100), protocol.Reno(), 2, []float64{170, 1}, steps)
	if err != nil {
		return nil, err
	}
	dyn := svgplot.Lines([]svgplot.Series{
		{Name: "Reno (starts at 170)", Y: tr.Window(0)},
		{Name: "Reno (starts at 1)", Y: tr.Window(1)},
	}, svgplot.LineOptions{
		Title: "AIMD convergence to fairness", XLabel: "step (RTTs)", YLabel: "window (MSS)",
	})
	sections = append(sections, Section{
		Title:   "AIMD fairness dynamics",
		Comment: "Two Reno flows from a maximally skewed start; Metric IV in action.",
		Body:    "",
		SVGName: "aimd-fairness.svg",
		SVG:     dyn,
	})

	// --- Figure 1 ---
	alphaN, betaN := 12, 9
	if cfg.Quick {
		alphaN, betaN = 6, 5
	}
	pts := experiment.Figure1(alphaN, betaN)
	grid := make([][]float64, betaN)
	var xs, ys []float64
	for y := range grid {
		grid[y] = make([]float64, alphaN)
	}
	for i, p := range pts {
		a, b := i/betaN, i%betaN
		grid[b][a] = p.Friendliness
		if b == 0 {
			xs = append(xs, p.FastUtilization)
		}
		if a == 0 {
			ys = append(ys, p.Efficiency)
		}
	}
	heat := svgplot.Heatmap(grid, svgplot.HeatmapOptions{
		Title: "Figure 1 — TCP-friendliness frontier", XLabel: "fast-utilization α",
		YLabel: "efficiency β", XValues: xs, YValues: ys,
	})
	checks, err := experiment.Figure1SpotChecks([][2]float64{{1, 0.5}, {2, 0.5}, {1, 0.8}}, opt)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "Figure 1 — Pareto frontier",
		Comment: "The surface 3(1−β)/(α(1+β)); AIMD(α, β) attains each point (spot checks below).",
		Body:    fence(experiment.RenderFigure1Checks(checks)),
		SVGName: "figure1-frontier.svg",
		SVG:     heat,
	})

	// --- Table 2 ---
	tc := experiment.Table2Config{Duration: dur, Seed: cfg.Seed}
	if cfg.Quick {
		tc.Senders = []int{2}
		tc.Bandwidths = []float64{20, 60}
		tc.Seeds = 1
	}
	t2, err := experiment.Table2(tc)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "Table 2 — Robust-AIMD vs PCC TCP-friendliness",
		Comment: "Packet-level testbed; the paper reports >1.5× in every cell, 1.92× mean — the trend (R-AIMD friendlier everywhere) is the reproduced claim.",
		Body:    fence(t2.Render()),
	})

	// --- §5.1 hierarchy ---
	hc := experiment.HierarchyConfig{Duration: dur, Seed: cfg.Seed}
	if cfg.Quick {
		hc.Senders = []int{2}
		hc.Bandwidths = []float64{20}
		hc.Buffers = []int{100}
	}
	hier, err := experiment.Hierarchy(hc)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "§5.1 — protocol-ordering validation (Emulab substitute)",
		Comment: "Per-metric orderings of Reno/Cubic/Scalable vs the theory-induced hierarchy.",
		Body:    fence(hier.Render()),
	})

	// --- Theorems ---
	claim, err := experiment.CheckClaim1(opt)
	if err != nil {
		return nil, err
	}
	t2checks, err := experiment.CheckTheorem2(nil, opt, 0)
	if err != nil {
		return nil, err
	}
	var t2body strings.Builder
	fmt.Fprintf(&t2body, "Claim 1 probe: tail loss %.6f, fast-utilization %.6f, holds=%v\n\n",
		claim.TailLoss, claim.FastUtil, claim.Holds)
	for _, c := range t2checks {
		fmt.Fprintf(&t2body, "AIMD(%g,%g): bound %.3f measured %.3f tightness %.2f holds=%v\n",
			c.A, c.B, c.Bound, c.Measured, c.Tightness, c.Holds)
	}
	sections = append(sections, Section{
		Title:   "Claim 1 and Theorem 2 (tightness)",
		Comment: "The fluid model attains Theorem 2's ceiling exactly for AIMD(α, β).",
		Body:    fence(t2body.String()),
	})

	// --- Robustness column ---
	rob, err := experiment.RobustnessSweep(opt)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "Metric VI — robustness thresholds",
		Comment: "Bisection-located tolerated loss rates; only Robust-AIMD (≈ε) and PCC (≈1/(1+δ)) are non-zero.",
		Body:    fence(experiment.RenderRobustness(rob)),
	})

	// --- Parking lot (extension) ---
	hops := []int{1, 2, 3, 4}
	if cfg.Quick {
		hops = []int{1, 3}
	}
	pl, err := experiment.ParkingLotExperiment(hops, steps, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	sections = append(sections, Section{
		Title:   "§6 extension — network-wide parking lot",
		Comment: "Long-flow share vs hop count under stochastic loss observation.",
		Body:    fence(experiment.RenderParkingLot(pl)),
	})

	return sections, nil
}

// Render assembles the sections into one Markdown document. svgDir is the
// relative directory referenced by image links ("" keeps plain names).
func Render(sections []Section, generatedAt time.Time) string {
	var sb strings.Builder
	sb.WriteString("# Reproduction report — An Axiomatic Approach to Congestion Control\n\n")
	fmt.Fprintf(&sb, "Generated %s by `cmd/reproduce -report`.\n\n", generatedAt.Format(time.RFC3339))
	for _, s := range sections {
		fmt.Fprintf(&sb, "## %s\n\n", s.Title)
		if s.Comment != "" {
			fmt.Fprintf(&sb, "%s\n\n", s.Comment)
		}
		if s.Body != "" {
			sb.WriteString(s.Body)
			sb.WriteString("\n")
		}
		if s.SVGName != "" {
			fmt.Fprintf(&sb, "![%s](%s)\n\n", s.Title, s.SVGName)
		}
	}
	return sb.String()
}

// Write generates the report and writes report.md plus SVG assets to dir
// (created if missing). It returns the path of the Markdown file.
func Write(dir string, cfg Config, now time.Time) (string, error) {
	sections, err := Generate(cfg)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	for _, s := range sections {
		if s.SVGName == "" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, s.SVGName), []byte(s.SVG), 0o644); err != nil {
			return "", err
		}
	}
	path := filepath.Join(dir, "report.md")
	if err := os.WriteFile(path, []byte(Render(sections, now)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func fence(s string) string {
	return "```\n" + strings.TrimRight(s, "\n") + "\n```\n"
}
