package game

import (
	"strings"
	"testing"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

func link() fluid.Config {
	theta := 0.021
	return fluid.Config{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
}

func renoVsScalable(t *testing.T, n int) *Game {
	t.Helper()
	g, err := New(link(), []protocol.Protocol{protocol.Reno(), protocol.Scalable()}, n, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	if _, err := New(link(), []protocol.Protocol{protocol.Reno()}, 2, 100); err == nil {
		t.Fatal("1-protocol menu accepted")
	}
	if _, err := New(link(), []protocol.Protocol{protocol.Reno(), protocol.Scalable()}, 1, 100); err == nil {
		t.Fatal("1 player accepted")
	}
	if _, err := New(link(), []protocol.Protocol{protocol.Reno(), protocol.Scalable()}, 30, 100); err == nil {
		t.Fatal("2^30 profile space accepted")
	}
}

func TestPayoffsShape(t *testing.T) {
	g := renoVsScalable(t, 2)
	p, err := g.Payoffs([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] <= 0 || p[1] <= 0 {
		t.Fatalf("payoffs = %v", p)
	}
	if _, err := g.Payoffs([]int{0}); err == nil {
		t.Fatal("short profile accepted")
	}
	if _, err := g.Payoffs([]int{0, 5}); err == nil {
		t.Fatal("out-of-menu strategy accepted")
	}
}

func TestPayoffCacheDeterminism(t *testing.T) {
	g := renoVsScalable(t, 2)
	a, err := g.Payoffs([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Payoffs([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cache mismatch: %v vs %v", a, b)
		}
	}
}

func TestDefectionPays(t *testing.T) {
	// From all-Reno, switching to Scalable must strictly improve the
	// deviator's payoff — TCP-friendliness exploited as a defection
	// incentive.
	g := renoVsScalable(t, 2)
	nash, dev, err := g.IsNash([]int{0, 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if nash {
		t.Fatal("all-Reno reported as equilibrium")
	}
	if dev == nil || dev.To != 1 || dev.Gain <= 0 {
		t.Fatalf("deviation = %+v", dev)
	}
}

func TestAllAggressiveIsNash(t *testing.T) {
	// From all-Scalable, switching back to Reno means starvation.
	g := renoVsScalable(t, 2)
	nash, dev, err := g.IsNash([]int{1, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !nash {
		t.Fatalf("all-Scalable not an equilibrium; deviation %+v", dev)
	}
}

func TestGoodputPayoffNoDilemmaOnDeepBuffer(t *testing.T) {
	// With raw-goodput payoffs the race to aggression is cheap: the
	// all-Scalable equilibrium keeps the deep-buffered link at least as
	// full as all-Reno (Scalable's gentler backoff, b = 0.875 vs 0.5).
	// This is the documented counterpoint to the loss-sensitive dilemma.
	g := renoVsScalable(t, 2)
	wReno, err := g.SocialWelfare([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	wScal, err := g.SocialWelfare([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if wScal < wReno*0.9 {
		t.Fatalf("goodput welfare collapsed at equilibrium: %v vs %v", wScal, wReno)
	}
}

func TestPrisonersDilemmaForLossSensitiveTraffic(t *testing.T) {
	// For loss-sensitive applications, the all-aggressive equilibrium is
	// strictly worse than all-Reno. The robust aggressor here is the PCC
	// stand-in: its ε-loss tolerance parks the link in PERSISTENT ~0.4%
	// overload, a structural loss floor that λ penalizes, whereas
	// synchronized AIMD anneals onto the capacity boundary with near-zero
	// standing loss. (MIMD's loss rate is orbit-dependent and makes the
	// gap fragile — see the goodput test above for that pairing.)
	g, err := New(link(), []protocol.Protocol{protocol.Reno(), protocol.DefaultPCC()}, 2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	g.SetPayoff(LossSensitivePayoff(100))

	wReno, err := g.SocialWelfare([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	wPCC, err := g.SocialWelfare([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if wReno <= wPCC*1.1 {
		t.Fatalf("no dilemma: all-Reno %v vs all-PCC %v under loss-sensitive payoff (λ=100)", wReno, wPCC)
	}
	// Defection from all-Reno still pays for the defector.
	nash, dev, err := g.IsNash([]int{0, 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if nash || dev == nil {
		t.Fatal("all-Reno became an equilibrium under loss-sensitive payoff")
	}
	// And all-PCC is the (inefficient) equilibrium.
	nash, dev, err = g.IsNash([]int{1, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !nash {
		t.Fatalf("all-PCC not an equilibrium; deviation %+v", dev)
	}
}

func TestPureNashEnumeration(t *testing.T) {
	g := renoVsScalable(t, 2)
	eqs, err := g.PureNash(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) == 0 {
		t.Fatal("no pure equilibria found")
	}
	// Every equilibrium must be all-Scalable-ish: no player on Reno
	// (Reno players always gain by defecting).
	for _, eq := range eqs {
		for _, s := range eq {
			if s == 0 {
				t.Fatalf("equilibrium %v contains a Reno player", eq)
			}
		}
	}
}

func TestBestResponseDynamicsConvergeToNash(t *testing.T) {
	g := renoVsScalable(t, 3)
	final, converged, err := g.BestResponseDynamics([]int{0, 0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatalf("dynamics did not converge; final %v", final)
	}
	nash, dev, err := g.IsNash(final, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !nash {
		t.Fatalf("converged profile %v is not Nash (deviation %+v)", final, dev)
	}
	// And it is the race to the bottom.
	for _, s := range final {
		if s != 1 {
			t.Fatalf("final profile %v is not all-Scalable", final)
		}
	}
}

func TestRenderProfile(t *testing.T) {
	g := renoVsScalable(t, 2)
	out, err := g.RenderProfile([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AIMD(1,0.5)", "MIMD(1.01,0.875)", "welfare"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMenuAndPlayers(t *testing.T) {
	g := renoVsScalable(t, 2)
	m := g.Menu()
	if len(m) != 2 || m[0] != "AIMD(1,0.5)" {
		t.Fatalf("menu = %v", m)
	}
	if g.Players() != 2 {
		t.Fatalf("players = %d", g.Players())
	}
}
