// Package game analyzes congestion control as a protocol-selection game,
// following the incentive-compatibility line the paper builds on (Godfrey,
// Schapira, Zohar & Shenker, SIGMETRICS 2010 — the paper's reference
// [14]): each sender chooses a protocol from a menu, payoffs are the
// goodputs the joint choice induces on a shared bottleneck, and the
// solution concepts are pure Nash equilibria and best-response dynamics.
//
// Two findings reproduce here. First, unconditionally: everyone-runs-TCP
// is NOT an equilibrium — defecting to an aggressive protocol pays, and
// best-response dynamics race to everyone-aggressive. Second, the
// "prisoner's dilemma of congestion control" — the race's endpoint having
// strictly lower social welfare — depends on what traffic values: with
// raw-goodput payoffs the aggressive equilibrium keeps deep-buffered
// links full and costs little, but for loss-sensitive applications
// (PCC-style utilities that penalize delivered-but-degraded traffic) the
// equilibrium is strictly worse than all-TCP. Both payoff models are
// provided; the friendliness axioms are exactly the defection incentives
// this game measures.
package game

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

// Payoff maps a player's simulation outcome to utility: tail-average
// goodput (MSS/s), tail-average loss rate, and the tail-average and base
// RTTs (seconds).
type Payoff func(goodput, avgLoss, avgRTT, baseRTT float64) float64

// GoodputPayoff values raw delivered throughput.
func GoodputPayoff(goodput, avgLoss, avgRTT, baseRTT float64) float64 {
	return goodput
}

// LossSensitivePayoff returns a payoff for applications that value loss-
// free delivery (interactive media, transaction traffic): utility =
// goodput·(1 − λ·loss), the linearized form of PCC Allegro's
// loss-penalizing utility. λ is the value destroyed per unit loss rate;
// λ ≫ 1 models traffic where retransmission or late delivery is nearly
// worthless.
func LossSensitivePayoff(lambda float64) Payoff {
	return func(goodput, avgLoss, avgRTT, baseRTT float64) float64 {
		return goodput * (1 - lambda*avgLoss)
	}
}

// Game is an n-player protocol-selection game on a shared fluid link.
type Game struct {
	cfg    fluid.Config
	menu   []protocol.Protocol
	n      int
	steps  int
	tail   float64
	payoff Payoff

	// payoff cache keyed by the profile string.
	cache map[string][]float64
}

// SetPayoff replaces the payoff function (default GoodputPayoff) and
// clears the cache.
func (g *Game) SetPayoff(p Payoff) {
	g.payoff = p
	g.cache = map[string][]float64{}
}

// New builds a game. menu entries are cloned per player at simulation
// time; n is the number of players. steps is the simulation horizon
// (default 3000).
func New(cfg fluid.Config, menu []protocol.Protocol, n, steps int) (*Game, error) {
	if len(menu) < 2 {
		return nil, fmt.Errorf("game: menu needs ≥ 2 protocols, got %d", len(menu))
	}
	if n < 2 {
		return nil, fmt.Errorf("game: need ≥ 2 players, got %d", n)
	}
	if steps == 0 {
		steps = 3000
	}
	count := 1
	for i := 0; i < n; i++ {
		count *= len(menu)
		if count > 1<<16 {
			return nil, fmt.Errorf("game: profile space too large (menu %d, players %d)", len(menu), n)
		}
	}
	return &Game{
		cfg:    cfg,
		menu:   menu,
		n:      n,
		steps:  steps,
		tail:   0.75,
		payoff: GoodputPayoff,
		cache:  map[string][]float64{},
	}, nil
}

// Menu returns the strategy names, index-aligned with profiles.
func (g *Game) Menu() []string {
	out := make([]string, len(g.menu))
	for i, p := range g.menu {
		out[i] = p.Name()
	}
	return out
}

// Players returns n.
func (g *Game) Players() int { return g.n }

func (g *Game) key(profile []int) string {
	var sb strings.Builder
	for _, s := range profile {
		fmt.Fprintf(&sb, "%d,", s)
	}
	return sb.String()
}

// Payoffs simulates the profile (profile[i] indexes the menu) and returns
// each player's average tail goodput in MSS/s. Results are memoized.
func (g *Game) Payoffs(profile []int) ([]float64, error) {
	if len(profile) != g.n {
		return nil, fmt.Errorf("game: profile length %d, want %d", len(profile), g.n)
	}
	for _, s := range profile {
		if s < 0 || s >= len(g.menu) {
			return nil, fmt.Errorf("game: strategy %d out of menu range", s)
		}
	}
	k := g.key(profile)
	if cached, ok := g.cache[k]; ok {
		return cached, nil
	}
	protos := make([]protocol.Protocol, g.n)
	for i, s := range profile {
		protos[i] = g.menu[s]
	}
	tr, err := fluid.Mixed(g.cfg, protos, nil, g.steps)
	if err != nil {
		return nil, err
	}
	avgLoss := tailMean(tr.Loss(), g.tail)
	avgRTT := tailMean(tr.RTT(), g.tail)
	payoffs := make([]float64, g.n)
	for i := range payoffs {
		payoffs[i] = g.payoff(tr.AvgGoodput(i, g.tail), avgLoss, avgRTT, g.cfg.BaseRTT())
	}
	g.cache[k] = payoffs
	return payoffs, nil
}

func tailMean(xs []float64, frac float64) float64 {
	start := int(frac * float64(len(xs)))
	if start >= len(xs) {
		start = len(xs) - 1
	}
	if start < 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs[start:] {
		sum += v
	}
	return sum / float64(len(xs)-start)
}

// SocialWelfare returns the sum of payoffs of a profile.
func (g *Game) SocialWelfare(profile []int) (float64, error) {
	p, err := g.Payoffs(profile)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	return sum, nil
}

// Deviation describes a profitable unilateral move.
type Deviation struct {
	Player int
	From   int
	To     int
	Gain   float64 // payoff improvement
}

// IsNash reports whether no player can gain more than tolFrac (relative)
// by deviating unilaterally. When the profile is not an equilibrium the
// most profitable deviation is returned.
func (g *Game) IsNash(profile []int, tolFrac float64) (bool, *Deviation, error) {
	base, err := g.Payoffs(profile)
	if err != nil {
		return false, nil, err
	}
	var best *Deviation
	for player := 0; player < g.n; player++ {
		for alt := 0; alt < len(g.menu); alt++ {
			if alt == profile[player] {
				continue
			}
			dev := append([]int(nil), profile...)
			dev[player] = alt
			p, err := g.Payoffs(dev)
			if err != nil {
				return false, nil, err
			}
			gain := p[player] - base[player]
			if gain > tolFrac*math.Max(base[player], 1) {
				if best == nil || gain > best.Gain {
					best = &Deviation{Player: player, From: profile[player], To: alt, Gain: gain}
				}
			}
		}
	}
	return best == nil, best, nil
}

// PureNash enumerates all pure profiles and returns the equilibria.
func (g *Game) PureNash(tolFrac float64) ([][]int, error) {
	var out [][]int
	profile := make([]int, g.n)
	for {
		nash, _, err := g.IsNash(profile, tolFrac)
		if err != nil {
			return nil, err
		}
		if nash {
			out = append(out, append([]int(nil), profile...))
		}
		// Increment the profile counter.
		i := 0
		for ; i < g.n; i++ {
			profile[i]++
			if profile[i] < len(g.menu) {
				break
			}
			profile[i] = 0
		}
		if i == g.n {
			return out, nil
		}
	}
}

// BestResponse returns player's payoff-maximizing strategy against the
// others in profile.
func (g *Game) BestResponse(profile []int, player int) (int, error) {
	best, bestPay := profile[player], math.Inf(-1)
	for alt := 0; alt < len(g.menu); alt++ {
		dev := append([]int(nil), profile...)
		dev[player] = alt
		p, err := g.Payoffs(dev)
		if err != nil {
			return 0, err
		}
		if p[player] > bestPay {
			best, bestPay = alt, p[player]
		}
	}
	return best, nil
}

// BestResponseDynamics runs round-robin best responses from start until a
// fixed point or maxRounds. It returns the final profile and whether it
// converged (every player already best-responding).
func (g *Game) BestResponseDynamics(start []int, maxRounds int) ([]int, bool, error) {
	profile := append([]int(nil), start...)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for player := 0; player < g.n; player++ {
			br, err := g.BestResponse(profile, player)
			if err != nil {
				return nil, false, err
			}
			if br != profile[player] {
				profile[player] = br
				changed = true
			}
		}
		if !changed {
			return profile, true, nil
		}
	}
	return profile, false, nil
}

// RenderProfile formats a profile with its payoffs and welfare.
func (g *Game) RenderProfile(profile []int) (string, error) {
	pay, err := g.Payoffs(profile)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "player\tprotocol\tgoodput (MSS/s)")
	total := 0.0
	for i, s := range profile {
		fmt.Fprintf(w, "%d\t%s\t%.1f\n", i, g.menu[s].Name(), pay[i])
		total += pay[i]
	}
	fmt.Fprintf(w, "\twelfare\t%.1f\n", total)
	w.Flush()
	return sb.String(), nil
}
