package storeflags

import (
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runstore"
)

func TestRegisterMountsAllFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	Register(fs)
	for _, name := range []string{"store", "nostore", "store-max-bytes", "store-stats"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not mounted", name)
		}
	}
	if err := fs.Parse([]string{"-store", "/x", "-nostore", "-store-max-bytes", "123", "-store-stats"}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStatsFormat pins the stderr contract the CI warm pass greps
// for: a `simulated=N` field on the run-cache line.
func TestWriteStatsFormat(t *testing.T) {
	metrics.ResetTotalStats()
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteStats(&sb, "tool", st)
	out := sb.String()
	if !strings.Contains(out, "simulated=0") {
		t.Fatalf("stats line missing simulated= field:\n%s", out)
	}
	if !strings.Contains(out, "run store: hits=0") {
		t.Fatalf("stats line missing store counters:\n%s", out)
	}
	sb.Reset()
	WriteStats(&sb, "tool", nil)
	if !strings.Contains(sb.String(), "run store: disabled") {
		t.Fatalf("nil store not reported as disabled:\n%s", sb.String())
	}
}

// TestApplyNoStore: -nostore must leave the process storeless.
func TestApplyNoStore(t *testing.T) {
	metrics.SetDefaultStore(nil)
	f := &Flags{NoStore: true, Stats: false}
	report := f.Apply("tool")
	report()
	if metrics.DefaultStore() != nil {
		t.Fatal("-nostore installed a default store")
	}
}

// TestApplyInstallsDefaultStore: Apply with an explicit dir wires the
// store into the metrics layer process-wide.
func TestApplyInstallsDefaultStore(t *testing.T) {
	defer metrics.SetDefaultStore(nil)
	defer engine.SetCheckpointStore(nil)
	f := &Flags{Dir: t.TempDir()}
	f.Apply("tool")
	if metrics.DefaultStore() == nil {
		t.Skip("store unavailable in this environment (no source tree)")
	}
}

// TestApplyRegistersStatsSources: Apply must expose the cache tiers as
// obs stat groups, so runrecord.json carries hits/misses/bytes without
// -store-stats.
func TestApplyRegistersStatsSources(t *testing.T) {
	metrics.ResetTotalStats()
	defer func() {
		metrics.SetDefaultStore(nil)
		engine.SetCheckpointStore(nil)
		obs.RegisterStatsSource("run_cache", nil)
		obs.RegisterStatsSource("run_store", nil)
	}()
	f := &Flags{Dir: t.TempDir()}
	_ = f.Apply("tool")

	st := metrics.DefaultStore()
	if st == nil {
		t.Fatal("Apply did not install a default store")
	}
	st.Put("k", []byte("v"))
	st.Get("k")

	r := obs.BeginRecord("tool")
	defer obs.EndRecord()
	r.Finish()
	groups := map[string]map[string]float64{}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Stats map[string]map[string]float64 `json:"stats"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	groups = rec.Stats
	store, ok := groups["run_store"]
	if !ok {
		t.Fatalf("record stats missing run_store group: %v", groups)
	}
	if store["puts"] != 1 || store["hits"] != 1 {
		t.Fatalf("run_store stats = %v, want puts=1 hits=1", store)
	}
	if store["bytes"] <= 0 {
		t.Fatalf("run_store bytes = %v, want > 0", store["bytes"])
	}
	// The run-cache group exists even when idle (all-zero counters are
	// still meaningful: "nothing was simulated").
	if _, ok := groups["run_cache"]; !ok {
		t.Fatalf("record stats missing run_cache group: %v", groups)
	}
}
