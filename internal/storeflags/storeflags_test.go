package storeflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/runstore"
)

func TestRegisterMountsAllFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	Register(fs)
	for _, name := range []string{"store", "nostore", "store-max-bytes", "store-stats"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not mounted", name)
		}
	}
	if err := fs.Parse([]string{"-store", "/x", "-nostore", "-store-max-bytes", "123", "-store-stats"}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStatsFormat pins the stderr contract the CI warm pass greps
// for: a `simulated=N` field on the run-cache line.
func TestWriteStatsFormat(t *testing.T) {
	metrics.ResetTotalStats()
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteStats(&sb, "tool", st)
	out := sb.String()
	if !strings.Contains(out, "simulated=0") {
		t.Fatalf("stats line missing simulated= field:\n%s", out)
	}
	if !strings.Contains(out, "run store: hits=0") {
		t.Fatalf("stats line missing store counters:\n%s", out)
	}
	sb.Reset()
	WriteStats(&sb, "tool", nil)
	if !strings.Contains(sb.String(), "run store: disabled") {
		t.Fatalf("nil store not reported as disabled:\n%s", sb.String())
	}
}

// TestApplyNoStore: -nostore must leave the process storeless.
func TestApplyNoStore(t *testing.T) {
	metrics.SetDefaultStore(nil)
	f := &Flags{NoStore: true, Stats: false}
	report := f.Apply("tool")
	report()
	if metrics.DefaultStore() != nil {
		t.Fatal("-nostore installed a default store")
	}
}

// TestApplyInstallsDefaultStore: Apply with an explicit dir wires the
// store into the metrics layer process-wide.
func TestApplyInstallsDefaultStore(t *testing.T) {
	defer metrics.SetDefaultStore(nil)
	defer engine.SetCheckpointStore(nil)
	f := &Flags{Dir: t.TempDir()}
	f.Apply("tool")
	if metrics.DefaultStore() == nil {
		t.Skip("store unavailable in this environment (no source tree)")
	}
}
