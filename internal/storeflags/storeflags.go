// Package storeflags is the CLI glue for the persistent run store: every
// cmd/* tool mounts one flag set and gets a disk-backed second tier under
// its metric sessions and sweep checkpoints, with a greppable stats line
// for CI.
//
//	-store dir             store directory (default: user cache dir)
//	-nostore               disable the persistent store for this run
//	-store-max-bytes n     size budget before LRU eviction (0 = default 1 GiB)
//	-store-lock-timeout d  bound per-key flock waits (0 = wait forever)
//	-store-stats           print cache-tier counters on stderr at exit
//
// The store is on by default: simulation runs are deterministic and
// content-addressed (including a hash of the simulation source), so
// persistence is always safe — it changes cost, never scores.
package storeflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// Flags holds the parsed persistent-store flags. Mount with Register
// before flag.Parse, then call Apply once parsing is done.
type Flags struct {
	Dir         string
	NoStore     bool
	MaxBytes    int64
	LockTimeout time.Duration
	Stats       bool
}

// Register mounts the store flags on fs (typically flag.CommandLine) and
// returns the holder to Apply after parsing.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Dir, "store", "", "persistent run store directory (default: OS user cache dir)")
	fs.BoolVar(&f.NoStore, "nostore", false, "disable the persistent run store for this invocation")
	fs.Int64Var(&f.MaxBytes, "store-max-bytes", 0, "run store size budget in bytes before LRU eviction (0 = 1 GiB)")
	fs.DurationVar(&f.LockTimeout, "store-lock-timeout", 0, "max wait for a per-key store lock before degrading to lock-free simulation (0 = wait forever)")
	fs.BoolVar(&f.Stats, "store-stats", false, "print run-store and session counters on stderr at exit")
	return f
}

// Apply opens the store and installs it process-wide: metric sessions
// (including the private ones experiments create) gain a disk tier, and
// sweep checkpoints externalize their cell payloads to it. It returns a
// report func to run at tool exit — with -store-stats it prints the
// counters line CI greps for (`simulated=0` on a warm pass). A store
// that cannot open (no writable cache dir, binary running away from its
// source tree) degrades to a warning: the tool runs storeless rather
// than failing.
func (f *Flags) Apply(tool string) (report func()) {
	var st *runstore.Store
	if !f.NoStore {
		var err error
		st, err = runstore.Open(f.Dir, runstore.Options{MaxBytes: f.MaxBytes, LockTimeout: f.LockTimeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: persistent run store disabled: %v\n", tool, err)
		} else {
			metrics.SetDefaultStore(st)
			engine.SetCheckpointStore(st)
		}
	}
	// Register the cache tiers as run-record stat groups. The record's
	// Finish polls these, so cold-vs-warm behavior lands in
	// runrecord.json (and /snapshot) without -store-stats.
	obs.RegisterStatsSource("run_cache", func() map[string]float64 {
		t := metrics.TotalStats()
		return map[string]float64{
			"simulated":       float64(t.Simulated()),
			"mem_hits":        float64(t.Hits),
			"disk_hits":       float64(t.DiskHits),
			"misses":          float64(t.Misses),
			"uncacheable":     float64(t.Uncacheable),
			"steps_simulated": float64(t.StepsSimulated),
			"steps_saved":     float64(t.StepsSaved),
		}
	})
	if st != nil {
		obs.RegisterStatsSource("run_store", func() map[string]float64 {
			s := st.Stats()
			return map[string]float64{
				"hits":          float64(s.Hits),
				"misses":        float64(s.Misses),
				"puts":          float64(s.Puts),
				"evictions":     float64(s.Evictions),
				"corrupt":       float64(s.Corrupt),
				"lock_timeouts": float64(s.LockTimeouts),
				"bytes":         float64(s.Bytes),
			}
		})
	}
	return func() {
		if f.Stats {
			WriteStats(os.Stderr, tool, st)
		}
	}
}

// WriteStats prints the process-wide session counters and, when a store
// is attached, its tier counters. The leading `simulated=` field is the
// CI contract: a warm run over an unchanged source tree reports
// simulated=0.
func WriteStats(w io.Writer, tool string, st *runstore.Store) {
	t := metrics.TotalStats()
	fmt.Fprintf(w, "%s: run cache: simulated=%d disk_hits=%d mem_hits=%d uncacheable=%d steps_simulated=%d steps_saved=%d\n",
		tool, t.Simulated(), t.DiskHits, t.Hits, t.Uncacheable, t.StepsSimulated, t.StepsSaved)
	if st == nil {
		fmt.Fprintf(w, "%s: run store: disabled\n", tool)
		return
	}
	s := st.Stats()
	fmt.Fprintf(w, "%s: run store: hits=%d misses=%d puts=%d evictions=%d corrupt=%d bytes=%d dir=%s\n",
		tool, s.Hits, s.Misses, s.Puts, s.Evictions, s.Corrupt, s.Bytes, st.Dir())
}
