// Package rand64 provides a small, fully deterministic pseudo-random number
// generator used by the simulators for non-congestion loss processes and
// randomized initial configurations.
//
// The generator is an xorshift64* PRNG seeded through a SplitMix64 stage so
// that nearby seeds (0, 1, 2, ...) produce uncorrelated streams. Unlike
// math/rand, the sequence produced for a given seed is guaranteed stable
// across Go releases, which keeps every experiment in this repository
// reproducible bit-for-bit.
package rand64

import "math"

// Source is a deterministic PRNG. The zero value is NOT valid; use New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Any seed, including 0, is valid.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to the stream identified by seed.
func (s *Source) Seed(seed uint64) {
	// SplitMix64 scramble so that consecutive seeds diverge immediately.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b // xorshift state must be non-zero
	}
	s.state = z
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rand64: Intn with non-positive n")
	}
	// Lemire-style bounded generation with rejection to remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rand64: Range with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}
