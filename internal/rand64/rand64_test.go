package rand64

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := New(0)
	b := New(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if v := s.Uint64(); v == 0 {
		// A single zero output is possible in theory but with SplitMix64
		// scrambling the first value for seed 0 is known non-zero.
		t.Fatal("first output for seed 0 is zero; state scramble broken")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: count %d deviates >10%% from %v", k, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(9)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) = %v out of range", v)
		}
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(1,0) did not panic")
		}
	}()
	New(1).Range(1, 0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	s := New(29)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
