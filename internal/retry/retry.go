// Package retry is the repository's one backoff implementation: jittered
// exponential delays with an optional cumulative budget, shared by the
// sweep engine's reseeded per-cell retries and by axiomd's shard-respawn
// and admission machinery, so every "wait and try again" loop in the
// tree backs off the same way and is tuned by the same knobs.
//
// Jitter is deterministic: it is derived from a caller-supplied seed via
// the SplitMix64 finalizer, never from a global RNG. Two processes (or
// two runs of one test) that start from the same seed produce the same
// delay sequence, which keeps retried sweeps reproducible while still
// decorrelating the cells of one grid from each other.
package retry

import (
	"context"
	"time"
)

// Policy describes an exponential-backoff schedule. The zero value is
// usable: one attempt, no waiting. Fields left zero select the
// documented defaults.
type Policy struct {
	// Attempts is the total number of tries Budget-style loops allow
	// (first attempt included). 0 or negative means unlimited; callers
	// that manage their own attempt count (the sweep harness) ignore it.
	Attempts int
	// Base is the delay before the first retry (default 5ms).
	Base time.Duration
	// Max caps an individual delay after exponential growth (default
	// 320ms, the sweep engine's historical ceiling).
	Max time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter)
	// times its nominal value. 0 disables jitter; values are clamped to
	// [0, 1]. Jitter is derived deterministically from the Backoff seed.
	Jitter float64
	// Budget caps the cumulative time spent sleeping across one
	// Backoff's lifetime; once the next delay would exceed it, Next
	// reports exhaustion. 0 means no budget.
	Budget time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 320 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the jittered delay preceding retry `attempt` (0-based:
// attempt 0 is the wait between the first failure and the first retry).
// It is pure — same policy, attempt, and seed give the same duration —
// so callers may consult delays out of order.
func (p Policy) Delay(attempt int, seed uint64) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		// mix64 of (seed, attempt) → uniform in [0,1); spread the delay
		// over [1-j, 1+j) around its nominal value.
		u := float64(mix64(seed^(uint64(attempt)+1)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		d *= 1 - p.Jitter + 2*p.Jitter*u
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Backoff walks one retry loop's delay sequence while enforcing the
// policy's attempt and budget caps. Not safe for concurrent use.
type Backoff struct {
	p       Policy
	seed    uint64
	attempt int
	spent   time.Duration
}

// Start begins a backoff walk. seed feeds the deterministic jitter; use
// a stable per-task identity (a sweep cell seed, a shard index) so the
// sequence is reproducible.
func (p Policy) Start(seed uint64) *Backoff {
	return &Backoff{p: p.withDefaults(), seed: seed}
}

// Next returns the delay to wait before the next retry, or ok=false when
// the policy's attempt count or sleep budget is exhausted.
func (b *Backoff) Next() (d time.Duration, ok bool) {
	// Attempts counts tries, so a policy of N attempts yields N-1 delays.
	if b.p.Attempts > 0 && b.attempt >= b.p.Attempts-1 {
		return 0, false
	}
	d = b.p.Delay(b.attempt, b.seed)
	if b.p.Budget > 0 && b.spent+d > b.p.Budget {
		return 0, false
	}
	b.attempt++
	b.spent += d
	return d, true
}

// Attempt returns how many delays have been taken so far.
func (b *Backoff) Attempt() int { return b.attempt }

// Sleep advances the walk and blocks for the delay, returning early with
// ctx.Err() on cancellation. ok=false means the schedule is exhausted
// and the caller should give up (no sleeping happened).
func (b *Backoff) Sleep(ctx context.Context) (ok bool, err error) {
	d, ok := b.Next()
	if !ok {
		return false, nil
	}
	return true, Sleep(ctx, d)
}

// Sleep blocks for d or until ctx is done, whichever comes first,
// returning ctx.Err() in the latter case. A non-positive d returns
// immediately (after a ctx check) without arming a timer.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// mix64 is the SplitMix64 finalizer (the same mixer engine.CellSeed
// uses): bijective and avalanching, so consecutive attempt numbers give
// statistically independent jitter draws.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
