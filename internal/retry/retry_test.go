package retry

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Max: 320 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		320 * time.Millisecond, 320 * time.Millisecond, 320 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i, 0); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for attempt := 0; attempt < 8; attempt++ {
		for seed := uint64(0); seed < 16; seed++ {
			a := p.Delay(attempt, seed)
			b := p.Delay(attempt, seed)
			if a != b {
				t.Fatalf("jitter not deterministic: %v vs %v (attempt %d seed %d)", a, b, attempt, seed)
			}
			nominal := p.withDefaults().Base
			for i := 0; i < attempt; i++ {
				nominal *= 2
				if nominal > p.Max {
					nominal = p.Max
					break
				}
			}
			lo := time.Duration(float64(nominal) * 0.5)
			hi := time.Duration(float64(nominal) * 1.5)
			if a < lo || a >= hi {
				t.Fatalf("Delay(%d, %d) = %v outside [%v, %v)", attempt, seed, a, lo, hi)
			}
		}
	}
	// Different seeds must not all collapse onto one delay.
	distinct := map[time.Duration]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		distinct[p.Delay(3, seed)] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("only %d distinct jittered delays across 32 seeds", len(distinct))
	}
}

func TestBackoffAttemptCap(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Millisecond, Jitter: 0}
	b := p.Start(7)
	n := 0
	for {
		_, ok := b.Next()
		if !ok {
			break
		}
		n++
		if n > 10 {
			t.Fatal("backoff never exhausted")
		}
	}
	if n != 2 { // 3 attempts = 2 inter-attempt delays
		t.Fatalf("got %d delays for a 3-attempt policy, want 2", n)
	}
}

func TestBackoffBudget(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0, Budget: 25 * time.Millisecond}
	b := p.Start(0)
	var total time.Duration
	n := 0
	for {
		d, ok := b.Next()
		if !ok {
			break
		}
		total += d
		n++
		if n > 100 {
			t.Fatal("budget never exhausted")
		}
	}
	if n != 2 || total != 20*time.Millisecond {
		t.Fatalf("budget walk gave %d delays totalling %v, want 2 totalling 20ms", n, total)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep ignored a canceled context")
	}
	start := time.Now()
	if err := Sleep(context.Background(), 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
	// Exhausted Backoff.Sleep must not block.
	b := Policy{Attempts: 1}.Start(0)
	if ok, _ := b.Sleep(context.Background()); ok {
		t.Fatal("exhausted backoff claimed to sleep")
	}
}
