package axioms

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// Theorem1Bound returns the efficiency guaranteed by Theorem 1: any
// protocol that is α-convergent and β-fast-utilizing for some β > 0 is at
// least α/(2−α)-efficient. alpha must lie in [0, 1].
func Theorem1Bound(alpha float64) float64 {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("axioms: convergence α must be in [0,1], got %v", alpha))
	}
	return alpha / (2 - alpha)
}

// Theorem2Bound returns the TCP-friendliness ceiling of Theorem 2: any
// loss-based protocol that is α-fast-utilizing and β-efficient is at most
// 3(1−β)/(α(1+β))-TCP-friendly. The bound is tight: AIMD(α,β) attains it.
func Theorem2Bound(alphaFast, betaEff float64) float64 {
	if alphaFast <= 0 {
		panic(fmt.Sprintf("axioms: fast-utilization α must be positive, got %v", alphaFast))
	}
	if betaEff < 0 || betaEff > 1 {
		panic(fmt.Sprintf("axioms: efficiency β must be in [0,1], got %v", betaEff))
	}
	return 3 * (1 - betaEff) / (alphaFast * (1 + betaEff))
}

// AIMDFriendliness returns the exact TCP-friendliness of AIMD(a,b) from
// Table 1 — the point protocol showing Theorem 2's bound is tight.
func AIMDFriendliness(a, b float64) float64 { return Theorem2Bound(a, b) }

// Theorem3Bound returns the TCP-friendliness ceiling of Theorem 3: any
// loss-based protocol that is α-fast-utilizing, β-efficient and ε-robust
// (ε > 0) is at most
//
//	3(1−β) / ( (4·(C+τ)/(1−ε) − α) · (1+β) )
//
// TCP-friendly. The paper assumes C+τ > α/2, which keeps the denominator
// positive.
func Theorem3Bound(alphaFast, betaEff, eps, c, tau float64) float64 {
	if eps < 0 || eps >= 1 {
		panic(fmt.Sprintf("axioms: robustness ε must be in [0,1), got %v", eps))
	}
	if c+tau <= alphaFast/2 {
		panic(fmt.Sprintf("axioms: theorem 3 requires C+τ > α/2 (C+τ=%v, α=%v)", c+tau, alphaFast))
	}
	den := (4*(c+tau)/(1-eps) - alphaFast) * (1 + betaEff)
	return 3 * (1 - betaEff) / den
}

// Claim1Holds states Claim 1 as a checkable predicate over measured
// scores: a loss-based protocol cannot be both 0-loss and α-fast-utilizing
// for α > 0. Given a protocol's measured tail loss and fast-utilization
// score, it returns true when the claim's exclusion is respected (i.e.
// the combination "0-loss and fast-utilizing" does NOT occur). tol guards
// against floating-point noise in the measurements.
func Claim1Holds(lossBased bool, tailLoss, fastUtil, tol float64) bool {
	if !lossBased {
		return true // the claim only constrains loss-based protocols
	}
	zeroLoss := tailLoss <= tol
	fast := fastUtil > tol
	return !(zeroLoss && fast)
}

// FamilyRow maps a protocol instance from the internal/protocol package to
// its Table 1 row evaluated at link lp. It returns an error for protocols
// outside the table (PCC, Vegas, probes, custom functions).
func FamilyRow(p protocol.Protocol, lp Link) (Row, error) {
	if err := lp.Validate(); err != nil {
		return Row{}, err
	}
	switch q := p.(type) {
	case *protocol.AIMD:
		return AIMDRow(q.A, q.B, lp), nil
	case *protocol.MIMD:
		return MIMDRow(q.A, q.B, lp), nil
	case *protocol.Binomial:
		return BinRow(q.A, q.B, q.K, q.L, lp), nil
	case *protocol.Cubic:
		return CubicRow(q.C, q.B, lp), nil
	case *protocol.RobustAIMD:
		return RobustAIMDRow(q.A, q.B, q.Eps, lp), nil
	default:
		return Row{}, fmt.Errorf("axioms: no Table 1 row for %s", p.Name())
	}
}

// Table1 returns the five rows of Table 1 for the paper's evaluated
// parameterizations — Reno, Scalable, the SQRT binomial, Linux Cubic and
// Robust-AIMD(1, 0.8, 0.01) — at link lp.
func Table1(lp Link) []Row {
	return []Row{
		AIMDRow(1, 0.5, lp),
		MIMDRow(1.01, 0.875, lp),
		BinRow(1, 0.5, 0.5, 0.5, lp),
		CubicRow(0.4, 0.8, lp),
		RobustAIMDRow(1, 0.8, 0.01, lp),
	}
}

// Feasible reports whether a (fast-utilization, efficiency,
// TCP-friendliness) triple is feasible for loss-based protocols per
// Theorem 2: friendliness may not exceed Theorem2Bound(fast, eff).
func Feasible(fast, eff, friendly float64) bool {
	if fast <= 0 {
		// Theorem 2 constrains only α > 0; anything is feasible at α = 0.
		return true
	}
	return friendly <= Theorem2Bound(fast, eff)+1e-12
}

// FeasibleRobust reports whether a (fast-utilization, efficiency,
// robustness, TCP-friendliness) 4-tuple is feasible per Theorem 3.
func FeasibleRobust(fast, eff, eps, friendly, c, tau float64) bool {
	if fast <= 0 || eps <= 0 {
		return Feasible(fast, eff, friendly)
	}
	return friendly <= Theorem3Bound(fast, eff, eps, c, tau)+1e-12
}

// MaxRobustFriendliness returns, for a protocol constrained to be
// α-fast-utilizing, β-efficient and ε-robust on a link (C, τ), the largest
// TCP-friendliness it may attain (Theorem 3), or Theorem 2's bound when
// ε = 0.
func MaxRobustFriendliness(alphaFast, betaEff, eps, c, tau float64) float64 {
	if eps <= 0 {
		return Theorem2Bound(alphaFast, betaEff)
	}
	return Theorem3Bound(alphaFast, betaEff, eps, c, tau)
}

// Infinity is a convenience for comparing against MIMD's unbounded
// fast-utilization score.
var Infinity = math.Inf(1)
