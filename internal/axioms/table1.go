// Package axioms encodes the theory of Sections 4 and 5.1 of "An Axiomatic
// Approach to Congestion Control": the closed-form protocol
// characterizations of Table 1 and the bounds of Claim 1 and Theorems 1-5.
//
// Table 1 gives, for each protocol family, its score in each metric as a
// function of the protocol parameters and the link parameters (capacity C,
// buffer τ, sender count n), plus a worst-case bound across all link
// parameters (the paper's angle-bracket values). Rows here expose both.
//
// Transcription notes (kept faithful to the printed table, with two
// reconstructions documented inline):
//
//   - §2 defines MIMD(a,b) as multiplication by the factor a on loss-free
//     steps (so TCP Scalable is MIMD(1.01, 0.875)). Table 1's MIMD
//     loss-avoidance entry <a/(1+a)> is stated for the increment form
//     x←x(1+a); under the factor form used everywhere else in this
//     repository the same bound reads (a−1)/a, which is what MIMDRow
//     returns (identical quantity, reparameterized).
//   - Table 1's BIN loss-avoidance entry prints as
//     1 − (C+τ)/(C+τ+a((C+τ)/n)^k); evaluated at k = 0 it fails to reduce
//     to the AIMD entry (n·a missing). BinRow uses the derivation the
//     paper's model implies: near X = C+τ every sender holds x ≈ (C+τ)/n
//     and increases by a/x^k, so the aggregate per-step increase is
//     n·a·(n/(C+τ))^k and the post-overshoot loss rate is
//     1 − (C+τ)/(C+τ + n·a·(n/(C+τ))^k), which reduces to the AIMD entry
//     at k = 0.
package axioms

import (
	"fmt"
	"math"
)

// Link carries the network parameters Table 1's nuanced (non-worst-case)
// entries depend on.
type Link struct {
	C   float64 // capacity B·2Θ in MSS
	Tau float64 // buffer size τ in MSS
	N   int     // number of senders
}

// Validate reports whether the link parameters are usable.
func (l Link) Validate() error {
	if l.C <= 0 {
		return fmt.Errorf("axioms: capacity must be positive, got %v", l.C)
	}
	if l.Tau < 0 {
		return fmt.Errorf("axioms: buffer must be non-negative, got %v", l.Tau)
	}
	if l.N < 1 {
		return fmt.Errorf("axioms: need at least one sender, got %d", l.N)
	}
	return nil
}

// Scores holds one protocol's theoretical metric values. Orientation
// follows the paper: Efficiency, FastUtilization, TCPFriendliness,
// Fairness, Convergence and Robustness are better when larger;
// LossAvoidance is better when smaller. FastUtilization may be +Inf
// (MIMD).
type Scores struct {
	Efficiency      float64
	LossAvoidance   float64
	FastUtilization float64
	TCPFriendliness float64
	Fairness        float64
	Convergence     float64
	Robustness      float64
}

// Row is one line of Table 1: the parameter-dependent scores evaluated at
// a concrete link, and the worst-case (angle-bracket) bounds that hold
// across all link parameters.
type Row struct {
	Name      string
	At        Scores // evaluated at the given Link
	WorstCase Scores // the paper's angle-bracket values
}

// AIMDRow returns Table 1's AIMD(a,b) row at link lp.
func AIMDRow(a, b float64, lp Link) Row {
	eff := math.Min(1, b*(1+lp.Tau/lp.C))
	loss := 1 - (lp.C+lp.Tau)/(lp.C+lp.Tau+float64(lp.N)*a)
	friendly := 3 * (1 - b) / (a * (1 + b))
	conv := 2 * b / (1 + b)
	return Row{
		Name: fmt.Sprintf("AIMD(%g,%g)", a, b),
		At: Scores{
			Efficiency:      eff,
			LossAvoidance:   loss,
			FastUtilization: a,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
		WorstCase: Scores{
			Efficiency:      b,
			LossAvoidance:   1,
			FastUtilization: a,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
	}
}

// MIMDRow returns Table 1's MIMD(a,b) row at link lp, with a the loss-free
// multiplicative factor (a > 1), per §2's definition. See the package
// comment for the loss-avoidance reparameterization.
func MIMDRow(a, b float64, lp Link) Row {
	eff := math.Min(1, b*(1+lp.Tau/lp.C))
	// Worst-case single-step overshoot: X grows by factor a past C+τ.
	lossWorst := (a - 1) / a
	// TCP-friendliness: the nuanced entry from Table 1. The number of
	// loss-free steps MIMD needs to recover a factor-b decrease is
	// log_a(1/b); the entry charges two such recoveries against the
	// link's C+τ budget.
	rec := 2 * math.Log(1/b) / math.Log(a)
	friendly := 0.0
	if lp.C+lp.Tau > rec {
		friendly = rec / (lp.C + lp.Tau - rec)
	} else {
		friendly = math.Inf(1) // degenerate tiny link; bound vacuous
	}
	conv := 2 * b / (1 + b)
	return Row{
		Name: fmt.Sprintf("MIMD(%g,%g)", a, b),
		At: Scores{
			Efficiency:      eff,
			LossAvoidance:   lossWorst,
			FastUtilization: math.Inf(1),
			TCPFriendliness: friendly,
			Fairness:        0,
			Convergence:     conv,
			Robustness:      0,
		},
		WorstCase: Scores{
			Efficiency:      b,
			LossAvoidance:   lossWorst,
			FastUtilization: math.Inf(1),
			TCPFriendliness: 0,
			Fairness:        0,
			Convergence:     conv,
			Robustness:      0,
		},
	}
}

// BinRow returns Table 1's BIN(a,b,k,l) row at link lp. Parameter order
// follows §2's definition BIN(a,b,k,l): k is the increase exponent
// (x += a/x^k), l the decrease exponent (x −= b·x^l).
func BinRow(a, b, k, l float64, lp Link) Row {
	// Decrease at window x removes b·x^l; for the efficiency bound the
	// paper evaluates the relative decrease at l = 1 scale: factor (1−b).
	eff := math.Min(1, (1-b)*(1+lp.Tau/lp.C))
	x := (lp.C + lp.Tau) / float64(lp.N)
	aggInc := float64(lp.N) * a / math.Pow(x, k)
	loss := aggInc / (lp.C + lp.Tau + aggInc)
	fast := a
	fastWorst := a
	if k > 0 {
		fast = 0
		fastWorst = 0
	}
	var friendly float64
	if l+k >= 1 {
		friendly = math.Sqrt(1.5) * math.Pow(b/a, 1/(1+l+k))
	}
	conv := (2 - 2*b) / (2 - b)
	return Row{
		Name: fmt.Sprintf("BIN(%g,%g,%g,%g)", a, b, k, l),
		At: Scores{
			Efficiency:      eff,
			LossAvoidance:   loss,
			FastUtilization: fast,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
		WorstCase: Scores{
			Efficiency:      1 - b,
			LossAvoidance:   1,
			FastUtilization: fastWorst,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
	}
}

// CubicRow returns Table 1's CUBIC(c,b) row at link lp.
func CubicRow(c, b float64, lp Link) Row {
	eff := math.Min(1, b*(1+lp.Tau/lp.C))
	loss := 1 - (lp.C+lp.Tau)/(lp.C+lp.Tau+float64(lp.N)*c)
	friendly := math.Sqrt(1.5) * math.Pow(4*(1-b)/(c*(3+b)*(lp.C+lp.Tau)), 0.25)
	conv := 2 * b / (1 + b)
	return Row{
		Name: fmt.Sprintf("CUBIC(%g,%g)", c, b),
		At: Scores{
			Efficiency:      eff,
			LossAvoidance:   loss,
			FastUtilization: c,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
		WorstCase: Scores{
			Efficiency:      b,
			LossAvoidance:   1,
			FastUtilization: c,
			TCPFriendliness: 0,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      0,
		},
	}
}

// RobustAIMDRow returns Table 1's Robust-AIMD(a,b,k) row at link lp, where
// k is the tolerated loss rate ε.
func RobustAIMDRow(a, b, k float64, lp Link) Row {
	eff := math.Min(1, b*(1+lp.Tau/lp.C)/(1-k))
	na := float64(lp.N) * a
	loss := ((lp.C+lp.Tau)*k + na*(1-k)) / ((lp.C + lp.Tau) + na*(1-k))
	friendly := Theorem3Bound(a, b, k, lp.C, lp.Tau)
	conv := 2 * b / (1 + b)
	return Row{
		Name: fmt.Sprintf("RobustAIMD(%g,%g,%g)", a, b, k),
		At: Scores{
			Efficiency:      eff,
			LossAvoidance:   loss,
			FastUtilization: a,
			TCPFriendliness: friendly,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      k,
		},
		WorstCase: Scores{
			Efficiency:      math.Min(1, b/(1-k)),
			LossAvoidance:   1,
			FastUtilization: a,
			TCPFriendliness: 0,
			Fairness:        1,
			Convergence:     conv,
			Robustness:      k,
		},
	}
}
