package axioms

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTheorem1Bound(t *testing.T) {
	cases := []struct{ alpha, want float64 }{
		{0, 0},
		{1, 1},
		{0.5, 1.0 / 3},
		{0.9, 0.9 / 1.1},
	}
	for _, c := range cases {
		if got := Theorem1Bound(c.alpha); !near(got, c.want, 1e-12) {
			t.Errorf("Theorem1Bound(%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
}

func TestTheorem1BoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for α > 1")
		}
	}()
	Theorem1Bound(1.5)
}

func TestTheorem2Bound(t *testing.T) {
	// Reno's parameters give exactly 1: AIMD(1, 0.5) is 1-TCP-friendly.
	if got := Theorem2Bound(1, 0.5); !near(got, 1, 1e-12) {
		t.Errorf("Theorem2Bound(1,0.5) = %v, want 1", got)
	}
	// Higher efficiency costs friendliness: β = 0.8 ⇒ 3·0.2/1.8 = 1/3.
	if got := Theorem2Bound(1, 0.8); !near(got, 1.0/3, 1e-12) {
		t.Errorf("Theorem2Bound(1,0.8) = %v, want 1/3", got)
	}
	// Faster utilization costs friendliness: α = 2 halves the bound.
	if got := Theorem2Bound(2, 0.5); !near(got, 0.5, 1e-12) {
		t.Errorf("Theorem2Bound(2,0.5) = %v, want 0.5", got)
	}
}

func TestTheorem2Panics(t *testing.T) {
	for i, f := range []func(){
		func() { Theorem2Bound(0, 0.5) },
		func() { Theorem2Bound(1, -0.1) },
		func() { Theorem2Bound(1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAIMDFriendlinessMatchesTheorem2(t *testing.T) {
	if AIMDFriendliness(1.5, 0.7) != Theorem2Bound(1.5, 0.7) {
		t.Fatal("AIMD friendliness must equal Theorem 2's tight bound")
	}
}

func TestTheorem3Bound(t *testing.T) {
	// At ε = 0, Theorem 3's denominator term 4(C+τ) replaces Theorem 2's
	// α·(C+τ)-free form; the bound is strictly below Theorem 2's for any
	// realistic link (C+τ ≫ α).
	t2 := Theorem2Bound(1, 0.8)
	t3 := Theorem3Bound(1, 0.8, 0.01, 100, 20)
	if t3 >= t2 {
		t.Errorf("Theorem3 (%v) not tighter than Theorem2 (%v)", t3, t2)
	}
	// Exact value: 3·0.2 / ((4·120/0.99 − 1)·1.8).
	want := 0.6 / ((4*120/0.99 - 1) * 1.8)
	if !near(t3, want, 1e-12) {
		t.Errorf("Theorem3Bound = %v, want %v", t3, want)
	}
}

func TestTheorem3MonotoneInEps(t *testing.T) {
	// More robustness ⇒ (weakly) less TCP-friendliness allowed.
	prev := Theorem3Bound(1, 0.8, 0.001, 100, 20)
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.3} {
		cur := Theorem3Bound(1, 0.8, eps, 100, 20)
		if cur > prev {
			t.Fatalf("bound rose with ε: %v -> %v at ε=%v", prev, cur, eps)
		}
		prev = cur
	}
}

func TestTheorem3Panics(t *testing.T) {
	for i, f := range []func(){
		func() { Theorem3Bound(1, 0.8, -0.1, 100, 20) },
		func() { Theorem3Bound(1, 0.8, 1, 100, 20) },
		func() { Theorem3Bound(10, 0.8, 0.01, 2, 0) }, // C+τ ≤ α/2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestClaim1Holds(t *testing.T) {
	// A loss-based protocol measured 0-loss and fast-utilizing violates
	// the claim.
	if Claim1Holds(true, 0, 1, 1e-9) {
		t.Error("0-loss + fast-utilizing should violate Claim 1")
	}
	// 0-loss but not fast-utilizing: fine (the Claim 1 probe).
	if !Claim1Holds(true, 0, 0, 1e-9) {
		t.Error("0-loss + stalled should satisfy Claim 1")
	}
	// Lossy and fast-utilizing: fine (AIMD).
	if !Claim1Holds(true, 0.01, 1, 1e-9) {
		t.Error("lossy + fast should satisfy Claim 1")
	}
	// Non-loss-based protocols are unconstrained.
	if !Claim1Holds(false, 0, 1, 1e-9) {
		t.Error("claim must not constrain RTT-based protocols")
	}
}

func TestFeasible(t *testing.T) {
	// Reno's own point is feasible (it's on the frontier).
	if !Feasible(1, 0.5, 1) {
		t.Error("Reno's point must be feasible")
	}
	// Anything above the bound is infeasible.
	if Feasible(1, 0.5, 1.01) {
		t.Error("point above Theorem 2 accepted")
	}
	// α = 0 is unconstrained.
	if !Feasible(0, 0.99, 100) {
		t.Error("α=0 must be unconstrained")
	}
}

func TestFeasibleRobust(t *testing.T) {
	bound := Theorem3Bound(1, 0.8, 0.01, 100, 20)
	if !FeasibleRobust(1, 0.8, 0.01, bound, 100, 20) {
		t.Error("the Theorem 3 point itself must be feasible")
	}
	if FeasibleRobust(1, 0.8, 0.01, bound*1.1, 100, 20) {
		t.Error("point above Theorem 3 accepted")
	}
	// ε = 0 falls back to Theorem 2.
	if !FeasibleRobust(1, 0.5, 0, 1, 100, 20) {
		t.Error("ε=0 must use Theorem 2's bound")
	}
}

func TestMaxRobustFriendliness(t *testing.T) {
	if got := MaxRobustFriendliness(1, 0.5, 0, 100, 20); got != Theorem2Bound(1, 0.5) {
		t.Errorf("ε=0: got %v", got)
	}
	if got := MaxRobustFriendliness(1, 0.5, 0.01, 100, 20); got != Theorem3Bound(1, 0.5, 0.01, 100, 20) {
		t.Errorf("ε>0: got %v", got)
	}
}

// Property: Theorem 2's bound is decreasing in both α and β.
func TestQuickTheorem2Monotone(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		alpha1 := math.Mod(math.Abs(a1), 5) + 0.1
		alpha2 := math.Mod(math.Abs(a2), 5) + 0.1
		beta1 := math.Mod(math.Abs(b1), 0.98)
		beta2 := math.Mod(math.Abs(b2), 0.98)
		for _, v := range []float64{alpha1, alpha2, beta1, beta2} {
			if math.IsNaN(v) {
				return true
			}
		}
		if alpha1 > alpha2 {
			alpha1, alpha2 = alpha2, alpha1
		}
		if beta1 > beta2 {
			beta1, beta2 = beta2, beta1
		}
		return Theorem2Bound(alpha1, beta1) >= Theorem2Bound(alpha2, beta1)-1e-12 &&
			Theorem2Bound(alpha1, beta1) >= Theorem2Bound(alpha1, beta2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 3's bound never exceeds Theorem 2's on realistic links
// (C+τ ≥ 1 ≥ α/4 suffices for the denominator comparison).
func TestQuickTheorem3TighterThanTheorem2(t *testing.T) {
	f := func(aRaw, bRaw, eRaw float64) bool {
		alpha := math.Mod(math.Abs(aRaw), 2) + 0.1
		beta := math.Mod(math.Abs(bRaw), 0.98)
		eps := math.Mod(math.Abs(eRaw), 0.5) + 0.001
		for _, v := range []float64{alpha, beta, eps} {
			if math.IsNaN(v) {
				return true
			}
		}
		c, tau := 100.0, 20.0
		return Theorem3Bound(alpha, beta, eps, c, tau) <= Theorem2Bound(alpha, beta)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
