package axioms_test

import (
	"fmt"

	"repro/internal/axioms"
)

// ExampleTheorem2Bound evaluates the paper's central trade-off: a
// loss-based protocol that is α-fast-utilizing and β-efficient can be at
// most 3(1−β)/(α(1+β))-TCP-friendly. TCP Reno's own parameters sit
// exactly at friendliness 1.
func ExampleTheorem2Bound() {
	fmt.Printf("%.4f\n", axioms.Theorem2Bound(1, 0.5)) // Reno's point
	fmt.Printf("%.4f\n", axioms.Theorem2Bound(1, 0.8)) // more efficient ⇒ less friendly
	// Output:
	// 1.0000
	// 0.3333
}

// ExampleAIMDRow evaluates one Table 1 row at a concrete link.
func ExampleAIMDRow() {
	row := axioms.AIMDRow(1, 0.5, axioms.Link{C: 100, Tau: 20, N: 2})
	fmt.Printf("efficiency %.2f, convergence %.3f, worst-case efficiency <%.1f>\n",
		row.At.Efficiency, row.At.Convergence, row.WorstCase.Efficiency)
	// Output:
	// efficiency 0.60, convergence 0.667, worst-case efficiency <0.5>
}
