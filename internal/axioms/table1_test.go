package axioms

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/protocol"
)

var testLink = Link{C: 100, Tau: 20, N: 2}

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLinkValidate(t *testing.T) {
	if err := testLink.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Link{
		{C: 0, Tau: 0, N: 1},
		{C: 100, Tau: -1, N: 1},
		{C: 100, Tau: 0, N: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid link accepted", i)
		}
	}
}

func TestAIMDRowReno(t *testing.T) {
	r := AIMDRow(1, 0.5, testLink)
	// Efficiency: min(1, 0.5·(1+0.2)) = 0.6.
	if !near(r.At.Efficiency, 0.6, 1e-12) {
		t.Errorf("efficiency = %v, want 0.6", r.At.Efficiency)
	}
	// Loss: 1 − 120/(120+2·1) = 2/122.
	if !near(r.At.LossAvoidance, 2.0/122, 1e-12) {
		t.Errorf("loss = %v, want %v", r.At.LossAvoidance, 2.0/122)
	}
	if r.At.FastUtilization != 1 {
		t.Errorf("fast = %v, want 1", r.At.FastUtilization)
	}
	// Friendliness: 3·0.5/(1·1.5) = 1 — Reno is 1-friendly to itself.
	if !near(r.At.TCPFriendliness, 1, 1e-12) {
		t.Errorf("friendliness = %v, want 1", r.At.TCPFriendliness)
	}
	if r.At.Fairness != 1 {
		t.Errorf("fairness = %v, want 1", r.At.Fairness)
	}
	// Convergence: 2·0.5/1.5 = 2/3.
	if !near(r.At.Convergence, 2.0/3, 1e-12) {
		t.Errorf("convergence = %v, want 2/3", r.At.Convergence)
	}
	if r.At.Robustness != 0 {
		t.Errorf("robustness = %v, want 0", r.At.Robustness)
	}
	// Worst cases: <b>, <1>, <a>, same friendliness, <1>, <2b/(1+b)>.
	if r.WorstCase.Efficiency != 0.5 || r.WorstCase.LossAvoidance != 1 {
		t.Errorf("worst case = %+v", r.WorstCase)
	}
}

func TestAIMDEfficiencyCapsAtOne(t *testing.T) {
	// Deep buffer: b(1+τ/C) > 1 must clamp.
	r := AIMDRow(1, 0.9, Link{C: 100, Tau: 50, N: 1})
	if r.At.Efficiency != 1 {
		t.Errorf("efficiency = %v, want capped 1", r.At.Efficiency)
	}
}

func TestMIMDRowScalable(t *testing.T) {
	r := MIMDRow(1.01, 0.875, testLink)
	if !near(r.At.Efficiency, math.Min(1, 0.875*1.2), 1e-12) {
		t.Errorf("efficiency = %v", r.At.Efficiency)
	}
	// Loss bound under the factor form: (a−1)/a.
	if !near(r.At.LossAvoidance, 0.01/1.01, 1e-12) {
		t.Errorf("loss = %v, want %v", r.At.LossAvoidance, 0.01/1.01)
	}
	if !math.IsInf(r.At.FastUtilization, 1) {
		t.Errorf("fast = %v, want +Inf", r.At.FastUtilization)
	}
	if r.At.Fairness != 0 || r.WorstCase.Fairness != 0 {
		t.Errorf("MIMD fairness must be 0, got %v/%v", r.At.Fairness, r.WorstCase.Fairness)
	}
	if r.WorstCase.TCPFriendliness != 0 {
		t.Errorf("MIMD worst-case friendliness = %v, want 0", r.WorstCase.TCPFriendliness)
	}
	// Nuanced friendliness: rec/(C+τ−rec) with rec = 2·ln(1/b)/ln(a).
	rec := 2 * math.Log(1/0.875) / math.Log(1.01)
	want := rec / (120 - rec)
	if !near(r.At.TCPFriendliness, want, 1e-9) {
		t.Errorf("friendliness = %v, want %v", r.At.TCPFriendliness, want)
	}
}

func TestMIMDTinyLinkDegenerate(t *testing.T) {
	// When 2·log_a(1/b) exceeds C+τ the nuanced entry is vacuous (+Inf).
	r := MIMDRow(1.01, 0.5, Link{C: 10, Tau: 0, N: 1})
	if !math.IsInf(r.At.TCPFriendliness, 1) {
		t.Errorf("tiny-link friendliness = %v, want +Inf", r.At.TCPFriendliness)
	}
}

func TestBinRowReducesToAIMDAtK0L1(t *testing.T) {
	bin := BinRow(1, 0.5, 0, 1, testLink)
	aimd := AIMDRow(1, 0.5, testLink)
	if !near(bin.At.Efficiency, aimd.At.Efficiency, 1e-12) {
		t.Errorf("efficiency %v != %v", bin.At.Efficiency, aimd.At.Efficiency)
	}
	if !near(bin.At.LossAvoidance, aimd.At.LossAvoidance, 1e-12) {
		t.Errorf("loss %v != %v", bin.At.LossAvoidance, aimd.At.LossAvoidance)
	}
	if bin.At.FastUtilization != 1 {
		t.Errorf("fast = %v, want 1", bin.At.FastUtilization)
	}
}

func TestBinRowSQRT(t *testing.T) {
	// SQRT = BIN(1, 0.5, 0.5, 0.5): k > 0 ⇒ 0-fast-utilizing; l+k = 1 ⇒
	// friendliness √1.5·(b/a)^(1/2).
	r := BinRow(1, 0.5, 0.5, 0.5, testLink)
	if r.At.FastUtilization != 0 {
		t.Errorf("fast = %v, want 0", r.At.FastUtilization)
	}
	want := math.Sqrt(1.5) * math.Pow(0.5, 1/2.0)
	if !near(r.At.TCPFriendliness, want, 1e-12) {
		t.Errorf("friendliness = %v, want %v", r.At.TCPFriendliness, want)
	}
	// Convergence: (2−2b)/(2−b) = 1/1.5.
	if !near(r.At.Convergence, 1/1.5, 1e-12) {
		t.Errorf("convergence = %v, want %v", r.At.Convergence, 1/1.5)
	}
}

func TestBinRowFriendlinessZeroBelowUnitExponent(t *testing.T) {
	// l + k < 1 ⇒ <0>-TCP-friendly.
	r := BinRow(1, 0.5, 0.2, 0.2, testLink)
	if r.At.TCPFriendliness != 0 {
		t.Errorf("friendliness = %v, want 0", r.At.TCPFriendliness)
	}
}

func TestCubicRowLinux(t *testing.T) {
	r := CubicRow(0.4, 0.8, testLink)
	if !near(r.At.Efficiency, math.Min(1, 0.8*1.2), 1e-12) {
		t.Errorf("efficiency = %v", r.At.Efficiency)
	}
	if !near(r.At.LossAvoidance, 1-120/(120+2*0.4), 1e-12) {
		t.Errorf("loss = %v", r.At.LossAvoidance)
	}
	if r.At.FastUtilization != 0.4 {
		t.Errorf("fast = %v, want c = 0.4", r.At.FastUtilization)
	}
	want := math.Sqrt(1.5) * math.Pow(4*0.2/(0.4*3.8*120), 0.25)
	if !near(r.At.TCPFriendliness, want, 1e-12) {
		t.Errorf("friendliness = %v, want %v", r.At.TCPFriendliness, want)
	}
	// Cubic friendliness decays with capacity (the (C+τ)^(−1/4) factor).
	big := CubicRow(0.4, 0.8, Link{C: 10000, Tau: 20, N: 2})
	if big.At.TCPFriendliness >= r.At.TCPFriendliness {
		t.Errorf("Cubic friendliness must shrink with capacity")
	}
}

func TestRobustAIMDRow(t *testing.T) {
	r := RobustAIMDRow(1, 0.8, 0.01, testLink)
	// Efficiency: min(1, b(1+τ/C)/(1−k)) = min(1, 0.96/0.99).
	if !near(r.At.Efficiency, 0.96/0.99, 1e-12) {
		t.Errorf("efficiency = %v, want %v", r.At.Efficiency, 0.96/0.99)
	}
	// Loss: ((C+τ)k + na(1−k)) / ((C+τ) + na(1−k)).
	want := (120*0.01 + 2*0.99) / (120 + 2*0.99)
	if !near(r.At.LossAvoidance, want, 1e-12) {
		t.Errorf("loss = %v, want %v", r.At.LossAvoidance, want)
	}
	if r.At.Robustness != 0.01 {
		t.Errorf("robustness = %v, want ε = 0.01", r.At.Robustness)
	}
	// Friendliness equals Theorem 3's bound at (a, b, ε, C, τ).
	if !near(r.At.TCPFriendliness, Theorem3Bound(1, 0.8, 0.01, 100, 20), 1e-12) {
		t.Errorf("friendliness = %v", r.At.TCPFriendliness)
	}
}

func TestRobustAIMDMoreEfficientThanAIMDSameB(t *testing.T) {
	// The 1/(1−k) factor buys efficiency relative to plain AIMD(a,b).
	ra := RobustAIMDRow(1, 0.5, 0.1, testLink)
	plain := AIMDRow(1, 0.5, testLink)
	if ra.At.Efficiency <= plain.At.Efficiency {
		t.Errorf("Robust-AIMD efficiency %v ≤ AIMD %v", ra.At.Efficiency, plain.At.Efficiency)
	}
}

func TestFamilyRowDispatch(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		want string
	}{
		{protocol.Reno(), "AIMD(1,0.5)"},
		{protocol.Scalable(), "MIMD(1.01,0.875)"},
		{protocol.SQRT(), "BIN(1,0.5,0.5,0.5)"},
		{protocol.CubicLinux(), "CUBIC(0.4,0.8)"},
		{protocol.NewRobustAIMD(1, 0.8, 0.01), "RobustAIMD(1,0.8,0.01)"},
	}
	for _, c := range cases {
		r, err := FamilyRow(c.p, testLink)
		if err != nil {
			t.Errorf("%s: %v", c.p.Name(), err)
			continue
		}
		if r.Name != c.want {
			t.Errorf("row name = %q, want %q", r.Name, c.want)
		}
	}
	if _, err := FamilyRow(protocol.DefaultPCC(), testLink); err == nil {
		t.Error("PCC has no Table 1 row; expected error")
	}
	if _, err := FamilyRow(protocol.Reno(), Link{}); err == nil {
		t.Error("invalid link accepted")
	}
}

func TestTable1RowCount(t *testing.T) {
	rows := Table1(testLink)
	if len(rows) != 5 {
		t.Fatalf("Table1 has %d rows, want 5", len(rows))
	}
	// Only Robust-AIMD is robust.
	for _, r := range rows {
		isRA := r.Name == "RobustAIMD(1,0.8,0.01)"
		if (r.At.Robustness > 0) != isRA {
			t.Errorf("%s robustness = %v", r.Name, r.At.Robustness)
		}
	}
}

// Property: AIMD efficiency formula stays in (0, 1] for valid parameters.
func TestQuickAIMDEfficiencyBounds(t *testing.T) {
	f := func(bRaw, tauRaw float64) bool {
		b := math.Mod(math.Abs(bRaw), 0.98) + 0.01
		tau := math.Mod(math.Abs(tauRaw), 1000)
		if math.IsNaN(b) || math.IsNaN(tau) {
			return true
		}
		r := AIMDRow(1, b, Link{C: 100, Tau: tau, N: 2})
		return r.At.Efficiency > 0 && r.At.Efficiency <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: loss-avoidance entries are valid rates in [0, 1).
func TestQuickLossEntriesAreRates(t *testing.T) {
	f := func(nRaw uint8, aRaw float64) bool {
		n := int(nRaw%20) + 1
		a := math.Mod(math.Abs(aRaw), 10) + 0.1
		if math.IsNaN(a) {
			return true
		}
		lp := Link{C: 100, Tau: 20, N: n}
		rows := []Row{
			AIMDRow(a, 0.5, lp),
			BinRow(a, 0.5, 0.5, 0.5, lp),
			CubicRow(a, 0.8, lp),
			RobustAIMDRow(a, 0.8, 0.01, lp),
		}
		for _, r := range rows {
			if r.At.LossAvoidance < 0 || r.At.LossAvoidance >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
