package pareto_test

import (
	"fmt"

	"repro/internal/pareto"
)

// ExampleFrontier prunes dominated protocol designs.
func ExampleFrontier() {
	points := []pareto.Point{
		{Label: "balanced", Coords: []float64{0.6, 0.6}},
		{Label: "dominated", Coords: []float64{0.5, 0.5}},
		{Label: "specialist", Coords: []float64{0.9, 0.2}},
	}
	for _, p := range pareto.Frontier(points) {
		fmt.Println(p.Label)
	}
	// Output:
	// balanced
	// specialist
}

// ExampleFigure1Surface generates the corner of Figure 1's frontier that
// TCP Reno occupies.
func ExampleFigure1Surface() {
	pts := pareto.Figure1Surface([]float64{1}, []float64{0.5})
	p := pts[0]
	fmt.Printf("AIMD(%g,%g) attains friendliness %g\n",
		p.FastUtilization, p.Efficiency, p.Friendliness)
	// Output:
	// AIMD(1,0.5) attains friendliness 1
}
