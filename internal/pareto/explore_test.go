package pareto

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/axioms"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/runstore"
)

// synthEval is a deterministic closed-form evaluator over the Figure 1
// tradeoff shape: efficiency grows with β and shrinks slightly with α,
// friendliness is the Theorem 2 bound 3(1−β)/(α(1+β)) — monotone in
// opposite directions, so the frontier is a genuine curve along the
// low-α edge. calls/cells record what Explore asked for.
type synthEval struct {
	calls int
	cells int
}

func (s *synthEval) eval(_ context.Context, cells []Cell) ([]CellResult, error) {
	s.calls++
	s.cells += len(cells)
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		eff := c.Beta - 0.05*c.Alpha
		out[i] = CellResult{
			Coords:    []float64{eff, axioms.Theorem2Bound(c.Alpha, c.Beta)},
			Simulated: true,
		}
	}
	return out, nil
}

func TestExploreDeterministicGolden(t *testing.T) {
	run := func() *ExploreResult {
		ev := &synthEval{}
		res, err := Explore(context.Background(), ExploreConfig{
			Coarse:       5,
			Rounds:       2,
			RefineFactor: 2,
			// Tight optimism margin: Theorem2Bound's 1/α blow-up at the
			// low-α corner makes the friendliness spread heavy-tailed, so
			// the default 15% slack would shield every far-side candidate
			// on a grid this coarse.
			PruneSlack: 0.02,
			Eval:       ev.eval,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ev.cells != res.Stats.CellsEvaluated {
			t.Fatalf("evaluator saw %d cells, stats say %d", ev.cells, res.Stats.CellsEvaluated)
		}
		return res
	}
	a, b := run(), run()

	// Bit-identical across invocations: same points in the same order,
	// same frontier, same stats.
	if a.Stats != b.Stats {
		t.Fatalf("stats differ across runs: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].Alpha != b.Points[i].Alpha || a.Points[i].Beta != b.Points[i].Beta ||
			!sameCoords(a.Points[i].Coords, b.Points[i].Coords) {
			t.Fatalf("point %d differs across runs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	if len(a.Frontier) != len(b.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(a.Frontier), len(b.Frontier))
	}

	// Golden structure for this configuration: a 5×5 coarse pass plus two
	// refinement rounds on a 17×17 finest lattice, with the bandit
	// pruning at least one candidate and the coarse budget untouched.
	if a.Stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", a.Stats.Rounds)
	}
	if a.Rounds[0].Evaluated != 25 {
		t.Fatalf("coarse pass evaluated %d cells, want 25", a.Rounds[0].Evaluated)
	}
	if a.Stats.CellsPruned == 0 {
		t.Fatal("dominance bandit pruned nothing on a monotone landscape")
	}
	dense := 17 * 17
	if a.Stats.CellsEvaluated >= dense {
		t.Fatalf("explore evaluated %d cells, dense grid is %d — no saving", a.Stats.CellsEvaluated, dense)
	}
	// The frontier of this landscape is the low-α edge: every frontier
	// point must sit on the minimum α the lattice can express.
	for _, p := range a.Frontier {
		if p.Alpha != 0.25 {
			t.Fatalf("frontier point off the low-α edge: %+v", p)
		}
	}
}

// TestExploreDominatesDenseSynthetic is the resolution property on the
// closed-form landscape: every dense-grid frontier point must be matched
// or dominated by an explored point, i.e. the adaptive pass reaches the
// dense frontier exactly (it refines the frontier region down to the
// same finest lattice the dense grid evaluates).
func TestExploreDominatesDenseSynthetic(t *testing.T) {
	cfg := ExploreConfig{Coarse: 5, Rounds: 2, RefineFactor: 2}
	ev := &synthEval{}
	cfg.Eval = ev.eval
	exp, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := ExploreDense(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(dense.Stats.CellsEvaluated) / float64(exp.Stats.CellsEvaluated); ratio < 2 {
		t.Fatalf("explore evaluated %d cells vs dense %d (%.1fx) — refinement is not saving work",
			exp.Stats.CellsEvaluated, dense.Stats.CellsEvaluated, ratio)
	}
	assertDominatesOrMatches(t, exp.Points, dense.Frontier, 0)
}

// assertDominatesOrMatches fails unless every point of want is matched or
// dominated by some point of got, with per-coordinate tolerance tol.
func assertDominatesOrMatches(t *testing.T, got []ExploredPoint, want []ExploredPoint, tol float64) {
	t.Helper()
	for _, d := range want {
		ok := false
		for _, e := range got {
			covered := true
			for k := range d.Coords {
				if !(e.Coords[k] >= d.Coords[k]-tol) {
					covered = false
					break
				}
			}
			if covered {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("dense frontier point (α=%g β=%g) %v not matched or dominated by any explored point",
				d.Alpha, d.Beta, d.Coords)
		}
	}
}

// smallAIMDExplore is the shared shape of the empirical tests: a short
// horizon and a small lattice keep the dense reference affordable.
func smallAIMDExplore(opt metrics.Options) ExploreConfig {
	return ExploreConfig{
		AlphaRange:   [2]float64{0.5, 2},
		BetaRange:    [2]float64{0.3, 0.8},
		Coarse:       4,
		Rounds:       2,
		RefineFactor: 2,
		Eval:         AIMDEvaluator(testLink(), opt),
	}
}

// testLink is the paper's 20 Mbps / 42 ms reference dumbbell with a
// small buffer.
func testLink() fluid.Config {
	return fluid.Config{Bandwidth: fluid.MbpsToMSSps(20), PropDelay: 0.021, Buffer: 4}
}

// TestExploreDominatesDenseEmpirical runs the real AIMD evaluator on a
// small box: the explored frontier must match or dominate the dense-grid
// frontier on the same lattice. Explore and the dense pass share one
// session, so the dense reference reuses every cell Explore already
// simulated.
func TestExploreDominatesDenseEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical dense reference is not short")
	}
	opt := metrics.Options{Steps: 300, Session: metrics.NewSession()}
	cfg := smallAIMDExplore(opt)
	exp, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := ExploreDense(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats.CellsEvaluated >= dense.Stats.CellsEvaluated {
		t.Fatalf("explore evaluated %d cells, dense %d — no saving", exp.Stats.CellsEvaluated, dense.Stats.CellsEvaluated)
	}
	assertDominatesOrMatches(t, exp.Points, dense.Frontier, 0)

	// The measured coordinates of cells both passes touched must be
	// bit-identical (same keys, same session): spot-check via the
	// frontier overlap.
	densePts := make(map[[2]float64][]float64)
	for _, p := range dense.Points {
		densePts[[2]float64{p.Alpha, p.Beta}] = p.Coords
	}
	for _, p := range exp.Points {
		dc, ok := densePts[[2]float64{p.Alpha, p.Beta}]
		if !ok {
			t.Fatalf("explored cell (α=%v β=%v) missing from the dense lattice — lattices disagree", p.Alpha, p.Beta)
		}
		for k := range p.Coords {
			if math.Float64bits(p.Coords[k]) != math.Float64bits(dc[k]) {
				t.Fatalf("cell (α=%v β=%v) objective %d: explore %v != dense %v", p.Alpha, p.Beta, k, p.Coords[k], dc[k])
			}
		}
	}
}

// TestExploreWarmStoreZeroCells pins the incremental property: a second
// invocation against the same persistent store — fresh session, fresh
// evaluator — simulates zero cells and reproduces the frontier bit for
// bit.
func TestExploreWarmStoreZeroCells(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *ExploreResult {
		sess := metrics.NewSession()
		sess.SetStore(st)
		cfg := smallAIMDExplore(metrics.Options{Steps: 200, Session: sess})
		res, err := Explore(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if cold.Stats.CellsSimulated == 0 {
		t.Fatal("cold run simulated zero cells — the measurement is vacuous")
	}
	if cold.Stats.CellsSimulated != cold.Stats.CellsEvaluated {
		t.Fatalf("cold run: %d simulated of %d evaluated, want all",
			cold.Stats.CellsSimulated, cold.Stats.CellsEvaluated)
	}
	warm := run()
	if warm.Stats.CellsSimulated != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", warm.Stats.CellsSimulated)
	}
	if warm.Stats.CacheHits != warm.Stats.CellsEvaluated {
		t.Fatalf("warm run: %d cache hits of %d evaluated, want all",
			warm.Stats.CacheHits, warm.Stats.CellsEvaluated)
	}
	if len(warm.Points) != len(cold.Points) {
		t.Fatalf("warm run evaluated %d points, cold %d", len(warm.Points), len(cold.Points))
	}
	for i := range warm.Points {
		if warm.Points[i].Alpha != cold.Points[i].Alpha || warm.Points[i].Beta != cold.Points[i].Beta ||
			!bitsEqual(warm.Points[i].Coords, cold.Points[i].Coords) {
			t.Fatalf("point %d differs warm vs cold: %+v vs %+v", i, warm.Points[i], cold.Points[i])
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestExploreBudget pins the cell budget: the total never exceeds it,
// and rounds report what they deferred.
func TestExploreBudget(t *testing.T) {
	ev := &synthEval{}
	res, err := Explore(context.Background(), ExploreConfig{
		Coarse:       5,
		Rounds:       2,
		RefineFactor: 2,
		BudgetCells:  30,
		Eval:         ev.eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsEvaluated > 30 {
		t.Fatalf("budget 30 exceeded: %d cells evaluated", res.Stats.CellsEvaluated)
	}
	deferred := 0
	for _, r := range res.Rounds {
		deferred += r.Deferred
	}
	if deferred == 0 {
		t.Fatal("tight budget deferred nothing — budget accounting is dead code")
	}
}

// TestExploreEvaluatorErrors pins error propagation.
func TestExploreEvaluatorErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	_, err := Explore(context.Background(), ExploreConfig{
		Eval: func(context.Context, []Cell) ([]CellResult, error) { return nil, boom },
	})
	if err != boom {
		t.Fatalf("got %v, want the evaluator error", err)
	}
	if _, err := Explore(context.Background(), ExploreConfig{}); err == nil {
		t.Fatal("nil evaluator must be rejected")
	}
	_, err = Explore(context.Background(), ExploreConfig{
		Eval: func(_ context.Context, cells []Cell) ([]CellResult, error) {
			return make([]CellResult, len(cells)+1), nil
		},
	})
	if err == nil {
		t.Fatal("result/cell count mismatch must be rejected")
	}
}

// TestExploreOnRoundStreams pins the streaming hook: one call per round,
// rounds in order, cumulative counts consistent with the final stats.
func TestExploreOnRoundStreams(t *testing.T) {
	ev := &synthEval{}
	var rounds []RoundSnapshot
	res, err := Explore(context.Background(), ExploreConfig{
		Coarse: 3,
		Rounds: 2,
		Eval:   ev.eval,
		OnRound: func(s RoundSnapshot) {
			rounds = append(rounds, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != len(res.Rounds) {
		t.Fatalf("OnRound fired %d times for %d rounds", len(rounds), len(res.Rounds))
	}
	total := 0
	for i, r := range rounds {
		if r.Round != i {
			t.Fatalf("round %d reported as %d", i, r.Round)
		}
		total += r.Evaluated
	}
	if total != res.Stats.CellsEvaluated {
		t.Fatalf("round evaluated sum %d != stats %d", total, res.Stats.CellsEvaluated)
	}
}

// TestExploreContextCancel pins prompt cancellation between rounds.
func TestExploreContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ev := &synthEval{}
	_, err := Explore(ctx, ExploreConfig{
		Coarse: 3,
		Rounds: 4,
		Eval: func(c context.Context, cells []Cell) ([]CellResult, error) {
			cancel() // cancel mid-flight; the next round must not start
			return ev.eval(c, cells)
		},
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ev.calls != 1 {
		t.Fatalf("evaluator ran %d times after cancellation, want 1", ev.calls)
	}
}
