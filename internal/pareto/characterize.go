package pareto

import (
	"context"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
)

// CharacterizeAll scores every protocol's empirical 8-tuple with n senders
// on cfg and returns the oriented points (higher-is-better coordinates,
// labeled by protocol name, ready for Frontier) alongside the raw score
// tuples, index-aligned with protos.
//
// Protocols are independent sweep cells (opt.Workers caps the pool, and
// each cell's inner runs stay serial). All cells share one
// run-deduplication session, so runs that recur across protocols — and
// the five tail estimators within each Characterize — simulate exactly
// once per call rather than once per use.
func CharacterizeAll(cfg fluid.Config, protos []protocol.Protocol, n int, opt metrics.Options) ([]Point, []metrics.Scores, error) {
	cellOpt := opt
	cellOpt.Workers = 1
	if cellOpt.Session == nil && !cellOpt.NoCache {
		cellOpt.Session = metrics.NewSession()
	}
	scores, err := engine.Sweep(context.Background(), len(protos), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (metrics.Scores, error) {
			return metrics.Characterize(cfg, protos[i], n, cellOpt)
		})
	if err != nil {
		return nil, nil, err
	}
	pts := make([]Point, len(protos))
	for i, s := range scores {
		pts[i] = Point{Label: protos[i].Name(), Coords: OrientScores(s)}
	}
	return pts, scores, nil
}
