package pareto

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// This file implements adaptive Pareto-frontier exploration: instead of
// characterizing a dense (α, β) grid — where almost every cell is
// Pareto-irrelevant — Explore runs a coarse pass and then successive-
// halving refinement rounds that subdivide only the parent cells
// adjacent to the current empirical frontier, with a dominance-pruning
// bandit that drops candidates whose optimistic (upper-confidence)
// score vector is already dominated by a confirmed frontier point. Cells live on an integer
// lattice at the finest resolution the configuration can reach, so every
// round's cell coordinates are bit-reproducible, coincide across
// invocations (which is what makes refinement incremental over the run
// store), and coincide with the dense verification grid of the same
// resolution.

// Cell is one candidate (α, β) parameter point handed to a CellEvaluator.
type Cell struct {
	Alpha, Beta float64
}

// CellResult is the evaluator's measurement of one cell: a higher-is-
// better coordinate vector (every cell must use the same length), plus
// whether resolving it actually executed a simulation (as opposed to
// being served entirely from a session cache or the persistent run
// store). The flag is what Explore's cells-simulated accounting — and
// the warm-store "repeat invocation simulates zero cells" property — is
// measured through.
type CellResult struct {
	Coords    []float64
	Simulated bool
}

// CellEvaluator measures a batch of cells. Explore hands over whole
// rounds at once so implementations can resolve every cell's runs in one
// engine batch (metrics.Prefetch → engine.SweepSpecs → fluid.Batch);
// results must be parallel to cells and deterministic.
type CellEvaluator func(ctx context.Context, cells []Cell) ([]CellResult, error)

// ExploredPoint is one measured cell: its (α, β) parameters and its
// oriented score vector.
type ExploredPoint struct {
	Alpha, Beta float64
	Coords      []float64
}

// RoundSnapshot describes one completed exploration round. Round 0 is
// the coarse pass; refinement rounds count up from 1.
type RoundSnapshot struct {
	Round int
	// SpacingAlpha/SpacingBeta is the lattice spacing of cells this round
	// evaluates, in parameter units.
	SpacingAlpha, SpacingBeta float64
	// Evaluated is how many new cells this round measured; Simulated is
	// how many of those executed at least one simulation, and CacheHits
	// is the remainder (resolved entirely from cache/store). Pruned is
	// how many candidates the dominance bandit dropped, and Deferred how
	// many survived pruning but fell outside the round's cell budget.
	Evaluated, Simulated, CacheHits, Pruned, Deferred int
	// Frontier is the empirical frontier over everything evaluated so
	// far, in evaluation order.
	Frontier []ExploredPoint
}

// ExploreStats aggregates a whole Explore call.
type ExploreStats struct {
	CellsEvaluated int
	CellsSimulated int
	CacheHits      int
	CellsPruned    int
	Rounds         int
}

// ExploreResult is what Explore returns: every measured point in
// evaluation order, the final frontier, the per-round snapshots, and the
// aggregate stats.
type ExploreResult struct {
	Points   []ExploredPoint
	Frontier []ExploredPoint
	Rounds   []RoundSnapshot
	Stats    ExploreStats
}

// DefaultPruneSlack is the optimism margin of the dominance bandit, as a
// fraction of each objective's observed spread: a candidate is pruned
// only when even its neighborhood maximum plus this margin is dominated
// by a confirmed frontier point. Larger values prune less (safer,
// slower); 0 prunes on the neighborhood maximum alone.
const DefaultPruneSlack = 0.15

// ExploreConfig parameterizes Explore. The zero value of every field
// except Eval selects a sensible default (documented per field).
type ExploreConfig struct {
	// AlphaRange and BetaRange bound the (α, β) box. Defaults are the
	// paper's Figure 1 box: α ∈ [0.25, 3], β ∈ [0.1, 0.9].
	AlphaRange, BetaRange [2]float64
	// Coarse is the number of coarse-pass grid points per axis
	// (default 7, minimum 2).
	Coarse int
	// Rounds is the number of successive-halving refinement rounds after
	// the coarse pass (default 3; pass a negative value for a coarse-only
	// pass).
	Rounds int
	// RefineFactor divides the lattice spacing each round (default 2,
	// minimum 2). The finest resolution reached is a dense grid of
	// (Coarse−1)·RefineFactor^Rounds + 1 points per axis.
	RefineFactor int
	// BudgetCells caps the total number of cells evaluated, coarse pass
	// included (0 = unlimited). Refinement rounds split the remaining
	// budget evenly over the rounds left, ranking candidates by their
	// optimistic score; the final round takes everything left.
	BudgetCells int
	// PruneSlack overrides DefaultPruneSlack (0 selects the default;
	// negative values mean no slack).
	PruneSlack float64
	// Eval measures candidate cells. Required.
	Eval CellEvaluator
	// OnRound, when non-nil, is called after each round completes —
	// the hook the /frontier NDJSON streaming endpoint attaches to.
	OnRound func(RoundSnapshot)
}

// Explore telemetry, recorded only while obs is enabled.
var (
	exploreCellsSimulated = obs.GetCounter("pareto.explore.cells.simulated")
	exploreCellsPruned    = obs.GetCounter("pareto.explore.cells.pruned")
	exploreCellsCacheHits = obs.GetCounter("pareto.explore.cells.cache_hits")
)

// withDefaults validates the lattice geometry and fills defaults. Eval
// is checked separately by Explore/ExploreDense so that FinestGridSide
// works on evaluator-less configs (wire-spec validation needs it).
func (c ExploreConfig) withDefaults() (ExploreConfig, error) {
	if c.AlphaRange == [2]float64{} {
		c.AlphaRange = [2]float64{0.25, 3}
	}
	if c.BetaRange == [2]float64{} {
		c.BetaRange = [2]float64{0.1, 0.9}
	}
	if c.Coarse == 0 {
		c.Coarse = 7
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Rounds < 0 {
		c.Rounds = 0
	}
	if c.RefineFactor == 0 {
		c.RefineFactor = 2
	}
	if c.PruneSlack == 0 {
		c.PruneSlack = DefaultPruneSlack
	}
	if c.PruneSlack < 0 {
		c.PruneSlack = 0
	}
	for _, r := range [][2]float64{c.AlphaRange, c.BetaRange} {
		if !(r[0] < r[1]) || math.IsInf(r[0], 0) || math.IsInf(r[1], 0) || math.IsNaN(r[0]) || math.IsNaN(r[1]) {
			return c, fmt.Errorf("pareto: invalid explore range [%v, %v]", r[0], r[1])
		}
	}
	if c.Coarse < 2 {
		return c, fmt.Errorf("pareto: Coarse must be ≥ 2, got %d", c.Coarse)
	}
	if c.RefineFactor < 2 {
		return c, fmt.Errorf("pareto: RefineFactor must be ≥ 2, got %d", c.RefineFactor)
	}
	if c.Rounds > 16 {
		return c, fmt.Errorf("pareto: Rounds must be ≤ 16, got %d", c.Rounds)
	}
	return c, nil
}

// FinestGridSide returns the per-axis point count of the finest lattice
// the configuration can reach — the resolution of the equivalent dense
// grid. It applies the same defaults Explore does.
func (c ExploreConfig) FinestGridSide() (int, error) {
	cc, err := c.withDefaults()
	if err != nil {
		return 0, err
	}
	return (cc.Coarse-1)*intPow(cc.RefineFactor, cc.Rounds) + 1, nil
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// latticeValue maps lattice index i ∈ [0, n] onto [lo, hi]. It performs
// the same float64 operations as Grid(lo, hi, n+1), so explored cell
// parameters are bit-identical to the dense grid's — which is what lets
// the run store share cells between Explore and a dense verification
// sweep.
func latticeValue(lo, hi float64, i, n int) float64 {
	if i == n {
		return hi
	}
	step := (hi - lo) / float64(n)
	return lo + float64(i)*step
}

// cellIdx is a lattice coordinate at the finest resolution.
type cellIdx struct{ ia, ib int }

// evalCell is one measured lattice cell.
type evalCell struct {
	idx         cellIdx
	alpha, beta float64
	coords      []float64
	sim         bool
}

func (e *evalCell) point() ExploredPoint {
	return ExploredPoint{Alpha: e.alpha, Beta: e.beta, Coords: e.coords}
}

// explorer is the per-call state of Explore.
type explorer struct {
	cfg    ExploreConfig
	na, nb int // lattice extent per axis (index range [0, na]×[0, nb])
	seen   map[cellIdx]*evalCell
	order  []*evalCell
	res    *ExploreResult
}

// Explore runs the adaptive frontier search. See the file comment for
// the algorithm; the result is deterministic for a deterministic
// evaluator (iteration never depends on map order, and ties in the
// bandit's ranking break on lattice coordinates).
func Explore(ctx context.Context, cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.Eval == nil {
		return nil, fmt.Errorf("pareto: ExploreConfig.Eval is required")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := intPow(c.RefineFactor, c.Rounds)
	ex := &explorer{
		cfg:  c,
		na:   (c.Coarse - 1) * f,
		nb:   (c.Coarse - 1) * f,
		seen: make(map[cellIdx]*evalCell),
		res:  &ExploreResult{},
	}

	// Coarse pass: the full Coarse×Coarse lattice at stride F, row-major
	// (budget truncation, if any, keeps the prefix).
	var coarse []cellIdx
	for ia := 0; ia <= ex.na; ia += f {
		for ib := 0; ib <= ex.nb; ib += f {
			coarse = append(coarse, cellIdx{ia, ib})
		}
	}
	if c.BudgetCells > 0 && len(coarse) > c.BudgetCells {
		coarse = coarse[:c.BudgetCells]
	}
	if err := ex.runRound(ctx, 0, f, coarse, 0, 0); err != nil {
		return nil, err
	}

	stride := f
	for r := 1; r <= c.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stride /= c.RefineFactor
		cands := ex.candidates(stride)
		kept, pruned := ex.prune(cands, stride)
		deferred := 0
		if c.BudgetCells > 0 {
			remaining := c.BudgetCells - len(ex.order)
			if remaining < 0 {
				remaining = 0
			}
			allot := remaining / (c.Rounds - r + 1)
			if r == c.Rounds {
				allot = remaining
			}
			if len(kept) > allot {
				deferred = len(kept) - allot
				kept = kept[:allot]
			}
		}
		if err := ex.runRound(ctx, r, stride, kept, pruned, deferred); err != nil {
			return nil, err
		}
		if len(kept) == 0 && pruned == 0 {
			break // lattice exhausted around the frontier
		}
	}

	ex.res.Frontier = ex.frontierPoints()
	ex.res.Stats.Rounds = len(ex.res.Rounds)
	return ex.res, nil
}

// ExploreDense evaluates the full finest-resolution lattice of cfg in
// one batch — the brute-force reference Explore is measured against.
// BudgetCells, Rounds-driven refinement, and pruning do not apply; the
// result carries a single snapshot. Cell parameters are bit-identical to
// Explore's lattice, so a shared session/store resolves overlapping
// cells once across both.
func ExploreDense(ctx context.Context, cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.Eval == nil {
		return nil, fmt.Errorf("pareto: ExploreConfig.Eval is required")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := intPow(c.RefineFactor, c.Rounds)
	ex := &explorer{
		cfg:  c,
		na:   (c.Coarse - 1) * f,
		nb:   (c.Coarse - 1) * f,
		seen: make(map[cellIdx]*evalCell),
		res:  &ExploreResult{},
	}
	var all []cellIdx
	for ia := 0; ia <= ex.na; ia++ {
		for ib := 0; ib <= ex.nb; ib++ {
			all = append(all, cellIdx{ia, ib})
		}
	}
	if err := ex.runRound(ctx, 0, 1, all, 0, 0); err != nil {
		return nil, err
	}
	ex.res.Frontier = ex.frontierPoints()
	ex.res.Stats.Rounds = 1
	return ex.res, nil
}

// runRound evaluates the given cells (already deduplicated against seen)
// and appends the round's snapshot.
func (ex *explorer) runRound(ctx context.Context, round, stride int, cells []cellIdx, pruned, deferred int) error {
	sp := obs.StartLeafSpan("pareto.explore.round")
	sp.SetDetail("round " + strconv.Itoa(round) + ": " + strconv.Itoa(len(cells)) + " cells")
	defer sp.End()

	if len(cells) > 0 {
		batch := make([]Cell, len(cells))
		for i, ci := range cells {
			batch[i] = Cell{
				Alpha: latticeValue(ex.cfg.AlphaRange[0], ex.cfg.AlphaRange[1], ci.ia, ex.na),
				Beta:  latticeValue(ex.cfg.BetaRange[0], ex.cfg.BetaRange[1], ci.ib, ex.nb),
			}
		}
		out, err := ex.cfg.Eval(ctx, batch)
		if err != nil {
			return err
		}
		if len(out) != len(cells) {
			return fmt.Errorf("pareto: evaluator returned %d results for %d cells", len(out), len(cells))
		}
		for i, r := range out {
			if len(ex.order) > 0 && len(r.Coords) != len(ex.order[0].coords) {
				return fmt.Errorf("pareto: evaluator changed objective count (%d vs %d)", len(r.Coords), len(ex.order[0].coords))
			}
			ec := &evalCell{idx: cells[i], alpha: batch[i].Alpha, beta: batch[i].Beta, coords: r.Coords, sim: r.Simulated}
			ex.seen[cells[i]] = ec
			ex.order = append(ex.order, ec)
			ex.res.Points = append(ex.res.Points, ec.point())
		}
	}

	simulated := 0
	for _, ci := range cells {
		if ex.seen[ci].sim {
			simulated++
		}
	}
	hits := len(cells) - simulated
	snap := RoundSnapshot{
		Round:        round,
		SpacingAlpha: float64(stride) * (ex.cfg.AlphaRange[1] - ex.cfg.AlphaRange[0]) / float64(ex.na),
		SpacingBeta:  float64(stride) * (ex.cfg.BetaRange[1] - ex.cfg.BetaRange[0]) / float64(ex.nb),
		Evaluated:    len(cells),
		Simulated:    simulated,
		CacheHits:    hits,
		Pruned:       pruned,
		Deferred:     deferred,
		Frontier:     ex.frontierPoints(),
	}
	ex.res.Rounds = append(ex.res.Rounds, snap)
	ex.res.Stats.CellsEvaluated += len(cells)
	ex.res.Stats.CellsSimulated += simulated
	ex.res.Stats.CacheHits += hits
	ex.res.Stats.CellsPruned += pruned
	if obs.Enabled() {
		exploreCellsSimulated.Add(uint64(simulated))
		exploreCellsCacheHits.Add(uint64(hits))
		exploreCellsPruned.Add(uint64(pruned))
	}
	if ex.cfg.OnRound != nil {
		ex.cfg.OnRound(snap)
	}
	return nil
}

// frontierCells returns the evaluated cells on the current empirical
// frontier, in evaluation order.
func (ex *explorer) frontierCells() []*evalCell {
	if len(ex.order) == 0 {
		return nil
	}
	pts := make([]Point, len(ex.order))
	for i, ec := range ex.order {
		pts[i] = Point{Label: strconv.Itoa(i), Coords: ec.coords}
	}
	front := Frontier(pts)
	out := make([]*evalCell, len(front))
	for i, p := range front {
		idx, _ := strconv.Atoi(p.Label)
		out[i] = ex.order[idx]
	}
	return out
}

func (ex *explorer) frontierPoints() []ExploredPoint {
	cells := ex.frontierCells()
	out := make([]ExploredPoint, len(cells))
	for i, ec := range cells {
		out[i] = ec.point()
	}
	return out
}

// candidates subdivides the parent-spacing neighborhood of each frontier
// cell: every unevaluated point of the refined lattice within L∞
// distance ≤ RefineFactor·stride (= the previous round's spacing) of a
// frontier cell, sorted by lattice coordinates for determinism. The
// inner ring supplies the halved-resolution detail right at the
// frontier; the outer ring reaches into the adjacent parent cells on
// the dominated side, which is what gives the dominance bandit
// something to prune. NaN-scored cells are always "on" the frontier by
// dominance rules but carry no gradient information, so they do not
// seed refinement.
func (ex *explorer) candidates(stride int) []cellIdx {
	rf := ex.cfg.RefineFactor
	seen := make(map[cellIdx]bool)
	var out []cellIdx
	for _, fc := range ex.frontierCells() {
		if hasNaN(fc.coords) {
			continue
		}
		for di := -rf; di <= rf; di++ {
			for dj := -rf; dj <= rf; dj++ {
				if di == 0 && dj == 0 {
					continue
				}
				ci := cellIdx{fc.idx.ia + di*stride, fc.idx.ib + dj*stride}
				if ci.ia < 0 || ci.ia > ex.na || ci.ib < 0 || ci.ib > ex.nb {
					continue
				}
				if _, done := ex.seen[ci]; done || seen[ci] {
					continue
				}
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].ia != out[b].ia {
			return out[a].ia < out[b].ia
		}
		return out[a].ib < out[b].ib
	})
	return out
}

func hasNaN(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// prune applies the dominance bandit: each candidate's optimistic score
// vector is the component-wise maximum over the measured cells within
// L∞ lattice distance ≤ radius (the spacing being evaluated this
// round), plus PruneSlack × the objective's observed spread. Candidates
// whose optimistic vector is dominated by a confirmed frontier point
// cannot contribute a frontier cell and are dropped. The optimism
// neighborhood is deliberately tighter than the candidate ring: a
// far-side candidate is judged by its own dominated surroundings, not
// by the frontier cell that proposed it (a neighborhood containing a
// frontier point is unprunable by construction, since nothing dominates
// a frontier point). Survivors are returned ranked by optimistic
// promise (descending, ties on lattice coordinates) so a budget cut
// keeps the most promising cells; the pruned count is returned
// alongside.
func (ex *explorer) prune(cands []cellIdx, radius int) ([]cellIdx, int) {
	if len(cands) == 0 || len(ex.order) == 0 {
		return cands, 0
	}
	dims := len(ex.order[0].coords)

	// Per-objective observed spread and minimum, over finite scores.
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for k := 0; k < dims; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	for _, ec := range ex.order {
		for k, v := range ec.coords {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo[k] = math.Min(lo[k], v)
			hi[k] = math.Max(hi[k], v)
		}
	}

	front := ex.frontierCells()
	type ranked struct {
		idx     cellIdx
		promise float64
	}
	var kept []ranked
	pruned := 0
	ub := make([]float64, dims)
	for _, ci := range cands {
		known := false
		for k := range ub {
			ub[k] = math.Inf(-1)
		}
		for _, ec := range ex.order {
			if abs(ec.idx.ia-ci.ia) > radius || abs(ec.idx.ib-ci.ib) > radius {
				continue
			}
			for k, v := range ec.coords {
				if math.IsNaN(v) {
					continue
				}
				known = true
				ub[k] = math.Max(ub[k], v)
			}
		}
		if !known {
			// No measured neighborhood: nothing to be optimistic from,
			// nothing that justifies pruning either.
			kept = append(kept, ranked{ci, math.Inf(1)})
			continue
		}
		promise := 0.0
		for k := 0; k < dims; k++ {
			if math.IsInf(ub[k], -1) {
				// No finite information for this objective: optimism, not
				// pessimism — an unknown coordinate must block pruning.
				ub[k] = math.Inf(1)
				continue
			}
			if spread := hi[k] - lo[k]; spread > 0 && !math.IsInf(spread, 0) {
				ub[k] += ex.cfg.PruneSlack * spread
				promise += (ub[k] - lo[k]) / spread
			}
		}
		dominated := false
		for _, fc := range front {
			if hasNaN(fc.coords) {
				continue
			}
			if Dominates(fc.coords, ub) {
				dominated = true
				break
			}
		}
		if dominated {
			pruned++
			continue
		}
		kept = append(kept, ranked{ci, promise})
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].promise != kept[b].promise {
			return kept[a].promise > kept[b].promise
		}
		if kept[a].idx.ia != kept[b].idx.ia {
			return kept[a].idx.ia < kept[b].idx.ia
		}
		return kept[a].idx.ib < kept[b].idx.ib
	})
	out := make([]cellIdx, len(kept))
	for i, r := range kept {
		out[i] = r.idx
	}
	return out, pruned
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
