// Package pareto provides the Pareto-frontier machinery of Section 5.2 of
// "An Axiomatic Approach to Congestion Control": protocols are points in
// the multidimensional space induced by the axioms' scores, some score
// combinations are infeasible (Theorems 2 and 3), and desirable protocols
// are the feasible points that cannot be improved in one metric without
// being degraded in another.
//
// All coordinates handled by this package are oriented so that LARGER IS
// BETTER. The paper's loss-avoidance and latency-avoidance metrics (where
// a smaller α is better) must be transformed before use; OrientScores does
// this for the metrics package's 8-tuples.
package pareto

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/axioms"
	"repro/internal/metrics"
)

// Point is a labeled position in score space (higher is better in every
// coordinate).
type Point struct {
	Label  string
	Coords []float64
}

// Dominates reports whether coordinate vector a Pareto-dominates b: a is
// at least as good everywhere and strictly better somewhere. It panics on
// length mismatch. NaN coordinates never dominate and are never dominated.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			return false
		}
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// Frontier returns the subset of points not dominated by any other point,
// preserving input order. Duplicate coordinate vectors are all retained
// (none dominates the other). The 2-objective case — the shape Explore's
// refinement loop calls in a tight loop — takes an O(n log n) sort-based
// skyline sweep; other dimensionalities take the general O(n²) scan.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	two := true
	for _, p := range points {
		if len(p.Coords) != 2 {
			two = false
			break
		}
	}
	if two {
		return frontier2(points)
	}
	return frontierGeneral(points)
}

// frontierGeneral is the all-pairs dominance scan, kept as the reference
// path for ≥3 objectives (and for the skyline equivalence test).
func frontierGeneral(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q.Coords, p.Coords) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// frontier2 is the 2-objective skyline: sort indices by (x desc, y desc),
// then one sweep marks a point dominated iff a strictly-greater-x point
// has y ≥ its own (tracked by bestPrev) or a same-x point has strictly
// greater y (tracked per equal-x group). Points with a NaN coordinate
// never dominate and are never dominated (Dominates' contract), so they
// sit out the sweep and always survive. Output preserves input order and
// retains duplicates, exactly like the general scan.
func frontier2(points []Point) []Point {
	n := len(points)
	idx := make([]int, 0, n)
	dominated := make([]bool, n)
	for i, p := range points {
		if math.IsNaN(p.Coords[0]) || math.IsNaN(p.Coords[1]) {
			continue
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]].Coords, points[idx[b]].Coords
		if pa[0] != pb[0] {
			return pa[0] > pb[0]
		}
		return pa[1] > pb[1]
	})
	bestPrev := math.Inf(-1) // max y among points with strictly greater x
	for k := 0; k < len(idx); {
		x := points[idx[k]].Coords[0]
		j := k
		groupMax := math.Inf(-1)
		for ; j < len(idx) && points[idx[j]].Coords[0] == x; j++ {
			if y := points[idx[j]].Coords[1]; y > groupMax {
				groupMax = y
			}
		}
		for m := k; m < j; m++ {
			y := points[idx[m]].Coords[1]
			if y <= bestPrev || y < groupMax {
				dominated[idx[m]] = true
			}
		}
		if groupMax > bestPrev {
			bestPrev = groupMax
		}
		k = j
	}
	var out []Point
	for i, p := range points {
		if !dominated[i] {
			out = append(out, p)
		}
	}
	return out
}

// OnFrontier reports whether p is non-dominated within points (p itself is
// skipped by coordinate identity, not label).
func OnFrontier(p Point, points []Point) bool {
	for _, q := range points {
		if sameCoords(p.Coords, q.Coords) {
			continue
		}
		if Dominates(q.Coords, p.Coords) {
			return false
		}
	}
	return true
}

func sameCoords(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OrientScores converts a metrics.Scores 8-tuple into a higher-is-better
// coordinate vector in the fixed order (efficiency, fast-utilization,
// loss, fairness, convergence, robustness, TCP-friendliness, latency).
// Loss-avoidance maps to 1−α (no loss scores 1) and latency-avoidance to
// 1/(1+α) (no inflation scores 1).
func OrientScores(s metrics.Scores) []float64 {
	return []float64{
		s.Efficiency,
		s.FastUtilization,
		1 - s.LossAvoidance,
		s.Fairness,
		s.Convergence,
		s.Robustness,
		s.TCPFriendliness,
		1 / (1 + s.LatencyAvoidance),
	}
}

// OrientedDims names OrientScores' coordinates, index-aligned.
var OrientedDims = []string{
	"efficiency", "fast-utilization", "loss-avoidance(1-α)", "fairness",
	"convergence", "robustness", "tcp-friendliness", "latency-avoidance(1/(1+α))",
}

// SurfacePoint is one point of Figure 1's Pareto frontier in the
// 3-dimensional subspace spanned by fast-utilization (α), efficiency (β)
// and TCP-friendliness. Friendliness = 3(1−β)/(α(1+β)), the Theorem 2
// boundary, which AIMD(α, β) attains (Table 1), so every surface point is
// feasible and maximal.
type SurfacePoint struct {
	FastUtilization float64 // α
	Efficiency      float64 // β
	Friendliness    float64 // 3(1−β)/(α(1+β))
}

// Point converts the surface point into a generic 3-coordinate Point
// labeled with the attaining AIMD protocol.
func (sp SurfacePoint) Point() Point {
	return Point{
		Label:  fmt.Sprintf("AIMD(%.3g,%.3g)", sp.FastUtilization, sp.Efficiency),
		Coords: []float64{sp.FastUtilization, sp.Efficiency, sp.Friendliness},
	}
}

// Figure1Surface evaluates the Theorem 2 frontier on the cross product of
// the given α (fast-utilization) and β (efficiency) grids, reproducing the
// surface plotted in Figure 1. αs must be positive and βs within [0, 1).
func Figure1Surface(alphas, betas []float64) []SurfacePoint {
	out := make([]SurfacePoint, 0, len(alphas)*len(betas))
	for _, a := range alphas {
		for _, b := range betas {
			out = append(out, SurfacePoint{
				FastUtilization: a,
				Efficiency:      b,
				Friendliness:    axioms.Theorem2Bound(a, b),
			})
		}
	}
	return out
}

// Grid returns n evenly spaced values covering [lo, hi] inclusive. It
// panics if n < 2 or hi < lo.
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("pareto: grid needs ≥ 2 points, got %d", n))
	}
	if hi < lo {
		panic(fmt.Sprintf("pareto: inverted grid [%v, %v]", lo, hi))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
