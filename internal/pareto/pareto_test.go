package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/axioms"
	"repro/internal/metrics"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equality never dominates
		{[]float64{0, 0}, []float64{1, 0}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesNaN(t *testing.T) {
	nan := math.NaN()
	if Dominates([]float64{nan, 2}, []float64{0, 0}) {
		t.Error("NaN vector dominated")
	}
	if Dominates([]float64{1, 2}, []float64{nan, 0}) {
		t.Error("vector dominated NaN")
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestFrontier(t *testing.T) {
	pts := []Point{
		{"a", []float64{1, 0}},
		{"b", []float64{0, 1}},
		{"c", []float64{0.5, 0.5}},
		{"d", []float64{0.4, 0.4}}, // dominated by c
		{"e", []float64{1, 1}},     // dominates everything
	}
	f := Frontier(pts)
	if len(f) != 1 || f[0].Label != "e" {
		t.Fatalf("frontier = %v, want just e", labels(f))
	}

	// Without e, the frontier is {a, b, c}.
	f = Frontier(pts[:4])
	got := labels(f)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

func TestFrontierKeepsDuplicates(t *testing.T) {
	pts := []Point{
		{"a", []float64{1, 1}},
		{"b", []float64{1, 1}},
	}
	if f := Frontier(pts); len(f) != 2 {
		t.Fatalf("duplicates pruned: %v", labels(f))
	}
}

func TestFrontierEmpty(t *testing.T) {
	if f := Frontier(nil); len(f) != 0 {
		t.Fatalf("empty frontier = %v", f)
	}
}

func TestOnFrontier(t *testing.T) {
	pts := []Point{
		{"a", []float64{1, 0}},
		{"b", []float64{0, 1}},
	}
	if !OnFrontier(Point{"x", []float64{0.5, 0.5}}, pts) {
		t.Error("incomparable point reported dominated")
	}
	if OnFrontier(Point{"y", []float64{0.5, -1}}, pts) {
		t.Error("dominated point reported on frontier")
	}
	// A point equal to a member is on the frontier (identity skip).
	if !OnFrontier(Point{"z", []float64{1, 0}}, pts) {
		t.Error("duplicate of member rejected")
	}
}

func labels(pts []Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.Label
	}
	return out
}

func TestOrientScores(t *testing.T) {
	s := metrics.Scores{
		Efficiency:       0.6,
		FastUtilization:  1,
		LossAvoidance:    0.02,
		Fairness:         1,
		Convergence:      0.66,
		Robustness:       0,
		TCPFriendliness:  1,
		LatencyAvoidance: 1,
	}
	v := OrientScores(s)
	if len(v) != len(OrientedDims) {
		t.Fatalf("vector length %d != dims %d", len(v), len(OrientedDims))
	}
	if v[2] != 0.98 {
		t.Errorf("loss coordinate = %v, want 0.98", v[2])
	}
	if v[7] != 0.5 {
		t.Errorf("latency coordinate = %v, want 0.5", v[7])
	}
	// Perfect protocol dominates s.
	perfect := OrientScores(metrics.Scores{
		Efficiency: 1, FastUtilization: 2, LossAvoidance: 0, Fairness: 1,
		Convergence: 1, Robustness: 0.5, TCPFriendliness: 2, LatencyAvoidance: 0,
	})
	if !Dominates(perfect, v) {
		t.Error("perfect scores do not dominate ordinary scores")
	}
}

func TestFigure1SurfaceValues(t *testing.T) {
	alphas := []float64{1, 2}
	betas := []float64{0.5, 0.8}
	pts := Figure1Surface(alphas, betas)
	if len(pts) != 4 {
		t.Fatalf("surface has %d points, want 4", len(pts))
	}
	for _, p := range pts {
		want := axioms.Theorem2Bound(p.FastUtilization, p.Efficiency)
		if p.Friendliness != want {
			t.Errorf("surface point (%v,%v): friendliness %v, want %v",
				p.FastUtilization, p.Efficiency, p.Friendliness, want)
		}
	}
	// The Reno corner: (1, 0.5) ⇒ friendliness exactly 1.
	if pts[0].Friendliness != 1 {
		t.Errorf("Reno corner friendliness = %v", pts[0].Friendliness)
	}
}

func TestFigure1SurfaceIsAFrontier(t *testing.T) {
	// Every surface point must be mutually non-dominated: the surface IS
	// the Pareto frontier of the 3-metric subspace.
	pts := Figure1Surface(Grid(0.5, 3, 6), Grid(0.1, 0.9, 6))
	generic := make([]Point, len(pts))
	for i, p := range pts {
		generic[i] = p.Point()
	}
	f := Frontier(generic)
	if len(f) != len(generic) {
		t.Fatalf("surface lost %d points to domination", len(generic)-len(f))
	}
}

func TestSurfacePointPoint(t *testing.T) {
	sp := SurfacePoint{FastUtilization: 1, Efficiency: 0.5, Friendliness: 1}
	p := sp.Point()
	if p.Label != "AIMD(1,0.5)" {
		t.Errorf("label = %q", p.Label)
	}
	if len(p.Coords) != 3 || p.Coords[2] != 1 {
		t.Errorf("coords = %v", p.Coords)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid = %v, want %v", g, want)
		}
	}
	if g := Grid(2, 2, 3); g[0] != 2 || g[2] != 2 {
		t.Fatalf("degenerate grid = %v", g)
	}
}

func TestGridPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Grid(0, 1, 1) },
		func() { Grid(1, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: dominance is irreflexive and asymmetric.
func TestQuickDominanceOrder(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := a[:], b[:]
		for _, v := range append(append([]float64{}, av...), bv...) {
			if math.IsNaN(v) {
				return true
			}
		}
		if Dominates(av, av) {
			return false // irreflexive
		}
		if Dominates(av, bv) && Dominates(bv, av) {
			return false // asymmetric
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is transitive.
func TestQuickDominanceTransitive(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		for _, v := range [][]float64{av, bv, cv} {
			for _, x := range v {
				if math.IsNaN(x) {
					return true
				}
			}
		}
		if Dominates(av, bv) && Dominates(bv, cv) {
			return Dominates(av, cv)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Frontier output is mutually non-dominated and every excluded
// point is dominated by some frontier member.
func TestQuickFrontierCorrect(t *testing.T) {
	f := func(raw [][2]float64) bool {
		pts := make([]Point, 0, len(raw))
		for i, r := range raw {
			if math.IsNaN(r[0]) || math.IsNaN(r[1]) {
				continue
			}
			pts = append(pts, Point{Label: string(rune('a' + i%26)), Coords: []float64{r[0], r[1]}})
		}
		front := Frontier(pts)
		inFront := make(map[*Point]bool)
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i].Coords, front[j].Coords) {
					return false
				}
			}
			_ = inFront
		}
		// Every input point is either on the frontier or dominated.
		for _, p := range pts {
			dominated := false
			for _, q := range pts {
				if Dominates(q.Coords, p.Coords) {
					dominated = true
					break
				}
			}
			onFront := false
			for _, q := range front {
				if sameCoords(p.Coords, q.Coords) {
					onFront = true
					break
				}
			}
			if dominated == onFront {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the 2-objective skyline fast path is observationally identical
// to the general all-pairs scan — same members, same input order, NaN and
// ±Inf coordinates included. quick generates NaN/Inf on its own for
// float64, so the generator is left unconstrained.
func TestQuickSkylineMatchesGeneralScan(t *testing.T) {
	f := func(raw [][2]float64, dup uint8) bool {
		pts := make([]Point, 0, len(raw)+1)
		for i, r := range raw {
			pts = append(pts, Point{Label: string(rune('a' + i%26)), Coords: []float64{r[0], r[1]}})
		}
		// Force duplicate coordinate vectors into most runs.
		if len(pts) > 0 {
			d := pts[int(dup)%len(pts)]
			pts = append(pts, Point{Label: "dup", Coords: append([]float64{}, d.Coords...)})
		}
		fast, slow := frontier2(pts), frontierGeneral(pts)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i].Label != slow[i].Label || !sameCoords(fast[i].Coords, slow[i].Coords) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFrontier2NaNAlwaysSurvives pins the NaN corner of the skyline path
// directly: a NaN-coordinate point neither dominates nor is dominated, so
// it always appears in the output, wherever it falls in the input.
func TestFrontier2NaNAlwaysSurvives(t *testing.T) {
	pts := []Point{
		{Label: "low", Coords: []float64{0, 0}},
		{Label: "nan", Coords: []float64{math.NaN(), 5}},
		{Label: "high", Coords: []float64{1, 1}},
	}
	front := Frontier(pts)
	if len(front) != 2 || front[0].Label != "nan" || front[1].Label != "high" {
		t.Fatalf("Frontier = %+v, want [nan high]", front)
	}
}
