package pareto

import (
	"context"
	"fmt"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
)

// AIMDEvaluator returns a CellEvaluator measuring AIMD(α, β) cells in
// the 2-objective plane (efficiency, TCP-friendliness) on cfg — the
// empirical face of Figure 1's tradeoff: gentler backoff (higher β)
// buys efficiency at the price of crowding out Reno, so the frontier is
// a genuine curve through the (α, β) box rather than the whole box.
// Both objectives are oriented higher-is-better, so results feed
// Explore's dominance machinery directly.
//
// Each batch is resolved in two phases. First, metrics.Prefetch pushes
// every run all the cells' estimator calls will need — the homogeneous
// efficiency runs and the p-vs-Reno friendliness runs, over the default
// initial configurations — through the session as one engine batch, so
// cache misses across cells advance together on the SoA fast path
// (AIMD is kernelized). Then the official metrics.Efficiency and
// metrics.TCPFriendliness estimators score each cell from pure memory
// hits, guaranteeing bit-identity with a dense characterization of the
// same cells. A cell counts as Simulated when any of its prefetched
// runs actually executed; on a warm store every flag is false.
//
// The evaluator owns a Session when opt doesn't carry one (inheriting
// the process default store, if installed), so repeated rounds — and
// repeated Explore calls against the same evaluator — share runs.
func AIMDEvaluator(cfg fluid.Config, opt metrics.Options) CellEvaluator {
	if opt.Session == nil && !opt.NoCache {
		opt.Session = metrics.NewSession()
	}
	return func(ctx context.Context, cells []Cell) ([]CellResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		protos := make([]protocol.Protocol, len(cells))
		sets := make([]metrics.RunSet, 0, 2*len(cells))
		for i, c := range cells {
			if !(c.Alpha > 0) || !(c.Beta > 0) || !(c.Beta < 1) {
				return nil, fmt.Errorf("pareto: AIMD cell (α=%v, β=%v) outside α>0, 0<β<1", c.Alpha, c.Beta)
			}
			p := protocol.NewAIMD(c.Alpha, c.Beta)
			protos[i] = p
			sets = append(sets,
				metrics.RunSet{Cfg: cfg, Protos: []protocol.Protocol{p}},
				metrics.RunSet{Cfg: cfg, Protos: []protocol.Protocol{p, protocol.Reno()}},
			)
		}
		var sim []bool
		if opt.Session != nil {
			var err error
			if sim, err = metrics.Prefetch(sets, opt); err != nil {
				return nil, err
			}
		}
		// Post-prefetch estimator calls are session hits; keep them serial
		// (Workers=1) rather than nesting a second worker pool.
		cellOpt := opt
		cellOpt.Workers = 1
		out := make([]CellResult, len(cells))
		for i := range cells {
			eff, err := metrics.Efficiency(cfg, protos[i], 1, cellOpt)
			if err != nil {
				return nil, err
			}
			friendly, err := metrics.TCPFriendliness(cfg, protos[i], 1, 1, cellOpt)
			if err != nil {
				return nil, err
			}
			simulated := true // no session: every run executed
			if sim != nil {
				simulated = sim[2*i] || sim[2*i+1]
			}
			out[i] = CellResult{Coords: []float64{eff, friendly}, Simulated: simulated}
		}
		return out, nil
	}
}
