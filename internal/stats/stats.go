// Package stats provides the small statistical toolkit used by the metric
// estimators and experiment harness: moments, extrema, quantiles, Jain's
// fairness index, linear regression, and tail-window summaries over time
// series produced by the simulators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned (or causes NaN) when a statistic of an empty series
// is requested.
var ErrEmpty = errors.New("stats: empty series")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if xs is empty.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// and panics if q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// JainIndex returns Jain's fairness index of the allocations xs:
//
//	J = (Σx)² / (n · Σx²)
//
// J is 1 for a perfectly equal allocation and 1/n when a single member
// receives everything. It returns NaN for empty input and 1 when all
// allocations are zero (an all-zero allocation is trivially equal).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MinOverMax returns min(xs)/max(xs), the worst-case pairwise ratio used by
// the paper's fairness and friendliness metrics. It returns 1 when all
// values are zero and NaN for empty input.
func MinOverMax(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mn, mx := Min(xs), Max(xs)
	if mx == 0 {
		return 1
	}
	return mn / mx
}

// Tail returns the suffix of xs that starts at fraction f of its length
// (f in [0,1]). Tail(xs, 0.75) is the last quarter of the series — the
// "from some time T onwards" window used throughout the axiom estimators.
func Tail(xs []float64, f float64) []float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	start := int(f * float64(len(xs)))
	if start >= len(xs) {
		start = len(xs) - 1
	}
	if start < 0 {
		start = 0
	}
	if len(xs) == 0 {
		return xs
	}
	return xs[start:]
}

// LinearFit returns the slope and intercept of the least-squares line
// through (i, xs[i]). It returns NaN slope for fewer than two points.
func LinearFit(xs []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range xs {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sumXY - sumX*sumY) / den
	intercept = (sumY - slope*sumX) / n
	return slope, intercept
}

// MovingAverage returns the w-point trailing moving average of xs. The
// first w-1 outputs average only the samples seen so far. It panics if
// w <= 0.
func MovingAverage(xs []float64, w int) []float64 {
	if w <= 0 {
		panic("stats: window must be positive")
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// RelativeSpread returns (max-min)/mean over xs — a cheap convergence
// indicator. It returns 0 for constant series and NaN if the mean is zero
// or the series is empty.
func RelativeSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return (Max(xs) - Min(xs)) / m
}

// Containment returns the Metric-V-style convergence score of xs with the
// extremes trimmed to the [qlo, qhi] quantile band: with x* = mean(xs),
//
//	α = max(0, min( Q(qlo)/x*, 2 − Q(qhi)/x* ))
//
// Using quantiles instead of min/max makes the score robust to rare
// excursions, which matters when scoring noisy packet-level traces; with
// qlo = 0 and qhi = 1 it reduces to the strict containment of Metric V.
// It returns NaN for empty input and 0 when the mean is non-positive.
func Containment(xs []float64, qlo, qhi float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	if m <= 0 {
		return 0
	}
	lo := Quantile(xs, qlo) / m
	hi := Quantile(xs, qhi) / m
	a := math.Min(lo, 2-hi)
	return math.Max(a, 0)
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ring is a fixed-capacity keep-last buffer of float64 samples. Streaming
// observers use it to retain exactly the tail of a series whose total
// length is only approximately known up front: push every sample, then
// extract the last k. Pushing to a zero-capacity ring only counts.
type Ring struct {
	buf   []float64
	next  int // write position
	count int // total samples pushed
}

// NewRing returns a ring retaining the last capacity samples.
func NewRing(capacity int) *Ring {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends one sample, evicting the oldest retained sample when full.
func (r *Ring) Push(v float64) {
	if len(r.buf) > 0 {
		r.buf[r.next] = v
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.count++
}

// PushSlice appends vals in order. The resulting ring state — retained
// samples, write position, and count — is exactly what len(vals)
// sequential Push calls would leave, but whole segments are copied at
// once: values that could not survive anyway (all but the last capacity)
// are skipped, and the survivors land in at most two copy calls.
func (r *Ring) PushSlice(vals []float64) {
	n := len(r.buf)
	r.count += len(vals)
	if n == 0 || len(vals) == 0 {
		return
	}
	v := vals
	if len(v) > n {
		// Sequential pushes would overwrite all but the last n values;
		// advance the write position past the doomed prefix and keep the
		// survivors.
		r.next = (r.next + len(v) - n) % n
		v = v[len(v)-n:]
	}
	m := copy(r.buf[r.next:], v)
	if m < len(v) {
		copy(r.buf, v[m:])
	}
	r.next = (r.next + len(v)) % n
}

// Count returns the total number of samples pushed.
func (r *Ring) Count() int { return r.count }

// Last returns a fresh slice of the most recent k samples in push order.
// k is clamped to the number of samples still retained.
func (r *Ring) Last(k int) []float64 {
	retained := r.count
	if retained > len(r.buf) {
		retained = len(r.buf)
	}
	if k > retained {
		k = retained
	}
	if k <= 0 {
		return nil
	}
	out := make([]float64, k)
	start := r.next - k
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < k; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// TailLen returns the length of the f-tail of a series with n samples,
// mirroring Tail's start index int(f·n) (clamped to keep one sample).
func TailLen(n int, f float64) int {
	if n == 0 {
		return 0
	}
	start := int(f * float64(n))
	if start >= n {
		start = n - 1
	}
	if start < 0 {
		start = 0
	}
	return n - start
}

// LastTail returns the f-tail of the pushed series, identical to
// Tail(series, f) as long as the ring's capacity covered it.
func (r *Ring) LastTail(f float64) []float64 {
	return r.Last(TailLen(r.count, f))
}

// Cap returns the ring's retention capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dump returns every retained sample in push order, for serialization.
func (r *Ring) Dump() []float64 {
	retained := r.count
	if retained > len(r.buf) {
		retained = len(r.buf)
	}
	return r.Last(retained)
}

// RestoreRing reconstructs a ring from Cap/Count/Dump output. The result
// is observationally identical to the original: Count, Last, and
// LastTail all return the same values bit for bit.
func RestoreRing(capacity, count int, retained []float64) *Ring {
	r := NewRing(capacity)
	copy(r.buf, retained)
	if len(r.buf) > 0 {
		r.next = len(retained) % len(r.buf)
	}
	r.count = count
	return r
}
