package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{0, 0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !near(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !near(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !near(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Sum(xs) != 12 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !near(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !near(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(q=2) did not panic")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !near(got, 1, 1e-12) {
		t.Errorf("equal allocation Jain = %v, want 1", got)
	}
	// One of n gets everything: J = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !near(got, 0.25, 1e-12) {
		t.Errorf("single-winner Jain = %v, want 0.25", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero Jain = %v, want 1", got)
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Error("JainIndex(nil) should be NaN")
	}
}

func TestMinOverMax(t *testing.T) {
	if got := MinOverMax([]float64{2, 4}); !near(got, 0.5, 1e-12) {
		t.Errorf("MinOverMax = %v, want 0.5", got)
	}
	if got := MinOverMax([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero MinOverMax = %v, want 1", got)
	}
}

func TestTail(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	if got := Tail(xs, 0.5); len(got) != 4 || got[0] != 4 {
		t.Errorf("Tail(0.5) = %v", got)
	}
	if got := Tail(xs, 0); len(got) != 8 {
		t.Errorf("Tail(0) = %v", got)
	}
	// f=1 still returns at least the last element.
	if got := Tail(xs, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("Tail(1) = %v", got)
	}
	// Out-of-range f is clamped.
	if got := Tail(xs, 2); len(got) != 1 {
		t.Errorf("Tail(2) = %v", got)
	}
	if got := Tail(nil, 0.5); len(got) != 0 {
		t.Errorf("Tail(nil) = %v", got)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3x + 1
	xs := []float64{1, 4, 7, 10, 13}
	slope, intercept := LinearFit(xs)
	if !near(slope, 3, 1e-9) || !near(intercept, 1, 1e-9) {
		t.Errorf("LinearFit = (%v, %v), want (3, 1)", slope, intercept)
	}
	if s, _ := LinearFit([]float64{5}); !math.IsNaN(s) {
		t.Error("LinearFit of 1 point should be NaN")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if !near(got[i], want[i], 1e-12) {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MovingAverage(w=0) did not panic")
		}
	}()
	MovingAverage([]float64{1}, 0)
}

func TestRelativeSpread(t *testing.T) {
	if got := RelativeSpread([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant spread = %v", got)
	}
	if got := RelativeSpread([]float64{1, 3}); !near(got, 1, 1e-12) {
		t.Errorf("spread = %v, want 1", got)
	}
}

func TestContainment(t *testing.T) {
	// Constant series: perfect containment.
	if got := Containment([]float64{5, 5, 5}, 0, 1); !near(got, 1, 1e-12) {
		t.Errorf("constant containment = %v, want 1", got)
	}
	// 40/60 oscillation around mean 50: strict containment = 0.8.
	osc := []float64{40, 60, 40, 60}
	if got := Containment(osc, 0, 1); !near(got, 0.8, 1e-12) {
		t.Errorf("oscillating containment = %v, want 0.8", got)
	}
	// One extreme outlier among many 50s: trimming restores the score.
	noisy := make([]float64, 100)
	for i := range noisy {
		noisy[i] = 50
	}
	noisy[7] = 0
	strict := Containment(noisy, 0, 1)
	trimmed := Containment(noisy, 0.05, 0.95)
	if strict != 0 {
		t.Errorf("strict containment with outlier = %v, want 0", strict)
	}
	if trimmed < 0.9 {
		t.Errorf("trimmed containment = %v, want ≈ 1", trimmed)
	}
	if got := Containment([]float64{-1, -1}, 0, 1); got != 0 {
		t.Errorf("non-positive-mean containment = %v, want 0", got)
	}
	if !math.IsNaN(Containment(nil, 0, 1)) {
		t.Error("empty containment should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !near(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
}

// Property: Jain's index is always in [1/n, 1] for non-negative input.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			// Skip inputs whose squares or sums would overflow float64;
			// the index is only meaningful for finite arithmetic.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			xs[i] = math.Abs(v)
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean is between Min and Max.
func TestQuickMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PushSlice leaves the ring in exactly the state the same
// values pushed one at a time would — retained tail, write position, and
// count — for every capacity/chunking combination.
func TestRingPushSliceMatchesPush(t *testing.T) {
	f := func(capRaw uint8, chunks [][]float64) bool {
		capacity := int(capRaw % 37)
		bulk, ref := NewRing(capacity), NewRing(capacity)
		for _, chunk := range chunks {
			bulk.PushSlice(chunk)
			for _, v := range chunk {
				ref.Push(v)
			}
			if bulk.Count() != ref.Count() {
				return false
			}
			got, want := bulk.Last(capacity), ref.Last(capacity)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The boundary cases quick.Check may not hit: chunks exactly at, one
// below, and far beyond capacity, landing on a wrapped write position.
func TestRingPushSliceBoundaries(t *testing.T) {
	for _, capacity := range []int{0, 1, 4, 7} {
		for _, sizes := range [][]int{{4}, {3, 4}, {7}, {8}, {15}, {1, 7, 2}, {6, 9}} {
			bulk, ref := NewRing(capacity), NewRing(capacity)
			v := 0.0
			for _, sz := range sizes {
				chunk := make([]float64, sz)
				for i := range chunk {
					v++
					chunk[i] = v
				}
				bulk.PushSlice(chunk)
				for _, x := range chunk {
					ref.Push(x)
				}
			}
			got, want := bulk.Last(capacity), ref.Last(capacity)
			if len(got) != len(want) {
				t.Fatalf("cap %d sizes %v: retained %d vs %d", capacity, sizes, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cap %d sizes %v: tail %v vs %v", capacity, sizes, got, want)
				}
			}
			if bulk.Count() != ref.Count() {
				t.Fatalf("cap %d sizes %v: count %d vs %d", capacity, sizes, bulk.Count(), ref.Count())
			}
		}
	}
}
