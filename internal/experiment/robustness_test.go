package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestRobustnessSweep(t *testing.T) {
	entries, err := RobustnessSweep(metrics.Options{Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RobustnessEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	// Table 1's robustness column: plain families score 0.
	for _, name := range []string{"AIMD(1,0.5)", "MIMD(1.01,0.875)", "BIN(1,0.5,0.5,0.5)", "CUBIC(0.4,0.8)"} {
		if e := byName[name]; e.Threshold != 0 {
			t.Errorf("%s threshold = %v, want 0", name, e.Threshold)
		}
	}
	// Robust-AIMD scores ≈ ε.
	if e := byName["RobustAIMD(1,0.8,0.05)"]; e.Threshold < 0.03 || e.Threshold > 0.07 {
		t.Errorf("R-AIMD(ε=0.05) threshold = %v, want ≈ 0.05", e.Threshold)
	}
	// PCC tolerates ≈ 1/(1+δ) = 0.048.
	if e := byName["PCC(δ=20)"]; e.Threshold < 0.02 || e.Threshold > 0.09 {
		t.Errorf("PCC threshold = %v, want ≈ 0.05", e.Threshold)
	}
	// Under 0.5% loss the robust protocols keep the link busy while Reno
	// collapses.
	if reno, ra := byName["AIMD(1,0.5)"], byName["RobustAIMD(1,0.8,0.01)"]; ra.UtilAtHalfPercent <= reno.UtilAtHalfPercent {
		t.Errorf("R-AIMD util %v ≤ Reno util %v under 0.5%% loss",
			ra.UtilAtHalfPercent, reno.UtilAtHalfPercent)
	}
	out := RenderRobustness(entries)
	if !strings.Contains(out, "Metric VI") || !strings.Contains(out, "PCC") {
		t.Errorf("render malformed:\n%s", out)
	}
}

// Golden guarantee for the extended robustness report: the Metric VI
// threshold and constant-loss utilization columns are bit-identical to
// RobustnessSweep's output, and the chaos columns behave sanely (bounded,
// deterministic in the seed, and degraded by the flapping link).
func TestChaosRobustnessSweepGolden(t *testing.T) {
	opt := metrics.Options{Steps: 1500}
	plain, err := RobustnessSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	extended, err := ChaosRobustnessSweep(opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(extended) != len(plain) {
		t.Fatalf("extended report has %d rows, plain has %d", len(extended), len(plain))
	}
	for i := range plain {
		if extended[i].RobustnessEntry != plain[i] {
			t.Errorf("row %d: constant columns diverged: %+v vs %+v", i, extended[i].RobustnessEntry, plain[i])
		}
		// Windows count buffered packets, so total/C can exceed 1; the
		// guard is against NaN/Inf/negative values escaping the chaos runs.
		for _, u := range []float64{extended[i].UtilBurstyLoss, extended[i].UtilFlappyLink} {
			if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
				t.Errorf("row %d: chaos utilization %v invalid: %+v", i, u, extended[i])
			}
		}
	}
	// Deterministic in the seed.
	again, err := ChaosRobustnessSweep(opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range extended {
		if again[i] != extended[i] {
			t.Errorf("row %d: rerun with same seed differs: %+v vs %+v", i, again[i], extended[i])
		}
	}
	out := RenderChaosRobustness(extended)
	if !strings.Contains(out, "bursty") || !strings.Contains(out, "flappy") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestParkingLotExperiment(t *testing.T) {
	entries, err := ParkingLotExperiment([]int{1, 3}, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	// One hop: long and short flows are symmetric.
	if e := entries[0]; e.WindowRatio < 0.8 || e.WindowRatio > 1.25 {
		t.Errorf("1-hop window ratio = %v, want ≈ 1", e.WindowRatio)
	}
	// Three hops: the long flow is beaten down, in goodput even more than
	// in windows (triple RTT).
	e3 := entries[1]
	if e3.WindowRatio >= entries[0].WindowRatio {
		t.Errorf("window ratio did not fall with hops: %v -> %v",
			entries[0].WindowRatio, e3.WindowRatio)
	}
	if e3.GoodputRatio >= e3.WindowRatio {
		t.Errorf("goodput ratio %v ≥ window ratio %v; RTT penalty missing",
			e3.GoodputRatio, e3.WindowRatio)
	}
	out := RenderParkingLot(entries)
	if !strings.Contains(out, "hops") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestParkingLotExperimentDefaults(t *testing.T) {
	entries, err := ParkingLotExperiment(nil, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("default hops = %d entries, want 4", len(entries))
	}
}
