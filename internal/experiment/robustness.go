package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/multilink"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// withDefaultsForSweep fills the horizon the sweep's lossy run uses.
func optSteps(o metrics.Options) int {
	if o.Steps == 0 {
		return 4000
	}
	return o.Steps
}

// RobustnessEntry is one protocol's Metric VI score alongside its lossy-
// link throughput share.
type RobustnessEntry struct {
	Name string
	// Threshold is the largest constant loss rate tolerated (Metric VI).
	Threshold float64
	// UtilAtHalfPercent is the fluid-model utilization the protocol
	// sustains under 0.5% constant non-congestion loss on a finite link.
	UtilAtHalfPercent float64
}

// RobustnessSweep scores the paper's protocol set (plus the PCC stand-in
// and TFRC) on Metric VI: Table 1's claim is that every family scores 0
// except Robust-AIMD, which scores its ε, while PCC tolerates ≈ 1/(1+δ).
func RobustnessSweep(opt metrics.Options) ([]RobustnessEntry, error) {
	protos := []protocol.Protocol{
		protocol.Reno(),
		protocol.Scalable(),
		protocol.SQRT(),
		protocol.CubicLinux(),
		protocol.NewRobustAIMD(1, 0.8, 0.01),
		protocol.NewRobustAIMD(1, 0.8, 0.05),
		protocol.DefaultPCC(),
		protocol.DefaultTFRC(),
		protocol.NewBBRish(),
	}
	var out []RobustnessEntry
	for _, p := range protos {
		thr, err := metrics.Robustness(p, 0.5, 1e-3, opt)
		if err != nil {
			return nil, err
		}
		cfg := FluidLink(20, 100)
		cfg.Loss = fluid.NewConstantLoss(0.005)
		tr, err := fluid.Homogeneous(cfg, p, 1, []float64{1}, optSteps(opt))
		if err != nil {
			return nil, err
		}
		util := stats.Mean(stats.Tail(tr.Utilization(), 0.75))
		out = append(out, RobustnessEntry{
			Name:              p.Name(),
			Threshold:         thr,
			UtilAtHalfPercent: util,
		})
	}
	return out, nil
}

// RenderRobustness formats the sweep.
func RenderRobustness(entries []RobustnessEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tMetric VI threshold\tutilization @0.5% loss")
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", e.Name, e.Threshold, e.UtilAtHalfPercent)
	}
	w.Flush()
	return sb.String()
}

// ParkingLotEntry is one hop-count's outcome in the network-wide
// experiment.
type ParkingLotEntry struct {
	Hops int
	// WindowRatio is long flow avg window / short flows' avg window
	// under stochastic loss observation.
	WindowRatio float64
	// GoodputRatio is the same for goodput (RTT-weighted).
	GoodputRatio float64
	// LinkUtil is the mean per-link utilization.
	LinkUtil float64
}

// ParkingLotExperiment sweeps parking-lot sizes for the §6 network-wide
// extension: the long flow's share decays with hop count.
func ParkingLotExperiment(hops []int, steps int, seed uint64) ([]ParkingLotEntry, error) {
	if len(hops) == 0 {
		hops = []int{1, 2, 3, 4}
	}
	if steps == 0 {
		steps = 6000
	}
	link := multilink.LinkSpec{
		Bandwidth: 100 / 0.042,
		PropDelay: 0.021,
		Buffer:    20,
	}
	var out []ParkingLotEntry
	for _, k := range hops {
		net, err := multilink.ParkingLot(k, link, protocol.Reno(), 1, multilink.WithStochasticLoss(seed))
		if err != nil {
			return nil, err
		}
		res := net.Run(steps)
		shortW, shortG := 0.0, 0.0
		for i := 1; i <= k; i++ {
			shortW += res.AvgWindow(i, 0.75)
			shortG += res.AvgGoodput(i, 0.75)
		}
		shortW /= float64(k)
		shortG /= float64(k)
		util := 0.0
		for l := 0; l < k; l++ {
			util += res.LinkUtilization(l, 0.75)
		}
		out = append(out, ParkingLotEntry{
			Hops:         k,
			WindowRatio:  res.AvgWindow(0, 0.75) / shortW,
			GoodputRatio: res.AvgGoodput(0, 0.75) / shortG,
			LinkUtil:     util / float64(k),
		})
	}
	return out, nil
}

// RenderParkingLot formats the sweep.
func RenderParkingLot(entries []ParkingLotEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "hops\tlong/short window\tlong/short goodput\tlink util")
	for _, e := range entries {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", e.Hops, e.WindowRatio, e.GoodputRatio, e.LinkUtil)
	}
	w.Flush()
	return sb.String()
}
