package experiment

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/multilink"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// withDefaultsForSweep fills the horizon the sweep's lossy run uses.
func optSteps(o metrics.Options) int {
	if o.Steps == 0 {
		return 4000
	}
	return o.Steps
}

// RobustnessEntry is one protocol's Metric VI score alongside its lossy-
// link throughput share.
type RobustnessEntry struct {
	Name string
	// Threshold is the largest constant loss rate tolerated (Metric VI).
	Threshold float64
	// UtilAtHalfPercent is the fluid-model utilization the protocol
	// sustains under 0.5% constant non-congestion loss on a finite link.
	UtilAtHalfPercent float64
}

// robustnessProtocols is the protocol set both robustness experiments
// score: the paper's families plus the PCC stand-in, TFRC, and BBRish.
func robustnessProtocols() []protocol.Protocol {
	return []protocol.Protocol{
		protocol.Reno(),
		protocol.Scalable(),
		protocol.SQRT(),
		protocol.CubicLinux(),
		protocol.NewRobustAIMD(1, 0.8, 0.01),
		protocol.NewRobustAIMD(1, 0.8, 0.05),
		protocol.DefaultPCC(),
		protocol.DefaultTFRC(),
		protocol.NewBBRish(),
	}
}

// lossyUtil measures a single p-sender's mean tail utilization on the
// standard 20 Mbps link under a constant non-congestion loss rate and/or
// a chaos schedule. Both robustness sweeps reduce to this helper, so
// their shared columns are bit-identical by construction.
func lossyUtil(ctx context.Context, p protocol.Protocol, opt metrics.Options, constLoss float64, sched *chaos.Schedule, seed uint64) (float64, error) {
	cfg := FluidLink(20, 100)
	if constLoss > 0 {
		cfg.Loss = fluid.NewConstantLoss(constLoss)
	}
	senders, err := fluid.HomogeneousSenders(p, 1, []float64{1})
	if err != nil {
		return 0, err
	}
	sub := &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: optSteps(opt)}
	st := metrics.NewStream(sub.Meta(), 0.75)
	spec := engine.Spec{Substrate: sub, Observers: []engine.Observer{st}, Chaos: sched, ChaosSeed: seed}
	if _, err := engine.Run(ctx, spec); err != nil {
		return 0, err
	}
	// Per-element total/C mirrors trace.Utilization, so the mean is
	// identical to the recorded-trace computation.
	tail := st.TailTotal()
	util := make([]float64, len(tail))
	for j, tot := range tail {
		util[j] = tot / cfg.Capacity()
	}
	return stats.Mean(util), nil
}

// robustnessCell computes one protocol's Metric VI row: the bisected
// loss-tolerance threshold and the constant-0.5%-loss utilization.
func robustnessCell(ctx context.Context, p protocol.Protocol, opt, cellOpt metrics.Options) (RobustnessEntry, error) {
	thr, err := metrics.Robustness(p, 0.5, 1e-3, cellOpt)
	if err != nil {
		return RobustnessEntry{}, err
	}
	util, err := lossyUtil(ctx, p, opt, 0.005, nil, 0)
	if err != nil {
		return RobustnessEntry{}, err
	}
	return RobustnessEntry{Name: p.Name(), Threshold: thr, UtilAtHalfPercent: util}, nil
}

// RobustnessSweep scores the paper's protocol set (plus the PCC stand-in
// and TFRC) on Metric VI: Table 1's claim is that every family scores 0
// except Robust-AIMD, which scores its ε, while PCC tolerates ≈ 1/(1+δ).
func RobustnessSweep(opt metrics.Options) ([]RobustnessEntry, error) {
	defer obs.StartPhase("robustness")()
	protos := robustnessProtocols()
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(protos), engine.Checkpointable(engine.SweepConfig{Workers: opt.Workers}),
		func(ctx context.Context, i int, _ uint64) (RobustnessEntry, error) {
			return robustnessCell(ctx, protos[i], opt, cellOpt)
		})
}

// ChaosRobustnessEntry extends the Metric VI row with two scheduled-fault
// columns: utilization under bursty correlated (Gilbert–Elliott) loss and
// under a periodically flapping link.
type ChaosRobustnessEntry struct {
	RobustnessEntry
	// UtilBurstyLoss is the utilization under a two-state Gilbert–Elliott
	// loss chain whose stationary mean is ≈ 0.5% — the bursty counterpart
	// of the constant-loss column.
	UtilBurstyLoss float64
	// UtilFlappyLink is the utilization on a link that goes down for 40
	// steps out of every 800.
	UtilFlappyLink float64
}

// ChaosRobustnessSweep is the chaos-aware extension of RobustnessSweep:
// the constant-loss columns are computed by the same code path (and are
// bit-identical to RobustnessSweep's), while the extra columns rerun the
// lossy-link scenario under deterministic fault-injection schedules
// seeded per cell from chaosSeed.
func ChaosRobustnessSweep(opt metrics.Options, chaosSeed uint64) ([]ChaosRobustnessEntry, error) {
	defer obs.StartPhase("robustness-chaos")()
	protos := robustnessProtocols()
	cellOpt := serialCell(opt)
	// A GE chain dwelling ~3% of the time in an 8%-loss bad state gives a
	// stationary loss of 0.02/(0.02+0.3)·0.08 ≈ 0.5% — matched to the
	// constant-loss column so the two are directly comparable.
	bursty := chaos.BurstyLoss(0.02, 0.3, 0.08)
	flappy := chaos.FlappyLink(optSteps(opt), 800, 800, 40)
	for _, s := range []*chaos.Schedule{bursty, flappy} {
		if err := s.Normalize(); err != nil {
			return nil, err
		}
	}
	return engine.Sweep(context.Background(), len(protos), engine.Checkpointable(engine.SweepConfig{Workers: opt.Workers, BaseSeed: chaosSeed}),
		func(ctx context.Context, i int, seed uint64) (ChaosRobustnessEntry, error) {
			p := protos[i]
			base, err := robustnessCell(ctx, p, opt, cellOpt)
			if err != nil {
				return ChaosRobustnessEntry{}, err
			}
			burstyUtil, err := lossyUtil(ctx, p, opt, 0, bursty, seed)
			if err != nil {
				return ChaosRobustnessEntry{}, err
			}
			flappyUtil, err := lossyUtil(ctx, p, opt, 0, flappy, seed)
			if err != nil {
				return ChaosRobustnessEntry{}, err
			}
			return ChaosRobustnessEntry{
				RobustnessEntry: base,
				UtilBurstyLoss:  burstyUtil,
				UtilFlappyLink:  flappyUtil,
			}, nil
		})
}

// RenderChaosRobustness formats the extended sweep.
func RenderChaosRobustness(entries []ChaosRobustnessEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tMetric VI threshold\tutil @0.5% loss\tutil @bursty loss\tutil @flappy link")
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", e.Name, e.Threshold, e.UtilAtHalfPercent, e.UtilBurstyLoss, e.UtilFlappyLink)
	}
	w.Flush()
	return sb.String()
}

// RenderRobustness formats the sweep.
func RenderRobustness(entries []RobustnessEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tMetric VI threshold\tutilization @0.5% loss")
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", e.Name, e.Threshold, e.UtilAtHalfPercent)
	}
	w.Flush()
	return sb.String()
}

// ParkingLotEntry is one hop-count's outcome in the network-wide
// experiment.
type ParkingLotEntry struct {
	Hops int
	// WindowRatio is long flow avg window / short flows' avg window
	// under stochastic loss observation.
	WindowRatio float64
	// GoodputRatio is the same for goodput (RTT-weighted).
	GoodputRatio float64
	// LinkUtil is the mean per-link utilization.
	LinkUtil float64
}

// ParkingLotExperiment sweeps parking-lot sizes for the §6 network-wide
// extension: the long flow's share decays with hop count.
func ParkingLotExperiment(hops []int, steps int, seed uint64) ([]ParkingLotEntry, error) {
	defer obs.StartPhase("parking-lot")()
	if len(hops) == 0 {
		hops = []int{1, 2, 3, 4}
	}
	if steps == 0 {
		steps = 6000
	}
	link := multilink.LinkSpec{
		Bandwidth: 100 / 0.042,
		PropDelay: 0.021,
		Buffer:    20,
	}
	return engine.Sweep(context.Background(), len(hops), engine.Checkpointable(engine.SweepConfig{}),
		func(ctx context.Context, i int, _ uint64) (ParkingLotEntry, error) {
			k := hops[i]
			// Same topology ParkingLot builds: one k-hop flow plus one
			// single-hop flow per link.
			links := make([]multilink.LinkSpec, k)
			path := make([]int, k)
			for l := range links {
				links[l] = link
				path[l] = l
			}
			flows := []multilink.FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: path}}
			for l := 0; l < k; l++ {
				flows = append(flows, multilink.FlowSpec{Proto: protocol.Reno(), Init: 1, Path: []int{l}})
			}
			// Hop ratios need full per-flow series, so this substrate records.
			eres, err := engine.Run(ctx, engine.Spec{
				Substrate: &engine.NetSpec{
					Links: links,
					Flows: flows,
					Opts:  []multilink.Option{multilink.WithStochasticLoss(seed)},
					Steps: steps,
				},
				Record: true,
			})
			if err != nil {
				return ParkingLotEntry{}, err
			}
			res := eres.Net
			shortW, shortG := 0.0, 0.0
			for i := 1; i <= k; i++ {
				shortW += res.AvgWindow(i, 0.75)
				shortG += res.AvgGoodput(i, 0.75)
			}
			shortW /= float64(k)
			shortG /= float64(k)
			util := 0.0
			for l := 0; l < k; l++ {
				util += res.LinkUtilization(l, 0.75)
			}
			return ParkingLotEntry{
				Hops:         k,
				WindowRatio:  res.AvgWindow(0, 0.75) / shortW,
				GoodputRatio: res.AvgGoodput(0, 0.75) / shortG,
				LinkUtil:     util / float64(k),
			}, nil
		})
}

// RenderParkingLot formats the sweep.
func RenderParkingLot(entries []ParkingLotEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "hops\tlong/short window\tlong/short goodput\tlink util")
	for _, e := range entries {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", e.Hops, e.WindowRatio, e.GoodputRatio, e.LinkUtil)
	}
	w.Flush()
	return sb.String()
}
