package experiment

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/multilink"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// withDefaultsForSweep fills the horizon the sweep's lossy run uses.
func optSteps(o metrics.Options) int {
	if o.Steps == 0 {
		return 4000
	}
	return o.Steps
}

// RobustnessEntry is one protocol's Metric VI score alongside its lossy-
// link throughput share.
type RobustnessEntry struct {
	Name string
	// Threshold is the largest constant loss rate tolerated (Metric VI).
	Threshold float64
	// UtilAtHalfPercent is the fluid-model utilization the protocol
	// sustains under 0.5% constant non-congestion loss on a finite link.
	UtilAtHalfPercent float64
}

// RobustnessSweep scores the paper's protocol set (plus the PCC stand-in
// and TFRC) on Metric VI: Table 1's claim is that every family scores 0
// except Robust-AIMD, which scores its ε, while PCC tolerates ≈ 1/(1+δ).
func RobustnessSweep(opt metrics.Options) ([]RobustnessEntry, error) {
	defer obs.StartPhase("robustness")()
	protos := []protocol.Protocol{
		protocol.Reno(),
		protocol.Scalable(),
		protocol.SQRT(),
		protocol.CubicLinux(),
		protocol.NewRobustAIMD(1, 0.8, 0.01),
		protocol.NewRobustAIMD(1, 0.8, 0.05),
		protocol.DefaultPCC(),
		protocol.DefaultTFRC(),
		protocol.NewBBRish(),
	}
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(protos), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (RobustnessEntry, error) {
			p := protos[i]
			thr, err := metrics.Robustness(p, 0.5, 1e-3, cellOpt)
			if err != nil {
				return RobustnessEntry{}, err
			}
			cfg := FluidLink(20, 100)
			cfg.Loss = fluid.NewConstantLoss(0.005)
			senders, err := fluid.HomogeneousSenders(p, 1, []float64{1})
			if err != nil {
				return RobustnessEntry{}, err
			}
			sub := &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: optSteps(opt)}
			st := metrics.NewStream(sub.Meta(), 0.75)
			if _, err := engine.Run(ctx, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}); err != nil {
				return RobustnessEntry{}, err
			}
			// Per-element total/C mirrors trace.Utilization, so the mean is
			// identical to the recorded-trace computation.
			tail := st.TailTotal()
			util := make([]float64, len(tail))
			for j, tot := range tail {
				util[j] = tot / cfg.Capacity()
			}
			return RobustnessEntry{
				Name:              p.Name(),
				Threshold:         thr,
				UtilAtHalfPercent: stats.Mean(util),
			}, nil
		})
}

// RenderRobustness formats the sweep.
func RenderRobustness(entries []RobustnessEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tMetric VI threshold\tutilization @0.5% loss")
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", e.Name, e.Threshold, e.UtilAtHalfPercent)
	}
	w.Flush()
	return sb.String()
}

// ParkingLotEntry is one hop-count's outcome in the network-wide
// experiment.
type ParkingLotEntry struct {
	Hops int
	// WindowRatio is long flow avg window / short flows' avg window
	// under stochastic loss observation.
	WindowRatio float64
	// GoodputRatio is the same for goodput (RTT-weighted).
	GoodputRatio float64
	// LinkUtil is the mean per-link utilization.
	LinkUtil float64
}

// ParkingLotExperiment sweeps parking-lot sizes for the §6 network-wide
// extension: the long flow's share decays with hop count.
func ParkingLotExperiment(hops []int, steps int, seed uint64) ([]ParkingLotEntry, error) {
	defer obs.StartPhase("parking-lot")()
	if len(hops) == 0 {
		hops = []int{1, 2, 3, 4}
	}
	if steps == 0 {
		steps = 6000
	}
	link := multilink.LinkSpec{
		Bandwidth: 100 / 0.042,
		PropDelay: 0.021,
		Buffer:    20,
	}
	return engine.Sweep(context.Background(), len(hops), engine.SweepConfig{},
		func(ctx context.Context, i int, _ uint64) (ParkingLotEntry, error) {
			k := hops[i]
			// Same topology ParkingLot builds: one k-hop flow plus one
			// single-hop flow per link.
			links := make([]multilink.LinkSpec, k)
			path := make([]int, k)
			for l := range links {
				links[l] = link
				path[l] = l
			}
			flows := []multilink.FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: path}}
			for l := 0; l < k; l++ {
				flows = append(flows, multilink.FlowSpec{Proto: protocol.Reno(), Init: 1, Path: []int{l}})
			}
			// Hop ratios need full per-flow series, so this substrate records.
			eres, err := engine.Run(ctx, engine.Spec{
				Substrate: &engine.NetSpec{
					Links: links,
					Flows: flows,
					Opts:  []multilink.Option{multilink.WithStochasticLoss(seed)},
					Steps: steps,
				},
				Record: true,
			})
			if err != nil {
				return ParkingLotEntry{}, err
			}
			res := eres.Net
			shortW, shortG := 0.0, 0.0
			for i := 1; i <= k; i++ {
				shortW += res.AvgWindow(i, 0.75)
				shortG += res.AvgGoodput(i, 0.75)
			}
			shortW /= float64(k)
			shortG /= float64(k)
			util := 0.0
			for l := 0; l < k; l++ {
				util += res.LinkUtilization(l, 0.75)
			}
			return ParkingLotEntry{
				Hops:         k,
				WindowRatio:  res.AvgWindow(0, 0.75) / shortW,
				GoodputRatio: res.AvgGoodput(0, 0.75) / shortG,
				LinkUtil:     util / float64(k),
			}, nil
		})
}

// RenderParkingLot formats the sweep.
func RenderParkingLot(entries []ParkingLotEntry) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "hops\tlong/short window\tlong/short goodput\tlink util")
	for _, e := range entries {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", e.Hops, e.WindowRatio, e.GoodputRatio, e.LinkUtil)
	}
	w.Flush()
	return sb.String()
}
