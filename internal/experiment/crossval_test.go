package experiment

// Cross-validation between the two substrates: the fluid-flow model (in
// which the axioms are defined) and the packet-level testbed (on which the
// paper's experiments run) must agree on steady-state behaviour for the
// scenarios both can express.

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// TestCrossValAIMDEfficiency compares a single Reno flow's steady-state
// utilization across the substrates. Table 1 predicts min(1, b(1+τ/C));
// with C ≈ 70 and τ = 100 the bound clips at 1, so both models should
// fill the link.
func TestCrossValAIMDEfficiency(t *testing.T) {
	// Fluid: min tail X/C compared against delivered throughput fraction.
	fl := FluidLink(20, 100)
	eff, err := metrics.Efficiency(fl, protocol.Reno(), 1, metrics.Options{Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	pk := EmulabLink(20, 100)
	res, err := packetsim.Run(pk, []packetsim.Flow{{Proto: protocol.Reno(), Init: 1}}, 60)
	if err != nil {
		t.Fatal(err)
	}
	pktUtil := res.Throughput(0, 0.5) / pk.Bandwidth
	// Fluid "efficiency" counts queued traffic (X ≥ C means full), packet
	// utilization counts delivered packets; both should read ≈ full.
	if eff < 0.95 {
		t.Errorf("fluid efficiency = %v, want ≈ 1 on deep buffer", eff)
	}
	if pktUtil < 0.9 {
		t.Errorf("packet utilization = %v, want ≈ 1 on deep buffer", pktUtil)
	}
}

// TestCrossValShallowBufferPenalty checks both substrates show the same
// b-driven efficiency gap on a shallow buffer: Reno (b = 0.5) loses
// noticeably more of the link than AIMD(1, 0.8).
func TestCrossValShallowBufferPenalty(t *testing.T) {
	gentle := protocol.NewAIMD(1, 0.8)

	fl := FluidLink(20, 5)
	fluidReno, err := metrics.Efficiency(fl, protocol.Reno(), 1, metrics.Options{Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	fluidGentle, err := metrics.Efficiency(fl, gentle, 1, metrics.Options{Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}

	pk := EmulabLink(20, 5)
	utilOf := func(p protocol.Protocol) float64 {
		res, err := packetsim.Run(pk, []packetsim.Flow{{Proto: p, Init: 1}}, 60)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput(0, 0.5) / pk.Bandwidth
	}
	pktReno := utilOf(protocol.Reno())
	pktGentle := utilOf(gentle)

	if fluidGentle <= fluidReno {
		t.Errorf("fluid: gentle %v ≤ reno %v", fluidGentle, fluidReno)
	}
	if pktGentle <= pktReno {
		t.Errorf("packet: gentle %v ≤ reno %v", pktGentle, pktReno)
	}
	// And the penalty magnitudes are in the same ballpark (within 0.25
	// absolute of each other).
	if d := math.Abs((fluidGentle - fluidReno) - (pktGentle - pktReno)); d > 0.25 {
		t.Errorf("penalty gap differs across substrates by %v (fluid %v vs packet %v)",
			d, fluidGentle-fluidReno, pktGentle-pktReno)
	}
}

// TestCrossValFairnessOrdering checks both substrates agree that AIMD
// converges to fairness while MIMD preserves initial skew.
func TestCrossValFairnessOrdering(t *testing.T) {
	// Fluid side is covered by metrics tests; here: packet side with the
	// same staggered start.
	pk := EmulabLink(20, 100)
	fairOf := func(p protocol.Protocol) float64 {
		res, err := packetsim.Run(pk, []packetsim.Flow{
			{Proto: p, Init: 1},
			{Proto: p, Init: 60},
		}, 90)
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.Throughput(0, 0.5), res.Throughput(1, 0.5)
		return math.Min(a, b) / math.Max(a, b)
	}
	reno := fairOf(protocol.Reno())
	scal := fairOf(protocol.Scalable())
	if reno < 0.6 {
		t.Errorf("packet Reno fairness = %v, want high", reno)
	}
	if scal >= reno {
		t.Errorf("packet MIMD fairness %v ≥ AIMD %v; ordering broken", scal, reno)
	}
}

// TestRTTUnfairness exercises the per-flow ExtraDelay knob: two Reno flows
// whose propagation RTTs differ 3× share a bottleneck. On a shallow buffer
// the classic RTT-unfairness of loss-based AIMD appears (the short-RTT
// flow updates its window 3× as often and dominates); on a deep buffer the
// ~60 ms of shared queueing delay compresses the effective RTT ratio and
// the bias largely washes out — both are textbook behaviours.
func TestRTTUnfairness(t *testing.T) {
	ratioAt := func(buffer int) (ratio, util float64) {
		pk := EmulabLink(20, buffer)
		res, err := packetsim.Run(pk, []packetsim.Flow{
			{Proto: protocol.Reno(), Init: 1},                    // RTT = 42 ms
			{Proto: protocol.Reno(), Init: 1, ExtraDelay: 0.042}, // RTT = 126 ms
		}, 120)
		if err != nil {
			t.Fatal(err)
		}
		short := res.Throughput(0, 0.5)
		long := res.Throughput(1, 0.5)
		return short / long, (short + long) / pk.Bandwidth
	}

	shallowRatio, shallowUtil := ratioAt(10)
	deepRatio, deepUtil := ratioAt(100)

	// Shallow buffer: strong classical bias (≥ 2× for a 3× RTT gap).
	if shallowRatio < 2 {
		t.Errorf("shallow-buffer RTT bias too weak: short/long = %v", shallowRatio)
	}
	// Deep buffer: queueing delay dominates both RTTs; the bias shrinks.
	if deepRatio >= shallowRatio {
		t.Errorf("deep buffer did not compress RTT bias: %v ≥ %v", deepRatio, shallowRatio)
	}
	if shallowUtil < 0.7 || deepUtil < 0.8 {
		t.Errorf("aggregate utilization too low: shallow %v, deep %v", shallowUtil, deepUtil)
	}
}

// TestExtraDelayValidation rejects negative delays.
func TestExtraDelayValidation(t *testing.T) {
	pk := EmulabLink(20, 100)
	_, err := packetsim.Run(pk, []packetsim.Flow{
		{Proto: protocol.Reno(), ExtraDelay: -0.01},
	}, 1)
	if err == nil {
		t.Fatal("negative ExtraDelay accepted")
	}
}

// TestCrossValLossScale compares loss-rate scales: Table 1's AIMD loss
// entry 1−(C+τ)/(C+τ+na) should bound the packet-level measured mean loss
// within an order of magnitude.
func TestCrossValLossScale(t *testing.T) {
	pk := EmulabLink(20, 100)
	res, err := packetsim.Run(pk, []packetsim.Flow{
		{Proto: protocol.Reno(), Init: 1},
		{Proto: protocol.Reno(), Init: 1},
	}, 60)
	if err != nil {
		t.Fatal(err)
	}
	measured := stats.Mean(stats.Tail(res.Trace.Loss(), 0.5))
	theory := 1 - 170.0/(170+2) // C≈70, τ=100, n=2, a=1
	if measured > theory*10 {
		t.Errorf("packet loss %v far above theory scale %v", measured, theory)
	}
}
