package experiment

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/nettopo"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// TopoShape is one named multi-bottleneck topology: the links and the
// flow paths (protocols and inits are filled in per characterization).
type TopoShape struct {
	Name  string
	Links []nettopo.LinkSpec
	Flows []nettopo.FlowSpec
}

// topoLink converts paper units to a nettopo link, mirroring FluidLink.
func topoLink(mbps, bufferMSS float64) nettopo.LinkSpec {
	return nettopo.LinkSpec{
		Bandwidth: fluid.MbpsToMSSps(mbps),
		PropDelay: PaperRTT / 2,
		Buffer:    bufferMSS,
	}
}

// TopoShapes returns the two canonical shapes the topo-axioms experiment
// characterizes protocols on:
//
//   - the §6 3-hop parking lot (one long flow over every hop, one short
//     flow per hop), where efficiency and convergence exercise per-flow
//     bottleneck attribution; and
//   - a 2×2 fat-tree fan-in (leaf → agg → core), where fairness and
//     friendliness are judged per shared link across three tiers.
func TopoShapes() ([]TopoShape, error) {
	link := topoLink(20, 20)
	chain, err := nettopo.LinearChain(3, link)
	if err != nil {
		return nil, err
	}
	parking := TopoShape{
		Name:  "parking-lot-3",
		Links: chain,
		Flows: []nettopo.FlowSpec{
			{Path: []int{0, 1, 2}},
			{Path: []int{0}},
			{Path: []int{1}},
			{Path: []int{2}},
		},
	}

	leaf := topoLink(40, 20)
	agg := topoLink(50, 30)
	core := topoLink(60, 40)
	ftNet, err := nettopo.FatTreeFanIn(2, 2, leaf, agg, core, protocol.Reno(), 1)
	if err != nil {
		return nil, err
	}
	fatTree := TopoShape{Name: "fat-tree-2x2", Links: ftNet.Links()}
	for _, row := range ftNet.RoutingMatrix() {
		path, err := pathFromRow(fatTree.Links, row)
		if err != nil {
			return nil, err
		}
		fatTree.Flows = append(fatTree.Flows, nettopo.FlowSpec{Path: path})
	}
	return []TopoShape{parking, fatTree}, nil
}

// pathFromRow orders a routing-matrix row into a contiguous path by
// chaining link endpoints.
func pathFromRow(links []nettopo.LinkSpec, row []bool) ([]int, error) {
	bySrc := map[string]int{}
	isDst := map[string]bool{}
	var sel []int
	for l, on := range row {
		if !on {
			continue
		}
		sel = append(sel, l)
		bySrc[links[l].Src] = l
		isDst[links[l].Dst] = true
	}
	start := -1
	for _, l := range sel {
		if !isDst[links[l].Src] {
			start = l
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("experiment: routing row is not a path")
	}
	path := []int{start}
	for l := start; ; {
		next, ok := bySrc[links[l].Dst]
		if !ok {
			break
		}
		path = append(path, next)
		l = next
	}
	if len(path) != len(sel) {
		return nil, fmt.Errorf("experiment: routing row is not a single path")
	}
	return path, nil
}

// TopoAxiomRow is one protocol's measured 8-tuple on one topology.
type TopoAxiomRow struct {
	Protocol string
	Topology string
	Scores   metrics.TopoScores
}

// TopoAxioms measures every Table 1 protocol's eight axiom metrics on
// every TopoShapes topology — the multi-bottleneck extension of
// table1-sim. Cells run through the sweep orchestrator; each cell shares
// opt.Session, so repeated baselines (the Reno cross traffic of every
// friendliness mix, the topology-independent fast-utilization and
// robustness probes) simulate once across the whole grid.
func TopoAxioms(opt metrics.Options) ([]TopoAxiomRow, error) {
	defer obs.StartPhase("topo-axioms")()
	shapes, err := TopoShapes()
	if err != nil {
		return nil, err
	}
	protos := Table1Protocols()
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(protos)*len(shapes), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (TopoAxiomRow, error) {
			p := protos[i/len(shapes)]
			shape := shapes[i%len(shapes)]
			scores, err := metrics.CharacterizeTopo(shape.Links, shape.Flows, p, cellOpt)
			if err != nil {
				return TopoAxiomRow{}, fmt.Errorf("experiment: %s on %s: %w", p.Name(), shape.Name, err)
			}
			return TopoAxiomRow{Protocol: p.Name(), Topology: shape.Name, Scores: scores}, nil
		})
}

// RenderTopoAxioms formats the multi-bottleneck axiom table.
func RenderTopoAxioms(rows []TopoAxiomRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Protocol\tTopology\tEff\tFast\tLoss\tFair\tConv\tRobust\tFriendly\tLatency")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Protocol, r.Topology,
			num(r.Scores.Efficiency), num(r.Scores.FastUtilization),
			num(r.Scores.LossAvoidance), num(r.Scores.Fairness),
			num(r.Scores.Convergence), num(r.Scores.Robustness),
			num(r.Scores.TCPFriendliness), num(r.Scores.LatencyAvoidance))
	}
	w.Flush()
	return sb.String()
}
