package experiment

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestTopoShapes(t *testing.T) {
	shapes, err := TopoShapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 2 {
		t.Fatalf("got %d shapes, want 2", len(shapes))
	}
	for _, s := range shapes {
		if len(s.Links) == 0 || len(s.Flows) == 0 {
			t.Errorf("%s: empty topology", s.Name)
		}
		for f, flow := range s.Flows {
			if len(flow.Path) == 0 {
				t.Errorf("%s: flow %d has no path", s.Name, f)
			}
		}
	}
	// The fat-tree fan-in must route every flow through the shared core.
	ft := shapes[1]
	core := len(ft.Links) - 1
	for f, flow := range ft.Flows {
		found := false
		for _, l := range flow.Path {
			if l == core {
				found = true
			}
		}
		if !found {
			t.Errorf("fat-tree flow %d avoids the core link", f)
		}
	}
}

func TestTopoAxiomsQuick(t *testing.T) {
	rows, err := TopoAxioms(metrics.Options{Steps: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 protocols × 2 topologies
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Scores.Efficiency <= 0 {
			t.Errorf("%s on %s: efficiency %v, want positive", r.Protocol, r.Topology, r.Scores.Efficiency)
		}
		if math.IsNaN(r.Scores.Fairness) {
			t.Errorf("%s on %s: fairness NaN on shared-link topologies", r.Protocol, r.Topology)
		}
		if r.Scores.Convergence < 0 || r.Scores.Convergence > 1 {
			t.Errorf("%s on %s: convergence %v out of [0,1]", r.Protocol, r.Topology, r.Scores.Convergence)
		}
	}
	if out := RenderTopoAxioms(rows); len(out) == 0 {
		t.Error("empty render")
	}
}
