package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/axioms"
	"repro/internal/metrics"
	"repro/internal/protocol"
)

var opt = metrics.Options{Steps: 1500}

func TestEmulabLinkConversion(t *testing.T) {
	cfg := EmulabLink(20, 100)
	// 20 Mbps = 1666.67 MSS/s; C = B·2Θ ≈ 70 MSS.
	if math.Abs(cfg.Bandwidth-20e6/8/1500) > 1e-9 {
		t.Fatalf("bandwidth = %v", cfg.Bandwidth)
	}
	if math.Abs(cfg.Capacity()-cfg.Bandwidth*PaperRTT) > 1e-9 {
		t.Fatalf("capacity = %v", cfg.Capacity())
	}
	if cfg.Buffer != 100 {
		t.Fatalf("buffer = %d", cfg.Buffer)
	}
	fl := FluidLink(20, 100)
	if math.Abs(fl.Capacity()-cfg.Capacity()) > 1e-9 {
		t.Fatalf("fluid capacity %v != packet capacity %v", fl.Capacity(), cfg.Capacity())
	}
}

func TestLinkParams(t *testing.T) {
	lp := LinkParams(FluidLink(20, 100), 3)
	if lp.N != 3 || lp.Tau != 100 {
		t.Fatalf("lp = %+v", lp)
	}
	if math.Abs(lp.C-70) > 0.1 {
		t.Fatalf("C = %v, want ≈ 70", lp.C)
	}
}

func TestTable1TheoryRender(t *testing.T) {
	rows := Table1Theory(axioms.Link{C: 100, Tau: 20, N: 2})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1Theory(rows)
	for _, name := range []string{"AIMD(1,0.5)", "MIMD(1.01,0.875)", "BIN(1,0.5,0.5,0.5)", "CUBIC(0.4,0.8)", "RobustAIMD(1,0.8,0.01)"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "∞") {
		t.Errorf("render missing MIMD's ∞ fast-utilization:\n%s", out)
	}
}

func TestTable1EmpiricalTrends(t *testing.T) {
	scores, err := Table1Empirical(FluidLink(20, 20), 2, metrics.Options{Steps: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("scores = %d", len(scores))
	}
	byName := map[string]ProtocolScores{}
	for _, s := range scores {
		byName[s.Name] = s
	}
	reno := byName["AIMD(1,0.5)"]
	scal := byName["MIMD(1.01,0.875)"]
	ra := byName["RobustAIMD(1,0.8,0.01)"]

	// Hierarchy per §5.1: efficiency ordering follows the decrease factor.
	if scal.Empirical.Efficiency <= reno.Empirical.Efficiency {
		t.Errorf("efficiency: Scalable %v ≤ Reno %v", scal.Empirical.Efficiency, reno.Empirical.Efficiency)
	}
	// Fairness: AIMD ≈ 1, MIMD ≈ 0.
	if reno.Empirical.Fairness < 0.85 || scal.Empirical.Fairness > 0.2 {
		t.Errorf("fairness: Reno %v, Scalable %v", reno.Empirical.Fairness, scal.Empirical.Fairness)
	}
	// Robustness: only Robust-AIMD is non-zero.
	if reno.Empirical.Robustness != 0 || scal.Empirical.Robustness != 0 {
		t.Errorf("robustness: Reno %v, Scalable %v", reno.Empirical.Robustness, scal.Empirical.Robustness)
	}
	if ra.Empirical.Robustness <= 0 {
		t.Errorf("Robust-AIMD robustness = %v, want > 0", ra.Empirical.Robustness)
	}
	// Render exercises every column.
	out := RenderTable1Empirical(scores)
	if !strings.Contains(out, "thy/meas") || !strings.Contains(out, "AIMD(1,0.5)") {
		t.Errorf("empirical render malformed:\n%s", out)
	}
}

func TestMetricOrdering(t *testing.T) {
	names := []string{"a", "b", "c"}
	// Higher better: worst first = ascending.
	got := MetricOrdering(names, []float64{0.5, 0.2, 0.9}, true)
	if got[0] != "b" || got[2] != "c" {
		t.Fatalf("ordering = %v", got)
	}
	// Lower better: worst first = descending.
	got = MetricOrdering(names, []float64{0.5, 0.2, 0.9}, false)
	if got[0] != "c" || got[2] != "b" {
		t.Fatalf("ordering = %v", got)
	}
}

func TestTable2SmallGrid(t *testing.T) {
	res, err := Table2(Table2Config{
		Senders:    []int{2},
		Bandwidths: []float64{20},
		Duration:   30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	c := res.Cells[0]
	if c.RAIMD <= 0 || c.PCC < 0 {
		t.Fatalf("cell = %+v", c)
	}
	// The paper's core claim: Robust-AIMD is friendlier than PCC.
	if c.Improvement <= 1 {
		t.Fatalf("improvement = %v, want > 1 (R-AIMD friendlier than PCC)", c.Improvement)
	}
	out := res.Render()
	if !strings.Contains(out, "(2,20)") || !strings.Contains(out, "mean") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestHierarchySmallGrid(t *testing.T) {
	res, err := Hierarchy(HierarchyConfig{
		Senders:    []int{2},
		Bandwidths: []float64{20},
		Buffers:    []int{100},
		Duration:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	cell := res.Cells[0]
	if len(cell.Names) != 3 {
		t.Fatalf("protocols = %v", cell.Names)
	}
	for i, e := range cell.Efficiency {
		if e <= 0 || e > 1.05 {
			t.Errorf("%s efficiency = %v", cell.Names[i], e)
		}
	}
	// Scalable's fairness must be the worst of the three (ratio
	// preservation from staggered starts).
	if got := worstName(cell.Names, cell.Fairness); got != "MIMD(1.01,0.875)" {
		t.Errorf("worst fairness = %s, want Scalable (values %v)", got, cell.Fairness)
	}
	out := res.Render()
	if !strings.Contains(out, "ordering agreement") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFigure1SurfaceAndRender(t *testing.T) {
	pts := Figure1(5, 4)
	if len(pts) != 20 {
		t.Fatalf("surface points = %d, want 20", len(pts))
	}
	out := RenderFigure1(pts)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 21 {
		t.Fatalf("render lines = %d, want header+20", len(lines))
	}
}

func TestFigure1SpotChecksRenoCorner(t *testing.T) {
	checks, err := Figure1SpotChecks([][2]float64{{1, 0.5}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := checks[0]
	if c.BoundFriendly != 1 {
		t.Fatalf("bound = %v, want 1", c.BoundFriendly)
	}
	// AIMD(1, 0.5) IS Reno: measured friendliness ≈ 1, eff ≈ 0.5 on the
	// bufferless link, fast ≈ 1.
	if math.Abs(c.MeasuredFriendly-1) > 0.2 {
		t.Errorf("measured friendliness = %v, want ≈ 1", c.MeasuredFriendly)
	}
	if math.Abs(c.MeasuredEff-0.5) > 0.1 {
		t.Errorf("measured efficiency = %v, want ≈ 0.5", c.MeasuredEff)
	}
	if math.Abs(c.MeasuredFast-1) > 0.1 {
		t.Errorf("measured fast-utilization = %v, want ≈ 1", c.MeasuredFast)
	}
	if out := RenderFigure1Checks(checks); !strings.Contains(out, "AIMD(1,0.5)") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestCheckClaim1(t *testing.T) {
	ev, err := CheckClaim1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TailLoss != 0 {
		t.Errorf("probe tail loss = %v, want 0", ev.TailLoss)
	}
	if ev.FastUtil > 1e-9 {
		t.Errorf("probe fast-utilization = %v, want 0", ev.FastUtil)
	}
	if ev.Efficiency < 0.4 {
		t.Errorf("probe efficiency = %v, want ≥ 0.4 (it nearly fills the link)", ev.Efficiency)
	}
	if !ev.Holds {
		t.Error("Claim 1 evidence does not hold")
	}
}

func TestCheckTheorem1(t *testing.T) {
	checks, err := CheckTheorem1(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no checks")
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("Theorem 1 violated for %s: conv=%v fast=%v eff=%v bound=%v",
				c.Name, c.Convergence, c.FastUtil, c.Efficiency, c.Bound)
		}
	}
}

func TestCheckTheorem2TightnessAndBound(t *testing.T) {
	checks, err := CheckTheorem2(nil, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("Theorem 2 violated for AIMD(%v,%v): measured %v > bound %v",
				c.A, c.B, c.Measured, c.Bound)
		}
		// Tightness: AIMD attains the bound to within estimation noise.
		if c.Tightness < 0.6 || c.Tightness > 1.15 {
			t.Errorf("AIMD(%v,%v) tightness = %v, want ≈ 1", c.A, c.B, c.Tightness)
		}
	}
}

// TestQuickTheorem2TightnessRandomParams drives the tightness result over
// randomized AIMD parameters: for any valid (a, b), the measured
// friendliness on a bufferless link lands on the Theorem 2 expression.
func TestQuickTheorem2TightnessRandomParams(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	seeds := [][2]float64{{0.7, 0.35}, {1.3, 0.62}, {2.4, 0.45}, {0.4, 0.75}, {1.8, 0.55}}
	checks, err := CheckTheorem2(seeds, metrics.Options{Steps: 2500}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("AIMD(%v,%v): measured %v above bound %v", c.A, c.B, c.Measured, c.Bound)
		}
		if c.Tightness < 0.8 || c.Tightness > 1.1 {
			t.Errorf("AIMD(%v,%v): tightness %v strayed from 1", c.A, c.B, c.Tightness)
		}
	}
}

func TestCheckTheorem3(t *testing.T) {
	checks, err := CheckTheorem3(nil, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 3 {
		t.Fatalf("checks = %d", len(checks))
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("Theorem 3 check failed at ε=%v: measured %v, bound %v, non-robust ceiling %v",
				c.Eps, c.Measured, c.Bound, c.NonRobustCeiling)
		}
	}
	// Monotone in ε: more tolerance ⇒ no friendlier (small slack for
	// estimation noise).
	for i := 1; i < len(checks); i++ {
		if checks[i].Measured > checks[i-1].Measured*1.15+0.01 {
			t.Errorf("friendliness rose with ε: %v@%v -> %v@%v",
				checks[i-1].Measured, checks[i-1].Eps, checks[i].Measured, checks[i].Eps)
		}
	}
}

func TestMoreAggressive(t *testing.T) {
	cfg := FluidLink(20, 20)
	agg, err := MoreAggressive(cfg, protocol.Scalable(), protocol.Reno(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !agg {
		t.Error("Scalable not more aggressive than Reno")
	}
	rev, err := MoreAggressive(cfg, protocol.Reno(), protocol.Scalable(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rev {
		t.Error("Reno claimed more aggressive than Scalable")
	}
}

func TestCheckTheorem4(t *testing.T) {
	checks, err := CheckTheorem4(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 4 {
		t.Fatalf("checks = %d", len(checks))
	}
	for _, c := range checks {
		if !c.QMoreAggressive {
			t.Errorf("%s should be more aggressive than Reno", c.Q)
		}
		if !c.Holds {
			t.Errorf("Theorem 4 violated for P=%s Q=%s: friendly-to-Reno %v, friendly-to-Q %v",
				c.P, c.Q, c.FriendlyToReno, c.FriendlyToQ)
		}
	}
}

func TestCheckTheorem5(t *testing.T) {
	checks, err := CheckTheorem5(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if c.LossBasedEff <= 0 {
			t.Errorf("%s efficiency = %v, precondition broken", c.LossBased, c.LossBasedEff)
		}
		if c.AvoiderLatency > 0.1 {
			t.Errorf("Vegas alone latency = %v, want ≈ 0", c.AvoiderLatency)
		}
		if !c.Holds {
			t.Errorf("Theorem 5 violated: %s → %s friendliness %v",
				c.LossBased, c.LatencyAvoider, c.Friendliness)
		}
	}
}
