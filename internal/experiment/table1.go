package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/axioms"
	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Table1Protocols returns fresh instances of the protocol
// parameterizations characterized in Table 1 (and validated in §5.1).
func Table1Protocols() []protocol.Protocol {
	return []protocol.Protocol{
		protocol.Reno(),                      // AIMD(1, 0.5)
		protocol.Scalable(),                  // MIMD(1.01, 0.875)
		protocol.SQRT(),                      // BIN(1, 0.5, 0.5, 0.5)
		protocol.CubicLinux(),                // CUBIC(0.4, 0.8)
		protocol.NewRobustAIMD(1, 0.8, 0.01), // Robust-AIMD(1, 0.8, 0.01)
	}
}

// Table1Theory evaluates Table 1's closed forms at link lp.
func Table1Theory(lp axioms.Link) []axioms.Row {
	return axioms.Table1(lp)
}

// RenderTable1Theory formats the theory rows the way the paper prints
// Table 1: each metric as "value <worst-case>".
func RenderTable1Theory(rows []axioms.Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Protocol\tEfficiency\tLoss-Avoid\tFast-Util\tTCP-Friendly\tFair\tConv\tRobust")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name,
			cell(r.At.Efficiency, r.WorstCase.Efficiency),
			cell(r.At.LossAvoidance, r.WorstCase.LossAvoidance),
			cell(r.At.FastUtilization, r.WorstCase.FastUtilization),
			cell(r.At.TCPFriendliness, r.WorstCase.TCPFriendliness),
			cell(r.At.Fairness, r.WorstCase.Fairness),
			cell(r.At.Convergence, r.WorstCase.Convergence),
			cell(r.At.Robustness, r.At.Robustness),
		)
	}
	w.Flush()
	return sb.String()
}

func cell(at, worst float64) string {
	return fmt.Sprintf("%s <%s>", num(at), num(worst))
}

func num(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) < 0.001 || math.Abs(v) >= 10000):
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// ProtocolScores pairs one protocol's theoretical Table 1 row with its
// measured scores on a concrete link.
type ProtocolScores struct {
	Name      string
	Theory    axioms.Row
	Empirical metrics.Scores
}

// Table1Empirical measures, on the fluid model, every Table 1 protocol's
// empirical 8-tuple with n senders on cfg, alongside the theory row — the
// validation the paper summarizes in §5.1 ("the same hierarchy over
// protocols as induced by the theoretical results").
func Table1Empirical(cfg fluid.Config, n int, opt metrics.Options) ([]ProtocolScores, error) {
	defer obs.StartPhase("table1-sim")()
	lp := LinkParams(cfg, n)
	protos := Table1Protocols()
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(protos), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (ProtocolScores, error) {
			p := protos[i]
			row, err := axioms.FamilyRow(p, lp)
			if err != nil {
				return ProtocolScores{}, fmt.Errorf("experiment: %s: %w", p.Name(), err)
			}
			emp, err := metrics.Characterize(cfg, p, n, cellOpt)
			if err != nil {
				return ProtocolScores{}, fmt.Errorf("experiment: %s: %w", p.Name(), err)
			}
			return ProtocolScores{Name: p.Name(), Theory: row, Empirical: emp}, nil
		})
}

// RenderTable1Empirical formats theory-vs-measured pairs per metric.
func RenderTable1Empirical(scores []ProtocolScores) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Protocol\tEff(thy/meas)\tLoss(thy/meas)\tFast(thy/meas)\tFriendly(thy/meas)\tFair(thy/meas)\tConv(thy/meas)\tRobust(thy/meas)")
	for _, s := range scores {
		fmt.Fprintf(w, "%s\t%s/%s\t%s/%s\t%s/%s\t%s/%s\t%s/%s\t%s/%s\t%s/%s\n",
			s.Name,
			num(s.Theory.At.Efficiency), num(s.Empirical.Efficiency),
			num(s.Theory.At.LossAvoidance), num(s.Empirical.LossAvoidance),
			num(s.Theory.At.FastUtilization), num(s.Empirical.FastUtilization),
			num(s.Theory.At.TCPFriendliness), num(s.Empirical.TCPFriendliness),
			num(s.Theory.At.Fairness), num(s.Empirical.Fairness),
			num(s.Theory.At.Convergence), num(s.Empirical.Convergence),
			num(s.Theory.At.Robustness), num(s.Empirical.Robustness),
		)
	}
	w.Flush()
	return sb.String()
}

// MetricOrdering lists protocol names from worst to best under one metric,
// given values and an orientation.
func MetricOrdering(names []string, values []float64, higherBetter bool) []string {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: tiny n, keeps the code dependency-free and stable.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := values[idx[j-1]], values[idx[j]]
			less := a > b // want ascending when higher is better (worst first)
			if !higherBetter {
				less = a < b
			}
			if !less {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = names[k]
	}
	return out
}
