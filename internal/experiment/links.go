// Package experiment contains the scenario builders, parameter sweeps and
// renderers that regenerate every table and figure in "An Axiomatic
// Approach to Congestion Control" (HotNets 2017):
//
//   - Table 1 (theory):     Table1Theory — the closed-form protocol rows
//   - Table 1 (validation): Table1Empirical — fluid-model measurements
//   - §5.1 experiments:     Hierarchy — packet-level protocol orderings
//     across (n, bandwidth, buffer) grids
//   - Table 2:              Table2 — Robust-AIMD vs PCC TCP-friendliness
//   - Figure 1:             Figure1 + Figure1SpotChecks — the Pareto
//     frontier surface and AIMD's attainment of it
//   - Claim 1, Theorems 1-5: CheckClaim1, CheckTheorem1 … CheckTheorem5
//
// The paper ran its validation on Emulab with a fixed 42 ms RTT and
// bandwidths quoted in Mbps; the builders here reproduce that setup on the
// packet-level simulator (internal/packetsim) and its fluid-model analogue
// (internal/fluid), converting Mbps to the model's MSS/s with 1500-byte
// segments.
package experiment

import (
	"repro/internal/axioms"
	"repro/internal/fluid"
	"repro/internal/packetsim"
)

// PaperRTT is the fixed round-trip time of the paper's Emulab experiments:
// 42 ms, i.e. Θ = 21 ms each way.
const PaperRTT = 0.042

// PaperBandwidthsMbps are the link bandwidths of the §5.1 and Table 2
// experiments.
var PaperBandwidthsMbps = []float64{20, 30, 60, 100}

// PaperBuffersMSS are the §5.1 buffer sizes.
var PaperBuffersMSS = []int{10, 100}

// PaperSenderCounts are the §5.1 / Table 2 connection counts.
var PaperSenderCounts = []int{2, 3, 4}

// EmulabLink returns the packet-level configuration for one of the
// paper's Emulab settings: the given bandwidth in Mbps, a 42 ms RTT and
// the given buffer in MSS.
func EmulabLink(mbps float64, bufferMSS int) packetsim.Config {
	return packetsim.Config{
		Bandwidth: fluid.MbpsToMSSps(mbps),
		PropDelay: PaperRTT / 2,
		Buffer:    bufferMSS,
	}
}

// FluidLink returns the fluid-model configuration matching EmulabLink.
func FluidLink(mbps float64, bufferMSS float64) fluid.Config {
	return fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(mbps),
		PropDelay: PaperRTT / 2,
		Buffer:    bufferMSS,
	}
}

// LinkParams converts a fluid configuration into the axioms package's
// (C, τ, n) triple.
func LinkParams(cfg fluid.Config, n int) axioms.Link {
	return axioms.Link{C: cfg.Capacity(), Tau: cfg.Buffer, N: n}
}
