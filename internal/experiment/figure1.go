package experiment

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/axioms"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/protocol"
)

// Figure1 generates the surface of Figure 1: the Pareto frontier of
// efficiency, TCP-friendliness and fast-utilization. Points have the form
// (α, β, 3(1−β)/(α(1+β))) and every one is attained by AIMD(α, β).
// alphaN and betaN control grid resolution over α ∈ [0.25, 3] and
// β ∈ [0.1, 0.9].
func Figure1(alphaN, betaN int) []pareto.SurfacePoint {
	return pareto.Figure1Surface(
		pareto.Grid(0.25, 3, alphaN),
		pareto.Grid(0.1, 0.9, betaN),
	)
}

// RenderFigure1 formats the surface as a TSV series (α, β, friendliness),
// the data behind the paper's 3-D plot.
func RenderFigure1(points []pareto.SurfacePoint) string {
	var sb strings.Builder
	sb.WriteString("fast_utilization\tefficiency\ttcp_friendliness\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%.4f\t%.4f\t%.4f\n", p.FastUtilization, p.Efficiency, p.Friendliness)
	}
	return sb.String()
}

// Figure1Check is one empirical verification that AIMD(α, β) sits on the
// frontier: its measured fast-utilization, efficiency and friendliness
// against the theoretical point.
type Figure1Check struct {
	Alpha, Beta      float64 // AIMD parameters = the frontier coordinates
	BoundFriendly    float64 // 3(1−β)/(α(1+β))
	MeasuredFriendly float64
	MeasuredFast     float64
	MeasuredEff      float64
}

// Figure1SpotChecks validates the frontier empirically: for each (α, β)
// pair it measures AIMD(α, β)'s fast-utilization, efficiency (on a
// zero-buffer link, where Table 1's worst case β is attained) and
// TCP-friendliness, and pairs them with the Theorem 2 point. Pairs are
// independent cells, swept through the orchestrator (opt.Workers caps the
// pool; each cell's inner init-config runs stay serial to avoid
// oversubscription).
func Figure1SpotChecks(pairs [][2]float64, opt metrics.Options) ([]Figure1Check, error) {
	defer obs.StartPhase("figure1-checks")()
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(pairs), engine.Checkpointable(engine.SweepConfig{Workers: opt.Workers}),
		func(ctx context.Context, i int, _ uint64) (Figure1Check, error) {
			a, b := pairs[i][0], pairs[i][1]
			p := protocol.NewAIMD(a, b)
			// A (nearly) bufferless link isolates the b(1+τ/C) → b limit.
			cfg := FluidLink(20, 0)
			eff, err := metrics.Efficiency(cfg, p, 1, cellOpt)
			if err != nil {
				return Figure1Check{}, err
			}
			fast, err := metrics.FastUtilization(p, cellOpt)
			if err != nil {
				return Figure1Check{}, err
			}
			friendly, err := metrics.TCPFriendliness(cfg, p, 1, 1, cellOpt)
			if err != nil {
				return Figure1Check{}, err
			}
			return Figure1Check{
				Alpha:            a,
				Beta:             b,
				BoundFriendly:    axioms.Theorem2Bound(a, b),
				MeasuredFriendly: friendly,
				MeasuredFast:     fast,
				MeasuredEff:      eff,
			}, nil
		})
}

// RenderFigure1Checks formats the spot checks.
func RenderFigure1Checks(checks []Figure1Check) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "AIMD(α,β)\tbound friendliness\tmeasured friendliness\tmeasured fast\tmeasured eff")
	for _, c := range checks {
		fmt.Fprintf(w, "AIMD(%g,%g)\t%.3f\t%.3f\t%.3f\t%.3f\n",
			c.Alpha, c.Beta, c.BoundFriendly, c.MeasuredFriendly, c.MeasuredFast, c.MeasuredEff)
	}
	w.Flush()
	return sb.String()
}
