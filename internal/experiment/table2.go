package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Table2Config parameterizes the Table 2 reproduction. The paper's setup:
// Robust-AIMD(1, 0.8, 0.01) compared against PCC, for n ∈ {2, 3, 4}
// senders and bandwidths {20, 30, 60, 100} Mbps, fixed 42 ms RTT and a
// 100-MSS buffer. Of the n connections, one is a legacy TCP Reno flow and
// the remaining n−1 run the protocol under test (the paper's friendliness
// metric pits P-senders against Q-senders on one link; Table 2 reports how
// much better Reno fares against Robust-AIMD than against PCC).
type Table2Config struct {
	Senders    []int     // total connections per cell (default {2,3,4})
	Bandwidths []float64 // Mbps (default {20,30,60,100})
	BufferMSS  int       // droptail buffer (default 100)
	Duration   float64   // seconds of simulated time per run (default 60)
	Seeds      int       // independent runs averaged per cell (default 3)
	Seed       uint64    // base seed; run k uses Seed+k
	Workers    int       // sweep concurrency (0 = GOMAXPROCS, 1 = serial)
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Senders) == 0 {
		c.Senders = PaperSenderCounts
	}
	if len(c.Bandwidths) == 0 {
		c.Bandwidths = PaperBandwidthsMbps
	}
	if c.BufferMSS == 0 {
		c.BufferMSS = 100
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	return c
}

// Table2Cell is one (n, bandwidth) entry: the measured TCP-friendliness of
// Robust-AIMD and of PCC (Reno throughput relative to the strongest
// competitor flow, tail-averaged), and their ratio — the paper's
// "improvement" figure (>1 means Robust-AIMD is friendlier).
type Table2Cell struct {
	N           int
	Mbps        float64
	RAIMD       float64
	PCC         float64
	Improvement float64
}

// Table2Result is the full grid plus the average improvement the paper
// quotes (1.92× on average, always >1.5× in their runs).
type Table2Result struct {
	Cells           []Table2Cell
	MeanImprovement float64
	MinImprovement  float64
}

// friendlinessOnPacketLink measures Metric VII on the packet simulator:
// nProto flows of p share the link with one TCP Reno flow; the score is
// Reno's tail throughput divided by the strongest p-flow's. variant
// perturbs flow start times (a few ms each) — the packet simulator is
// deterministic, so phase perturbation is what decorrelates repeated runs
// of the same cell.
func friendlinessOnPacketLink(ctx context.Context, cfg packetsim.Config, p protocol.Protocol, nProto int, duration float64, variant int) (float64, error) {
	flows := make([]packetsim.Flow, 0, nProto+1)
	for i := 0; i < nProto; i++ {
		flows = append(flows, packetsim.Flow{
			Proto: p,
			Init:  1,
			Start: float64(variant)*0.007 + float64(i)*0.003,
		})
	}
	flows = append(flows, packetsim.Flow{Proto: protocol.Reno(), Init: 1, Start: float64(variant) * 0.011})
	// Only tail throughput is consumed here, so the engine skips the trace
	// entirely (Record=false) — the cheap path for the Table 2 grid.
	eres, err := engine.Run(ctx, engine.Spec{
		Substrate: &engine.PacketSpec{Cfg: cfg, Flows: flows, Duration: duration},
	})
	if err != nil {
		return 0, err
	}
	res := eres.Packet
	reno := res.Throughput(nProto, 0.5)
	strongest := 0.0
	for i := 0; i < nProto; i++ {
		if t := res.Throughput(i, 0.5); t > strongest {
			strongest = t
		}
	}
	if strongest == 0 {
		return math.Inf(1), nil
	}
	return reno / strongest, nil
}

// cellFriendliness averages friendlinessOnPacketLink over seeds variants.
func cellFriendliness(ctx context.Context, cfg packetsim.Config, p protocol.Protocol, nProto int, duration float64, seeds int) (float64, error) {
	sum := 0.0
	for k := 0; k < seeds; k++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(k)
		f, err := friendlinessOnPacketLink(ctx, runCfg, p, nProto, duration, k)
		if err != nil {
			return 0, err
		}
		sum += f
	}
	return sum / float64(seeds), nil
}

// Table2 reproduces the paper's Table 2 on the packet-level testbed.
func Table2(tc Table2Config) (*Table2Result, error) {
	defer obs.StartPhase("table2")()
	tc = tc.withDefaults()
	raimd := protocol.NewRobustAIMD(1, 0.8, 0.01)
	pcc := protocol.DefaultPCC()

	type cellSpec struct {
		n    int
		mbps float64
	}
	var specs []cellSpec
	for _, n := range tc.Senders {
		for _, mbps := range tc.Bandwidths {
			specs = append(specs, cellSpec{n: n, mbps: mbps})
		}
	}
	// Cells are independent deterministic simulations; the orchestrator
	// shards them across cores. Seeding keeps the paper's semantics (every
	// cell uses tc.Seed; run k perturbs it by k), so results are identical
	// at any worker count.
	cells, err := engine.Sweep(context.Background(), len(specs), engine.SweepConfig{Workers: tc.Workers, BaseSeed: tc.Seed},
		func(ctx context.Context, i int, _ uint64) (Table2Cell, error) {
			sp := specs[i]
			cfg := EmulabLink(sp.mbps, tc.BufferMSS)
			cfg.Seed = tc.Seed
			ra, err := cellFriendliness(ctx, cfg, raimd, sp.n-1, tc.Duration, tc.Seeds)
			if err != nil {
				return Table2Cell{}, fmt.Errorf("experiment: table2 R-AIMD n=%d bw=%g: %w", sp.n, sp.mbps, err)
			}
			pc, err := cellFriendliness(ctx, cfg, pcc, sp.n-1, tc.Duration, tc.Seeds)
			if err != nil {
				return Table2Cell{}, fmt.Errorf("experiment: table2 PCC n=%d bw=%g: %w", sp.n, sp.mbps, err)
			}
			cell := Table2Cell{N: sp.n, Mbps: sp.mbps, RAIMD: ra, PCC: pc}
			if pc > 0 {
				cell.Improvement = ra / pc
			} else {
				cell.Improvement = math.Inf(1)
			}
			return cell, nil
		})
	if err != nil {
		return nil, err
	}

	result := &Table2Result{Cells: cells, MinImprovement: math.Inf(1)}
	var improvements []float64
	for _, cell := range cells {
		improvements = append(improvements, cell.Improvement)
		if cell.Improvement < result.MinImprovement {
			result.MinImprovement = cell.Improvement
		}
	}
	result.MeanImprovement = stats.Mean(improvements)
	obs.RecordScore("table2.mean_improvement", result.MeanImprovement)
	obs.RecordScore("table2.min_improvement", result.MinImprovement)
	return result, nil
}

// Render formats the grid like the paper's Table 2: one improvement entry
// per (n, BW) pair, with the underlying friendliness scores alongside.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "(n,BW)\tR-AIMD friendliness\tPCC friendliness\tImprovement")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "(%d,%g)\t%.3f\t%.3f\t%.2fx\n", c.N, c.Mbps, c.RAIMD, c.PCC, c.Improvement)
	}
	fmt.Fprintf(w, "mean\t\t\t%.2fx\n", r.MeanImprovement)
	fmt.Fprintf(w, "min\t\t\t%.2fx\n", r.MinImprovement)
	w.Flush()
	return sb.String()
}
