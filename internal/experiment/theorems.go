package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/axioms"
	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// serialCell prepares opt for use inside a sweep cell: the worker knob is
// stripped so parallelism lives at the grid level and cells don't
// oversubscribe, and — unless the caller brought a Session or set NoCache
// — a shared run-deduplication session is installed so every cell of the
// sweep reuses common baselines (the Reno comparator of each friendliness
// cell, repeated robustness probes) instead of re-simulating them. Call
// it once per sweep, before the cell closures are built.
func serialCell(opt metrics.Options) metrics.Options {
	opt.Workers = 1
	if opt.Session == nil && !opt.NoCache {
		opt.Session = metrics.NewSession()
	}
	return opt
}

// streamMixed runs one mixed-population fluid simulation through the
// engine with a streaming observer — the shared helper for theorem checks
// that only consume tail statistics.
func streamMixed(ctx context.Context, cfg fluid.Config, protos []protocol.Protocol, init []float64, steps int) (*metrics.Stream, error) {
	sub := &engine.FluidSpec{Cfg: cfg, Senders: fluid.MixedSenders(protos, init), Steps: steps}
	st := metrics.NewStream(sub.Meta(), metrics.DefaultTailFrac)
	if _, err := engine.Run(ctx, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}); err != nil {
		return nil, err
	}
	return st, nil
}

// Claim1Evidence is the executable demonstration of Claim 1: the
// probe-until-loss protocol is loss-based and, from some point on, 0-loss
// and well-utilizing — yet its fast-utilization score is 0.
type Claim1Evidence struct {
	TailLoss   float64 // max loss over the tail (expected 0)
	Efficiency float64 // tail utilization (expected ≈ 0.5+)
	FastUtil   float64 // growth score over the post-freeze tail (expected 0)
	Holds      bool    // Claim 1's exclusion respected
}

// CheckClaim1 runs the probe on a finite link and scores its tail. The
// run streams through the engine: no trace is materialized — the tail
// observers retain exactly the half of the run the scores need.
func CheckClaim1(opt metrics.Options) (*Claim1Evidence, error) {
	defer obs.StartPhase("claim1")()
	if opt.Steps == 0 {
		opt.Steps = 3000
	}
	cfg := FluidLink(20, 20)
	senders, err := fluid.HomogeneousSenders(protocol.NewProbeUntilLoss(1), 1, []float64{1})
	if err != nil {
		return nil, err
	}
	sub := &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: opt.Steps}
	st := metrics.NewStream(sub.Meta(), 0.5)
	if _, err := engine.Run(context.Background(), engine.Spec{Substrate: sub, Observers: []engine.Observer{st}}); err != nil {
		return nil, err
	}
	ev := &Claim1Evidence{
		TailLoss:   st.LossAvoidance(),
		Efficiency: st.Efficiency(),
		FastUtil:   metrics.FastUtilizationFromSeries(st.TailWindow(0)),
	}
	ev.Holds = axioms.Claim1Holds(true, ev.TailLoss, ev.FastUtil, 1e-9)
	return ev, nil
}

// Theorem1Check is one protocol's test of Theorem 1: measured convergence
// α and fast-utilization β > 0 must imply efficiency ≥ α/(2−α).
type Theorem1Check struct {
	Name        string
	Convergence float64
	FastUtil    float64
	Efficiency  float64
	Bound       float64 // α/(2−α)
	Holds       bool
}

// CheckTheorem1 sweeps a family of fast-utilizing protocols and verifies
// the implication. tol absorbs estimation noise (default 0.05).
func CheckTheorem1(opt metrics.Options, tol float64) ([]Theorem1Check, error) {
	defer obs.StartPhase("theorem1")()
	if tol == 0 {
		tol = 0.05
	}
	cfg := FluidLink(20, 20)
	protos := []protocol.Protocol{
		protocol.Reno(),
		protocol.NewAIMD(1, 0.7),
		protocol.NewAIMD(2, 0.5),
		protocol.NewAIMD(0.5, 0.8),
		protocol.NewRobustAIMD(1, 0.8, 0.01),
	}
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(protos), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (Theorem1Check, error) {
			p := protos[i]
			conv, err := metrics.Convergence(cfg, p, 1, cellOpt)
			if err != nil {
				return Theorem1Check{}, err
			}
			fast, err := metrics.FastUtilization(p, cellOpt)
			if err != nil {
				return Theorem1Check{}, err
			}
			eff, err := metrics.Efficiency(cfg, p, 1, cellOpt)
			if err != nil {
				return Theorem1Check{}, err
			}
			bound := axioms.Theorem1Bound(math.Max(0, math.Min(1, conv)))
			c := Theorem1Check{
				Name:        p.Name(),
				Convergence: conv,
				FastUtil:    fast,
				Efficiency:  eff,
				Bound:       bound,
			}
			c.Holds = fast <= 0 || eff >= bound-tol
			return c, nil
		})
}

// Theorem2Check tests the bound and its tightness for one AIMD(a, b): the
// measured TCP-friendliness must not exceed — and, since AIMD attains the
// bound, should roughly equal — 3(1−b)/(a(1+b)).
type Theorem2Check struct {
	A, B      float64
	Bound     float64
	Measured  float64
	Tightness float64 // Measured / Bound, expected ≈ 1
	Holds     bool    // Measured ≤ Bound (within tolerance)
}

// CheckTheorem2 sweeps AIMD parameters on a (nearly) bufferless link where
// AIMD(a, b) is exactly b-efficient, the regime in which the bound is
// stated to be tight.
func CheckTheorem2(pairs [][2]float64, opt metrics.Options, tol float64) ([]Theorem2Check, error) {
	defer obs.StartPhase("theorem2")()
	if tol == 0 {
		tol = 0.15
	}
	if len(pairs) == 0 {
		pairs = [][2]float64{{1, 0.5}, {1, 0.7}, {2, 0.5}, {0.5, 0.5}, {1, 0.8}}
	}
	cfg := FluidLink(20, 0)
	cellOpt := serialCell(opt)
	return engine.Sweep(context.Background(), len(pairs), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (Theorem2Check, error) {
			a, b := pairs[i][0], pairs[i][1]
			measured, err := metrics.TCPFriendliness(cfg, protocol.NewAIMD(a, b), 1, 1, cellOpt)
			if err != nil {
				return Theorem2Check{}, err
			}
			bound := axioms.Theorem2Bound(a, b)
			return Theorem2Check{
				A: a, B: b,
				Bound:     bound,
				Measured:  measured,
				Tightness: measured / bound,
				Holds:     measured <= bound*(1+tol),
			}, nil
		})
}

// Theorem3Check tests Theorem 3 for Robust-AIMD(1, 0.8, ε). The metric's
// friendliness score is an infimum over ALL initial configurations and
// network parameters, so a sampled measurement can sit above the theorem's
// ceiling without refuting it; what a simulation CAN verify is the
// theorem's substance — that ε-robustness costs TCP-friendliness:
//
//  1. consistency: the measurement never falls below the ceiling by more
//     than estimation noise (the ceiling really is a lower envelope), and
//  2. the robustness penalty: the measurement lands far below the
//     non-robust ceiling of Theorem 2 for the same (a, b).
//
// Monotonicity in ε (larger tolerance ⇒ no friendlier) is asserted across
// a CheckTheorem3 sweep. The link is provisioned so that per-event
// overshoot loss (≈ 2/(C+τ)) stays below every ε tested — otherwise the
// tolerance never engages and Robust-AIMD degenerates to AIMD(a, b).
type Theorem3Check struct {
	Eps              float64
	Bound            float64 // Theorem 3's ceiling
	NonRobustCeiling float64 // Theorem 2's ceiling at the same (a, b)
	Measured         float64
	Holds            bool // Bound ≤ Measured ≪ NonRobustCeiling
}

// CheckTheorem3 sweeps the paper's ε values (0.005, 0.007, 0.01 by
// default).
func CheckTheorem3(epsilons []float64, opt metrics.Options, tol float64) ([]Theorem3Check, error) {
	defer obs.StartPhase("theorem3")()
	if tol == 0 {
		tol = 0.02
	}
	if len(epsilons) == 0 {
		epsilons = []float64{0.005, 0.007, 0.01}
	}
	o := opt
	if o.Steps == 0 {
		o.Steps = 4000
	}
	// C+τ = 700 MSS keeps overshoot loss ≈ 2/702 below ε = 0.005.
	cfg := FluidLink(100, 350)
	lp := LinkParams(cfg, 2)
	return engine.Sweep(context.Background(), len(epsilons), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (Theorem3Check, error) {
			eps := epsilons[i]
			ra := protocol.NewRobustAIMD(1, 0.8, eps)
			st, err := streamMixed(ctx, cfg, []protocol.Protocol{ra, protocol.Reno()}, []float64{1, 1}, o.Steps)
			if err != nil {
				return Theorem3Check{}, err
			}
			measured := st.AvgWindow(1) / st.AvgWindow(0)
			bound := axioms.Theorem3Bound(1, 0.8, eps, lp.C, lp.Tau)
			ceiling := axioms.Theorem2Bound(1, 0.8)
			return Theorem3Check{
				Eps:              eps,
				Bound:            bound,
				NonRobustCeiling: ceiling,
				Measured:         measured,
				Holds:            measured >= bound-tol && measured < ceiling/2,
			}, nil
		})
}

// MoreAggressive empirically tests the §4 relation "P is more aggressive
// than Q": for every initial configuration tried, every P-sender's average
// tail goodput exceeds every Q-sender's.
func MoreAggressive(cfg fluid.Config, p, q protocol.Protocol, opt metrics.Options) (bool, error) {
	o := opt
	if o.Steps == 0 {
		o.Steps = 4000
	}
	inits := o.InitConfigs
	if len(inits) == 0 {
		inits = metrics.DefaultInitConfigs(cfg, 2)
	}
	wins, err := engine.Sweep(context.Background(), len(inits), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (bool, error) {
			st, err := streamMixed(ctx, cfg, []protocol.Protocol{p, q}, inits[i], o.Steps)
			if err != nil {
				return false, err
			}
			return st.AvgGoodput(0) > st.AvgGoodput(1), nil
		})
	if err != nil {
		return false, err
	}
	for _, win := range wins {
		if !win {
			return false, nil
		}
	}
	return true, nil
}

// Theorem4Check tests the friendliness-transfer result for one (P, Q)
// pair: with P α-TCP-friendly and Q more aggressive than Reno, P must be
// (at least) α-friendly to Q.
type Theorem4Check struct {
	P, Q            string
	QMoreAggressive bool    // precondition (3)
	FriendlyToReno  float64 // α
	FriendlyToQ     float64
	Holds           bool // FriendlyToQ ≥ α (within tolerance), given preconditions
}

// CheckTheorem4 exercises the default pairs: TCP-friendly AIMD/BIN
// protocols P against MIMD/AIMD protocols Q that are more aggressive than
// Reno.
func CheckTheorem4(opt metrics.Options, tol float64) ([]Theorem4Check, error) {
	defer obs.StartPhase("theorem4")()
	if tol == 0 {
		tol = 0.1
	}
	cfg := FluidLink(20, 20)
	ps := []protocol.Protocol{
		protocol.NewAIMD(1, 0.7),
		protocol.NewAIMD(0.5, 0.5),
	}
	qs := []protocol.Protocol{
		protocol.Scalable(),
		protocol.NewAIMD(2, 0.5),
	}
	cellOpt := serialCell(opt)
	sweep := engine.SweepConfig{Workers: opt.Workers}
	// Per-P and per-Q quantities are shared across the grid; sweep each axis
	// once, then the flattened P×Q pairs.
	alphas, err := engine.Sweep(context.Background(), len(ps), sweep,
		func(ctx context.Context, i int, _ uint64) (float64, error) {
			return metrics.TCPFriendliness(cfg, ps[i], 1, 1, cellOpt)
		})
	if err != nil {
		return nil, err
	}
	aggs, err := engine.Sweep(context.Background(), len(qs), sweep,
		func(ctx context.Context, i int, _ uint64) (bool, error) {
			return MoreAggressive(cfg, qs[i], protocol.Reno(), cellOpt)
		})
	if err != nil {
		return nil, err
	}
	return engine.Sweep(context.Background(), len(ps)*len(qs), sweep,
		func(ctx context.Context, i int, _ uint64) (Theorem4Check, error) {
			p, q := ps[i/len(qs)], qs[i%len(qs)]
			alpha, agg := alphas[i/len(qs)], aggs[i%len(qs)]
			fq, err := metrics.Friendliness(cfg, p, q, 1, 1, cellOpt)
			if err != nil {
				return Theorem4Check{}, err
			}
			c := Theorem4Check{
				P:               p.Name(),
				Q:               q.Name(),
				QMoreAggressive: agg,
				FriendlyToReno:  alpha,
				FriendlyToQ:     fq,
			}
			// The theorem asserts nothing if Q is not more aggressive.
			c.Holds = !agg || fq >= alpha*(1-tol)
			return c, nil
		})
}

// Theorem5Check demonstrates that an efficient loss-based protocol starves
// any latency-avoiding protocol.
type Theorem5Check struct {
	LossBased      string
	LatencyAvoider string
	LossBasedEff   float64 // α > 0 precondition
	AvoiderLatency float64 // the avoider alone keeps RTT near 2Θ
	Friendliness   float64 // loss-based → avoider, expected ≈ 0
	Holds          bool
}

// CheckTheorem5 runs Reno (and Scalable) against the Vegas-style avoider
// on a generously provisioned link.
func CheckTheorem5(opt metrics.Options, starveThreshold float64) ([]Theorem5Check, error) {
	defer obs.StartPhase("theorem5")()
	if starveThreshold == 0 {
		starveThreshold = 0.1
	}
	cfg := FluidLink(100, 200)
	vegas := protocol.DefaultVegas()
	cellOpt := serialCell(opt)
	avLat, err := metrics.LatencyAvoidance(cfg, vegas, 1, cellOpt)
	if err != nil {
		return nil, err
	}
	lossBased := []protocol.Protocol{protocol.Reno(), protocol.Scalable()}
	return engine.Sweep(context.Background(), len(lossBased), engine.SweepConfig{Workers: opt.Workers},
		func(ctx context.Context, i int, _ uint64) (Theorem5Check, error) {
			p := lossBased[i]
			eff, err := metrics.Efficiency(cfg, p, 1, cellOpt)
			if err != nil {
				return Theorem5Check{}, err
			}
			fr, err := metrics.Friendliness(cfg, p, vegas, 1, 1, cellOpt)
			if err != nil {
				return Theorem5Check{}, err
			}
			return Theorem5Check{
				LossBased:      p.Name(),
				LatencyAvoider: vegas.Name(),
				LossBasedEff:   eff,
				AvoiderLatency: avLat,
				Friendliness:   fr,
				Holds:          eff > 0 && fr < starveThreshold,
			}, nil
		})
}

// RenderChecks formats any of the theorem check slices generically.
func RenderChecks[T any](title string, checks []T, line func(T) string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	for _, c := range checks {
		fmt.Fprintln(w, line(c))
	}
	w.Flush()
	return sb.String()
}
