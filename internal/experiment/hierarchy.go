package experiment

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// HierarchyConfig parameterizes the §5.1 validation experiment: the Linux
// protocols the paper ran on Emulab (TCP Reno, TCP Cubic, TCP Scalable),
// across connection counts, bandwidths and buffer sizes, checking that the
// measured per-metric ordering of protocols matches the theory-induced
// one.
type HierarchyConfig struct {
	Senders    []int     // default {2, 3, 4}
	Bandwidths []float64 // Mbps, default {20, 30, 60, 100}
	Buffers    []int     // MSS, default {10, 100}
	Duration   float64   // seconds per run, default 60
	Seed       uint64
	Workers    int // sweep concurrency (0 = GOMAXPROCS, 1 = serial)
}

func (c HierarchyConfig) withDefaults() HierarchyConfig {
	if len(c.Senders) == 0 {
		c.Senders = PaperSenderCounts
	}
	if len(c.Bandwidths) == 0 {
		c.Bandwidths = PaperBandwidthsMbps
	}
	if len(c.Buffers) == 0 {
		c.Buffers = PaperBuffersMSS
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	return c
}

// hierarchyProtocols are the kernel protocols of §5.1 in the paper's
// formalization.
func hierarchyProtocols() []protocol.Protocol {
	return []protocol.Protocol{
		protocol.Reno(),       // TCP Reno      = AIMD(1, 0.5)
		protocol.CubicLinux(), // TCP Cubic     = CUBIC(0.4, 0.8)
		protocol.Scalable(),   // TCP Scalable  = MIMD(1.01, 0.875)
	}
}

// TheoryOrderings gives, per metric, the §5.1 protocols from worst to
// best as induced by Table 1's formulas:
//
//	efficiency:  Reno (b=0.5) < Cubic (b=0.8) < Scalable (b=0.875)
//	convergence: Reno (2b/(1+b)=0.67) < Cubic (0.89) < Scalable (0.93)
//	fairness:    Scalable (0) < {Reno, Cubic} (1) — only the bottom is fixed
func TheoryOrderings() map[string][]string {
	reno, cubic, scal := "AIMD(1,0.5)", "CUBIC(0.4,0.8)", "MIMD(1.01,0.875)"
	return map[string][]string{
		"efficiency":  {reno, cubic, scal},
		"convergence": {reno, cubic, scal},
		"fairness":    {scal, reno, cubic}, // Scalable strictly worst
	}
}

// HierarchyCell is one (n, bandwidth, buffer) grid point: per-protocol
// measured metrics on the packet-level link.
type HierarchyCell struct {
	N      int
	Mbps   float64
	Buffer int
	Names  []string
	// Efficiency is aggregate delivered throughput / bandwidth.
	Efficiency []float64
	// Loss is the tail mean link loss fraction.
	Loss []float64
	// Fairness is the min/max ratio of per-flow tail throughputs.
	Fairness []float64
	// Convergence is the Metric V containment of per-flow windows.
	Convergence []float64
}

// HierarchyResult aggregates the grid and, per metric with a
// theory-predicted ordering, the fraction of cells whose measured ordering
// agrees.
type HierarchyResult struct {
	Cells     []HierarchyCell
	Agreement map[string]float64
}

// Hierarchy runs the §5.1 validation sweep.
func Hierarchy(hc HierarchyConfig) (*HierarchyResult, error) {
	defer obs.StartPhase("hierarchy")()
	hc = hc.withDefaults()
	theory := TheoryOrderings()
	agreeCount := map[string]int{}
	totalCells := 0

	type cellSpec struct {
		n    int
		mbps float64
		buf  int
	}
	var specs []cellSpec
	for _, n := range hc.Senders {
		for _, mbps := range hc.Bandwidths {
			for _, buf := range hc.Buffers {
				specs = append(specs, cellSpec{n, mbps, buf})
			}
		}
	}
	// Independent deterministic cells: sweep across cores.
	cellPtrs, err := engine.Sweep(context.Background(), len(specs), engine.SweepConfig{Workers: hc.Workers},
		func(ctx context.Context, i int, _ uint64) (*HierarchyCell, error) {
			return hierarchyCell(ctx, hc, specs[i].n, specs[i].mbps, specs[i].buf)
		})
	if err != nil {
		return nil, err
	}

	var cells []HierarchyCell
	for _, cell := range cellPtrs {
		cells = append(cells, *cell)
		totalCells++
		if matchesOrder(theory["efficiency"], cell.Names, cell.Efficiency, true) {
			agreeCount["efficiency"]++
		}
		// For convergence the theory pins the bottom of the ordering
		// (Reno's 2b/(1+b) is lowest); full three-way orderings drown in
		// packet-level noise, matching the paper's "hierarchy from worst
		// to best" framing.
		if worstName(cell.Names, cell.Convergence) == theory["convergence"][0] {
			agreeCount["convergence"]++
		}
		if worstName(cell.Names, cell.Fairness) == theory["fairness"][0] {
			agreeCount["fairness"]++
		}
	}
	res := &HierarchyResult{Cells: cells, Agreement: map[string]float64{}}
	for metric := range theory {
		res.Agreement[metric] = float64(agreeCount[metric]) / float64(totalCells)
	}
	return res, nil
}

func hierarchyCell(ctx context.Context, hc HierarchyConfig, n int, mbps float64, buf int) (*HierarchyCell, error) {
	cell := &HierarchyCell{N: n, Mbps: mbps, Buffer: buf}
	for _, p := range hierarchyProtocols() {
		cfg := EmulabLink(mbps, buf)
		cfg.Seed = hc.Seed
		flows := make([]packetsim.Flow, n)
		for i := range flows {
			// Stagger initial windows so fairness reflects convergence,
			// not symmetric starts (MIMD preserves ratios).
			flows[i] = packetsim.Flow{Proto: p, Init: float64(1 + i*20)}
		}
		// Tail windows and losses stream through an observer; no full
		// trace is materialized for the grid (Record=false).
		sub := &engine.PacketSpec{Cfg: cfg, Flows: flows, Duration: hc.Duration}
		st := metrics.NewStream(sub.Meta(), 0.5)
		eres, err := engine.Run(ctx, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}})
		if err != nil {
			return nil, fmt.Errorf("experiment: hierarchy %s n=%d bw=%g buf=%d: %w", p.Name(), n, mbps, buf, err)
		}
		res := eres.Packet
		var agg float64
		thr := make([]float64, n)
		for i := 0; i < n; i++ {
			thr[i] = res.Throughput(i, 0.5)
			agg += thr[i]
		}
		// Metric V containment with the 5%/95% quantile band: strict
		// min/max containment is dominated by single-MI excursions at
		// packet granularity (e.g. consecutive lossy monitor intervals
		// driving one Cubic flow briefly to the floor), which erases the
		// ordering the experiment is checking.
		conv := 1.0
		for i := 0; i < n; i++ {
			if c := stats.Containment(st.TailWindow(i), 0.05, 0.95); c < conv {
				conv = c
			}
		}
		cell.Names = append(cell.Names, p.Name())
		cell.Efficiency = append(cell.Efficiency, agg/cfg.Bandwidth)
		cell.Loss = append(cell.Loss, stats.Mean(st.TailLoss()))
		cell.Fairness = append(cell.Fairness, stats.MinOverMax(thr))
		cell.Convergence = append(cell.Convergence, maxf(conv, 0))
	}
	return cell, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// matchesOrder reports whether the measured values respect the
// worst-to-best theory ordering (ties within 1% tolerated).
func matchesOrder(theoryOrder, names []string, values []float64, higherBetter bool) bool {
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = values[i]
	}
	for i := 0; i+1 < len(theoryOrder); i++ {
		a, b := byName[theoryOrder[i]], byName[theoryOrder[i+1]]
		if higherBetter {
			if a > b*1.01 {
				return false
			}
		} else {
			if a*1.01 < b {
				return false
			}
		}
	}
	return true
}

// worstName returns the protocol with the lowest value.
func worstName(names []string, values []float64) string {
	worst := 0
	for i := range values {
		if values[i] < values[worst] {
			worst = i
		}
	}
	return names[worst]
}

// Render formats the hierarchy sweep and the per-metric agreement rates.
func (r *HierarchyResult) Render() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "(n,BW,buf)\tprotocol\teff\tloss\tfair\tconv")
	for _, c := range r.Cells {
		for i, name := range c.Names {
			fmt.Fprintf(w, "(%d,%g,%d)\t%s\t%.3f\t%.4f\t%.3f\t%.3f\n",
				c.N, c.Mbps, c.Buffer, name,
				c.Efficiency[i], c.Loss[i], c.Fairness[i], c.Convergence[i])
		}
	}
	w.Flush()
	sb.WriteString("\nordering agreement with theory:\n")
	for metric, frac := range map[string]float64{
		"efficiency":  r.Agreement["efficiency"],
		"convergence": r.Agreement["convergence"],
		"fairness":    r.Agreement["fairness"],
	} {
		fmt.Fprintf(&sb, "  %-12s %.0f%%\n", metric, frac*100)
	}
	return sb.String()
}
