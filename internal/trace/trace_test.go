package trace

import (
	"math"
	"strings"
	"testing"
)

func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(2, 100, 0.042, 4)
	tr.Append([]float64{10, 20}, 0.042, 0)
	tr.Append([]float64{11, 21}, 0.042, 0)
	tr.Append([]float64{12, 22}, 0.050, 0.1)
	tr.Append([]float64{6, 11}, 0.042, 0)
	return tr
}

func TestAppendAndAccessors(t *testing.T) {
	tr := buildTrace(t)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Senders() != 2 {
		t.Fatalf("Senders = %d", tr.Senders())
	}
	if tr.Capacity() != 100 {
		t.Fatalf("Capacity = %v", tr.Capacity())
	}
	if tr.BaseRTT() != 0.042 {
		t.Fatalf("BaseRTT = %v", tr.BaseRTT())
	}
	if got := tr.Window(0); got[2] != 12 {
		t.Fatalf("Window(0)[2] = %v", got[2])
	}
	if got := tr.Total(); got[0] != 30 || got[2] != 34 {
		t.Fatalf("Total = %v", got)
	}
	if got := tr.Loss(); got[2] != 0.1 {
		t.Fatalf("Loss = %v", got)
	}
	if got := tr.RTT(); got[2] != 0.050 {
		t.Fatalf("RTT = %v", got)
	}
}

func TestAppendPanicsOnWrongWidth(t *testing.T) {
	tr := New(2, 100, 0.042, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong width did not panic")
		}
	}()
	tr.Append([]float64{1}, 0.042, 0)
}

func TestGoodput(t *testing.T) {
	tr := buildTrace(t)
	g := tr.Goodput(0)
	// step 0: 10 * 1 / 0.042
	want := 10.0 / 0.042
	if math.Abs(g[0]-want) > 1e-9 {
		t.Fatalf("Goodput[0] = %v, want %v", g[0], want)
	}
	// step 2: 12 * 0.9 / 0.050
	want = 12 * 0.9 / 0.050
	if math.Abs(g[2]-want) > 1e-9 {
		t.Fatalf("Goodput[2] = %v, want %v", g[2], want)
	}
}

func TestGoodputZeroRTT(t *testing.T) {
	tr := New(1, 100, 0, 1)
	tr.Append([]float64{10}, 0, 0)
	if g := tr.Goodput(0); g[0] != 0 {
		t.Fatalf("goodput with zero RTT = %v, want 0", g[0])
	}
}

func TestAvgWindowTail(t *testing.T) {
	tr := buildTrace(t)
	// Tail(0.5) of sender 0 = steps 2,3 = (12+6)/2 = 9.
	if got := tr.AvgWindow(0, 0.5); math.Abs(got-9) > 1e-12 {
		t.Fatalf("AvgWindow tail = %v, want 9", got)
	}
	// Full series.
	if got := tr.AvgWindow(0, 0); math.Abs(got-9.75) > 1e-12 {
		t.Fatalf("AvgWindow full = %v, want 9.75", got)
	}
}

func TestUtilization(t *testing.T) {
	tr := buildTrace(t)
	u := tr.Utilization()
	if math.Abs(u[0]-0.30) > 1e-12 {
		t.Fatalf("Utilization[0] = %v, want 0.30", u[0])
	}
}

func TestUtilizationInfiniteCapacity(t *testing.T) {
	tr := New(1, math.Inf(1), 0.042, 1)
	tr.Append([]float64{100}, 0.042, 0)
	if u := tr.Utilization(); u[0] != 0 {
		t.Fatalf("infinite-capacity utilization = %v, want 0", u[0])
	}
}

func TestLossFreeRuns(t *testing.T) {
	tr := buildTrace(t)
	runs := tr.LossFreeRuns()
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0] != [2]int{0, 2} || runs[1] != [2]int{3, 4} {
		t.Fatalf("runs = %v", runs)
	}
	s, e := tr.LongestLossFreeRun()
	if s != 0 || e != 2 {
		t.Fatalf("longest run = [%d,%d)", s, e)
	}
}

func TestLossFreeRunsAllLossy(t *testing.T) {
	tr := New(1, 10, 0.042, 2)
	tr.Append([]float64{20}, 0.042, 0.5)
	tr.Append([]float64{20}, 0.042, 0.5)
	if runs := tr.LossFreeRuns(); len(runs) != 0 {
		t.Fatalf("runs = %v, want none", runs)
	}
	if s, e := tr.LongestLossFreeRun(); s != 0 || e != 0 {
		t.Fatalf("longest = [%d,%d), want [0,0)", s, e)
	}
}

func TestLossFreeRunsTrailingOpen(t *testing.T) {
	tr := New(1, 10, 0.042, 3)
	tr.Append([]float64{5}, 0.042, 0.5)
	tr.Append([]float64{5}, 0.042, 0)
	tr.Append([]float64{5}, 0.042, 0)
	runs := tr.LossFreeRuns()
	if len(runs) != 1 || runs[0] != [2]int{1, 3} {
		t.Fatalf("runs = %v", runs)
	}
}

func TestWriteTSV(t *testing.T) {
	tr := buildTrace(t)
	var sb strings.Builder
	if err := tr.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("TSV has %d lines, want 5 (header + 4)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step\tw0\tw1\ttotal\trtt\tloss") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0\t10.0000\t20.0000\t30.0000") {
		t.Fatalf("row 0 = %q", lines[1])
	}
}

func TestSummary(t *testing.T) {
	tr := buildTrace(t)
	s := tr.Summary(0)
	if !strings.Contains(s, "steps=4") {
		t.Fatalf("Summary = %q", s)
	}
	empty := New(1, 10, 0.042, 0)
	if got := empty.Summary(0); got != "empty trace" {
		t.Fatalf("empty Summary = %q", got)
	}
}
