package trace

import (
	"encoding/json"
	"math"
	"testing"
)

// TestTraceJSONRoundTrip pins the bit-exactness of the JSON codec,
// including ±Inf capacity and subnormal/odd float payloads that plain
// JSON floats would mangle or reject.
func TestTraceJSONRoundTrip(t *testing.T) {
	for _, capac := range []float64{100.25, math.Inf(1)} {
		tr := New(2, capac, 0.042, 4)
		tr.Append([]float64{1, 2.5}, 0.042, 0)
		tr.Append([]float64{math.Nextafter(1, 2), 5e-324}, 0.0421, 0.125)
		tr.Append([]float64{3, 4}, 0.05, 1e-17)

		data, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("capacity %v: marshal: %v", capac, err)
		}
		var got Trace
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("capacity %v: unmarshal: %v", capac, err)
		}
		if got.Len() != tr.Len() || got.Senders() != tr.Senders() {
			t.Fatalf("shape mismatch: %d×%d vs %d×%d", got.Senders(), got.Len(), tr.Senders(), tr.Len())
		}
		if math.Float64bits(got.Capacity()) != math.Float64bits(tr.Capacity()) ||
			math.Float64bits(got.BaseRTT()) != math.Float64bits(tr.BaseRTT()) {
			t.Fatal("capacity/baseRTT mismatch")
		}
		series := func(name string, a, b []float64) {
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s[%d]: %v != %v", name, i, a[i], b[i])
				}
			}
		}
		series("rtt", got.RTT(), tr.RTT())
		series("loss", got.Loss(), tr.Loss())
		series("total", got.Total(), tr.Total())
		for i := 0; i < tr.Senders(); i++ {
			series("window", got.Window(i), tr.Window(i))
		}
	}
}

// TestTraceJSONRejectsMismatch asserts corrupt payloads error instead of
// panicking, so a torn checkpoint degrades to recomputation.
func TestTraceJSONRejectsMismatch(t *testing.T) {
	var tr Trace
	bad := `{"windows_bits":[[1,2]],"rtt_bits":[1],"loss_bits":[1],"total_bits":[1]}`
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Fatal("mismatched windows length accepted")
	}
	bad = `{"windows_bits":[[1]],"rtt_bits":[1,2],"loss_bits":[1],"total_bits":[1]}`
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Fatal("mismatched rtt length accepted")
	}
}
