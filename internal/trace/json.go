package trace

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON codec for traces, so results that embed a *Trace (notably the
// engine's sweep-cell results) round-trip through encoding/json-based
// checkpoints bit-exactly. Floats are serialized as their IEEE-754 bit
// patterns (decimal uint64s, which encoding/json reads and writes
// exactly): this survives ±Inf capacities — an infinite link is a
// routine configuration — and NaN payloads, neither of which plain JSON
// floats can carry.

// traceJSON is the wire form of a Trace.
type traceJSON struct {
	Windows  [][]uint64 `json:"windows_bits"`
	RTT      []uint64   `json:"rtt_bits"`
	Loss     []uint64   `json:"loss_bits"`
	Total    []uint64   `json:"total_bits"`
	Capacity uint64     `json:"capacity_bits"`
	BaseRTT  uint64     `json:"base_rtt_bits"`
}

func toBits(vs []float64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = math.Float64bits(v)
	}
	return out
}

func fromBits(bs []uint64) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// MarshalJSON implements json.Marshaler.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	w := traceJSON{
		Windows:  make([][]uint64, tr.n),
		RTT:      toBits(tr.rtt),
		Loss:     toBits(tr.loss),
		Total:    toBits(tr.total),
		Capacity: math.Float64bits(tr.capac),
		BaseRTT:  math.Float64bits(tr.baseRTT),
	}
	for i, s := range tr.windows {
		w.Windows[i] = toBits(s)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. Mismatched series lengths
// are reported as errors rather than panicking, so a corrupt checkpoint
// degrades to a recomputed cell.
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var w traceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	steps := len(w.Total)
	if len(w.RTT) != steps || len(w.Loss) != steps {
		return fmt.Errorf("trace: mismatched series lengths in JSON")
	}
	windows := make([][]float64, len(w.Windows))
	for i, s := range w.Windows {
		if len(s) != steps {
			return fmt.Errorf("trace: mismatched series lengths in JSON")
		}
		windows[i] = fromBits(s)
	}
	*tr = *Restore(windows, fromBits(w.RTT), fromBits(w.Loss), fromBits(w.Total),
		math.Float64frombits(w.Capacity), math.Float64frombits(w.BaseRTT))
	return nil
}
