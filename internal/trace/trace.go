// Package trace records the time evolution of a simulated link: per-sender
// congestion windows, the shared RTT and loss-rate series, and derived
// per-sender goodput. All axiom estimators in internal/metrics consume a
// *Trace, regardless of whether it was produced by the fluid-flow model or
// the packet-level testbed, so the two substrates are interchangeable from
// the analysis side.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Trace is a column-oriented record of a simulation run. The zero value is
// not usable; construct with New.
type Trace struct {
	n       int
	windows [][]float64 // windows[i][t] = sender i's window at step t
	rtt     []float64   // rtt[t] = RTT duration of step t (seconds)
	loss    []float64   // loss[t] = shared loss rate at step t
	total   []float64   // total[t] = sum of windows at step t
	baseRTT float64     // 2Θ, the minimum possible RTT (seconds)
	capac   float64     // C, link capacity in MSS (may be +Inf)
}

// New returns an empty trace for n senders on a link with the given
// capacity (in MSS) and base RTT 2Θ (in seconds). steps is a capacity hint.
func New(n int, capacity, baseRTT float64, steps int) *Trace {
	tr := &Trace{
		n:       n,
		windows: make([][]float64, n),
		rtt:     make([]float64, 0, steps),
		loss:    make([]float64, 0, steps),
		total:   make([]float64, 0, steps),
		baseRTT: baseRTT,
		capac:   capacity,
	}
	for i := range tr.windows {
		tr.windows[i] = make([]float64, 0, steps)
	}
	return tr
}

// Restore reconstructs a trace from previously recorded series, for
// deserialization. All slices are adopted without copying; windows must
// have one series per sender and every series must share one length.
// total is stored as given rather than recomputed, so a restored trace
// is bit-identical to the one that was dumped.
func Restore(windows [][]float64, rtt, loss, total []float64, capacity, baseRTT float64) *Trace {
	n := len(windows)
	steps := len(total)
	if len(rtt) != steps || len(loss) != steps {
		panic("trace: Restore with mismatched series lengths")
	}
	for _, w := range windows {
		if len(w) != steps {
			panic("trace: Restore with mismatched series lengths")
		}
	}
	return &Trace{
		n:       n,
		windows: windows,
		rtt:     rtt,
		loss:    loss,
		total:   total,
		baseRTT: baseRTT,
		capac:   capacity,
	}
}

// Append records one time step. windows must have length n.
func (tr *Trace) Append(windows []float64, rtt, loss float64) {
	if len(windows) != tr.n {
		panic(fmt.Sprintf("trace: Append with %d windows, want %d", len(windows), tr.n))
	}
	sum := 0.0
	for i, w := range windows {
		tr.windows[i] = append(tr.windows[i], w)
		sum += w
	}
	tr.rtt = append(tr.rtt, rtt)
	tr.loss = append(tr.loss, loss)
	tr.total = append(tr.total, sum)
}

// Len returns the number of recorded steps.
func (tr *Trace) Len() int { return len(tr.total) }

// Senders returns the number of senders.
func (tr *Trace) Senders() int { return tr.n }

// Capacity returns the link capacity C in MSS the trace was recorded on.
func (tr *Trace) Capacity() float64 { return tr.capac }

// BaseRTT returns the link's minimum RTT (2Θ) in seconds.
func (tr *Trace) BaseRTT() float64 { return tr.baseRTT }

// Window returns the window series of sender i. The returned slice aliases
// the trace's storage and must not be modified.
func (tr *Trace) Window(i int) []float64 { return tr.windows[i] }

// RTT returns the RTT series. The returned slice aliases trace storage.
func (tr *Trace) RTT() []float64 { return tr.rtt }

// Loss returns the loss-rate series. The returned slice aliases storage.
func (tr *Trace) Loss() []float64 { return tr.loss }

// Total returns the series of aggregate window size X(t).
func (tr *Trace) Total() []float64 { return tr.total }

// Goodput returns sender i's goodput series in MSS/s:
// x_i(t)·(1−L(t))/RTT(t).
func (tr *Trace) Goodput(i int) []float64 {
	out := make([]float64, tr.Len())
	w := tr.windows[i]
	for t := range out {
		if tr.rtt[t] > 0 {
			out[t] = w[t] * (1 - tr.loss[t]) / tr.rtt[t]
		}
	}
	return out
}

// AvgWindow returns the mean window of sender i over the tail fraction f
// of the trace (f=0.75 averages the last quarter).
func (tr *Trace) AvgWindow(i int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(tr.windows[i], tailFrac))
}

// AvgGoodput returns the mean goodput of sender i over the tail fraction f.
func (tr *Trace) AvgGoodput(i int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(tr.Goodput(i), tailFrac))
}

// Utilization returns the series X(t)/C. For an infinite-capacity link all
// entries are 0.
func (tr *Trace) Utilization() []float64 {
	out := make([]float64, tr.Len())
	for t, x := range tr.total {
		if tr.capac > 0 {
			out[t] = x / tr.capac
		}
	}
	return out
}

// LossFreeRuns returns the [start, end) intervals of maximal loss-free
// stretches of the trace, longest first is NOT guaranteed; they appear in
// time order.
func (tr *Trace) LossFreeRuns() [][2]int {
	var runs [][2]int
	start := -1
	for t, l := range tr.loss {
		if l == 0 {
			if start < 0 {
				start = t
			}
		} else if start >= 0 {
			runs = append(runs, [2]int{start, t})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, tr.Len()})
	}
	return runs
}

// LongestLossFreeRun returns the longest loss-free [start, end) interval,
// or (0,0) if the trace has no loss-free step.
func (tr *Trace) LongestLossFreeRun() (start, end int) {
	best := [2]int{0, 0}
	for _, r := range tr.LossFreeRuns() {
		if r[1]-r[0] > best[1]-best[0] {
			best = r
		}
	}
	return best[0], best[1]
}

// WriteTSV writes the trace as a tab-separated table with a header row:
// step, per-sender windows, total, rtt, loss.
func (tr *Trace) WriteTSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("step")
	for i := 0; i < tr.n; i++ {
		fmt.Fprintf(&b, "\tw%d", i)
	}
	b.WriteString("\ttotal\trtt\tloss\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for t := 0; t < tr.Len(); t++ {
		b.Reset()
		fmt.Fprintf(&b, "%d", t)
		for i := 0; i < tr.n; i++ {
			fmt.Fprintf(&b, "\t%.4f", tr.windows[i][t])
		}
		fmt.Fprintf(&b, "\t%.4f\t%.6f\t%.6f\n", tr.total[t], tr.rtt[t], tr.loss[t])
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a one-line human-readable digest of the trace tail.
func (tr *Trace) Summary(tailFrac float64) string {
	if tr.Len() == 0 {
		return "empty trace"
	}
	util := stats.Mean(stats.Tail(tr.Utilization(), tailFrac))
	loss := stats.Mean(stats.Tail(tr.loss, tailFrac))
	avg := make([]float64, tr.n)
	for i := range avg {
		avg[i] = tr.AvgWindow(i, tailFrac)
	}
	return fmt.Sprintf("steps=%d util=%.3f loss=%.4f jain=%.3f",
		tr.Len(), util, loss, stats.JainIndex(avg))
}
