// Package svgplot renders the repository's data products — window traces,
// metric series and the Figure 1 frontier surface — as standalone SVG
// documents using only the standard library. It is intentionally small: a
// line chart with axes, ticks and a legend, plus a grid heatmap; enough to
// visually inspect every experiment without external tooling.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline of a line chart.
type Series struct {
	Name string
	Y    []float64 // sample per x step (x is the index)
}

// LineOptions configures Lines.
type LineOptions struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels (default 720)
	Height int // pixels (default 400)
}

// palette holds the stroke colors cycled across series.
var palette = []string{
	"#3366cc", "#dc3912", "#109618", "#ff9900", "#990099",
	"#0099c6", "#dd4477", "#66aa00", "#b82e2e", "#316395",
}

const margin = 56.0

func (o LineOptions) withDefaults() LineOptions {
	if o.Width == 0 {
		o.Width = 720
	}
	if o.Height == 0 {
		o.Height = 400
	}
	return o
}

// Lines renders the series as an SVG line chart. Series may have
// different lengths; NaN/Inf samples break the polyline. An empty input
// yields a chart with axes only.
func Lines(series []Series, opts LineOptions) string {
	o := opts.withDefaults()
	w, h := float64(o.Width), float64(o.Height)
	plotW, plotH := w-2*margin, h-2*margin

	maxX := 1.0
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > 1 && float64(len(s.Y)-1) > maxX {
			maxX = float64(len(s.Y) - 1)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 1) { // no finite data
		minY, maxY = 0, 1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	// Pad the y range 5% so lines don't hug the frame.
	pad := (maxY - minY) * 0.05
	minY, maxY = minY-pad, maxY+pad

	xPix := func(x float64) float64 { return margin + x/maxX*plotW }
	yPix := func(y float64) float64 { return margin + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	header(&b, o.Width, o.Height, o.Title)
	axes(&b, w, h)
	xTicks(&b, w, h, 0, maxX, xPix)
	yTicks(&b, h, minY, maxY, yPix)
	labels(&b, w, h, o)

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		flush := func() {
			if len(pts) > 1 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
					color, strings.Join(pts, " "))
			}
			pts = pts[:0]
		}
		for x, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPix(float64(x)), yPix(v)))
		}
		flush()
		// Legend entry.
		lx := margin + 8
		ly := margin + 16 + float64(si)*16
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+14, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// HeatmapOptions configures Heatmap.
type HeatmapOptions struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // default 640
	Height int // default 480
	// XValues / YValues label the grid axes (optional; indices if nil).
	XValues []float64
	YValues []float64
}

// Heatmap renders grid[y][x] as colored cells, dark blue (low) to red
// (high). Rows may not be ragged; it panics on inconsistent widths.
func Heatmap(grid [][]float64, opts HeatmapOptions) string {
	o := opts
	if o.Width == 0 {
		o.Width = 640
	}
	if o.Height == 0 {
		o.Height = 480
	}
	rows := len(grid)
	cols := 0
	if rows > 0 {
		cols = len(grid[0])
	}
	for _, r := range grid {
		if len(r) != cols {
			panic("svgplot: ragged heatmap grid")
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range grid {
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo == hi {
		hi = lo + 1
	}

	w, h := float64(o.Width), float64(o.Height)
	plotW, plotH := w-2*margin, h-2*margin

	var b strings.Builder
	header(&b, o.Width, o.Height, o.Title)
	if rows > 0 && cols > 0 {
		cw, ch := plotW/float64(cols), plotH/float64(rows)
		for y, row := range grid {
			for x, v := range row {
				frac := 0.0
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					frac = (v - lo) / (hi - lo)
				}
				// y index 0 at the bottom (math convention).
				py := margin + plotH - float64(y+1)*ch
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="%s"><title>%.4g</title></rect>`+"\n",
					margin+float64(x)*cw, py, cw+0.5, ch+0.5, heatColor(frac), v)
			}
		}
	}
	axes(&b, w, h)
	if len(o.XValues) > 0 {
		gridTicksX(&b, w, h, o.XValues)
	}
	if len(o.YValues) > 0 {
		gridTicksY(&b, h, o.YValues)
	}
	labels(&b, w, h, LineOptions{XLabel: o.XLabel, YLabel: o.YLabel})
	// Color scale legend.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">low %.3g</text>`+"\n", w-margin-150, margin-10, lo)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="10" fill="%s"/>`+"\n",
			w-margin-90+float64(i)*8, margin-20, heatColor(float64(i)/9))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">high %.3g</text>`+"\n", w-margin-6, margin-10, hi)
	b.WriteString("</svg>\n")
	return b.String()
}

// heatColor maps [0,1] to a blue→red ramp through white.
func heatColor(frac float64) string {
	frac = math.Max(0, math.Min(1, frac))
	var r, g, bl int
	if frac < 0.5 {
		t := frac * 2
		r = int(40 + t*(255-40))
		g = int(70 + t*(245-70))
		bl = int(200 + t*(245-200))
	} else {
		t := (frac - 0.5) * 2
		r = int(255 - t*(255-200))
		g = int(245 - t*245)
		bl = int(245 - t*200)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func header(b *strings.Builder, width, height int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if title != "" {
		fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
			width/2, esc(title))
	}
}

func axes(b *strings.Builder, w, h float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, margin, margin, h-margin)
}

func xTicks(b *strings.Builder, w, h, lo, hi float64, xPix func(float64) float64) {
	for i := 0; i <= 5; i++ {
		v := lo + (hi-lo)*float64(i)/5
		px := xPix(v)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px, h-margin, px, h-margin+4)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%.4g</text>`+"\n",
			px, h-margin+16, v)
	}
}

func yTicks(b *strings.Builder, h, lo, hi float64, yPix func(float64) float64) {
	for i := 0; i <= 5; i++ {
		v := lo + (hi-lo)*float64(i)/5
		py := yPix(v)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			margin-4, py, margin, py)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.4g</text>`+"\n",
			margin-7, py+3, v)
	}
}

func gridTicksX(b *strings.Builder, w, h float64, xs []float64) {
	plotW := w - 2*margin
	for i, v := range xs {
		px := margin + (float64(i)+0.5)/float64(len(xs))*plotW
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			px, h-margin+16, v)
	}
}

func gridTicksY(b *strings.Builder, h float64, ys []float64) {
	plotH := h - 2*margin
	for i, v := range ys {
		py := margin + plotH - (float64(i)+0.5)/float64(len(ys))*plotH
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n",
			margin-7, py+3, v)
	}
}

func labels(b *strings.Builder, w, h float64, o LineOptions) {
	if o.XLabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
			w/2, h-12, esc(o.XLabel))
	}
	if o.YLabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			h/2, h/2, esc(o.YLabel))
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
