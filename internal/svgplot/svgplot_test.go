package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// wellFormed parses the SVG as XML, the strongest structural check the
// standard library offers.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg[:min(len(svg), 500)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLinesBasic(t *testing.T) {
	svg := Lines([]Series{
		{Name: "reno", Y: []float64{1, 2, 3, 2, 4}},
		{Name: "cubic", Y: []float64{2, 2, 2}},
	}, LineOptions{Title: "windows", XLabel: "step", YLabel: "MSS"})
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "polyline", "reno", "cubic", "windows", "step", "MSS"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines, one per series.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
}

func TestLinesHandlesNaNBreaks(t *testing.T) {
	svg := Lines([]Series{
		{Name: "gappy", Y: []float64{1, 2, math.NaN(), 3, 4}},
	}, LineOptions{})
	wellFormed(t, svg)
	// The NaN splits the series into two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2 (split at NaN)", got)
	}
}

func TestLinesEmpty(t *testing.T) {
	svg := Lines(nil, LineOptions{Title: "empty"})
	wellFormed(t, svg)
	if !strings.Contains(svg, "empty") {
		t.Error("title missing")
	}
	if strings.Contains(svg, "polyline") {
		t.Error("unexpected polyline in empty chart")
	}
}

func TestLinesConstantSeries(t *testing.T) {
	// A constant series must not divide by zero in the y scale.
	svg := Lines([]Series{{Name: "flat", Y: []float64{5, 5, 5}}}, LineOptions{})
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG coordinates")
	}
}

func TestLinesEscapesMarkup(t *testing.T) {
	svg := Lines([]Series{{Name: `a<b&"c"`, Y: []float64{1, 2}}}, LineOptions{Title: "x<y"})
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Error("series name not escaped")
	}
}

func TestHeatmapBasic(t *testing.T) {
	grid := [][]float64{
		{0, 0.5, 1},
		{1, 0.5, 0},
	}
	svg := Heatmap(grid, HeatmapOptions{
		Title: "frontier", XLabel: "alpha", YLabel: "beta",
		XValues: []float64{1, 2, 3}, YValues: []float64{0.1, 0.2},
	})
	wellFormed(t, svg)
	// 6 cells + background + 10 legend swatches.
	if got := strings.Count(svg, "<rect"); got < 6 {
		t.Errorf("rect count = %d, want ≥ 6", got)
	}
	for _, want := range []string{"frontier", "alpha", "beta", "low", "high"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestHeatmapPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged grid did not panic")
		}
	}()
	Heatmap([][]float64{{1, 2}, {3}}, HeatmapOptions{})
}

func TestHeatmapConstantGrid(t *testing.T) {
	svg := Heatmap([][]float64{{2, 2}, {2, 2}}, HeatmapOptions{})
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into constant heatmap")
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	lo, hi := heatColor(0), heatColor(1)
	if lo == hi {
		t.Fatalf("color ramp endpoints identical: %s", lo)
	}
	if heatColor(-1) != lo || heatColor(2) != hi {
		t.Fatal("out-of-range fractions not clamped")
	}
	// All outputs are 7-char hex colors.
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := heatColor(f)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q at %v", c, f)
		}
	}
}
