package nettopo

import (
	"math"
	"testing"

	"repro/internal/multilink"
	"repro/internal/protocol"
)

// oneLink is a 100-MSS-capacity link matching the fluid tests' setup.
func oneLink() LinkSpec {
	theta := 0.021
	return LinkSpec{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
}

func namedLink(src, dst string) LinkSpec {
	l := oneLink()
	l.Src, l.Dst = src, dst
	return l
}

func renoFlow(path ...int) FlowSpec {
	return FlowSpec{Proto: protocol.Reno(), Init: 1, Path: path}
}

func TestValidation(t *testing.T) {
	good := oneLink()
	cases := []struct {
		name  string
		links []LinkSpec
		flows []FlowSpec
	}{
		{"no links", nil, []FlowSpec{renoFlow(0)}},
		{"no flows", []LinkSpec{good}, nil},
		{"zero bandwidth", []LinkSpec{{Bandwidth: 0, PropDelay: 1}}, []FlowSpec{renoFlow(0)}},
		{"nil proto", []LinkSpec{good}, []FlowSpec{{Proto: nil, Init: 1, Path: []int{0}}}},
		{"empty path", []LinkSpec{good}, []FlowSpec{{Proto: protocol.Reno(), Init: 1}}},
		{"unknown link", []LinkSpec{good}, []FlowSpec{renoFlow(1)}},
		{"repeated link", []LinkSpec{good}, []FlowSpec{renoFlow(0, 0)}},
		{"negative extra rtt", []LinkSpec{good}, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{0}, ExtraRTT: -1}}},
		{"half-named link", []LinkSpec{{Bandwidth: 1, PropDelay: 1, Src: "a"}}, []FlowSpec{renoFlow(0)}},
		{"self-loop", []LinkSpec{{Bandwidth: 1, PropDelay: 1, Src: "a", Dst: "a"}}, []FlowSpec{renoFlow(0)}},
		{"mixed naming", []LinkSpec{namedLink("a", "b"), oneLink()}, []FlowSpec{renoFlow(0), renoFlow(1)}},
		{"cycle", []LinkSpec{namedLink("a", "b"), namedLink("b", "c"), namedLink("c", "a")},
			[]FlowSpec{renoFlow(0)}},
		{"discontiguous path", []LinkSpec{namedLink("a", "b"), namedLink("c", "d")},
			[]FlowSpec{renoFlow(0, 1)}},
		{"backwards path", []LinkSpec{namedLink("a", "b"), namedLink("b", "c")},
			[]FlowSpec{renoFlow(1, 0)}},
	}
	for _, c := range cases {
		if _, err := New(c.links, c.flows); err == nil {
			t.Errorf("%s: invalid network accepted", c.name)
		}
	}
}

func TestNamedTopologyAccepted(t *testing.T) {
	// Diamond DAG: a→b, a→c, b→d, c→d. Two node-disjoint paths.
	links := []LinkSpec{
		namedLink("a", "b"), namedLink("a", "c"),
		namedLink("b", "d"), namedLink("c", "d"),
	}
	n, err := New(links, []FlowSpec{renoFlow(0, 2), renoFlow(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	r := n.RoutingMatrix()
	want := [][]bool{
		{true, false, true, false},
		{false, true, false, true},
	}
	for f := range want {
		for l := range want[f] {
			if r[f][l] != want[f][l] {
				t.Errorf("routing[%d][%d] = %v, want %v", f, l, r[f][l], want[f][l])
			}
		}
	}
}

func TestNewFromRouting(t *testing.T) {
	// The routing matrix names the links out of order; chaining by
	// endpoints must recover a→b→c→d regardless.
	links := []LinkSpec{namedLink("b", "c"), namedLink("a", "b"), namedLink("c", "d")}
	n, err := NewFromRouting(links,
		[]FlowSpec{{Proto: protocol.Reno(), Init: 1}},
		[][]bool{{true, true, true}})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.BaseRTT(0); math.Abs(got-3*2*0.021) > 1e-15 {
		t.Errorf("BaseRTT = %v, want %v", got, 3*2*0.021)
	}

	// A row selecting two links leaving different sources with no chain
	// is not a single path.
	if _, err := NewFromRouting(
		[]LinkSpec{namedLink("a", "b"), namedLink("c", "d")},
		[]FlowSpec{{Proto: protocol.Reno(), Init: 1}},
		[][]bool{{true, true}}); err == nil {
		t.Error("disconnected routing row accepted")
	}

	// Path and routing row are mutually exclusive.
	if _, err := NewFromRouting(links,
		[]FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{0}}},
		[][]bool{{true, false, false}}); err == nil {
		t.Error("flow with both Path and routing row accepted")
	}
}

func TestExtraRTTShiftsBaseRTT(t *testing.T) {
	links := []LinkSpec{oneLink()}
	n, err := New(links, []FlowSpec{
		{Proto: protocol.Reno(), Init: 1, Path: []int{0}},
		{Proto: protocol.Reno(), Init: 1, Path: []int{0}, ExtraRTT: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := n.BaseRTT(1) - n.BaseRTT(0); math.Abs(d-0.1) > 1e-15 {
		t.Errorf("ExtraRTT shifted base RTT by %v, want 0.1", d)
	}
	res := n.Step()
	if d := res.FlowRTT[1] - res.FlowRTT[0]; math.Abs(d-0.1) > 1e-15 {
		t.Errorf("ExtraRTT shifted step RTT by %v, want 0.1", d)
	}
	// The longer-RTT flow must see strictly lower normalized growth under
	// an RTT-sensitive protocol; here just check the RTT composition is
	// per-flow, not shared.
	if res.FlowRTT[0] != 2*links[0].PropDelay {
		t.Errorf("flow 0 RTT = %v, want unloaded %v", res.FlowRTT[0], 2*links[0].PropDelay)
	}
}

// TestChainMatchesMultilink is the in-package half of the parity anchor:
// an anonymous-link nettopo network and a multilink network with the same
// specs produce bit-identical trajectories, stochastic mode included.
func TestChainMatchesMultilink(t *testing.T) {
	const hops, steps = 3, 800
	link := oneLink()
	mlLinks := make([]multilink.LinkSpec, hops)
	ntLinks := make([]LinkSpec, hops)
	for i := 0; i < hops; i++ {
		mlLinks[i] = multilink.LinkSpec{Bandwidth: link.Bandwidth, PropDelay: link.PropDelay, Buffer: link.Buffer}
		ntLinks[i] = link
	}
	long := []int{0, 1, 2}
	mlFlows := []multilink.FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: long}}
	ntFlows := []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: long}}
	for i := 0; i < hops; i++ {
		mlFlows = append(mlFlows, multilink.FlowSpec{Proto: protocol.NewAIMD(1, 0.7), Init: 30, Path: []int{i}})
		ntFlows = append(ntFlows, FlowSpec{Proto: protocol.NewAIMD(1, 0.7), Init: 30, Path: []int{i}})
	}
	for _, seed := range []uint64{0, 7} {
		var mlOpts []multilink.Option
		var ntOpts []Option
		name := "deterministic"
		if seed != 0 {
			mlOpts = append(mlOpts, multilink.WithStochasticLoss(seed))
			ntOpts = append(ntOpts, WithStochasticLoss(seed))
			name = "stochastic"
		}
		ml, err := multilink.New(mlLinks, mlFlows, mlOpts...)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := New(ntLinks, ntFlows, ntOpts...)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			mr := ml.Step()
			nr := nt.Step()
			for f := range ntFlows {
				if mr.Windows[f] != nr.Windows[f] {
					t.Fatalf("%s: step %d flow %d window diverged: multilink %v, nettopo %v",
						name, s, f, mr.Windows[f], nr.Windows[f])
				}
				if mr.FlowLoss[f] != nr.FlowLoss[f] || mr.FlowRTT[f] != nr.FlowRTT[f] {
					t.Fatalf("%s: step %d flow %d feedback diverged", name, s, f)
				}
			}
			for l := range ntLinks {
				if mr.LinkLoss[l] != nr.LinkLoss[l] || mr.LinkLoad[l] != nr.LinkLoad[l] {
					t.Fatalf("%s: step %d link %d state diverged", name, s, l)
				}
			}
		}
	}
}

func TestBuilders(t *testing.T) {
	link := oneLink()
	if _, err := LinearChain(0, link); err == nil {
		t.Error("zero-hop chain accepted")
	}
	chain, err := LinearChain(3, link)
	if err != nil {
		t.Fatal(err)
	}
	if chain[0].Src != "n0" || chain[2].Dst != "n3" {
		t.Errorf("chain endpoints %q→%q, want n0→n3", chain[0].Src, chain[2].Dst)
	}

	pl, err := ParkingLot(3, link, protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.RoutingMatrix()); got != 4 {
		t.Errorf("parking lot has %d flows, want 4", got)
	}

	inc, err := Incast(4, link, link, protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r := inc.RoutingMatrix()
	for f := range r {
		if !r[f][4] {
			t.Errorf("incast flow %d misses the core link", f)
		}
	}

	ft, err := FatTreeFanIn(2, 2, link, link, link, protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r = ft.RoutingMatrix()
	if len(r) != 4 {
		t.Fatalf("fat tree has %d flows, want 4", len(r))
	}
	core := len(ft.Links()) - 1
	for f := range r {
		hops := 0
		for _, on := range r[f] {
			if on {
				hops++
			}
		}
		if hops != 3 || !r[f][core] {
			t.Errorf("fat-tree flow %d: %d hops (want 3), core=%v", f, hops, r[f][core])
		}
	}
}

func TestPerturberFlowDeparture(t *testing.T) {
	links := []LinkSpec{oneLink()}
	n, err := New(links, []FlowSpec{renoFlow(0), renoFlow(0)},
		WithPerturber(dropFlow1{}))
	if err != nil {
		t.Fatal(err)
	}
	res := n.Step()
	if res.Windows[1] != 0 {
		t.Errorf("departed flow reported window %v, want 0", res.Windows[1])
	}
	if res.LinkLoad[0] != res.Windows[0] {
		t.Errorf("departed flow still loads the link: load %v, active window %v",
			res.LinkLoad[0], res.Windows[0])
	}
}

type dropFlow1 struct{}

func (dropFlow1) CapacityScale(int, int) float64 { return 1 }
func (dropFlow1) ExtraLoss(int, int) float64     { return 0 }
func (dropFlow1) RTTOffset(int, int) float64     { return 0 }
func (dropFlow1) FlowActive(_, flow int) bool    { return flow != 1 }
