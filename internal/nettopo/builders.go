package nettopo

import (
	"fmt"

	"repro/internal/protocol"
)

// nodeName labels the i-th node of a generated topology.
func nodeName(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// LinearChain returns k copies of link wired in a row through named nodes
// n0 → n1 → … → nk, the shape on which nettopo is bit-identical to
// multilink.
func LinearChain(k int, link LinkSpec) ([]LinkSpec, error) {
	if k < 1 {
		return nil, fmt.Errorf("nettopo: linear chain needs ≥ 1 hop, got %d", k)
	}
	links := make([]LinkSpec, k)
	for i := range links {
		links[i] = link
		links[i].Src = nodeName("n", i)
		links[i].Dst = nodeName("n", i+1)
	}
	return links, nil
}

// ParkingLot builds the canonical k-hop parking-lot scenario on a named
// chain: one "long" flow crosses all k links; each link also carries one
// dedicated "short" flow. Flow 0 is the long flow; flows 1..k are the
// short flows in link order. All flows run clones of proto.
func ParkingLot(k int, link LinkSpec, proto protocol.Protocol, init float64, opts ...Option) (*Network, error) {
	links, err := LinearChain(k, link)
	if err != nil {
		return nil, fmt.Errorf("nettopo: parking lot: %w", err)
	}
	path := make([]int, k)
	for i := range path {
		path[i] = i
	}
	flows := []FlowSpec{{Proto: proto, Init: init, Path: path}}
	for i := 0; i < k; i++ {
		flows = append(flows, FlowSpec{Proto: proto, Init: init, Path: []int{i}})
	}
	return New(links, flows, opts...)
}

// Incast builds the many-to-one fan-in: n sender edges (edge link spec)
// all converging on one shared core link. Flow i traverses [edge_i,
// core]; the core is the last link (index n). All flows run clones of
// proto.
func Incast(n int, edge, core LinkSpec, proto protocol.Protocol, init float64, opts ...Option) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("nettopo: incast needs ≥ 2 senders, got %d", n)
	}
	links := make([]LinkSpec, n+1)
	flows := make([]FlowSpec, n)
	for i := 0; i < n; i++ {
		links[i] = edge
		links[i].Src = nodeName("sender", i)
		links[i].Dst = "switch"
		flows[i] = FlowSpec{Proto: proto, Init: init, Path: []int{i, n}}
	}
	links[n] = core
	links[n].Src = "switch"
	links[n].Dst = "sink"
	return New(links, flows, opts...)
}

// FatTreeFanIn builds a two-level fan-in: leaves·aggs leaf links feed
// aggs aggregation links, which feed one core link; one flow per leaf
// crosses leaf → agg → core. Link order is all leaves, then all aggs,
// then the core (the last index). All flows run clones of proto.
func FatTreeFanIn(leaves, aggs int, leaf, agg, core LinkSpec, proto protocol.Protocol, init float64, opts ...Option) (*Network, error) {
	if leaves < 1 || aggs < 1 {
		return nil, fmt.Errorf("nettopo: fat tree needs ≥ 1 leaf per agg and ≥ 1 agg, got %d×%d", leaves, aggs)
	}
	nLeaf := leaves * aggs
	links := make([]LinkSpec, 0, nLeaf+aggs+1)
	flows := make([]FlowSpec, 0, nLeaf)
	for a := 0; a < aggs; a++ {
		for i := 0; i < leaves; i++ {
			l := leaf
			l.Src = nodeName("host", a*leaves+i)
			l.Dst = nodeName("agg", a)
			links = append(links, l)
		}
	}
	for a := 0; a < aggs; a++ {
		l := agg
		l.Src = nodeName("agg", a)
		l.Dst = "core"
		links = append(links, l)
	}
	c := core
	c.Src = "core"
	c.Dst = "sink"
	links = append(links, c)
	for a := 0; a < aggs; a++ {
		for i := 0; i < leaves; i++ {
			flows = append(flows, FlowSpec{
				Proto: proto,
				Init:  init,
				Path:  []int{a*leaves + i, nLeaf + a, nLeaf + aggs},
			})
		}
	}
	return New(links, flows, opts...)
}
