package nettopo

import (
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/rand64"
)

// randomDAG builds a random topology whose links all point from a
// lower-numbered node to a higher-numbered one (acyclic by construction)
// and random contiguous flow paths over it. Every node chain is
// reachable: link l always exists from node i to some j > i, and paths
// are grown by following Dst→Src adjacency.
func randomDAG(rng *rand64.Source) ([]LinkSpec, []FlowSpec) {
	nodes := 3 + int(rng.Uint64()%5) // 3..7
	nLinks := nodes - 1 + int(rng.Uint64()%uint64(nodes))
	links := make([]LinkSpec, 0, nLinks)
	name := func(i int) string { return nodeName("v", i) }
	// A spanning chain guarantees connectivity; extra links add skips.
	for i := 0; i+1 < nodes; i++ {
		links = append(links, LinkSpec{
			Bandwidth: 500 + 4000*rng.Float64(),
			PropDelay: 0.005 + 0.05*rng.Float64(),
			Buffer:    float64(int(rng.Uint64() % 40)),
			Src:       name(i),
			Dst:       name(i + 1),
		})
	}
	for len(links) < nLinks {
		i := int(rng.Uint64() % uint64(nodes-1))
		j := i + 2 + int(rng.Uint64()%uint64(nodes-i-1))
		if j >= nodes {
			continue
		}
		links = append(links, LinkSpec{
			Bandwidth: 500 + 4000*rng.Float64(),
			PropDelay: 0.005 + 0.05*rng.Float64(),
			Buffer:    float64(int(rng.Uint64() % 40)),
			Src:       name(i),
			Dst:       name(j),
		})
	}
	// Contiguous random walks over the Src-indexed adjacency.
	bySrc := map[string][]int{}
	for l, spec := range links {
		bySrc[spec.Src] = append(bySrc[spec.Src], l)
	}
	nFlows := 2 + int(rng.Uint64()%5)
	flows := make([]FlowSpec, 0, nFlows)
	for f := 0; f < nFlows; f++ {
		l := int(rng.Uint64() % uint64(len(links)))
		path := []int{l}
		for {
			next := bySrc[links[l].Dst]
			if len(next) == 0 || rng.Uint64()%3 == 0 {
				break
			}
			l = next[int(rng.Uint64()%uint64(len(next)))]
			path = append(path, l)
		}
		proto := protocol.Protocol(protocol.Reno())
		if rng.Uint64()%2 == 0 {
			proto = protocol.NewAIMD(1+2*rng.Float64(), 0.5+0.4*rng.Float64())
		}
		flows = append(flows, FlowSpec{
			Proto:    proto,
			Init:     1 + 80*rng.Float64(),
			Path:     path,
			ExtraRTT: 0.05 * rng.Float64(),
		})
	}
	return links, flows
}

// checkConservation drives the network and asserts the conservation law
// at every link of every step:
//
//   - a saturated link (load > C+τ) delivers exactly its capacity:
//     load·(1−loss) = C+τ, and signals the timeout RTT;
//   - an unsaturated link (load < C+τ) never drops: loss = 0;
//   - a link with no standing queue (load ≤ C) adds no queueing delay:
//     rtt = 2Θ exactly.
func checkConservation(t *testing.T, links []LinkSpec, flows []FlowSpec, steps int) {
	t.Helper()
	n, err := New(links, flows)
	if err != nil {
		t.Fatal(err)
	}
	defaulted := n.Links()
	for s := 0; s < steps; s++ {
		res := n.Step()
		for l, spec := range defaulted {
			c, tau := spec.Capacity(), spec.Buffer
			load, loss, rtt := res.LinkLoad[l], res.LinkLoss[l], res.LinkRTT[l]
			switch {
			case load > c+tau:
				delivered := load * (1 - loss)
				if math.Abs(delivered-(c+tau)) > 1e-9*(c+tau) {
					t.Fatalf("step %d link %d: saturated link delivered %v, capacity+buffer %v",
						s, l, delivered, c+tau)
				}
				if rtt != spec.TimeoutRTT {
					t.Fatalf("step %d link %d: saturated link rtt %v, want timeout %v",
						s, l, rtt, spec.TimeoutRTT)
				}
			case load < c+tau:
				if loss != 0 {
					t.Fatalf("step %d link %d: unsaturated link dropped %v", s, l, loss)
				}
				if load <= c && rtt != 2*spec.PropDelay {
					t.Fatalf("step %d link %d: queue-free link rtt %v, want 2Θ = %v",
						s, l, rtt, 2*spec.PropDelay)
				}
			}
		}
		// Flow composition: loss multiplies out survival, RTT adds up.
		for f := range flows {
			survive, rtt := 1.0, flows[f].ExtraRTT
			for _, l := range flows[f].Path {
				survive *= 1 - res.LinkLoss[l]
				rtt += res.LinkRTT[l]
			}
			if math.Abs(res.FlowLoss[f]-(1-survive)) > 1e-12 {
				t.Fatalf("step %d flow %d: composed loss %v, want %v", s, f, res.FlowLoss[f], 1-survive)
			}
			if math.Abs(res.FlowRTT[f]-rtt) > 1e-12 {
				t.Fatalf("step %d flow %d: composed rtt %v, want %v", s, f, res.FlowRTT[f], rtt)
			}
		}
	}
}

// TestConservationRandomDAGs is the seeded property sweep CI always runs.
func TestConservationRandomDAGs(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		links, flows := randomDAG(rand64.New(seed))
		checkConservation(t, links, flows, 400)
	}
}

// FuzzConservation explores the same property over fuzz-chosen seeds.
func FuzzConservation(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		links, flows := randomDAG(rand64.New(seed))
		checkConservation(t, links, flows, 150)
	})
}
