// Package nettopo generalizes internal/multilink's linear-chain networks
// to arbitrary DAG topologies, following the modular conservation-law
// construction of Briat et al. (arXiv:1303.3796, 1208.1230): links,
// queues, and flows are independent building blocks wired together by a
// routing matrix R, where R[f][l] says flow f traverses link l.
//
// The per-link dynamics are exactly §2's synchronized, RTT-quantized
// fluid model (identical to multilink — a nettopo network whose links
// form a linear chain is bit-identical to the multilink network with the
// same parameters, enforced by a golden test):
//
//	X_l(t) = Σ_{f: R[f][l]} x_f(t)                    (aggregate load)
//	L_l(t) = 1 − (C_l+τ_l)/X_l(t)  if X_l > C_l+τ_l   (conservation law:
//	                                else 0             delivered ≤ C_l+τ_l)
//	loss_f = 1 − Π_{l ∈ P_f} (1 − L_l)                (independent drops)
//	rtt_f  = Σ_{l ∈ P_f} rtt_l + Δ_f                  (delays add)
//
// Beyond multilink, nettopo adds:
//
//   - Named nodes: links may declare Src/Dst endpoints, in which case the
//     topology must be a DAG (cycle-free by Kahn's algorithm) and every
//     flow's path must be contiguous (each hop starts where the previous
//     ended). Anonymous links keep multilink's free-form path semantics.
//   - Heterogeneous per-flow RTTs: FlowSpec.ExtraRTT models access-path
//     propagation outside the shared topology, so flows crossing the same
//     bottleneck can disagree about their base RTT.
//   - A routing-matrix constructor (NewFromRouting) and accessor
//     (RoutingMatrix), the representation the conservation-law model is
//     stated in.
//   - Topology builders for the canonical multi-bottleneck shapes:
//     LinearChain, ParkingLot, Incast, FatTreeFanIn.
package nettopo

import (
	"context"
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rand64"
	"repro/internal/stats"
)

// LinkSpec describes one directed link, with the same quantities as the
// single-link fluid model plus optional topology endpoints.
type LinkSpec struct {
	Bandwidth float64 // B_l, MSS/s (> 0)
	PropDelay float64 // Θ_l, seconds (> 0)
	Buffer    float64 // τ_l, MSS (≥ 0)

	// TimeoutRTT is this link's Δ contribution on lossy steps; defaults
	// to 2·(2Θ_l + τ_l/B_l).
	TimeoutRTT float64

	// Src and Dst optionally name the link's endpoints. Either both or
	// neither must be set, consistently across the whole network; when
	// set, the directed node graph must be acyclic and flow paths must
	// chain Dst→Src hop to hop.
	Src, Dst string
}

// Capacity returns C_l = B_l·2Θ_l.
func (l LinkSpec) Capacity() float64 { return l.Bandwidth * 2 * l.PropDelay }

func (l LinkSpec) withDefaults() LinkSpec {
	if l.TimeoutRTT == 0 {
		l.TimeoutRTT = 2 * (2*l.PropDelay + l.Buffer/l.Bandwidth)
	}
	return l
}

func (l LinkSpec) validate(i int) error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("nettopo: link %d bandwidth must be positive, got %v", i, l.Bandwidth)
	}
	if l.PropDelay <= 0 {
		return fmt.Errorf("nettopo: link %d propagation delay must be positive, got %v", i, l.PropDelay)
	}
	if l.Buffer < 0 {
		return fmt.Errorf("nettopo: link %d buffer must be non-negative, got %v", i, l.Buffer)
	}
	if (l.Src == "") != (l.Dst == "") {
		return fmt.Errorf("nettopo: link %d names only one endpoint (src %q, dst %q)", i, l.Src, l.Dst)
	}
	if l.Src != "" && l.Src == l.Dst {
		return fmt.Errorf("nettopo: link %d is a self-loop at node %q", i, l.Src)
	}
	return nil
}

// FlowSpec is one sender: its protocol, initial window, the ordered link
// indices it traverses, and its private extra round-trip delay.
type FlowSpec struct {
	Proto protocol.Protocol
	Init  float64
	Path  []int

	// ExtraRTT (seconds, ≥ 0) is added to the flow's composed RTT every
	// step — the access-path propagation outside the modeled topology.
	// Zero leaves the flow bit-identical to a multilink flow.
	ExtraRTT float64
}

// Network is a conservation-law fluid network; create with New or
// NewFromRouting.
type Network struct {
	links     []LinkSpec
	flows     []FlowSpec
	protos    []protocol.Protocol
	x         []float64 // current windows
	step      int
	maxWindow float64

	// flowsOn[l] lists the flow indices routed over link l — the
	// column-wise view of the routing matrix.
	flowsOn [][]int

	// rng is non-nil in stochastic-loss mode (WithStochasticLoss).
	rng *rand64.Source

	// perturb and active implement fault injection (WithPerturber).
	perturb Perturber
	active  []bool
}

// Perturber is the fault-injection hook the network consults each step —
// a structural copy of the chaos.Injector method set, so this package
// stays free of chaos imports. Link and flow arguments are this
// network's indices.
type Perturber interface {
	CapacityScale(step, link int) float64
	ExtraLoss(step, flow int) float64
	RTTOffset(step, link int) float64
	FlowActive(step, flow int) bool
}

// minPerturbedRTT floors a link's RTT contribution after a negative
// chaos offset.
const minPerturbedRTT = 1e-6

// Option tweaks network construction.
type Option func(*Network)

// WithMaxWindow caps every flow's window at m (default 1e9).
func WithMaxWindow(m float64) Option {
	return func(n *Network) { n.maxWindow = m }
}

// WithStochasticLoss switches loss observation from the deterministic
// shared-rate model to per-flow sampling: at a step where flow f's
// composed path loss rate is L and its window is x, the flow observes a
// loss event with probability 1 − (1−L)^x and otherwise observes no
// loss. Runs remain deterministic per seed; the RNG consumption order is
// identical to multilink's, preserving bit-parity on chain topologies.
func WithStochasticLoss(seed uint64) Option {
	return func(n *Network) { n.rng = rand64.New(seed) }
}

// WithPerturber applies a deterministic fault-injection schedule
// (typically a compiled chaos.Schedule) while the network runs. The nil
// path is bit-identical to the unperturbed model.
func WithPerturber(p Perturber) Option {
	return func(n *Network) { n.perturb = p }
}

// New builds a network. Every flow's path must be non-empty and reference
// valid links; when links name their endpoints the topology must be a
// DAG and every path must be contiguous.
func New(links []LinkSpec, flows []FlowSpec, opts ...Option) (*Network, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("nettopo: at least one link required")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("nettopo: at least one flow required")
	}
	n := &Network{
		links:     make([]LinkSpec, len(links)),
		flows:     flows,
		protos:    make([]protocol.Protocol, len(flows)),
		x:         make([]float64, len(flows)),
		maxWindow: 1e9,
		flowsOn:   make([][]int, len(links)),
	}
	named := 0
	for i, l := range links {
		if err := l.validate(i); err != nil {
			return nil, err
		}
		if l.Src != "" {
			named++
		}
		n.links[i] = l.withDefaults()
	}
	if named > 0 && named < len(links) {
		return nil, fmt.Errorf("nettopo: either all links or no links must name endpoints (%d of %d named)", named, len(links))
	}
	if named == len(links) {
		if err := checkDAG(links); err != nil {
			return nil, err
		}
	}
	for _, opt := range opts {
		opt(n)
	}
	for f, spec := range flows {
		if spec.Proto == nil {
			return nil, fmt.Errorf("nettopo: flow %d has nil protocol", f)
		}
		if spec.ExtraRTT < 0 {
			return nil, fmt.Errorf("nettopo: flow %d extra RTT must be non-negative, got %v", f, spec.ExtraRTT)
		}
		if len(spec.Path) == 0 {
			return nil, fmt.Errorf("nettopo: flow %d has empty path", f)
		}
		seen := make(map[int]bool, len(spec.Path))
		for h, l := range spec.Path {
			if l < 0 || l >= len(links) {
				return nil, fmt.Errorf("nettopo: flow %d references unknown link %d", f, l)
			}
			if seen[l] {
				return nil, fmt.Errorf("nettopo: flow %d visits link %d twice", f, l)
			}
			if named == len(links) && h > 0 {
				prev := spec.Path[h-1]
				if links[prev].Dst != links[l].Src {
					return nil, fmt.Errorf("nettopo: flow %d path is not contiguous: link %d ends at %q but link %d starts at %q",
						f, prev, links[prev].Dst, l, links[l].Src)
				}
			}
			seen[l] = true
			n.flowsOn[l] = append(n.flowsOn[l], f)
		}
		n.protos[f] = spec.Proto.Clone()
		n.x[f] = protocol.Clamp(spec.Init, n.maxWindow)
	}
	if n.perturb != nil {
		n.active = make([]bool, len(flows))
	}
	return n, nil
}

// checkDAG rejects cycles in the named node graph (Kahn's algorithm).
func checkDAG(links []LinkSpec) error {
	indeg := map[string]int{}
	out := map[string][]string{}
	for _, l := range links {
		out[l.Src] = append(out[l.Src], l.Dst)
		indeg[l.Dst]++
		if _, ok := indeg[l.Src]; !ok {
			indeg[l.Src] = 0
		}
	}
	queue := make([]string, 0, len(indeg))
	for node, d := range indeg {
		if d == 0 {
			queue = append(queue, node)
		}
	}
	removed := 0
	for len(queue) > 0 {
		node := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, dst := range out[node] {
			indeg[dst]--
			if indeg[dst] == 0 {
				queue = append(queue, dst)
			}
		}
	}
	if removed != len(indeg) {
		return fmt.Errorf("nettopo: topology contains a cycle (%d of %d nodes unreachable from sources)", len(indeg)-removed, len(indeg))
	}
	return nil
}

// NewFromRouting builds a network from a routing matrix instead of
// explicit paths: routing[f][l] marks flow f as traversing link l. Each
// flow's hop order is recovered from the link endpoints when the links
// name them (chaining Dst→Src), and is ascending link index otherwise.
// flows[f].Path must be nil — the matrix is the single source of truth.
func NewFromRouting(links []LinkSpec, flows []FlowSpec, routing [][]bool, opts ...Option) (*Network, error) {
	if len(routing) != len(flows) {
		return nil, fmt.Errorf("nettopo: routing matrix has %d rows for %d flows", len(routing), len(flows))
	}
	named := len(links) > 0 && links[0].Src != ""
	built := make([]FlowSpec, len(flows))
	for f, row := range routing {
		if flows[f].Path != nil {
			return nil, fmt.Errorf("nettopo: flow %d sets both Path and a routing row", f)
		}
		if len(row) != len(links) {
			return nil, fmt.Errorf("nettopo: routing row %d has %d columns for %d links", f, len(row), len(links))
		}
		var sel []int
		for l, on := range row {
			if on {
				sel = append(sel, l)
			}
		}
		path := sel
		if named && len(sel) > 1 {
			var err error
			if path, err = chainByEndpoints(links, sel, f); err != nil {
				return nil, err
			}
		}
		built[f] = flows[f]
		built[f].Path = path
	}
	return New(links, built, opts...)
}

// chainByEndpoints orders the selected links so each hop starts where the
// previous ended; New re-validates the result.
func chainByEndpoints(links []LinkSpec, sel []int, flow int) ([]int, error) {
	bySrc := map[string]int{}
	isDst := map[string]bool{}
	for _, l := range sel {
		if _, dup := bySrc[links[l].Src]; dup {
			return nil, fmt.Errorf("nettopo: routing row %d selects two links leaving node %q", flow, links[l].Src)
		}
		bySrc[links[l].Src] = l
		isDst[links[l].Dst] = true
	}
	start := -1
	for _, l := range sel {
		if !isDst[links[l].Src] {
			if start >= 0 {
				return nil, fmt.Errorf("nettopo: routing row %d does not form a single path", flow)
			}
			start = l
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("nettopo: routing row %d does not form a single path", flow)
	}
	path := make([]int, 0, len(sel))
	for l, at := start, 0; ; at++ {
		if at > len(sel) {
			return nil, fmt.Errorf("nettopo: routing row %d does not form a single path", flow)
		}
		path = append(path, l)
		next, ok := bySrc[links[l].Dst]
		if !ok {
			break
		}
		l = next
	}
	if len(path) != len(sel) {
		return nil, fmt.Errorf("nettopo: routing row %d does not form a single path", flow)
	}
	return path, nil
}

// RoutingMatrix returns the network's routing matrix: rows are flows,
// columns are links, true where the flow traverses the link.
func (n *Network) RoutingMatrix() [][]bool {
	r := make([][]bool, len(n.flows))
	for f := range n.flows {
		r[f] = make([]bool, len(n.links))
		for _, l := range n.flows[f].Path {
			r[f][l] = true
		}
	}
	return r
}

// Links returns a copy of the network's defaulted link specs.
func (n *Network) Links() []LinkSpec { return append([]LinkSpec(nil), n.links...) }

// Windows returns a copy of the current window vector.
func (n *Network) Windows() []float64 { return append([]float64(nil), n.x...) }

// BaseRTT returns flow f's unloaded round-trip time: Σ 2Θ_l over its
// path plus its ExtraRTT.
func (n *Network) BaseRTT(f int) float64 {
	rtt := n.flows[f].ExtraRTT
	for _, l := range n.flows[f].Path {
		rtt += 2 * n.links[l].PropDelay
	}
	return rtt
}

// StepResult reports one network step. The layout matches multilink's so
// observers can treat the two substrates uniformly.
type StepResult struct {
	Step     int
	Windows  []float64 // windows in effect during the step
	LinkLoss []float64 // per-link loss rate
	LinkRTT  []float64 // per-link round-trip contribution (seconds)
	LinkLoad []float64 // per-link aggregate window during the step
	FlowLoss []float64 // per-flow composed loss
	FlowRTT  []float64 // per-flow composed RTT (including ExtraRTT)
}

// Step advances the network one synchronized time step. The arithmetic
// (operation order included) matches multilink.Network.Step exactly, so
// chain-shaped nettopo networks stay bit-identical to multilink.
func (n *Network) Step() StepResult {
	p := n.perturb
	if p != nil {
		for f := range n.flows {
			on := p.FlowActive(n.step, f)
			if on && !n.active[f] && n.step > 0 {
				// (Re)arrival mid-run restarts from the initial window.
				n.x[f] = protocol.Clamp(n.flows[f].Init, n.maxWindow)
			}
			n.active[f] = on
		}
	}
	res := StepResult{
		Step:     n.step,
		Windows:  append([]float64(nil), n.x...),
		LinkLoss: make([]float64, len(n.links)),
		LinkRTT:  make([]float64, len(n.links)),
		LinkLoad: make([]float64, len(n.links)),
		FlowLoss: make([]float64, len(n.flows)),
		FlowRTT:  make([]float64, len(n.flows)),
	}
	for l, spec := range n.links {
		load := 0.0
		for _, f := range n.flowsOn[l] {
			if p != nil && !n.active[f] {
				continue
			}
			load += n.x[f]
		}
		res.LinkLoad[l] = load
		c, tau := spec.Capacity(), spec.Buffer
		b := spec.Bandwidth
		if p != nil {
			b *= p.CapacityScale(n.step, l)
			c = b * 2 * spec.PropDelay
		}
		switch {
		case load < c+tau:
			res.LinkRTT[l] = math.Max(2*spec.PropDelay, (load-c)/b+2*spec.PropDelay)
		case load > c+tau:
			res.LinkLoss[l] = 1 - (c+tau)/load
			res.LinkRTT[l] = spec.TimeoutRTT
		default:
			res.LinkRTT[l] = spec.TimeoutRTT
		}
		if p != nil {
			// A drained link's queueing delay explodes as 1/b; the
			// timeout cap is the model's "sender gave up" bound.
			if res.LinkRTT[l] > spec.TimeoutRTT {
				res.LinkRTT[l] = spec.TimeoutRTT
			}
			res.LinkRTT[l] += p.RTTOffset(n.step, l)
			if res.LinkRTT[l] < minPerturbedRTT {
				res.LinkRTT[l] = minPerturbedRTT
			}
		}
	}
	for f := range n.flows {
		if p != nil && !n.active[f] {
			// Departed flow: no load, no feedback, window frozen until
			// re-arrival resets it.
			res.Windows[f] = 0
			continue
		}
		survive := 1.0
		rtt := 0.0
		for _, l := range n.flows[f].Path {
			survive *= 1 - res.LinkLoss[l]
			rtt += res.LinkRTT[l]
		}
		rtt += n.flows[f].ExtraRTT
		if p != nil {
			survive *= 1 - p.ExtraLoss(n.step, f)
		}
		res.FlowLoss[f] = 1 - survive
		res.FlowRTT[f] = rtt
		observed := res.FlowLoss[f]
		if n.rng != nil && observed > 0 {
			// Stochastic mode: the flow notices the step's loss only if
			// at least one of its own packets was hit.
			pHit := 1 - math.Pow(survive, n.x[f])
			if !n.rng.Bernoulli(pHit) {
				observed = 0
			}
		}
		next := n.protos[f].Next(protocol.Feedback{
			Step:   n.step,
			Window: n.x[f],
			RTT:    rtt,
			Loss:   observed,
		})
		if math.IsNaN(next) {
			next = protocol.MinWindow
		}
		n.x[f] = protocol.Clamp(next, n.maxWindow)
	}
	n.step++
	return res
}

// Result is a recorded nettopo run, column-oriented per flow and link.
type Result struct {
	Steps    int
	Windows  [][]float64 // [flow][step]
	FlowLoss [][]float64 // [flow][step]
	FlowRTT  [][]float64 // [flow][step]
	LinkLoss [][]float64 // [link][step]
	LinkLoad [][]float64 // [link][step] aggregate window over the link
	links    []LinkSpec
	paths    [][]int
}

// Run advances the network steps times, recording everything.
func (n *Network) Run(steps int) *Result {
	r, _ := n.RunObserved(context.Background(), steps, true, nil)
	return r
}

// RunObserved advances the network steps times with cooperative
// cancellation, calling obs after each step when non-nil. When record is
// true the full Result is accumulated as in Run; when false the network
// is only driven (observers see every step, nothing is retained) and the
// returned Result is nil. The StepResult passed to obs is owned by the
// callback for the duration of the call only.
func (n *Network) RunObserved(ctx context.Context, steps int, record bool, obs func(*StepResult)) (*Result, error) {
	var r *Result
	if record {
		r = &Result{
			Steps:    steps,
			Windows:  make([][]float64, len(n.flows)),
			FlowLoss: make([][]float64, len(n.flows)),
			FlowRTT:  make([][]float64, len(n.flows)),
			LinkLoss: make([][]float64, len(n.links)),
			LinkLoad: make([][]float64, len(n.links)),
			links:    append([]LinkSpec(nil), n.links...),
		}
		for f := range n.flows {
			r.paths = append(r.paths, append([]int(nil), n.flows[f].Path...))
		}
	}
	for s := 0; s < steps; s++ {
		if s&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res := n.Step()
		if record {
			for f := range n.flows {
				r.Windows[f] = append(r.Windows[f], res.Windows[f])
				r.FlowLoss[f] = append(r.FlowLoss[f], res.FlowLoss[f])
				r.FlowRTT[f] = append(r.FlowRTT[f], res.FlowRTT[f])
			}
			for l := range n.links {
				r.LinkLoss[l] = append(r.LinkLoss[l], res.LinkLoss[l])
				r.LinkLoad[l] = append(r.LinkLoad[l], res.LinkLoad[l])
			}
		}
		if obs != nil {
			obs(&res)
		}
	}
	return r, nil
}

// AvgWindow returns flow f's mean window over the tail fraction.
func (r *Result) AvgWindow(f int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(r.Windows[f], tailFrac))
}

// AvgGoodput returns flow f's mean goodput (MSS/s) over the tail fraction.
func (r *Result) AvgGoodput(f int, tailFrac float64) float64 {
	w := stats.Tail(r.Windows[f], tailFrac)
	loss := stats.Tail(r.FlowLoss[f], tailFrac)
	rtt := stats.Tail(r.FlowRTT[f], tailFrac)
	sum := 0.0
	cnt := 0
	for i := range w {
		if rtt[i] > 0 {
			sum += w[i] * (1 - loss[i]) / rtt[i]
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// LinkUtilization returns link l's mean load/C over the tail fraction.
func (r *Result) LinkUtilization(l int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(r.LinkLoad[l], tailFrac)) / r.links[l].Capacity()
}
