package nettopo_test

import (
	"os"
	"testing"

	"repro/internal/scenario"
)

// TestParkingLotParityGolden is the parity anchor the tentpole promises:
// the shipped parking-lot scenario, run through the multilink substrate
// (recorded, uncached) and re-run through nettopo (streamed through the
// session cache) must agree bit-for-bit on every per-flow summary and on
// every summary key the two models share. Any drift in nettopo's step
// arithmetic, the scenario wiring, or the TopoStream ring accounting
// breaks this test.
func TestParkingLotParityGolden(t *testing.T) {
	raw, err := os.Open("../../scenarios/parking-lot.json")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	spec, err := scenario.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "multilink" {
		t.Fatalf("parking-lot model = %q, want multilink", spec.Model)
	}
	ml, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}

	topo := *spec
	topo.Model = "nettopo"
	if err := topo.Validate(); err != nil {
		t.Fatalf("parking-lot is not a valid nettopo scenario: %v", err)
	}
	nt, err := topo.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(ml.Flows) != len(nt.Flows) {
		t.Fatalf("flow count: multilink %d, nettopo %d", len(ml.Flows), len(nt.Flows))
	}
	for i := range ml.Flows {
		m, n := ml.Flows[i], nt.Flows[i]
		if m.AvgWindow != n.AvgWindow {
			t.Errorf("flow %d avg window: multilink %v, nettopo %v", i, m.AvgWindow, n.AvgWindow)
		}
		if m.Goodput != n.Goodput {
			t.Errorf("flow %d goodput: multilink %v, nettopo %v", i, m.Goodput, n.Goodput)
		}
		if m.Share != n.Share {
			t.Errorf("flow %d share: multilink %v, nettopo %v", i, m.Share, n.Share)
		}
	}
	for _, k := range []string{"efficiency", "jain_goodput", "tail_loss"} {
		mv, ok := ml.Summary[k]
		if !ok {
			t.Fatalf("multilink summary missing %q", k)
		}
		nv, ok := nt.Summary[k]
		if !ok {
			t.Fatalf("nettopo summary missing %q", k)
		}
		if mv != nv {
			t.Errorf("summary %q: multilink %v, nettopo %v", k, mv, nv)
		}
	}
}
