package fluid

import (
	"errors"
	"math"
	"testing"

	"repro/internal/protocol"
)

// stubPerturber implements Perturber with plain functions; nil fields
// mean "no perturbation".
type stubPerturber struct {
	scale  func(step, link int) float64
	loss   func(step, flow int) float64
	rtt    func(step, link int) float64
	active func(step, flow int) bool
}

func (s stubPerturber) CapacityScale(step, link int) float64 {
	if s.scale == nil {
		return 1
	}
	return s.scale(step, link)
}

func (s stubPerturber) ExtraLoss(step, flow int) float64 {
	if s.loss == nil {
		return 0
	}
	return s.loss(step, flow)
}

func (s stubPerturber) RTTOffset(step, link int) float64 {
	if s.rtt == nil {
		return 0
	}
	return s.rtt(step, link)
}

func (s stubPerturber) FlowActive(step, flow int) bool {
	if s.active == nil {
		return true
	}
	return s.active(step, flow)
}

// Regression for the divergence guard: an MIMD sender with absurd
// parameters and an uncapped window must yield ErrDiverged, not NaN/Inf
// windows silently flowing into axiom scores.
func TestDivergenceGuardMIMDRunaway(t *testing.T) {
	cfg := Config{Infinite: true, PropDelay: 0.05, MaxWindow: math.Inf(1)}
	l := MustNew(cfg, Sender{Proto: protocol.NewMIMD(1e200, 0.5), Init: 1})
	for i := 0; i < 100 && l.Err() == nil; i++ {
		l.Step()
	}
	err := l.Err()
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("runaway MIMD: Err() = %v, want ErrDiverged", err)
	}
	var de *DivergedError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DivergedError", err)
	}
	if de.Sender != 0 {
		t.Fatalf("diverged sender = %d, want 0", de.Sender)
	}
}

// Two absurd MIMD senders on a tiny-buffer link overflow the aggregate
// window in one step; the guard must catch the non-finite sum.
func TestDivergenceGuardAggregateOverflow(t *testing.T) {
	cfg := Config{Bandwidth: 100, PropDelay: 0.05, Buffer: 1, MaxWindow: math.Inf(1)}
	p := protocol.NewMIMD(1e308, 0.5)
	l := MustNew(cfg, Sender{Proto: p.Clone(), Init: 1}, Sender{Proto: p.Clone(), Init: 1})
	for i := 0; i < 100 && l.Err() == nil; i++ {
		l.Step()
	}
	if !errors.Is(l.Err(), ErrDiverged) {
		t.Fatalf("aggregate overflow: Err() = %v, want ErrDiverged", l.Err())
	}
}

// A sane protocol on the same link must never trip the guard.
func TestDivergenceGuardQuietOnHealthyRun(t *testing.T) {
	cfg := Config{Bandwidth: 100, PropDelay: 0.05, Buffer: 1}
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 1})
	for i := 0; i < 2000; i++ {
		l.Step()
	}
	if err := l.Err(); err != nil {
		t.Fatalf("healthy Reno run diverged: %v", err)
	}
}

func TestPerturbNilPathBitIdentical(t *testing.T) {
	cfg := Config{Bandwidth: 2000, PropDelay: 0.025, Buffer: 50}
	mk := func(c Config) *Link {
		return MustNew(c, Sender{Proto: protocol.Reno(), Init: 1}, Sender{Proto: protocol.Scalable(), Init: 4})
	}
	plain := mk(cfg)
	cfgIdentity := cfg
	cfgIdentity.Perturb = stubPerturber{} // identity perturber
	perturbed := mk(cfgIdentity)
	for i := 0; i < 1500; i++ {
		a, b := plain.Step(), perturbed.Step()
		if a.RTT != b.RTT || a.CongLoss != b.CongLoss {
			t.Fatalf("step %d: identity perturber changed link feedback: (%v,%v) vs (%v,%v)",
				i, a.RTT, a.CongLoss, b.RTT, b.CongLoss)
		}
		for s := range a.Windows {
			if a.Windows[s] != b.Windows[s] {
				t.Fatalf("step %d sender %d: window %v vs %v", i, s, a.Windows[s], b.Windows[s])
			}
		}
	}
}

func TestPerturbCapacityScaleShrinksLink(t *testing.T) {
	cfg := Config{Bandwidth: 2000, PropDelay: 0.025, Buffer: 50}
	cfg.Perturb = stubPerturber{scale: func(step, link int) float64 {
		if step >= 500 {
			return 0.25
		}
		return 1
	}}
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 1})
	var before, after float64
	for i := 0; i < 1000; i++ {
		res := l.Step()
		if i >= 400 && i < 500 {
			before += res.Windows[0]
		}
		if i >= 900 {
			after += res.Windows[0]
		}
	}
	before /= 100
	after /= 100
	if after >= before*0.7 {
		t.Fatalf("quartering the link did not shrink the window: before %v, after %v", before, after)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("capacity shock diverged: %v", err)
	}
}

func TestPerturbExtraLossObserved(t *testing.T) {
	cfg := Config{Infinite: true, PropDelay: 0.025}
	cfg.Perturb = stubPerturber{loss: func(step, flow int) float64 { return 0.25 }}
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 1})
	res := l.Step()
	if res.CongLoss != 0 {
		t.Fatalf("infinite link reported congestion loss %v", res.CongLoss)
	}
	if res.Loss[0] != 0.25 {
		t.Fatalf("sender loss = %v, want the injected 0.25", res.Loss[0])
	}
}

func TestPerturbRTTOffsetAndFloor(t *testing.T) {
	cfg := Config{Infinite: true, PropDelay: 0.025}
	cfg.Perturb = stubPerturber{rtt: func(step, link int) float64 {
		if step == 0 {
			return 0.1
		}
		return -1 // absurdly negative: must floor, not go negative
	}}
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 1})
	if res := l.Step(); math.Abs(res.RTT-0.15) > 1e-12 {
		t.Fatalf("offset RTT = %v, want 0.15", res.RTT)
	}
	if res := l.Step(); res.RTT != minPerturbedRTT {
		t.Fatalf("floored RTT = %v, want %v", res.RTT, minPerturbedRTT)
	}
}

func TestPerturbFlowChurn(t *testing.T) {
	cfg := Config{Bandwidth: 2000, PropDelay: 0.025, Buffer: 50}
	cfg.Perturb = stubPerturber{active: func(step, flow int) bool {
		if flow != 1 {
			return true
		}
		return step < 100 || step >= 200 // flow 1 departs for [100, 200)
	}}
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 1}, Sender{Proto: protocol.Reno(), Init: 30})
	var res StepResult
	for i := 0; i < 100; i++ {
		res = l.Step()
	}
	if res.Windows[1] == 0 {
		t.Fatal("flow 1 inactive before its departure")
	}
	for i := 100; i < 200; i++ {
		res = l.Step()
		if res.Windows[1] != 0 {
			t.Fatalf("step %d: departed flow reports window %v, want 0", i, res.Windows[1])
		}
	}
	res = l.Step()
	if res.Windows[1] != 30 {
		t.Fatalf("re-arrived flow window = %v, want its initial 30", res.Windows[1])
	}
}
