package fluid

import (
	"testing"

	"repro/internal/protocol"
)

// TestLinkStepAllocFree pins the hot-loop contract: once a Link is
// constructed, Step performs zero heap allocations in steady state — the
// StepResult borrows the per-link reuse buffers instead of copying. This
// is the regression guard for the allocation-free property; if it fires,
// something in Step (or a protocol's Next) started allocating per step.
func TestLinkStepAllocFree(t *testing.T) {
	theta := 0.021
	cfg := Config{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
	l, err := New(cfg, Sender{Proto: protocol.Reno(), Init: 1}, Sender{Proto: protocol.Reno(), Init: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Warm past the transient so the loss path has been exercised too.
	for i := 0; i < 200; i++ {
		l.Step()
	}
	if avg := testing.AllocsPerRun(500, func() { l.Step() }); avg != 0 {
		t.Fatalf("Link.Step allocates %.2f times per step in steady state, want 0", avg)
	}
}

// TestLinkStepAllocFreeUnderLoss repeats the guard with a non-congestion
// loss process attached, the other hot path the axiom estimators drive.
func TestLinkStepAllocFreeUnderLoss(t *testing.T) {
	cfg := Config{
		Infinite:  true,
		PropDelay: 0.021,
		MaxWindow: 1e12,
		Loss:      NewConstantLoss(0.01),
	}
	l, err := New(cfg, Sender{Proto: protocol.Reno(), Init: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		l.Step()
	}
	if avg := testing.AllocsPerRun(500, func() { l.Step() }); avg != 0 {
		t.Fatalf("Link.Step allocates %.2f times per step under constant loss, want 0", avg)
	}
}
