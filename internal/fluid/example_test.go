package fluid_test

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

// Example simulates the paper's basic scenario: two TCP Reno senders on a
// single bottleneck, converging to a fair share from a skewed start.
func Example() {
	cfg := fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(20), // B in MSS/s
		PropDelay: 0.021,                 // Θ: C = B·2Θ = 70 MSS
		Buffer:    100,                   // τ
	}
	tr, err := fluid.Homogeneous(cfg, protocol.Reno(), 2, []float64{170, 1}, 4000)
	if err != nil {
		panic(err)
	}
	a := tr.AvgWindow(0, 0.75)
	b := tr.AvgWindow(1, 0.75)
	fmt.Printf("fair split: %v\n", a == b)
	// Output:
	// fair split: true
}

// ExampleConfig_Capacity shows the paper's capacity definition C = B·2Θ.
func ExampleConfig_Capacity() {
	cfg := fluid.Config{Bandwidth: fluid.MbpsToMSSps(20), PropDelay: 0.021}
	fmt.Printf("%.1f MSS\n", cfg.Capacity())
	// Output:
	// 70.0 MSS
}
