package fluid

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/rand64"
)

// LossProcess models non-congestion loss (Metric VI): loss that occurs
// regardless of the senders' aggregate window, e.g. wireless corruption.
// Rate returns the loss fraction experienced by the given sender at the
// given step; implementations may use the supplied deterministic RNG.
type LossProcess interface {
	Rate(step, sender int, window float64, rng *rand64.Source) float64
}

// ConstantLoss is the deterministic fluid limit of i.i.d. per-packet loss:
// every sender loses exactly fraction R of its traffic every step. This is
// the paper's "constant random packet loss rate" in the limit of large
// windows.
type ConstantLoss struct {
	R float64 // loss rate in [0, 1)
}

// NewConstantLoss returns a ConstantLoss. It panics if r is outside [0, 1).
func NewConstantLoss(r float64) ConstantLoss {
	if r < 0 || r >= 1 {
		panic(fmt.Sprintf("fluid: invalid constant loss rate %v", r))
	}
	return ConstantLoss{R: r}
}

// Rate implements LossProcess.
func (c ConstantLoss) Rate(step, sender int, window float64, rng *rand64.Source) float64 {
	return c.R
}

// PacketLoss samples the loss fraction a finite window actually observes
// under i.i.d. per-packet drops with probability R: the number of lost
// segments is Binomial(⌈window⌉, R), so small windows see bursty, quantized
// loss (often 0%, sometimes ≫R) while large windows concentrate near R.
// This is the faithful discretization of the paper's random-loss scenario.
type PacketLoss struct {
	R float64 // per-packet drop probability in [0, 1)
}

// NewPacketLoss returns a PacketLoss. It panics if r is outside [0, 1).
func NewPacketLoss(r float64) PacketLoss {
	if r < 0 || r >= 1 {
		panic(fmt.Sprintf("fluid: invalid packet loss rate %v", r))
	}
	return PacketLoss{R: r}
}

// Rate implements LossProcess.
func (p PacketLoss) Rate(step, sender int, window float64, rng *rand64.Source) float64 {
	if p.R == 0 || window < 1 {
		return 0
	}
	n := int(window + 0.5)
	if n < 1 {
		n = 1
	}
	lost := 0
	for i := 0; i < n; i++ {
		if rng.Bernoulli(p.R) {
			lost++
		}
	}
	return float64(lost) / float64(n)
}

// OnOffLoss alternates between loss-free periods and lossy bursts with a
// fixed cycle, modeling interference bursts: steps in [0, OnSteps) of each
// cycle of length Period experience rate R, the rest none.
type OnOffLoss struct {
	R       float64 // loss rate during the on-phase, [0, 1)
	OnSteps int     // lossy steps per cycle (> 0)
	Period  int     // cycle length (≥ OnSteps)
}

// NewOnOffLoss returns an OnOffLoss. It panics on invalid parameters.
func NewOnOffLoss(r float64, onSteps, period int) OnOffLoss {
	if r < 0 || r >= 1 || onSteps <= 0 || period < onSteps {
		panic(fmt.Sprintf("fluid: invalid on-off loss (%v,%d,%d)", r, onSteps, period))
	}
	return OnOffLoss{R: r, OnSteps: onSteps, Period: period}
}

// Rate implements LossProcess.
func (o OnOffLoss) Rate(step, sender int, window float64, rng *rand64.Source) float64 {
	if step%o.Period < o.OnSteps {
		return o.R
	}
	return 0
}

// The builtin loss processes implement the same optional Fingerprint
// contract as protocol.Fingerprinter: a canonical string that completely
// determines the process's behavior (together with the link's Seed for
// the randomized ones), so the metrics run cache can key simulations by
// it. The hex IEEE-754 bit pattern makes equal fingerprints imply
// bit-identical rate sequences.

func lossFP(kind string, r float64) string {
	return kind + "[" + strconv.FormatUint(math.Float64bits(r), 16) + "]"
}

// Fingerprint canonically identifies the process for run caching.
func (c ConstantLoss) Fingerprint() string { return lossFP("const", c.R) }

// Fingerprint canonically identifies the process for run caching. The
// realized loss additionally depends on the link's Seed, which the cache
// keys separately.
func (p PacketLoss) Fingerprint() string { return lossFP("packet", p.R) }

// Fingerprint canonically identifies the process for run caching.
func (o OnOffLoss) Fingerprint() string {
	return lossFP("onoff", o.R) + "/" + strconv.Itoa(o.OnSteps) + "/" + strconv.Itoa(o.Period)
}
