package fluid

import (
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rand64"
)

// This file implements batched structure-of-arrays (SoA) stepping: many
// independent links ("cells" — typically the cells of a sweep grid)
// advanced in lockstep by one tight loop per time step, instead of one
// interpreted Link.Step call per cell. Windows and kernels for all cells
// live contiguously, and the per-sender protocol dispatch of the scalar
// path (interface call, Feedback construction, epoch accumulators)
// collapses into a closed-form protocol.Kernel.Step.
//
// The contract is bit-identity with the scalar path: for any cell,
// Batch.Step must produce the exact float64 sequence Link.Step would.
// That is why Batchable restricts cells to the conditions under which the
// scalar path's extra machinery is provably inert: kernelized (loss-based,
// with any protocol state reduced to the kernel's scalar slots) protocols
// only, and Period ≤ 1 so every epoch is a single step and the epoch
// accumulators always hold their reset values when read. Per-sender kernel
// state lives in the kern array — Kernel.Step mutates its receiver, so a
// stateful family like Cubic evolves exactly as its scalar Next would,
// including across churn (departed flows are never stepped, and re-arrival
// resets the window but not the protocol state, on both paths). The
// congestion computation itself is shared code (congestionAt), identical
// by construction.

// BatchCell is one link in a Batch: the same (Config, Senders) pair that
// would be passed to New for scalar stepping.
type BatchCell struct {
	Cfg     Config
	Senders []Sender
}

// Batchable reports whether a (Config, Senders) pair can be stepped by a
// Batch with bit-identical results to a scalar Link, returning nil when it
// can and a descriptive error naming the first obstacle otherwise. The
// requirements beyond New's are: every sender's protocol must expose a
// closed-form kernel (protocol.BatchStepper with ok = true), and senders
// must use synchronized feedback (Period ≤ 1), since batched stepping has
// no epoch accumulators.
func Batchable(cfg Config, senders []Sender) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(senders) == 0 {
		return fmt.Errorf("fluid: at least one sender required")
	}
	for i, s := range senders {
		if s.Proto == nil {
			return fmt.Errorf("fluid: sender %d has nil protocol", i)
		}
		if s.Period < 0 || s.Phase < 0 {
			return fmt.Errorf("fluid: sender %d has negative period or phase", i)
		}
		if s.Period > 1 {
			return fmt.Errorf("fluid: sender %d has period %d: unsynchronized feedback is not batchable", i, s.Period)
		}
		bs, ok := s.Proto.(protocol.BatchStepper)
		if !ok {
			return fmt.Errorf("fluid: sender %d protocol %s has no batch kernel", i, s.Proto.Name())
		}
		if k, ok := bs.Kernel(); !ok || !k.Valid() {
			return fmt.Errorf("fluid: sender %d protocol %s has no batch kernel", i, s.Proto.Name())
		}
	}
	return nil
}

// batchLink is the per-cell scalar state of a Batch; the per-sender state
// lives in the Batch's contiguous arrays, indexed by [off, off+n).
type batchLink struct {
	cfg      Config // defaulted
	off, n   int
	rng      *rand64.Source
	err      error   // first divergence, sticky; the cell freezes after
	rtt      float64 // RTT of the last executed step
	congLoss float64 // congestion loss of the last executed step
}

// fail records the cell's first divergence; later ones are ignored.
func (c *batchLink) fail(step, sender int, v float64) {
	if c.err == nil {
		c.err = &DivergedError{Step: step, Sender: sender, Value: v}
	}
}

// Batch steps a set of cells in lockstep. Create with NewBatch, advance
// with Step, read per-cell results with Windows/RTT/CongLoss/Err.
type Batch struct {
	step  int
	cells []batchLink

	// Structure-of-arrays per-sender state, all cells concatenated.
	win   []float64         // current windows (the scalar path's l.x)
	cur   []float64         // windows in effect during the last step (result buffer)
	initW []float64         // raw Sender.Init, for churn re-arrival resets
	kern  []protocol.Kernel // closed-form update rules
	act   []bool            // churn state; consulted only for cells with Perturb
}

// NewBatch returns a batch over the given cells, or an error naming the
// first cell that is invalid or not batchable. Kernels are extracted once
// here — each sender gets its own Kernel copy, which is where stateful
// kernels keep per-sender state — and the sender protocols themselves are
// never called again, so cells may share protocol instances freely.
func NewBatch(cells []BatchCell) (*Batch, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("fluid: batch needs at least one cell")
	}
	total := 0
	for ci, cell := range cells {
		if err := Batchable(cell.Cfg, cell.Senders); err != nil {
			return nil, fmt.Errorf("fluid: batch cell %d: %w", ci, err)
		}
		total += len(cell.Senders)
	}
	b := &Batch{
		cells: make([]batchLink, len(cells)),
		win:   make([]float64, total),
		cur:   make([]float64, total),
		initW: make([]float64, total),
		kern:  make([]protocol.Kernel, total),
		act:   make([]bool, total),
	}
	off := 0
	for ci, cell := range cells {
		cfg := cell.Cfg.withDefaults()
		c := &b.cells[ci]
		c.cfg = cfg
		c.off, c.n = off, len(cell.Senders)
		c.rng = rand64.New(cfg.Seed)
		for i, s := range cell.Senders {
			b.win[off+i] = protocol.Clamp(s.Init, cfg.MaxWindow)
			b.initW[off+i] = s.Init
			k, _ := s.Proto.(protocol.BatchStepper).Kernel()
			b.kern[off+i] = k
		}
		off += len(cell.Senders)
	}
	return b, nil
}

// Cells returns the number of cells in the batch.
func (b *Batch) Cells() int { return len(b.cells) }

// StepIndex returns the index of the next step to execute.
func (b *Batch) StepIndex() int { return b.step }

// Config returns cell c's (defaulted) configuration.
func (b *Batch) Config(c int) Config { return b.cells[c].cfg }

// Err returns cell c's first divergence (nil if none). A diverged cell is
// frozen: subsequent Step calls skip it, matching the scalar engine path,
// which stops stepping a link after divergence. Other cells continue.
func (b *Batch) Err(c int) error { return b.cells[c].err }

// Windows returns cell c's windows in effect during the last executed
// step (departed flows report 0, like StepResult.Windows). The slice is
// BORROWED: it aliases a batch buffer the next Step overwrites.
func (b *Batch) Windows(c int) []float64 {
	cell := &b.cells[c]
	return b.cur[cell.off : cell.off+cell.n]
}

// RTT returns cell c's RTT for the last executed step.
func (b *Batch) RTT(c int) float64 { return b.cells[c].rtt }

// CongLoss returns cell c's congestion loss rate for the last executed
// step.
func (b *Batch) CongLoss(c int) float64 { return b.cells[c].congLoss }

// Step advances every live cell one time step. It is the batched
// counterpart of Link.Step and allocation-free.
func (b *Batch) Step() {
	step := b.step
	for ci := range b.cells {
		c := &b.cells[ci]
		if c.err != nil {
			continue
		}
		b.stepCell(c, step)
	}
	b.step++
}

// stepCell is Link.Step transcribed onto the SoA state for one cell: the
// same operations in the same order, with the protocol's Next replaced by
// its kernel and the single-step epoch aggregation inlined (the observed
// loss is 1 − Π(1−loss) over a one-step epoch starting from survival 1,
// i.e. 1 − (1 − loss), which is what the scalar path computes — not loss
// itself, which can differ in the last bit).
func (b *Batch) stepCell(c *batchLink, step int) {
	off, n := c.off, c.n
	p := c.cfg.Perturb
	if p != nil {
		for i := 0; i < n; i++ {
			on := p.FlowActive(step, i)
			if on && !b.act[off+i] && step > 0 {
				// (Re)arrival mid-run: restart from the initial window.
				b.win[off+i] = protocol.Clamp(b.initW[off+i], c.cfg.MaxWindow)
			}
			b.act[off+i] = on
		}
	}
	x := 0.0
	for i := 0; i < n; i++ {
		if p != nil && !b.act[off+i] {
			continue
		}
		x += b.win[off+i]
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		c.fail(step, -1, x)
	}
	rtt, congLoss := congestionAt(&c.cfg, step, x)
	if p != nil {
		rtt += p.RTTOffset(step, 0)
		if rtt < minPerturbedRTT {
			rtt = minPerturbedRTT
		}
	}
	c.rtt, c.congLoss = rtt, congLoss

	// Snapshot the in-effect windows before the updates below mutate win.
	copy(b.cur[off:off+n], b.win[off:off+n])
	for i := 0; i < n; i++ {
		if p != nil && !b.act[off+i] {
			// Departed flow: no packets in flight, no feedback, window
			// frozen until re-arrival resets it.
			b.cur[off+i] = 0
			continue
		}
		loss := congLoss
		if c.cfg.Loss != nil {
			r := c.cfg.Loss.Rate(step, i, b.win[off+i], c.rng)
			loss = 1 - (1-loss)*(1-r)
		}
		if p != nil {
			if r := p.ExtraLoss(step, i); r > 0 {
				loss = 1 - (1-loss)*(1-r)
			}
		}
		obs := 1 - (1 - loss) // one-step epoch aggregation, as the scalar path observes it
		next := b.kern[off+i].Step(b.win[off+i], obs)
		if math.IsNaN(next) || math.IsInf(next, 0) {
			c.fail(step, i, next)
			next = protocol.MinWindow
		}
		w := protocol.Clamp(next, c.cfg.MaxWindow)
		if math.IsInf(w, 0) || w < 0 {
			// Reachable when MaxWindow is +Inf and the protocol runs away.
			c.fail(step, i, w)
			w = protocol.MinWindow
		}
		b.win[off+i] = w
	}
}
