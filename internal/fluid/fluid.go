// Package fluid implements the discrete-time fluid-flow model of Section 2
// of "An Axiomatic Approach to Congestion Control": n senders share a
// single bottleneck link with FIFO (droptail) queuing; time advances in
// synchronized RTT-sized steps; at each step every sender's protocol maps
// its observed window/RTT/loss history to its next congestion window.
//
// The model's quantities follow the paper exactly:
//
//   - B   link bandwidth in MSS/s
//   - Θ   propagation delay in seconds; C = B·2Θ is the link "capacity"
//   - τ   buffer size in MSS
//   - RTT(t) = max(2Θ, (X−C)/B + 2Θ)  if X(t) < C+τ,  Δ otherwise   (eq. 1)
//   - L(t)  = 1 − (C+τ)/X(t)          if X(t) > C+τ,  0 otherwise
//
// where X(t) = Σᵢ xᵢ(t). B, Θ and τ are never revealed to the senders.
//
// Non-congestion loss (Metric VI) is modeled by a LossProcess layered on
// top of the congestion loss; infinite-capacity links for the robustness
// scenario set Infinite in the Config.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rand64"
	"repro/internal/trace"
)

// MSSBytes is the segment size used when converting real-world bandwidths
// into the model's MSS/s unit.
const MSSBytes = 1500

// MbpsToMSSps converts a bandwidth in megabits per second into MSS/s
// assuming 1500-byte segments.
func MbpsToMSSps(mbps float64) float64 {
	return mbps * 1e6 / 8 / MSSBytes
}

// Config describes a bottleneck link. The zero value is not valid; fill in
// Bandwidth, PropDelay and Buffer (or set Infinite) and leave the rest to
// defaults.
type Config struct {
	Bandwidth float64 // B, MSS/s (> 0 unless Infinite)
	PropDelay float64 // Θ, seconds (> 0)
	Buffer    float64 // τ, MSS (≥ 0)

	// MaxWindow is M, the largest window a sender may select. It defaults
	// to 1e9 MSS, effectively unconstrained, matching the paper's 1 << M.
	MaxWindow float64

	// TimeoutRTT is Δ, the timeout-triggered RTT cap applied on steps with
	// packet loss (eq. 1's "otherwise" branch). It defaults to twice the
	// full-queue RTT, 2·(2Θ + τ/B).
	TimeoutRTT float64

	// Infinite removes the capacity constraint entirely: no congestion
	// loss ever occurs and RTT is pinned at 2Θ. This is the Metric VI
	// (robustness) scenario: "a single sender sends on a link of infinite
	// capacity so as to remove from consideration congestion-based loss".
	Infinite bool

	// Loss is an optional non-congestion loss process (nil means none).
	Loss LossProcess

	// BandwidthSchedule, when non-nil, overrides Bandwidth per time step,
	// modeling links whose capacity varies (handover, cross traffic,
	// cellular fades) — a §6 "more realistic network model" extension.
	// The returned value must stay positive; Bandwidth remains the
	// nominal value used for Capacity() and trace normalization.
	BandwidthSchedule func(step int) float64

	// Perturb, when non-nil, applies a deterministic fault-injection
	// schedule (capacity shocks, link flaps, bursty loss, RTT jitter,
	// flow churn) each step — typically a compiled chaos.Schedule. The
	// nil path is bit-identical to the unperturbed model.
	Perturb Perturber

	// Seed seeds any randomized LossProcess; runs are deterministic for a
	// fixed seed.
	Seed uint64
}

// Capacity returns C = B·2Θ, or +Inf for an infinite link.
func (c Config) Capacity() float64 {
	if c.Infinite {
		return math.Inf(1)
	}
	return c.Bandwidth * 2 * c.PropDelay
}

// BaseRTT returns 2Θ, the minimum possible RTT.
func (c Config) BaseRTT() float64 { return 2 * c.PropDelay }

func (c Config) withDefaults() Config {
	if c.MaxWindow == 0 {
		c.MaxWindow = 1e9
	}
	if c.TimeoutRTT == 0 {
		full := c.BaseRTT()
		if !c.Infinite && c.Bandwidth > 0 {
			full += c.Buffer / c.Bandwidth
		}
		c.TimeoutRTT = 2 * full
	}
	return c
}

func (c Config) validate() error {
	if c.PropDelay <= 0 {
		return fmt.Errorf("fluid: propagation delay must be positive, got %v", c.PropDelay)
	}
	if !c.Infinite && c.Bandwidth <= 0 {
		return fmt.Errorf("fluid: bandwidth must be positive, got %v", c.Bandwidth)
	}
	if c.Buffer < 0 {
		return fmt.Errorf("fluid: buffer must be non-negative, got %v", c.Buffer)
	}
	return nil
}

// Sender pairs a protocol instance with its initial congestion window.
// Axioms quantify over "any initial configuration of senders' window
// sizes"; estimators exercise several initial vectors through this field.
type Sender struct {
	Proto protocol.Protocol
	Init  float64 // initial window in MSS; clamped to [MinWindow, M]

	// Period and Phase desynchronize feedback (§6's "unsynchronized
	// network feedback" extension): the sender applies its protocol
	// update only on steps t with t ≡ Phase (mod Period), holding its
	// window in between. While waiting it still *observes* the link —
	// the update sees the epoch's aggregated loss (1 − Π(1−L_t)) and
	// mean RTT, as a real sender reacting once per epoch would. Period
	// 0 or 1 restores the paper's fully synchronized dynamics.
	Period int
	Phase  int
}

// Link is a single bottleneck shared by a fixed set of senders. Create
// with New, advance with Step or Run.
type Link struct {
	cfg     Config
	senders []Sender
	x       []float64 // current windows
	step    int
	rng     *rand64.Source
	err     error // first divergence, sticky

	// Per-sender epoch accumulators for unsynchronized feedback.
	epochSurvive []float64 // Π(1−loss) since the sender's last update
	epochRTTSum  []float64
	epochSteps   []int

	// active tracks per-sender churn state; only used with Perturb set.
	active []bool

	// resWin and resLoss back StepResult's slices, reused every step so
	// the hot loop stays allocation-free (see StepResult's borrowing
	// contract).
	resWin  []float64
	resLoss []float64
}

// New returns a link with the given configuration and senders. It returns
// an error for invalid configurations or an empty sender set.
func New(cfg Config, senders ...Sender) (*Link, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(senders) == 0 {
		return nil, fmt.Errorf("fluid: at least one sender required")
	}
	cfg = cfg.withDefaults()
	l := &Link{
		cfg:          cfg,
		senders:      senders,
		x:            make([]float64, len(senders)),
		rng:          rand64.New(cfg.Seed),
		epochSurvive: make([]float64, len(senders)),
		epochRTTSum:  make([]float64, len(senders)),
		epochSteps:   make([]int, len(senders)),
		resWin:       make([]float64, len(senders)),
		resLoss:      make([]float64, len(senders)),
	}
	for i, s := range senders {
		if s.Proto == nil {
			return nil, fmt.Errorf("fluid: sender %d has nil protocol", i)
		}
		if s.Period < 0 || s.Phase < 0 {
			return nil, fmt.Errorf("fluid: sender %d has negative period or phase", i)
		}
		if s.Period > 1 && s.Phase >= s.Period {
			return nil, fmt.Errorf("fluid: sender %d phase %d ≥ period %d", i, s.Phase, s.Period)
		}
		l.x[i] = protocol.Clamp(s.Init, cfg.MaxWindow)
		l.epochSurvive[i] = 1
	}
	if cfg.Perturb != nil {
		l.active = make([]bool, len(senders))
	}
	return l, nil
}

// Err returns the first divergence detected so far (nil if none). Once a
// run diverges its windows are meaningless; callers driving the link
// step-by-step should stop and propagate the error.
func (l *Link) Err() error { return l.err }

// fail records the first divergence; later ones are ignored.
func (l *Link) fail(step, sender int, v float64) {
	if l.err == nil {
		l.err = &DivergedError{Step: step, Sender: sender, Value: v}
	}
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config, senders ...Sender) *Link {
	l, err := New(cfg, senders...)
	if err != nil {
		panic(err)
	}
	return l
}

// Config returns the link's (defaulted) configuration.
func (l *Link) Config() Config { return l.cfg }

// Windows returns a copy of the current window vector.
func (l *Link) Windows() []float64 {
	return append([]float64(nil), l.x...)
}

// StepResult reports what happened during one time step.
//
// Windows and Loss are BORROWED: they alias per-link buffers that the
// next Step call overwrites, keeping the hot loop allocation-free.
// Callers that retain them across steps must copy (trace.Append and the
// engine's streaming observers already do, or consume them in place).
type StepResult struct {
	Step     int       // the step index that was just executed
	Windows  []float64 // windows during the step (before updates); borrowed
	RTT      float64   // RTT(t) per eq. 1, in seconds
	CongLoss float64   // congestion loss rate L(t)
	Loss     []float64 // per-sender total loss (congestion ⊕ random); borrowed
}

// congestion returns (RTT, loss) for aggregate window x per the paper's
// model, honoring a bandwidth schedule when present.
func (l *Link) congestion(x float64) (rtt, loss float64) {
	return congestionAt(&l.cfg, l.step, x)
}

// congestionAt is the link-level congestion computation shared by Link and
// Batch — one body, so the two paths are bit-identical by construction.
// cfg must already have defaults applied.
func congestionAt(cfg *Config, step int, x float64) (rtt, loss float64) {
	if cfg.Infinite {
		return cfg.BaseRTT(), 0
	}
	b := cfg.Bandwidth
	if cfg.BandwidthSchedule != nil {
		if v := cfg.BandwidthSchedule(step); v > 0 {
			b = v
		}
	}
	if cfg.Perturb != nil {
		b *= cfg.Perturb.CapacityScale(step, 0)
	}
	c := b * 2 * cfg.PropDelay
	tau := cfg.Buffer
	if x < c+tau {
		// eq. 1's queueing branch; loss needs X > C+τ, so none here.
		rtt = math.Max(cfg.BaseRTT(), (x-c)/b+cfg.BaseRTT())
		if cfg.Perturb != nil && rtt > cfg.TimeoutRTT {
			// A flapped link's queueing delay explodes as 1/b; the
			// timeout cap is the model's "sender gave up" bound.
			rtt = cfg.TimeoutRTT
		}
		return rtt, 0
	}
	// X ≥ C+τ: timeout-capped RTT; loss only for strict overflow.
	if x > c+tau {
		loss = 1 - (c+tau)/x
	}
	return cfg.TimeoutRTT, loss
}

// Step advances the model one time step: it computes RTT(t) and L(t) from
// the current windows, lets every protocol observe its feedback, and
// installs the clamped next windows.
func (l *Link) Step() StepResult {
	p := l.cfg.Perturb
	if p != nil {
		for i := range l.senders {
			on := p.FlowActive(l.step, i)
			if on && !l.active[i] && l.step > 0 {
				// (Re)arrival mid-run: restart from the initial window
				// with fresh feedback accumulators.
				l.x[i] = protocol.Clamp(l.senders[i].Init, l.cfg.MaxWindow)
				l.epochSurvive[i], l.epochRTTSum[i], l.epochSteps[i] = 1, 0, 0
			}
			l.active[i] = on
		}
	}
	x := 0.0
	for i, w := range l.x {
		if p != nil && !l.active[i] {
			continue
		}
		x += w
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		l.fail(l.step, -1, x)
	}
	rtt, congLoss := l.congestion(x)
	if p != nil {
		rtt += p.RTTOffset(l.step, 0)
		if rtt < minPerturbedRTT {
			rtt = minPerturbedRTT
		}
	}

	// Snapshot the in-effect windows into the reused result buffers
	// before the protocol updates below mutate l.x.
	copy(l.resWin, l.x)
	for i := range l.resLoss {
		l.resLoss[i] = 0
	}
	res := StepResult{
		Step:     l.step,
		Windows:  l.resWin,
		RTT:      rtt,
		CongLoss: congLoss,
		Loss:     l.resLoss,
	}
	for i := range l.senders {
		if p != nil && !l.active[i] {
			// Departed flow: no packets in flight, no feedback, window
			// frozen until re-arrival resets it.
			res.Windows[i] = 0
			continue
		}
		loss := congLoss
		if l.cfg.Loss != nil {
			r := l.cfg.Loss.Rate(l.step, i, l.x[i], l.rng)
			loss = 1 - (1-loss)*(1-r)
		}
		if p != nil {
			if r := p.ExtraLoss(l.step, i); r > 0 {
				loss = 1 - (1-loss)*(1-r)
			}
		}
		res.Loss[i] = loss
		l.epochSurvive[i] *= 1 - loss
		l.epochRTTSum[i] += rtt
		l.epochSteps[i]++

		period := l.senders[i].Period
		if period > 1 && l.step%period != l.senders[i].Phase {
			continue // window held until this sender's update step
		}
		next := l.senders[i].Proto.Next(protocol.Feedback{
			Step:   l.step,
			Window: l.x[i],
			RTT:    l.epochRTTSum[i] / float64(l.epochSteps[i]),
			Loss:   1 - l.epochSurvive[i],
		})
		if math.IsNaN(next) || math.IsInf(next, 0) {
			l.fail(l.step, i, next)
			next = protocol.MinWindow
		}
		w := protocol.Clamp(next, l.cfg.MaxWindow)
		if math.IsInf(w, 0) || w < 0 {
			// Reachable when MaxWindow is +Inf and the protocol runs away.
			l.fail(l.step, i, w)
			w = protocol.MinWindow
		}
		l.x[i] = w
		l.epochSurvive[i] = 1
		l.epochRTTSum[i] = 0
		l.epochSteps[i] = 0
	}
	l.step++
	return res
}

// Run advances the model for steps time steps and returns the recorded
// trace. The trace stores, per step, the windows in effect during the
// step, the step's RTT and the congestion loss rate (per-sender random
// loss is a sender-local observation, not a link property, and is not
// recorded).
func (l *Link) Run(steps int) *trace.Trace {
	tr := trace.New(len(l.senders), l.cfg.Capacity(), l.cfg.BaseRTT(), steps)
	for i := 0; i < steps; i++ {
		res := l.Step()
		tr.Append(res.Windows, res.RTT, res.CongLoss)
	}
	return tr
}

// Homogeneous builds and runs a link where all n senders use clones of
// proto, starting from the given initial windows (init is cycled if
// shorter than n). It is the workhorse for the all-senders-run-P axioms.
func Homogeneous(cfg Config, proto protocol.Protocol, n int, init []float64, steps int) (*trace.Trace, error) {
	senders, err := HomogeneousSenders(proto, n, init)
	if err != nil {
		return nil, err
	}
	l, err := New(cfg, senders...)
	if err != nil {
		return nil, err
	}
	return l.Run(steps), nil
}

// HomogeneousSenders builds the sender slice Homogeneous runs: n clones
// of proto with init (cycled; default protocol.MinWindow) as initial
// windows. Exposed so callers driving a link through another layer (the
// engine adapters) construct senders identically.
func HomogeneousSenders(proto protocol.Protocol, n int, init []float64) ([]Sender, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fluid: need at least one sender, got %d", n)
	}
	senders := make([]Sender, n)
	for i := range senders {
		w := protocol.MinWindow
		if len(init) > 0 {
			w = init[i%len(init)]
		}
		senders[i] = Sender{Proto: proto.Clone(), Init: w}
	}
	return senders, nil
}

// Mixed builds and runs a link with one sender per protocol in protos,
// using the matching entry of init (cycled) as initial window. It is the
// workhorse for the friendliness axioms.
func Mixed(cfg Config, protos []protocol.Protocol, init []float64, steps int) (*trace.Trace, error) {
	l, err := New(cfg, MixedSenders(protos, init)...)
	if err != nil {
		return nil, err
	}
	return l.Run(steps), nil
}

// MixedSenders builds the sender slice Mixed runs: one clone per
// protocol with init (cycled; default protocol.MinWindow) as initial
// windows.
func MixedSenders(protos []protocol.Protocol, init []float64) []Sender {
	senders := make([]Sender, len(protos))
	for i, p := range protos {
		w := protocol.MinWindow
		if len(init) > 0 {
			w = init[i%len(init)]
		}
		senders[i] = Sender{Proto: p.Clone(), Init: w}
	}
	return senders
}
