package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// testCfg is a 100-MSS-capacity link: B = 1190.48 MSS/s, Θ = 42ms/2.
func testCfg() Config {
	theta := 0.021
	return Config{
		Bandwidth: 100 / (2 * theta), // C = B·2Θ = 100 MSS
		PropDelay: theta,
		Buffer:    20,
	}
}

func TestCapacity(t *testing.T) {
	cfg := testCfg()
	if got := cfg.Capacity(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Capacity = %v, want 100", got)
	}
	if got := cfg.BaseRTT(); math.Abs(got-0.042) > 1e-12 {
		t.Fatalf("BaseRTT = %v, want 0.042", got)
	}
	inf := Config{Infinite: true, PropDelay: 0.021}
	if !math.IsInf(inf.Capacity(), 1) {
		t.Fatalf("infinite capacity = %v", inf.Capacity())
	}
}

func TestMbpsToMSSps(t *testing.T) {
	// 12 Mbps = 12e6/8/1500 = 1000 MSS/s.
	if got := MbpsToMSSps(12); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("MbpsToMSSps(12) = %v, want 1000", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bandwidth: 0, PropDelay: 0.02},            // zero bandwidth
		{Bandwidth: 100, PropDelay: 0},             // zero delay
		{Bandwidth: 100, PropDelay: 1, Buffer: -1}, // negative buffer
	}
	for i, cfg := range bad {
		if _, err := New(cfg, Sender{Proto: protocol.Reno(), Init: 1}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(testCfg()); err == nil {
		t.Error("empty sender set accepted")
	}
	if _, err := New(testCfg(), Sender{Proto: nil}); err == nil {
		t.Error("nil protocol accepted")
	}
	// Infinite link needs no bandwidth.
	if _, err := New(Config{Infinite: true, PropDelay: 0.02}, Sender{Proto: protocol.Reno(), Init: 1}); err != nil {
		t.Errorf("infinite link rejected: %v", err)
	}
}

func TestRTTRegimes(t *testing.T) {
	l := MustNew(testCfg(), Sender{Proto: protocol.Reno(), Init: 1})
	base := l.cfg.BaseRTT()

	// Under capacity: RTT = 2Θ.
	rtt, loss := l.congestion(50)
	if rtt != base || loss != 0 {
		t.Fatalf("X=50: rtt=%v loss=%v, want (%v, 0)", rtt, loss, base)
	}
	// Queue building: C < X < C+τ ⇒ RTT = (X−C)/B + 2Θ.
	rtt, loss = l.congestion(110)
	want := 10/l.cfg.Bandwidth + base
	if math.Abs(rtt-want) > 1e-12 || loss != 0 {
		t.Fatalf("X=110: rtt=%v loss=%v, want (%v, 0)", rtt, loss, want)
	}
	// Exactly at C+τ: still the queueing branch per eq. 1 (X < C+τ is
	// false at equality, so the timeout branch applies).
	rtt, loss = l.congestion(120)
	if rtt != l.cfg.TimeoutRTT || loss != 0 {
		t.Fatalf("X=C+τ: rtt=%v loss=%v, want (Δ=%v, 0)", rtt, loss, l.cfg.TimeoutRTT)
	}
	// Overflow: loss = 1 − (C+τ)/X and RTT = Δ.
	rtt, loss = l.congestion(240)
	if rtt != l.cfg.TimeoutRTT {
		t.Fatalf("X=240: rtt=%v, want Δ=%v", rtt, l.cfg.TimeoutRTT)
	}
	if math.Abs(loss-0.5) > 1e-12 {
		t.Fatalf("X=240: loss=%v, want 0.5", loss)
	}
}

func TestTimeoutRTTDefault(t *testing.T) {
	cfg := testCfg().withDefaults()
	want := 2 * (cfg.BaseRTT() + cfg.Buffer/cfg.Bandwidth)
	if math.Abs(cfg.TimeoutRTT-want) > 1e-12 {
		t.Fatalf("TimeoutRTT default = %v, want %v", cfg.TimeoutRTT, want)
	}
}

func TestSingleRenoSawtooth(t *testing.T) {
	tr, err := Homogeneous(testCfg(), protocol.Reno(), 1, []float64{1}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// From some point onwards, a single Reno flow oscillates between
	// roughly (C+τ)/2 and C+τ: tail utilization ≥ b(1+τ/C) = 0.6·C.
	tail := stats.Tail(tr.Total(), 0.5)
	if mn := stats.Min(tail); mn < 0.59*100 {
		t.Fatalf("tail min X = %v, want ≥ 59", mn)
	}
	if mx := stats.Max(tail); mx > 125 {
		t.Fatalf("tail max X = %v, want ≤ C+τ+a", mx)
	}
	// Loss recurs forever (AIMD keeps probing).
	if lossSum := stats.Sum(stats.Tail(tr.Loss(), 0.5)); lossSum == 0 {
		t.Fatal("AIMD stopped probing: no loss in tail")
	}
}

func TestTwoRenosConverge(t *testing.T) {
	// Start maximally unfair: windows 1 and 100.
	tr, err := Homogeneous(testCfg(), protocol.Reno(), 2, []float64{1, 100}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.AvgWindow(0, 0.75)
	b := tr.AvgWindow(1, 0.75)
	ratio := math.Min(a, b) / math.Max(a, b)
	if ratio < 0.9 {
		t.Fatalf("Reno fairness ratio = %v, want ≥ 0.9", ratio)
	}
}

func TestMIMDPreservesRatios(t *testing.T) {
	// Both MIMD senders multiply by the same factor every step (shared
	// feedback), so the window ratio never changes: MIMD is 0-fair.
	tr, err := Homogeneous(testCfg(), protocol.Scalable(), 2, []float64{5, 50}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Window(0)[0] / tr.Window(1)[0]
	last := tr.Window(0)[tr.Len()-1] / tr.Window(1)[tr.Len()-1]
	if math.Abs(first-last)/first > 0.01 {
		t.Fatalf("MIMD ratio drifted: %v -> %v", first, last)
	}
}

func TestInfiniteLinkNoCongestion(t *testing.T) {
	cfg := Config{Infinite: true, PropDelay: 0.021, MaxWindow: 1e6}
	tr, err := Homogeneous(cfg, protocol.Reno(), 1, []float64{1}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if mx := stats.Max(tr.Loss()); mx != 0 {
		t.Fatalf("infinite link produced loss %v", mx)
	}
	// AIMD grows by 1 per step unimpeded.
	if got := tr.Window(0)[499]; got != 500 {
		t.Fatalf("window after 500 steps = %v, want 500", got)
	}
	for _, rtt := range tr.RTT() {
		if rtt != cfg.BaseRTT() {
			t.Fatalf("infinite link RTT = %v, want %v", rtt, cfg.BaseRTT())
		}
	}
}

func TestAIMDNotRobustToConstantLoss(t *testing.T) {
	// Metric VI scenario: infinite link, constant 1% loss. Reno sees loss
	// every step and pins at the window floor — AIMD is 0-robust.
	cfg := Config{Infinite: true, PropDelay: 0.021, Loss: NewConstantLoss(0.01)}
	tr, err := Homogeneous(cfg, protocol.Reno(), 1, []float64{1000}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Window(0)[tr.Len()-1]; got > 2 {
		t.Fatalf("Reno window under constant loss = %v, want collapse to floor", got)
	}
}

func TestRobustAIMDSurvivesConstantLoss(t *testing.T) {
	// Robust-AIMD(1, 0.8, 0.02) tolerates 1% constant loss and keeps
	// growing without bound — it is 0.02-robust.
	cfg := Config{Infinite: true, PropDelay: 0.021, Loss: NewConstantLoss(0.01), MaxWindow: 1e6}
	tr, err := Homogeneous(cfg, protocol.NewRobustAIMD(1, 0.8, 0.02), 1, []float64{1}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Window(0)[tr.Len()-1]; got < 1900 {
		t.Fatalf("Robust-AIMD window = %v, want ≈2000 (unimpeded growth)", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *Link {
		cfg := Config{Infinite: true, PropDelay: 0.021, Loss: NewPacketLoss(0.05), Seed: 99}
		return MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 50})
	}
	tr1 := mk().Run(300)
	tr2 := mk().Run(300)
	for i := 0; i < tr1.Len(); i++ {
		if tr1.Window(0)[i] != tr2.Window(0)[i] {
			t.Fatalf("same-seed runs diverged at step %d", i)
		}
	}
}

func TestPacketLossSamplingMean(t *testing.T) {
	// With a large window the binomial sample concentrates near R.
	pl := NewPacketLoss(0.1)
	rng := newTestRNG()
	sum := 0.0
	const trials = 200
	for i := 0; i < trials; i++ {
		sum += pl.Rate(i, 0, 1000, rng)
	}
	mean := sum / trials
	if math.Abs(mean-0.1) > 0.01 {
		t.Fatalf("PacketLoss empirical mean = %v, want ≈0.1", mean)
	}
}

func TestPacketLossTinyWindow(t *testing.T) {
	pl := NewPacketLoss(0.5)
	rng := newTestRNG()
	if got := pl.Rate(0, 0, 0.4, rng); got != 0 {
		t.Fatalf("PacketLoss below one segment = %v, want 0", got)
	}
	// One-segment window: rate is 0 or 1.
	for i := 0; i < 50; i++ {
		r := pl.Rate(i, 0, 1, rng)
		if r != 0 && r != 1 {
			t.Fatalf("one-segment loss rate = %v, want 0 or 1", r)
		}
	}
}

func TestOnOffLossSchedule(t *testing.T) {
	ol := NewOnOffLoss(0.2, 2, 5)
	rng := newTestRNG()
	want := []float64{0.2, 0.2, 0, 0, 0, 0.2, 0.2, 0, 0, 0}
	for step, w := range want {
		if got := ol.Rate(step, 0, 100, rng); got != w {
			t.Fatalf("step %d: rate = %v, want %v", step, got, w)
		}
	}
}

func TestLossProcessConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewConstantLoss(-0.1) },
		func() { NewConstantLoss(1) },
		func() { NewPacketLoss(1.5) },
		func() { NewOnOffLoss(0.1, 0, 5) },
		func() { NewOnOffLoss(0.1, 6, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMixedLink(t *testing.T) {
	tr, err := Mixed(testCfg(), []protocol.Protocol{protocol.Reno(), protocol.Scalable()}, []float64{10, 10}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Scalable (MIMD) outcompetes Reno on a shared link.
	reno := tr.AvgWindow(0, 0.75)
	scal := tr.AvgWindow(1, 0.75)
	if scal <= reno {
		t.Fatalf("Scalable (%v) did not beat Reno (%v)", scal, reno)
	}
}

func TestWindowClamping(t *testing.T) {
	cfg := testCfg()
	cfg.MaxWindow = 50
	// An MIMD sender would blow past 50 quickly; the link must clamp.
	tr, err := Homogeneous(cfg, protocol.NewMIMD(2, 0.5), 1, []float64{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mx := stats.Max(tr.Window(0)); mx > 50 {
		t.Fatalf("window exceeded M: %v", mx)
	}
	if mn := stats.Min(tr.Window(0)); mn < protocol.MinWindow {
		t.Fatalf("window below floor: %v", mn)
	}
}

func TestStepResultFields(t *testing.T) {
	l := MustNew(testCfg(), Sender{Proto: protocol.Reno(), Init: 130})
	res := l.Step()
	if res.Step != 0 {
		t.Fatalf("Step index = %d", res.Step)
	}
	if res.Windows[0] != 130 {
		t.Fatalf("Windows = %v", res.Windows)
	}
	if res.CongLoss <= 0 {
		t.Fatalf("X=130 > C+τ=120 must lose; got %v", res.CongLoss)
	}
	if res.Loss[0] != res.CongLoss {
		t.Fatalf("per-sender loss %v != congestion loss %v", res.Loss[0], res.CongLoss)
	}
	// Next step must reflect the halved window.
	res2 := l.Step()
	if res2.Windows[0] != 65 {
		t.Fatalf("window after loss = %v, want 65", res2.Windows[0])
	}
}

// Property: the loss formula always yields L in [0, 1) and RTT ≥ 2Θ.
func TestQuickCongestionBounds(t *testing.T) {
	l := MustNew(testCfg(), Sender{Proto: protocol.Reno(), Init: 1})
	f := func(raw float64) bool {
		x := math.Abs(math.Mod(raw, 1e9))
		if math.IsNaN(x) {
			return true
		}
		rtt, loss := l.congestion(x)
		return loss >= 0 && loss < 1 && rtt >= l.cfg.BaseRTT()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: relabeling homogeneous senders does not change the sorted
// window outcome (sender anonymity).
func TestQuickSenderAnonymity(t *testing.T) {
	f := func(seed uint8) bool {
		w1 := float64(seed%50) + 1
		w2 := float64(seed%31) + 10
		tr1, err1 := Homogeneous(testCfg(), protocol.Reno(), 2, []float64{w1, w2}, 200)
		tr2, err2 := Homogeneous(testCfg(), protocol.Reno(), 2, []float64{w2, w1}, 200)
		if err1 != nil || err2 != nil {
			return false
		}
		last := tr1.Len() - 1
		a1, b1 := tr1.Window(0)[last], tr1.Window(1)[last]
		a2, b2 := tr2.Window(0)[last], tr2.Window(1)[last]
		return math.Min(a1, b1) == math.Min(a2, b2) && math.Max(a1, b1) == math.Max(a2, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
