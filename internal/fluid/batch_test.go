package fluid

import (
	"errors"
	"math"
	"testing"

	"repro/internal/protocol"
)

// batchScenario is one (Config, Senders) pair for the bit-identity matrix.
type batchScenario struct {
	name    string
	cfg     Config
	senders func() []Sender
}

func link20() Config {
	theta := 0.021
	return Config{Bandwidth: 20 / (2 * theta), PropDelay: theta, Buffer: 4}
}

func batchScenarios() []batchScenario {
	protos := func() []protocol.Protocol {
		return []protocol.Protocol{
			protocol.Reno(),
			protocol.Scalable(),
			protocol.IIAD(),
			protocol.SQRT(),
			protocol.NewRobustAIMD(1, 0.5, 0.05),
			protocol.NewHighSpeed(),
			protocol.CubicLinux(),
		}
	}
	mixed := func() []Sender { return MixedSenders(protos(), []float64{1, 30, 5, 12, 2, 80, 50}) }
	pair := func(p protocol.Protocol) func() []Sender {
		return func() []Sender {
			s, err := HomogeneousSenders(p, 2, []float64{1, 25})
			if err != nil {
				panic(err)
			}
			return s
		}
	}

	scen := []batchScenario{
		{"mixed-plain", link20(), mixed},
		{"mixed-const-loss", func() Config {
			c := link20()
			c.Loss = NewConstantLoss(0.01)
			c.Seed = 7
			return c
		}(), mixed},
		{"mixed-packet-loss", func() Config {
			c := link20()
			c.Loss = NewPacketLoss(0.002)
			c.Seed = 11
			return c
		}(), mixed},
		{"mixed-onoff-loss", func() Config {
			c := link20()
			c.Loss = NewOnOffLoss(0.1, 40, 200)
			c.Seed = 3
			return c
		}(), mixed},
		{"mixed-bandwidth-schedule", func() Config {
			c := link20()
			c.BandwidthSchedule = func(step int) float64 {
				if step%100 < 50 {
					return c.Bandwidth
				}
				return c.Bandwidth / 3
			}
			return c
		}(), mixed},
		{"mixed-infinite-loss", func() Config {
			c := Config{Infinite: true, PropDelay: 0.021, MaxWindow: 1e12}
			c.Loss = NewConstantLoss(0.01)
			return c
		}(), mixed},
		{"mixed-perturb", func() Config {
			c := link20()
			c.Loss = NewPacketLoss(0.001)
			c.Seed = 19
			c.Perturb = stubPerturber{
				scale: func(step, link int) float64 {
					if step%97 < 10 {
						return 0.4
					}
					return 1
				},
				loss: func(step, flow int) float64 {
					if (step+flow)%53 == 0 {
						return 0.2
					}
					return 0
				},
				rtt: func(step, link int) float64 {
					if step%31 == 0 {
						return 0.004
					}
					return 0
				},
				active: func(step, flow int) bool {
					// Flows 1 (stateless) and 6 (Cubic, stateful kernel)
					// depart for a while and re-arrive, pinning that kernel
					// state survives churn exactly as scalar protocol state
					// does.
					return (flow != 1 && flow != 6) || step < 120 || step >= 300
				},
			}
			return c
		}(), mixed},
	}
	for _, p := range protos() {
		scen = append(scen, batchScenario{"pair-" + p.Name(), link20(), pair(p)})
	}
	return scen
}

// TestBatchBitIdentity is the fluid-level golden matrix: stepping all
// scenarios together in one Batch must reproduce, bit for bit, the
// windows, RTT and congestion loss that each scenario's scalar Link
// produces on its own — including under random loss processes,
// bandwidth schedules, and chaos-style perturbation with flow churn.
func TestBatchBitIdentity(t *testing.T) {
	const steps = 400

	scen := batchScenarios()
	cells := make([]BatchCell, len(scen))
	links := make([]*Link, len(scen))
	for i, sc := range scen {
		cells[i] = BatchCell{Cfg: sc.cfg, Senders: sc.senders()}
		links[i] = MustNew(sc.cfg, sc.senders()...)
	}
	b, err := NewBatch(cells)
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < steps; s++ {
		b.Step()
		for ci, l := range links {
			res := l.Step()
			if err := l.Err(); err != nil {
				t.Fatalf("%s: scalar link diverged at step %d: %v", scen[ci].name, s, err)
			}
			if err := b.Err(ci); err != nil {
				t.Fatalf("%s: batch cell diverged at step %d: %v", scen[ci].name, s, err)
			}
			if got, want := b.RTT(ci), res.RTT; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s step %d: RTT %v != %v", scen[ci].name, s, got, want)
			}
			if got, want := b.CongLoss(ci), res.CongLoss; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s step %d: CongLoss %v != %v", scen[ci].name, s, got, want)
			}
			bw := b.Windows(ci)
			for i, want := range res.Windows {
				if math.Float64bits(bw[i]) != math.Float64bits(want) {
					t.Fatalf("%s step %d sender %d: window %v != %v", scen[ci].name, s, i, bw[i], want)
				}
			}
		}
	}
}

// TestBatchDivergenceFreezesCell asserts a diverging cell records the same
// DivergedError the scalar path does and freezes, while the other cells
// keep stepping bit-identically.
func TestBatchDivergenceFreezesCell(t *testing.T) {
	runaway := Config{Infinite: true, PropDelay: 0.021, MaxWindow: math.Inf(1)}
	bad := []Sender{{Proto: protocol.NewMIMD(10, 0.5), Init: 1e300}}
	good := link20()
	goodSenders := []Sender{{Proto: protocol.Reno(), Init: 1}, {Proto: protocol.Scalable(), Init: 30}}

	b, err := NewBatch([]BatchCell{
		{Cfg: runaway, Senders: bad},
		{Cfg: good, Senders: goodSenders},
	})
	if err != nil {
		t.Fatal(err)
	}
	lbad := MustNew(runaway, bad...)
	lgood := MustNew(good, goodSenders...)

	var wantErr error
	for s := 0; s < 200; s++ {
		b.Step()
		res := lgood.Step()
		if wantErr == nil {
			lbad.Step()
			wantErr = lbad.Err()
			if (wantErr == nil) != (b.Err(0) == nil) {
				t.Fatalf("step %d: divergence mismatch: scalar %v, batch %v", s, wantErr, b.Err(0))
			}
		}
		bw := b.Windows(1)
		for i, want := range res.Windows {
			if math.Float64bits(bw[i]) != math.Float64bits(want) {
				t.Fatalf("healthy cell drifted at step %d sender %d: %v != %v", s, i, bw[i], want)
			}
		}
	}
	if wantErr == nil {
		t.Fatal("runaway cell never diverged")
	}
	got := b.Err(0)
	var gd, wd *DivergedError
	if !errors.As(got, &gd) || !errors.As(wantErr, &wd) {
		t.Fatalf("errors are not DivergedError: batch %v, scalar %v", got, wantErr)
	}
	if gd.Step != wd.Step || gd.Sender != wd.Sender || math.Float64bits(gd.Value) != math.Float64bits(wd.Value) {
		t.Fatalf("divergence detail mismatch: batch %+v, scalar %+v", gd, wd)
	}
	if !errors.Is(got, ErrDiverged) {
		t.Fatalf("batch divergence does not unwrap to ErrDiverged: %v", got)
	}
}

// primedCubic returns a Cubic instance with live state: it declines a
// kernel (the zeroed state slots would restart its curve), so it must be
// routed per-cell.
func primedCubic() *protocol.Cubic {
	p := protocol.CubicLinux()
	p.Next(protocol.Feedback{Window: 50})
	return p
}

// TestBatchableRejections pins the fallback triggers: non-kernel
// protocols, stateful instances with live state, unsynchronized feedback,
// and invalid configurations must all be reported, so the engine can
// route those cells per-cell.
func TestBatchableRejections(t *testing.T) {
	ok := link20()
	cases := []struct {
		name    string
		cfg     Config
		senders []Sender
	}{
		{"pcc", ok, []Sender{{Proto: protocol.DefaultPCC(), Init: 1}}},
		{"bbrish", ok, []Sender{{Proto: protocol.NewBBRish(), Init: 1}}},
		{"primed-cubic", ok, []Sender{{Proto: primedCubic(), Init: 1}}},
		{"func", ok, []Sender{{Proto: &protocol.Func{Fn: func(fb protocol.Feedback) float64 { return fb.Window }}, Init: 1}}},
		{"mixed-one-bad", ok, []Sender{{Proto: protocol.Reno(), Init: 1}, {Proto: protocol.DefaultVegas(), Init: 1}}},
		{"period", ok, []Sender{{Proto: protocol.Reno(), Init: 1, Period: 4}}},
		{"nil-proto", ok, []Sender{{Init: 1}}},
		{"no-senders", ok, nil},
		{"bad-config", Config{}, []Sender{{Proto: protocol.Reno(), Init: 1}}},
	}
	for _, tc := range cases {
		if err := Batchable(tc.cfg, tc.senders); err == nil {
			t.Errorf("%s: Batchable = nil, want error", tc.name)
		}
		if _, err := NewBatch([]BatchCell{{Cfg: tc.cfg, Senders: tc.senders}}); err == nil {
			t.Errorf("%s: NewBatch = nil error, want error", tc.name)
		}
	}
	if err := Batchable(ok, []Sender{{Proto: protocol.Reno(), Init: 1, Period: 1}}); err != nil {
		t.Errorf("period 1 must be batchable, got %v", err)
	}
}

// TestBatchStepAllocFree pins the batched hot loop at zero allocations
// per step, the batched counterpart of TestLinkStepAllocFree (run under
// -race in CI).
func TestBatchStepAllocFree(t *testing.T) {
	scen := batchScenarios()
	cells := make([]BatchCell, len(scen))
	for i, sc := range scen {
		cells[i] = BatchCell{Cfg: sc.cfg, Senders: sc.senders()}
	}
	b, err := NewBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	// Warm past the transient so the loss and perturbation paths have
	// been exercised too.
	for i := 0; i < 200; i++ {
		b.Step()
	}
	if avg := testing.AllocsPerRun(500, func() { b.Step() }); avg != 0 {
		t.Fatalf("Batch.Step allocates %.2f times per step in steady state, want 0", avg)
	}
}
