package fluid

import (
	"errors"
	"fmt"
)

// Perturber is the fault-injection hook the fluid model consults each
// step. It is a structural copy of the chaos.Injector method set — the
// fluid package stays free of chaos imports; any compiled chaos schedule
// satisfies it. The single bottleneck is link 0. Implementations may
// assume steps are queried in non-decreasing order.
type Perturber interface {
	// CapacityScale returns the bandwidth multiplier for link at step.
	CapacityScale(step, link int) float64
	// ExtraLoss returns an additional non-congestion loss rate in [0, 1)
	// for flow at step, composed with the congestion and LossProcess
	// rates as independent drops.
	ExtraLoss(step, flow int) float64
	// RTTOffset returns an additive RTT perturbation in seconds for link
	// at step; the resulting RTT is floored at a small positive value.
	RTTOffset(step, link int) float64
	// FlowActive reports whether flow is live at step; inactive flows
	// hold no window and skip protocol updates.
	FlowActive(step, flow int) bool
}

// ErrDiverged is the sentinel every divergence error unwraps to: the
// model produced a non-finite or negative window. Test with
// errors.Is(err, fluid.ErrDiverged).
var ErrDiverged = errors.New("fluid: simulation diverged")

// DivergedError reports where a run diverged: the step, the sender whose
// window went bad (-1 for the aggregate), and the offending value.
type DivergedError struct {
	Step   int
	Sender int
	Value  float64
}

func (e *DivergedError) Error() string {
	who := fmt.Sprintf("sender %d window", e.Sender)
	if e.Sender < 0 {
		who = "aggregate window"
	}
	return fmt.Sprintf("fluid: simulation diverged at step %d: %s = %v", e.Step, who, e.Value)
}

// Unwrap makes errors.Is(err, ErrDiverged) work.
func (e *DivergedError) Unwrap() error { return ErrDiverged }

// minPerturbedRTT floors the RTT after a negative chaos offset: one
// microsecond, far below any modeled propagation delay.
const minPerturbedRTT = 1e-6
