package fluid

import "repro/internal/rand64"

// newTestRNG exposes a deterministic RNG to the package tests.
func newTestRNG() *rand64.Source { return rand64.New(12345) }
