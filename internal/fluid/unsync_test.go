package fluid

import (
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/stats"
)

func TestPeriodOneMatchesSynchronized(t *testing.T) {
	// Period 0/1 must reproduce the paper's synchronized dynamics
	// exactly.
	mk := func(period int) []float64 {
		l := MustNew(testCfg(),
			Sender{Proto: protocol.Reno(), Init: 1, Period: period},
			Sender{Proto: protocol.Reno(), Init: 50, Period: period},
		)
		tr := l.Run(500)
		return tr.Window(0)
	}
	w0 := mk(0)
	w1 := mk(1)
	for i := range w0 {
		if w0[i] != w1[i] {
			t.Fatalf("step %d: period 0 (%v) != period 1 (%v)", i, w0[i], w1[i])
		}
	}
}

func TestWindowHeldBetweenUpdates(t *testing.T) {
	l := MustNew(testCfg(), Sender{Proto: protocol.Reno(), Init: 10, Period: 4, Phase: 0})
	tr := l.Run(40)
	w := tr.Window(0)
	// Updates land on steps ≡ 0 (mod 4); the recorded window (in effect
	// during the step) therefore changes only at steps 1, 5, 9, ...
	for s := 1; s < len(w); s++ {
		changed := w[s] != w[s-1]
		expectChange := (s-1)%4 == 0
		if changed && !expectChange {
			t.Fatalf("window changed at step %d outside the update schedule", s)
		}
	}
}

func TestEpochAggregatesLoss(t *testing.T) {
	// A sender updating every 4 steps must still react to a loss that
	// occurred mid-epoch. Build a deterministic loss process that fires
	// exactly once, at a step far from the sender's update step.
	cfg := Config{Infinite: true, PropDelay: 0.021, Loss: NewOnOffLoss(0.5, 1, 1000)}
	// OnOff with period 1000, on-steps 1: loss only at steps 0..0 (step%1000 < 1).
	l := MustNew(cfg, Sender{Proto: protocol.Reno(), Init: 100, Period: 4, Phase: 3})
	tr := l.Run(8)
	w := tr.Window(0)
	// The loss happened at step 0; the first update is at step 3, and
	// the epoch-aggregated loss must trigger a halving, visible at step 4.
	if w[4] >= 100 {
		t.Fatalf("mid-epoch loss was not aggregated: window %v at step 4", w[4])
	}
	if math.Abs(w[4]-50) > 1e-9 {
		t.Fatalf("window after aggregated loss = %v, want 50", w[4])
	}
}

func TestSlowUpdaterLosesToFastUpdater(t *testing.T) {
	// Two Renos, one updating every step, one every 4 steps: the slow
	// updater grows its window 4× slower and ends up with the smaller
	// share — the unsynchronized-feedback analogue of RTT unfairness.
	l := MustNew(testCfg(),
		Sender{Proto: protocol.Reno(), Init: 1, Period: 1},
		Sender{Proto: protocol.Reno(), Init: 1, Period: 4},
	)
	tr := l.Run(4000)
	fast := stats.Mean(stats.Tail(tr.Window(0), 0.75))
	slow := stats.Mean(stats.Tail(tr.Window(1), 0.75))
	if slow >= fast {
		t.Fatalf("slow updater (%v) beat fast updater (%v)", slow, fast)
	}
}

func TestUnsyncValidation(t *testing.T) {
	if _, err := New(testCfg(), Sender{Proto: protocol.Reno(), Period: -1}); err == nil {
		t.Fatal("negative period accepted")
	}
	if _, err := New(testCfg(), Sender{Proto: protocol.Reno(), Period: 2, Phase: 2}); err == nil {
		t.Fatal("phase ≥ period accepted")
	}
	if _, err := New(testCfg(), Sender{Proto: protocol.Reno(), Phase: -1}); err == nil {
		t.Fatal("negative phase accepted")
	}
}

func TestDesynchronizedPhasesStillFairish(t *testing.T) {
	// Same period, opposite phases: epoch aggregation keeps both Renos
	// reacting to every loss episode, so fairness survives desync.
	l := MustNew(testCfg(),
		Sender{Proto: protocol.Reno(), Init: 1, Period: 2, Phase: 0},
		Sender{Proto: protocol.Reno(), Init: 80, Period: 2, Phase: 1},
	)
	tr := l.Run(4000)
	a := stats.Mean(stats.Tail(tr.Window(0), 0.75))
	b := stats.Mean(stats.Tail(tr.Window(1), 0.75))
	if r := math.Min(a, b) / math.Max(a, b); r < 0.7 {
		t.Fatalf("desynchronized Renos too unfair: ratio %v", r)
	}
}
