package multilink_test

import (
	"fmt"

	"repro/internal/multilink"
	"repro/internal/protocol"
)

// ExampleParkingLot builds the canonical network-wide scenario: one flow
// crossing two links, each link also carrying a one-hop flow.
func ExampleParkingLot() {
	link := multilink.LinkSpec{
		Bandwidth: 100 / 0.042, // C = 100 MSS
		PropDelay: 0.021,
		Buffer:    20,
	}
	net, err := multilink.ParkingLot(2, link, protocol.Reno(), 1)
	if err != nil {
		panic(err)
	}
	res := net.Run(2000)
	// The long flow's RTT is the sum of its hops'.
	fmt.Printf("flows: %d, long flow goodput < short flow goodput: %v\n",
		len(res.Windows), res.AvgGoodput(0, 0.75) < res.AvgGoodput(1, 0.75))
	// Output:
	// flows: 3, long flow goodput < short flow goodput: true
}
