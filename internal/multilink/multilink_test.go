package multilink

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fluid"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// oneLink is a 100-MSS-capacity link matching the fluid tests' setup.
func oneLink() LinkSpec {
	theta := 0.021
	return LinkSpec{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
}

func TestValidation(t *testing.T) {
	good := oneLink()
	cases := []struct {
		links []LinkSpec
		flows []FlowSpec
	}{
		{nil, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{0}}}},
		{[]LinkSpec{good}, nil},
		{[]LinkSpec{{Bandwidth: 0, PropDelay: 1}}, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{0}}}},
		{[]LinkSpec{good}, []FlowSpec{{Proto: nil, Init: 1, Path: []int{0}}}},
		{[]LinkSpec{good}, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: nil}}},
		{[]LinkSpec{good}, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{1}}}},
		{[]LinkSpec{good}, []FlowSpec{{Proto: protocol.Reno(), Init: 1, Path: []int{0, 0}}}},
	}
	for i, c := range cases {
		if _, err := New(c.links, c.flows); err == nil {
			t.Errorf("case %d: invalid network accepted", i)
		}
	}
}

// TestSingleLinkMatchesFluid anchors the generalization: a one-link
// network must reproduce the single-link fluid model's trajectory
// step-for-step (same windows, same loss).
func TestSingleLinkMatchesFluid(t *testing.T) {
	spec := oneLink()
	net, err := New([]LinkSpec{spec}, []FlowSpec{
		{Proto: protocol.Reno(), Init: 1, Path: []int{0}},
		{Proto: protocol.Reno(), Init: 60, Path: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fl := fluid.MustNew(fluid.Config{
		Bandwidth: spec.Bandwidth,
		PropDelay: spec.PropDelay,
		Buffer:    spec.Buffer,
	},
		fluid.Sender{Proto: protocol.Reno(), Init: 1},
		fluid.Sender{Proto: protocol.Reno(), Init: 60},
	)
	for step := 0; step < 1000; step++ {
		mres := net.Step()
		fres := fl.Step()
		for i := 0; i < 2; i++ {
			if math.Abs(mres.Windows[i]-fres.Windows[i]) > 1e-9 {
				t.Fatalf("step %d flow %d: multilink %v != fluid %v",
					step, i, mres.Windows[i], fres.Windows[i])
			}
		}
		if math.Abs(mres.FlowLoss[0]-fres.Loss[0]) > 1e-12 {
			t.Fatalf("step %d: loss %v != %v", step, mres.FlowLoss[0], fres.Loss[0])
		}
		if math.Abs(mres.FlowRTT[0]-fres.RTT) > 1e-12 {
			t.Fatalf("step %d: rtt %v != %v", step, mres.FlowRTT[0], fres.RTT)
		}
	}
}

// TestParkingLotDeterministicSymmetry documents a property of the
// synchronized deterministic model: because AIMD reacts only to the
// presence of loss and all flows on a shared bottleneck see loss at
// identical steps, the long flow's WINDOW matches the short flows' —
// path length shows up in goodput (double RTT), not in the window.
func TestParkingLotDeterministicSymmetry(t *testing.T) {
	net, err := ParkingLot(2, oneLink(), protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(4000)
	long := res.AvgWindow(0, 0.75)
	short := res.AvgWindow(1, 0.75)
	if r := long / short; math.Abs(r-1) > 0.05 {
		t.Fatalf("deterministic parking lot window ratio = %v, want ≈ 1", r)
	}
	// Goodput halves with the doubled path RTT.
	gr := res.AvgGoodput(0, 0.75) / res.AvgGoodput(1, 0.75)
	if gr > 0.6 || gr < 0.4 {
		t.Fatalf("goodput ratio = %v, want ≈ 0.5 (double RTT)", gr)
	}
}

// TestParkingLotBias reproduces the classic network-wide result under
// stochastic loss observation: the long flow crossing k congested links
// is beaten below the short flows' share, and the bias grows with k.
func TestParkingLotBias(t *testing.T) {
	shareAt := func(k int) float64 {
		net, err := ParkingLot(k, oneLink(), protocol.Reno(), 1, WithStochasticLoss(7))
		if err != nil {
			t.Fatal(err)
		}
		res := net.Run(6000)
		long := res.AvgWindow(0, 0.75)
		short := 0.0
		for i := 1; i <= k; i++ {
			short += res.AvgWindow(i, 0.75)
		}
		return long / (short / float64(k))
	}
	two := shareAt(2)
	four := shareAt(4)
	if two >= 0.95 {
		t.Fatalf("2-hop long flow got window ratio %v, want < 1", two)
	}
	if four >= two {
		t.Fatalf("bias did not grow with hops: 2-hop %v, 4-hop %v", two, four)
	}
}

// TestStochasticDeterministicPerSeed ensures stochastic mode replays.
func TestStochasticDeterministicPerSeed(t *testing.T) {
	run := func() float64 {
		net, err := ParkingLot(2, oneLink(), protocol.Reno(), 1, WithStochasticLoss(3))
		if err != nil {
			t.Fatal(err)
		}
		return net.Run(1000).AvgWindow(0, 0.5)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed stochastic runs diverged: %v vs %v", a, b)
	}
}

func TestParkingLotUtilization(t *testing.T) {
	net, err := ParkingLot(3, oneLink(), protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(3000)
	for l := 0; l < 3; l++ {
		if u := res.LinkUtilization(l, 0.75); u < 0.6 || u > 1.3 {
			t.Errorf("link %d utilization = %v", l, u)
		}
	}
}

func TestParkingLotValidation(t *testing.T) {
	if _, err := ParkingLot(0, oneLink(), protocol.Reno(), 1); err == nil {
		t.Fatal("0-hop parking lot accepted")
	}
}

// TestLossComposition checks the per-flow loss composition: a flow's loss
// is at least each of its links' and at most their sum.
func TestLossComposition(t *testing.T) {
	// Overload two links with MIMD to force simultaneous loss.
	net, err := ParkingLot(2, oneLink(), protocol.Scalable(), 50)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(500)
	for s := 0; s < res.Steps; s++ {
		l0, l1 := res.LinkLoss[0][s], res.LinkLoss[1][s]
		fl := res.FlowLoss[0][s] // long flow crosses both
		if fl < math.Max(l0, l1)-1e-12 {
			t.Fatalf("step %d: composed loss %v below max(link)=%v", s, fl, math.Max(l0, l1))
		}
		if fl > l0+l1+1e-12 {
			t.Fatalf("step %d: composed loss %v above sum %v", s, fl, l0+l1)
		}
	}
}

// TestRTTAddsAlongPath checks delay composition.
func TestRTTAddsAlongPath(t *testing.T) {
	spec := oneLink()
	net, err := New([]LinkSpec{spec, spec}, []FlowSpec{
		{Proto: protocol.Reno(), Init: 1, Path: []int{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Step()
	want := 2 * 2 * spec.PropDelay // two links, each contributing 2Θ
	if math.Abs(res.FlowRTT[0]-want) > 1e-12 {
		t.Fatalf("path RTT = %v, want %v", res.FlowRTT[0], want)
	}
}

func TestHeterogeneousProtocolsAcrossNetwork(t *testing.T) {
	// A Scalable flow and a Reno flow share link 0; Scalable wins there
	// while an unrelated Reno pair shares link 1 fairly.
	spec := oneLink()
	net, err := New([]LinkSpec{spec, spec}, []FlowSpec{
		{Proto: protocol.Scalable(), Init: 10, Path: []int{0}},
		{Proto: protocol.Reno(), Init: 10, Path: []int{0}},
		{Proto: protocol.Reno(), Init: 1, Path: []int{1}},
		{Proto: protocol.Reno(), Init: 80, Path: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(3000)
	if res.AvgWindow(0, 0.75) <= res.AvgWindow(1, 0.75) {
		t.Error("Scalable did not beat Reno on link 0")
	}
	a, b := res.AvgWindow(2, 0.75), res.AvgWindow(3, 0.75)
	if r := math.Min(a, b) / math.Max(a, b); r < 0.85 {
		t.Errorf("link 1 Reno pair unfair: %v", r)
	}
}

func TestGoodputAccountsForLossAndRTT(t *testing.T) {
	net, err := ParkingLot(2, oneLink(), protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(2000)
	long := res.AvgGoodput(0, 0.75)
	short := res.AvgGoodput(1, 0.75)
	if long <= 0 || short <= 0 {
		t.Fatalf("non-positive goodputs: %v %v", long, short)
	}
	if long >= short {
		t.Errorf("long flow goodput %v ≥ short %v", long, short)
	}
}

// Property: the network never produces loss outside [0,1) or negative
// RTTs, across random parking-lot sizes and initial windows.
func TestQuickStepBounds(t *testing.T) {
	f := func(kRaw, initRaw uint8) bool {
		k := int(kRaw%4) + 1
		init := float64(initRaw%200) + 1
		net, err := ParkingLot(k, oneLink(), protocol.Reno(), init)
		if err != nil {
			return false
		}
		for s := 0; s < 100; s++ {
			res := net.Step()
			for _, l := range res.FlowLoss {
				if l < 0 || l >= 1 {
					return false
				}
			}
			for _, r := range res.FlowRTT {
				if r <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTailStats sanity-checks the Result helpers on a known trace.
func TestTailStats(t *testing.T) {
	net, err := ParkingLot(1, oneLink(), protocol.Reno(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(1000)
	if got := res.AvgWindow(0, 0.75); got <= 0 {
		t.Fatalf("AvgWindow = %v", got)
	}
	// Tail utilization of the single link ≈ the fluid single-link case
	// with two senders (the parking lot adds one short flow): ≥ 0.6.
	if u := res.LinkUtilization(0, 0.75); u < 0.6 {
		t.Fatalf("utilization = %v", u)
	}
	// Loss series bounded.
	if mx := stats.Max(res.LinkLoss[0]); mx >= 1 {
		t.Fatalf("max link loss = %v", mx)
	}
}
