// Package multilink generalizes the paper's single-bottleneck fluid model
// to a network of links — the first extension Section 6 calls for
// ("generalizing our model to capture network-wide protocol interaction").
//
// The model keeps §2's synchronized, RTT-quantized dynamics and applies
// them per link: at each step every link l computes its aggregate load
// X_l(t) from the flows routed over it, yielding a per-link loss rate
//
//	L_l(t) = 1 − (C_l+τ_l)/X_l(t)   if X_l(t) > C_l+τ_l, else 0
//
// and a per-link round-trip contribution per eq. (1). A flow traversing
// path P observes the composition of its links:
//
//	loss_f = 1 − Π_{l ∈ P} (1 − L_l)        (independent drops per link)
//	rtt_f  = Σ_{l ∈ P} rtt_l                 (delays add)
//
// and feeds both to its §2 protocol. The classic network-wide phenomena
// emerge: a flow crossing k congested links sees k-fold loss and is beaten
// down below the single-link flows sharing each hop (the "parking lot"
// bias of loss-based AIMD).
package multilink

import (
	"context"
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rand64"
	"repro/internal/stats"
)

// LinkSpec describes one link of the network, with the same quantities as
// the single-link fluid model.
type LinkSpec struct {
	Bandwidth float64 // B_l, MSS/s (> 0)
	PropDelay float64 // Θ_l, seconds (> 0)
	Buffer    float64 // τ_l, MSS (≥ 0)

	// TimeoutRTT is this link's Δ contribution on lossy steps; defaults
	// to 2·(2Θ_l + τ_l/B_l).
	TimeoutRTT float64
}

// Capacity returns C_l = B_l·2Θ_l.
func (l LinkSpec) Capacity() float64 { return l.Bandwidth * 2 * l.PropDelay }

func (l LinkSpec) withDefaults() LinkSpec {
	if l.TimeoutRTT == 0 {
		l.TimeoutRTT = 2 * (2*l.PropDelay + l.Buffer/l.Bandwidth)
	}
	return l
}

func (l LinkSpec) validate(i int) error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("multilink: link %d bandwidth must be positive, got %v", i, l.Bandwidth)
	}
	if l.PropDelay <= 0 {
		return fmt.Errorf("multilink: link %d propagation delay must be positive, got %v", i, l.PropDelay)
	}
	if l.Buffer < 0 {
		return fmt.Errorf("multilink: link %d buffer must be non-negative, got %v", i, l.Buffer)
	}
	return nil
}

// FlowSpec is one sender: its protocol, initial window, and the ordered
// link indices it traverses.
type FlowSpec struct {
	Proto protocol.Protocol
	Init  float64
	Path  []int
}

// Network is a fluid-model network; create with New.
type Network struct {
	links     []LinkSpec
	flows     []FlowSpec
	protos    []protocol.Protocol
	x         []float64 // current windows
	step      int
	maxWindow float64

	// flowsOn[l] lists the flow indices routed over link l.
	flowsOn [][]int

	// rng is non-nil in stochastic-loss mode (WithStochasticLoss).
	rng *rand64.Source

	// perturb and active implement fault injection (WithPerturber).
	perturb Perturber
	active  []bool
}

// Perturber is the fault-injection hook the network consults each step —
// a structural copy of the chaos.Injector method set, so this package
// stays free of chaos imports. Link and flow arguments are this
// network's indices.
type Perturber interface {
	CapacityScale(step, link int) float64
	ExtraLoss(step, flow int) float64
	RTTOffset(step, link int) float64
	FlowActive(step, flow int) bool
}

// minPerturbedRTT floors a link's RTT contribution after a negative
// chaos offset.
const minPerturbedRTT = 1e-6

// Option tweaks network construction.
type Option func(*Network)

// WithMaxWindow caps every flow's window at m (default 1e9).
func WithMaxWindow(m float64) Option {
	return func(n *Network) { n.maxWindow = m }
}

// WithStochasticLoss switches loss observation from the deterministic
// shared-rate model to per-flow sampling: at a step where flow f's
// composed path loss rate is L and its window is x, the flow observes a
// loss event with probability 1 − (1−L)^x — the chance that at least one
// of its x packets was dropped — and otherwise observes no loss.
//
// In the fully synchronized deterministic model, flows sharing a
// bottleneck see loss at identical steps, so magnitude-insensitive
// protocols like AIMD react identically regardless of path length; the
// classic parking-lot bias (long paths lose more often, so AIMD beats
// long flows down) only emerges once loss observation is probabilistic,
// exactly as on a packet network. Runs remain deterministic per seed.
func WithStochasticLoss(seed uint64) Option {
	return func(n *Network) { n.rng = rand64.New(seed) }
}

// WithPerturber applies a deterministic fault-injection schedule
// (typically a compiled chaos.Schedule) while the network runs. The nil
// path is bit-identical to the unperturbed model.
func WithPerturber(p Perturber) Option {
	return func(n *Network) { n.perturb = p }
}

// New builds a network. Every flow's path must be non-empty and reference
// valid links.
func New(links []LinkSpec, flows []FlowSpec, opts ...Option) (*Network, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("multilink: at least one link required")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("multilink: at least one flow required")
	}
	n := &Network{
		links:     make([]LinkSpec, len(links)),
		flows:     flows,
		protos:    make([]protocol.Protocol, len(flows)),
		x:         make([]float64, len(flows)),
		maxWindow: 1e9,
		flowsOn:   make([][]int, len(links)),
	}
	for i, l := range links {
		if err := l.validate(i); err != nil {
			return nil, err
		}
		n.links[i] = l.withDefaults()
	}
	for _, opt := range opts {
		opt(n)
	}
	for f, spec := range flows {
		if spec.Proto == nil {
			return nil, fmt.Errorf("multilink: flow %d has nil protocol", f)
		}
		if len(spec.Path) == 0 {
			return nil, fmt.Errorf("multilink: flow %d has empty path", f)
		}
		seen := make(map[int]bool, len(spec.Path))
		for _, l := range spec.Path {
			if l < 0 || l >= len(links) {
				return nil, fmt.Errorf("multilink: flow %d references unknown link %d", f, l)
			}
			if seen[l] {
				return nil, fmt.Errorf("multilink: flow %d visits link %d twice", f, l)
			}
			seen[l] = true
			n.flowsOn[l] = append(n.flowsOn[l], f)
		}
		n.protos[f] = spec.Proto.Clone()
		n.x[f] = protocol.Clamp(spec.Init, n.maxWindow)
	}
	if n.perturb != nil {
		n.active = make([]bool, len(flows))
	}
	return n, nil
}

// Windows returns a copy of the current window vector.
func (n *Network) Windows() []float64 { return append([]float64(nil), n.x...) }

// StepResult reports one network step.
type StepResult struct {
	Step     int
	Windows  []float64 // windows in effect during the step
	LinkLoss []float64 // per-link loss rate
	LinkRTT  []float64 // per-link round-trip contribution (seconds)
	LinkLoad []float64 // per-link aggregate window during the step
	FlowLoss []float64 // per-flow composed loss
	FlowRTT  []float64 // per-flow composed RTT
}

// Step advances the network one synchronized time step.
func (n *Network) Step() StepResult {
	p := n.perturb
	if p != nil {
		for f := range n.flows {
			on := p.FlowActive(n.step, f)
			if on && !n.active[f] && n.step > 0 {
				// (Re)arrival mid-run restarts from the initial window.
				n.x[f] = protocol.Clamp(n.flows[f].Init, n.maxWindow)
			}
			n.active[f] = on
		}
	}
	res := StepResult{
		Step:     n.step,
		Windows:  append([]float64(nil), n.x...),
		LinkLoss: make([]float64, len(n.links)),
		LinkRTT:  make([]float64, len(n.links)),
		LinkLoad: make([]float64, len(n.links)),
		FlowLoss: make([]float64, len(n.flows)),
		FlowRTT:  make([]float64, len(n.flows)),
	}
	for l, spec := range n.links {
		load := 0.0
		for _, f := range n.flowsOn[l] {
			if p != nil && !n.active[f] {
				continue
			}
			load += n.x[f]
		}
		res.LinkLoad[l] = load
		c, tau := spec.Capacity(), spec.Buffer
		b := spec.Bandwidth
		if p != nil {
			b *= p.CapacityScale(n.step, l)
			c = b * 2 * spec.PropDelay
		}
		switch {
		case load < c+tau:
			res.LinkRTT[l] = math.Max(2*spec.PropDelay, (load-c)/b+2*spec.PropDelay)
		case load > c+tau:
			res.LinkLoss[l] = 1 - (c+tau)/load
			res.LinkRTT[l] = spec.TimeoutRTT
		default:
			res.LinkRTT[l] = spec.TimeoutRTT
		}
		if p != nil {
			// A drained link's queueing delay explodes as 1/b; the
			// timeout cap is the model's "sender gave up" bound.
			if res.LinkRTT[l] > spec.TimeoutRTT {
				res.LinkRTT[l] = spec.TimeoutRTT
			}
			res.LinkRTT[l] += p.RTTOffset(n.step, l)
			if res.LinkRTT[l] < minPerturbedRTT {
				res.LinkRTT[l] = minPerturbedRTT
			}
		}
	}
	for f := range n.flows {
		if p != nil && !n.active[f] {
			// Departed flow: no load, no feedback, window frozen until
			// re-arrival resets it.
			res.Windows[f] = 0
			continue
		}
		survive := 1.0
		rtt := 0.0
		for _, l := range n.flows[f].Path {
			survive *= 1 - res.LinkLoss[l]
			rtt += res.LinkRTT[l]
		}
		if p != nil {
			survive *= 1 - p.ExtraLoss(n.step, f)
		}
		res.FlowLoss[f] = 1 - survive
		res.FlowRTT[f] = rtt
		observed := res.FlowLoss[f]
		if n.rng != nil && observed > 0 {
			// Stochastic mode: the flow notices the step's loss only if
			// at least one of its own packets was hit.
			pHit := 1 - math.Pow(survive, n.x[f])
			if !n.rng.Bernoulli(pHit) {
				observed = 0
			}
		}
		next := n.protos[f].Next(protocol.Feedback{
			Step:   n.step,
			Window: n.x[f],
			RTT:    rtt,
			Loss:   observed,
		})
		if math.IsNaN(next) {
			next = protocol.MinWindow
		}
		n.x[f] = protocol.Clamp(next, n.maxWindow)
	}
	n.step++
	return res
}

// Result is a recorded multilink run, column-oriented per flow and link.
type Result struct {
	Steps    int
	Windows  [][]float64 // [flow][step]
	FlowLoss [][]float64 // [flow][step]
	FlowRTT  [][]float64 // [flow][step]
	LinkLoss [][]float64 // [link][step]
	LinkLoad [][]float64 // [link][step] aggregate window over the link
	links    []LinkSpec
	paths    [][]int
}

// Run advances the network steps times, recording everything.
func (n *Network) Run(steps int) *Result {
	r, _ := n.RunObserved(context.Background(), steps, true, nil)
	return r
}

// RunObserved advances the network steps times with cooperative
// cancellation, calling obs after each step when non-nil. When record is
// true the full Result is accumulated as in Run; when false the network
// is only driven (observers see every step, nothing is retained) and the
// returned Result is nil. The StepResult passed to obs is owned by the
// callback for the duration of the call only.
func (n *Network) RunObserved(ctx context.Context, steps int, record bool, obs func(*StepResult)) (*Result, error) {
	var r *Result
	if record {
		r = &Result{
			Steps:    steps,
			Windows:  make([][]float64, len(n.flows)),
			FlowLoss: make([][]float64, len(n.flows)),
			FlowRTT:  make([][]float64, len(n.flows)),
			LinkLoss: make([][]float64, len(n.links)),
			LinkLoad: make([][]float64, len(n.links)),
			links:    append([]LinkSpec(nil), n.links...),
		}
		for f := range n.flows {
			r.paths = append(r.paths, append([]int(nil), n.flows[f].Path...))
		}
	}
	for s := 0; s < steps; s++ {
		if s&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res := n.Step()
		if record {
			for f := range n.flows {
				r.Windows[f] = append(r.Windows[f], res.Windows[f])
				r.FlowLoss[f] = append(r.FlowLoss[f], res.FlowLoss[f])
				r.FlowRTT[f] = append(r.FlowRTT[f], res.FlowRTT[f])
			}
			for l := range n.links {
				r.LinkLoss[l] = append(r.LinkLoss[l], res.LinkLoss[l])
				r.LinkLoad[l] = append(r.LinkLoad[l], res.LinkLoad[l])
			}
		}
		if obs != nil {
			obs(&res)
		}
	}
	return r, nil
}

// AvgWindow returns flow f's mean window over the tail fraction.
func (r *Result) AvgWindow(f int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(r.Windows[f], tailFrac))
}

// AvgGoodput returns flow f's mean goodput (MSS/s) over the tail fraction.
func (r *Result) AvgGoodput(f int, tailFrac float64) float64 {
	w := stats.Tail(r.Windows[f], tailFrac)
	loss := stats.Tail(r.FlowLoss[f], tailFrac)
	rtt := stats.Tail(r.FlowRTT[f], tailFrac)
	sum := 0.0
	cnt := 0
	for i := range w {
		if rtt[i] > 0 {
			sum += w[i] * (1 - loss[i]) / rtt[i]
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// LinkUtilization returns link l's mean load/C over the tail fraction.
func (r *Result) LinkUtilization(l int, tailFrac float64) float64 {
	return stats.Mean(stats.Tail(r.LinkLoad[l], tailFrac)) / r.links[l].Capacity()
}

// ParkingLot builds the canonical k-hop parking-lot scenario: k identical
// links in a row; one "long" flow crosses all of them; each link also
// carries one dedicated "short" flow. Flow 0 is the long flow; flows
// 1..k are the short flows in link order. All flows run clones of proto.
// Options (e.g. WithStochasticLoss) pass through to New.
func ParkingLot(k int, link LinkSpec, proto protocol.Protocol, init float64, opts ...Option) (*Network, error) {
	if k < 1 {
		return nil, fmt.Errorf("multilink: parking lot needs ≥ 1 hop, got %d", k)
	}
	links := make([]LinkSpec, k)
	path := make([]int, k)
	for i := range links {
		links[i] = link
		path[i] = i
	}
	flows := []FlowSpec{{Proto: proto, Init: init, Path: path}}
	for i := 0; i < k; i++ {
		flows = append(flows, FlowSpec{Proto: proto, Init: init, Path: []int{i}})
	}
	return New(links, flows, opts...)
}
