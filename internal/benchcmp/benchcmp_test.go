package benchcmp

import (
	"strings"
	"testing"
)

const oldRec = `{
  "os": "linux", "arch": "amd64", "max_procs": 8,
  "serial_ns_per_op": 1000000,
  "engine_ns_per_op": 400000,
  "engine_allocs_per_op": 5000,
  "runs_simulated": 5,
  "steps_simulated": 30000,
  "grid_cells": 24,
  "grid_steps": 96000,
  "grid_steps_per_sec": 2000000,
  "speedup": 2.5
}`

func TestComparePasses(t *testing.T) {
	newRec := strings.Replace(oldRec, `"engine_ns_per_op": 400000`, `"engine_ns_per_op": 440000`, 1)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("10%% slower flagged as regression at limit 1.25:\n%s", Format(rep))
	}
	if rep.TimingSkipped {
		t.Fatal("same machine shape skipped timing keys")
	}
	if len(rep.Results) < 4 {
		t.Fatalf("compared only %d keys", len(rep.Results))
	}
}

func TestCompareFlagsTimingRegression(t *testing.T) {
	newRec := strings.Replace(oldRec, `"engine_ns_per_op": 400000`, `"engine_ns_per_op": 600000`, 1)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("50%% slowdown not flagged exactly once:\n%s", Format(rep))
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	newRec := strings.Replace(oldRec, `"engine_allocs_per_op": 5000`, `"engine_allocs_per_op": 9000`, 1)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("80%% alloc growth not flagged:\n%s", Format(rep))
	}
}

func TestCompareExactCountersAlwaysBite(t *testing.T) {
	// Different machine AND more simulated runs: timing skipped, counter
	// regression still caught.
	newRec := strings.NewReplacer(
		`"max_procs": 8`, `"max_procs": 2`,
		`"runs_simulated": 5`, `"runs_simulated": 6`,
	).Replace(oldRec)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimingSkipped {
		t.Fatal("different max_procs did not skip timing keys")
	}
	for _, r := range rep.Results {
		if isTimingKey(r.Key) {
			t.Fatalf("timing key %s compared across machines", r.Key)
		}
	}
	if rep.Regressions != 1 {
		t.Fatalf("extra simulated run not flagged:\n%s", Format(rep))
	}
}

func TestCompareCounterDecreaseIsFine(t *testing.T) {
	newRec := strings.Replace(oldRec, `"steps_simulated": 30000`, `"steps_simulated": 20000`, 1)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("doing less work flagged as regression:\n%s", Format(rep))
	}
}

func TestCompareNewKeysTolerated(t *testing.T) {
	// A fresh record with a key the committed baseline predates must not
	// fail — that is exactly the rollout state of a new metric.
	newRec := strings.Replace(oldRec, `"speedup": 2.5`,
		`"speedup": 2.5, "brand_new_ns_per_op": 123`, 1)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("baseline-missing key flagged:\n%s", Format(rep))
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	// grid_steps_per_sec is a rate: it regresses when it FALLS below
	// 1/limit of the baseline, and a rise is never a regression.
	drop := strings.Replace(oldRec, `"grid_steps_per_sec": 2000000`, `"grid_steps_per_sec": 1500000`, 1)
	rep, err := Compare([]byte(oldRec), []byte(drop), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("25%% throughput drop not flagged exactly once:\n%s", Format(rep))
	}
	rise := strings.Replace(oldRec, `"grid_steps_per_sec": 2000000`, `"grid_steps_per_sec": 9000000`, 1)
	rep, err = Compare([]byte(oldRec), []byte(rise), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("throughput gain flagged as regression:\n%s", Format(rep))
	}
	// Small wobble within the limit passes.
	wobble := strings.Replace(oldRec, `"grid_steps_per_sec": 2000000`, `"grid_steps_per_sec": 1800000`, 1)
	rep, err = Compare([]byte(oldRec), []byte(wobble), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("10%% throughput wobble flagged at limit 1.25:\n%s", Format(rep))
	}
}

func TestCompareRateKeySkippedAcrossMachines(t *testing.T) {
	newRec := strings.NewReplacer(
		`"max_procs": 8`, `"max_procs": 2`,
		`"grid_steps_per_sec": 2000000`, `"grid_steps_per_sec": 100`,
	).Replace(oldRec)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if isRateKey(r.Key) {
			t.Fatalf("rate key %s compared across machine shapes", r.Key)
		}
	}
	if rep.Regressions != 0 {
		t.Fatalf("cross-machine rate drop flagged:\n%s", Format(rep))
	}
}

func TestCompareGridCountersBite(t *testing.T) {
	// grid_steps is an exact work counter: silently growing the benchmark
	// grid must fail the gate even across machines.
	newRec := strings.NewReplacer(
		`"max_procs": 8`, `"max_procs": 2`,
		`"grid_steps": 96000`, `"grid_steps": 96001`,
	).Replace(oldRec)
	rep, err := Compare([]byte(oldRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("grid_steps growth not flagged:\n%s", Format(rep))
	}
}

const declRec = `{
  "os": "linux", "arch": "amd64", "max_procs": 8,
  "exact_keys": ["cells_evaluated", "cells_simulated"],
  "floor_keys": ["frontier_points", "cells_reduction"],
  "cells_evaluated": 339,
  "cells_simulated": 338,
  "frontier_points": 45,
  "cells_reduction": 12.4,
  "explore_ns_per_op": 500000000
}`

func TestCompareDeclaredExactKeysBite(t *testing.T) {
	// A record-declared exact key regresses on increase even across
	// machine shapes, exactly like the built-in counters.
	newRec := strings.NewReplacer(
		`"max_procs": 8`, `"max_procs": 2`,
		`"cells_simulated": 338`, `"cells_simulated": 400`,
	).Replace(declRec)
	rep, err := Compare([]byte(declRec), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimingSkipped {
		t.Fatal("different max_procs did not skip timing keys")
	}
	if rep.Regressions != 1 {
		t.Fatalf("declared exact key growth not flagged exactly once:\n%s", Format(rep))
	}
}

func TestCompareDeclaredFloorKeysBite(t *testing.T) {
	// Floor keys are quality counters: shrinking them regresses, growing
	// them is fine.
	shrink := strings.Replace(declRec, `"frontier_points": 45`, `"frontier_points": 30`, 1)
	rep, err := Compare([]byte(declRec), []byte(shrink), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("frontier shrink not flagged exactly once:\n%s", Format(rep))
	}
	grow := strings.NewReplacer(
		`"frontier_points": 45`, `"frontier_points": 60`,
		`"cells_reduction": 12.4`, `"cells_reduction": 15.0`,
	).Replace(declRec)
	rep, err = Compare([]byte(declRec), []byte(grow), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("quality improvement flagged as regression:\n%s", Format(rep))
	}
}

func TestCompareDeclaredKeysUnionedFromBothRecords(t *testing.T) {
	// A baseline that predates the declaration still gates: the candidate
	// declares the keys, and the baseline happens to carry values.
	oldNoDecl := strings.Replace(declRec,
		`  "exact_keys": ["cells_evaluated", "cells_simulated"],
  "floor_keys": ["frontier_points", "cells_reduction"],
`, "", 1)
	if oldNoDecl == declRec {
		t.Fatal("test fixture edit failed")
	}
	newRec := strings.Replace(declRec, `"cells_evaluated": 339`, `"cells_evaluated": 500`, 1)
	rep, err := Compare([]byte(oldNoDecl), []byte(newRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("candidate-declared exact key not gated against undeclared baseline:\n%s", Format(rep))
	}
}

func TestCompareDeclaredKeyMissingFromBaselineWarns(t *testing.T) {
	oldNoKey := strings.Replace(declRec, `  "cells_reduction": 12.4,`+"\n", "", 1)
	if oldNoKey == declRec {
		t.Fatal("test fixture edit failed")
	}
	rep, err := Compare([]byte(oldNoKey), []byte(declRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("baseline-missing declared key counted as regression:\n%s", Format(rep))
	}
	if len(rep.MissingOld) != 1 || rep.MissingOld[0] != "cells_reduction" {
		t.Fatalf("MissingOld = %v, want [cells_reduction]", rep.MissingOld)
	}
}

func TestCompareMalformedDeclarationIgnored(t *testing.T) {
	// A non-array declaration degrades to "not gated" rather than erroring.
	bad := strings.Replace(declRec,
		`"exact_keys": ["cells_evaluated", "cells_simulated"]`,
		`"exact_keys": "cells_evaluated"`, 1)
	worse := strings.Replace(bad, `"cells_evaluated": 339`, `"cells_evaluated": 500`, 1)
	rep, err := Compare([]byte(bad), []byte(worse), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Key == "cells_evaluated" {
			t.Fatalf("malformed declaration still gated cells_evaluated:\n%s", Format(rep))
		}
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	if _, err := Compare([]byte("not json"), []byte(oldRec), 1.25); err == nil {
		t.Fatal("malformed old record accepted")
	}
	if _, err := Compare([]byte(oldRec), []byte(oldRec), 0); err == nil {
		t.Fatal("zero limit accepted")
	}
}

// TestCompareMissingBaselineKeyWarns pins the graceful-degradation
// contract: a gated key that exists only in the candidate (a metric that
// just landed) is reported as a warning, never as a regression.
func TestCompareMissingBaselineKeyWarns(t *testing.T) {
	stripped := strings.Replace(oldRec, `  "grid_steps_per_sec": 2000000,`+"\n", "", 1)
	// Also drop an ungated key (speedup) to verify only gated keys warn.
	stripped = strings.Replace(stripped, `,
  "speedup": 2.5`, "", 1)
	if stripped == oldRec || strings.Contains(stripped, "speedup") {
		t.Fatal("test fixture edit failed")
	}
	rep, err := Compare([]byte(stripped), []byte(oldRec), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("missing baseline key counted as regression:\n%s", Format(rep))
	}
	if len(rep.MissingOld) != 1 || rep.MissingOld[0] != "grid_steps_per_sec" {
		t.Fatalf("MissingOld = %v, want [grid_steps_per_sec]", rep.MissingOld)
	}
	out := Format(rep)
	if !strings.Contains(out, "warning: grid_steps_per_sec absent from baseline") {
		t.Fatalf("Format missing warning line:\n%s", out)
	}
	// Ungated keys (speedup has no gated suffix) never warn.
	for _, k := range rep.MissingOld {
		if k == "speedup" {
			t.Fatal("ungated key reported as missing")
		}
	}
}
