// Package benchcmp compares a freshly generated benchmark baseline
// record (BENCH_sweep.json, BENCH_characterize.json) against a committed
// one and flags regressions. It is the engine behind CI's bench gate.
//
// Three classes of keys are compared:
//
//   - Timing and allocation keys (suffix _ns_per_op or _allocs_per_op)
//     regress when new/old exceeds the configured limit. They are only
//     comparable between records produced on the same machine shape
//     (os, arch, GOMAXPROCS); across machines they are skipped with a
//     reason rather than producing noise failures.
//   - Throughput keys (suffix _per_sec, e.g. grid_steps_per_sec) are the
//     timing keys' inverse: machine-shape-gated, regressing when the
//     rate drops below 1/limit of the baseline.
//   - Work counters (runs_simulated, steps_simulated, grid_cells,
//     grid_steps) are machine-independent and compared exactly: the
//     whole point of the caching layers is that the same grid costs the
//     same number of simulated runs everywhere, so any increase is a
//     real regression even on a different machine.
//
// Records can additionally declare their own machine-independent keys
// instead of relying on the built-in counter list: an "exact_keys"
// array names keys that regress on any increase (work counters), and a
// "floor_keys" array names keys that regress on any decrease (quality
// floors such as frontier_points). Declared keys from both records are
// unioned with the built-ins and compared regardless of machine shape,
// so a new benchmark file gates itself without a benchcmp change.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// exactKeys are machine-independent work counters where any increase
// regresses, regardless of where the records were produced.
var exactKeys = []string{"runs_simulated", "steps_simulated", "grid_cells", "grid_steps"}

// machineKeys identify the machine shape; all must match for timing and
// allocation comparisons to be meaningful.
var machineKeys = []string{"os", "arch", "max_procs"}

// Result is one compared key.
type Result struct {
	Key       string
	Old, New  float64
	Ratio     float64 // new/old (0 when old is 0)
	Regressed bool
}

// Report is the outcome of comparing one baseline pair.
type Report struct {
	// TimingSkipped is set when the machine shapes differ; timing keys
	// were not compared (counters still were).
	TimingSkipped bool
	SkipReason    string
	Results       []Result
	Regressions   int
	// MissingOld lists gated keys (timing, rate, exact) present in the
	// candidate but absent from the committed baseline. A newly landed
	// metric has no baseline yet — that is a warning, never a failure;
	// the gate tightens once the baseline is regenerated.
	MissingOld []string
}

// Compare checks newRaw against the committed oldRaw. limit is the
// allowed new/old ratio for timing/alloc keys (1.25 = +25%).
func Compare(oldRaw, newRaw []byte, limit float64) (Report, error) {
	var rep Report
	if limit <= 0 {
		return rep, fmt.Errorf("benchcmp: limit must be positive, got %v", limit)
	}
	oldRec, err := parse(oldRaw)
	if err != nil {
		return rep, fmt.Errorf("benchcmp: old record: %w", err)
	}
	newRec, err := parse(newRaw)
	if err != nil {
		return rep, fmt.Errorf("benchcmp: new record: %w", err)
	}

	// Keys the records declare for themselves, unioned across both so a
	// key dropped from the candidate still shows up (as absent → zero
	// value → regression for floors, missing for exacts).
	exact := keySet(exactKeys)
	addDeclared(exact, oldRec, "exact_keys")
	addDeclared(exact, newRec, "exact_keys")
	floor := map[string]bool{}
	addDeclared(floor, oldRec, "floor_keys")
	addDeclared(floor, newRec, "floor_keys")

	for _, k := range machineKeys {
		if fmt.Sprint(oldRec[k]) != fmt.Sprint(newRec[k]) {
			rep.TimingSkipped = true
			rep.SkipReason = fmt.Sprintf("machine shape differs (%s: %v vs %v); timing keys skipped",
				k, oldRec[k], newRec[k])
			break
		}
	}

	keys := make([]string, 0, len(newRec))
	for k := range newRec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nv, ok := newRec[k].(float64)
		if !ok {
			continue
		}
		ov, ok := oldRec[k].(float64)
		if !ok {
			// Key absent from the committed baseline: a gated key that
			// just landed degrades to a warning instead of blocking its
			// own first merge.
			if isTimingKey(k) || isRateKey(k) || exact[k] || floor[k] {
				rep.MissingOld = append(rep.MissingOld, k)
			}
			continue
		}
		switch {
		case isTimingKey(k):
			if rep.TimingSkipped {
				continue
			}
			r := Result{Key: k, Old: ov, New: nv}
			if ov > 0 {
				r.Ratio = nv / ov
				r.Regressed = r.Ratio > limit
			}
			if r.Regressed {
				rep.Regressions++
			}
			rep.Results = append(rep.Results, r)
		case isRateKey(k):
			if rep.TimingSkipped {
				continue
			}
			r := Result{Key: k, Old: ov, New: nv}
			if ov > 0 {
				r.Ratio = nv / ov
				r.Regressed = r.Ratio < 1/limit
			}
			if r.Regressed {
				rep.Regressions++
			}
			rep.Results = append(rep.Results, r)
		case exact[k]:
			r := Result{Key: k, Old: ov, New: nv, Regressed: nv > ov}
			if ov > 0 {
				r.Ratio = nv / ov
			}
			if r.Regressed {
				rep.Regressions++
			}
			rep.Results = append(rep.Results, r)
		case floor[k]:
			r := Result{Key: k, Old: ov, New: nv, Regressed: nv < ov}
			if ov > 0 {
				r.Ratio = nv / ov
			}
			if r.Regressed {
				rep.Regressions++
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

func isTimingKey(k string) bool {
	return strings.HasSuffix(k, "_ns_per_op") || strings.HasSuffix(k, "_allocs_per_op")
}

// isRateKey reports throughput keys: higher is better, so they regress
// when the new/old ratio falls below the inverse limit.
func isRateKey(k string) bool {
	return strings.HasSuffix(k, "_per_sec")
}

func keySet(keys []string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// addDeclared folds a record's self-declared key list (a JSON string
// array under field) into set. Non-array or non-string entries are
// ignored: a malformed declaration degrades to "not gated", never to a
// parse failure of the whole comparison.
func addDeclared(set map[string]bool, rec map[string]any, field string) {
	arr, ok := rec[field].([]any)
	if !ok {
		return
	}
	for _, v := range arr {
		if s, ok := v.(string); ok && s != "" {
			set[s] = true
		}
	}
}

func parse(raw []byte) (map[string]any, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Format renders a report as an aligned human-readable table, one line
// per compared key, regressions marked.
func Format(rep Report) string {
	var sb strings.Builder
	if rep.TimingSkipped {
		fmt.Fprintf(&sb, "note: %s\n", rep.SkipReason)
	}
	for _, k := range rep.MissingOld {
		fmt.Fprintf(&sb, "warning: %s absent from baseline; not gated until the baseline is regenerated\n", k)
	}
	for _, r := range rep.Results {
		mark := "ok"
		if r.Regressed {
			mark = "REGRESSION"
		}
		fmt.Fprintf(&sb, "%-28s old=%-14.6g new=%-14.6g ratio=%-8.3f %s\n",
			r.Key, r.Old, r.New, r.Ratio, mark)
	}
	if len(rep.Results) == 0 {
		sb.WriteString("no comparable keys\n")
	}
	return sb.String()
}
