package jobd

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/metrics"
)

// ScoreBits is the bit-exact wire form of a metrics.Scores: each of the
// eight floats as IEEE-754 bits in hex. encoding/json cannot represent
// NaN or ±Inf at all, and decimal round-trips invite one-ULP drift at
// every hop (client → store → shard → stream); hex bits make "the
// resubmitted job returned bit-identical scores" a string comparison.
type ScoreBits struct {
	Efficiency       string `json:"eff"`
	FastUtilization  string `json:"fast"`
	LossAvoidance    string `json:"loss"`
	Fairness         string `json:"fair"`
	Convergence      string `json:"conv"`
	Robustness       string `json:"robust"`
	TCPFriendliness  string `json:"tcpf"`
	LatencyAvoidance string `json:"lat"`
}

// EncodeScores packs a Scores into its hex-bits wire form.
func EncodeScores(s metrics.Scores) ScoreBits {
	return ScoreBits{
		Efficiency:       hexBits(s.Efficiency),
		FastUtilization:  hexBits(s.FastUtilization),
		LossAvoidance:    hexBits(s.LossAvoidance),
		Fairness:         hexBits(s.Fairness),
		Convergence:      hexBits(s.Convergence),
		Robustness:       hexBits(s.Robustness),
		TCPFriendliness:  hexBits(s.TCPFriendliness),
		LatencyAvoidance: hexBits(s.LatencyAvoidance),
	}
}

// Decode unpacks the hex-bits form back into a Scores, bit-exact.
func (b ScoreBits) Decode() (metrics.Scores, error) {
	var s metrics.Scores
	for _, f := range []struct {
		hex string
		dst *float64
	}{
		{b.Efficiency, &s.Efficiency},
		{b.FastUtilization, &s.FastUtilization},
		{b.LossAvoidance, &s.LossAvoidance},
		{b.Fairness, &s.Fairness},
		{b.Convergence, &s.Convergence},
		{b.Robustness, &s.Robustness},
		{b.TCPFriendliness, &s.TCPFriendliness},
		{b.LatencyAvoidance, &s.LatencyAvoidance},
	} {
		bits, err := strconv.ParseUint(f.hex, 16, 64)
		if err != nil {
			return s, fmt.Errorf("jobd: score bits %q: %w", f.hex, err)
		}
		*f.dst = math.Float64frombits(bits)
	}
	return s, nil
}

// Display renders the scores as ordinary JSON numbers for human
// consumers, with non-finite values (a NaN fairness on a degenerate
// cell) mapped to null rather than breaking the encoder.
func (b ScoreBits) Display() (map[string]*float64, error) {
	s, err := b.Decode()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*float64, 8)
	put := func(name string, v float64) {
		if finite(v) {
			out[name] = &v
		} else {
			out[name] = nil
		}
	}
	put("efficiency", s.Efficiency)
	put("fast_utilization", s.FastUtilization)
	put("loss_avoidance", s.LossAvoidance)
	put("fairness", s.Fairness)
	put("convergence", s.Convergence)
	put("robustness", s.Robustness)
	put("tcp_friendliness", s.TCPFriendliness)
	put("latency_avoidance", s.LatencyAvoidance)
	return out, nil
}
