package jobd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pareto"
)

// POST /frontier runs the adaptive Pareto-frontier search of
// internal/pareto over an AIMD (α, β) box and streams one NDJSON row
// per exploration round — the live view of the frontier sharpening —
// followed by a done trailer. Unlike /jobs cells, frontier rounds are
// not dispatched to worker shards: each round is already one
// structure-of-arrays engine batch, and the evaluator's session
// inherits the process-wide run store, so a resubmitted spec (or one
// overlapping a previous dense sweep) resolves its cells from the
// store and reports them as cache hits rather than simulations.

// FrontierSpec is the wire format of one exploration job. Zero values
// defer to the pareto package defaults (the paper's Figure 1 box,
// 7-point coarse grid, 3 halving rounds).
type FrontierSpec struct {
	// AlphaRange and BetaRange bound the box as [lo, hi] pairs.
	AlphaRange []float64 `json:"alpha_range,omitempty"`
	BetaRange  []float64 `json:"beta_range,omitempty"`
	// Coarse, Rounds, RefineFactor, BudgetCells, PruneSlack mirror
	// pareto.ExploreConfig (rounds < 0 = coarse pass only).
	Coarse       int     `json:"coarse,omitempty"`
	Rounds       int     `json:"rounds,omitempty"`
	RefineFactor int     `json:"refine_factor,omitempty"`
	BudgetCells  int     `json:"budget_cells,omitempty"`
	PruneSlack   float64 `json:"prune_slack,omitempty"`
	// Link parameters (defaults: 20 Mbps, 42 ms RTT, 0 MSS buffer —
	// the paper's reference dumbbell).
	Mbps      float64 `json:"mbps,omitempty"`
	RTTms     float64 `json:"rtt_ms,omitempty"`
	BufferMSS float64 `json:"buffer_mss,omitempty"`
	// Steps is the simulation horizon (0 = metrics default); TailFrac
	// the tail fraction for score statistics.
	Steps    int     `json:"steps,omitempty"`
	TailFrac float64 `json:"tail_frac,omitempty"`
	// TimeoutMS bounds the whole job (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ParseFrontierSpec decodes and validates one exploration spec.
// Unknown fields are rejected, like ParseSpec.
func ParseFrontierSpec(data []byte) (*FrontierSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp FrontierSpec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("jobd: frontier spec: %w", err)
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

func (sp *FrontierSpec) validate() error {
	for name, r := range map[string][]float64{"alpha_range": sp.AlphaRange, "beta_range": sp.BetaRange} {
		if len(r) == 0 {
			continue
		}
		if len(r) != 2 {
			return fmt.Errorf("jobd: frontier spec: %s wants [lo, hi], got %d values", name, len(r))
		}
		if !finite(r[0]) || !finite(r[1]) || !(r[0] < r[1]) {
			return fmt.Errorf("jobd: frontier spec: %s [%v, %v] must be finite with lo < hi", name, r[0], r[1])
		}
	}
	if sp.Mbps < 0 || !finite(sp.Mbps) {
		return fmt.Errorf("jobd: frontier spec: mbps %v must be finite and non-negative", sp.Mbps)
	}
	if sp.RTTms < 0 || !finite(sp.RTTms) {
		return fmt.Errorf("jobd: frontier spec: rtt_ms %v must be finite and non-negative", sp.RTTms)
	}
	if sp.BufferMSS < 0 || !finite(sp.BufferMSS) {
		return fmt.Errorf("jobd: frontier spec: buffer_mss %v must be finite and non-negative", sp.BufferMSS)
	}
	if sp.Steps < 0 || sp.Steps > maxSteps {
		return fmt.Errorf("jobd: frontier spec: steps %d outside [0, %d]", sp.Steps, maxSteps)
	}
	if sp.TailFrac < 0 || sp.TailFrac >= 1 || !finite(sp.TailFrac) {
		return fmt.Errorf("jobd: frontier spec: tail_frac %v outside [0, 1)", sp.TailFrac)
	}
	if !finite(sp.PruneSlack) {
		return fmt.Errorf("jobd: frontier spec: prune_slack %v must be finite", sp.PruneSlack)
	}
	if sp.BudgetCells < 0 || sp.BudgetCells > maxCellsPerJob {
		return fmt.Errorf("jobd: frontier spec: budget_cells %d outside [0, %d]", sp.BudgetCells, maxCellsPerJob)
	}
	// The finest lattice bounds everything Explore can evaluate; cap its
	// dense size by the same per-job cell limit as /jobs grids. This
	// also rejects nonsensical coarse/rounds/refine_factor values via
	// the pareto package's own validation.
	side, err := sp.exploreConfig(nil).FinestGridSide()
	if err != nil {
		return fmt.Errorf("jobd: frontier spec: %w", err)
	}
	if side*side > maxCellsPerJob {
		return fmt.Errorf("jobd: frontier spec: finest lattice %d×%d exceeds the %d-cell limit", side, side, maxCellsPerJob)
	}
	return nil
}

// exploreConfig maps the wire spec onto a pareto.ExploreConfig.
func (sp *FrontierSpec) exploreConfig(eval pareto.CellEvaluator) pareto.ExploreConfig {
	c := pareto.ExploreConfig{
		Coarse:       sp.Coarse,
		Rounds:       sp.Rounds,
		RefineFactor: sp.RefineFactor,
		BudgetCells:  sp.BudgetCells,
		PruneSlack:   sp.PruneSlack,
		Eval:         eval,
	}
	if len(sp.AlphaRange) == 2 {
		c.AlphaRange = [2]float64{sp.AlphaRange[0], sp.AlphaRange[1]}
	}
	if len(sp.BetaRange) == 2 {
		c.BetaRange = [2]float64{sp.BetaRange[0], sp.BetaRange[1]}
	}
	return c
}

// link returns the fluid configuration of the spec's dumbbell,
// defaulting to the paper's 20 Mbps / 42 ms reference link.
func (sp *FrontierSpec) link() fluid.Config {
	mbps, rtt := sp.Mbps, sp.RTTms
	if mbps == 0 {
		mbps = 20
	}
	if rtt == 0 {
		rtt = 42
	}
	return fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(mbps),
		PropDelay: rtt / 2000, // one-way Θ from a round-trip in ms
		Buffer:    sp.BufferMSS,
	}
}

// Timeout returns the whole-job deadline, falling back to def.
func (sp *FrontierSpec) Timeout(def time.Duration) time.Duration {
	if sp.TimeoutMS > 0 {
		return time.Duration(sp.TimeoutMS) * time.Millisecond
	}
	return def
}

// FrontierPoint is one frontier cell on the wire: parameters and scores
// bit-exact as IEEE-754 hex (the same codec as /jobs score rows), plus
// display values with non-finite scores mapped to null.
type FrontierPoint struct {
	Alpha            float64  `json:"alpha"`
	Beta             float64  `json:"beta"`
	AlphaBits        string   `json:"alpha_bits"`
	BetaBits         string   `json:"beta_bits"`
	EfficiencyBits   string   `json:"eff"`
	FriendlinessBits string   `json:"tcpf"`
	Efficiency       *float64 `json:"efficiency"`
	Friendliness     *float64 `json:"tcp_friendliness"`
}

func frontierPoints(pts []pareto.ExploredPoint) []FrontierPoint {
	out := make([]FrontierPoint, len(pts))
	for i, p := range pts {
		fp := FrontierPoint{
			Alpha:            p.Alpha,
			Beta:             p.Beta,
			AlphaBits:        hexBits(p.Alpha),
			BetaBits:         hexBits(p.Beta),
			EfficiencyBits:   hexBits(p.Coords[0]),
			FriendlinessBits: hexBits(p.Coords[1]),
		}
		if eff := p.Coords[0]; finite(eff) {
			fp.Efficiency = &eff
		}
		if fr := p.Coords[1]; finite(fr) {
			fp.Friendliness = &fr
		}
		out[i] = fp
	}
	return out
}

// FrontierRound is one streamed NDJSON line: the round's lattice
// spacing, its cell accounting, and the frontier as of that round.
type FrontierRound struct {
	Round        int             `json:"round"`
	SpacingAlpha float64         `json:"spacing_alpha"`
	SpacingBeta  float64         `json:"spacing_beta"`
	Evaluated    int             `json:"evaluated"`
	Simulated    int             `json:"simulated"`
	CacheHits    int             `json:"cache_hits"`
	Pruned       int             `json:"pruned"`
	Deferred     int             `json:"deferred"`
	Frontier     []FrontierPoint `json:"frontier"`
}

// FrontierSummary is the job's trailer line. A resubmitted spec against
// a persistent store reports CellsSimulated == 0 — the externally
// checkable form of "exploration is incremental over the run store".
type FrontierSummary struct {
	Done           bool   `json:"done"`
	CellsEvaluated int    `json:"cells_evaluated"`
	CellsSimulated int    `json:"cells_simulated"`
	CacheHits      int    `json:"cache_hits"`
	CellsPruned    int    `json:"cells_pruned"`
	FrontierPoints int    `json:"frontier_points"`
	Rounds         int    `json:"rounds"`
	Err            string `json:"error,omitempty"`
	ElapsedMS      int64  `json:"elapsed_ms"`
}

func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST a frontier spec")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp, err := ParseFrontierSpec(body)
	if err != nil {
		jobsRejected.Inc()
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), sp.Timeout(s.cfg.JobTimeout))
	defer cancel()
	ctx, span := obs.StartSpan(ctx, "jobd.frontier")
	defer span.End()

	emit := ndjsonEmitter(w)
	start := time.Now()

	// A fresh session per job inherits the process default store
	// (metrics.SetDefaultStore, wired by the -store flag in axiomd), so
	// warm cells dedupe across jobs and across daemon restarts.
	opt := metrics.Options{Steps: sp.Steps, TailFrac: sp.TailFrac, Workers: s.cfg.Workers, Session: metrics.NewSession()}
	cfg := sp.exploreConfig(pareto.AIMDEvaluator(sp.link(), opt))
	cfg.OnRound = func(snap pareto.RoundSnapshot) {
		emit(FrontierRound{
			Round:        snap.Round,
			SpacingAlpha: snap.SpacingAlpha,
			SpacingBeta:  snap.SpacingBeta,
			Evaluated:    snap.Evaluated,
			Simulated:    snap.Simulated,
			CacheHits:    snap.CacheHits,
			Pruned:       snap.Pruned,
			Deferred:     snap.Deferred,
			Frontier:     frontierPoints(snap.Frontier),
		})
	}

	res, err := pareto.Explore(ctx, cfg)
	sum := FrontierSummary{ElapsedMS: time.Since(start).Milliseconds()}
	if err != nil {
		sum.Err = err.Error()
		jobsFailed.Inc()
	} else {
		sum.Done = true
		sum.CellsEvaluated = res.Stats.CellsEvaluated
		sum.CellsSimulated = res.Stats.CellsSimulated
		sum.CacheHits = res.Stats.CacheHits
		sum.CellsPruned = res.Stats.CellsPruned
		sum.FrontierPoints = len(res.Frontier)
		sum.Rounds = res.Stats.Rounds
		jobsCompleted.Inc()
		span.SetDetail(fmt.Sprintf("%d cells, %d simulated, %d frontier points",
			sum.CellsEvaluated, sum.CellsSimulated, sum.FrontierPoints))
	}
	emit(sum)
	jobDuration.Observe(time.Since(start))
}
