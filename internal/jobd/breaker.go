package jobd

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed   breakerState = iota // store healthy, all ops flow
	breakerOpen                         // store failing, ops skipped
	breakerHalfOpen                     // cooldown elapsed, one probe allowed
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker guards the persistent run store. The store is an
// optimization, never a correctness dependency — every cell can be
// recomputed — so when Put starts failing repeatedly (disk full,
// directory yanked, NFS wedged) the daemon must not let every cell pay
// a failing I/O round-trip. After threshold consecutive failures the
// breaker opens and the server degrades to cache-only serving: cells
// are still computed and memory-cached, the disk tier is skipped. After
// cooldown one probe op is allowed through (half-open); success closes
// the breaker, failure re-opens it for another cooldown.
//
// now is injectable so tests drive the cooldown clock directly.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allowGet reports whether a store read may proceed. Reads cannot fail
// — the store signals corruption as a miss — so they never consume the
// half-open probe slot: they flow except while the breaker is hard open
// inside its cooldown window.
func (b *breaker) allowGet() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen || b.now().Sub(b.openedAt) >= b.cooldown
}

// allowPut reports whether a store write may proceed right now. In the
// open state it returns false until the cooldown has elapsed, then lets
// exactly one caller through as the half-open probe.
func (b *breaker) allowPut() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		if obs.Enabled() {
			breakerProbes.Inc()
			obs.NoteEvent("breaker", "jobd.breaker", "half-open probe")
		}
		return true
	default: // half-open: a probe is already in flight
		return false
	}
}

// report feeds an op outcome back. Failures in closed state count
// toward the trip threshold; any failure in half-open re-opens
// immediately; success resets everything.
func (b *breaker) report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != breakerClosed && obs.Enabled() {
			obs.NoteEvent("breaker", "jobd.breaker", "closed after successful probe")
		}
		b.state = breakerClosed
		b.failures = 0
		return
	}
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		// Late failure from an op admitted before the trip; stays open.
	}
}

// trip moves to open. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	if obs.Enabled() {
		breakerTrips.Inc()
		obs.NoteEvent("breaker", "jobd.breaker", "opened: store degraded to cache-only")
	}
}

func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
