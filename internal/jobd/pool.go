package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/retry"
)

// task is one dispatchable cell attempt. done is buffered so a worker
// can always deliver, even after the submitter abandoned the task on a
// job deadline.
type task struct {
	cell     Cell
	attempt  int
	timeout  time.Duration
	requeues int
	done     chan taskResult
}

type taskResult struct {
	scores ScoreBits
	err    error
}

// Sentinel failures the cell retry loop treats as transient: the cell
// itself is fine, the execution vehicle failed.
var (
	errCellTimeout  = errors.New("jobd: cell deadline exceeded")
	errShardCrashed = errors.New("jobd: worker shard crashed")
)

// maxRequeues bounds how many times a crashing shard may silently hand
// one task to a sibling before the failure surfaces to the retry loop —
// a task that kills every shard it touches must not ping-pong forever.
const maxRequeues = 3

// pool runs cells. With shards == 0 it is a fixed set of in-process
// goroutines; with shards > 0 each shard is a child worker process
// (this binary re-exec'd with WorkerEnv set) speaking NDJSON over
// stdin/stdout. Child shards are the crash-isolation boundary: a cell
// that segfaults, a kill -9 from the operator, or an OOM kill takes
// down one shard, whose in-flight task is requeued to a sibling while
// the supervisor respawns the dead child under a backoff budget. If
// every shard exhausts its budget the pool degrades to in-process
// serving rather than wedging the daemon.
type pool struct {
	tasks   chan *task
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	respawn retry.Policy
	seq     atomic.Int64
	alive   atomic.Int64
	shards  int

	hold *holdSpec        // in-process chaos hook (child shards parse it themselves)
	sess *metrics.Session // shared by in-process workers; storeless, memory dedup only

	inprocOnce sync.Once
	mu         sync.Mutex
	children   map[int]*childProc
}

func newPool(shards, workers int, respawn retry.Policy) *pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pool{
		tasks:    make(chan *task),
		ctx:      ctx,
		cancel:   cancel,
		respawn:  respawn,
		shards:   shards,
		hold:     parseHold(os.Getenv(holdEnv)),
		sess:     metrics.NewSession(),
		children: make(map[int]*childProc),
	}
	// The pool's session is deliberately storeless (like the worker
	// processes'): every persistent-store interaction goes through the
	// server's breaker-gated layer, so a failing disk has exactly one
	// choke point.
	p.sess.SetStore(nil)
	if shards <= 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		p.startInproc(workers)
		return p
	}
	p.alive.Store(int64(shards))
	shardsAlive.Set(float64(shards))
	for i := 0; i < shards; i++ {
		p.wg.Add(1)
		go p.shardLoop(i)
	}
	return p
}

// close stops serving, kills any child shards, and waits for the
// supervisor goroutines to drain.
func (p *pool) close() {
	p.cancel()
	p.mu.Lock()
	for _, c := range p.children {
		if c != nil {
			c.kill()
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *pool) aliveShards() int { return int(p.alive.Load()) }

// pids returns the live child-shard process IDs (empty in-process).
func (p *pool) pids() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for _, c := range p.children {
		if c != nil && c.cmd.Process != nil {
			out = append(out, c.cmd.Process.Pid)
		}
	}
	return out
}

// ---- in-process serving ----

func (p *pool) startInproc(workers int) {
	p.alive.Store(int64(workers))
	shardsAlive.Set(float64(workers))
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.ctx.Done():
					return
				case t := <-p.tasks:
					t.done <- p.inprocRun(t)
				}
			}
		}()
	}
}

// inprocRun computes one cell on this process, honoring the per-cell
// deadline. metrics.Characterize has no cancellation point, so a
// timed-out computation is abandoned rather than stopped: it finishes
// in the background and its send lands in the task's buffer, unread.
// That trades a bounded amount of wasted CPU for never blocking a job.
func (p *pool) inprocRun(t *task) taskResult {
	ch := make(chan taskResult, 1)
	go func() {
		p.hold.maybeStall(t.cell.Index, t.attempt+t.requeues)
		s, err := computeCell(t.cell, p.sess)
		if err != nil {
			ch <- taskResult{err: err}
			return
		}
		ch <- taskResult{scores: EncodeScores(s)}
	}()
	if t.timeout <= 0 {
		return <-ch
	}
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r
	case <-timer.C:
		return taskResult{err: errCellTimeout}
	}
}

// ---- child-process shards ----

// shardLoop is shard id's supervisor: spawn a worker child, feed it
// tasks until it dies, respawn under the backoff budget. A child that
// completed at least one task before dying resets the budget — only
// back-to-back failures with no useful work in between count toward
// giving up on the slot.
func (p *pool) shardLoop(id int) {
	defer p.wg.Done()
	bo := p.respawn.Start(uint64(id) + 1)
	for {
		if p.ctx.Err() != nil {
			p.shardGone(id, false)
			return
		}
		child, err := p.spawnChild()
		if err == nil {
			shardsSpawned.Inc()
			p.setChild(id, child)
			p.serveChild(child)
			p.setChild(id, nil)
			child.kill()
			if p.ctx.Err() != nil {
				p.shardGone(id, false)
				return
			}
			shardsCrashed.Inc()
			if obs.Enabled() {
				obs.NoteEvent("shard", "jobd.shard.crash", fmt.Sprintf("shard %d died after %d tasks", id, child.served))
			}
			if child.served > 0 {
				bo = p.respawn.Start(uint64(id) + 1)
			}
		}
		if ok, _ := bo.Sleep(p.ctx); !ok {
			if p.ctx.Err() == nil {
				p.shardGone(id, true)
			} else {
				p.shardGone(id, false)
			}
			return
		}
	}
}

// shardGone retires shard id. When the last shard exhausts its respawn
// budget while the pool is still serving, tasks would otherwise sit in
// the queue forever — degrade to in-process workers instead.
func (p *pool) shardGone(id int, exhausted bool) {
	left := p.alive.Add(-1)
	shardsAlive.Set(float64(left))
	if !exhausted {
		return
	}
	shardsExhausted.Inc()
	if obs.Enabled() {
		obs.NoteEvent("shard", "jobd.shard.exhausted", fmt.Sprintf("shard %d respawn budget exhausted", id))
	}
	if left == 0 && p.ctx.Err() == nil {
		p.inprocOnce.Do(func() {
			if obs.Enabled() {
				obs.NoteEvent("shard", "jobd.pool.degraded", "all shards dead; serving in-process")
			}
			p.startInproc(runtime.GOMAXPROCS(0))
		})
	}
}

func (p *pool) setChild(id int, c *childProc) {
	p.mu.Lock()
	p.children[id] = c
	p.mu.Unlock()
}

// serveChild pumps tasks into one live child until the child dies or
// the pool closes. A task whose child crashed under it is requeued to a
// sibling shard (bounded by maxRequeues); a task that timed out is
// answered directly — the deadline already makes it this attempt's
// outcome — and the wedged child is killed either way.
func (p *pool) serveChild(c *childProc) {
	for {
		select {
		case <-p.ctx.Done():
			return
		case _, ok := <-c.result:
			// Nothing is in flight, so any reply is stale; a closed
			// channel means the child died while idle (operator kill,
			// OOM) and the supervisor should respawn it now, not on the
			// next dispatch.
			if !ok {
				return
			}
		case t := <-p.tasks:
			res, childOK := c.do(t, p.seq.Add(1))
			if !childOK && errors.Is(res.err, errShardCrashed) && t.requeues < maxRequeues {
				t.requeues++
				go p.requeue(t)
				return
			}
			t.done <- res
			if !childOK {
				return
			}
		}
	}
}

func (p *pool) requeue(t *task) {
	select {
	case p.tasks <- t:
	case <-p.ctx.Done():
		t.done <- taskResult{err: errShardCrashed}
	}
}

// childProc is one live worker process plus its reply stream. results
// is closed by the reader goroutine when the child's stdout ends —
// that close is how every code path learns the child is gone.
type childProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	enc    *json.Encoder
	result chan wireResult
	served int
}

func (p *pool) spawnChild() (*childProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("jobd: spawn shard: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("jobd: spawn shard: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("jobd: spawn shard: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("jobd: spawn shard: %w", err)
	}
	c := &childProc{cmd: cmd, stdin: stdin, enc: json.NewEncoder(stdin), result: make(chan wireResult, 1)}
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var r wireResult
			if dec.Decode(&r) != nil {
				break
			}
			c.result <- r
		}
		close(c.result)
		cmd.Wait() //nolint:errcheck // reaped for the exit status only
	}()
	return c, nil
}

// do runs one task on the child. The bool reports whether the child is
// still usable afterwards: false means it crashed (task may requeue) or
// was killed for blowing the cell deadline (task fails this attempt).
func (c *childProc) do(t *task, id int64) (taskResult, bool) {
	if err := c.enc.Encode(wireTask{ID: id, Attempt: t.attempt + t.requeues, Cell: t.cell}); err != nil {
		c.kill()
		return taskResult{err: errShardCrashed}, false
	}
	var timeout <-chan time.Time
	if t.timeout > 0 {
		timer := time.NewTimer(t.timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		select {
		case r, ok := <-c.result:
			if !ok {
				return taskResult{err: errShardCrashed}, false
			}
			if r.ID != id {
				continue // stale reply from a task a prior deadline abandoned
			}
			c.served++
			switch {
			case r.Err != "":
				return taskResult{err: errors.New(r.Err)}, true
			case r.Scores == nil:
				return taskResult{err: errors.New("jobd: worker returned no scores")}, true
			default:
				return taskResult{scores: *r.Scores}, true
			}
		case <-timeout:
			c.kill()
			return taskResult{err: errCellTimeout}, false
		}
	}
}

func (c *childProc) kill() {
	c.stdin.Close()
	if c.cmd.Process != nil {
		c.cmd.Process.Kill() //nolint:errcheck // already-dead children are fine
	}
}
