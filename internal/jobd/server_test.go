package jobd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeStore is an in-memory Store with failure injection: flip fail to
// make every Put error (the breaker's trip signal), corrupt entries to
// model wrong-schema payloads the checksum layer cannot catch.
type fakeStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	fail bool
	gets int
	puts int
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string][]byte)} }

func (f *fakeStore) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	v, ok := f.m[key]
	return v, ok
}

func (f *fakeStore) Put(key string, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.fail {
		return errors.New("fakeStore: injected write failure")
	}
	f.m[key] = append([]byte(nil), payload...)
	return nil
}

func (f *fakeStore) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *fakeStore) corruptAll() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.m {
		f.m[k] = []byte(`{"eff":"not-hex"}`)
	}
	return len(f.m)
}

// testSpec is a small fast grid: 2 protocols × 2 bandwidths, 2 senders,
// a short horizon. ~8k simulated steps per cell — milliseconds.
const testSpec = `{"protocols":["reno","cubic"],"senders":2,` +
	`"link":{"mbps":[10,20],"rtt_ms":[42],"buffer_mss":[50]},"steps":120}`

const testSpecCells = 4

type jobOut struct {
	status int
	retry  string
	rows   map[int]ResultRow
	sum    Summary
}

func submit(t *testing.T, url, spec string) jobOut {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := jobOut{status: resp.StatusCode, retry: resp.Header.Get("Retry-After"), rows: make(map[int]ResultRow)}
	if resp.StatusCode != http.StatusOK {
		return out
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &out.sum); err != nil {
				t.Fatalf("trailer: %v in %s", err, line)
			}
			continue
		}
		var row ResultRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("row: %v in %s", err, line)
		}
		out.rows[row.Cell] = row
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func requireComplete(t *testing.T, out jobOut, cells int) {
	t.Helper()
	if out.status != http.StatusOK {
		t.Fatalf("job status %d", out.status)
	}
	if !out.sum.Done || out.sum.Cells != cells {
		t.Fatalf("bad trailer: %+v", out.sum)
	}
	if out.sum.Failed != 0 {
		t.Fatalf("%d cells failed: %+v", out.sum.Failed, out.sum)
	}
	if len(out.rows) != cells {
		t.Fatalf("streamed %d rows, want %d", len(out.rows), cells)
	}
	for i, row := range out.rows {
		if row.Scores == nil || row.Err != "" {
			t.Fatalf("cell %d incomplete: %+v", i, row)
		}
	}
}

func requireSameScores(t *testing.T, a, b jobOut) {
	t.Helper()
	if len(a.rows) != len(b.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.rows), len(b.rows))
	}
	for i, ra := range a.rows {
		rb, ok := b.rows[i]
		if !ok {
			t.Fatalf("cell %d missing from second run", i)
		}
		if *ra.Scores != *rb.Scores {
			t.Fatalf("cell %d scores differ:\n  %+v\n  %+v", i, *ra.Scores, *rb.Scores)
		}
	}
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Tool = "jobd-test"
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs.URL
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // status-only checks pass an empty body
	return resp.StatusCode, m
}

func TestJobComputesStreamsAndCaches(t *testing.T) {
	st := newFakeStore()
	_, url := startServer(t, Config{Store: st})

	first := submit(t, url, testSpec)
	requireComplete(t, first, testSpecCells)
	if first.sum.Simulated != testSpecCells {
		t.Fatalf("cold run simulated %d, want %d", first.sum.Simulated, testSpecCells)
	}

	second := submit(t, url, testSpec)
	requireComplete(t, second, testSpecCells)
	if second.sum.Simulated != 0 || second.sum.CacheHits != testSpecCells {
		t.Fatalf("warm run: %+v", second.sum)
	}
	requireSameScores(t, first, second)

	// A fresh daemon sharing the store serves from disk, bit-identically.
	_, url2 := startServer(t, Config{Store: st})
	third := submit(t, url2, testSpec)
	requireComplete(t, third, testSpecCells)
	if third.sum.Simulated != 0 {
		t.Fatalf("store-warm run simulated %d cells: %+v", third.sum.Simulated, third.sum)
	}
	requireSameScores(t, first, third)
}

func TestBadSpecsRejected(t *testing.T) {
	_, url := startServer(t, Config{})
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(`{"protocols":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec got %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /jobs got %d, want 405", resp.StatusCode)
	}
}

func TestStoreCorruptionRecomputesBitIdentically(t *testing.T) {
	st := newFakeStore()
	_, url := startServer(t, Config{Store: st})
	clean := submit(t, url, testSpec)
	requireComplete(t, clean, testSpecCells)

	if n := st.corruptAll(); n == 0 {
		t.Fatal("nothing stored to corrupt")
	}
	// A fresh server (empty memo) must see the corruption as misses,
	// recompute every cell, and land on the same bits.
	_, url2 := startServer(t, Config{Store: st})
	after := submit(t, url2, testSpec)
	requireComplete(t, after, testSpecCells)
	if after.sum.Simulated != testSpecCells {
		t.Fatalf("corrupted store served %d cached cells: %+v", after.sum.CacheHits, after.sum)
	}
	requireSameScores(t, clean, after)
}

func TestBreakerDegradesToCacheOnlyServing(t *testing.T) {
	st := newFakeStore()
	st.setFail(true)
	s, url := startServer(t, Config{
		Store:            st,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})

	out := submit(t, url, testSpec)
	requireComplete(t, out, testSpecCells)
	if out.sum.Breaker != "open" {
		t.Fatalf("breaker %q after persistent store failures, want open", out.sum.Breaker)
	}
	if s.brk.currentState() != breakerOpen {
		t.Fatal("breaker not open")
	}
	code, health := getJSON(t, url+"/healthz")
	if code != http.StatusOK || health["breaker"] != "open" {
		t.Fatalf("healthz during degrade: %d %v", code, health)
	}

	// Cache-only serving: the memo answers resubmissions, and the dead
	// store sees no further traffic at all while the breaker is open.
	st.mu.Lock()
	gets, puts := st.gets, st.puts
	st.mu.Unlock()
	warm := submit(t, url, testSpec)
	requireComplete(t, warm, testSpecCells)
	if warm.sum.CacheHits != testSpecCells || warm.sum.Simulated != 0 {
		t.Fatalf("cache-only resubmit: %+v", warm.sum)
	}
	requireSameScores(t, out, warm)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gets != gets || st.puts != puts {
		t.Fatalf("open breaker let store traffic through: gets %d→%d puts %d→%d", gets, st.gets, puts, st.puts)
	}
}

func TestCellDeadlineExpiryRetriesAndCompletes(t *testing.T) {
	// Baseline server constructed before the hold lands in the env.
	_, base := startServer(t, Config{})
	want := submit(t, base, testSpec)
	requireComplete(t, want, testSpecCells)

	// Cell 0's first attempt stalls 2s; the 150ms cell deadline kills
	// it; the retry (attempt 1) runs clean and the job completes with
	// the same bits as the unperturbed baseline.
	t.Setenv(holdEnv, "0:2000:1")
	_, url := startServer(t, Config{CellTimeout: 150 * time.Millisecond})
	out := submit(t, url, testSpec)
	requireComplete(t, out, testSpecCells)
	if out.sum.Retried == 0 {
		t.Fatalf("deadline never tripped: %+v", out.sum)
	}
	if row := out.rows[0]; row.Attempts < 2 {
		t.Fatalf("held cell completed in %d attempts, want >= 2: %+v", row.Attempts, row)
	}
	requireSameScores(t, want, out)
}

func TestFullQueueShedsWith429(t *testing.T) {
	// One worker, one active job, one queue slot. Every cell stalls
	// 400ms so the first job holds the slot while we probe.
	t.Setenv(holdEnv, "0:400:99")
	_, url := startServer(t, Config{
		Workers:   1,
		MaxActive: 1,
		MaxQueue:  1,
	})

	release := make(chan jobOut, 2)
	go func() { release <- submit(t, url, testSpec) }()
	waitFor(t, func() bool {
		_, h := getJSON(t, url+"/healthz")
		return h["active_jobs"] == float64(1)
	})
	go func() { release <- submit(t, url, testSpec) }()
	waitFor(t, func() bool {
		_, h := getJSON(t, url+"/healthz")
		return h["queue_depth"] == float64(1)
	})

	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow job got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The shed must not have broken the admitted jobs.
	for i := 0; i < 2; i++ {
		requireComplete(t, <-release, testSpecCells)
	}
}

func TestDrainStopsAdmissionKeepsHealth(t *testing.T) {
	s, url := startServer(t, Config{})
	if code, _ := getJSON(t, url+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := getJSON(t, url+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: want 503")
	}
	code, health := getJSON(t, url+"/healthz")
	if code != http.StatusOK || health["draining"] != true {
		t.Fatalf("healthz during drain: %d %v", code, health)
	}
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon admitted a job: %d", resp.StatusCode)
	}
}

func TestDrainWaitsForInflightJobs(t *testing.T) {
	t.Setenv(holdEnv, "0:300:99")
	s, url := startServer(t, Config{Workers: 2})
	done := make(chan jobOut, 1)
	go func() { done <- submit(t, url, testSpec) }()
	waitFor(t, func() bool {
		_, h := getJSON(t, url+"/healthz")
		return h["active_jobs"] == float64(1)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not wait the job out: %v", err)
	}
	out := <-done
	requireComplete(t, out, testSpecCells)
}

func TestChaosScheduleChangesScoresAndKeys(t *testing.T) {
	_, url := startServer(t, Config{})
	plain := submit(t, url, testSpec)
	requireComplete(t, plain, testSpecCells)

	chaotic := strings.TrimSuffix(testSpec, "}") +
		`,"chaos":{"events":[{"kind":"capacity-scale","at":10,"scale":0.5,"duration":40}]},"chaos_seed":7}`
	out := submit(t, url, chaotic)
	requireComplete(t, out, testSpecCells)
	same := 0
	for i, r := range plain.rows {
		if r.Key == out.rows[i].Key {
			t.Fatalf("cell %d: chaos schedule did not change the store key", i)
		}
		if *r.Scores == *out.rows[i].Scores {
			same++
		}
	}
	if same == testSpecCells {
		t.Fatal("capacity chaos left every score untouched")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
