package jobd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runstore"
)

// testFrontierSpec is a small box on a short horizon: a 3×3 coarse pass
// plus one halving round on a 5×5 finest lattice.
const testFrontierSpec = `{"alpha_range":[0.5,2],"beta_range":[0.3,0.8],` +
	`"coarse":3,"rounds":1,"steps":120}`

type frontierOut struct {
	status int
	rounds []FrontierRound
	sum    FrontierSummary
}

func submitFrontier(t *testing.T, url, spec string) frontierOut {
	t.Helper()
	resp, err := http.Post(url+"/frontier", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := frontierOut{status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		return out
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &out.sum); err != nil {
				t.Fatalf("trailer: %v in %s", err, line)
			}
			continue
		}
		var round FrontierRound
		if err := json.Unmarshal(line, &round); err != nil {
			t.Fatalf("round: %v in %s", err, line)
		}
		out.rounds = append(out.rounds, round)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func requireFrontierComplete(t *testing.T, out frontierOut) {
	t.Helper()
	if out.status != http.StatusOK {
		t.Fatalf("frontier status %d", out.status)
	}
	if !out.sum.Done || out.sum.Err != "" {
		t.Fatalf("bad trailer: %+v", out.sum)
	}
	if len(out.rounds) != out.sum.Rounds {
		t.Fatalf("streamed %d rounds, trailer says %d", len(out.rounds), out.sum.Rounds)
	}
	evaluated := 0
	for _, r := range out.rounds {
		evaluated += r.Evaluated
	}
	if evaluated != out.sum.CellsEvaluated {
		t.Fatalf("rounds evaluated %d cells, trailer says %d", evaluated, out.sum.CellsEvaluated)
	}
	if out.sum.FrontierPoints == 0 {
		t.Fatal("empty frontier")
	}
	last := out.rounds[len(out.rounds)-1]
	if len(last.Frontier) != out.sum.FrontierPoints {
		t.Fatalf("last round frontier has %d points, trailer says %d", len(last.Frontier), out.sum.FrontierPoints)
	}
	for _, p := range last.Frontier {
		if p.AlphaBits == "" || p.EfficiencyBits == "" || p.FriendlinessBits == "" {
			t.Fatalf("frontier point missing hex bits: %+v", p)
		}
		if p.Efficiency == nil || p.Friendliness == nil {
			t.Fatalf("frontier point missing display values: %+v", p)
		}
	}
}

func TestFrontierStreamsRoundsAndSummary(t *testing.T) {
	_, url := startServer(t, Config{})
	out := submitFrontier(t, url, testFrontierSpec)
	requireFrontierComplete(t, out)
	// Cold, storeless: every evaluated cell ran a simulation, and the
	// stream carries one row per round (coarse + 1 refinement).
	if out.sum.CellsSimulated != out.sum.CellsEvaluated {
		t.Fatalf("cold run: %+v", out.sum)
	}
	if out.rounds[0].Evaluated != 9 {
		t.Fatalf("coarse pass evaluated %d cells, want 9", out.rounds[0].Evaluated)
	}
	if len(out.rounds) < 2 {
		t.Fatalf("streamed %d rounds, want at least 2", len(out.rounds))
	}
}

func TestFrontierWarmStoreSimulatesZeroCells(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	metrics.SetDefaultStore(st)
	t.Cleanup(func() { metrics.SetDefaultStore(nil) })

	_, url := startServer(t, Config{})
	cold := submitFrontier(t, url, testFrontierSpec)
	requireFrontierComplete(t, cold)
	if cold.sum.CellsSimulated == 0 {
		t.Fatalf("cold run simulated nothing: %+v", cold.sum)
	}

	// A fresh daemon sharing the store explores without simulating: the
	// lattice is bit-reproducible, so every cell's runs resolve from disk.
	_, url2 := startServer(t, Config{})
	warm := submitFrontier(t, url2, testFrontierSpec)
	requireFrontierComplete(t, warm)
	if warm.sum.CellsSimulated != 0 || warm.sum.CacheHits != warm.sum.CellsEvaluated {
		t.Fatalf("warm run: %+v", warm.sum)
	}
	if warm.sum.CellsEvaluated != cold.sum.CellsEvaluated {
		t.Fatalf("warm evaluated %d cells, cold %d", warm.sum.CellsEvaluated, cold.sum.CellsEvaluated)
	}
	a, b := cold.rounds[len(cold.rounds)-1].Frontier, warm.rounds[len(warm.rounds)-1].Frontier
	if len(a) != len(b) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// The display fields are pointers; bit-identity is what the hex
		// fields carry.
		if a[i].AlphaBits != b[i].AlphaBits || a[i].BetaBits != b[i].BetaBits ||
			a[i].EfficiencyBits != b[i].EfficiencyBits || a[i].FriendlinessBits != b[i].FriendlinessBits {
			t.Fatalf("frontier point %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

func TestFrontierBadSpecsRejected(t *testing.T) {
	_, url := startServer(t, Config{})
	for _, spec := range []string{
		`{"alpha_range":[0.5]}`,                   // not a [lo, hi] pair
		`{"alpha_range":[2,0.5]}`,                 // lo >= hi
		`{"coarse":1}`,                            // pareto validation
		`{"rounds":9,"coarse":9}`,                 // finest lattice over the cell limit
		`{"steps":` + "2097152" + `}`,             // steps over limit
		`{"budget_cells":-1}`,                     // negative budget
		`{"protocols":["reno"]}`,                  // unknown field (that's a /jobs spec)
		`not json`,                                //nolint:misspell // malformed body
		`{"alpha_range":[0.5,2],"tail_frac":1.5}`, // tail_frac out of range
		`{"mbps":-1}`,                             // negative bandwidth
	} {
		resp, err := http.Post(url+"/frontier", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s got %d, want 400", spec, resp.StatusCode)
		}
	}
	resp, err := http.Get(url + "/frontier")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /frontier got %d, want 405", resp.StatusCode)
	}
}
