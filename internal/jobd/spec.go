// Package jobd is the characterization-as-a-service core behind
// cmd/axiomd: it turns a POSTed sweep spec (protocol grid × link grid ×
// optional chaos schedule) into a set of deterministic cells, dedupes
// them against the persistent run store, fans the misses out across
// worker shards, and streams per-cell score rows back as NDJSON while
// they land.
//
// The package is built around one invariant the whole repo shares:
// every cell is a pure function of its canonical key. That is what
// makes the robustness machinery safe — a cell can be retried after a
// shard crash, recomputed after a deadline expiry, or served from the
// store on resubmission, and the bytes that come back are identical
// every time.
package jobd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/protocol"
)

// Limits that bound what one POST can ask for, so a fat-fingered grid
// cannot wedge the daemon. Generous relative to the paper's tables
// (Table 1 is 15 protocols × 1 link).
const (
	maxCellsPerJob = 4096
	maxSenders     = 64
	maxSteps       = 1 << 20
)

// Spec is the wire format of one characterization job: the cross
// product of protocols and link parameters, each cell scored with
// metrics.Characterize under the optional chaos schedule.
type Spec struct {
	// Protocols are protocol spec strings as accepted by every CLI
	// ("reno", "aimd:1,0.5", "cubic:0.4,0.8", ...).
	Protocols []string `json:"protocols"`
	// Senders is the homogeneous sender count per cell (≥ 2: the
	// fairness metric is undefined for a single sender).
	Senders int `json:"senders"`
	// Link is the link-parameter grid; cells are the cross product of
	// its axes with Protocols.
	Link LinkGrid `json:"link"`
	// Steps is the simulation horizon in RTT steps (0 = the metrics
	// package default, 4000).
	Steps int `json:"steps,omitempty"`
	// TailFrac is the tail fraction for the score statistics (0 = the
	// metrics package default).
	TailFrac float64 `json:"tail_frac,omitempty"`
	// Chaos, when present, is a fault-injection schedule (the same JSON
	// accepted by -chaos files) applied to every run of every cell.
	Chaos json.RawMessage `json:"chaos,omitempty"`
	// ChaosSeed seeds the schedule's randomized components.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// CellTimeoutMS bounds each cell's wall time (0 = server default).
	// An expired cell is retried on another shard before it is failed.
	CellTimeoutMS int `json:"cell_timeout_ms,omitempty"`
	// TimeoutMS bounds the whole job (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// LinkGrid is the link half of the grid: every combination of the three
// axes becomes one link configuration.
type LinkGrid struct {
	Mbps      []float64 `json:"mbps"`
	RTTms     []float64 `json:"rtt_ms"`
	BufferMSS []float64 `json:"buffer_mss"`
}

// ParseSpec decodes and validates one job spec. Unknown fields are
// rejected so client typos fail loudly instead of silently running the
// default grid.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("jobd: spec: %w", err)
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

func (sp *Spec) validate() error {
	if len(sp.Protocols) == 0 {
		return fmt.Errorf("jobd: spec: no protocols")
	}
	if sp.Senders < 2 {
		return fmt.Errorf("jobd: spec: senders must be >= 2 (fairness is undefined below that), got %d", sp.Senders)
	}
	if sp.Senders > maxSenders {
		return fmt.Errorf("jobd: spec: senders %d exceeds the limit %d", sp.Senders, maxSenders)
	}
	if sp.Steps < 0 || sp.Steps > maxSteps {
		return fmt.Errorf("jobd: spec: steps %d outside [0, %d]", sp.Steps, maxSteps)
	}
	if sp.TailFrac < 0 || sp.TailFrac >= 1 || !finite(sp.TailFrac) {
		return fmt.Errorf("jobd: spec: tail_frac %v outside [0, 1)", sp.TailFrac)
	}
	if len(sp.Link.Mbps) == 0 || len(sp.Link.RTTms) == 0 || len(sp.Link.BufferMSS) == 0 {
		return fmt.Errorf("jobd: spec: link grid needs at least one mbps, rtt_ms, and buffer_mss value")
	}
	for _, v := range sp.Link.Mbps {
		if !finite(v) || v <= 0 {
			return fmt.Errorf("jobd: spec: mbps %v must be finite and positive", v)
		}
	}
	for _, v := range sp.Link.RTTms {
		if !finite(v) || v <= 0 {
			return fmt.Errorf("jobd: spec: rtt_ms %v must be finite and positive", v)
		}
	}
	for _, v := range sp.Link.BufferMSS {
		if !finite(v) || v < 0 {
			return fmt.Errorf("jobd: spec: buffer_mss %v must be finite and non-negative", v)
		}
	}
	n := len(sp.Protocols) * len(sp.Link.Mbps) * len(sp.Link.RTTms) * len(sp.Link.BufferMSS)
	if n > maxCellsPerJob {
		return fmt.Errorf("jobd: spec: grid of %d cells exceeds the %d-cell limit", n, maxCellsPerJob)
	}
	for _, ps := range sp.Protocols {
		if _, err := protocol.Parse(ps); err != nil {
			return fmt.Errorf("jobd: spec: %w", err)
		}
	}
	if len(sp.Chaos) > 0 {
		if _, err := chaos.Parse(sp.Chaos); err != nil {
			return fmt.Errorf("jobd: spec: %w", err)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// CellTimeout returns the per-cell deadline, falling back to def.
func (sp *Spec) CellTimeout(def time.Duration) time.Duration {
	if sp.CellTimeoutMS > 0 {
		return time.Duration(sp.CellTimeoutMS) * time.Millisecond
	}
	return def
}

// Timeout returns the whole-job deadline, falling back to def.
func (sp *Spec) Timeout(def time.Duration) time.Duration {
	if sp.TimeoutMS > 0 {
		return time.Duration(sp.TimeoutMS) * time.Millisecond
	}
	return def
}

// Cell is one point of the expanded grid: a fully-specified, seedable,
// retryable unit of work. Cells travel to worker shards as JSON, so
// every field round-trips exactly (encoding/json renders float64 with
// the shortest representation that parses back to the same bits).
type Cell struct {
	Index     int             `json:"index"`
	Proto     string          `json:"proto"`
	Senders   int             `json:"senders"`
	Mbps      float64         `json:"mbps"`
	RTTms     float64         `json:"rtt_ms"`
	BufferMSS float64         `json:"buffer_mss"`
	Steps     int             `json:"steps,omitempty"`
	TailFrac  float64         `json:"tail_frac,omitempty"`
	Chaos     json.RawMessage `json:"chaos,omitempty"`
	ChaosSeed uint64          `json:"chaos_seed,omitempty"`
}

// Expand enumerates the grid in deterministic order: protocols
// outermost, then mbps, rtt, buffer. The order is part of the contract
// — cell indexes are stable across resubmissions of the same spec.
func (sp *Spec) Expand() []Cell {
	cells := make([]Cell, 0, len(sp.Protocols)*len(sp.Link.Mbps)*len(sp.Link.RTTms)*len(sp.Link.BufferMSS))
	i := 0
	for _, ps := range sp.Protocols {
		for _, mbps := range sp.Link.Mbps {
			for _, rtt := range sp.Link.RTTms {
				for _, buf := range sp.Link.BufferMSS {
					cells = append(cells, Cell{
						Index:     i,
						Proto:     ps,
						Senders:   sp.Senders,
						Mbps:      mbps,
						RTTms:     rtt,
						BufferMSS: buf,
						Steps:     sp.Steps,
						TailFrac:  sp.TailFrac,
						Chaos:     sp.Chaos,
						ChaosSeed: sp.ChaosSeed,
					})
					i++
				}
			}
		}
	}
	return cells
}

// Key is the cell's canonical identity: the protocol's Fingerprint
// (semantic identity — "reno" and "aimd:1,0.5" collide on purpose),
// every numeric knob as IEEE-754 hex bits, and a digest of the chaos
// schedule. It is the run-store key cells dedupe and resume through, so
// two jobs that phrase the same cell differently share one simulation.
func (c *Cell) Key() (string, error) {
	p, err := protocol.Parse(c.Proto)
	if err != nil {
		return "", err
	}
	fp, ok := p.(protocol.Fingerprinter)
	if !ok {
		return "", fmt.Errorf("jobd: protocol %q has no fingerprint", c.Proto)
	}
	ch := "none"
	if len(c.Chaos) > 0 {
		var compact bytes.Buffer
		if err := json.Compact(&compact, c.Chaos); err != nil {
			return "", fmt.Errorf("jobd: chaos: %w", err)
		}
		sum := sha256.Sum256(compact.Bytes())
		ch = hex.EncodeToString(sum[:8])
	}
	return fmt.Sprintf("jobcell|proto=%s|n=%d|mbps=%s|rtt=%s|buf=%s|steps=%d|tail=%s|chaos=%s|cseed=%x",
		fp.Fingerprint(), c.Senders,
		hexBits(c.Mbps), hexBits(c.RTTms), hexBits(c.BufferMSS),
		c.Steps, hexBits(c.TailFrac), ch, c.ChaosSeed), nil
}

func hexBits(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}
