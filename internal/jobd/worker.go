package jobd

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
)

// WorkerEnv marks a process as a worker shard. The daemon (and the test
// binary) re-exec themselves with it set; main checks it before flag
// parsing and hands stdin/stdout to WorkerMain.
const WorkerEnv = "REPRO_JOBD_WORKER"

// holdEnv is the chaos hook for deadline tests: "index:ms:attempts"
// makes a worker stall ms milliseconds before computing the named cell
// on its first `attempts` dispatches. Attempts after that run at full
// speed, so a per-cell deadline expiry is followed by a clean retry and
// the job still completes with bit-identical scores.
const holdEnv = "REPRO_JOBD_HOLD"

type holdSpec struct {
	index    int
	delay    time.Duration
	attempts int
}

func parseHold(s string) *holdSpec {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil
	}
	idx, err1 := strconv.Atoi(parts[0])
	ms, err2 := strconv.Atoi(parts[1])
	n, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil
	}
	return &holdSpec{index: idx, delay: time.Duration(ms) * time.Millisecond, attempts: n}
}

func (h *holdSpec) maybeStall(index, attempt int) {
	if h != nil && index == h.index && attempt < h.attempts {
		time.Sleep(h.delay)
	}
}

// wireTask and wireResult are the shard protocol: the parent writes one
// task line to the child's stdin, the child answers with exactly one
// result line on stdout. IDs let the parent discard stale answers from
// a child it already gave up on.
type wireTask struct {
	ID      int64 `json:"id"`
	Attempt int   `json:"attempt"`
	Cell    Cell  `json:"cell"`
}

type wireResult struct {
	ID     int64      `json:"id"`
	Scores *ScoreBits `json:"scores,omitempty"`
	Err    string     `json:"err,omitempty"`
}

// WorkerMain is the worker-shard entry point: an NDJSON request/reply
// loop over in/out that computes one cell per task. It returns on EOF
// (parent closed stdin — a normal shutdown) and on any encode error
// (parent died mid-stream). Workers are deliberately storeless: the
// parent owns the persistent tier and dedupes before dispatching, so a
// worker is a pure deterministic cell evaluator whose only state is its
// in-memory run session.
func WorkerMain(in io.Reader, out io.Writer) error {
	hold := parseHold(os.Getenv(holdEnv))
	sess := metrics.NewSession()
	sess.SetStore(nil)
	dec := json.NewDecoder(in)
	enc := json.NewEncoder(out)
	for {
		var t wireTask
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("jobd: worker decode: %w", err)
		}
		hold.maybeStall(t.Cell.Index, t.Attempt)
		res := wireResult{ID: t.ID}
		if s, err := computeCell(t.Cell, sess); err != nil {
			res.Err = err.Error()
		} else {
			sb := EncodeScores(s)
			res.Scores = &sb
		}
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("jobd: worker encode: %w", err)
		}
	}
}

// computeCell scores one cell: build the link config, parse the
// protocol, run the eight-metric characterization. Everything is
// deterministic in the cell's fields, which is what lets crashed or
// timed-out cells retry anywhere and reproduce the same bits.
func computeCell(c Cell, sess *metrics.Session) (metrics.Scores, error) {
	p, err := protocol.Parse(c.Proto)
	if err != nil {
		return metrics.Scores{}, err
	}
	var sched *chaos.Schedule
	if len(c.Chaos) > 0 {
		if sched, err = chaos.Parse(c.Chaos); err != nil {
			return metrics.Scores{}, err
		}
	}
	cfg := fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(c.Mbps),
		PropDelay: c.RTTms / 2000, // one-way Θ from a round-trip in ms
		Buffer:    c.BufferMSS,
	}
	return metrics.Characterize(cfg, p, c.Senders, metrics.Options{
		Steps:     c.Steps,
		TailFrac:  c.TailFrac,
		Chaos:     sched,
		ChaosSeed: c.ChaosSeed,
		Session:   sess,
	})
}
