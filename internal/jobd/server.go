package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// Store is the persistent tier the server dedupes cells through — the
// run store in internal/runstore satisfies it, and tests substitute
// failure-injecting fakes. Get signals corruption as a miss; Put is the
// only operation with an error channel, so it is what feeds the
// circuit breaker.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// Config tunes one daemon instance. Zero values select production-ish
// defaults; tests dial everything down.
type Config struct {
	// Tool names the process in observability output (default axiomd).
	Tool string
	// Store is the persistent cell-result tier (nil = memory only).
	Store Store
	// Shards > 0 runs cells in that many child worker processes; 0 runs
	// them on Workers in-process goroutines (Workers 0 = GOMAXPROCS).
	Shards  int
	Workers int
	// MaxQueue bounds jobs admitted but not yet streaming (default 16).
	// Beyond it the server sheds load with 429 + Retry-After.
	MaxQueue int
	// MaxActive bounds concurrently executing jobs (default 2).
	MaxActive int
	// CellTimeout and JobTimeout are the default deadlines; specs may
	// override per job (defaults 2m and 30m).
	CellTimeout time.Duration
	JobTimeout  time.Duration
	// CellRetry paces re-dispatch of cells whose attempt died on a
	// transient failure (shard crash, deadline). Zero = 3 attempts with
	// the package defaults.
	CellRetry retry.Policy
	// Respawn is the budget for restarting a crashed shard (zero = 6
	// attempts, exponential from 5ms).
	Respawn retry.Policy
	// BreakerThreshold consecutive store-write failures trip the
	// breaker; BreakerCooldown is how long it stays open before a
	// half-open probe (defaults 3 and 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// Server is one axiomd instance: HTTP surface, admission control,
// breaker-gated store, and the shard pool.
type Server struct {
	cfg   Config
	pool  *pool
	brk   *breaker
	mux   *http.ServeMux
	slots chan struct{}

	queued   atomic.Int64
	active   atomic.Int64
	draining atomic.Bool
	admitMu  sync.Mutex
	jobs     sync.WaitGroup

	// memo is the in-memory result tier (key → ScoreBits). It is what
	// "cache-only serving" degrades to when the breaker is open, and a
	// fast path in front of the disk store the rest of the time.
	memo sync.Map
}

// New builds a server and starts its shard pool. Close (or Drain) must
// be called to reap child shards.
func New(cfg Config) *Server {
	if cfg.Tool == "" {
		cfg.Tool = "axiomd"
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.CellTimeout <= 0 {
		cfg.CellTimeout = 2 * time.Minute
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 30 * time.Minute
	}
	if cfg.CellRetry.Attempts <= 0 {
		cfg.CellRetry.Attempts = 3
	}
	if cfg.Respawn.Attempts <= 0 {
		cfg.Respawn.Attempts = 6
	}
	s := &Server{
		cfg:   cfg,
		pool:  newPool(cfg.Shards, cfg.Workers, cfg.Respawn),
		brk:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		slots: make(chan struct{}, cfg.MaxActive),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/frontier", s.handleFrontier)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	obs.AttachExposition(mux, cfg.Tool)
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP surface: /jobs, /healthz, /readyz,
// plus the obs exposition endpoints (/metrics, /snapshot, /trace).
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new jobs, waits for in-flight ones to finish
// streaming (bounded by ctx), then stops the shard pool. Because every
// completed cell was checkpointed to the store under its canonical key,
// a drain that runs out of ctx loses no finished work: resubmitting the
// same spec resumes from the store bit-identically.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	if obs.Enabled() {
		obs.NoteEvent("drain", "jobd.drain", "stopped admitting; waiting for in-flight jobs")
	}
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.pool.close()
	return err
}

// Close is an immediate shutdown: no grace for in-flight jobs.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // immediate close ignores the grace error
}

// ---- HTTP handlers ----

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // client went away
}

// admit runs the admission dance shared by every job-shaped endpoint:
// refuse while draining, shed with 429 + Retry-After past the queue
// bound, then wait for an execution slot (the client may hang up while
// queued). On success the caller must invoke release when the job
// finishes streaming; on failure the response has been written.
//
// The queue bound counts jobs accepted but not yet streaming; past it
// the honest answer is "try later", not an ever-growing pile of
// goroutines all holding client connections.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.admitMu.Unlock()
		jobsShed.Inc()
		if obs.Enabled() {
			obs.NoteEvent("shed", "jobd.admission", "queue full")
		}
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "queue full")
		return nil, false
	}
	s.jobs.Add(1)
	s.admitMu.Unlock()
	queueDepth.Set(float64(s.queued.Load()))

	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		s.queued.Add(-1)
		queueDepth.Set(float64(s.queued.Load()))
		s.jobs.Done()
		return nil, false
	}
	s.queued.Add(-1)
	queueDepth.Set(float64(s.queued.Load()))
	jobsAdmitted.Inc()
	jobsActive.Set(float64(s.active.Add(1)))
	return func() {
		<-s.slots
		jobsActive.Set(float64(s.active.Add(-1)))
		s.jobs.Done()
	}, true
}

// ndjsonEmitter switches the response into streaming NDJSON mode and
// returns a concurrency-safe emit function that flushes each row.
func ndjsonEmitter(w http.ResponseWriter) func(any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var emitMu sync.Mutex
	enc := json.NewEncoder(w)
	return func(v any) {
		emitMu.Lock()
		defer emitMu.Unlock()
		enc.Encode(v) //nolint:errcheck // stream errors surface as the client hanging up
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST a job spec")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp, err := ParseSpec(body)
	if err != nil {
		jobsRejected.Inc()
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), sp.Timeout(s.cfg.JobTimeout))
	defer cancel()
	ctx, span := obs.StartSpan(ctx, "jobd.job")
	span.SetDetail(fmt.Sprintf("%d protocols × link grid", len(sp.Protocols)))
	defer span.End()

	emit := ndjsonEmitter(w)

	start := time.Now()
	sum := s.runJob(ctx, sp, emit)
	emit(sum)
	jobDuration.Observe(time.Since(start))
	if sum.Failed > 0 {
		jobsFailed.Inc()
	} else {
		jobsCompleted.Inc()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{ //nolint:errcheck // client went away
		"status":       "ok",
		"draining":     s.draining.Load(),
		"breaker":      s.brk.currentState().String(),
		"queue_depth":  s.queued.Load(),
		"active_jobs":  s.active.Load(),
		"shards_alive": s.pool.aliveShards(),
		"shard_pids":   s.pool.pids(),
		"store":        s.cfg.Store != nil,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"ready\":true}\n")) //nolint:errcheck // client went away
}

// ---- job execution ----

// ResultRow is one streamed NDJSON line: a cell's identity, its scores
// both bit-exact (hex) and human-readable, and how the result was
// obtained. Rows stream in completion order; Cell is the grid index.
type ResultRow struct {
	Cell      int                 `json:"cell"`
	Proto     string              `json:"proto"`
	Mbps      float64             `json:"mbps"`
	RTTms     float64             `json:"rtt_ms"`
	BufferMSS float64             `json:"buffer_mss"`
	Key       string              `json:"key,omitempty"`
	Scores    *ScoreBits          `json:"scores,omitempty"`
	Display   map[string]*float64 `json:"display,omitempty"`
	Cached    bool                `json:"cached"`
	Attempts  int                 `json:"attempts,omitempty"`
	Retries   int                 `json:"retries,omitempty"`
	Err       string              `json:"error,omitempty"`
	ElapsedMS int64               `json:"elapsed_ms"`
}

// Summary is the job's trailer line. Simulated + CacheHits + Failed ==
// Cells; CI's smoke test asserts Simulated == 0 on resubmission, which
// is the externally-checkable form of "a crash caused no duplicate or
// lost work".
type Summary struct {
	Done      bool   `json:"done"`
	Cells     int    `json:"cells"`
	Simulated int    `json:"simulated"`
	CacheHits int    `json:"cache_hits"`
	Failed    int    `json:"failed"`
	Retried   int    `json:"retried"`
	Breaker   string `json:"breaker"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) runJob(ctx context.Context, sp *Spec, emit func(any)) Summary {
	start := time.Now()
	cells := sp.Expand()
	cellTimeout := sp.CellTimeout(s.cfg.CellTimeout)
	sum := Summary{Cells: len(cells)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(c Cell) {
			defer wg.Done()
			row := s.runCell(ctx, c, cellTimeout)
			mu.Lock()
			switch {
			case row.Err != "":
				sum.Failed++
			case row.Cached:
				sum.CacheHits++
			default:
				sum.Simulated++
			}
			sum.Retried += row.Retries
			mu.Unlock()
			emit(row)
		}(cells[i])
	}
	wg.Wait()
	sum.Done = true
	sum.Breaker = s.brk.currentState().String()
	sum.ElapsedMS = time.Since(start).Milliseconds()
	return sum
}

func (s *Server) runCell(ctx context.Context, c Cell, timeout time.Duration) ResultRow {
	start := time.Now()
	row := ResultRow{Cell: c.Index, Proto: c.Proto, Mbps: c.Mbps, RTTms: c.RTTms, BufferMSS: c.BufferMSS}
	defer func() {
		row.ElapsedMS = time.Since(start).Milliseconds()
		if row.Scores != nil {
			row.Display, _ = row.Scores.Display()
		}
		cellDuration.Observe(time.Since(start))
	}()
	key, err := c.Key()
	if err != nil {
		row.Err = err.Error()
		cellsFailed.Inc()
		return row
	}
	row.Key = key
	if sb, ok := s.lookup(key); ok {
		row.Scores = &sb
		row.Cached = true
		cellsCached.Inc()
		return row
	}
	sb, attempts, retries, err := s.dispatch(ctx, c, key, timeout)
	row.Attempts = attempts
	row.Retries = retries
	if err != nil {
		row.Err = err.Error()
		cellsFailed.Inc()
		return row
	}
	row.Scores = &sb
	cellsSimulated.Inc()
	s.persist(key, sb)
	return row
}

// dispatch pushes the cell through the pool, retrying transient
// failures (shard crash, cell deadline) under the configured backoff.
// The backoff seed derives from the cell so retry pacing is
// deterministic per cell but decorrelated across a grid.
func (s *Server) dispatch(ctx context.Context, c Cell, key string, timeout time.Duration) (ScoreBits, int, int, error) {
	bo := s.cfg.CellRetry.Start(uint64(c.Index)*0x9e3779b97f4a7c15 + c.ChaosSeed + 1)
	var last error
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return ScoreBits{}, attempts, max(attempts-1, 0), fmt.Errorf("jobd: job canceled: %w", err)
		}
		t := &task{cell: c, attempt: attempts, timeout: timeout, done: make(chan taskResult, 1)}
		select {
		case s.pool.tasks <- t:
		case <-ctx.Done():
			return ScoreBits{}, attempts, max(attempts-1, 0), fmt.Errorf("jobd: job canceled: %w", ctx.Err())
		}
		attempts++
		var res taskResult
		select {
		case res = <-t.done:
		case <-ctx.Done():
			return ScoreBits{}, attempts, attempts - 1, fmt.Errorf("jobd: job canceled: %w", ctx.Err())
		}
		if res.err == nil {
			return res.scores, attempts, attempts - 1, nil
		}
		last = res.err
		if errors.Is(res.err, errCellTimeout) {
			cellsTimedOut.Inc()
			if obs.Enabled() {
				obs.NoteEvent("deadline", "jobd.cell.timeout", "cell "+strconv.Itoa(c.Index))
			}
		} else if !errors.Is(res.err, errShardCrashed) {
			// A compute error is deterministic: retrying the same cell
			// would fail identically.
			return ScoreBits{}, attempts, attempts - 1, res.err
		}
		cellsRetried.Inc()
		d, ok := bo.Next()
		if !ok {
			return ScoreBits{}, attempts, attempts - 1, fmt.Errorf("jobd: cell %d failed after %d attempts: %w", c.Index, attempts, last)
		}
		if err := retry.Sleep(ctx, d); err != nil {
			return ScoreBits{}, attempts, attempts - 1, fmt.Errorf("jobd: job canceled: %w", err)
		}
	}
}

// ---- breaker-gated result tiers ----

// lookup checks memory, then (breaker permitting) the persistent store.
func (s *Server) lookup(key string) (ScoreBits, bool) {
	if v, ok := s.memo.Load(key); ok {
		return v.(ScoreBits), true
	}
	if s.cfg.Store == nil || !s.brk.allowGet() {
		return ScoreBits{}, false
	}
	payload, ok := s.cfg.Store.Get(key)
	if !ok {
		return ScoreBits{}, false
	}
	var sb ScoreBits
	if err := json.Unmarshal(payload, &sb); err != nil {
		// Undetected corruption (the store's checksum catches flipped
		// bits, not a wrong-schema payload): treat as a miss and let the
		// recompute overwrite it.
		return ScoreBits{}, false
	}
	if _, err := sb.Decode(); err != nil {
		return ScoreBits{}, false
	}
	s.memo.Store(key, sb)
	return sb, true
}

// persist records a freshly simulated result: always in memory, and in
// the store when the breaker allows. A Put failure feeds the breaker;
// enough of them in a row and the daemon stops paying for a dead disk.
func (s *Server) persist(key string, sb ScoreBits) {
	s.memo.Store(key, sb)
	if s.cfg.Store == nil || !s.brk.allowPut() {
		return
	}
	payload, err := json.Marshal(sb)
	if err != nil {
		return
	}
	s.brk.report(s.cfg.Store.Put(key, payload) == nil)
}
