package jobd

import (
	"fmt"
	"os"
	"testing"
)

// TestMain doubles as the worker-shard entry point: the shard pool
// re-execs the running binary — the test binary, here — with WorkerEnv
// set, which routes the child into the NDJSON worker loop instead of
// the test runner. cmd/axiomd does exactly the same in its main.
func TestMain(m *testing.M) {
	if os.Getenv(WorkerEnv) != "" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "jobd worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}
