package jobd

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, 5*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.allowPut() {
			t.Fatal("closed breaker refused a put")
		}
		b.report(false)
	}
	if b.currentState() != breakerClosed {
		t.Fatal("breaker tripped below threshold")
	}
	b.report(false) // third consecutive failure
	if b.currentState() != breakerOpen {
		t.Fatal("breaker did not trip at threshold")
	}
	if b.allowPut() || b.allowGet() {
		t.Fatal("open breaker allowed ops inside cooldown")
	}
}

func TestBreakerSuccessResetsTheCount(t *testing.T) {
	b := newBreaker(3, 5*time.Second)
	b.report(false)
	b.report(false)
	b.report(true) // success resets
	b.report(false)
	b.report(false)
	if b.currentState() != breakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, 5*time.Second)
	b.now = func() time.Time { return now }
	b.report(false)
	if b.currentState() != breakerOpen {
		t.Fatal("threshold-1 breaker did not trip")
	}

	now = now.Add(6 * time.Second)
	if !b.allowGet() {
		t.Fatal("gets must flow once the cooldown has elapsed")
	}
	if !b.allowPut() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state after probe admission: %v", b.currentState())
	}
	if b.allowPut() {
		t.Fatal("second probe admitted while first in flight")
	}

	// Failed probe: re-open for another full cooldown.
	b.report(false)
	if b.currentState() != breakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	now = now.Add(6 * time.Second)
	if !b.allowPut() {
		t.Fatal("probe refused after second cooldown")
	}
	b.report(true)
	if b.currentState() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.allowPut() {
		t.Fatal("closed breaker refused a put")
	}
}
