package jobd

import "repro/internal/obs"

// The daemon's registry surface. Queue depth and active jobs are
// gauges a dashboard reads point-in-time; everything else is a counter
// the Prometheus endpoint exposes as monotonic series.
var (
	jobsAdmitted  = obs.GetCounter("jobd.jobs.admitted")
	jobsShed      = obs.GetCounter("jobd.jobs.shed")
	jobsRejected  = obs.GetCounter("jobd.jobs.rejected")
	jobsCompleted = obs.GetCounter("jobd.jobs.completed")
	jobsFailed    = obs.GetCounter("jobd.jobs.failed")

	cellsSimulated = obs.GetCounter("jobd.cells.simulated")
	cellsCached    = obs.GetCounter("jobd.cells.cached")
	cellsFailed    = obs.GetCounter("jobd.cells.failed")
	cellsRetried   = obs.GetCounter("jobd.cells.retried")
	cellsTimedOut  = obs.GetCounter("jobd.cells.timeout")

	shardsSpawned   = obs.GetCounter("jobd.shards.spawned")
	shardsCrashed   = obs.GetCounter("jobd.shards.crashed")
	shardsExhausted = obs.GetCounter("jobd.shards.exhausted")

	breakerTrips  = obs.GetCounter("jobd.breaker.trips")
	breakerProbes = obs.GetCounter("jobd.breaker.probes")

	queueDepth  = obs.GetGauge("jobd.queue.depth")
	jobsActive  = obs.GetGauge("jobd.jobs.active")
	shardsAlive = obs.GetGauge("jobd.shards.alive")

	jobDuration  = obs.GetHistogram("jobd.job.duration")
	cellDuration = obs.GetHistogram("jobd.cell.duration")
)
