package jobd

import (
	"encoding/json"
	"io"
	"syscall"
	"testing"
	"time"

	"repro/internal/retry"
)

// TestWorkerProtocol drives WorkerMain directly over pipes: one task in,
// one result out, errors reported in-band, EOF a clean exit.
func TestWorkerProtocol(t *testing.T) {
	taskR, taskW := io.Pipe()
	resR, resW := io.Pipe()
	workerDone := make(chan error, 1)
	go func() { workerDone <- WorkerMain(taskR, resW) }()

	enc := json.NewEncoder(taskW)
	dec := json.NewDecoder(resR)

	cell := Cell{Index: 0, Proto: "reno", Senders: 2, Mbps: 10, RTTms: 42, BufferMSS: 50, Steps: 120}
	if err := enc.Encode(wireTask{ID: 7, Cell: cell}); err != nil {
		t.Fatal(err)
	}
	var res wireResult
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != 7 || res.Err != "" || res.Scores == nil {
		t.Fatalf("bad result: %+v", res)
	}
	// Bit-identical to a direct in-process computation.
	want, err := computeCell(cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *res.Scores != EncodeScores(want) {
		t.Fatalf("worker scores differ from direct computation:\n  %+v\n  %+v", *res.Scores, EncodeScores(want))
	}

	// A bad cell comes back as an in-band error, not a dead worker.
	if err := enc.Encode(wireTask{ID: 8, Cell: Cell{Proto: "nosuch", Senders: 2, Mbps: 10, RTTms: 42}}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != 8 || res.Err == "" {
		t.Fatalf("bad cell did not error: %+v", res)
	}

	taskW.Close()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestShardedJobCompletes runs a job over real child worker processes.
func TestShardedJobCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	st := newFakeStore()
	_, url := startServer(t, Config{Store: st, Shards: 2})
	waitFor(t, func() bool {
		_, h := getJSON(t, url+"/healthz")
		pids, _ := h["shard_pids"].([]any)
		return len(pids) == 2
	})
	out := submit(t, url, testSpec)
	requireComplete(t, out, testSpecCells)
	if out.sum.Simulated != testSpecCells {
		t.Fatalf("cold sharded run: %+v", out.sum)
	}

	// Sharded and in-process execution agree bit for bit.
	_, inproc := startServer(t, Config{})
	want := submit(t, inproc, testSpec)
	requireComplete(t, want, testSpecCells)
	requireSameScores(t, want, out)
}

// TestShardSIGKILLMidJob is the headline chaos case: kill -9 one worker
// shard while a job is in flight. The in-flight cell requeues to a
// sibling, the supervisor respawns the dead shard, the job completes
// with zero failures — and a resubmission proves no work was lost or
// duplicated (every cell is served from cache, none resimulated).
func TestShardSIGKILLMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	// Every attempt of cell 0 stalls 700ms so the job is reliably in
	// flight — with cell 0 parked on some shard — when the kill lands.
	t.Setenv(holdEnv, "0:700:99")
	s, url := startServer(t, Config{Shards: 2})
	waitFor(t, func() bool { return len(s.pool.pids()) == 2 })

	done := make(chan jobOut, 1)
	go func() { done <- submit(t, url, testSpec) }()
	waitFor(t, func() bool {
		_, h := getJSON(t, url+"/healthz")
		return h["active_jobs"] == float64(1)
	})
	time.Sleep(150 * time.Millisecond) // let cells reach the shards
	pids := s.pool.pids()
	if len(pids) == 0 {
		t.Fatal("no shard pids to kill")
	}
	if err := syscall.Kill(pids[0], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	out := <-done
	requireComplete(t, out, testSpecCells)
	if out.sum.Simulated+out.sum.CacheHits != testSpecCells {
		t.Fatalf("lost cells: %+v", out.sum)
	}

	// The supervisor replaces the dead shard.
	waitFor(t, func() bool { return s.pool.aliveShards() == 2 && len(s.pool.pids()) == 2 })

	// No duplicate work on resubmission: everything is already cached.
	again := submit(t, url, testSpec)
	requireComplete(t, again, testSpecCells)
	if again.sum.Simulated != 0 {
		t.Fatalf("crash caused duplicate work: %+v", again.sum)
	}
	requireSameScores(t, out, again)
}

// TestAllShardsExhaustedFallsBackInProcess kills shards faster than the
// respawn budget allows until the pool gives up on child processes; the
// daemon must degrade to in-process serving rather than wedge.
func TestAllShardsExhaustedFallsBackInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	// A one-attempt respawn budget: the first crash retires the shard.
	s, url := startServer(t, Config{Shards: 1, Respawn: retry.Policy{Attempts: 1}})
	waitFor(t, func() bool { return len(s.pool.pids()) == 1 })
	if err := syscall.Kill(s.pool.pids()[0], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// The pool notices, retires the shard, and starts in-process
	// workers; a job must still complete.
	waitFor(t, func() bool { return s.pool.aliveShards() > 0 && len(s.pool.pids()) == 0 })
	out := submit(t, url, testSpec)
	requireComplete(t, out, testSpecCells)
}
