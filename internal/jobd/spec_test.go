package jobd

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestParseSpecValidates(t *testing.T) {
	good := `{"protocols":["reno","cubic"],"senders":2,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]}}`
	sp, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sp.Expand()); got != 2 {
		t.Fatalf("expanded to %d cells, want 2", got)
	}

	bad := []string{
		`{"senders":2,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]}}`,                               // no protocols
		`{"protocols":["reno"],"senders":1,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]}}`,          // 1 sender
		`{"protocols":["reno"],"senders":2,"link":{"mbps":[],"rtt_ms":[42],"buffer_mss":[100]}}`,            // empty axis
		`{"protocols":["reno"],"senders":2,"link":{"mbps":[-5],"rtt_ms":[42],"buffer_mss":[100]}}`,          // negative mbps
		`{"protocols":["nosuch"],"senders":2,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]}}`,        // unknown protocol
		`{"protocols":["reno"],"senders":2,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]},"x":true}`, // unknown field
		`{"protocols":["reno"],"senders":2,"link":{"mbps":[20],"rtt_ms":[42],"buffer_mss":[100]},"chaos":{"events":[{"kind":"bogus","at":1}]}}`,
	}
	for _, b := range bad {
		if _, err := ParseSpec([]byte(b)); err == nil {
			t.Errorf("spec accepted, want error: %s", b)
		}
	}
}

func TestExpandDeterministicOrder(t *testing.T) {
	sp := &Spec{
		Protocols: []string{"reno", "cubic"},
		Senders:   2,
		Link:      LinkGrid{Mbps: []float64{10, 20}, RTTms: []float64{42}, BufferMSS: []float64{50, 100}},
	}
	a, b := sp.Expand(), sp.Expand()
	if len(a) != 8 {
		t.Fatalf("got %d cells, want 8", len(a))
	}
	for i := range a {
		if a[i].Index != i {
			t.Fatalf("cell %d has index %d", i, a[i].Index)
		}
		ka, err := a[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, _ := b[i].Key()
		if ka != kb {
			t.Fatalf("expansion not deterministic at cell %d: %s vs %s", i, ka, kb)
		}
	}
	// Protocols are the outermost axis: the first half is all reno.
	for i := 0; i < 4; i++ {
		if a[i].Proto != "reno" || a[i+4].Proto != "cubic" {
			t.Fatalf("unexpected protocol order at %d: %s / %s", i, a[i].Proto, a[i+4].Proto)
		}
	}
}

func TestCellKeyCanonicalizesProtocolSpelling(t *testing.T) {
	mk := func(proto string) string {
		c := Cell{Proto: proto, Senders: 2, Mbps: 20, RTTms: 42, BufferMSS: 100}
		k, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	// "reno" is AIMD(1, 0.5): two spellings of the same protocol must
	// share one store key so two jobs share one simulation.
	if mk("reno") != mk("aimd:1,0.5") {
		t.Fatal("reno and aimd:1,0.5 got different cell keys")
	}
	if mk("reno") == mk("aimd:1,0.875") {
		t.Fatal("distinct protocols collided on one cell key")
	}
	if !strings.HasPrefix(mk("reno"), "jobcell|") {
		t.Fatalf("key missing namespace prefix: %s", mk("reno"))
	}
}

func TestSpecTimeoutsFallBack(t *testing.T) {
	sp := &Spec{}
	if got := sp.CellTimeout(time.Minute); got != time.Minute {
		t.Fatalf("CellTimeout default: %v", got)
	}
	sp.CellTimeoutMS = 250
	if got := sp.CellTimeout(time.Minute); got != 250*time.Millisecond {
		t.Fatalf("CellTimeout override: %v", got)
	}
}

func TestScoreBitsRoundTrip(t *testing.T) {
	s := metrics.Scores{
		Efficiency:       0.1 + 0.2, // a value with no short decimal form
		FastUtilization:  math.NaN(),
		LossAvoidance:    math.Inf(1),
		Fairness:         -0.0,
		Convergence:      math.SmallestNonzeroFloat64,
		Robustness:       1,
		TCPFriendliness:  0.9999999999999999,
		LatencyAvoidance: 42.42,
	}
	back, err := EncodeScores(s).Decode()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b float64) {
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s not bit-identical: %x vs %x", name, math.Float64bits(a), math.Float64bits(b))
		}
	}
	check("eff", s.Efficiency, back.Efficiency)
	check("fast", s.FastUtilization, back.FastUtilization)
	check("loss", s.LossAvoidance, back.LossAvoidance)
	check("fair", s.Fairness, back.Fairness)
	check("conv", s.Convergence, back.Convergence)
	check("robust", s.Robustness, back.Robustness)
	check("tcpf", s.TCPFriendliness, back.TCPFriendliness)
	check("lat", s.LatencyAvoidance, back.LatencyAvoidance)

	disp, err := EncodeScores(s).Display()
	if err != nil {
		t.Fatal(err)
	}
	if disp["fast_utilization"] != nil {
		t.Fatal("NaN must display as null")
	}
	if disp["efficiency"] == nil || *disp["efficiency"] != s.Efficiency {
		t.Fatal("finite display value mangled")
	}

	if _, err := (ScoreBits{Efficiency: "zz"}).Decode(); err == nil {
		t.Fatal("malformed hex bits decoded")
	}
}
