package metrics

import (
	"testing"

	"repro/internal/engine"
)

// TestStreamObserveAllocFree pins the observer half of the hot-loop
// contract: Observe pushes into preallocated rings and must not allocate
// per step, even after the rings wrap.
func TestStreamObserveAllocFree(t *testing.T) {
	meta := engine.Meta{Flows: 2, Capacity: 100, BaseRTT: 0.042, Horizon: 1000}
	s := NewStream(meta, DefaultTailFrac)
	step := engine.Step{Windows: []float64{10, 20}, Total: 30, RTT: 0.05, Loss: 0.01}
	// Fill beyond ring capacity so the wrap-around path is what's measured.
	for i := 0; i < 2000; i++ {
		s.Observe(step)
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Observe(step) }); avg != 0 {
		t.Fatalf("Stream.Observe allocates %.2f times per step, want 0", avg)
	}
}

// TestStreamObserveStripAllocFree pins the bulk half of the same
// contract: after the first strip has grown the goodput scratch,
// ObserveStrip must be allocation-free no matter how the rings wrap.
func TestStreamObserveStripAllocFree(t *testing.T) {
	meta := engine.Meta{Flows: 2, Capacity: 100, BaseRTT: 0.042, Horizon: 1000}
	s := NewStream(meta, DefaultTailFrac)
	const count = 64
	strip := engine.Strip{
		Count:   count,
		Flows:   2,
		Windows: make([]float64, 2*count),
		Totals:  make([]float64, count),
		RTT:     make([]float64, count),
		Loss:    make([]float64, count),
	}
	for k := 0; k < count; k++ {
		strip.Windows[k] = 10
		strip.Windows[count+k] = 20
		strip.Totals[k] = 30
		strip.RTT[k] = 0.05
		strip.Loss[k] = 0.01
	}
	// Fill beyond ring capacity so the wrap-around path is what's measured.
	for i := 0; i < 40; i++ {
		s.ObserveStrip(strip)
	}
	if avg := testing.AllocsPerRun(1000, func() { s.ObserveStrip(strip) }); avg != 0 {
		t.Fatalf("Stream.ObserveStrip allocates %.2f times per strip, want 0", avg)
	}
}
