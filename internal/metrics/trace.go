// Package metrics turns the eight axioms of Section 3 of "An Axiomatic
// Approach to Congestion Control" into measurable quantities.
//
// Each axiom is parameterized ("a protocol is α-efficient", "α-fair", …)
// and quantified over initial window configurations and over "some time T
// onwards". The estimators here realize those quantifiers empirically:
// trace-level functions score a single finished run over its tail window,
// and the scenario-level functions in scenario.go take worst cases across
// a set of initial configurations, exactly as the axioms demand.
//
// Scores follow the paper's orientation for each metric: for efficiency,
// fast-utilization, fairness, convergence, robustness and friendliness a
// larger α is better; for loss-avoidance and latency-avoidance a smaller
// α is better.
package metrics

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultTailFrac is the fraction of a trace treated as "from some time T
// onwards": estimators evaluate the last quarter of the run by default.
const DefaultTailFrac = 0.75

// EfficiencyFromTrace estimates Metric I (link-utilization) on a finished
// run: the largest α such that X(t) ≥ αC throughout the tail, i.e.
// min over the tail of X(t)/C. Returns 0 for an infinite-capacity link.
func EfficiencyFromTrace(tr *trace.Trace, tailFrac float64) float64 {
	c := tr.Capacity()
	if math.IsInf(c, 1) || c <= 0 {
		return 0
	}
	return stats.Min(stats.Tail(tr.Total(), tailFrac)) / c
}

// LossAvoidanceFromTrace estimates Metric III (loss-avoidance) on a
// finished run: the smallest α such that L(t) ≤ α throughout the tail,
// i.e. max over the tail of L(t). Lower is better; 0 means "0-loss".
func LossAvoidanceFromTrace(tr *trace.Trace, tailFrac float64) float64 {
	return stats.Max(stats.Tail(tr.Loss(), tailFrac))
}

// FairnessFromTrace estimates Metric IV (fairness) on a finished run of a
// homogeneous sender population: the largest α such that every sender's
// average tail window is at least an α-fraction of every other sender's,
// i.e. min over senders of avg window divided by max over senders.
func FairnessFromTrace(tr *trace.Trace, tailFrac float64) float64 {
	avgs := make([]float64, tr.Senders())
	for i := range avgs {
		avgs[i] = tr.AvgWindow(i, tailFrac)
	}
	return stats.MinOverMax(avgs)
}

// ConvergenceFromTrace estimates Metric V (convergence) on a finished run:
// the largest α ∈ [0, 1] such that, taking x*ᵢ to be sender i's average
// tail window, every tail sample satisfies αx*ᵢ ≤ xᵢ(t) ≤ (2−α)x*ᵢ. A
// perfectly constant tail scores 1; wild oscillation around the mean
// scores near 0.
func ConvergenceFromTrace(tr *trace.Trace, tailFrac float64) float64 {
	alpha := 1.0
	for i := 0; i < tr.Senders(); i++ {
		tail := stats.Tail(tr.Window(i), tailFrac)
		star := stats.Mean(tail)
		if star <= 0 {
			return 0
		}
		for _, x := range tail {
			r := x / star
			// αx* ≤ x ⇒ α ≤ r; x ≤ (2−α)x* ⇒ α ≤ 2−r.
			a := math.Min(r, 2-r)
			if a < alpha {
				alpha = a
			}
		}
	}
	return math.Max(alpha, 0)
}

// FriendlinessFromTrace estimates Metric VII (friendliness) on a finished
// mixed run: with pIdx the indices of P-senders and qIdx the indices of
// Q-senders, P is α-friendly to Q for
//
//	α = min over (i ∈ P, j ∈ Q) of avgWindow(j) / avgWindow(i)
//
// over the tail. A score of 1 means Q-senders keep up with P-senders; 0
// means P starves Q. The result may exceed 1 if Q outcompetes P.
func FriendlinessFromTrace(tr *trace.Trace, pIdx, qIdx []int, tailFrac float64) float64 {
	if len(pIdx) == 0 || len(qIdx) == 0 {
		return math.NaN()
	}
	worstP := math.Inf(-1) // largest P window (the strongest competitor)
	for _, i := range pIdx {
		if a := tr.AvgWindow(i, tailFrac); a > worstP {
			worstP = a
		}
	}
	worstQ := math.Inf(1) // smallest Q window (the weakest victim)
	for _, j := range qIdx {
		if a := tr.AvgWindow(j, tailFrac); a < worstQ {
			worstQ = a
		}
	}
	if worstP <= 0 {
		return 1
	}
	return worstQ / worstP
}

// LatencyAvoidanceFromTrace estimates Metric VIII (latency-avoidance) on a
// finished run: the smallest α such that RTT(t) < (1+α)·2Θ throughout the
// tail, i.e. max over the tail of RTT/2Θ − 1. Lower is better; 0 means the
// link stays at its propagation delay.
func LatencyAvoidanceFromTrace(tr *trace.Trace, tailFrac float64) float64 {
	base := tr.BaseRTT()
	if base <= 0 {
		return math.NaN()
	}
	return math.Max(0, stats.Max(stats.Tail(tr.RTT(), tailFrac))/base-1)
}

// FastUtilizationFromSeries estimates Metric II (fast-utilization) from a
// window series known to be free of loss and of RTT increases. The axiom
// says P is α-fast-utilizing when there EXISTS a T > 0 such that for ALL
// spans Δt ≥ T starting at t₁,
//
//	Σ_{t=t₁}^{t₁+Δt} (x(t) − x(t₁)) ≥ α·Δt²/2
//
// With g(Δt) = 2·S(Δt)/Δt² for t₁ = 0, the estimate realizes both
// quantifiers on the finite horizon H:
//
//	α̂ = max over T ∈ [1, H/2] of ( min over Δt ∈ [T, H] of g(Δt) )
//
// i.e. the protocol may pick its favorite T (the ∃), but must then sustain
// the growth for every longer span (the ∀). T is capped at H/2 so that the
// inner minimum always covers a non-trivial range of spans. AIMD(a,·)
// scores ≈ a; MIMD's exponential growth makes the suffix minima explode,
// matching its ∞ score in Table 1; sublinear protocols (BIN with k > 0)
// decay toward 0 as the horizon grows.
//
// The series should start from the protocol's minimum window — the hardest
// starting point for growth-accelerating protocols — which is how
// FastUtilization produces it.
func FastUtilizationFromSeries(window []float64) float64 {
	h := len(window) - 1
	if h < 2 {
		return math.NaN()
	}
	x0 := window[0]
	// g[dt] = 2·S(dt)/dt² for dt = 1..h.
	g := make([]float64, h+1)
	sum := window[0] - x0
	for dt := 1; dt <= h; dt++ {
		sum += window[dt] - x0
		g[dt] = 2 * sum / (float64(dt) * float64(dt))
	}
	// Suffix minima, then maximize over T ≤ h/2.
	suffixMin := math.Inf(1)
	alpha := math.Inf(-1)
	for dt := h; dt >= 1; dt-- {
		if g[dt] < suffixMin {
			suffixMin = g[dt]
		}
		if dt <= h/2 && suffixMin > alpha {
			alpha = suffixMin
		}
	}
	if alpha < 0 {
		return 0
	}
	return alpha
}
