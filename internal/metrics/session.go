package metrics

import (
	"encoding/json"
	"errors"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fluid"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/runstore"
	"repro/internal/trace"
)

// Session is a content-addressed cache of simulation runs shared by the
// axiom estimators. Every run an estimator needs is keyed by a canonical
// fingerprint of its complete inputs — link config, protocol parameters,
// initial windows, horizon, tail fraction, and chaos schedule + seed — so
// a Characterize call simulates each unique (config, init) cell exactly
// once and fans all tail estimators out over the shared result, and a
// sweep that passes one Session through Options reuses cross-cell
// baselines (e.g. the Reno comparator of every friendliness cell).
//
// Runs are deterministic, so a cached result is bit-identical to a fresh
// simulation; the cache changes cost, never scores. Concurrent lookups of
// the same key are single-flighted: one goroutine simulates, the rest
// wait and share. Cached *Stream/*trace.Trace values are returned to
// multiple callers and must be treated as read-only, which every
// estimator accessor already guarantees.
//
// Inputs without a canonical identity — a protocol or loss process that
// doesn't implement Fingerprint, a Perturb or BandwidthSchedule closure —
// are never cached: those runs execute directly and count as Uncacheable
// in Stats.
type Session struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
	stats   SessionStats
	store   *runstore.Store
}

// sessionEntry is one single-flighted run: done closes when the claimant
// finishes, after which exactly one of stream/tr/topo (on success) or err
// is set.
type sessionEntry struct {
	done   chan struct{}
	stream *Stream
	tr     *trace.Trace
	topo   *TopoStream
	err    error
}

// NewSession returns an empty run cache. A zero-value Session is not
// usable; estimators treat a nil *Session as "no caching". If a default
// persistent store has been installed with SetDefaultStore, the session
// is backed by it; override per session with SetStore.
func NewSession() *Session {
	return &Session{entries: make(map[string]*sessionEntry), store: defaultStore.Load()}
}

// defaultStore is the process-wide persistent tier picked up by every
// NewSession, including the private sessions Characterize and the
// experiment/report drivers create internally — installing it makes the
// whole process store-backed without threading a handle everywhere.
var defaultStore atomic.Pointer[runstore.Store]

// SetDefaultStore installs (or, with nil, removes) the persistent store
// that future NewSession calls inherit. Sessions already created keep
// whatever store they had.
func SetDefaultStore(st *runstore.Store) { defaultStore.Store(st) }

// DefaultStore returns the store installed by SetDefaultStore, or nil.
func DefaultStore() *runstore.Store { return defaultStore.Load() }

// SetStore attaches a persistent store as the session's second tier:
// lookups go memory → disk → simulate, and every simulated cacheable run
// is written back. Call before the session is shared across goroutines.
func (s *Session) SetStore(st *runstore.Store) { s.store = st }

// SessionStats summarizes what a Session saved. StepsSaved/StepsSimulated
// is the dedup factor: how many simulated steps the same calls would have
// cost without the cache, relative to what actually ran.
type SessionStats struct {
	// Hits is the number of runs served from a previous simulation in
	// this session's memory.
	Hits int64
	// DiskHits is the number of runs served from the persistent store
	// (simulated by an earlier process, or by another session in this
	// one).
	DiskHits int64
	// Misses is the number of runs actually simulated through the cache.
	Misses int64
	// Uncacheable is the number of runs executed outside the cache
	// because some input had no canonical fingerprint.
	Uncacheable int64
	// StepsSimulated is the total simulated steps of Misses + Uncacheable.
	StepsSimulated int64
	// StepsSaved is the total simulated steps Hits + DiskHits avoided.
	StepsSaved int64
}

// Simulated returns the number of runs this process actually executed:
// cache misses plus uncacheable runs. A fully warm persistent store
// makes this zero.
func (st SessionStats) Simulated() int64 { return st.Misses + st.Uncacheable }

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Process-wide aggregation across every Session, including the private
// ones experiments and reports create internally. CLIs report these so
// "-store-stats" reflects the whole run, not just one session.
var (
	totalMu    sync.Mutex
	totalStats SessionStats
)

func addTotals(f func(*SessionStats)) {
	totalMu.Lock()
	f(&totalStats)
	totalMu.Unlock()
}

// TotalStats returns the aggregated counters of every session in this
// process since the last ResetTotalStats.
func TotalStats() SessionStats {
	totalMu.Lock()
	defer totalMu.Unlock()
	return totalStats
}

// ResetTotalStats zeroes the process-wide counters (used by tests).
func ResetTotalStats() {
	totalMu.Lock()
	totalStats = SessionStats{}
	totalMu.Unlock()
}

// session telemetry, recorded only while obs is enabled. Cached pointers:
// the registry preserves metric identity across Reset.
var (
	sessionHits        = obs.GetCounter("metrics.session.hits")
	sessionDiskHits    = obs.GetCounter("metrics.session.disk_hits")
	sessionMisses      = obs.GetCounter("metrics.session.misses")
	sessionUncacheable = obs.GetCounter("metrics.session.uncacheable")
)

// errSessionPanicked is handed to waiters whose claimant panicked; the
// panic itself propagates on the claimant's goroutine (where the sweep
// harness recovers it into a per-cell PanicError).
var errSessionPanicked = errors.New("metrics: cached run panicked in another goroutine")

// noteUncacheable records a run that executed outside the cache.
func (s *Session) noteUncacheable(steps int) {
	s.mu.Lock()
	s.stats.Uncacheable++
	s.stats.StepsSimulated += int64(steps)
	s.mu.Unlock()
	addTotals(func(t *SessionStats) {
		t.Uncacheable++
		t.StepsSimulated += int64(steps)
	})
	if obs.Enabled() {
		sessionUncacheable.Inc()
	}
}

// do returns the cached result for key, or claims the key and runs exec
// exactly once while concurrent callers wait. Errors are returned to the
// claimant and any current waiters but never cached: the claim is evicted
// so later calls retry (a canceled context must not poison the session —
// and runs are deterministic, so a genuine failure simply reproduces).
func (s *Session) do(key string, steps int, exec func() (*Stream, *trace.Trace, error)) (*Stream, *trace.Trace, error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.mu.Unlock()
			wsp := obs.StartLeafSpan("metrics.session.wait")
			<-e.done
			wsp.End()
			if e.err != nil {
				if e.err == errSessionPanicked {
					return nil, nil, e.err
				}
				continue // claim was evicted; retry (bounded: we claim next)
			}
			s.mu.Lock()
			s.stats.Hits++
			s.stats.StepsSaved += int64(steps)
			s.mu.Unlock()
			addTotals(func(t *SessionStats) {
				t.Hits++
				t.StepsSaved += int64(steps)
			})
			if obs.Enabled() {
				sessionHits.Inc()
			}
			return e.stream, e.tr, nil
		}
		e := &sessionEntry{done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()

		finished := false
		defer func() {
			if !finished {
				// exec panicked. Evict the claim and release waiters with
				// a sentinel error so nobody blocks forever; the panic
				// keeps unwinding on this goroutine.
				s.mu.Lock()
				delete(s.entries, key)
				s.mu.Unlock()
				e.err = errSessionPanicked
				close(e.done)
			}
		}()
		var fromDisk bool
		e.stream, e.tr, fromDisk, e.err = s.runOrFetch(key, exec)
		finished = true
		s.mu.Lock()
		if e.err != nil {
			delete(s.entries, key)
		} else if fromDisk {
			s.stats.DiskHits++
			s.stats.StepsSaved += int64(steps)
		} else {
			s.stats.Misses++
			s.stats.StepsSimulated += int64(steps)
		}
		s.mu.Unlock()
		if e.err == nil {
			if fromDisk {
				addTotals(func(t *SessionStats) {
					t.DiskHits++
					t.StepsSaved += int64(steps)
				})
				if obs.Enabled() {
					sessionDiskHits.Inc()
				}
			} else {
				addTotals(func(t *SessionStats) {
					t.Misses++
					t.StepsSimulated += int64(steps)
				})
				if obs.Enabled() {
					sessionMisses.Inc()
				}
			}
		}
		close(e.done)
		return e.stream, e.tr, e.err
	}
}

// doTopo is do for the nettopo substrate: the same single-flight claim/
// wait/evict protocol over the shared entry map (a "v1|topo|" key can
// never collide with the fluid prefixes), resolving through
// runOrFetchTopo so warm stores serve topology runs without simulating.
func (s *Session) doTopo(key string, steps int, exec func() (*TopoStream, error)) (*TopoStream, error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.mu.Unlock()
			wsp := obs.StartLeafSpan("metrics.session.wait")
			<-e.done
			wsp.End()
			if e.err != nil {
				if e.err == errSessionPanicked {
					return nil, e.err
				}
				continue // claim was evicted; retry (bounded: we claim next)
			}
			s.mu.Lock()
			s.stats.Hits++
			s.stats.StepsSaved += int64(steps)
			s.mu.Unlock()
			addTotals(func(t *SessionStats) {
				t.Hits++
				t.StepsSaved += int64(steps)
			})
			if obs.Enabled() {
				sessionHits.Inc()
			}
			return e.topo, nil
		}
		e := &sessionEntry{done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()

		finished := false
		defer func() {
			if !finished {
				s.mu.Lock()
				delete(s.entries, key)
				s.mu.Unlock()
				e.err = errSessionPanicked
				close(e.done)
			}
		}()
		var fromDisk bool
		e.topo, fromDisk, e.err = s.runOrFetchTopo(key, exec)
		finished = true
		s.mu.Lock()
		if e.err != nil {
			delete(s.entries, key)
		} else if fromDisk {
			s.stats.DiskHits++
			s.stats.StepsSaved += int64(steps)
		} else {
			s.stats.Misses++
			s.stats.StepsSimulated += int64(steps)
		}
		s.mu.Unlock()
		if e.err == nil {
			if fromDisk {
				addTotals(func(t *SessionStats) {
					t.DiskHits++
					t.StepsSaved += int64(steps)
				})
				if obs.Enabled() {
					sessionDiskHits.Inc()
				}
			} else {
				addTotals(func(t *SessionStats) {
					t.Misses++
					t.StepsSimulated += int64(steps)
				})
				if obs.Enabled() {
					sessionMisses.Inc()
				}
			}
		}
		close(e.done)
		return e.topo, e.err
	}
}

// runOrFetchTopo is runOrFetch for TopoStream payloads: store check,
// cross-process key lock, re-check, then simulate and write back.
func (s *Session) runOrFetchTopo(key string, exec func() (*TopoStream, error)) (*TopoStream, bool, error) {
	if s.store == nil {
		sp := obs.StartLeafSpan("metrics.session.simulate")
		st, err := exec()
		sp.End()
		return st, false, err
	}
	if payload, ok := s.store.Get(key); ok {
		if st, derr := decodeTopoRun(payload); derr == nil {
			return st, true, nil
		}
	}
	unlock, lerr := s.store.LockKey(key)
	if lerr != nil {
		sp := obs.StartLeafSpan("metrics.session.simulate")
		st, err := exec()
		sp.End()
		return st, false, err
	}
	defer unlock()
	if payload, ok := s.store.Get(key); ok {
		if st, derr := decodeTopoRun(payload); derr == nil {
			return st, true, nil
		}
	}
	sp := obs.StartLeafSpan("metrics.session.simulate")
	st, err := exec()
	sp.End()
	if err == nil {
		_ = s.store.Put(key, encodeTopoRun(st))
	}
	return st, false, err
}

// doBatch resolves a whole grid of streaming runs through the cache in
// one pass, so the cells that actually need simulating reach the engine
// together and can take its grid-batch path (engine.SweepSpecs steps
// compatible cells in lockstep). keys/cacheable are parallel to the
// grid; exec simulates exactly the cells whose indices it is given and
// returns their streams in that order.
//
// Classification happens under one lock: uncacheable cells always
// simulate; cacheable cells whose key is already in flight (including a
// duplicate key claimed earlier in the same call) become waiters; the
// rest are claimed. Claimed cells are served from the persistent store
// where possible, and the remainder is handed to exec as one batch.
// Claimed entries are filled and released before any waiter is resolved,
// so duplicate keys within one call cannot deadlock on themselves.
//
// Cross-process single-flight holds for the batch path too: the store
// locks of all claimed keys are taken up front in sorted key order — a
// global total order, so two batches can never deadlock on each other,
// and runOrFetch only ever holds one of these at a time — and held
// across the store check and the simulation, so another process either
// finds each cell on disk or blocks until this batch writes it.
//
// The second return is parallel to keys and reports which runs this call
// actually executed: true for cache misses and uncacheable runs, false
// for memory/disk hits and for waiters served by another claimant.
// Explore's incremental accounting is built on it — a warm store makes
// every flag false.
func (s *Session) doBatch(keys []string, cacheable []bool, steps int, exec func(miss []int) ([]*Stream, error)) ([]*Stream, []bool, error) {
	n := len(keys)
	out := make([]*Stream, n)
	sim := make([]bool, n)
	entries := make([]*sessionEntry, n)
	var claimed, waiters, miss []int
	s.mu.Lock()
	for i := 0; i < n; i++ {
		if !cacheable[i] {
			miss = append(miss, i)
			continue
		}
		if e, ok := s.entries[keys[i]]; ok {
			entries[i] = e
			waiters = append(waiters, i)
			continue
		}
		e := &sessionEntry{done: make(chan struct{})}
		s.entries[keys[i]] = e
		entries[i] = e
		claimed = append(claimed, i)
	}
	s.mu.Unlock()

	// Take the claimed keys' cross-process locks in sorted key order (see
	// the doc comment); a lock that cannot be acquired degrades that key
	// to lock-free idempotent behavior, like runOrFetch.
	var unlocks []func()
	if s.store != nil && len(claimed) > 0 {
		order := append([]int(nil), claimed...)
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
		for _, i := range order {
			if unlock, lerr := s.store.LockKey(keys[i]); lerr == nil {
				unlocks = append(unlocks, unlock)
			}
		}
	}
	release := func() {
		for _, u := range unlocks {
			u()
		}
		unlocks = nil
	}
	defer release()

	// Serve claimed cells from the persistent store; disk hits are filled
	// and released immediately so concurrent waiters never block on I/O
	// that already finished. The rest join the miss batch.
	var open []int // claimed cells still unresolved (entry not yet closed)
	diskHits := 0
	for _, i := range claimed {
		if s.store != nil {
			if payload, ok := s.store.Get(keys[i]); ok {
				if st, _, derr := decodeRun(payload, false); derr == nil {
					entries[i].stream = st
					close(entries[i].done)
					out[i] = st
					diskHits++
					continue
				}
			}
		}
		open = append(open, i)
		miss = append(miss, i)
	}
	if diskHits > 0 {
		s.mu.Lock()
		s.stats.DiskHits += int64(diskHits)
		s.stats.StepsSaved += int64(diskHits) * int64(steps)
		s.mu.Unlock()
		addTotals(func(t *SessionStats) {
			t.DiskHits += int64(diskHits)
			t.StepsSaved += int64(diskHits) * int64(steps)
		})
		if obs.Enabled() {
			sessionDiskHits.Add(uint64(diskHits))
		}
	}
	sort.Ints(miss)

	if len(miss) > 0 {
		// evict releases the still-open claims on failure so other callers
		// retry rather than block; the deferred arm covers an exec panic
		// (mirroring do), with the panic itself unwinding on this
		// goroutine.
		evict := func(err error) {
			s.mu.Lock()
			for _, i := range open {
				delete(s.entries, keys[i])
			}
			s.mu.Unlock()
			for _, i := range open {
				entries[i].err = err
				close(entries[i].done)
			}
		}
		finished := false
		defer func() {
			if !finished {
				evict(errSessionPanicked)
			}
		}()
		bsp := obs.StartLeafSpan("metrics.session.simulate.batch")
		bsp.SetDetail(strconv.Itoa(len(miss)) + " cells")
		streams, err := exec(miss)
		bsp.End()
		if err == nil && len(streams) != len(miss) {
			err = errors.New("metrics: batch exec returned wrong cell count")
		}
		if err != nil {
			finished = true
			evict(err)
			return nil, nil, err
		}
		simulated, uncached := 0, 0
		for j, i := range miss {
			out[i] = streams[j]
			sim[i] = true
			if entries[i] == nil {
				uncached++
				continue
			}
			simulated++
			if s.store != nil {
				// A write failure costs persistence, not correctness.
				_ = s.store.Put(keys[i], encodeRun(streams[j], nil))
			}
			entries[i].stream = streams[j]
			close(entries[i].done)
		}
		finished = true
		s.mu.Lock()
		s.stats.Misses += int64(simulated)
		s.stats.Uncacheable += int64(uncached)
		s.stats.StepsSimulated += int64(simulated+uncached) * int64(steps)
		s.mu.Unlock()
		addTotals(func(t *SessionStats) {
			t.Misses += int64(simulated)
			t.Uncacheable += int64(uncached)
			t.StepsSimulated += int64(simulated+uncached) * int64(steps)
		})
		if obs.Enabled() {
			sessionMisses.Add(uint64(simulated))
			sessionUncacheable.Add(uint64(uncached))
		}
	}

	// Every claimed cell is resolved (filled or evicted) by this point,
	// so drop the key locks before touching waiters: blocking on another
	// goroutine's entry while still holding flocks could close a wait
	// cycle through a third process that the sorted acquisition order
	// alone does not rule out.
	release()

	// Waiters resolve through the ordinary single-flight path: normally a
	// pure hit on an entry another goroutine (or this very call) filled;
	// if that claim was evicted by a failure, do re-claims and simulates
	// the cell individually.
	for _, i := range waiters {
		idx := i
		st, _, err := s.do(keys[i], steps, func() (*Stream, *trace.Trace, error) {
			sts, err := exec([]int{idx})
			if err != nil {
				return nil, nil, err
			}
			return sts[0], nil, nil
		})
		if err != nil {
			return nil, nil, err
		}
		out[i] = st
	}
	return out, sim, nil
}

// runOrFetch resolves a claimed key through the persistent tier: try the
// store, then take the key's cross-process lock, re-check the store (a
// concurrent process may have just finished the same run), and only then
// simulate and write back. With no store attached it simply executes.
// The flock makes concurrent processes single-flight the same cell the
// way the in-memory map single-flights goroutines.
func (s *Session) runOrFetch(key string, exec func() (*Stream, *trace.Trace, error)) (*Stream, *trace.Trace, bool, error) {
	if s.store == nil {
		sp := obs.StartLeafSpan("metrics.session.simulate")
		st, tr, err := exec()
		sp.End()
		return st, tr, false, err
	}
	recorded := strings.HasPrefix(key, "v1|trace|")
	if payload, ok := s.store.Get(key); ok {
		if st, tr, derr := decodeRun(payload, recorded); derr == nil {
			return st, tr, true, nil
		}
	}
	unlock, lerr := s.store.LockKey(key)
	if lerr != nil {
		sp := obs.StartLeafSpan("metrics.session.simulate")
		st, tr, err := exec()
		sp.End()
		return st, tr, false, err
	}
	defer unlock()
	if payload, ok := s.store.Get(key); ok {
		if st, tr, derr := decodeRun(payload, recorded); derr == nil {
			return st, tr, true, nil
		}
	}
	sp := obs.StartLeafSpan("metrics.session.simulate")
	st, tr, err := exec()
	sp.End()
	if err == nil {
		// A write failure (disk full, permissions) costs persistence,
		// not correctness — the result still serves this process.
		_ = s.store.Put(key, encodeRun(st, tr))
	}
	return st, tr, false, err
}

// lossFingerprinter is the optional contract the builtin fluid loss
// processes implement (mirroring protocol.Fingerprinter).
type lossFingerprinter interface{ Fingerprint() string }

// hexBits renders a float64 as the hex of its IEEE-754 bit pattern —
// collision-free, unlike decimal formatting, and cheap to compare.
func hexBits(sb *strings.Builder, v float64) {
	sb.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
}

// runKey builds the canonical content address of one simulated run: the
// defaulted link config, the per-sender protocol fingerprints and initial
// windows (init cycled exactly as the sender builders cycle it), the
// horizon, the chaos schedule + seed, and — for streamed runs — the tail
// fraction baked into the Stream's rings. ok is false when any input
// lacks a canonical identity; such runs must execute uncached.
func runKey(cfg fluid.Config, protos []protocol.Protocol, init []float64, o Options, recorded bool) (key string, ok bool) {
	if cfg.Perturb != nil || cfg.BandwidthSchedule != nil {
		return "", false // opaque closures have no canonical identity
	}
	var sb strings.Builder
	if recorded {
		sb.WriteString("v1|trace|")
	} else {
		sb.WriteString("v1|stream|tf=")
		hexBits(&sb, o.TailFrac)
		sb.WriteByte('|')
	}
	sb.WriteString("steps=")
	sb.WriteString(strconv.Itoa(o.Steps))
	sb.WriteString("|link=")
	for _, v := range []float64{cfg.Bandwidth, cfg.PropDelay, cfg.Buffer, cfg.MaxWindow, cfg.TimeoutRTT} {
		hexBits(&sb, v)
		sb.WriteByte(',')
	}
	if cfg.Infinite {
		sb.WriteString("inf")
	}
	sb.WriteString("|seed=")
	sb.WriteString(strconv.FormatUint(cfg.Seed, 16))
	sb.WriteByte('|')
	if cfg.Loss != nil {
		fp, ok := cfg.Loss.(lossFingerprinter)
		if !ok {
			return "", false
		}
		sb.WriteString("loss=")
		sb.WriteString(fp.Fingerprint())
		sb.WriteByte('|')
	}
	if o.Chaos != nil {
		raw, err := json.Marshal(o.Chaos)
		if err != nil {
			return "", false
		}
		sb.WriteString("chaos=")
		sb.Write(raw)
		sb.WriteString(";cs=")
		sb.WriteString(strconv.FormatUint(o.ChaosSeed, 16))
		sb.WriteByte('|')
	}
	for i, p := range protos {
		f, ok := p.(protocol.Fingerprinter)
		if !ok {
			return "", false
		}
		sb.WriteString(f.Fingerprint())
		sb.WriteByte('@')
		w := protocol.MinWindow
		if len(init) > 0 {
			w = init[i%len(init)]
		}
		hexBits(&sb, w)
		sb.WriteByte(';')
	}
	return sb.String(), true
}
