package metrics

import (
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

func TestConvergenceTimeAIMDFinite(t *testing.T) {
	ct, err := ConvergenceTime(cap100(), protocol.Reno(), 2, 0.4, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ct < 0 {
		t.Fatal("Reno never settled")
	}
	// From the skewed start (one sender holding C), AIMD needs a
	// non-trivial number of steps but settles well before the horizon.
	if ct >= fastOpt.Steps {
		t.Fatalf("convergence time %d ≥ horizon", ct)
	}
}

func TestConvergenceTimeGentlerIsNotSlowerToSettleBand(t *testing.T) {
	// A wide band (±40%) contains Reno's 0.5-halving sawtooth (whose
	// trough/mean ratio is 2b/(1+b) = 0.667 > 0.6), so both settle; the
	// b = 0.8 variant's narrower sawtooth must also fit a ±15% band that
	// Reno's cannot.
	reno, err := ConvergenceTime(cap100(), protocol.Reno(), 1, 0.15, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	gentle, err := ConvergenceTime(cap100(), protocol.NewAIMD(1, 0.8), 1, 0.15, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if reno != -1 {
		t.Errorf("Reno fit a ±15%% band: %d (trough ratio 0.667 < 0.85)", reno)
	}
	if gentle == -1 {
		t.Errorf("AIMD(1,0.8) did not fit a ±15%% band (trough ratio 0.889)")
	}
}

func TestConvergenceTimeValidation(t *testing.T) {
	if _, err := ConvergenceTime(cap100(), protocol.Reno(), 1, 0, fastOpt); err == nil {
		t.Fatal("band=0 accepted")
	}
	if _, err := ConvergenceTime(cap100(), protocol.Reno(), 1, 1, fastOpt); err == nil {
		t.Fatal("band=1 accepted")
	}
}

func TestSmoothnessMatchesDecreaseFactor(t *testing.T) {
	reno, err := Smoothness(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reno-0.5) > 0.05 {
		t.Errorf("Reno smoothness = %v, want ≈ 0.5 (halving)", reno)
	}
	gentle, err := Smoothness(cap100(), protocol.NewAIMD(1, 0.8), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gentle-0.2) > 0.05 {
		t.Errorf("AIMD(1,0.8) smoothness = %v, want ≈ 0.2", gentle)
	}
	if gentle >= reno {
		t.Errorf("hierarchy: gentle %v ≥ reno %v", gentle, reno)
	}
}

func TestResponsivenessOrdering(t *testing.T) {
	// When capacity doubles, MIMD claims it exponentially fast; AIMD(1,·)
	// needs ≈ C/n extra MSS at 1/step; AIMD(0.2,·) is 5× slower.
	cfg := cap100()
	fast, err := Responsiveness(cfg, protocol.Scalable(), 1, 0.8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Responsiveness(cfg, protocol.Reno(), 1, 0.8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Responsiveness(cfg, protocol.NewAIMD(0.2, 0.5), 1, 0.8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if fast < 0 || mid < 0 || slow < 0 {
		t.Fatalf("some protocol never claimed the capacity: %d %d %d", fast, mid, slow)
	}
	if !(fast < mid && mid < slow) {
		t.Fatalf("responsiveness ordering broken: MIMD %d, AIMD(1) %d, AIMD(0.2) %d", fast, mid, slow)
	}
}

func TestResponsivenessValidation(t *testing.T) {
	if _, err := Responsiveness(cap100(), protocol.Reno(), 1, 0, fastOpt); err == nil {
		t.Fatal("frac=0 accepted")
	}
	inf := fluid.Config{Infinite: true, PropDelay: 0.021}
	if _, err := Responsiveness(inf, protocol.Reno(), 1, 0.8, fastOpt); err == nil {
		t.Fatal("infinite link accepted")
	}
}

func TestCharacterizeExt(t *testing.T) {
	s, err := CharacterizeExt(cap100(), protocol.Reno(), 2, Options{Steps: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if s.ConvergenceTime < 0 {
		t.Errorf("convergence time = %d", s.ConvergenceTime)
	}
	if s.Smoothness < 0.4 || s.Smoothness > 0.6 {
		t.Errorf("smoothness = %v", s.Smoothness)
	}
	if s.Responsiveness < 0 {
		t.Errorf("responsiveness = %d", s.Responsiveness)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestTFRCSmootherThanReno(t *testing.T) {
	// The equation-based protocol's whole point: steady-state smoothness
	// far better than halving.
	tfrc, err := Smoothness(cap100(), protocol.DefaultTFRC(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	reno, err := Smoothness(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tfrc >= reno/2 {
		t.Fatalf("TFRC smoothness %v not ≪ Reno's %v", tfrc, reno)
	}
}

func TestTFRCUtilizesAndStaysNearFriendly(t *testing.T) {
	eff, err := Efficiency(cap100(), protocol.DefaultTFRC(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.5 {
		t.Fatalf("TFRC efficiency = %v, want ≥ 0.5", eff)
	}
	// Equation-based control targets Reno's operating point; allow a
	// generous factor since the EWMA dynamics differ from event-driven
	// AIMD.
	friendly, err := TCPFriendliness(cap100(), protocol.DefaultTFRC(), 1, 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if friendly < 0.25 || friendly > 4 {
		t.Fatalf("TFRC TCP-friendliness = %v, want within 4x of parity", friendly)
	}
}

func TestBandwidthScheduleDrop(t *testing.T) {
	// Capacity halves mid-run: a Reno sender's window must track down
	// (loss forces decreases) and the post-drop tail must stay near the
	// new, smaller capacity.
	cfg := cap100()
	half := cfg.Bandwidth / 2
	steps := 2000
	cfg.BandwidthSchedule = func(step int) float64 {
		if step >= steps/2 {
			return half
		}
		return cfg.Bandwidth
	}
	tr, err := fluid.Homogeneous(cfg, protocol.Reno(), 1, []float64{1}, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Post-drop capacity is 50 MSS (+ buffer 20): the tail total must not
	// exceed C/2+τ+slack.
	tail := tr.Total()[steps-100:]
	for _, x := range tail {
		if x > 50+20+3 {
			t.Fatalf("window %v did not adapt to halved capacity", x)
		}
	}
}
