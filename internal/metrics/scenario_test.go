package metrics

import (
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/protocol"
)

// cap100 is a 100-MSS-capacity link with a 20-MSS buffer and 42ms RTT.
func cap100() fluid.Config {
	theta := 0.021
	return fluid.Config{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    20,
	}
}

var fastOpt = Options{Steps: 2000}

func TestEfficiencyReno(t *testing.T) {
	// Theory (Table 1): AIMD(1,0.5) efficiency = min(1, b(1+τ/C)) = 0.6.
	got, err := Efficiency(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.55 || got > 0.70 {
		t.Fatalf("Reno efficiency = %v, want ≈ 0.6", got)
	}
}

func TestEfficiencyOrderingByDecreaseFactor(t *testing.T) {
	// b = 0.8 (Cubic-like AIMD) must beat b = 0.5 (Reno): gentler backoff
	// keeps the link fuller.
	reno, err := Efficiency(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	gentle, err := Efficiency(cap100(), protocol.NewAIMD(1, 0.8), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if gentle <= reno {
		t.Fatalf("AIMD(1,0.8) efficiency %v ≤ Reno %v", gentle, reno)
	}
}

func TestLossAvoidanceGrowsWithSenders(t *testing.T) {
	// Table 1: AIMD loss bound 1 − (C+τ)/(C+τ+na) grows with n.
	l1, err := LossAvoidance(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := LossAvoidance(cap100(), protocol.Reno(), 4, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if l4 <= l1 {
		t.Fatalf("loss with 4 senders (%v) ≤ loss with 1 (%v)", l4, l1)
	}
	// And both stay near the theory's scale: n·a/(C+τ+n·a).
	if l1 > 0.05 {
		t.Fatalf("single Reno loss = %v, want ≤ a/(C+τ+a) ≈ 0.008 scale", l1)
	}
}

func TestFairnessAIMDVsMIMD(t *testing.T) {
	// Table 1: AIMD <1>-fair, MIMD <0>-fair. The skewed initial config
	// exposes MIMD's ratio-preservation.
	aimd, err := Fairness(cap100(), protocol.Reno(), 2, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	mimd, err := Fairness(cap100(), protocol.Scalable(), 2, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if aimd < 0.85 {
		t.Fatalf("AIMD fairness = %v, want ≥ 0.85", aimd)
	}
	if mimd > 0.2 {
		t.Fatalf("MIMD fairness = %v, want ≈ 0 (ratio preservation)", mimd)
	}
	if mimd >= aimd {
		t.Fatalf("hierarchy violated: MIMD %v ≥ AIMD %v", mimd, aimd)
	}
}

func TestFairnessNeedsTwoSenders(t *testing.T) {
	if _, err := Fairness(cap100(), protocol.Reno(), 1, fastOpt); err == nil {
		t.Fatal("Fairness with 1 sender should error")
	}
}

func TestConvergenceAIMDMatchesTheory(t *testing.T) {
	// Table 1: AIMD convergence = 2b/(1+b); for Reno that is 2/3.
	got, err := Convergence(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 3.0
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("Reno convergence = %v, want ≈ %v", got, want)
	}
}

func TestConvergenceOrderingByDecreaseFactor(t *testing.T) {
	// 2b/(1+b) is increasing in b: AIMD(1,0.8) converges tighter.
	reno, err := Convergence(cap100(), protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	gentle, err := Convergence(cap100(), protocol.NewAIMD(1, 0.8), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if gentle <= reno {
		t.Fatalf("AIMD(1,0.8) convergence %v ≤ Reno %v", gentle, reno)
	}
}

func TestFastUtilizationAIMDScoresA(t *testing.T) {
	for _, a := range []float64{1, 2} {
		got, err := FastUtilization(protocol.NewAIMD(a, 0.5), fastOpt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-a) > 0.05 {
			t.Fatalf("AIMD(%v,0.5) fast-utilization = %v, want ≈ %v", a, got, a)
		}
	}
}

func TestFastUtilizationMIMDExplodes(t *testing.T) {
	// MIMD is ∞-fast-utilizing: its empirical score grows without bound
	// in the horizon. Check both the level and the growth.
	at2k, err := FastUtilization(protocol.Scalable(), Options{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	at4k, err := FastUtilization(protocol.Scalable(), Options{Steps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if at2k < 3 {
		t.Fatalf("MIMD fast-utilization at 2k steps = %v, want > AIMD's 1", at2k)
	}
	if at4k < 50*at2k {
		t.Fatalf("MIMD score did not explode with horizon: %v -> %v", at2k, at4k)
	}
}

func TestFastUtilizationBinomialKPositiveVanishes(t *testing.T) {
	// Table 1: BIN is <0>-fast-utilizing for k > 0.
	got, err := FastUtilization(protocol.IIAD(), fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.1 {
		t.Fatalf("IIAD fast-utilization = %v, want ≈ 0", got)
	}
}

func TestRobustnessScores(t *testing.T) {
	// Plain AIMD collapses under any constant loss: 0-robust.
	renoOK, err := RobustTo(protocol.Reno(), 0.005, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if renoOK {
		t.Fatal("Reno robust to 0.5% constant loss; should collapse")
	}
	// Robust-AIMD(1, 0.8, 0.02) tolerates 1% and fails at 3%.
	ra := protocol.NewRobustAIMD(1, 0.8, 0.02)
	ok, err := RobustTo(ra, 0.01, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Robust-AIMD(ε=0.02) not robust to 1% loss")
	}
	ok, err = RobustTo(ra, 0.03, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Robust-AIMD(ε=0.02) claimed robust to 3% loss")
	}
}

func TestRobustnessBisection(t *testing.T) {
	// The located threshold for Robust-AIMD(1,0.8,ε) is ≈ ε.
	ra := protocol.NewRobustAIMD(1, 0.8, 0.02)
	got, err := Robustness(ra, 0.5, 2e-3, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.02) > 5e-3 {
		t.Fatalf("Robust-AIMD robustness = %v, want ≈ 0.02", got)
	}
	reno, err := Robustness(protocol.Reno(), 0.5, 2e-3, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if reno != 0 {
		t.Fatalf("Reno robustness = %v, want 0", reno)
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := Robustness(protocol.Reno(), 0, 1e-3, fastOpt); err == nil {
		t.Fatal("maxRate=0 accepted")
	}
	if _, err := Robustness(protocol.Reno(), 0.5, 0, fastOpt); err == nil {
		t.Fatal("tol=0 accepted")
	}
}

func TestTCPFriendlinessRenoVsReno(t *testing.T) {
	// Reno against itself is just fairness: ≈ 1.
	got, err := TCPFriendliness(cap100(), protocol.Reno(), 1, 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.85 || got > 1.2 {
		t.Fatalf("Reno-vs-Reno friendliness = %v, want ≈ 1", got)
	}
}

func TestTCPFriendlinessHierarchy(t *testing.T) {
	// The Table 2 story: Robust-AIMD is markedly friendlier to Reno than
	// PCC, and both are less friendly than Reno itself.
	ra, err := TCPFriendliness(cap100(), protocol.NewRobustAIMD(1, 0.8, 0.01), 1, 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	pcc, err := TCPFriendliness(cap100(), protocol.DefaultPCC(), 1, 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ra <= pcc {
		t.Fatalf("R-AIMD friendliness %v ≤ PCC %v; Table 2 trend violated", ra, pcc)
	}
}

func TestTCPFriendlinessScalableAggressive(t *testing.T) {
	got, err := TCPFriendliness(cap100(), protocol.Scalable(), 1, 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.5 {
		t.Fatalf("Scalable friendliness = %v, want ≪ 1", got)
	}
}

func TestFriendlinessValidation(t *testing.T) {
	if _, err := Friendliness(cap100(), protocol.Reno(), protocol.Reno(), 0, 1, fastOpt); err == nil {
		t.Fatal("nP=0 accepted")
	}
}

func TestLatencyAvoidanceVegasVsReno(t *testing.T) {
	// Vegas keeps at most β packets queued; Reno fills the buffer and
	// triggers timeouts. On a large link Vegas's inflation is near 0.
	bigLink := fluid.Config{
		Bandwidth: 1000 / 0.042,
		PropDelay: 0.021,
		Buffer:    200,
	}
	vegas, err := LatencyAvoidance(bigLink, protocol.DefaultVegas(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	reno, err := LatencyAvoidance(bigLink, protocol.Reno(), 1, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if vegas > 0.1 {
		t.Fatalf("Vegas latency inflation = %v, want ≈ 0", vegas)
	}
	if reno <= vegas {
		t.Fatalf("Reno latency %v ≤ Vegas %v", reno, vegas)
	}
}

func TestCharacterizeReno(t *testing.T) {
	s, err := Characterize(cap100(), protocol.Reno(), 2, Options{Steps: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if s.Efficiency < 0.5 || s.Efficiency > 1 {
		t.Errorf("efficiency = %v", s.Efficiency)
	}
	if math.Abs(s.FastUtilization-1) > 0.1 {
		t.Errorf("fast-utilization = %v, want ≈ 1", s.FastUtilization)
	}
	if s.Robustness != 0 {
		t.Errorf("robustness = %v, want 0", s.Robustness)
	}
	if s.Fairness < 0.8 {
		t.Errorf("fairness = %v", s.Fairness)
	}
	if s.TCPFriendliness < 0.8 {
		t.Errorf("TCP-friendliness = %v", s.TCPFriendliness)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestCharacterizeSingleSenderFairnessNaN(t *testing.T) {
	s, err := Characterize(cap100(), protocol.Reno(), 1, Options{Steps: 800})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s.Fairness) {
		t.Fatalf("single-sender fairness = %v, want NaN", s.Fairness)
	}
}

func TestDefaultInitConfigs(t *testing.T) {
	cfgs := DefaultInitConfigs(cap100(), 3)
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for _, c := range cfgs {
		if len(c) != 3 {
			t.Fatalf("config width %d, want 3", len(c))
		}
	}
	// The skewed config must actually be skewed.
	skew := cfgs[2]
	if skew[0] <= skew[1] {
		t.Fatalf("skewed config not skewed: %v", skew)
	}
	// Infinite links still produce finite configs.
	inf := DefaultInitConfigs(fluid.Config{Infinite: true, PropDelay: 0.021}, 2)
	for _, c := range inf {
		for _, w := range c {
			if math.IsInf(w, 0) || math.IsNaN(w) {
				t.Fatalf("infinite-link init config contains %v", w)
			}
		}
	}
}
