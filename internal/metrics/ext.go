package metrics

// Extension metrics beyond the paper's eight axioms, following its §6 call
// to "propose and investigate other metrics" (with pointers to RFC 5166's
// catalogue of congestion-control evaluation criteria): convergence time,
// throughput smoothness, and responsiveness to capacity changes. Each is
// parameterized like the §3 axioms so protocols remain comparable points
// in an (extended) metric space.

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// ConvergenceTime estimates how quickly the protocol reaches its long-run
// operating region: the smallest step T such that, for every sender i and
// every t ≥ T, the window stays within a (1±band) envelope of the sender's
// tail mean. It runs the most adversarial default initial configuration
// (maximal skew) and returns the worst case across configurations, in RTT
// steps. A return of -1 means some sender never settles within the
// horizon. Lower is better. band must be in (0, 1).
func ConvergenceTime(cfg fluid.Config, p protocol.Protocol, n int, band float64, opt Options) (int, error) {
	if band <= 0 || band >= 1 {
		return 0, fmt.Errorf("metrics: band must be in (0,1), got %v", band)
	}
	o := opt.withDefaults()
	worst := 0
	for _, init := range o.initConfigs(cfg, n) {
		tr, err := runRecorded(cfg, p, n, init, o)
		if err != nil {
			return 0, err
		}
		t := convergenceStep(tr.Window, tr.Senders(), tr.Len(), band, o.TailFrac)
		if t < 0 {
			return -1, nil
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// convergenceStep finds the earliest step from which every sender's window
// stays inside (1±band) of its tail mean forever (within the trace).
func convergenceStep(window func(int) []float64, senders, length int, band, tailFrac float64) int {
	worst := 0
	for i := 0; i < senders; i++ {
		w := window(i)
		star := stats.Mean(stats.Tail(w, tailFrac))
		if star <= 0 {
			return -1
		}
		lo, hi := star*(1-band), star*(1+band)
		// Scan backwards for the last violation.
		last := -1
		for t := length - 1; t >= 0; t-- {
			if w[t] < lo || w[t] > hi {
				last = t
				break
			}
		}
		if last == length-1 {
			return -1 // still violating at the end
		}
		if last+1 > worst {
			worst = last + 1
		}
	}
	return worst
}

// Smoothness measures the largest relative single-step window reduction a
// sender inflicts on itself in steady state (RFC 5166's smoothness
// criterion): 0.5 for Reno's halving, 0.2 for CUBIC(·, 0.8), near 0 for
// protocols that only ever decrease gently. Lower is smoother.
func Smoothness(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	o := opt.withDefaults()
	worst := 0.0
	for _, init := range o.initConfigs(cfg, n) {
		tr, err := runRecorded(cfg, p, n, init, o)
		if err != nil {
			return 0, err
		}
		for i := 0; i < tr.Senders(); i++ {
			w := stats.Tail(tr.Window(i), o.TailFrac)
			for t := 0; t+1 < len(w); t++ {
				if w[t] <= 0 {
					continue
				}
				if drop := (w[t] - w[t+1]) / w[t]; drop > worst {
					worst = drop
				}
			}
		}
	}
	return worst, nil
}

// Responsiveness measures adaptation to a capacity *increase*: the link's
// bandwidth doubles halfway through the run (spare capacity appears), and
// the score is the number of steps after the jump until the aggregate
// window first reaches utilization frac of the new capacity. Fast-
// utilizing protocols score low; a protocol that stalls scores -1. frac
// must be in (0, 1].
func Responsiveness(cfg fluid.Config, p protocol.Protocol, n int, frac float64, opt Options) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("metrics: frac must be in (0,1], got %v", frac)
	}
	if cfg.Infinite {
		return 0, fmt.Errorf("metrics: responsiveness needs a finite link")
	}
	o := opt.withDefaults()
	jump := o.Steps / 2
	base := cfg.Bandwidth
	sched := cfg
	sched.BandwidthSchedule = func(step int) float64 {
		if step >= jump {
			return 2 * base
		}
		return base
	}
	tr, err := runRecorded(sched, p, n, nil, o)
	if err != nil {
		return 0, err
	}
	target := frac * 2 * base * 2 * cfg.PropDelay // frac of the new C
	for t := jump; t < tr.Len(); t++ {
		if tr.Total()[t] >= target {
			return t - jump, nil
		}
	}
	return -1, nil
}

// ExtScores bundles the extension metrics alongside the standard 8-tuple.
type ExtScores struct {
	ConvergenceTime int     // steps; -1 = never settled
	Smoothness      float64 // worst relative self-inflicted drop
	Responsiveness  int     // steps to claim doubled capacity; -1 = never
}

// CharacterizeExt measures the extension metrics for p with n senders.
// Convergence uses a ±25% band; responsiveness targets 80% of the doubled
// capacity.
//
// Like Characterize, the call deduplicates runs through opt.Session
// (installing a private one unless opt.NoCache is set): ConvergenceTime
// and Smoothness record the same traces, so they simulate once.
// Responsiveness attaches a bandwidth-schedule closure and is therefore
// uncacheable by design. Scores are bit-identical with caching on or off.
func CharacterizeExt(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (ExtScores, error) {
	if opt.Session == nil && !opt.NoCache {
		opt.Session = NewSession()
	}
	var out ExtScores
	var err error
	if out.ConvergenceTime, err = ConvergenceTime(cfg, p, n, 0.25, opt); err != nil {
		return out, err
	}
	if out.Smoothness, err = Smoothness(cfg, p, n, opt); err != nil {
		return out, err
	}
	if out.Responsiveness, err = Responsiveness(cfg, p, n, 0.8, opt); err != nil {
		return out, err
	}
	return out, nil
}

// String renders the extension tuple.
func (s ExtScores) String() string {
	return fmt.Sprintf("convtime=%d smooth=%.3f responsive=%d",
		s.ConvergenceTime, s.Smoothness, s.Responsiveness)
}
