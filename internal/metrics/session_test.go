package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/protocol"
)

// scoresBitsEqual compares two 8-tuples bit for bit (NaN == NaN), which is
// exactly the cache's contract: a cached run must not move any score by
// even one ULP.
func scoresBitsEqual(a, b Scores) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Efficiency, b.Efficiency) &&
		eq(a.FastUtilization, b.FastUtilization) &&
		eq(a.LossAvoidance, b.LossAvoidance) &&
		eq(a.Fairness, b.Fairness) &&
		eq(a.Convergence, b.Convergence) &&
		eq(a.Robustness, b.Robustness) &&
		eq(a.TCPFriendliness, b.TCPFriendliness) &&
		eq(a.LatencyAvoidance, b.LatencyAvoidance)
}

func TestCharacterizeCacheBitIdentical(t *testing.T) {
	cfg := cap100()
	for _, p := range []protocol.Protocol{protocol.Reno(), protocol.CubicLinux()} {
		opt := Options{Steps: 800}
		opt.NoCache = true
		plain, err := Characterize(cfg, p, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.NoCache = false
		opt.Session = NewSession()
		cached, err := Characterize(cfg, p, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !scoresBitsEqual(plain, cached) {
			t.Fatalf("%s: cached scores differ from uncached:\n  uncached %v\n  cached   %v", p.Name(), plain, cached)
		}
		if st := opt.Session.Stats(); st.Hits == 0 {
			t.Fatalf("%s: session saw no cache hits: %+v", p.Name(), st)
		}
	}
}

func TestCharacterizeCacheBitIdenticalWithChaos(t *testing.T) {
	cfg := cap100()
	sched := chaos.BurstyLoss(0.02, 0.3, 0.08)
	opt := Options{Steps: 800, Chaos: sched, ChaosSeed: 7, NoCache: true}
	plain, err := Characterize(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoCache = false
	opt.Session = NewSession()
	cached, err := Characterize(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !scoresBitsEqual(plain, cached) {
		t.Fatalf("cached scores differ under chaos:\n  uncached %v\n  cached   %v", plain, cached)
	}
	// A different chaos seed must not collide with the cached runs.
	opt2 := Options{Steps: 800, Chaos: sched, ChaosSeed: 8, Session: opt.Session}
	other, err := Characterize(cfg, protocol.Reno(), 2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if scoresBitsEqual(cached, other) {
		t.Fatal("distinct chaos seeds produced identical scores — seed is missing from the run key")
	}
}

func TestCharacterizeExtCacheBitIdentical(t *testing.T) {
	cfg := cap100()
	opt := Options{Steps: 800, NoCache: true}
	plain, err := CharacterizeExt(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoCache = false
	opt.Session = NewSession()
	cached, err := CharacterizeExt(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain != cached {
		t.Fatalf("cached ext scores differ: uncached %v cached %v", plain, cached)
	}
	st := opt.Session.Stats()
	if st.Hits == 0 {
		t.Fatalf("ConvergenceTime and Smoothness record identical traces; expected hits, got %+v", st)
	}
	if st.Uncacheable == 0 {
		t.Fatalf("Responsiveness attaches a BandwidthSchedule and must bypass the cache, got %+v", st)
	}
}

func TestCharacterizeSessionDedupStats(t *testing.T) {
	// Reno, n = 2: Efficiency / LossAvoidance / Fairness / Convergence /
	// LatencyAvoidance all need the same 3 streamed runs, and the
	// TCP-friendliness mix (Reno vs Reno) collapses onto them; Robustness
	// quick-exits after one recorded probe and FastUtilization records one
	// more. So 20 requested runs shrink to 5 simulated — a 4× step
	// reduction, comfortably above the 3× acceptance floor.
	opt := Options{Steps: 800, Session: NewSession()}
	if _, err := Characterize(cap100(), protocol.Reno(), 2, opt); err != nil {
		t.Fatal(err)
	}
	st := opt.Session.Stats()
	if st.Misses != 5 || st.Hits != 15 || st.Uncacheable != 0 {
		t.Fatalf("expected 5 misses / 15 hits / 0 uncacheable, got %+v", st)
	}
	ratio := float64(st.StepsSimulated+st.StepsSaved) / float64(st.StepsSimulated)
	if ratio < 3 {
		t.Fatalf("step dedup ratio %.2f < 3×: %+v", ratio, st)
	}

	// A second identical call on the same session is served entirely from
	// cache.
	if _, err := Characterize(cap100(), protocol.Reno(), 2, opt); err != nil {
		t.Fatal(err)
	}
	st2 := opt.Session.Stats()
	if st2.Misses != st.Misses {
		t.Fatalf("second call simulated %d new runs, want 0", st2.Misses-st.Misses)
	}
	if st2.Hits != st.Hits+20 {
		t.Fatalf("second call hit %d times, want 20", st2.Hits-st.Hits)
	}
}

func TestCharacterizeUncacheableFuncProtocol(t *testing.T) {
	// protocol.Func carries no fingerprint, so every run must execute
	// uncached — and still produce the same scores as a NoCache run.
	mk := func() protocol.Protocol {
		return &protocol.Func{
			Label: "custom-aimd",
			Fn: func(fb protocol.Feedback) float64 {
				if fb.Loss > 0 {
					return fb.Window * 0.5
				}
				return fb.Window + 1
			},
		}
	}
	cfg := cap100()
	plain, err := Characterize(cfg, mk(), 2, Options{Steps: 600, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Steps: 600, Session: NewSession()}
	cached, err := Characterize(cfg, mk(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !scoresBitsEqual(plain, cached) {
		t.Fatalf("Func scores differ with a session attached:\n  plain  %v\n  session %v", plain, cached)
	}
	st := opt.Session.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Func runs must bypass the cache entirely, got %+v", st)
	}
	if st.Uncacheable == 0 {
		t.Fatal("uncacheable runs were not counted")
	}
}

func TestSessionConcurrentSharing(t *testing.T) {
	// Many goroutines characterizing the same protocol through one session
	// must single-flight the runs and all observe identical scores.
	opt := Options{Steps: 600, Session: NewSession()}
	cfg := cap100()
	const goroutines = 4
	scores := make([]Scores, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scores[g], errs[g] = Characterize(cfg, protocol.Reno(), 2, opt)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !scoresBitsEqual(scores[0], scores[g]) {
			t.Fatalf("goroutine %d saw different scores:\n  %v\n  %v", g, scores[0], scores[g])
		}
	}
	if st := opt.Session.Stats(); st.Misses != 5 {
		t.Fatalf("concurrent callers re-simulated runs: %+v (want 5 misses)", st)
	}
}

func TestSessionDoBatchClassification(t *testing.T) {
	// One call with a duplicated key, a distinct key, and an uncacheable
	// cell: the duplicate must resolve as a waiter (no self-deadlock, no
	// second simulation), and exec must see exactly the claimed misses
	// plus the uncacheable cell, in index order.
	s := NewSession()
	var calls [][]int
	streams := map[int]*Stream{0: {}, 2: {}, 3: {}}
	exec := func(miss []int) ([]*Stream, error) {
		calls = append(calls, append([]int(nil), miss...))
		out := make([]*Stream, len(miss))
		for j, i := range miss {
			out[j] = streams[i]
		}
		return out, nil
	}
	out, sim, err := s.doBatch([]string{"a", "a", "b", "c"}, []bool{true, true, true, false}, 100, exec)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || len(calls[0]) != 3 || calls[0][0] != 0 || calls[0][1] != 2 || calls[0][2] != 3 {
		t.Fatalf("exec saw %v, want one call with [0 2 3]", calls)
	}
	if out[0] != streams[0] || out[1] != streams[0] || out[2] != streams[2] || out[3] != streams[3] {
		t.Fatal("batch results routed to wrong cells")
	}
	// Simulated flags: claimed misses and the uncacheable cell ran; the
	// waiter on the duplicate key did not.
	if !sim[0] || sim[1] || !sim[2] || !sim[3] {
		t.Fatalf("simulated flags = %v, want [true false true true]", sim)
	}
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Uncacheable != 1 {
		t.Fatalf("expected 2 misses / 1 hit / 1 uncacheable, got %+v", st)
	}
	if st.StepsSimulated != 300 || st.StepsSaved != 100 {
		t.Fatalf("step accounting off: %+v", st)
	}

	// A second batch over the same cacheable keys is all hits.
	out2, sim2, err := s.doBatch([]string{"a", "b"}, []bool{true, true}, 100, func(miss []int) ([]*Stream, error) {
		t.Fatalf("warm batch simulated %v", miss)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out2[0] != streams[0] || out2[1] != streams[2] {
		t.Fatal("warm batch returned wrong streams")
	}
	if sim2[0] || sim2[1] {
		t.Fatalf("warm batch simulated flags = %v, want all false", sim2)
	}
	if st := s.Stats(); st.Hits != 3 {
		t.Fatalf("warm batch should add 2 hits, got %+v", st)
	}
}

func TestSessionDoBatchErrorEvicts(t *testing.T) {
	// A failed batch must not poison the session: the claims are evicted
	// so a retry re-simulates and succeeds.
	s := NewSession()
	boom := errors.New("boom")
	if _, _, err := s.doBatch([]string{"k"}, []bool{true}, 10, func([]int) ([]*Stream, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("got %v, want the exec error", err)
	}
	want := &Stream{}
	out, _, err := s.doBatch([]string{"k"}, []bool{true}, 10, func(miss []int) ([]*Stream, error) {
		return []*Stream{want}, nil
	})
	if err != nil || out[0] != want {
		t.Fatalf("retry after failure: out=%v err=%v", out, err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("failed attempts must not count: %+v", st)
	}
}

func TestRunKeyDistinguishesInputs(t *testing.T) {
	base := cap100()
	protos := []protocol.Protocol{protocol.Reno(), protocol.Reno()}
	o := Options{Steps: 800, TailFrac: 0.75}
	key := func(cfg fluid.Config, init []float64, o Options, recorded bool) string {
		k, ok := runKey(cfg, protos, init, o, recorded)
		if !ok {
			t.Fatalf("expected cacheable key for %+v", cfg)
		}
		return k
	}
	ref := key(base, []float64{1, 50}, o, false)
	if key(base, []float64{1, 50}, o, false) != ref {
		t.Fatal("identical inputs produced different keys")
	}
	distinct := map[string]string{
		"init":     key(base, []float64{1, 51}, o, false),
		"recorded": key(base, []float64{1, 50}, o, true),
	}
	o2 := o
	o2.Steps = 801
	distinct["steps"] = key(base, []float64{1, 50}, o2, false)
	o3 := o
	o3.TailFrac = 0.8
	distinct["tailfrac"] = key(base, []float64{1, 50}, o3, false)
	cfg2 := base
	cfg2.Bandwidth++
	distinct["bandwidth"] = key(cfg2, []float64{1, 50}, o, false)
	cfg3 := base
	cfg3.Loss = fluid.NewConstantLoss(0.01)
	distinct["loss"] = key(cfg3, []float64{1, 50}, o, false)
	for what, k := range distinct {
		if k == ref {
			t.Fatalf("changing %s did not change the run key", what)
		}
	}

	// Closures kill cacheability.
	cfgSched := base
	cfgSched.BandwidthSchedule = func(int) float64 { return base.Bandwidth }
	if _, ok := runKey(cfgSched, protos, nil, o, false); ok {
		t.Fatal("BandwidthSchedule runs must be uncacheable")
	}
	if _, ok := runKey(base, []protocol.Protocol{&protocol.Func{Fn: func(fb protocol.Feedback) float64 { return fb.Window }}}, nil, o, false); ok {
		t.Fatal("protocol.Func runs must be uncacheable")
	}
}
