package metrics

import (
	"math"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Stream is an engine.Observer that maintains just enough state online to
// score the tail-window axiom estimators, without materializing a full
// *trace.Trace: per-sender window and goodput rings, plus aggregate
// window, RTT, and loss rings, each sized to the run's tail. As long as
// the substrate's Horizon hint was within the ring slack, every accessor
// returns bit-identical values to its *FromTrace counterpart on a
// recorded trace, because the retained tail and the summation order are
// the same.
type Stream struct {
	tailFrac float64
	capacity float64
	baseRTT  float64
	windows  []*stats.Ring
	goodput  []*stats.Ring
	total    *stats.Ring
	rtt      *stats.Ring
	loss     *stats.Ring
	scratch  []float64 // goodput staging for ObserveStrip, grown lazily
}

// horizonSlack absorbs the packet substrate's ±1 tick-count ambiguity
// (and leaves margin for future substrates with fuzzier horizons).
const horizonSlack = 8

// NewStream sizes a streaming observer for a substrate described by meta.
// tailFrac 0 selects DefaultTailFrac.
func NewStream(meta engine.Meta, tailFrac float64) *Stream {
	if tailFrac == 0 {
		tailFrac = DefaultTailFrac
	}
	capGoal := stats.TailLen(meta.Horizon, tailFrac) + horizonSlack
	s := &Stream{
		tailFrac: tailFrac,
		capacity: meta.Capacity,
		baseRTT:  meta.BaseRTT,
		windows:  make([]*stats.Ring, meta.Flows),
		goodput:  make([]*stats.Ring, meta.Flows),
		total:    stats.NewRing(capGoal),
		rtt:      stats.NewRing(capGoal),
		loss:     stats.NewRing(capGoal),
	}
	for i := range s.windows {
		s.windows[i] = stats.NewRing(capGoal)
		s.goodput[i] = stats.NewRing(capGoal)
	}
	return s
}

// Observe implements engine.Observer.
func (s *Stream) Observe(st engine.Step) {
	for i, w := range st.Windows {
		s.windows[i].Push(w)
		g := 0.0
		if st.RTT > 0 {
			g = w * (1 - st.Loss) / st.RTT
		}
		s.goodput[i].Push(g)
	}
	s.total.Push(st.Total)
	s.rtt.Push(st.RTT)
	s.loss.Push(st.Loss)
}

// ObserveStrip implements engine.StripObserver: the grid-batch path
// delivers runs of consecutive steps in one call. Strip.Windows is
// flow-major, so each window ring ingests its flow's contiguous column
// with a single PushSlice; goodput is computed column-at-a-time into a
// reused scratch slice and bulk-pushed the same way. Every ring receives
// exactly the samples, values, and order that repeated Observe calls
// would have pushed — goodput uses the same guarded w·(1−loss)/RTT
// expression — so the resulting stream state is bit-identical.
func (s *Stream) ObserveStrip(st engine.Strip) {
	c := st.Count
	for i := range s.windows {
		s.windows[i].PushSlice(st.Windows[i*c : (i+1)*c])
	}
	if len(s.goodput) > 0 {
		if cap(s.scratch) < c {
			s.scratch = make([]float64, c)
		}
		g := s.scratch[:c]
		for i := range s.goodput {
			col := st.Windows[i*c : (i+1)*c]
			for k := 0; k < c; k++ {
				v := 0.0
				if st.RTT[k] > 0 {
					v = col[k] * (1 - st.Loss[k]) / st.RTT[k]
				}
				g[k] = v
			}
			s.goodput[i].PushSlice(g)
		}
	}
	s.total.PushSlice(st.Totals)
	s.rtt.PushSlice(st.RTT)
	s.loss.PushSlice(st.Loss)
}

// Steps returns the number of samples observed.
func (s *Stream) Steps() int { return s.total.Count() }

// TailFrac returns the tail fraction the stream scores over.
func (s *Stream) TailFrac() float64 { return s.tailFrac }

// TailWindow returns sender i's retained tail-window series, equal to
// stats.Tail of the full series.
func (s *Stream) TailWindow(i int) []float64 { return s.windows[i].LastTail(s.tailFrac) }

// TailTotal returns the retained tail of the aggregate window series X(t).
func (s *Stream) TailTotal() []float64 { return s.total.LastTail(s.tailFrac) }

// TailRTT returns the retained tail of the RTT series.
func (s *Stream) TailRTT() []float64 { return s.rtt.LastTail(s.tailFrac) }

// TailLoss returns the retained tail of the loss-rate series.
func (s *Stream) TailLoss() []float64 { return s.loss.LastTail(s.tailFrac) }

// AvgWindow returns sender i's mean tail window, as trace.AvgWindow.
func (s *Stream) AvgWindow(i int) float64 {
	return stats.Mean(s.windows[i].LastTail(s.tailFrac))
}

// AvgGoodput returns sender i's mean tail goodput, as trace.AvgGoodput.
func (s *Stream) AvgGoodput(i int) float64 {
	return stats.Mean(s.goodput[i].LastTail(s.tailFrac))
}

// Efficiency mirrors EfficiencyFromTrace: min over the tail of X(t)/C.
func (s *Stream) Efficiency() float64 {
	if math.IsInf(s.capacity, 1) || s.capacity <= 0 {
		return 0
	}
	return stats.Min(s.TailTotal()) / s.capacity
}

// LossAvoidance mirrors LossAvoidanceFromTrace: max tail loss rate.
func (s *Stream) LossAvoidance() float64 {
	return stats.Max(s.TailLoss())
}

// Fairness mirrors FairnessFromTrace: min-over-max of mean tail windows.
func (s *Stream) Fairness() float64 {
	avgs := make([]float64, len(s.windows))
	for i := range avgs {
		avgs[i] = s.AvgWindow(i)
	}
	return stats.MinOverMax(avgs)
}

// Convergence mirrors ConvergenceFromTrace: the largest α such that every
// tail sample stays within [αx*, (2−α)x*] of its sender's tail mean x*.
func (s *Stream) Convergence() float64 {
	alpha := 1.0
	for i := range s.windows {
		tail := s.TailWindow(i)
		star := stats.Mean(tail)
		if star <= 0 {
			return 0
		}
		for _, x := range tail {
			r := x / star
			a := math.Min(r, 2-r)
			if a < alpha {
				alpha = a
			}
		}
	}
	return math.Max(alpha, 0)
}

// LatencyAvoidance mirrors LatencyAvoidanceFromTrace: max tail RTT
// inflation over the base RTT.
func (s *Stream) LatencyAvoidance() float64 {
	if s.baseRTT <= 0 {
		return math.NaN()
	}
	return math.Max(0, stats.Max(s.TailRTT())/s.baseRTT-1)
}

// Friendliness mirrors FriendlinessFromTrace: the weakest Q-sender's mean
// tail window relative to the strongest P-sender's.
func (s *Stream) Friendliness(pIdx, qIdx []int) float64 {
	if len(pIdx) == 0 || len(qIdx) == 0 {
		return math.NaN()
	}
	worstP := math.Inf(-1)
	for _, i := range pIdx {
		if a := s.AvgWindow(i); a > worstP {
			worstP = a
		}
	}
	worstQ := math.Inf(1)
	for _, j := range qIdx {
		if a := s.AvgWindow(j); a < worstQ {
			worstQ = a
		}
	}
	if worstP <= 0 {
		return 1
	}
	return worstQ / worstP
}
