package metrics

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options controls how the scenario-level estimators realize the axioms'
// quantifiers. The zero value selects sensible defaults.
type Options struct {
	// Steps is the simulation horizon in RTT-sized steps (default 4000).
	Steps int
	// TailFrac is the fraction of the run treated as "from T onwards"
	// (default DefaultTailFrac).
	TailFrac float64
	// InitConfigs are the initial window vectors over which worst cases
	// are taken. Vectors shorter than the sender count are cycled. When
	// empty, DefaultInitConfigs supplies them from the link capacity.
	InitConfigs [][]float64
	// Workers caps the concurrency of the per-init-config runs
	// (0 = GOMAXPROCS, 1 = serial). Results are identical at any worker
	// count: cells are deterministic and collected in input order.
	Workers int
	// Chaos, when non-nil, applies the fault-injection schedule to every
	// run an estimator performs, so axiom scores can be measured under
	// capacity shocks, bursty loss, RTT jitter, or flow churn. Nil leaves
	// every run bit-identical to the unperturbed estimator.
	Chaos *chaos.Schedule
	// ChaosSeed seeds the schedule's randomized components.
	ChaosSeed uint64
	// PropDelay is the one-way propagation delay Θ, in seconds, of the
	// synthetic infinite-capacity links that FastUtilization and
	// Robustness build for their metric-specific scenarios (the finite-link
	// metrics take Θ from cfg). 0 selects DefaultPropDelay.
	PropDelay float64
	// Session, when non-nil, deduplicates simulation runs across estimator
	// calls: runs whose complete inputs fingerprint identically are
	// simulated once and shared (see Session). Characterize and
	// CharacterizeExt install a private Session automatically when none is
	// set; sweeps pass one Session through every cell so cross-cell
	// baselines (e.g. the Reno friendliness comparator) also run once.
	// Cached results are bit-identical to fresh runs.
	Session *Session
	// NoCache disables the automatic Session in Characterize and
	// CharacterizeExt, re-simulating every run. Scores are bit-identical
	// either way; the knob exists for benchmarks and golden tests.
	NoCache bool
}

// DefaultPropDelay is the propagation delay Θ (21 ms, i.e. a 42 ms RTT)
// of the metric-specific infinite-link scenarios. 42 ms is the RTT of the
// paper's reference dumbbell (HotNets-XVI §2 evaluates on a 20 Mbps,
// 42 ms-RTT link), so the single-sender fast-utilization and robustness
// probes see the same feedback delay as the finite-link experiments.
const DefaultPropDelay = 0.021

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 4000
	}
	if o.TailFrac == 0 {
		o.TailFrac = DefaultTailFrac
	}
	if o.PropDelay == 0 {
		o.PropDelay = DefaultPropDelay
	}
	return o
}

// DefaultInitConfigs returns the initial-window vectors the estimators
// exercise when none are supplied: everyone at the floor, everyone at the
// fair share, and a maximally skewed start in which one sender holds the
// whole capacity. The skewed start is what distinguishes protocols that
// *converge* to fairness from protocols that merely *preserve* an equal
// start (MIMD preserves ratios, so it only looks fair from equal starts).
func DefaultInitConfigs(cfg fluid.Config, n int) [][]float64 {
	c := cfg.Capacity()
	if math.IsInf(c, 1) {
		c = 1000
	}
	fair := math.Max(c/float64(n), protocol.MinWindow)
	skew := make([]float64, n)
	for i := range skew {
		skew[i] = protocol.MinWindow
	}
	skew[0] = c
	return [][]float64{
		allOf(n, protocol.MinWindow),
		allOf(n, fair),
		skew,
	}
}

func allOf(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func (o Options) initConfigs(cfg fluid.Config, n int) [][]float64 {
	if len(o.InitConfigs) > 0 {
		return o.InitConfigs
	}
	return DefaultInitConfigs(cfg, n)
}

// streamRuns runs one streaming-observed engine run per initial
// configuration — no trace is materialized — for the given per-sender
// protocol slice (homogeneous estimators pass n copies of one protocol;
// Friendliness passes its mix). Sender slices are built serially up front
// (protocol cloning is not required to be goroutine-safe); the cells that
// actually need simulating then go through engine.SweepSpecs as one grid,
// so kernel-steppable cells advance in lockstep (the SoA batch path)
// while the rest shard across the worker pool per cell. When o.Session is
// set, identical runs are deduplicated through it before the grid is
// built. Results are bit-identical on every path.
func streamRuns(cfg fluid.Config, protos []protocol.Protocol, o Options, inits [][]float64) ([]*Stream, error) {
	subs := make([]*engine.FluidSpec, len(inits))
	keys := make([]string, len(inits))
	cacheable := make([]bool, len(inits))
	for i, init := range inits {
		subs[i] = &engine.FluidSpec{Cfg: cfg, Senders: fluid.MixedSenders(protos, init), Steps: o.Steps}
		keys[i], cacheable[i] = runKey(cfg, protos, init, o, false)
	}
	exec := func(miss []int) ([]*Stream, error) {
		specs := make([]engine.Spec, len(miss))
		streams := make([]*Stream, len(miss))
		for j, i := range miss {
			streams[j] = NewStream(subs[i].Meta(), o.TailFrac)
			specs[j] = engine.Spec{
				Substrate: subs[i],
				Observers: []engine.Observer{streams[j]},
				Chaos:     o.Chaos,
				ChaosSeed: o.ChaosSeed,
			}
		}
		if _, err := engine.SweepSpecs(context.Background(), specs, engine.SweepConfig{Workers: o.Workers}); err != nil {
			return nil, err
		}
		return streams, nil
	}
	if o.Session == nil {
		all := make([]int, len(inits))
		for i := range all {
			all[i] = i
		}
		return exec(all)
	}
	streams, _, err := o.Session.doBatch(keys, cacheable, o.Steps, exec)
	return streams, err
}

// runStreams is streamRuns for n homogeneous p-senders over the default
// (or configured) initial configurations.
func runStreams(cfg fluid.Config, p protocol.Protocol, n int, o Options) ([]*Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fluid: need at least one sender, got %d", n)
	}
	protos := make([]protocol.Protocol, n)
	for i := range protos {
		protos[i] = p
	}
	return streamRuns(cfg, protos, o, o.initConfigs(cfg, n))
}

// Efficiency estimates Metric I for n senders all running p on cfg: the
// worst case over initial configurations of the tail's minimum X(t)/C.
func Efficiency(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	o := opt.withDefaults()
	streams, err := runStreams(cfg, p, n, o)
	if err != nil {
		return 0, err
	}
	worst := math.Inf(1)
	for _, s := range streams {
		if e := s.Efficiency(); e < worst {
			worst = e
		}
	}
	return worst, nil
}

// LossAvoidance estimates Metric III: the worst case over initial
// configurations of the tail's maximum loss rate. Lower is better.
func LossAvoidance(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	o := opt.withDefaults()
	streams, err := runStreams(cfg, p, n, o)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, s := range streams {
		if l := s.LossAvoidance(); l > worst {
			worst = l
		}
	}
	return worst, nil
}

// Fairness estimates Metric IV: the worst case over initial configurations
// of the minimum pairwise ratio of average tail windows.
func Fairness(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("metrics: fairness needs ≥ 2 senders, got %d", n)
	}
	o := opt.withDefaults()
	streams, err := runStreams(cfg, p, n, o)
	if err != nil {
		return 0, err
	}
	worst := math.Inf(1)
	for _, s := range streams {
		if f := s.Fairness(); f < worst {
			worst = f
		}
	}
	return worst, nil
}

// Convergence estimates Metric V: the worst case over initial
// configurations of the tail's containment around each sender's fixed
// point.
func Convergence(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	o := opt.withDefaults()
	streams, err := runStreams(cfg, p, n, o)
	if err != nil {
		return 0, err
	}
	worst := math.Inf(1)
	for _, s := range streams {
		if c := s.Convergence(); c < worst {
			worst = c
		}
	}
	return worst, nil
}

// FastUtilization estimates Metric II by running a single p-sender on an
// infinite-capacity, loss-free link — the regime the metric's definition
// isolates ("does not experience loss, nor increased RTT") — and scoring
// the window-growth sums per FastUtilizationFromSeries. The link's
// propagation delay comes from Options.PropDelay (default
// DefaultPropDelay, the paper's 42 ms reference RTT).
func FastUtilization(p protocol.Protocol, opt Options) (float64, error) {
	o := opt.withDefaults()
	cfg := fluid.Config{Infinite: true, PropDelay: o.PropDelay, MaxWindow: math.Inf(1)}
	tr, err := runRecorded(cfg, p, 1, []float64{protocol.MinWindow}, o)
	if err != nil {
		return 0, err
	}
	return FastUtilizationFromSeries(tr.Window(0)), nil
}

// runRecorded runs n homogeneous senders through the engine with trace
// recording — used by the metrics that need the full window series
// (fast-utilization's growth sums, robustness's slope fit, the extension
// metrics' settle scans) rather than a tail summary. o supplies the
// horizon, the optional chaos schedule, and the optional run-dedup
// Session; cached traces are shared read-only between callers.
func runRecorded(cfg fluid.Config, p protocol.Protocol, n int, init []float64, o Options) (*trace.Trace, error) {
	senders, err := fluid.HomogeneousSenders(p, n, init)
	if err != nil {
		return nil, err
	}
	exec := func() (*trace.Trace, error) {
		res, err := engine.Run(context.Background(), engine.Spec{
			Substrate: &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: o.Steps},
			Record:    true,
			Chaos:     o.Chaos,
			ChaosSeed: o.ChaosSeed,
		})
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	}
	if o.Session == nil {
		return exec()
	}
	protos := make([]protocol.Protocol, n)
	for i := range protos {
		protos[i] = p
	}
	key, cacheable := runKey(cfg, protos, init, o, true)
	if !cacheable {
		tr, err := exec()
		if err == nil {
			o.Session.noteUncacheable(o.Steps)
		}
		return tr, err
	}
	_, tr, err := o.Session.do(key, o.Steps, func() (*Stream, *trace.Trace, error) {
		tr, err := exec()
		return nil, tr, err
	})
	return tr, err
}

// RobustTo reports whether p is robust to constant non-congestion loss of
// rate r (Metric VI): on an infinite-capacity link with loss rate r, the
// window must keep growing past any bound — detected as the final window
// reaching at least half of the loss-free additive growth a 1-MSS/RTT
// prober would achieve, and the last quarter trending upward.
func RobustTo(p protocol.Protocol, r float64, opt Options) (bool, error) {
	o := opt.withDefaults()
	// A finite (huge) cap keeps multiplicative growers — BBRish's startup
	// doubles every step — inside float64 range; 2^1024 would overflow to
	// +Inf and poison the slope fit.
	const cap = 1e12
	cfg := fluid.Config{
		Infinite:  true,
		PropDelay: o.PropDelay,
		MaxWindow: cap,
		Loss:      fluid.NewConstantLoss(r),
	}
	tr, err := runRecorded(cfg, p, 1, []float64{protocol.MinWindow}, o)
	if err != nil {
		return false, err
	}
	w := tr.Window(0)
	last := w[len(w)-1]
	if last < float64(o.Steps)/20 {
		return false, nil
	}
	// Saturating the cap is unambiguous growth; otherwise require an
	// upward trend in the tail.
	if last >= cap/2 {
		return true, nil
	}
	slope, _ := stats.LinearFit(stats.Tail(w, 0.75))
	return slope > 0, nil
}

// Robustness estimates Metric VI's α: the largest constant loss rate the
// protocol tolerates while still utilizing spare capacity, located by
// bisection on [0, maxRate] to within tol. A protocol that collapses under
// any positive loss rate (e.g. plain AIMD) scores 0.
func Robustness(p protocol.Protocol, maxRate, tol float64, opt Options) (float64, error) {
	if maxRate <= 0 || maxRate >= 1 {
		return 0, fmt.Errorf("metrics: maxRate must be in (0,1), got %v", maxRate)
	}
	if tol <= 0 {
		return 0, fmt.Errorf("metrics: tol must be positive, got %v", tol)
	}
	// Quick exit: not robust to even a tiny rate.
	if ok, err := RobustTo(p, tol, opt); err != nil {
		return 0, err
	} else if !ok {
		return 0, nil
	}
	lo, hi := tol, maxRate
	if ok, err := RobustTo(p, maxRate, opt); err != nil {
		return 0, err
	} else if ok {
		return maxRate, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := RobustTo(p, mid, opt)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Friendliness estimates Metric VII: nP senders run p against nQ senders
// running q on cfg; the score is the worst case over initial
// configurations of the weakest q-sender's average tail window relative to
// the strongest p-sender's.
func Friendliness(cfg fluid.Config, p, q protocol.Protocol, nP, nQ int, opt Options) (float64, error) {
	if nP <= 0 || nQ <= 0 {
		return 0, fmt.Errorf("metrics: friendliness needs senders on both sides (nP=%d nQ=%d)", nP, nQ)
	}
	o := opt.withDefaults()
	n := nP + nQ
	protos := make([]protocol.Protocol, 0, n)
	pIdx := make([]int, 0, nP)
	qIdx := make([]int, 0, nQ)
	for i := 0; i < nP; i++ {
		pIdx = append(pIdx, len(protos))
		protos = append(protos, p)
	}
	for i := 0; i < nQ; i++ {
		qIdx = append(qIdx, len(protos))
		protos = append(protos, q)
	}
	streams, err := streamRuns(cfg, protos, o, o.initConfigs(cfg, n))
	if err != nil {
		return 0, err
	}
	worst := math.Inf(1)
	for _, st := range streams {
		if f := st.Friendliness(pIdx, qIdx); f < worst {
			worst = f
		}
	}
	return worst, nil
}

// TCPFriendliness estimates the paper's Metric VII specialization: p's
// friendliness toward AIMD(1, 0.5), i.e. TCP Reno.
func TCPFriendliness(cfg fluid.Config, p protocol.Protocol, nP, nReno int, opt Options) (float64, error) {
	return Friendliness(cfg, p, protocol.Reno(), nP, nReno, opt)
}

// LatencyAvoidance estimates Metric VIII: the worst case over initial
// configurations of the tail's RTT inflation over 2Θ. The metric's
// definition asks for "sufficiently large link capacity and buffer"; pass
// a suitably provisioned cfg. Lower is better.
func LatencyAvoidance(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (float64, error) {
	o := opt.withDefaults()
	streams, err := runStreams(cfg, p, n, o)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, s := range streams {
		if l := s.LatencyAvoidance(); l > worst {
			worst = l
		}
	}
	return worst, nil
}

// Scores is a protocol's empirical position in the paper's 8-dimensional
// metric space.
type Scores struct {
	Efficiency       float64 // Metric I: higher is better
	FastUtilization  float64 // Metric II: higher is better
	LossAvoidance    float64 // Metric III: lower is better
	Fairness         float64 // Metric IV: higher is better
	Convergence      float64 // Metric V: higher is better
	Robustness       float64 // Metric VI: higher is better
	TCPFriendliness  float64 // Metric VII: higher is better
	LatencyAvoidance float64 // Metric VIII: lower is better
}

// String renders the 8-tuple compactly.
func (s Scores) String() string {
	return fmt.Sprintf("eff=%.3f fast=%.3f loss=%.4f fair=%.3f conv=%.3f robust=%.3f tcpf=%.3f lat=%.3f",
		s.Efficiency, s.FastUtilization, s.LossAvoidance, s.Fairness,
		s.Convergence, s.Robustness, s.TCPFriendliness, s.LatencyAvoidance)
}

// Characterize measures all eight metrics for protocol p with n senders on
// cfg, the empirical analogue of one row of the paper's Table 1.
// Fast-utilization and robustness use the metric-specific infinite-link
// scenarios; TCP-friendliness runs one p-sender against one Reno sender.
//
// Unless opt.NoCache is set, the call deduplicates its simulation runs
// through opt.Session (installing a private one when nil): Efficiency,
// LossAvoidance, Fairness, Convergence, and LatencyAvoidance all need the
// same runs, and the TCP-friendliness mix of a Reno-parameterized AIMD
// collapses onto the homogeneous runs, so each unique (config, init) cell
// simulates exactly once. Scores are bit-identical with caching on or off.
func Characterize(cfg fluid.Config, p protocol.Protocol, n int, opt Options) (Scores, error) {
	if opt.Session == nil && !opt.NoCache {
		opt.Session = NewSession()
	}
	var s Scores
	var err error
	if s.Efficiency, err = Efficiency(cfg, p, n, opt); err != nil {
		return s, err
	}
	if s.FastUtilization, err = FastUtilization(p, opt); err != nil {
		return s, err
	}
	if s.LossAvoidance, err = LossAvoidance(cfg, p, n, opt); err != nil {
		return s, err
	}
	if n >= 2 {
		if s.Fairness, err = Fairness(cfg, p, n, opt); err != nil {
			return s, err
		}
	} else {
		s.Fairness = math.NaN()
	}
	if s.Convergence, err = Convergence(cfg, p, n, opt); err != nil {
		return s, err
	}
	if s.Robustness, err = Robustness(p, 0.5, 1e-3, opt); err != nil {
		return s, err
	}
	if s.TCPFriendliness, err = TCPFriendliness(cfg, p, 1, 1, opt); err != nil {
		return s, err
	}
	if s.LatencyAvoidance, err = LatencyAvoidance(cfg, p, n, opt); err != nil {
		return s, err
	}
	return s, nil
}
