package metrics

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/protocol"
)

// RunSet describes the streamed runs one estimator call performs: one
// sender per protocol in Protos on Cfg, over the default (or configured)
// initial-window vectors. Efficiency(cfg, p, n, opt) is {Cfg: cfg,
// Protos: n copies of p}; Friendliness(cfg, p, q, nP, nQ, opt) is
// {Cfg: cfg, Protos: nP ps followed by nQ qs}. The keys Prefetch derives
// are identical to the ones those estimators derive, because both go
// through the same runKey on the same inputs.
type RunSet struct {
	Cfg    fluid.Config
	Protos []protocol.Protocol
}

// Prefetch resolves every streamed run of the given run-sets through
// opt.Session in one batch: all cache misses across all sets reach
// engine.SweepSpecs together, so lockstep-compatible cells (kernelized
// protocols, synchronized feedback) advance as one structure-of-arrays
// block regardless of which estimator call they belong to. Estimator
// calls made afterwards with the same Options and Session are pure
// memory hits.
//
// The returned slice is parallel to sets: simulated[i] is true when at
// least one of set i's runs was actually executed by this call (a cache
// miss or an uncacheable run), false when every run came from the
// session's memory, the persistent store, or a concurrent claimant.
// Explore's cells-simulated accounting — and its warm-store "zero cells"
// property — is measured through these flags.
func Prefetch(sets []RunSet, opt Options) (simulated []bool, err error) {
	o := opt.withDefaults()
	if o.Session == nil {
		return nil, errors.New("metrics: Prefetch requires Options.Session")
	}
	var (
		subs      []*engine.FluidSpec
		keys      []string
		cacheable []bool
		owner     []int
	)
	for si, set := range sets {
		if len(set.Protos) == 0 {
			return nil, fmt.Errorf("metrics: run-set %d has no protocols", si)
		}
		inits := o.initConfigs(set.Cfg, len(set.Protos))
		for _, init := range inits {
			// Sender slices are built serially up front, like streamRuns:
			// protocol cloning is not required to be goroutine-safe.
			subs = append(subs, &engine.FluidSpec{Cfg: set.Cfg, Senders: fluid.MixedSenders(set.Protos, init), Steps: o.Steps})
			k, c := runKey(set.Cfg, set.Protos, init, o, false)
			keys = append(keys, k)
			cacheable = append(cacheable, c)
			owner = append(owner, si)
		}
	}
	exec := func(miss []int) ([]*Stream, error) {
		specs := make([]engine.Spec, len(miss))
		streams := make([]*Stream, len(miss))
		for j, i := range miss {
			streams[j] = NewStream(subs[i].Meta(), o.TailFrac)
			specs[j] = engine.Spec{
				Substrate: subs[i],
				Observers: []engine.Observer{streams[j]},
				Chaos:     o.Chaos,
				ChaosSeed: o.ChaosSeed,
			}
		}
		if _, err := engine.SweepSpecs(context.Background(), specs, engine.SweepConfig{Workers: o.Workers}); err != nil {
			return nil, err
		}
		return streams, nil
	}
	_, flags, err := o.Session.doBatch(keys, cacheable, o.Steps, exec)
	if err != nil {
		return nil, err
	}
	simulated = make([]bool, len(sets))
	for i, f := range flags {
		if f {
			simulated[owner[i]] = true
		}
	}
	return simulated, nil
}
