package metrics

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// synthTrace builds a 2-sender trace with hand-chosen columns.
func synthTrace() *trace.Trace {
	tr := trace.New(2, 100, 0.042, 8)
	// steps 0-3: warmup garbage; steps 4-7 form the tail at TailFrac 0.5.
	tr.Append([]float64{1, 1}, 0.042, 0)
	tr.Append([]float64{5, 50}, 0.042, 0.5)
	tr.Append([]float64{5, 50}, 0.042, 0)
	tr.Append([]float64{5, 50}, 0.042, 0)
	tr.Append([]float64{40, 40}, 0.042, 0)    // X=80, util 0.8
	tr.Append([]float64{50, 40}, 0.050, 0.02) // X=90, util 0.9
	tr.Append([]float64{60, 40}, 0.042, 0)    // X=100, util 1.0
	tr.Append([]float64{50, 40}, 0.084, 0.01) // X=90
	return tr
}

func TestEfficiencyFromTrace(t *testing.T) {
	tr := synthTrace()
	// Tail (steps 4-7) min X/C = 80/100.
	if got := EfficiencyFromTrace(tr, 0.5); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("efficiency = %v, want 0.8", got)
	}
}

func TestEfficiencyInfiniteCapacity(t *testing.T) {
	tr := trace.New(1, math.Inf(1), 0.042, 1)
	tr.Append([]float64{10}, 0.042, 0)
	if got := EfficiencyFromTrace(tr, 0); got != 0 {
		t.Fatalf("infinite-capacity efficiency = %v, want 0", got)
	}
}

func TestLossAvoidanceFromTrace(t *testing.T) {
	tr := synthTrace()
	// Tail max loss = 0.02 (the 0.5 at step 1 is outside the tail).
	if got := LossAvoidanceFromTrace(tr, 0.5); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("loss avoidance = %v, want 0.02", got)
	}
}

func TestFairnessFromTrace(t *testing.T) {
	tr := synthTrace()
	// Tail avgs: sender0 = (40+50+60+50)/4 = 50, sender1 = 40.
	if got := FairnessFromTrace(tr, 0.5); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("fairness = %v, want 0.8", got)
	}
}

func TestConvergenceFromTrace(t *testing.T) {
	// Constant tail converges perfectly.
	tr := trace.New(1, 100, 0.042, 4)
	for i := 0; i < 4; i++ {
		tr.Append([]float64{50}, 0.042, 0)
	}
	if got := ConvergenceFromTrace(tr, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("constant convergence = %v, want 1", got)
	}

	// Tail oscillating 40/60 around x* = 50: min(40/50, 2−60/50) = 0.8.
	tr2 := trace.New(1, 100, 0.042, 4)
	for i := 0; i < 4; i++ {
		w := 40.0
		if i%2 == 1 {
			w = 60
		}
		tr2.Append([]float64{w}, 0.042, 0)
	}
	if got := ConvergenceFromTrace(tr2, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("oscillating convergence = %v, want 0.8", got)
	}
}

func TestConvergenceZeroMean(t *testing.T) {
	tr := trace.New(1, 100, 0.042, 2)
	tr.Append([]float64{0}, 0.042, 0)
	tr.Append([]float64{0}, 0.042, 0)
	if got := ConvergenceFromTrace(tr, 0); got != 0 {
		t.Fatalf("zero-mean convergence = %v, want 0", got)
	}
}

func TestFriendlinessFromTrace(t *testing.T) {
	tr := synthTrace()
	// P = {0}, Q = {1}: tail avg(Q)/avg(P) = 40/50.
	if got := FriendlinessFromTrace(tr, []int{0}, []int{1}, 0.5); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("friendliness = %v, want 0.8", got)
	}
	// Reversed roles: 50/40 = 1.25 (Q outcompetes P).
	if got := FriendlinessFromTrace(tr, []int{1}, []int{0}, 0.5); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("reverse friendliness = %v, want 1.25", got)
	}
	if got := FriendlinessFromTrace(tr, nil, []int{1}, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty P friendliness = %v, want NaN", got)
	}
}

func TestLatencyAvoidanceFromTrace(t *testing.T) {
	tr := synthTrace()
	// Tail max RTT = 0.084 = 2×base ⇒ α = 1.
	if got := LatencyAvoidanceFromTrace(tr, 0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("latency avoidance = %v, want 1", got)
	}
	// A trace pinned at base RTT scores 0.
	tr2 := trace.New(1, 100, 0.042, 2)
	tr2.Append([]float64{10}, 0.042, 0)
	tr2.Append([]float64{10}, 0.042, 0)
	if got := LatencyAvoidanceFromTrace(tr2, 0); got != 0 {
		t.Fatalf("base-RTT latency = %v, want 0", got)
	}
}

func TestFastUtilizationLinearGrowth(t *testing.T) {
	// x(t) = 1 + 2t: AIMD(2,·)'s loss-free trajectory must score ≈ 2.
	w := make([]float64, 2001)
	for t := range w {
		w[t] = 1 + 2*float64(t)
	}
	got := FastUtilizationFromSeries(w)
	if math.Abs(got-2) > 0.01 {
		t.Fatalf("linear growth score = %v, want ≈2", got)
	}
}

func TestFastUtilizationExponentialGrowth(t *testing.T) {
	// x(t) = 1.01^t: MIMD's trajectory; the score must dwarf any AIMD's.
	w := make([]float64, 4001)
	for t := range w {
		w[t] = math.Pow(1.01, float64(t))
	}
	got := FastUtilizationFromSeries(w)
	if got < 100 {
		t.Fatalf("exponential growth score = %v, want ≫ 1", got)
	}
}

func TestFastUtilizationSublinearGrowth(t *testing.T) {
	// x(t) = √(2t): IIAD-style; the score must vanish with the horizon.
	w := make([]float64, 4001)
	for t := range w {
		w[t] = math.Sqrt(2 * float64(t))
	}
	got := FastUtilizationFromSeries(w)
	if got > 0.1 {
		t.Fatalf("sublinear growth score = %v, want ≈ 0", got)
	}
}

func TestFastUtilizationStalledGrowth(t *testing.T) {
	// A frozen window scores 0 (Claim 1's probe after its freeze).
	w := make([]float64, 1001)
	for t := range w {
		w[t] = 50
	}
	if got := FastUtilizationFromSeries(w); got != 0 {
		t.Fatalf("stalled growth score = %v, want 0", got)
	}
}

func TestFastUtilizationShortSeries(t *testing.T) {
	if got := FastUtilizationFromSeries([]float64{1, 2}); !math.IsNaN(got) {
		t.Fatalf("short series score = %v, want NaN", got)
	}
}
