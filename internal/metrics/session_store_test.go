package metrics

import (
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/runstore"
)

func testStore(t *testing.T) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func storeSession(t *testing.T, st *runstore.Store) *Session {
	t.Helper()
	s := NewSession()
	s.SetStore(st)
	return s
}

// TestStoreBitIdentical is the tentpole contract: scores computed through
// the persistent store — cold (write path) and warm (disk-hit path,
// fresh session so memory can't mask it) — are bit-identical to scores
// computed with no caching at all.
func TestStoreBitIdentical(t *testing.T) {
	cfg := cap100()
	st := testStore(t)
	for _, p := range []protocol.Protocol{protocol.Reno(), protocol.CubicLinux()} {
		plain, err := Characterize(cfg, p, 2, Options{Steps: 800, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Characterize(cfg, p, 2, Options{Steps: 800, Session: storeSession(t, st)})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Characterize(cfg, p, 2, Options{Steps: 800, Session: storeSession(t, st)})
		if err != nil {
			t.Fatal(err)
		}
		if !scoresBitsEqual(plain, cold) {
			t.Fatalf("%s: cold store scores differ from uncached:\n  uncached %v\n  store    %v", p.Name(), plain, cold)
		}
		if !scoresBitsEqual(plain, warm) {
			t.Fatalf("%s: warm store scores differ from uncached:\n  uncached %v\n  store    %v", p.Name(), plain, warm)
		}
	}
}

// TestStoreBitIdenticalWithChaos extends the bit-identity contract to
// chaos-schedule runs, whose schedules travel through the run key as
// JSON plus a seed.
func TestStoreBitIdenticalWithChaos(t *testing.T) {
	cfg := cap100()
	st := testStore(t)
	opt := Options{Steps: 800, Chaos: chaos.BurstyLoss(0.02, 0.3, 0.08), ChaosSeed: 7}
	plain, err := Characterize(cfg, protocol.Reno(), 2, Options{Steps: 800, Chaos: opt.Chaos, ChaosSeed: 7, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	opt.Session = storeSession(t, st)
	cold, err := Characterize(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Session = storeSession(t, st)
	warm, err := Characterize(cfg, protocol.Reno(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !scoresBitsEqual(plain, cold) || !scoresBitsEqual(plain, warm) {
		t.Fatalf("chaos scores differ through store:\n  uncached %v\n  cold     %v\n  warm     %v", plain, cold, warm)
	}
	if s := opt.Session.Stats(); s.DiskHits == 0 || s.Misses != 0 {
		t.Fatalf("warm session did not run entirely from disk: %+v", s)
	}
}

// TestStoreWarmSessionSimulatesNothing pins the CI warm-pass assertion:
// a fresh session over a populated store must simulate zero runs.
func TestStoreWarmSessionSimulatesNothing(t *testing.T) {
	cfg := cap100()
	st := testStore(t)
	if _, err := Characterize(cfg, protocol.Reno(), 2, Options{Steps: 800, Session: storeSession(t, st)}); err != nil {
		t.Fatal(err)
	}
	warm := storeSession(t, st)
	if _, err := Characterize(cfg, protocol.Reno(), 2, Options{Steps: 800, Session: warm}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Simulated() != 0 || s.DiskHits == 0 {
		t.Fatalf("warm session simulated %d runs (stats %+v), want 0", s.Simulated(), s)
	}
}

// TestStoreCrossProcessContention hammers one store directory from many
// independent Session instances — separate sessions share no memory, so
// every coordination path they exercise (flock per key, atomic rename,
// checksummed reads) is exactly what distinct OS processes would use.
// Asserts: every unique cell simulates exactly once across all racers
// (losers must come from disk or memory), nothing is corrupt, and all
// scores match the uncached baseline bit for bit.
func TestStoreCrossProcessContention(t *testing.T) {
	cfg := cap100()
	st := testStore(t)
	protos := []protocol.Protocol{protocol.Reno(), protocol.CubicLinux(), protocol.ScalableAIMD()}
	baseline := make([]Scores, len(protos))
	for i, p := range protos {
		s, err := Characterize(cfg, p, 2, Options{Steps: 600, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = s
	}

	const nProcs = 8
	sessions := make([]*Session, nProcs)
	results := make([][]Scores, nProcs)
	var wg sync.WaitGroup
	for pi := 0; pi < nProcs; pi++ {
		sessions[pi] = storeSession(t, st)
		results[pi] = make([]Scores, len(protos))
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			// Each "process" walks the protocols in a different order so
			// the claim/wait interleavings differ.
			for k := 0; k < len(protos); k++ {
				i := (k + pi) % len(protos)
				s, err := Characterize(cfg, protos[i], 2, Options{Steps: 600, Session: sessions[pi]})
				if err != nil {
					t.Error(err)
					return
				}
				results[pi][i] = s
			}
		}(pi)
	}
	wg.Wait()

	for pi := range results {
		for i := range protos {
			if !scoresBitsEqual(results[pi][i], baseline[i]) {
				t.Fatalf("proc %d, %s: contended scores differ from baseline:\n  baseline %v\n  got      %v",
					pi, protos[i].Name(), results[pi][i], baseline[i])
			}
		}
	}

	// Across all sessions each unique run simulated exactly once: total
	// misses equals the misses of a single cold pass.
	coldProbe := storeSession(t, testStore(t))
	for _, p := range protos {
		if _, err := Characterize(cfg, p, 2, Options{Steps: 600, Session: coldProbe}); err != nil {
			t.Fatal(err)
		}
	}
	wantMisses := coldProbe.Stats().Misses
	var misses, diskHits int64
	for _, s := range sessions {
		stats := s.Stats()
		misses += stats.Misses
		diskHits += stats.DiskHits
	}
	if misses != wantMisses {
		t.Fatalf("contended sessions simulated %d runs, want exactly %d (one per unique cell)", misses, wantMisses)
	}
	if diskHits == 0 {
		t.Fatal("no session ever hit the shared store")
	}
	if stats := st.Stats(); stats.Corrupt != 0 {
		t.Fatalf("store reported %d corrupt entries under contention", stats.Corrupt)
	}
}

// TestStoreCodecRoundTrip checks the trace path (recorded runs) through
// the store as well: recorded traces must round-trip bit-identically.
func TestStoreCodecRoundTrip(t *testing.T) {
	cfg := cap100()
	st := testStore(t)
	cold := storeSession(t, st)
	init := []float64{protocol.MinWindow}
	opt := Options{Steps: 400, Session: cold}
	tr1, err := runRecorded(cfg, protocol.Reno(), 2, init, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm := storeSession(t, st)
	opt.Session = warm
	tr2, err := runRecorded(cfg, protocol.Reno(), 2, init, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("recorded run not served from disk: %+v", s)
	}
	if tr1.Len() != tr2.Len() || tr1.Senders() != tr2.Senders() {
		t.Fatalf("restored trace shape differs: %d/%d steps, %d/%d senders", tr1.Len(), tr2.Len(), tr1.Senders(), tr2.Senders())
	}
	for _, pair := range [][2][]float64{
		{tr1.Total(), tr2.Total()},
		{tr1.RTT(), tr2.RTT()},
		{tr1.Loss(), tr2.Loss()},
		{tr1.Window(0), tr2.Window(0)},
		{tr1.Window(1), tr2.Window(1)},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("restored trace differs at sample %d: %v vs %v", i, pair[0][i], pair[1][i])
			}
		}
	}
	if tr1.Capacity() != tr2.Capacity() || tr1.BaseRTT() != tr2.BaseRTT() {
		t.Fatal("restored trace metadata differs")
	}
}

// TestDefaultStoreInherited checks that internally created sessions pick
// up SetDefaultStore, which is what makes experiment regeneration
// incremental without any plumbing.
func TestDefaultStoreInherited(t *testing.T) {
	st := testStore(t)
	SetDefaultStore(st)
	defer SetDefaultStore(nil)
	cfg := cap100()
	// No Session in Options: Characterize builds its own private one,
	// which must inherit the default store.
	if _, err := Characterize(cfg, protocol.Reno(), 2, Options{Steps: 400}); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.Puts == 0 {
		t.Fatalf("internal session did not write to the default store: %+v", stats)
	}
	warm := NewSession() // inherits default store too
	if _, err := Characterize(cfg, protocol.Reno(), 2, Options{Steps: 400, Session: warm}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Simulated() != 0 {
		t.Fatalf("warm run over default store simulated %d cells", s.Simulated())
	}
}

// TestStoreDecodeRejectsGarbage ensures a payload that passes the
// store's checksum but fails structural decoding falls back to
// simulation instead of erroring out.
func TestStoreDecodeRejectsGarbage(t *testing.T) {
	for i, payload := range [][]byte{
		nil,
		{99},
		{codecKindStream, 1, 2, 3},
		{codecKindTrace},
	} {
		if _, _, err := decodeRun(payload, false); err == nil {
			t.Fatalf("payload %d decoded without error", i)
		}
	}
	// Kind mismatch both ways.
	s := NewStream(engine.Meta{Flows: 2, Capacity: 100, BaseRTT: 0.1, Horizon: 100}, 0.75)
	enc := encodeRun(s, nil)
	if _, _, err := decodeRun(enc, true); err == nil {
		t.Fatal("stream payload decoded as trace")
	}
}
