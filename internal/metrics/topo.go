package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/nettopo"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// TopoStream is the engine.Observer that re-states the tail-window axiom
// estimators over multi-bottleneck paths. Where Stream scores against
// the one link every sender shares, a nettopo run has no single C or
// base RTT, so the estimators decompose:
//
//   - Efficiency and Convergence attribute each flow to its own
//     bottleneck — the most-utilized link on its path — and score there.
//   - Fairness and Friendliness are computed per shared link, over
//     exactly the flows that meet on it, and the worst link governs.
//   - LossAvoidance is the worst instantaneous tail loss on any link.
//   - LatencyAvoidance scores each flow's RTT inflation against its own
//     heterogeneous base RTT (path propagation plus ExtraRTT).
//
// State is O(tail): per-flow window/goodput/RTT rings and per-link
// load/loss rings. Like Stream, a TopoStream restored from the
// persistent store is bit-identical to the one the simulation filled.
type TopoStream struct {
	tailFrac float64
	linkCap  []float64 // C_l per link
	paths    [][]int   // link indices per flow
	baseRTT  []float64 // unloaded RTT per flow (path 2Θ sum + ExtraRTT)
	windows  []*stats.Ring
	goodput  []*stats.Ring
	flowRTT  []*stats.Ring
	linkLoad []*stats.Ring
	linkLoss []*stats.Ring
}

// NewTopoStream sizes a streaming observer for a nettopo run: links and
// flows exactly as handed to engine.TopoSpec, the spec's Steps as
// horizon. tailFrac 0 selects DefaultTailFrac.
func NewTopoStream(links []nettopo.LinkSpec, flows []nettopo.FlowSpec, horizon int, tailFrac float64) *TopoStream {
	if tailFrac == 0 {
		tailFrac = DefaultTailFrac
	}
	capGoal := stats.TailLen(horizon, tailFrac) + horizonSlack
	s := &TopoStream{
		tailFrac: tailFrac,
		linkCap:  make([]float64, len(links)),
		paths:    make([][]int, len(flows)),
		baseRTT:  make([]float64, len(flows)),
		windows:  make([]*stats.Ring, len(flows)),
		goodput:  make([]*stats.Ring, len(flows)),
		flowRTT:  make([]*stats.Ring, len(flows)),
		linkLoad: make([]*stats.Ring, len(links)),
		linkLoss: make([]*stats.Ring, len(links)),
	}
	for l, spec := range links {
		s.linkCap[l] = spec.Capacity()
		s.linkLoad[l] = stats.NewRing(capGoal)
		s.linkLoss[l] = stats.NewRing(capGoal)
	}
	for f, spec := range flows {
		s.paths[f] = append([]int(nil), spec.Path...)
		rtt := spec.ExtraRTT
		for _, l := range spec.Path {
			rtt += 2 * links[l].PropDelay
		}
		s.baseRTT[f] = rtt
		s.windows[f] = stats.NewRing(capGoal)
		s.goodput[f] = stats.NewRing(capGoal)
		s.flowRTT[f] = stats.NewRing(capGoal)
	}
	return s
}

// Observe implements engine.Observer; it consumes Step.Topo.
func (s *TopoStream) Observe(st engine.Step) {
	t := st.Topo
	if t == nil {
		return
	}
	for f := range s.windows {
		w := t.Windows[f]
		s.windows[f].Push(w)
		g := 0.0
		if t.FlowRTT[f] > 0 {
			g = w * (1 - t.FlowLoss[f]) / t.FlowRTT[f]
		}
		s.goodput[f].Push(g)
		s.flowRTT[f].Push(t.FlowRTT[f])
	}
	for l := range s.linkLoad {
		s.linkLoad[l].Push(t.LinkLoad[l])
		s.linkLoss[l].Push(t.LinkLoss[l])
	}
}

// Steps returns the number of samples observed.
func (s *TopoStream) Steps() int {
	if len(s.linkLoad) == 0 {
		return 0
	}
	return s.linkLoad[0].Count()
}

// TailFrac returns the tail fraction the stream scores over.
func (s *TopoStream) TailFrac() float64 { return s.tailFrac }

// Flows returns the number of flows observed.
func (s *TopoStream) Flows() int { return len(s.windows) }

// Links returns the number of links observed.
func (s *TopoStream) Links() int { return len(s.linkLoad) }

// TailWindow returns flow f's retained tail-window series.
func (s *TopoStream) TailWindow(f int) []float64 { return s.windows[f].LastTail(s.tailFrac) }

// TailLinkLoss returns link l's retained tail loss-rate series.
func (s *TopoStream) TailLinkLoss(l int) []float64 { return s.linkLoss[l].LastTail(s.tailFrac) }

// AvgWindow returns flow f's mean tail window.
func (s *TopoStream) AvgWindow(f int) float64 {
	return stats.Mean(s.windows[f].LastTail(s.tailFrac))
}

// AvgGoodput returns flow f's mean tail goodput (MSS/s), computed with
// the same guarded w·(1−loss)/RTT samples as multilink.Result.AvgGoodput.
func (s *TopoStream) AvgGoodput(f int) float64 {
	return stats.Mean(s.goodput[f].LastTail(s.tailFrac))
}

// BaseRTT returns flow f's unloaded round-trip time.
func (s *TopoStream) BaseRTT(f int) float64 { return s.baseRTT[f] }

// LinkUtilization returns link l's mean tail load over its capacity.
func (s *TopoStream) LinkUtilization(l int) float64 {
	return stats.Mean(s.linkLoad[l].LastTail(s.tailFrac)) / s.linkCap[l]
}

// BottleneckOf returns flow f's bottleneck: the link on its path with
// the highest mean tail utilization (ties resolve to the earliest hop).
func (s *TopoStream) BottleneckOf(f int) int {
	best, bestUtil := s.paths[f][0], math.Inf(-1)
	for _, l := range s.paths[f] {
		if u := s.LinkUtilization(l); u > bestUtil {
			best, bestUtil = l, u
		}
	}
	return best
}

// Efficiency re-states Metric I per flow: each flow is scored at its
// bottleneck link as the tail minimum of that link's aggregate load over
// capacity (the multi-bottleneck analogue of min X(t)/C), and the worst
// flow governs.
func (s *TopoStream) Efficiency() float64 {
	worst := math.Inf(1)
	for f := range s.paths {
		l := s.BottleneckOf(f)
		if e := stats.Min(s.linkLoad[l].LastTail(s.tailFrac)) / s.linkCap[l]; e < worst {
			worst = e
		}
	}
	if math.IsInf(worst, 1) {
		return 0
	}
	return worst
}

// LossAvoidance re-states Metric III: the maximum instantaneous tail
// loss rate on any link of the topology. Lower is better.
func (s *TopoStream) LossAvoidance() float64 {
	worst := 0.0
	for l := range s.linkLoss {
		if m := stats.Max(s.linkLoss[l].LastTail(s.tailFrac)); m > worst {
			worst = m
		}
	}
	return worst
}

// sharedLinks returns the links traversed by at least two flows,
// together with the flows on each.
func (s *TopoStream) sharedLinks() map[int][]int {
	on := make(map[int][]int)
	for f, path := range s.paths {
		for _, l := range path {
			on[l] = append(on[l], f)
		}
	}
	for l, flows := range on {
		if len(flows) < 2 {
			delete(on, l)
		}
	}
	return on
}

// Fairness re-states Metric IV per shared link: on every link carrying
// two or more flows, the min-over-max ratio of the mean tail windows of
// exactly those flows; the worst shared link governs. NaN when no link
// is shared (fairness is then undefined, as with one sender).
func (s *TopoStream) Fairness() float64 {
	shared := s.sharedLinks()
	if len(shared) == 0 {
		return math.NaN()
	}
	worst := math.Inf(1)
	for _, flows := range shared {
		avgs := make([]float64, len(flows))
		for i, f := range flows {
			avgs[i] = s.AvgWindow(f)
		}
		if r := stats.MinOverMax(avgs); r < worst {
			worst = r
		}
	}
	return worst
}

// Convergence re-states Metric V per flow (each flow's tail containment
// around its own fixed point, exactly as on a single link); the worst
// flow governs.
func (s *TopoStream) Convergence() float64 {
	alpha := 1.0
	for f := range s.windows {
		tail := s.TailWindow(f)
		star := stats.Mean(tail)
		if star <= 0 {
			return 0
		}
		for _, x := range tail {
			r := x / star
			a := math.Min(r, 2-r)
			if a < alpha {
				alpha = a
			}
		}
	}
	return math.Max(alpha, 0)
}

// LatencyAvoidance re-states Metric VIII per flow: each flow's maximum
// tail RTT inflation over its own base RTT (heterogeneous paths score
// against heterogeneous baselines); the worst flow governs. Lower is
// better.
func (s *TopoStream) LatencyAvoidance() float64 {
	worst := 0.0
	for f := range s.flowRTT {
		if s.baseRTT[f] <= 0 {
			return math.NaN()
		}
		infl := math.Max(0, stats.Max(s.flowRTT[f].LastTail(s.tailFrac))/s.baseRTT[f]-1)
		if infl > worst {
			worst = infl
		}
	}
	return worst
}

// Friendliness re-states Metric VII per shared link: on every link where
// at least one P-flow meets at least one Q-flow, the weakest Q's mean
// tail window relative to the strongest P's there; the worst such link
// governs. NaN when P and Q never share a link.
func (s *TopoStream) Friendliness(pIdx, qIdx []int) float64 {
	inP := make(map[int]bool, len(pIdx))
	for _, f := range pIdx {
		inP[f] = true
	}
	inQ := make(map[int]bool, len(qIdx))
	for _, f := range qIdx {
		inQ[f] = true
	}
	worst := math.Inf(1)
	found := false
	for _, flows := range s.sharedLinks() {
		worstP, worstQ := math.Inf(-1), math.Inf(1)
		hasP, hasQ := false, false
		for _, f := range flows {
			a := s.AvgWindow(f)
			if inP[f] {
				hasP = true
				if a > worstP {
					worstP = a
				}
			}
			if inQ[f] {
				hasQ = true
				if a < worstQ {
					worstQ = a
				}
			}
		}
		if !hasP || !hasQ {
			continue
		}
		found = true
		r := 1.0
		if worstP > 0 {
			r = worstQ / worstP
		}
		if r < worst {
			worst = r
		}
	}
	if !found {
		return math.NaN()
	}
	return worst
}

// TopoRunSpec is one complete nettopo simulation request: the topology,
// the horizon, and the knobs that participate in its canonical
// fingerprint. Flows carry their protocols; for the run to be cacheable
// every protocol must implement protocol.Fingerprinter.
type TopoRunSpec struct {
	Links    []nettopo.LinkSpec
	Flows    []nettopo.FlowSpec
	Steps    int     // horizon (default 4000)
	TailFrac float64 // tail fraction baked into the stream (default DefaultTailFrac)

	// Stochastic enables per-flow loss sampling seeded by Seed.
	Stochastic bool
	Seed       uint64

	// Chaos, when non-nil, applies the fault-injection schedule.
	Chaos     *chaos.Schedule
	ChaosSeed uint64

	// Session, when non-nil, deduplicates the run against the in-memory
	// and persistent tiers; nettopo runs honor the same content-addressed
	// contract as every other substrate.
	Session *Session
}

func (t *TopoRunSpec) withDefaults() {
	if t.Steps == 0 {
		t.Steps = 4000
	}
	if t.TailFrac == 0 {
		t.TailFrac = DefaultTailFrac
	}
}

// topoKey builds the canonical content address of a nettopo run. Node
// names are excluded: they constrain validation, never dynamics, so two
// topologies that differ only in labels share their runs. ok is false
// when a protocol lacks a canonical fingerprint.
func topoKey(t *TopoRunSpec) (string, bool) {
	var sb strings.Builder
	sb.WriteString("v1|topo|tf=")
	hexBits(&sb, t.TailFrac)
	sb.WriteString("|steps=")
	sb.WriteString(strconv.Itoa(t.Steps))
	sb.WriteString("|links=")
	for _, l := range t.Links {
		for _, v := range []float64{l.Bandwidth, l.PropDelay, l.Buffer, l.TimeoutRTT} {
			hexBits(&sb, v)
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	if t.Stochastic {
		sb.WriteString("|sl=")
		sb.WriteString(strconv.FormatUint(t.Seed, 16))
	}
	if t.Chaos != nil {
		raw, err := json.Marshal(t.Chaos)
		if err != nil {
			return "", false
		}
		sb.WriteString("|chaos=")
		sb.Write(raw)
		sb.WriteString(";cs=")
		sb.WriteString(strconv.FormatUint(t.ChaosSeed, 16))
	}
	sb.WriteString("|flows=")
	for _, f := range t.Flows {
		fp, ok := f.Proto.(protocol.Fingerprinter)
		if !ok {
			return "", false
		}
		sb.WriteString(fp.Fingerprint())
		sb.WriteByte('@')
		hexBits(&sb, f.Init)
		sb.WriteByte('@')
		hexBits(&sb, f.ExtraRTT)
		sb.WriteByte('@')
		for _, l := range f.Path {
			sb.WriteString(strconv.Itoa(l))
			sb.WriteByte('-')
		}
		sb.WriteByte(';')
	}
	return sb.String(), true
}

// RunTopo executes (or resolves from cache) one streaming-observed
// nettopo run and returns its TopoStream. With a Session set, runs with
// identical canonical fingerprints are single-flighted in memory and
// persisted to the run store, exactly like the fluid substrate's
// streamed runs: a warm store serves the stream without simulating.
func RunTopo(ctx context.Context, t TopoRunSpec) (*TopoStream, error) {
	t.withDefaults()
	exec := func() (*TopoStream, error) {
		var opts []nettopo.Option
		if t.Stochastic {
			opts = append(opts, nettopo.WithStochasticLoss(t.Seed))
		}
		st := NewTopoStream(t.Links, t.Flows, t.Steps, t.TailFrac)
		_, err := engine.Run(ctx, engine.Spec{
			Substrate: &engine.TopoSpec{Links: t.Links, Flows: t.Flows, Opts: opts, Steps: t.Steps},
			Observers: []engine.Observer{st},
			Chaos:     t.Chaos,
			ChaosSeed: t.ChaosSeed,
		})
		if err != nil {
			return nil, err
		}
		return st, nil
	}
	if t.Session == nil {
		return exec()
	}
	key, cacheable := topoKey(&t)
	if !cacheable {
		st, err := exec()
		if err == nil {
			t.Session.noteUncacheable(t.Steps)
		}
		return st, err
	}
	return t.Session.doTopo(key, t.Steps, exec)
}

// TopoScores is a protocol's empirical position in the metric space,
// measured on a multi-bottleneck topology. Efficiency, LossAvoidance,
// Fairness, Convergence, TCPFriendliness, and LatencyAvoidance are the
// per-link/per-bottleneck re-statements computed by TopoStream;
// FastUtilization and Robustness are single-sender probes on the
// metric-specific infinite link (Metrics II and VI isolate the protocol
// from any topology, so their values are inherited unchanged).
type TopoScores struct {
	Efficiency       float64
	FastUtilization  float64
	LossAvoidance    float64
	Fairness         float64
	Convergence      float64
	Robustness       float64
	TCPFriendliness  float64
	LatencyAvoidance float64
}

// String renders the 8-tuple compactly.
func (s TopoScores) String() string {
	return fmt.Sprintf("eff=%.3f fast=%.3f loss=%.4f fair=%.3f conv=%.3f robust=%.3f tcpf=%.3f lat=%.3f",
		s.Efficiency, s.FastUtilization, s.LossAvoidance, s.Fairness,
		s.Convergence, s.Robustness, s.TCPFriendliness, s.LatencyAvoidance)
}

// topoInitConfigs mirrors DefaultInitConfigs on a topology: everyone at
// the floor, everyone at an equal share of the largest link, and a skewed
// start with flow 0 holding that whole capacity.
func topoInitConfigs(links []nettopo.LinkSpec, n int) [][]float64 {
	c := 0.0
	for _, l := range links {
		if lc := l.Capacity(); lc > c {
			c = lc
		}
	}
	fair := math.Max(c/float64(n), protocol.MinWindow)
	skew := make([]float64, n)
	for i := range skew {
		skew[i] = protocol.MinWindow
	}
	skew[0] = c
	return [][]float64{
		allOf(n, protocol.MinWindow),
		allOf(n, fair),
		skew,
	}
}

// CharacterizeTopo measures all eight metrics for a homogeneous
// population of p-flows over the given topology — one multi-bottleneck
// row of the paper's Table 1. Worst cases are taken over the same three
// initial configurations the single-link estimators use (floor, fair
// share, maximally skewed). TCP-friendliness re-runs the topology with
// every flow but the first replaced by Reno and scores flow 0 against
// them per shared link.
func CharacterizeTopo(links []nettopo.LinkSpec, flows []nettopo.FlowSpec, p protocol.Protocol, opt Options) (TopoScores, error) {
	o := opt.withDefaults()
	if opt.Session == nil && !opt.NoCache {
		o.Session = NewSession()
	}
	var s TopoScores
	run := func(fl []nettopo.FlowSpec, init []float64) (*TopoStream, error) {
		withInit := make([]nettopo.FlowSpec, len(fl))
		for i := range fl {
			withInit[i] = fl[i]
			withInit[i].Init = init[i%len(init)]
		}
		return RunTopo(context.Background(), TopoRunSpec{
			Links:     links,
			Flows:     withInit,
			Steps:     o.Steps,
			TailFrac:  o.TailFrac,
			Chaos:     o.Chaos,
			ChaosSeed: o.ChaosSeed,
			Session:   o.Session,
		})
	}
	homogeneous := make([]nettopo.FlowSpec, len(flows))
	for i := range flows {
		homogeneous[i] = flows[i]
		homogeneous[i].Proto = p
	}
	inits := topoInitConfigs(links, len(flows))
	s.Efficiency = math.Inf(1)
	s.Fairness = math.Inf(1)
	s.Convergence = math.Inf(1)
	for _, init := range inits {
		st, err := run(homogeneous, init)
		if err != nil {
			return s, err
		}
		if e := st.Efficiency(); e < s.Efficiency {
			s.Efficiency = e
		}
		if l := st.LossAvoidance(); l > s.LossAvoidance {
			s.LossAvoidance = l
		}
		if f := st.Fairness(); !math.IsNaN(f) && f < s.Fairness {
			s.Fairness = f
		}
		if c := st.Convergence(); c < s.Convergence {
			s.Convergence = c
		}
		if l := st.LatencyAvoidance(); l > s.LatencyAvoidance {
			s.LatencyAvoidance = l
		}
	}
	if math.IsInf(s.Fairness, 1) {
		s.Fairness = math.NaN()
	}

	// Friendliness: flow 0 keeps p, the cross traffic becomes Reno.
	mixed := make([]nettopo.FlowSpec, len(flows))
	pIdx, qIdx := []int{0}, make([]int, 0, len(flows)-1)
	reno := protocol.Reno()
	for i := range flows {
		mixed[i] = flows[i]
		if i == 0 {
			mixed[i].Proto = p
		} else {
			mixed[i].Proto = reno
			qIdx = append(qIdx, i)
		}
	}
	s.TCPFriendliness = math.Inf(1)
	for _, init := range inits {
		st, err := run(mixed, init)
		if err != nil {
			return s, err
		}
		if f := st.Friendliness(pIdx, qIdx); !math.IsNaN(f) && f < s.TCPFriendliness {
			s.TCPFriendliness = f
		}
	}
	if math.IsInf(s.TCPFriendliness, 1) {
		s.TCPFriendliness = math.NaN()
	}

	// Metrics II and VI isolate a single sender on an infinite link; the
	// topology cannot influence them, so the fluid probes apply verbatim.
	var err error
	if s.FastUtilization, err = FastUtilization(p, o); err != nil {
		return s, err
	}
	if s.Robustness, err = Robustness(p, 0.5, 1e-3, o); err != nil {
		return s, err
	}
	return s, nil
}
