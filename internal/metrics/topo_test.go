package metrics

import (
	"context"
	"math"
	"testing"

	"repro/internal/nettopo"
	"repro/internal/protocol"
	"repro/internal/runstore"
)

// topoFixture is a 2-sender incast: two edge links into one narrower
// core, the canonical two-bottleneck shape.
func topoFixture() ([]nettopo.LinkSpec, []nettopo.FlowSpec) {
	theta := 0.021
	edge := nettopo.LinkSpec{Bandwidth: 200 / (2 * theta), PropDelay: theta, Buffer: 20, Src: "s", Dst: "sw"}
	core := nettopo.LinkSpec{Bandwidth: 100 / (2 * theta), PropDelay: theta, Buffer: 20, Src: "sw", Dst: "sink"}
	edge2 := edge
	edge2.Src = "s2"
	links := []nettopo.LinkSpec{edge, edge2, core}
	flows := []nettopo.FlowSpec{
		{Proto: protocol.Reno(), Init: 1, Path: []int{0, 2}},
		{Proto: protocol.Reno(), Init: 40, Path: []int{1, 2}},
	}
	return links, flows
}

func runTopoFixture(t *testing.T, s *Session) *TopoStream {
	t.Helper()
	links, flows := topoFixture()
	st, err := RunTopo(context.Background(), TopoRunSpec{
		Links: links, Flows: flows, Steps: 1200, Session: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTopoStreamEstimators(t *testing.T) {
	st := runTopoFixture(t, nil)
	if st.Steps() != 1200 {
		t.Fatalf("observed %d steps, want 1200", st.Steps())
	}
	// Both flows bottleneck on the shared core (index 2): it is half the
	// edge bandwidth and carries both windows.
	for f := 0; f < 2; f++ {
		if b := st.BottleneckOf(f); b != 2 {
			t.Errorf("flow %d bottleneck = link %d, want core (2)", f, b)
		}
	}
	if e := st.Efficiency(); e <= 0 || e > 1.5 {
		t.Errorf("efficiency %v out of range", e)
	}
	if f := st.Fairness(); math.IsNaN(f) || f <= 0 || f > 1 {
		t.Errorf("fairness %v, want (0,1] for two Renos on a shared core", f)
	}
	if c := st.Convergence(); c < 0 || c > 1 {
		t.Errorf("convergence %v out of [0,1]", c)
	}
	if l := st.LossAvoidance(); l < 0 || l >= 1 {
		t.Errorf("loss avoidance %v out of [0,1)", l)
	}
	if l := st.LatencyAvoidance(); l < 0 {
		t.Errorf("latency avoidance %v negative", l)
	}
	// Same-protocol friendliness on the shared core is well-defined.
	if f := st.Friendliness([]int{0}, []int{1}); math.IsNaN(f) || f <= 0 {
		t.Errorf("friendliness %v, want positive", f)
	}
	// Disjoint P/Q never sharing a link → NaN.
	if f := st.Friendliness([]int{0}, nil); !math.IsNaN(f) {
		t.Errorf("friendliness with empty Q = %v, want NaN", f)
	}
}

func TestTopoFairnessUndefinedWithoutSharing(t *testing.T) {
	theta := 0.021
	link := nettopo.LinkSpec{Bandwidth: 100 / (2 * theta), PropDelay: theta, Buffer: 20}
	st, err := RunTopo(context.Background(), TopoRunSpec{
		Links: []nettopo.LinkSpec{link, link},
		Flows: []nettopo.FlowSpec{
			{Proto: protocol.Reno(), Init: 1, Path: []int{0}},
			{Proto: protocol.Reno(), Init: 1, Path: []int{1}},
		},
		Steps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := st.Fairness(); !math.IsNaN(f) {
		t.Errorf("fairness on disjoint links = %v, want NaN", f)
	}
}

// TestTopoSessionMemoryHit: the second identical run must be served from
// the session without simulating, and hand back the very same stream.
func TestTopoSessionMemoryHit(t *testing.T) {
	s := NewSession()
	a := runTopoFixture(t, s)
	b := runTopoFixture(t, s)
	if a != b {
		t.Fatal("second run did not share the cached stream")
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
}

// TestTopoStoreRoundTrip: a warm persistent store serves the run in a
// fresh session with zero simulations, and every estimator answers
// bit-identically on the decoded stream.
func TestTopoStoreRoundTrip(t *testing.T) {
	store, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSession()
	cold.SetStore(store)
	a := runTopoFixture(t, cold)
	if st := cold.Stats(); st.Misses != 1 {
		t.Fatalf("cold stats = %+v, want 1 miss", st)
	}

	warm := NewSession()
	warm.SetStore(store)
	b := runTopoFixture(t, warm)
	st := warm.Stats()
	if st.Simulated() != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 1 disk hit and 0 simulated", st)
	}

	if a.Steps() != b.Steps() || a.Flows() != b.Flows() || a.Links() != b.Links() {
		t.Fatal("decoded stream shape differs")
	}
	if a.Efficiency() != b.Efficiency() ||
		a.Fairness() != b.Fairness() ||
		a.Convergence() != b.Convergence() ||
		a.LossAvoidance() != b.LossAvoidance() ||
		a.LatencyAvoidance() != b.LatencyAvoidance() ||
		a.Friendliness([]int{0}, []int{1}) != b.Friendliness([]int{0}, []int{1}) {
		t.Fatal("decoded stream estimators differ from the simulated stream")
	}
	for f := 0; f < a.Flows(); f++ {
		if a.AvgWindow(f) != b.AvgWindow(f) || a.AvgGoodput(f) != b.AvgGoodput(f) || a.BaseRTT(f) != b.BaseRTT(f) {
			t.Fatalf("flow %d decoded accessors differ", f)
		}
	}
	for l := 0; l < a.Links(); l++ {
		if a.LinkUtilization(l) != b.LinkUtilization(l) {
			t.Fatalf("link %d decoded utilization differs", l)
		}
	}
}

func TestTopoCodecRejectsCorruption(t *testing.T) {
	st := runTopoFixture(t, nil)
	payload := encodeTopoRun(st)
	if _, err := decodeTopoRun(payload); err != nil {
		t.Fatalf("roundtrip failed: %v", err)
	}
	if _, err := decodeTopoRun(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := decodeTopoRun(payload[:len(payload)-3]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := decodeTopoRun(append(payload, 0)); err == nil {
		t.Error("payload with trailing bytes accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = codecKindStream
	if _, err := decodeTopoRun(bad); err == nil {
		t.Error("wrong payload kind accepted")
	}
}

// TestTopoKeyDistinguishesInputs: the canonical fingerprint must react to
// every dynamics-relevant field and ignore node labels.
func TestTopoKeyDistinguishesInputs(t *testing.T) {
	links, flows := topoFixture()
	base := TopoRunSpec{Links: links, Flows: flows, Steps: 1200}
	base.withDefaults()
	key := func(spec TopoRunSpec) string {
		spec.withDefaults()
		k, ok := topoKey(&spec)
		if !ok {
			t.Fatal("fixture should be cacheable")
		}
		return k
	}
	ref := key(base)

	relabel := base
	relabel.Links = append([]nettopo.LinkSpec(nil), links...)
	relabel.Links[0].Src = "renamed"
	if key(relabel) != ref {
		t.Error("node relabeling changed the key")
	}

	for name, mut := range map[string]func(*TopoRunSpec){
		"steps":      func(s *TopoRunSpec) { s.Steps = 2400 },
		"bandwidth":  func(s *TopoRunSpec) { s.Links = append([]nettopo.LinkSpec(nil), links...); s.Links[2].Bandwidth *= 2 },
		"stochastic": func(s *TopoRunSpec) { s.Stochastic = true; s.Seed = 3 },
		"extra rtt": func(s *TopoRunSpec) {
			s.Flows = append([]nettopo.FlowSpec(nil), flows...)
			s.Flows[0].ExtraRTT = 0.01
		},
		"path": func(s *TopoRunSpec) {
			s.Flows = append([]nettopo.FlowSpec(nil), flows...)
			s.Flows[0].Path = []int{0}
		},
		"init": func(s *TopoRunSpec) {
			s.Flows = append([]nettopo.FlowSpec(nil), flows...)
			s.Flows[0].Init = 2
		},
	} {
		spec := base
		mut(&spec)
		if key(spec) == ref {
			t.Errorf("%s change did not change the key", name)
		}
	}
}

// TestTopoUncacheableProtocol: a protocol without a fingerprint must run
// outside the cache and be counted as uncacheable.
func TestTopoUncacheableProtocol(t *testing.T) {
	links, flows := topoFixture()
	flows[0].Proto = opaqueProto{protocol.Reno()}
	s := NewSession()
	if _, err := RunTopo(context.Background(), TopoRunSpec{
		Links: links, Flows: flows, Steps: 200, Session: s,
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Uncacheable != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want the run counted uncacheable", st)
	}
}

// opaqueProto hides the underlying protocol's Fingerprint method by
// wrapping instead of embedding it.
type opaqueProto struct{ p protocol.Protocol }

func (o opaqueProto) Next(fb protocol.Feedback) float64 { return o.p.Next(fb) }
func (o opaqueProto) LossBased() bool                   { return o.p.LossBased() }
func (o opaqueProto) Name() string                      { return o.p.Name() }
func (o opaqueProto) Clone() protocol.Protocol          { return opaqueProto{o.p.Clone()} }

func TestCharacterizeTopoParkingLot(t *testing.T) {
	theta := 0.021
	link := nettopo.LinkSpec{Bandwidth: 100 / (2 * theta), PropDelay: theta, Buffer: 20}
	links, err := nettopo.LinearChain(3, link)
	if err != nil {
		t.Fatal(err)
	}
	flows := []nettopo.FlowSpec{
		{Path: []int{0, 1, 2}},
		{Path: []int{0}},
		{Path: []int{1}},
		{Path: []int{2}},
	}
	s, err := CharacterizeTopo(links, flows, protocol.Reno(), Options{Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Efficiency <= 0 || s.Efficiency > 1.5 {
		t.Errorf("efficiency %v out of range", s.Efficiency)
	}
	if math.IsNaN(s.Fairness) || s.Fairness <= 0 {
		t.Errorf("fairness %v, want positive (every link is shared)", s.Fairness)
	}
	if s.Convergence < 0 || s.Convergence > 1 {
		t.Errorf("convergence %v out of [0,1]", s.Convergence)
	}
	if math.IsNaN(s.TCPFriendliness) {
		t.Error("TCP friendliness NaN on a shared-path mix")
	}
	if s.FastUtilization <= 0 {
		t.Errorf("fast utilization %v, want positive for Reno", s.FastUtilization)
	}
	if s.Robustness != 0 {
		t.Errorf("robustness %v, want 0 for plain AIMD", s.Robustness)
	}
}
