package metrics

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Binary codec for persisted run results. Floats are serialized as their
// IEEE-754 bit patterns (little-endian uint64), so a decoded run is bit-
// identical to the simulation that produced it — the persistent store
// changes cost, never scores. The layout carries no version field of its
// own: the store's canonical key already folds in a schema version and a
// source hash, so any change here must bump runstore.SchemaVersion.

const (
	codecKindStream byte = 1
	codecKindTrace  byte = 2
	codecKindTopo   byte = 3
)

func putU32(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func putF64s(b []byte, vs []float64) []byte {
	b = putU32(b, len(vs))
	for _, v := range vs {
		b = putF64(b, v)
	}
	return b
}

// decoder is a cursor over an encoded payload; the first decode error
// sticks and every later read returns zero values, so call sites check
// err once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u32() int {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return int(v)
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) f64s() []float64 {
	n := d.u32()
	if d.err != nil || n < 0 || d.off+8*n > len(d.b) {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("metrics: truncated or malformed store payload")
	}
}

func encodeRing(b []byte, r *stats.Ring) []byte {
	b = putU32(b, r.Cap())
	b = putU64(b, uint64(r.Count()))
	return putF64s(b, r.Dump())
}

func (d *decoder) ring() *stats.Ring {
	capacity := d.u32()
	count := d.u64()
	retained := d.f64s()
	if d.err != nil {
		return nil
	}
	if len(retained) > capacity {
		d.fail()
		return nil
	}
	return stats.RestoreRing(capacity, int(count), retained)
}

// encodeRun serializes exactly one of stream or tr (whichever is
// non-nil) into a store payload.
func encodeRun(stream *Stream, tr *trace.Trace) []byte {
	if stream != nil {
		b := make([]byte, 0, 64+8*stream.total.Cap()*(3+2*len(stream.windows)))
		b = append(b, codecKindStream)
		b = putF64(b, stream.tailFrac)
		b = putF64(b, stream.capacity)
		b = putF64(b, stream.baseRTT)
		b = putU32(b, len(stream.windows))
		for i := range stream.windows {
			b = encodeRing(b, stream.windows[i])
			b = encodeRing(b, stream.goodput[i])
		}
		b = encodeRing(b, stream.total)
		b = encodeRing(b, stream.rtt)
		b = encodeRing(b, stream.loss)
		return b
	}
	b := make([]byte, 0, 64+8*tr.Len()*(3+tr.Senders()))
	b = append(b, codecKindTrace)
	b = putF64(b, tr.Capacity())
	b = putF64(b, tr.BaseRTT())
	b = putU32(b, tr.Senders())
	for i := 0; i < tr.Senders(); i++ {
		b = putF64s(b, tr.Window(i))
	}
	b = putF64s(b, tr.RTT())
	b = putF64s(b, tr.Loss())
	b = putF64s(b, tr.Total())
	return b
}

// encodeTopoRun serializes a TopoStream into a store payload. Alongside
// the rings it carries the scoring geometry — link capacities, per-flow
// paths, and base RTTs — so a decoded stream answers every estimator
// without re-deriving the topology.
func encodeTopoRun(s *TopoStream) []byte {
	b := make([]byte, 0, 128)
	b = append(b, codecKindTopo)
	b = putF64(b, s.tailFrac)
	b = putF64s(b, s.linkCap)
	b = putU32(b, len(s.paths))
	for f := range s.paths {
		b = putF64(b, s.baseRTT[f])
		b = putU32(b, len(s.paths[f]))
		for _, l := range s.paths[f] {
			b = putU32(b, l)
		}
	}
	for f := range s.windows {
		b = encodeRing(b, s.windows[f])
		b = encodeRing(b, s.goodput[f])
		b = encodeRing(b, s.flowRTT[f])
	}
	for l := range s.linkLoad {
		b = encodeRing(b, s.linkLoad[l])
		b = encodeRing(b, s.linkLoss[l])
	}
	return b
}

// decodeTopoRun reverses encodeTopoRun.
func decodeTopoRun(payload []byte) (*TopoStream, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("metrics: empty store payload")
	}
	if payload[0] != codecKindTopo {
		return nil, fmt.Errorf("metrics: store payload kind mismatch")
	}
	d := &decoder{b: payload, off: 1}
	s := &TopoStream{
		tailFrac: d.f64(),
		linkCap:  d.f64s(),
	}
	flows := d.u32()
	if d.err != nil || flows < 0 || flows > 1<<20 {
		d.fail()
		return nil, d.err
	}
	s.paths = make([][]int, flows)
	s.baseRTT = make([]float64, flows)
	for f := 0; f < flows; f++ {
		s.baseRTT[f] = d.f64()
		hops := d.u32()
		if d.err != nil || hops < 0 || hops > 1<<20 {
			d.fail()
			return nil, d.err
		}
		s.paths[f] = make([]int, hops)
		for i := range s.paths[f] {
			l := d.u32()
			if l < 0 || l >= len(s.linkCap) {
				d.fail()
				return nil, d.err
			}
			s.paths[f][i] = l
		}
	}
	s.windows = make([]*stats.Ring, flows)
	s.goodput = make([]*stats.Ring, flows)
	s.flowRTT = make([]*stats.Ring, flows)
	for f := 0; f < flows; f++ {
		s.windows[f] = d.ring()
		s.goodput[f] = d.ring()
		s.flowRTT[f] = d.ring()
	}
	s.linkLoad = make([]*stats.Ring, len(s.linkCap))
	s.linkLoss = make([]*stats.Ring, len(s.linkCap))
	for l := range s.linkCap {
		s.linkLoad[l] = d.ring()
		s.linkLoss[l] = d.ring()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("metrics: %d trailing bytes in store payload", len(payload)-d.off)
	}
	return s, nil
}

// decodeRun reverses encodeRun. wantRecorded guards against a key-scheme
// collision ever serving a stream where a trace was asked for (or vice
// versa); in practice the "stream|"/"trace|" key prefixes make the kinds
// disjoint.
func decodeRun(payload []byte, wantRecorded bool) (*Stream, *trace.Trace, error) {
	if len(payload) == 0 {
		return nil, nil, fmt.Errorf("metrics: empty store payload")
	}
	d := &decoder{b: payload, off: 1}
	switch payload[0] {
	case codecKindStream:
		if wantRecorded {
			return nil, nil, fmt.Errorf("metrics: store payload kind mismatch")
		}
		s := &Stream{
			tailFrac: d.f64(),
			capacity: d.f64(),
			baseRTT:  d.f64(),
		}
		flows := d.u32()
		if d.err != nil || flows < 0 || flows > 1<<20 {
			d.fail()
			return nil, nil, d.err
		}
		s.windows = make([]*stats.Ring, flows)
		s.goodput = make([]*stats.Ring, flows)
		for i := 0; i < flows; i++ {
			s.windows[i] = d.ring()
			s.goodput[i] = d.ring()
		}
		s.total = d.ring()
		s.rtt = d.ring()
		s.loss = d.ring()
		if d.err != nil {
			return nil, nil, d.err
		}
		if d.off != len(payload) {
			return nil, nil, fmt.Errorf("metrics: %d trailing bytes in store payload", len(payload)-d.off)
		}
		return s, nil, nil
	case codecKindTrace:
		if !wantRecorded {
			return nil, nil, fmt.Errorf("metrics: store payload kind mismatch")
		}
		capacity := d.f64()
		baseRTT := d.f64()
		n := d.u32()
		if d.err != nil || n < 0 || n > 1<<20 {
			d.fail()
			return nil, nil, d.err
		}
		windows := make([][]float64, n)
		for i := 0; i < n; i++ {
			windows[i] = d.f64s()
		}
		rtt := d.f64s()
		loss := d.f64s()
		total := d.f64s()
		if d.err != nil {
			return nil, nil, d.err
		}
		if d.off != len(payload) {
			return nil, nil, fmt.Errorf("metrics: %d trailing bytes in store payload", len(payload)-d.off)
		}
		if len(rtt) != len(total) || len(loss) != len(total) {
			return nil, nil, fmt.Errorf("metrics: store payload series length mismatch")
		}
		for _, w := range windows {
			if len(w) != len(total) {
				return nil, nil, fmt.Errorf("metrics: store payload series length mismatch")
			}
		}
		return nil, trace.Restore(windows, rtt, loss, total, capacity, baseRTT), nil
	default:
		return nil, nil, fmt.Errorf("metrics: unknown store payload kind %d", payload[0])
	}
}
