package metrics

import (
	"context"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/fluid"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// within asserts |got−want| ≤ 1e-12 (the ISSUE's streaming-equivalence
// budget; in practice the values are bit-identical).
func within(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("%s: stream %v vs trace %v (Δ=%g)", name, got, want, got-want)
	}
}

// TestStreamMatchesTraceEstimatorsFluid runs one fluid simulation with both
// a recording trace and a streaming observer and checks every estimator
// pair agrees.
func TestStreamMatchesTraceEstimatorsFluid(t *testing.T) {
	const steps = 2000
	cfg := fluid.Config{Bandwidth: 1200, PropDelay: 0.05, Buffer: 60}
	protos := []protocol.Protocol{protocol.Reno(), protocol.Reno(), protocol.NewAIMD(2, 0.5)}
	sub := &engine.FluidSpec{Cfg: cfg, Senders: fluid.MixedSenders(protos, nil), Steps: steps}
	st := NewStream(sub.Meta(), DefaultTailFrac)
	res, err := engine.Run(context.Background(), engine.Spec{
		Substrate: sub,
		Record:    true,
		Observers: []engine.Observer{st},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	within(t, "efficiency", st.Efficiency(), EfficiencyFromTrace(tr, DefaultTailFrac))
	within(t, "loss avoidance", st.LossAvoidance(), LossAvoidanceFromTrace(tr, DefaultTailFrac))
	within(t, "fairness", st.Fairness(), FairnessFromTrace(tr, DefaultTailFrac))
	within(t, "convergence", st.Convergence(), ConvergenceFromTrace(tr, DefaultTailFrac))
	within(t, "latency avoidance", st.LatencyAvoidance(), LatencyAvoidanceFromTrace(tr, DefaultTailFrac))
	within(t, "friendliness", st.Friendliness([]int{2}, []int{0, 1}), FriendlinessFromTrace(tr, []int{2}, []int{0, 1}, DefaultTailFrac))
	for i := range protos {
		within(t, "avg window", st.AvgWindow(i), tr.AvgWindow(i, DefaultTailFrac))
		within(t, "avg goodput", st.AvgGoodput(i), tr.AvgGoodput(i, DefaultTailFrac))
	}

	// The retained tails must equal stats.Tail of the recorded series.
	wantTail := stats.Tail(tr.Window(0), DefaultTailFrac)
	gotTail := st.TailWindow(0)
	if len(gotTail) != len(wantTail) {
		t.Fatalf("tail length %d, want %d", len(gotTail), len(wantTail))
	}
	for i := range gotTail {
		if gotTail[i] != wantTail[i] {
			t.Fatalf("tail[%d] = %v, want %v", i, gotTail[i], wantTail[i])
		}
	}
	if st.Steps() != steps {
		t.Fatalf("Steps = %d, want %d", st.Steps(), steps)
	}
}

// TestStreamMatchesTraceEstimatorsPacket does the same over the packet
// substrate, whose tick count is only a hint — the ring slack must absorb
// it.
func TestStreamMatchesTraceEstimatorsPacket(t *testing.T) {
	cfg := packetsim.Config{Bandwidth: 500, PropDelay: 0.02, Buffer: 25, Seed: 3}
	flows := []packetsim.Flow{{Proto: protocol.Reno()}, {Proto: protocol.Reno(), Start: 2}}
	sub := &engine.PacketSpec{Cfg: cfg, Flows: flows, Duration: 60}
	st := NewStream(sub.Meta(), DefaultTailFrac)
	res, err := engine.Run(context.Background(), engine.Spec{
		Substrate: sub,
		Record:    true,
		Observers: []engine.Observer{st},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Packet.Trace

	within(t, "efficiency", st.Efficiency(), EfficiencyFromTrace(tr, DefaultTailFrac))
	within(t, "loss avoidance", st.LossAvoidance(), LossAvoidanceFromTrace(tr, DefaultTailFrac))
	within(t, "fairness", st.Fairness(), FairnessFromTrace(tr, DefaultTailFrac))
	within(t, "convergence", st.Convergence(), ConvergenceFromTrace(tr, DefaultTailFrac))
	within(t, "latency avoidance", st.LatencyAvoidance(), LatencyAvoidanceFromTrace(tr, DefaultTailFrac))
	for i := range flows {
		within(t, "avg window", st.AvgWindow(i), tr.AvgWindow(i, DefaultTailFrac))
	}
	if st.Steps() != tr.Len() {
		t.Fatalf("Steps = %d, want %d", st.Steps(), tr.Len())
	}
}

// TestStreamBatchedMatchesPerCell runs one spec grid through the batched
// sweep path — where Streams ingest whole flow-major strips via
// ObserveStrip and bulk ring copies — and the per-cell path, where the
// same Streams get one Observe per step, and checks every estimator and
// retained tail is bit-identical. 300 steps leaves a partial final strip.
func TestStreamBatchedMatchesPerCell(t *testing.T) {
	build := func() ([]engine.Spec, []*Stream) {
		cfg := fluid.Config{Bandwidth: 1200, PropDelay: 0.05, Buffer: 60}
		protos := []protocol.Protocol{protocol.Reno(), protocol.Scalable(), protocol.IIAD(), protocol.SQRT()}
		inits := []float64{1, 40, 10}
		var specs []engine.Spec
		var streams []*Stream
		for _, p := range protos {
			for _, n := range []int{2, 3} {
				senders, err := fluid.HomogeneousSenders(p, n, inits[:n])
				if err != nil {
					t.Fatal(err)
				}
				sub := &engine.FluidSpec{Cfg: cfg, Senders: senders, Steps: 300}
				st := NewStream(sub.Meta(), DefaultTailFrac)
				specs = append(specs, engine.Spec{Substrate: sub, Observers: []engine.Observer{st}})
				streams = append(streams, st)
			}
		}
		return specs, streams
	}
	specsB, batched := build()
	if _, err := engine.SweepSpecs(context.Background(), specsB, engine.SweepConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	specsP, percell := build()
	if _, err := engine.SweepSpecs(context.Background(), specsP, engine.SweepConfig{Workers: 2, NoBatch: true}); err != nil {
		t.Fatal(err)
	}

	same := func(cell int, name string, got, want float64) {
		t.Helper()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("cell %d %s: batched %v != per-cell %v", cell, name, got, want)
		}
	}
	for c := range batched {
		b, p := batched[c], percell[c]
		if b.Steps() != p.Steps() {
			t.Fatalf("cell %d: steps %d != %d", c, b.Steps(), p.Steps())
		}
		same(c, "efficiency", b.Efficiency(), p.Efficiency())
		same(c, "loss avoidance", b.LossAvoidance(), p.LossAvoidance())
		same(c, "fairness", b.Fairness(), p.Fairness())
		same(c, "convergence", b.Convergence(), p.Convergence())
		same(c, "latency avoidance", b.LatencyAvoidance(), p.LatencyAvoidance())
		tails := [][2][]float64{
			{b.TailTotal(), p.TailTotal()},
			{b.TailRTT(), p.TailRTT()},
			{b.TailLoss(), p.TailLoss()},
		}
		for i := 0; i < len(specsB[c].Substrate.(*engine.FluidSpec).Senders); i++ {
			same(c, "avg window", b.AvgWindow(i), p.AvgWindow(i))
			same(c, "avg goodput", b.AvgGoodput(i), p.AvgGoodput(i))
			tails = append(tails, [2][]float64{b.TailWindow(i), p.TailWindow(i)})
		}
		for j, pair := range tails {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("cell %d tail %d: length %d != %d", c, j, len(pair[0]), len(pair[1]))
			}
			for k := range pair[0] {
				if math.Float64bits(pair[0][k]) != math.Float64bits(pair[1][k]) {
					t.Fatalf("cell %d tail %d sample %d: %v != %v", c, j, k, pair[0][k], pair[1][k])
				}
			}
		}
	}
}

// TestStreamTailLenMatchesStatsTail pins the shared tail-index math.
func TestStreamTailLenMatchesStatsTail(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 100, 4000} {
		for _, f := range []float64{0, 0.5, 0.75, 0.99, 1} {
			xs := make([]float64, n)
			if got, want := stats.TailLen(n, f), len(stats.Tail(xs, f)); got != want {
				t.Fatalf("TailLen(%d, %v) = %d, want %d", n, f, got, want)
			}
		}
	}
}
