package metrics_test

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
)

// ExampleCharacterize scores TCP Reno on the eight axioms of §3.
func ExampleCharacterize() {
	cfg := fluid.Config{
		Bandwidth: fluid.MbpsToMSSps(20),
		PropDelay: 0.021,
		Buffer:    20,
	}
	s, err := metrics.Characterize(cfg, protocol.Reno(), 2, metrics.Options{Steps: 2000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fast-utilization ≈ a: %v\n", s.FastUtilization > 0.9 && s.FastUtilization < 1.1)
	fmt.Printf("fair: %v\n", s.Fairness > 0.85)
	fmt.Printf("0-robust (plain AIMD): %v\n", s.Robustness == 0)
	// Output:
	// fast-utilization ≈ a: true
	// fair: true
	// 0-robust (plain AIMD): true
}
