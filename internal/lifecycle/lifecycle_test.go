package lifecycle

import (
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestExitCode(t *testing.T) {
	if got := exitCode(syscall.SIGTERM); got != 143 {
		t.Fatalf("exitCode(SIGTERM) = %d, want 143", got)
	}
	if got := exitCode(os.Interrupt); got != 130 {
		t.Fatalf("exitCode(SIGINT) = %d, want 130", got)
	}
}

func TestDrainRunsStop(t *testing.T) {
	var calls atomic.Int32
	Drain("testtool", "unit", func() error {
		calls.Add(1)
		return nil
	})
	if calls.Load() != 1 {
		t.Fatalf("stop ran %d times, want 1", calls.Load())
	}
	// nil stop must not panic.
	Drain("testtool", "unit", nil)
}

func TestInstallHandlesSIGTERM(t *testing.T) {
	exited := make(chan int, 1)
	orig := exit
	exit = func(code int) {
		exited <- code
		// Park the handler goroutine: the real os.Exit never returns.
		select {}
	}
	defer func() { exit = orig }()

	stopped := make(chan struct{})
	Install("testtool", func() error {
		close(stopped)
		return nil
	})
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 143 {
			t.Fatalf("exit code %d, want 143", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM handler never exited")
	}
	select {
	case <-stopped:
	default:
		t.Fatal("exit reached before stop ran")
	}
}
