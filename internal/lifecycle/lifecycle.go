// Package lifecycle gives every CLI one clean-exit story for SIGINT
// and SIGTERM. Batch schedulers, CI harnesses, and the axiomd daemon's
// shard supervisor all stop tools with SIGTERM; before this package,
// that path lost everything SIGINT's Ctrl-C path would have lost too —
// unflushed sweep checkpoints and the run record. Install makes both
// signals equivalent: checkpoint what's in flight, flush observability
// artifacts, exit with the conventional 128+signo status.
package lifecycle

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/obs"
)

// exit is indirect so tests can observe the code instead of dying.
var exit = os.Exit

// Install arms a process-wide handler for SIGINT and SIGTERM. On the
// first signal it snapshots every in-flight sweep checkpoint (so a
// `-checkpoint ... -resume` rerun loses at most the cells that were
// mid-simulation), runs stop — the obs flag-set's stop func, which
// writes runrecord.json and closes any profiles — and exits 128+signo.
// A second signal during cleanup force-exits immediately, so a wedged
// flush can never make the process unkillable.
//
// Call it once, after obs.Flags.Start has produced the stop func. stop
// may be nil; it must be safe to call concurrently with the deferred
// call in main (obs stop funcs are idempotent).
func Install(tool string, stop func() error) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		go func() {
			<-ch
			exit(exitCode(sig))
		}()
		fmt.Fprintf(os.Stderr, "%s: %v: flushing checkpoints and run record\n", tool, sig)
		Drain(tool, sig.String(), stop)
		exit(exitCode(sig))
	}()
}

// Drain performs the cleanup half of Install without exiting: note the
// trigger in the flight recorder, snapshot in-flight sweep checkpoints,
// then run stop. The axiomd daemon reuses it on graceful drain, where
// the process keeps serving /healthz while jobs wind down.
func Drain(tool, reason string, stop func() error) {
	obs.NoteEvent("signal", "lifecycle.drain", tool+" "+reason)
	engine.FlushCheckpoints()
	if stop != nil {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		}
	}
}

// exitCode maps a delivered signal to the shell convention 128+signo
// (SIGINT → 130, SIGTERM → 143); anything unrecognized exits 1.
func exitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}
