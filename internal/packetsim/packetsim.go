// Package packetsim is an event-driven, packet-level simulator of a single
// bottleneck link with FIFO (droptail) queuing. It stands in for the
// Emulab testbed of Section 5.1 of "An Axiomatic Approach to Congestion
// Control": the paper validated Table 1's trends and Table 2's
// TCP-friendliness numbers on Emulab with Linux TCP variants; this
// simulator reproduces those experiments with the same protocols
// implemented per the paper's §2 formalization.
//
// Unlike internal/fluid — the paper's synchronized, RTT-quantized model in
// which the axioms are *defined* — packetsim models individual 1-MSS
// packets: serialization at the bottleneck rate, propagation delay in each
// direction, a finite droptail buffer, per-packet ACKs, and per-sender
// monitor intervals (roughly one RTT, as in PCC) that aggregate the
// observed loss rate and average RTT into the protocol feedback of §2.
// Senders are therefore *unsynchronized*: they see different loss rates at
// different times, packets interleave in the queue, and feedback is noisy
// — the realism gap the paper's Emulab experiments were designed to cross.
package packetsim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rand64"
	"repro/internal/trace"
)

// Config describes the emulated bottleneck.
type Config struct {
	Bandwidth float64 // bottleneck rate in MSS/s (> 0)
	PropDelay float64 // one-way propagation delay Θ in seconds (> 0)
	Buffer    int     // droptail buffer in packets (≥ 0), excluding the one in service

	// MaxWindow caps every congestion window (default 1e9).
	MaxWindow float64

	// RandomLoss drops each arriving packet with this probability before
	// it reaches the queue, modeling non-congestion loss the sender
	// cannot distinguish from drops (the PCC motivation scenario).
	RandomLoss float64

	// Tick is the sampling interval for the recorded trace and the
	// minimum monitor-interval length (default 2Θ).
	Tick float64

	// Seed drives the random-loss process deterministically.
	Seed uint64

	// Queue selects the queuing discipline at the bottleneck. nil means
	// the paper's FIFO droptail with the Buffer field as capacity; set a
	// RED value to explore AQM interactions (a §6 extension).
	Queue Discipline

	// DisableTrace skips recording the per-tick *trace.Trace; Result.Trace
	// is nil. Sweeps that consume only Delivered/DeliveredSeries (or a
	// streaming observer) use this to avoid materializing the trace.
	DisableTrace bool

	// Perturb, when non-nil, applies a deterministic fault-injection
	// schedule (typically a compiled chaos.Schedule) while the simulator
	// runs. Schedule time is mapped onto the continuous clock as steps of
	// one Tick each. The nil path is bit-identical to the unperturbed
	// simulator.
	Perturb Perturber

	// DisableRecovery turns off the one-reduction-per-loss-event rule.
	// By default, after a monitor interval in which the protocol reduced
	// its window in response to loss, losses detected during the next
	// interval are not attributed (they belong to the same congested
	// window, as in TCP's fast recovery). Without this rule a single
	// queue-overflow episode spanning several short-RTT monitor
	// intervals triggers several multiplicative decreases, which
	// penalizes short-RTT flows in a way real TCP does not. Disable only
	// for ablation studies.
	DisableRecovery bool
}

func (c Config) withDefaults() Config {
	if c.MaxWindow == 0 {
		c.MaxWindow = 1e9
	}
	if c.Tick == 0 {
		c.Tick = 2 * c.PropDelay
	}
	if c.Queue == nil {
		c.Queue = Droptail{Buffer: c.Buffer}
	}
	return c
}

func (c Config) validate() error {
	if c.Bandwidth <= 0 {
		return fmt.Errorf("packetsim: bandwidth must be positive, got %v", c.Bandwidth)
	}
	if c.PropDelay <= 0 {
		return fmt.Errorf("packetsim: propagation delay must be positive, got %v", c.PropDelay)
	}
	if c.Buffer < 0 {
		return fmt.Errorf("packetsim: buffer must be non-negative, got %d", c.Buffer)
	}
	if c.RandomLoss < 0 || c.RandomLoss >= 1 {
		return fmt.Errorf("packetsim: random loss must be in [0,1), got %v", c.RandomLoss)
	}
	return nil
}

// Capacity returns the bandwidth-delay product B·2Θ in MSS, matching the
// fluid model's C.
func (c Config) Capacity() float64 { return c.Bandwidth * 2 * c.PropDelay }

// Perturber is the fault-injection hook the simulator consults — a
// structural copy of the chaos.Injector method set, so this package
// stays free of chaos imports. The single bottleneck is link 0; steps
// are Tick-sized slices of the simulation clock, queried in
// non-decreasing order.
type Perturber interface {
	CapacityScale(step, link int) float64
	ExtraLoss(step, flow int) float64
	RTTOffset(step, link int) float64
	FlowActive(step, flow int) bool
}

// minPerturbedDelay floors perturbed propagation delays and service
// times so events never schedule into the past.
const minPerturbedDelay = 1e-9

// SampleTick returns the effective trace-sampling interval (Tick, or its
// 2Θ default), so callers can size tick-count-dependent buffers before a
// run.
func (c Config) SampleTick() float64 {
	if c.Tick == 0 {
		return 2 * c.PropDelay
	}
	return c.Tick
}

// Flow is one sender: a protocol, an initial window, and a start time
// (staggered starts model connections joining an occupied link).
type Flow struct {
	Proto protocol.Protocol
	Init  float64 // initial window in packets (default 1)
	Start float64 // seconds after simulation start (default 0)

	// ExtraDelay adds per-flow one-way propagation delay on top of the
	// link's PropDelay, modeling senders at different distances from the
	// bottleneck. RTT-unfairness of loss-based protocols (long-RTT flows
	// ramp slower and lose more ground per loss epoch) emerges from this
	// knob; see the rttfairness example.
	ExtraDelay float64
}

// Result is the outcome of a packet-level run.
type Result struct {
	// Trace samples, once per tick: each sender's current window, the
	// link RTT implied by the instantaneous queue depth (2Θ + q/B), and
	// the link-level loss fraction among packets arriving that tick.
	Trace *trace.Trace
	// Delivered is the total packet count delivered per sender.
	Delivered []int64
	// DeliveredSeries is, per sender, packets delivered during each tick.
	DeliveredSeries [][]float64
	// Duration is the simulated time span in seconds.
	Duration float64
	// TickLen is the sampling interval used, in seconds.
	TickLen float64
}

// TickSample is one trace sample streamed to a RunObserved callback: the
// same per-tick values that would be appended to Result.Trace, plus the
// packets delivered per sender during the tick. Windows and Delivered
// alias internal buffers and are valid only during the callback.
type TickSample struct {
	Index     int       // tick index, 0-based
	Windows   []float64 // per-sender congestion windows
	RTT       float64   // link RTT implied by the queue depth (2Θ + q/B)
	Loss      float64   // loss fraction among packets arriving this tick
	Delivered []float64 // packets delivered per sender this tick
}

// Throughput returns sender i's delivered throughput in MSS/s over the
// tail fraction of the run.
func (r *Result) Throughput(i int, tailFrac float64) float64 {
	series := r.DeliveredSeries[i]
	start := int(tailFrac * float64(len(series)))
	if start >= len(series) {
		start = len(series) - 1
	}
	if start < 0 {
		start = 0
	}
	total := 0.0
	for _, v := range series[start:] {
		total += v
	}
	ticks := len(series) - start
	if ticks == 0 {
		return 0
	}
	return total / (float64(ticks) * r.TickLen)
}

// event kinds, ordered deterministically by (time, id).
type evKind uint8

const (
	evFlowStart evKind = iota
	evQueueArrive
	evQueueDepart
	evAck
	evLossNotify
	evMonitorEnd
	evTick
)

type event struct {
	at     float64
	id     uint64 // insertion order; breaks time ties deterministically
	kind   evKind
	sender int
	sentAt float64 // send timestamp for RTT measurement (evAck)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h eventHeap) PeekTime() float64 { return h[0].at }

// push and pop are container/heap's algorithm on the concrete event type:
// the stdlib interface boxes every event into an `any`, which dominated
// the simulator's allocation profile (two allocations per event). Less is
// a strict total order (time, then insertion id), so pop order — and
// therefore every simulation result — is unchanged.
func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.Less(i, parent) {
			break
		}
		s.Swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s.Swap(0, n)
	e := s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= len(s) {
			break
		}
		m := l
		if r := l + 1; r < len(s) && s.Less(r, l) {
			m = r
		}
		if !s.Less(m, i) {
			break
		}
		s.Swap(i, m)
		i = m
	}
	return e
}

type queuedPacket struct {
	sender int
	sentAt float64
}

type senderState struct {
	proto    protocol.Protocol
	window   float64
	inflight int
	started  bool

	// Monitor-interval accumulators.
	miStep  int
	acked   int64
	lost    int64
	rttSum  float64
	rttCnt  int64
	lastRTT float64

	// extra is the flow's one-way ExtraDelay in seconds.
	extra float64

	// inRecovery suppresses loss attribution for one monitor interval
	// after a loss-driven window reduction (see Config.DisableRecovery).
	inRecovery bool

	// churnOn is the flow's chaos churn state (Config.Perturb only).
	churnOn bool
}

// sim is the running simulation state.
type sim struct {
	cfg    Config
	flows  []Flow
	now    float64
	events eventHeap
	nextID uint64
	rng    *rand64.Source

	senders []senderState
	queue   []queuedPacket // FIFO, includes the packet in service at [0]
	serving bool

	// Per-tick accumulators.
	tickArrivals  int64
	tickDrops     int64
	tickDelivered []float64

	// Streaming observation (RunObserved).
	obs           func(TickSample)
	tickIndex     int
	windowScratch []float64

	result *Result
}

func (s *sim) schedule(at float64, kind evKind, sender int, sentAt float64) {
	s.nextID++
	s.events.push(event{at: at, id: s.nextID, kind: kind, sender: sender, sentAt: sentAt})
}

// Run simulates the flows on the link for duration seconds and returns the
// recorded result.
func Run(cfg Config, flows []Flow, duration float64) (*Result, error) {
	return RunObserved(context.Background(), cfg, flows, duration, nil)
}

// RunObserved is Run with cooperative cancellation and per-tick streaming:
// when obs is non-nil it is called once per trace sample with the same
// values the trace records (plus per-tick deliveries), and the event loop
// aborts with ctx.Err() soon after ctx is done. Combined with
// Config.DisableTrace this lets sweeps consume a run online without
// materializing the full trace.
func RunObserved(ctx context.Context, cfg Config, flows []Flow, duration float64, obs func(TickSample)) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("packetsim: at least one flow required")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("packetsim: duration must be positive, got %v", duration)
	}
	cfg = cfg.withDefaults()

	s := &sim{
		cfg:           cfg,
		flows:         flows,
		rng:           rand64.New(cfg.Seed),
		senders:       make([]senderState, len(flows)),
		tickDelivered: make([]float64, len(flows)),
		obs:           obs,
		windowScratch: make([]float64, len(flows)),
	}
	ticks := int(duration/cfg.Tick) + 1
	s.result = &Result{
		Delivered:       make([]int64, len(flows)),
		DeliveredSeries: make([][]float64, len(flows)),
		Duration:        duration,
		TickLen:         cfg.Tick,
	}
	if !cfg.DisableTrace {
		s.result.Trace = trace.New(len(flows), cfg.Capacity(), 2*cfg.PropDelay, ticks)
	}
	for i, f := range flows {
		if f.Proto == nil {
			return nil, fmt.Errorf("packetsim: flow %d has nil protocol", i)
		}
		init := f.Init
		if init == 0 {
			init = 1
		}
		if f.ExtraDelay < 0 {
			return nil, fmt.Errorf("packetsim: flow %d has negative extra delay", i)
		}
		s.senders[i] = senderState{
			proto:   f.Proto.Clone(),
			window:  protocol.Clamp(init, cfg.MaxWindow),
			lastRTT: 2 * (cfg.PropDelay + f.ExtraDelay),
			extra:   f.ExtraDelay,
		}
		if cfg.Perturb != nil {
			s.senders[i].churnOn = cfg.Perturb.FlowActive(0, i)
		}
		s.schedule(f.Start, evFlowStart, i, 0)
	}
	s.schedule(cfg.Tick, evTick, -1, 0)

	defer s.flushPartialTick()
	var processed uint64
	for s.events.Len() > 0 && s.events.PeekTime() <= duration {
		// A cancellation check per event would dominate the hot loop, so
		// poll the context every few thousand events instead.
		if processed++; processed&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := s.events.pop()
		s.now = e.at
		switch e.kind {
		case evFlowStart:
			st := &s.senders[e.sender]
			st.started = true
			s.schedule(s.now+s.miLen(e.sender), evMonitorEnd, e.sender, 0)
			s.trySend(e.sender)
		case evQueueArrive:
			s.arrive(e.sender, e.sentAt)
		case evQueueDepart:
			s.depart()
		case evAck:
			s.ack(e.sender, e.sentAt)
		case evLossNotify:
			s.lossNotify(e.sender)
		case evMonitorEnd:
			s.monitorEnd(e.sender)
		case evTick:
			s.tick()
			s.schedule(s.now+cfg.Tick, evTick, -1, 0)
		}
	}
	return s.result, nil
}

// miLen returns sender i's current monitor-interval length: its last
// measured RTT, floored at the tick (≈ the base RTT), as in PCC's
// "roughly 1 RTT" intervals.
func (s *sim) miLen(i int) float64 {
	return math.Max(s.senders[i].lastRTT, s.cfg.Tick)
}

// step maps the continuous clock onto chaos schedule steps of one Tick.
func (s *sim) step() int { return int(s.now / s.cfg.Tick) }

// minServiceScale floors the chaos capacity multiplier for service-time
// purposes: a depart is scheduled when service *starts*, so a 1e-9 flap
// scale would strand the in-service packet far beyond the run's end and
// wedge the queue permanently. 1e-3 keeps a flapped link effectively
// dead (drops dominate) while letting service resume after the flap.
const minServiceScale = 1e-3

// serviceTime is the bottleneck's per-packet service time, honoring any
// chaos capacity scale.
func (s *sim) serviceTime() float64 {
	if p := s.cfg.Perturb; p != nil {
		sc := p.CapacityScale(s.step(), 0)
		if sc < minServiceScale {
			sc = minServiceScale
		}
		return math.Max(1/(s.cfg.Bandwidth*sc), minPerturbedDelay)
	}
	return 1 / s.cfg.Bandwidth
}

// trySend emits packets until the sender's window is full.
func (s *sim) trySend(i int) {
	st := &s.senders[i]
	if !st.started {
		return
	}
	if p := s.cfg.Perturb; p != nil {
		on := p.FlowActive(s.step(), i)
		if on && !st.churnOn {
			// Re-arrival mid-run: restart from the initial window with
			// fresh monitor accumulators.
			init := s.flows[i].Init
			if init == 0 {
				init = 1
			}
			st.window = protocol.Clamp(init, s.cfg.MaxWindow)
			st.acked, st.lost, st.rttSum, st.rttCnt = 0, 0, 0, 0
			st.inRecovery = false
		}
		st.churnOn = on
		if !on {
			return // departed: in-flight packets drain, nothing new sent
		}
	}
	for float64(st.inflight) < math.Floor(st.window+1e-9) {
		st.inflight++
		// The packet reaches the bottleneck after the flow's own one-way
		// extra propagation delay.
		s.schedule(s.now+st.extra, evQueueArrive, i, s.now)
	}
}

// returnDelay is the time from the bottleneck back to the sender's
// feedback loop: forward propagation to the receiver plus the ACK's way
// back through both propagation legs.
func (s *sim) returnDelay(sender int) float64 {
	d := 2*s.cfg.PropDelay + s.senders[sender].extra
	if p := s.cfg.Perturb; p != nil {
		d += p.RTTOffset(s.step(), 0)
		if d < minPerturbedDelay {
			d = minPerturbedDelay
		}
	}
	return d
}

// arrive handles a packet reaching the bottleneck queue.
func (s *sim) arrive(sender int, sentAt float64) {
	s.tickArrivals++
	// Non-congestion loss strikes before the queue: the configured rate
	// composed with any scheduled chaos loss, as independent drops.
	drop := s.cfg.RandomLoss
	if p := s.cfg.Perturb; p != nil {
		if r := p.ExtraLoss(s.step(), sender); r > 0 {
			drop = 1 - (1-drop)*(1-r)
		}
	}
	if drop > 0 && s.rng.Bernoulli(drop) {
		s.tickDrops++
		s.schedule(s.now+s.returnDelay(sender), evLossNotify, sender, sentAt)
		return
	}
	// The queuing discipline (droptail by default: Buffer waiting slots
	// plus one in service) decides admission.
	if !s.cfg.Queue.Admit(len(s.queue), s.rng) {
		s.tickDrops++
		s.schedule(s.now+s.returnDelay(sender), evLossNotify, sender, sentAt)
		return
	}
	s.queue = append(s.queue, queuedPacket{sender: sender, sentAt: sentAt})
	if !s.serving {
		s.serving = true
		s.schedule(s.now+s.serviceTime(), evQueueDepart, -1, 0)
	}
}

// depart completes service of the head packet: it is delivered to the
// receiver after the forward propagation delay and its ACK returns after
// the reverse one.
func (s *sim) depart() {
	pkt := s.queue[0]
	s.queue = s.queue[1:]
	s.result.Delivered[pkt.sender]++
	s.tickDelivered[pkt.sender]++
	s.schedule(s.now+s.returnDelay(pkt.sender), evAck, pkt.sender, pkt.sentAt)
	if len(s.queue) > 0 {
		s.schedule(s.now+s.serviceTime(), evQueueDepart, -1, 0)
	} else {
		s.serving = false
	}
}

// ack handles an ACK arriving back at the sender.
func (s *sim) ack(sender int, sentAt float64) {
	st := &s.senders[sender]
	st.inflight--
	st.acked++
	rtt := s.now - sentAt
	st.rttSum += rtt
	st.rttCnt++
	s.trySend(sender)
}

// lossNotify informs the sender that one of its packets was dropped
// (learned through SACK gaps roughly one RTT after the send).
func (s *sim) lossNotify(sender int) {
	st := &s.senders[sender]
	st.inflight--
	if st.inRecovery {
		// The drop belongs to the window that already triggered a
		// reduction; count it as handled (fast-recovery semantics).
		st.acked++
	} else {
		st.lost++
	}
	s.trySend(sender)
}

// monitorEnd closes sender i's monitor interval: the observed loss rate
// and mean RTT feed the §2 protocol update.
func (s *sim) monitorEnd(i int) {
	st := &s.senders[i]
	if p := s.cfg.Perturb; p != nil && !p.FlowActive(s.step(), i) {
		// Departed flow: discard the interval's observations and keep the
		// monitor clock running so a re-arrival picks updates back up.
		st.churnOn = false
		st.acked, st.lost, st.rttSum, st.rttCnt = 0, 0, 0, 0
		s.schedule(s.now+s.miLen(i), evMonitorEnd, i, 0)
		return
	}
	var lossRate float64
	if total := st.acked + st.lost; total > 0 {
		lossRate = float64(st.lost) / float64(total)
	}
	rtt := st.lastRTT
	if st.rttCnt > 0 {
		rtt = st.rttSum / float64(st.rttCnt)
		st.lastRTT = rtt
	}
	next := st.proto.Next(protocol.Feedback{
		Step:   st.miStep,
		Window: st.window,
		RTT:    rtt,
		Loss:   lossRate,
	})
	if math.IsNaN(next) {
		next = protocol.MinWindow
	}
	prev := st.window
	st.window = protocol.Clamp(next, s.cfg.MaxWindow)
	st.inRecovery = !s.cfg.DisableRecovery && lossRate > 0 && st.window < prev
	st.miStep++
	st.acked, st.lost, st.rttSum, st.rttCnt = 0, 0, 0, 0
	s.schedule(s.now+s.miLen(i), evMonitorEnd, i, 0)
	s.trySend(i)
}

// flushPartialTick folds deliveries from the trailing partial sampling
// interval into the last recorded tick so that DeliveredSeries sums to
// Delivered exactly.
func (s *sim) flushPartialTick() {
	for i, v := range s.tickDelivered {
		if v == 0 {
			continue
		}
		series := s.result.DeliveredSeries[i]
		if len(series) > 0 {
			series[len(series)-1] += v
		} else {
			s.result.DeliveredSeries[i] = append(series, v)
		}
		s.tickDelivered[i] = 0
	}
}

// tick samples the link state into the trace and the observer. The
// windows scratch buffer is shared across ticks: Trace.Append copies, and
// observers receive it under the valid-only-during-call contract.
func (s *sim) tick() {
	windows := s.windowScratch
	for i := range s.senders {
		windows[i] = s.senders[i].window
		if s.cfg.Perturb != nil && !s.senders[i].churnOn {
			windows[i] = 0
		}
	}
	rtt := 2*s.cfg.PropDelay + float64(len(s.queue))/s.cfg.Bandwidth
	if p := s.cfg.Perturb; p != nil {
		rtt += p.RTTOffset(s.step(), 0)
		if rtt < minPerturbedDelay {
			rtt = minPerturbedDelay
		}
	}
	var loss float64
	if s.tickArrivals > 0 {
		loss = float64(s.tickDrops) / float64(s.tickArrivals)
	}
	if s.result.Trace != nil {
		s.result.Trace.Append(windows, rtt, loss)
	}
	if s.obs != nil {
		s.obs(TickSample{Index: s.tickIndex, Windows: windows, RTT: rtt, Loss: loss, Delivered: s.tickDelivered})
	}
	s.tickIndex++
	for i := range s.tickDelivered {
		s.result.DeliveredSeries[i] = append(s.result.DeliveredSeries[i], s.tickDelivered[i])
		s.tickDelivered[i] = 0
	}
	s.tickArrivals, s.tickDrops = 0, 0
}
