package packetsim

import (
	"fmt"

	"repro/internal/rand64"
)

// Discipline decides the fate of packets arriving at the bottleneck
// queue. The paper's model fixes FIFO droptail (§2) and defers "more
// expressive queuing policies" to future research (§6); this interface is
// that extension point. Implementations must be deterministic given the
// supplied RNG.
type Discipline interface {
	// Admit reports whether a packet arriving when the queue holds
	// queueLen packets (including the one in service) may enter.
	Admit(queueLen int, rng *rand64.Source) bool
	// Name identifies the discipline in output.
	Name() string
}

// Droptail is the paper's FIFO droptail policy: admit while the buffer
// (plus the single service slot) has room.
type Droptail struct {
	// Buffer is the number of waiting slots τ, excluding the packet in
	// service.
	Buffer int
}

// Admit implements Discipline.
func (d Droptail) Admit(queueLen int, rng *rand64.Source) bool {
	return queueLen < d.Buffer+1
}

// Name implements Discipline.
func (d Droptail) Name() string { return fmt.Sprintf("droptail(%d)", d.Buffer) }

// RED is a Random Early Detection AQM: below MinThresh packets it admits
// everything; between MinThresh and MaxThresh it drops with probability
// rising linearly to MaxP; above MaxThresh it drops everything. The
// instantaneous queue length stands in for RED's EWMA average — adequate
// for the per-RTT dynamics studied here and keeps the discipline
// stateless.
type RED struct {
	MinThresh int     // start of the probabilistic-drop region (≥ 0)
	MaxThresh int     // start of the certain-drop region (> MinThresh)
	MaxP      float64 // drop probability at MaxThresh (0 < MaxP ≤ 1)
	Buffer    int     // hard capacity backstop (≥ MaxThresh)
}

// NewRED returns a RED discipline, panicking on inconsistent thresholds.
func NewRED(minThresh, maxThresh int, maxP float64, buffer int) RED {
	if minThresh < 0 || maxThresh <= minThresh || maxP <= 0 || maxP > 1 || buffer < maxThresh {
		panic(fmt.Sprintf("packetsim: invalid RED(%d,%d,%v,%d)", minThresh, maxThresh, maxP, buffer))
	}
	return RED{MinThresh: minThresh, MaxThresh: maxThresh, MaxP: maxP, Buffer: buffer}
}

// Admit implements Discipline.
func (r RED) Admit(queueLen int, rng *rand64.Source) bool {
	switch {
	case queueLen >= r.Buffer+1:
		return false // hard overflow
	case queueLen >= r.MaxThresh:
		return false
	case queueLen < r.MinThresh:
		return true
	default:
		frac := float64(queueLen-r.MinThresh) / float64(r.MaxThresh-r.MinThresh)
		return !rng.Bernoulli(frac * r.MaxP)
	}
}

// Name implements Discipline.
func (r RED) Name() string {
	return fmt.Sprintf("red(%d,%d,%g)", r.MinThresh, r.MaxThresh, r.MaxP)
}
