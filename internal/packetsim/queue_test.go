package packetsim

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/rand64"
	"repro/internal/stats"
)

func TestDroptailAdmit(t *testing.T) {
	d := Droptail{Buffer: 3}
	rng := rand64.New(1)
	// Buffer 3 + one in service: admits at lengths 0..3, rejects at 4.
	for q := 0; q <= 3; q++ {
		if !d.Admit(q, rng) {
			t.Fatalf("droptail rejected at queue length %d", q)
		}
	}
	if d.Admit(4, rng) {
		t.Fatal("droptail admitted past capacity")
	}
	if d.Name() != "droptail(3)" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestREDRegions(t *testing.T) {
	r := NewRED(5, 15, 0.1, 20)
	rng := rand64.New(1)
	// Below MinThresh: always admit.
	for q := 0; q < 5; q++ {
		if !r.Admit(q, rng) {
			t.Fatalf("RED dropped below MinThresh at %d", q)
		}
	}
	// At/above MaxThresh: always drop.
	for _, q := range []int{15, 18, 21, 30} {
		if r.Admit(q, rng) {
			t.Fatalf("RED admitted at/above MaxThresh at %d", q)
		}
	}
	// In the linear region, the drop rate grows with queue length.
	rate := func(q int) float64 {
		drops := 0
		for i := 0; i < 20000; i++ {
			if !r.Admit(q, rng) {
				drops++
			}
		}
		return float64(drops) / 20000
	}
	low, high := rate(6), rate(14)
	if low >= high {
		t.Fatalf("RED drop rate not increasing: %v at 6 vs %v at 14", low, high)
	}
	// Near MaxThresh the rate approaches MaxP = 0.1.
	if high < 0.05 || high > 0.15 {
		t.Fatalf("RED drop rate near MaxThresh = %v, want ≈ 0.09", high)
	}
}

func TestREDConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewRED(-1, 10, 0.1, 20) },
		func() { NewRED(10, 10, 0.1, 20) },
		func() { NewRED(5, 15, 0, 20) },
		func() { NewRED(5, 15, 1.5, 20) },
		func() { NewRED(5, 15, 0.1, 10) }, // buffer < MaxThresh
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestREDKeepsQueueShorterThanDroptail(t *testing.T) {
	// RED's early drops hold the standing queue below droptail's: the
	// AQM buys latency. Compare tail RTTs for a single Reno flow.
	base := link20()
	base.Seed = 5

	dt := base // droptail 100
	resDT, err := Run(dt, []Flow{{Proto: protocol.Reno(), Init: 1}}, 60)
	if err != nil {
		t.Fatal(err)
	}

	red := base
	red.Queue = NewRED(10, 40, 0.1, 100)
	resRED, err := Run(red, []Flow{{Proto: protocol.Reno(), Init: 1}}, 60)
	if err != nil {
		t.Fatal(err)
	}

	rttDT := stats.Mean(stats.Tail(resDT.Trace.RTT(), 0.5))
	rttRED := stats.Mean(stats.Tail(resRED.Trace.RTT(), 0.5))
	if rttRED >= rttDT {
		t.Fatalf("RED RTT %v ≥ droptail RTT %v; AQM bought no latency", rttRED, rttDT)
	}
	// And throughput stays reasonable (AIMD under RED still utilizes).
	if thr := resRED.Throughput(0, 0.5); thr < 0.5*base.Bandwidth {
		t.Fatalf("RED throughput = %v, want ≥ 50%% of link", thr)
	}
}

func TestREDDeterministicWithSeed(t *testing.T) {
	cfg := link20()
	cfg.Queue = NewRED(10, 40, 0.1, 100)
	cfg.Seed = 11
	flows := []Flow{{Proto: protocol.Reno(), Init: 1}}
	a, err := Run(cfg, flows, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, flows, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered[0] != b.Delivered[0] {
		t.Fatalf("RED runs diverged: %d vs %d", a.Delivered[0], b.Delivered[0])
	}
}

func TestDisableRecoveryAblation(t *testing.T) {
	// With recovery disabled, a multi-MI loss episode triggers repeated
	// halvings: throughput for Reno must not increase.
	on := link20()
	on.Seed = 2
	off := on
	off.DisableRecovery = true
	flows := []Flow{
		{Proto: protocol.Reno(), Init: 1},
		{Proto: protocol.Reno(), Init: 1, ExtraDelay: 0.02},
	}
	resOn, err := Run(on, flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(off, flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The short-RTT flow is the one multi-halving punishes.
	if resOff.Throughput(0, 0.5) > resOn.Throughput(0, 0.5)*1.1 {
		t.Fatalf("disabling recovery helped the short flow: %v > %v",
			resOff.Throughput(0, 0.5), resOn.Throughput(0, 0.5))
	}
}
