package packetsim

import (
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// link20 models the paper's 20 Mbps / 42ms RTT / 100-packet-buffer Emulab
// link: 20 Mbps = 1666.7 MSS/s, Θ = 21 ms, C ≈ 70 MSS.
func link20() Config {
	return Config{
		Bandwidth: 20e6 / 8 / 1500,
		PropDelay: 0.021,
		Buffer:    100,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bandwidth: 0, PropDelay: 0.021, Buffer: 10},
		{Bandwidth: 100, PropDelay: 0, Buffer: 10},
		{Bandwidth: 100, PropDelay: 0.021, Buffer: -1},
		{Bandwidth: 100, PropDelay: 0.021, Buffer: 10, RandomLoss: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, []Flow{{Proto: protocol.Reno()}}, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Run(link20(), nil, 1); err == nil {
		t.Error("empty flow set accepted")
	}
	if _, err := Run(link20(), []Flow{{Proto: nil}}, 1); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Run(link20(), []Flow{{Proto: protocol.Reno()}}, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestCapacityMatchesFluidDefinition(t *testing.T) {
	cfg := link20()
	want := cfg.Bandwidth * 2 * cfg.PropDelay
	if got := cfg.Capacity(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("capacity = %v, want %v", got, want)
	}
}

func TestSingleRenoUtilizesLink(t *testing.T) {
	res, err := Run(link20(), []Flow{{Proto: protocol.Reno(), Init: 1}}, 60)
	if err != nil {
		t.Fatal(err)
	}
	// One Reno flow with a 100-packet buffer on a 70-MSS-BDP link keeps
	// the pipe essentially full: delivered throughput ≥ 80% of bandwidth.
	thr := res.Throughput(0, 0.5)
	if thr < 0.8*link20().Bandwidth {
		t.Fatalf("Reno throughput = %v MSS/s, want ≥ 80%% of %v", thr, link20().Bandwidth)
	}
	// And it cannot exceed the bottleneck.
	if thr > 1.01*link20().Bandwidth {
		t.Fatalf("throughput %v exceeds bottleneck %v", thr, link20().Bandwidth)
	}
}

func TestTwoRenosShareFairly(t *testing.T) {
	flows := []Flow{
		{Proto: protocol.Reno(), Init: 1},
		{Proto: protocol.Reno(), Init: 60},
	}
	res, err := Run(link20(), flows, 120)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Throughput(0, 0.5)
	b := res.Throughput(1, 0.5)
	ratio := math.Min(a, b) / math.Max(a, b)
	if ratio < 0.6 {
		t.Fatalf("Reno/Reno throughput ratio = %v (a=%v b=%v), want ≥ 0.6", ratio, a, b)
	}
	// Combined they still fill the link.
	if a+b < 0.85*link20().Bandwidth {
		t.Fatalf("aggregate throughput %v too low", a+b)
	}
}

func TestScalableStarvesReno(t *testing.T) {
	flows := []Flow{
		{Proto: protocol.Scalable(), Init: 1},
		{Proto: protocol.Reno(), Init: 1},
	}
	res, err := Run(link20(), flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	scal := res.Throughput(0, 0.5)
	reno := res.Throughput(1, 0.5)
	if scal <= reno {
		t.Fatalf("Scalable (%v) did not beat Reno (%v) on the packet link", scal, reno)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := link20()
	cfg.RandomLoss = 0.01
	cfg.Seed = 7
	flows := []Flow{{Proto: protocol.Reno(), Init: 1}}
	r1, err := Run(cfg, flows, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, flows, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delivered[0] != r2.Delivered[0] {
		t.Fatalf("same-seed runs delivered %d vs %d", r1.Delivered[0], r2.Delivered[0])
	}
	for i := 0; i < r1.Trace.Len(); i++ {
		if r1.Trace.Window(0)[i] != r2.Trace.Window(0)[i] {
			t.Fatalf("traces diverged at tick %d", i)
		}
	}
}

func TestRandomLossCollapsesRenoNotRobustAIMD(t *testing.T) {
	// The PCC-motivation scenario at packet granularity. Note the ε
	// choice: with ~1-RTT monitor intervals, a window of w packets
	// quantizes the measurable loss rate to multiples of 1/w, so a single
	// random drop reads as a loss rate of 1/w. For ε-tolerance to engage
	// before quantization bites, the equilibrium window must exceed 1/ε;
	// with 0.5% drops and ε = 5% the barrier sits at 20 packets, well
	// below the link's ~70-packet BDP.
	cfg := link20()
	cfg.RandomLoss = 0.005
	cfg.Seed = 3

	reno, err := Run(cfg, []Flow{{Proto: protocol.Reno(), Init: 1}}, 90)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(cfg, []Flow{{Proto: protocol.NewRobustAIMD(1, 0.8, 0.05), Init: 1}}, 90)
	if err != nil {
		t.Fatal(err)
	}
	renoThr := reno.Throughput(0, 0.5)
	raThr := ra.Throughput(0, 0.5)
	if raThr <= renoThr {
		t.Fatalf("Robust-AIMD (%v) did not beat Reno (%v) under 0.5%% random loss", raThr, renoThr)
	}
	// The PCC-motivation magnitude: Reno loses most of the link.
	if renoThr > 0.5*cfg.Bandwidth {
		t.Fatalf("Reno throughput under 0.5%% loss = %v, expected severe degradation", renoThr)
	}
	if raThr < 0.7*cfg.Bandwidth {
		t.Fatalf("Robust-AIMD throughput under 0.5%% loss = %v, want ≥ 70%% of link", raThr)
	}
}

func TestStaggeredStartConverges(t *testing.T) {
	flows := []Flow{
		{Proto: protocol.Reno(), Init: 1, Start: 0},
		{Proto: protocol.Reno(), Init: 1, Start: 30},
	}
	res, err := Run(link20(), flows, 150)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Throughput(0, 0.7)
	b := res.Throughput(1, 0.7)
	ratio := math.Min(a, b) / math.Max(a, b)
	if ratio < 0.5 {
		t.Fatalf("late joiner got ratio %v (a=%v, b=%v)", ratio, a, b)
	}
}

func TestTraceRTTBounds(t *testing.T) {
	cfg := link20()
	res, err := Run(cfg, []Flow{{Proto: protocol.Reno(), Init: 1}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	base := 2 * cfg.PropDelay
	maxQueueDelay := float64(cfg.Buffer+1) / cfg.Bandwidth
	for i, rtt := range res.Trace.RTT() {
		if rtt < base-1e-9 || rtt > base+maxQueueDelay+1e-9 {
			t.Fatalf("tick %d: RTT %v outside [%v, %v]", i, rtt, base, base+maxQueueDelay)
		}
	}
}

func TestLossFractionsAreRates(t *testing.T) {
	cfg := link20()
	cfg.Buffer = 5 // shallow buffer forces drops
	res, err := Run(cfg, []Flow{{Proto: protocol.Scalable(), Init: 1}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	anyLoss := false
	for i, l := range res.Trace.Loss() {
		if l < 0 || l >= 1 {
			t.Fatalf("tick %d: loss %v outside [0,1)", i, l)
		}
		if l > 0 {
			anyLoss = true
		}
	}
	if !anyLoss {
		t.Fatal("MIMD on a 5-packet buffer produced no loss")
	}
}

func TestDeliveredConservation(t *testing.T) {
	// Delivered packets cannot exceed what the bottleneck can serialize.
	cfg := link20()
	dur := 30.0
	res, err := Run(cfg, []Flow{{Proto: protocol.Scalable(), Init: 1}}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Delivered[0]); got > cfg.Bandwidth*dur+1 {
		t.Fatalf("delivered %v packets > link capacity %v", got, cfg.Bandwidth*dur)
	}
	// DeliveredSeries sums to Delivered.
	if got := stats.Sum(res.DeliveredSeries[0]); math.Abs(got-float64(res.Delivered[0])) > 0.5 {
		t.Fatalf("series sum %v != total %v", got, res.Delivered[0])
	}
}

func TestThroughputTailBounds(t *testing.T) {
	res, err := Run(link20(), []Flow{{Proto: protocol.Reno(), Init: 1}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate tail fractions must not panic or divide by zero.
	if thr := res.Throughput(0, 1); thr < 0 {
		t.Fatalf("tail=1 throughput = %v", thr)
	}
	if thr := res.Throughput(0, 0); thr <= 0 {
		t.Fatalf("tail=0 throughput = %v", thr)
	}
}

func TestVegasKeepsQueueShort(t *testing.T) {
	cfg := link20()
	res, err := Run(cfg, []Flow{{Proto: protocol.DefaultVegas(), Init: 1}}, 60)
	if err != nil {
		t.Fatal(err)
	}
	base := 2 * cfg.PropDelay
	// Vegas targets ≤ 4 queued packets; allow slack for MI quantization.
	tailRTT := stats.Max(stats.Tail(res.Trace.RTT(), 0.5))
	maxExtra := 12 / cfg.Bandwidth
	if tailRTT > base+maxExtra {
		t.Fatalf("Vegas tail RTT %v exceeds base+%v", tailRTT, maxExtra)
	}
	// While still using a good share of the link.
	if thr := res.Throughput(0, 0.5); thr < 0.7*cfg.Bandwidth {
		t.Fatalf("Vegas throughput = %v, want ≥ 70%% of link", thr)
	}
}
