package protocol

import (
	"fmt"
	"math"
)

// BBRish is a window-based rendering of BBR's model-based control
// (Cardwell et al., the paper's reference [8]), one of the §6 "other
// congestion control protocols" the framework invites. True BBR is paced;
// within the paper's window model the essential mechanism survives:
//
//   - estimate the path's propagation RTT as the windowed minimum RTT;
//   - estimate the bottleneck bandwidth as the windowed maximum delivery
//     rate (window·(1−loss)/RTT);
//   - operate at a window of Gain × (bandwidth × min RTT), the estimated
//     BDP, cycling a probe gain above and a drain gain below it so the
//     estimator keeps seeing fresh samples.
//
// Consequences inside the axiomatic framework, all exercised in tests:
// BBRish is NOT loss-based (it ignores the loss signal except through
// delivery rate), keeps queues near-empty (strong Metric VIII), tolerates
// random loss (high Metric VI — delivery rate barely moves), and, like
// every latency avoider, is starved by loss-based protocols (Theorem 5).
type BBRish struct {
	// Gain is the steady-state multiple of the estimated BDP held in
	// flight (default 1).
	Gain float64
	// ProbeGain and DrainGain bracket the 8-step gain cycle (defaults
	// 1.25 and 0.75, BBR's values).
	ProbeGain float64
	DrainGain float64

	minRTT   float64
	rateWin  [8]float64 // windowed max filter for delivery rate
	rateIdx  int
	started  bool
	phase    int
	startupW float64
}

// NewBBRish returns the default configuration (gain cycle 1.25/0.75
// around 1×BDP).
func NewBBRish() *BBRish {
	return &BBRish{Gain: 1, ProbeGain: 1.25, DrainGain: 0.75}
}

// Next implements Protocol.
func (p *BBRish) Next(fb Feedback) float64 {
	if fb.RTT > 0 && (p.minRTT == 0 || fb.RTT < p.minRTT) {
		p.minRTT = fb.RTT
	}
	if fb.RTT > 0 {
		rate := fb.Window * (1 - fb.Loss) / fb.RTT
		p.rateWin[p.rateIdx%len(p.rateWin)] = rate
		p.rateIdx++
	}
	maxRate := 0.0
	for _, r := range p.rateWin {
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate <= 0 || p.minRTT <= 0 {
		return fb.Window * 2 // no model yet: startup doubling
	}
	bdp := maxRate * p.minRTT

	// Startup: grow multiplicatively while the rate estimate still rises
	// (the window is the binding constraint, so delivery rate tracks it).
	if !p.started {
		if fb.Window < bdp*1.5 && fb.Window > p.startupW {
			p.startupW = fb.Window
			return fb.Window * 2
		}
		p.started = true
	}

	gain := p.Gain
	switch p.phase % 8 {
	case 0:
		gain *= p.ProbeGain
	case 1:
		gain *= p.DrainGain
	}
	p.phase++
	return math.Max(gain*bdp, MinWindow)
}

// LossBased implements Protocol: BBRish reacts to RTT and delivery rate,
// not to loss as a signal.
func (p *BBRish) LossBased() bool { return false }

// Name implements Protocol.
func (p *BBRish) Name() string { return fmt.Sprintf("BBRish(%g)", p.Gain) }

// Clone implements Protocol.
func (p *BBRish) Clone() Protocol {
	return &BBRish{Gain: p.Gain, ProbeGain: p.ProbeGain, DrainGain: p.DrainGain}
}
