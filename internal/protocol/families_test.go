package protocol

import (
	"math"
	"testing"
	"testing/quick"
)

func fbNoLoss(w float64) Feedback  { return Feedback{Window: w, RTT: 0.042, Loss: 0} }
func fbLoss(w, l float64) Feedback { return Feedback{Window: w, RTT: 0.042, Loss: l} }

func TestAIMDUpdateRule(t *testing.T) {
	p := NewAIMD(2, 0.5)
	if got := p.Next(fbNoLoss(10)); got != 12 {
		t.Fatalf("AIMD increase: got %v, want 12", got)
	}
	if got := p.Next(fbLoss(12, 0.01)); got != 6 {
		t.Fatalf("AIMD decrease: got %v, want 6", got)
	}
}

func TestRenoIsAIMD1Half(t *testing.T) {
	p := Reno()
	if p.A != 1 || p.B != 0.5 {
		t.Fatalf("Reno = AIMD(%v,%v), want AIMD(1,0.5)", p.A, p.B)
	}
	if p.Name() != "AIMD(1,0.5)" {
		t.Fatalf("Reno.Name() = %q", p.Name())
	}
}

func TestAIMDConstructorPanics(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{0, 0.5}, {-1, 0.5}, {1, 0}, {1, 1}, {1, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAIMD(%v,%v) did not panic", c.a, c.b)
				}
			}()
			NewAIMD(c.a, c.b)
		}()
	}
}

func TestMIMDUpdateRule(t *testing.T) {
	p := NewMIMD(1.1, 0.5)
	if got := p.Next(fbNoLoss(10)); math.Abs(got-11) > 1e-12 {
		t.Fatalf("MIMD increase: got %v, want 11", got)
	}
	if got := p.Next(fbLoss(10, 0.2)); got != 5 {
		t.Fatalf("MIMD decrease: got %v, want 5", got)
	}
}

func TestScalableParams(t *testing.T) {
	p := Scalable()
	if p.A != 1.01 || p.B != 0.875 {
		t.Fatalf("Scalable = MIMD(%v,%v)", p.A, p.B)
	}
	q := ScalableAIMD()
	if q.A != 1 || q.B != 0.875 {
		t.Fatalf("ScalableAIMD = AIMD(%v,%v)", q.A, q.B)
	}
}

func TestMIMDConstructorPanics(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{1, 0.5}, {0.9, 0.5}, {1.1, 0}, {1.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMIMD(%v,%v) did not panic", c.a, c.b)
				}
			}()
			NewMIMD(c.a, c.b)
		}()
	}
}

func TestBinomialUpdateRule(t *testing.T) {
	// BIN(a,b,k,l): x + a/x^k on no loss; x − b·x^l on loss.
	p := NewBinomial(2, 0.5, 1, 0.5)
	if got := p.Next(fbNoLoss(4)); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("BIN increase: got %v, want 4.5", got)
	}
	if got := p.Next(fbLoss(4, 0.1)); math.Abs(got-3) > 1e-12 {
		t.Fatalf("BIN decrease: got %v, want 3 (4 − 0.5·2)", got)
	}
}

func TestBinomialK0L1IsAIMD(t *testing.T) {
	// BIN(a, b, 0, 1) must coincide with AIMD(a, 1−?): increase x+a,
	// decrease x − b·x = (1−b)x.
	bin := NewBinomial(1, 0.5, 0, 1)
	aimd := NewAIMD(1, 0.5)
	for _, w := range []float64{1, 2, 10, 123.5} {
		if g, want := bin.Next(fbNoLoss(w)), aimd.Next(fbNoLoss(w)); math.Abs(g-want) > 1e-12 {
			t.Fatalf("increase mismatch at w=%v: %v vs %v", w, g, want)
		}
		if g, want := bin.Next(fbLoss(w, 0.1)), aimd.Next(fbLoss(w, 0.1)); math.Abs(g-want) > 1e-12 {
			t.Fatalf("decrease mismatch at w=%v: %v vs %v", w, g, want)
		}
	}
}

func TestBinomialGuardsTinyWindow(t *testing.T) {
	// a/x^k with x below the floor must not explode.
	p := NewBinomial(1, 1, 2, 0)
	got := p.Next(fbNoLoss(0.001))
	if got > MinWindow+1+1e-9 {
		t.Fatalf("BIN at tiny window = %v, want ≤ %v", got, MinWindow+1)
	}
}

func TestCubicCurveShape(t *testing.T) {
	p := NewCubic(0.4, 0.8)
	// Prime with one loss at window 100: next window = 80, xmax = 100.
	if got := p.Next(fbLoss(100, 0.1)); math.Abs(got-80) > 1e-12 {
		t.Fatalf("CUBIC after loss: got %v, want 80", got)
	}
	// K = (100·0.2/0.4)^(1/3) = 50^(1/3) ≈ 3.684.
	k := math.Cbrt(50)
	// After exactly K steps the curve re-crosses xmax = 100. Step through
	// floor(K) steps and check we are still below, then pass K.
	var w float64
	steps := 0
	for w = 80; steps < 10; steps++ {
		w = p.Next(fbNoLoss(w))
		if float64(steps+1) < k && w > 100+1e-9 {
			t.Fatalf("window crossed xmax before inflection: step %d w=%v", steps+1, w)
		}
		if float64(steps+1) >= k+1 && w < 100 {
			t.Fatalf("window below xmax after inflection: step %d w=%v", steps+1, w)
		}
	}
	// Cubic growth: far beyond the plateau, the increment accelerates.
	d1 := p.Next(fbNoLoss(w)) - w
	w2 := w + d1
	d2 := p.Next(fbNoLoss(w2)) - w2
	if d2 <= d1 {
		t.Fatalf("cubic not accelerating: d1=%v d2=%v", d1, d2)
	}
}

func TestCubicPrimesFromInitialWindow(t *testing.T) {
	p := NewCubic(0.4, 0.8)
	// With no loss ever, the first step must not collapse the window.
	got := p.Next(fbNoLoss(50))
	if got < 50 {
		t.Fatalf("CUBIC first loss-free step shrank window: %v < 50", got)
	}
}

func TestCubicPlateauNearXmax(t *testing.T) {
	p := NewCubic(0.4, 0.8)
	p.Next(fbLoss(1000, 0.1)) // xmax = 1000, w = 800
	// Near the inflection the per-step change is small relative to xmax.
	w := 800.0
	k := math.Cbrt(1000 * 0.2 / 0.4)
	for i := 1; float64(i) <= k; i++ {
		w = p.Next(fbNoLoss(w))
	}
	// w should now be within a few MSS of xmax = 1000.
	if math.Abs(w-1000) > 25 {
		t.Fatalf("window at inflection = %v, want ≈1000", w)
	}
}

func TestRobustAIMDToleratesLossBelowEps(t *testing.T) {
	p := NewRobustAIMD(1, 0.8, 0.01)
	if got := p.Next(fbLoss(100, 0.005)); got != 101 {
		t.Fatalf("R-AIMD under tolerable loss: got %v, want 101", got)
	}
	if got := p.Next(fbLoss(100, 0.01)); got != 80 {
		t.Fatalf("R-AIMD at eps loss: got %v, want 80", got)
	}
	if got := p.Next(fbLoss(100, 0.5)); got != 80 {
		t.Fatalf("R-AIMD heavy loss: got %v, want 80", got)
	}
	if got := p.Next(fbNoLoss(100)); got != 101 {
		t.Fatalf("R-AIMD no loss: got %v, want 101", got)
	}
}

func TestLossBasedFlags(t *testing.T) {
	cases := []struct {
		p    Protocol
		want bool
	}{
		{Reno(), true},
		{Scalable(), true},
		{IIAD(), true},
		{CubicLinux(), true},
		{NewRobustAIMD(1, 0.8, 0.01), true},
		{DefaultPCC(), true},
		{DefaultVegas(), false},
		{NewProbeUntilLoss(1), true},
	}
	for _, c := range cases {
		if got := c.p.LossBased(); got != c.want {
			t.Errorf("%s.LossBased() = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestCloneResetsState(t *testing.T) {
	// Drive a Cubic into a post-loss state, clone, and verify the clone
	// behaves like a fresh instance.
	p := NewCubic(0.4, 0.8)
	p.Next(fbLoss(100, 0.1))
	p.Next(fbNoLoss(80))

	clone := p.Clone().(*Cubic)
	fresh := NewCubic(0.4, 0.8)
	for i := 0; i < 5; i++ {
		fb := fbNoLoss(50 + float64(i))
		if g, w := clone.Next(fb), fresh.Next(fb); math.Abs(g-w) > 1e-12 {
			t.Fatalf("step %d: clone %v != fresh %v", i, g, w)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	// Two clones of the same stateful protocol must not share state.
	orig := DefaultPCC()
	a := orig.Clone()
	b := orig.Clone()
	a.Next(fbLoss(100, 0.2))
	a.Next(fbLoss(90, 0.2))
	// b's first decision must be unaffected by a's history.
	fresh := DefaultPCC()
	if g, w := b.Next(fbNoLoss(100)), fresh.Next(fbNoLoss(100)); g != w {
		t.Fatalf("clone b contaminated by a: %v != %v", g, w)
	}
}

func TestDeterminism(t *testing.T) {
	// Same feedback sequence ⇒ same window sequence, for every family.
	protos := []func() Protocol{
		func() Protocol { return Reno() },
		func() Protocol { return Scalable() },
		func() Protocol { return SQRT() },
		func() Protocol { return CubicLinux() },
		func() Protocol { return NewRobustAIMD(1, 0.8, 0.01) },
		func() Protocol { return DefaultPCC() },
		func() Protocol { return DefaultVegas() },
		func() Protocol { return NewProbeUntilLoss(1) },
	}
	fbs := []Feedback{
		fbNoLoss(10), fbNoLoss(11), fbLoss(12, 0.05), fbNoLoss(6),
		fbLoss(7, 0.2), fbNoLoss(4), fbNoLoss(5), fbNoLoss(6),
	}
	for _, mk := range protos {
		p1, p2 := mk(), mk()
		for i, fb := range fbs {
			if g1, g2 := p1.Next(fb), p2.Next(fb); g1 != g2 {
				t.Errorf("%s: nondeterministic at step %d: %v != %v", p1.Name(), i, g1, g2)
			}
		}
	}
}

func TestProbeUntilLossFreezes(t *testing.T) {
	p := NewProbeUntilLoss(1)
	w := 10.0
	for i := 0; i < 5; i++ {
		nw := p.Next(fbNoLoss(w))
		if nw != w+1 {
			t.Fatalf("probe should increase by 1: %v -> %v", w, nw)
		}
		w = nw
	}
	frozen := p.Next(fbLoss(w, 0.1))
	if frozen != w/2 {
		t.Fatalf("freeze value = %v, want %v", frozen, w/2)
	}
	// Forever after, the window stays frozen even with no loss.
	for i := 0; i < 100; i++ {
		if got := p.Next(fbNoLoss(frozen)); got != frozen {
			t.Fatalf("probe moved after freezing: %v != %v", got, frozen)
		}
	}
}

func TestVegasSteersQueueOccupancy(t *testing.T) {
	p := DefaultVegas()
	base := 0.042
	// First observation sets baseRTT; diff = 0 < α ⇒ increase.
	if got := p.Next(Feedback{Window: 10, RTT: base}); got != 11 {
		t.Fatalf("Vegas initial increase: got %v, want 11", got)
	}
	// RTT doubled: diff = w·(1−base/rtt) = 10 ⇒ above β = 4 ⇒ decrease.
	if got := p.Next(Feedback{Window: 20, RTT: 2 * base}); got != 19 {
		t.Fatalf("Vegas decrease: got %v, want 19", got)
	}
	// diff within [α, β]: hold. w=30, need diff in [2,4]: RTT such that
	// 30·(1−base/rtt) = 3 ⇒ rtt = base/(1−0.1) ≈ base·1.111.
	rtt := base / (1 - 0.1)
	if got := p.Next(Feedback{Window: 30, RTT: rtt}); got != 30 {
		t.Fatalf("Vegas hold: got %v, want 30", got)
	}
	// Loss: halve.
	if got := p.Next(Feedback{Window: 30, RTT: base, Loss: 0.1}); got != 15 {
		t.Fatalf("Vegas on loss: got %v, want 15", got)
	}
}

func TestPCCToleratesModerateLoss(t *testing.T) {
	// Under sustained 2% loss (below δ=20's ~4.8% tolerance), PCC keeps
	// growing from a starting window.
	p := DefaultPCC()
	w := 100.0
	for i := 0; i < 50; i++ {
		w = p.Next(Feedback{Step: i, Window: w, RTT: 0.042, Loss: 0.02})
	}
	if w <= 100 {
		t.Fatalf("PCC collapsed under 2%% loss: w = %v", w)
	}
}

func TestPCCBacksOffUnderHeavyLoss(t *testing.T) {
	// Under 20% loss, utility is negative and shrinking the window
	// improves it, so PCC must come down.
	p := DefaultPCC()
	w := 1000.0
	for i := 0; i < 200; i++ {
		w = p.Next(Feedback{Step: i, Window: w, RTT: 0.042, Loss: 0.2})
	}
	if w >= 1000 {
		t.Fatalf("PCC did not back off under 20%% loss: w = %v", w)
	}
}

func TestPCCMoreAggressiveThanReno(t *testing.T) {
	// Loss-free growth over 50 steps: PCC (multiplicative) must outgrow
	// Reno (additive) from the same starting window. This is the paper's
	// "strictly more aggressive than MIMD(1.01,0.99)" sanity direction.
	pcc, reno := DefaultPCC(), Reno()
	wp, wr := 100.0, 100.0
	for i := 0; i < 50; i++ {
		wp = pcc.Next(Feedback{Step: i, Window: wp})
		wr = reno.Next(Feedback{Step: i, Window: wr})
	}
	if wp <= wr {
		t.Fatalf("PCC (%v) did not outgrow Reno (%v) in 50 loss-free steps", wp, wr)
	}
}

func TestClampBounds(t *testing.T) {
	if got := Clamp(0.5, 100); got != MinWindow {
		t.Fatalf("Clamp low = %v", got)
	}
	if got := Clamp(150, 100); got != 100 {
		t.Fatalf("Clamp high = %v", got)
	}
	if got := Clamp(50, 100); got != 50 {
		t.Fatalf("Clamp mid = %v", got)
	}
}

// Property: AIMD's update is monotone in the window for both branches.
func TestQuickAIMDMonotone(t *testing.T) {
	p := Reno()
	f := func(w1, w2 float64) bool {
		a := math.Abs(math.Mod(w1, 1e6)) + 1
		b := math.Abs(math.Mod(w2, 1e6)) + 1
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		inc := p.Next(fbNoLoss(a)) <= p.Next(fbNoLoss(b))
		dec := p.Next(fbLoss(a, 0.1)) <= p.Next(fbLoss(b, 0.1))
		return inc && dec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every family's decrease branch shrinks the window
// (for windows above the floor).
func TestQuickDecreaseShrinks(t *testing.T) {
	f := func(raw float64) bool {
		w := math.Abs(math.Mod(raw, 1e6)) + 2
		if math.IsNaN(w) {
			return true
		}
		for _, p := range []Protocol{Reno(), Scalable(), SQRT(), NewRobustAIMD(1, 0.8, 0.01)} {
			if p.Next(fbLoss(w, 0.5)) >= w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
