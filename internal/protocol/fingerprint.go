package protocol

import (
	"math"
	"strconv"
	"strings"
)

// Fingerprinter is optionally implemented by protocols whose behavior —
// starting from a fresh Clone — is completely determined by a canonical
// string. The run-deduplication cache in internal/metrics keys simulated
// runs by these strings, so two protocol values with equal fingerprints
// MUST produce bit-identical window sequences under identical feedback.
//
// Every builtin family implements it by encoding the exact bits of every
// behavior-relevant parameter (not just the Name(), which rounds floats
// and omits secondary knobs like PCC's probing step). Func deliberately
// does not: its Label carries no guarantee about the wrapped closure, so
// Func-backed runs are never cached.
type Fingerprinter interface {
	Fingerprint() string
}

// fingerprint builds "kind[bits,bits,...]" with each parameter rendered as
// the hex of its IEEE-754 bit pattern — collision-free by construction,
// unlike decimal formatting.
func fingerprint(kind string, params ...float64) string {
	var sb strings.Builder
	sb.WriteString(kind)
	sb.WriteByte('[')
	for i, p := range params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(math.Float64bits(p), 16))
	}
	sb.WriteByte(']')
	return sb.String()
}

// Fingerprint implements Fingerprinter.
func (p *AIMD) Fingerprint() string { return fingerprint("aimd", p.A, p.B) }

// Fingerprint implements Fingerprinter.
func (p *MIMD) Fingerprint() string { return fingerprint("mimd", p.A, p.B) }

// Fingerprint implements Fingerprinter.
func (p *Binomial) Fingerprint() string { return fingerprint("bin", p.A, p.B, p.K, p.L) }

// Fingerprint implements Fingerprinter.
func (p *Cubic) Fingerprint() string { return fingerprint("cubic", p.C, p.B) }

// Fingerprint implements Fingerprinter.
func (p *RobustAIMD) Fingerprint() string { return fingerprint("raimd", p.A, p.B, p.Eps) }

// Fingerprint implements Fingerprinter.
func (p *PCC) Fingerprint() string { return fingerprint("pcc", p.Delta, p.Epsilon, p.MaxStep) }

// Fingerprint implements Fingerprinter.
func (p *Vegas) Fingerprint() string { return fingerprint("vegas", p.AlphaPkts, p.BetaPkts) }

// Fingerprint implements Fingerprinter.
func (p *ProbeUntilLoss) Fingerprint() string { return fingerprint("probe", p.A) }

// Fingerprint implements Fingerprinter.
func (t *TFRC) Fingerprint() string { return fingerprint("tfrc", t.Alpha, t.ProbeGain) }

// Fingerprint implements Fingerprinter.
func (p *HighSpeed) Fingerprint() string { return fingerprint("hstcp", p.LowWindow) }

// Fingerprint implements Fingerprinter.
func (p *BBRish) Fingerprint() string { return fingerprint("bbrish", p.Gain, p.ProbeGain, p.DrainGain) }
