package protocol

import (
	"fmt"
	"math"
	"sort"
)

// HighSpeed implements HighSpeed TCP (RFC 3649), the window-dependent
// AIMD generalization designed for large bandwidth-delay products: below
// LowWindow it behaves exactly like standard TCP (AIMD(1, 0.5)); above
// it, the additive increase a(w) grows and the multiplicative decrease
// b(w) shrinks with the window, following the RFC's response function.
// HighSpeed TCP is the classic example of a protocol that buys
// fast-utilization at large windows by giving up TCP-friendliness there —
// exactly the trade Theorem 2 prices — while remaining 1-TCP-friendly in
// the low-window regime.
type HighSpeed struct {
	// LowWindow is the window below which the protocol is standard TCP
	// (RFC 3649 default: 38 MSS).
	LowWindow float64
}

// NewHighSpeed returns HighSpeed TCP with the RFC 3649 default low-window
// threshold of 38 MSS.
func NewHighSpeed() *HighSpeed { return &HighSpeed{LowWindow: 38} }

// hsEntry is one row of the RFC 3649 response table: at window W the
// protocol uses additive increase A and multiplicative decrease factor
// 1−B (the RFC tabulates the decrease fraction B).
type hsEntry struct {
	W float64 // window in MSS
	A float64 // additive increase a(w)
	B float64 // decrease fraction b(w); new window = w·(1−B)
}

// hsTable is an abridgment of the RFC 3649 table (its full version has 71
// rows; these anchor rows preserve the curve's shape and endpoints, and
// intermediate windows are interpolated logarithmically as the RFC
// specifies for implementations).
var hsTable = []hsEntry{
	{38, 1, 0.50},
	{118, 2, 0.44},
	{221, 3, 0.41},
	{347, 4, 0.38},
	{495, 5, 0.37},
	{663, 6, 0.35},
	{1058, 8, 0.33},
	{1627, 10, 0.31},
	{2375, 12, 0.29},
	{3307, 14, 0.28},
	{5063, 17, 0.26},
	{8388, 21, 0.24},
	{12748, 25, 0.23},
	{21864, 31, 0.21},
	{35665, 38, 0.19},
	{56847, 46, 0.18},
	{83981, 53, 0.17},
}

// hsParams returns (a(w), b(w)) by log-linear interpolation of the table,
// clamping to the endpoints.
func hsParams(w float64) (a, b float64) {
	if w <= hsTable[0].W {
		return hsTable[0].A, hsTable[0].B
	}
	last := hsTable[len(hsTable)-1]
	if w >= last.W {
		return last.A, last.B
	}
	i := sort.Search(len(hsTable), func(i int) bool { return hsTable[i].W >= w })
	lo, hi := hsTable[i-1], hsTable[i]
	frac := (math.Log(w) - math.Log(lo.W)) / (math.Log(hi.W) - math.Log(lo.W))
	return lo.A + frac*(hi.A-lo.A), lo.B + frac*(hi.B-lo.B)
}

// Next implements Protocol.
func (p *HighSpeed) Next(fb Feedback) float64 {
	w := math.Max(fb.Window, MinWindow)
	if w <= p.LowWindow {
		// Standard TCP regime.
		if fb.Loss > 0 {
			return w * 0.5
		}
		return w + 1
	}
	a, b := hsParams(w)
	if fb.Loss > 0 {
		return w * (1 - b)
	}
	return w + a
}

// LossBased implements Protocol.
func (p *HighSpeed) LossBased() bool { return true }

// Name implements Protocol.
func (p *HighSpeed) Name() string {
	return fmt.Sprintf("HSTCP(low=%g)", p.LowWindow)
}

// Clone implements Protocol.
func (p *HighSpeed) Clone() Protocol { c := *p; return &c }
