package protocol

import (
	"fmt"
	"math"
)

// PCC is a window-based, monitor-interval stand-in for PCC Allegro (Dong
// et al., NSDI 2015), the protocol the paper compares Robust-AIMD against.
//
// The real PCC is rate-paced and learns online from utility measurements;
// the paper's model defers pacing, and reasons about PCC via the bound
// that "PCC's behavior is strictly more aggressive than MIMD(1.01, 0.99)".
// This implementation keeps PCC's control structure — each RTT-sized time
// step is a monitor interval whose observed loss rate feeds a utility
// function, and the sender performs gradient-style probing on that
// utility — while emitting congestion windows so it composes with the
// paper's model:
//
//	u(w, L) = w·(1 − (1 + δ)·L)
//
// With the default loss penalty δ = 20 the utility keeps rising until the
// loss rate approaches 1/(1+δ) ≈ 4.8%, so the protocol, like PCC, shrugs
// off moderate loss and is far more aggressive toward loss-based TCP than
// any AIMD. Probing is deterministic: the sender moves its window in the
// current direction, accelerating while utility improves and reversing
// when it degrades.
type PCC struct {
	Delta   float64 // loss penalty coefficient δ (> 0)
	Epsilon float64 // base probing step as a fraction of the window (> 0)
	MaxStep float64 // cap on the per-MI window change fraction

	dir      float64 // +1 or −1
	streak   int     // consecutive same-direction moves
	prevU    float64 // utility of the previous monitor interval
	havePrev bool
}

// NewPCC returns a PCC stand-in with the given loss penalty δ. Probing
// uses a 1% base step capped at 5% per monitor interval, mirroring
// Allegro's defaults. It panics if delta <= 0.
func NewPCC(delta float64) *PCC {
	if delta <= 0 {
		panic(fmt.Sprintf("protocol: invalid PCC delta %v", delta))
	}
	return &PCC{Delta: delta, Epsilon: 0.01, MaxStep: 0.05, dir: 1}
}

// DefaultPCC returns the configuration used throughout the experiments:
// δ = 20 (loss tolerated up to ≈4.8%).
func DefaultPCC() *PCC { return NewPCC(20) }

// utility evaluates the loss-based Allegro-style utility of a monitor
// interval.
func (p *PCC) utility(w, loss float64) float64 {
	return w * (1 - (1+p.Delta)*loss)
}

// Next implements Protocol.
func (p *PCC) Next(fb Feedback) float64 {
	u := p.utility(fb.Window, fb.Loss)
	if !p.havePrev {
		p.havePrev = true
		p.prevU = u
		p.streak = 1
		return fb.Window * (1 + p.dir*p.Epsilon)
	}
	if u >= p.prevU {
		p.streak++
	} else {
		p.dir = -p.dir
		p.streak = 1
	}
	p.prevU = u
	step := math.Min(float64(p.streak)*p.Epsilon, p.MaxStep)
	next := fb.Window * (1 + p.dir*step)
	if next < MinWindow {
		next = MinWindow
	}
	return next
}

// LossBased implements Protocol; the stand-in's utility uses only loss.
func (p *PCC) LossBased() bool { return true }

// Name implements Protocol.
func (p *PCC) Name() string { return fmt.Sprintf("PCC(δ=%g)", p.Delta) }

// Clone implements Protocol.
func (p *PCC) Clone() Protocol {
	return &PCC{Delta: p.Delta, Epsilon: p.Epsilon, MaxStep: p.MaxStep, dir: 1}
}

// Vegas is a latency-avoiding protocol in the style of TCP Vegas, used to
// exercise Theorem 5 (any efficient loss-based protocol starves any
// latency-avoiding protocol). It estimates the path's propagation RTT as
// the minimum RTT observed and steers the number of its own packets queued
// at the bottleneck, diff = w·(1 − baseRTT/RTT), into the band
// [AlphaPkts, BetaPkts]:
//
//	diff < AlphaPkts → w + 1
//	diff > BetaPkts  → w − 1
//	otherwise        → hold
//
// On loss it halves, like Vegas falling back to Reno behavior. Because its
// decisions depend on RTT, LossBased reports false, and because it keeps
// at most BetaPkts packets queued per flow, it is γ-latency-avoiding for
// any γ > 0 once the link is fast enough (Metric VIII).
type Vegas struct {
	AlphaPkts float64 // lower bound on queued packets (α, default 2)
	BetaPkts  float64 // upper bound on queued packets (β, default 4)

	baseRTT float64 // minimum RTT observed so far (seconds)
}

// NewVegas returns a Vegas-style latency avoider with the classic α = 2,
// β = 4 packet thresholds. It panics if alpha <= 0 or beta < alpha.
func NewVegas(alphaPkts, betaPkts float64) *Vegas {
	if alphaPkts <= 0 || betaPkts < alphaPkts {
		panic(fmt.Sprintf("protocol: invalid Vegas(%v,%v)", alphaPkts, betaPkts))
	}
	return &Vegas{AlphaPkts: alphaPkts, BetaPkts: betaPkts}
}

// DefaultVegas returns Vegas(2, 4).
func DefaultVegas() *Vegas { return NewVegas(2, 4) }

// Next implements Protocol.
func (p *Vegas) Next(fb Feedback) float64 {
	if p.baseRTT == 0 || fb.RTT < p.baseRTT {
		p.baseRTT = fb.RTT
	}
	if fb.Loss > 0 {
		return fb.Window * 0.5
	}
	diff := 0.0
	if fb.RTT > 0 {
		diff = fb.Window * (1 - p.baseRTT/fb.RTT)
	}
	switch {
	case diff < p.AlphaPkts:
		return fb.Window + 1
	case diff > p.BetaPkts:
		return fb.Window - 1
	default:
		return fb.Window
	}
}

// LossBased implements Protocol; Vegas reacts to RTT, so false.
func (p *Vegas) LossBased() bool { return false }

// Name implements Protocol.
func (p *Vegas) Name() string {
	return fmt.Sprintf("Vegas(%g,%g)", p.AlphaPkts, p.BetaPkts)
}

// Clone implements Protocol.
func (p *Vegas) Clone() Protocol { return NewVegas(p.AlphaPkts, p.BetaPkts) }

// ProbeUntilLoss is the protocol used to illustrate Claim 1: it increases
// its window by A per step until it encounters loss for the first time,
// then halves once and freezes forever. From that point on a single sender
// never again exceeds the link (the protocol is 0-loss and, with A small,
// nearly fully utilizing), yet after arbitrarily long loss-free periods it
// never increases — so it is not α-fast-utilizing for any α > 0.
type ProbeUntilLoss struct {
	A float64 // additive probe increment (a > 0)

	frozen float64 // the window frozen after the first loss; 0 before
}

// NewProbeUntilLoss returns the Claim 1 probe with increment a. It panics
// if a <= 0.
func NewProbeUntilLoss(a float64) *ProbeUntilLoss {
	if a <= 0 {
		panic(fmt.Sprintf("protocol: invalid ProbeUntilLoss(%v)", a))
	}
	return &ProbeUntilLoss{A: a}
}

// Next implements Protocol.
func (p *ProbeUntilLoss) Next(fb Feedback) float64 {
	if p.frozen > 0 {
		return p.frozen
	}
	if fb.Loss > 0 {
		p.frozen = math.Max(fb.Window*0.5, MinWindow)
		return p.frozen
	}
	return fb.Window + p.A
}

// LossBased implements Protocol.
func (p *ProbeUntilLoss) LossBased() bool { return true }

// Name implements Protocol.
func (p *ProbeUntilLoss) Name() string {
	return fmt.Sprintf("ProbeUntilLoss(%g)", p.A)
}

// Clone implements Protocol.
func (p *ProbeUntilLoss) Clone() Protocol { return NewProbeUntilLoss(p.A) }

// Func adapts a stateless window-update function to the Protocol
// interface. It is the extension point for experimenting with custom
// update rules without writing a full type; the function must be
// deterministic and must not retain state between calls (use a dedicated
// type for stateful protocols).
type Func struct {
	// Fn maps the current feedback to the next window.
	Fn func(Feedback) float64
	// RTTSensitive marks the rule as depending on RTT (inverts LossBased).
	RTTSensitive bool
	// Label is returned by Name.
	Label string
}

// Next implements Protocol.
func (p *Func) Next(fb Feedback) float64 { return p.Fn(fb) }

// LossBased implements Protocol.
func (p *Func) LossBased() bool { return !p.RTTSensitive }

// Name implements Protocol.
func (p *Func) Name() string {
	if p.Label == "" {
		return "Func"
	}
	return p.Label
}

// Clone implements Protocol. The function is shared; it must be stateless.
func (p *Func) Clone() Protocol { c := *p; return &c }
