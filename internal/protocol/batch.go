package protocol

import "math"

// KernelOp selects the closed-form update family a Kernel applies.
type KernelOp uint8

// The kernel families. Each op replicates the Next method of exactly one
// protocol type; see that type's documentation for the update rule.
const (
	// OpAIMD is AIMD(a,b): w+A on loss-free steps, w·B on lossy ones.
	OpAIMD KernelOp = 1 + iota
	// OpMIMD is MIMD(a,b): w·A on loss-free steps, w·B on lossy ones.
	OpMIMD
	// OpBinomial is BIN(a,b,k,l): w + A/wᴷ or w − B·wᴸ.
	OpBinomial
	// OpRobustAIMD is Robust-AIMD(a,b,ε): the AIMD rule gated on the
	// measured loss rate reaching ε (stored in L).
	OpRobustAIMD
	// OpHighSpeed is HighSpeed TCP (RFC 3649): standard TCP below the
	// low-window threshold (stored in A), the interpolated response
	// table above it.
	OpHighSpeed
	// OpCubic is CUBIC(c,b): the cubic window curve anchored at the
	// last-loss window. The only stateful op — X, T, and Primed carry
	// Cubic's per-sender state (xmax, steps, primed).
	OpCubic
)

// Kernel is a protocol's window-update rule reduced to closed form, so a
// batched stepper can advance many senders without interface dispatch or
// Feedback construction. A kernel exists only for the loss-based
// families: their Next depends on nothing but the current window, the
// observed loss rate, and (for stateful ops like OpCubic) a fixed set of
// scalar state slots the kernel itself carries — which is what makes
// lockstep structure-of-arrays stepping possible. Batched steppers hold
// one Kernel value per sender, so per-sender state lives in the copy.
//
// The contract is bit-identity: for every protocol P exposing a kernel K,
// and every (w, loss) sequence, K.Step(w, loss) must return the exact
// float64s that P.Next(Feedback{Window: w, Loss: loss}) would — same
// operations in the same order, so batched and per-cell simulations
// produce identical traces. Feedback.Step and Feedback.RTT are not
// parameters because no kernelized family reads them (they are all
// LossBased).
type Kernel struct {
	Op KernelOp
	// A, B, K, L hold the family's parameters, reusing the slots per op:
	// AIMD/MIMD use A and B; Binomial uses all four; RobustAIMD stores
	// ε in L; HighSpeed stores LowWindow in A; Cubic stores c in A and
	// b in B.
	A, B, K, L float64
	// X, T, and Primed are the mutable per-sender state slots, used only
	// by stateful ops. OpCubic keeps its last-loss window in X, the step
	// count since that loss in T, and the primed flag in Primed.
	X, T   float64
	Primed bool
}

// Step returns the next window for a sender whose current window is w and
// whose observed loss rate for the step is loss. Stateful ops mutate the
// receiver's state slots, so callers must invoke Step on the per-sender
// Kernel they persist (a slice element, not a copy). A zero (invalid) Op
// returns w unchanged; NewBatch-style constructors must reject such
// kernels up front.
func (k *Kernel) Step(w, loss float64) float64 {
	switch k.Op {
	case OpAIMD:
		if loss > 0 {
			return w * k.B
		}
		return w + k.A
	case OpMIMD:
		if loss > 0 {
			return w * k.B
		}
		return w * k.A
	case OpBinomial:
		if w < MinWindow {
			w = MinWindow
		}
		if loss > 0 {
			return w - k.B*math.Pow(w, k.L)
		}
		return w + k.A/math.Pow(w, k.K)
	case OpRobustAIMD:
		if loss >= k.L {
			return w * k.B
		}
		return w + k.A
	case OpHighSpeed:
		w = math.Max(w, MinWindow)
		if w <= k.A {
			if loss > 0 {
				return w * 0.5
			}
			return w + 1
		}
		a, b := hsParams(w)
		if loss > 0 {
			return w * (1 - b)
		}
		return w + a
	case OpCubic:
		// Transcribes Cubic.Next exactly: prime on first observation,
		// re-anchor on loss, otherwise follow the cubic curve. The
		// inflection K = cbrt(X(1−B)/A) is recomputed from state like
		// Cubic.inflection does, preserving operation order.
		if !k.Primed {
			k.X = math.Max(w, MinWindow)
			k.T = math.Cbrt(k.X * (1 - k.B) / k.A)
			k.Primed = true
		}
		if loss > 0 {
			k.X = math.Max(w, MinWindow)
			k.T = 0
			return k.X * k.B
		}
		k.T++
		d := k.T - math.Cbrt(k.X*(1-k.B)/k.A)
		return k.X + k.A*d*d*d
	}
	return w
}

// Valid reports whether the kernel names a known op.
func (k Kernel) Valid() bool { return k.Op >= OpAIMD && k.Op <= OpCubic }

// BatchStepper is the optional interface a Protocol implements to opt
// into batched structure-of-arrays stepping (internal/fluid's Batch).
// Kernel returns the closed-form kernel and true when the instance is
// expressible as one; implementations whose parameters or state preclude
// a closed form return ok = false and fall back to per-cell stepping.
//
// Only loss-based protocols whose state fits the Kernel's scalar slots
// may implement this: a kernel never sees RTT, so anything RTT-sensitive
// or with open-ended history (PCC's monitor intervals, BBRish's phases)
// must not claim a kernel. Stateful-but-scalar families (Cubic) may; a
// primed instance whose live state is not captured in the returned
// kernel must decline with ok = false.
type BatchStepper interface {
	Kernel() (Kernel, bool)
}

// Kernel implements BatchStepper.
func (p *AIMD) Kernel() (Kernel, bool) {
	return Kernel{Op: OpAIMD, A: p.A, B: p.B}, true
}

// Kernel implements BatchStepper.
func (p *MIMD) Kernel() (Kernel, bool) {
	return Kernel{Op: OpMIMD, A: p.A, B: p.B}, true
}

// Kernel implements BatchStepper.
func (p *Binomial) Kernel() (Kernel, bool) {
	return Kernel{Op: OpBinomial, A: p.A, B: p.B, K: p.K, L: p.L}, true
}

// Kernel implements BatchStepper. ε travels in the L slot.
func (p *RobustAIMD) Kernel() (Kernel, bool) {
	return Kernel{Op: OpRobustAIMD, A: p.A, B: p.B, L: p.Eps}, true
}

// Kernel implements BatchStepper. LowWindow travels in the A slot.
func (p *HighSpeed) Kernel() (Kernel, bool) {
	return Kernel{Op: OpHighSpeed, A: p.LowWindow}, true
}

// Kernel implements BatchStepper. c travels in A, b in B; the state slots
// start zeroed because only fresh instances claim a kernel — a primed
// Cubic mid-run has live (xmax, steps) the caller would lose, so it
// declines and falls back to per-cell stepping. Sender builders Clone
// protocols per sender, and Cubic.Clone resets state, so batch
// construction always sees fresh instances in practice.
func (p *Cubic) Kernel() (Kernel, bool) {
	if p.primed {
		return Kernel{}, false
	}
	return Kernel{Op: OpCubic, A: p.C, B: p.B}, true
}
