package protocol_test

import (
	"fmt"

	"repro/internal/protocol"
)

// ExampleAIMD shows the window-update rule of §2: additive increase on
// loss-free steps, multiplicative decrease on loss.
func ExampleAIMD() {
	reno := protocol.Reno() // AIMD(1, 0.5)
	w := 10.0
	w = reno.Next(protocol.Feedback{Window: w, RTT: 0.042, Loss: 0})
	fmt.Println(w) // +1
	w = reno.Next(protocol.Feedback{Window: w, RTT: 0.042, Loss: 0.02})
	fmt.Println(w) // halved
	// Output:
	// 11
	// 5.5
}

// ExampleRobustAIMD shows the §5.2 hybrid: loss below the tolerance ε is
// ignored; loss at or above it triggers the multiplicative decrease.
func ExampleRobustAIMD() {
	ra := protocol.NewRobustAIMD(1, 0.8, 0.01)
	fmt.Println(ra.Next(protocol.Feedback{Window: 100, Loss: 0.005})) // tolerated
	fmt.Println(ra.Next(protocol.Feedback{Window: 100, Loss: 0.02}))  // backed off
	// Output:
	// 101
	// 80
}

// ExampleParse builds protocols from the textual specs the CLI tools use.
func ExampleParse() {
	p, err := protocol.Parse("raimd:1,0.8,0.01")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name(), "loss-based:", p.LossBased())
	// Output:
	// RobustAIMD(1,0.8,0.01) loss-based: true
}
