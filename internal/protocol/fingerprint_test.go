package protocol

import "testing"

func TestFingerprintCoversBuiltinFamilies(t *testing.T) {
	protos := []Protocol{
		Reno(), Scalable(), SQRT(), IIAD(), CubicLinux(),
		NewRobustAIMD(1, 0.8, 0.01), DefaultPCC(), DefaultVegas(),
		NewProbeUntilLoss(1), DefaultTFRC(), NewHighSpeed(), NewBBRish(),
	}
	seen := map[string]string{}
	for _, p := range protos {
		f, ok := p.(Fingerprinter)
		if !ok {
			t.Fatalf("%s does not implement Fingerprinter", p.Name())
		}
		fp := f.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s and %s both map to %q", prev, p.Name(), fp)
		}
		seen[fp] = p.Name()
		// A clone is behaviorally identical and must fingerprint identically.
		if cfp := p.Clone().(Fingerprinter).Fingerprint(); cfp != fp {
			t.Fatalf("%s: clone fingerprint %q != original %q", p.Name(), cfp, fp)
		}
	}
}

func TestFingerprintSeparatesParameters(t *testing.T) {
	// Same family, different parameters — including ones that Name()'s
	// rounded formatting could conflate — must not collide.
	a := NewAIMD(1, 0.5)
	b := NewAIMD(1, 0.5000001)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("AIMD fingerprints collide across distinct decrease factors")
	}
	// PCC's secondary knobs are behavior-relevant and absent from Name().
	p1 := NewPCC(20)
	p2 := NewPCC(20)
	p2.MaxStep = 0.1
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("PCC fingerprints ignore MaxStep")
	}
}

func TestFuncHasNoFingerprint(t *testing.T) {
	var p Protocol = &Func{Fn: func(fb Feedback) float64 { return fb.Window }}
	if _, ok := p.(Fingerprinter); ok {
		t.Fatal("Func must not implement Fingerprinter: its closure has no canonical identity")
	}
}
