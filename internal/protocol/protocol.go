// Package protocol implements the congestion-control protocol abstraction
// of Section 2 of "An Axiomatic Approach to Congestion Control" (HotNets
// 2017) and every protocol family the paper formalizes or evaluates:
//
//   - AIMD(a,b) — additive-increase multiplicative-decrease (TCP Reno is
//     AIMD(1, 0.5))
//   - MIMD(a,b) — multiplicative-increase multiplicative-decrease (TCP
//     Scalable is MIMD(1.01, 0.875))
//   - BIN(a,b,k,l) — the binomial family of Bansal & Balakrishnan
//   - CUBIC(c,b) — TCP Cubic's window curve
//   - Robust-AIMD(a,b,ε) — the paper's §5.2 hybrid of AIMD and PCC
//   - PCC — a monitor-interval, utility-gradient stand-in for PCC Allegro
//   - Vegas — a latency-avoiding protocol (for Theorem 5)
//   - ProbeUntilLoss — the 0-loss, non-fast-utilizing probe of Claim 1
//
// A protocol deterministically maps the history of its own congestion
// windows and the RTTs and loss rates it experienced to its next window
// choice. Implementations carry that history as internal state; Next is
// called exactly once per RTT-sized time step.
package protocol

// Feedback is what a sender observes about time step t before choosing its
// window for step t+1: its own current window, the step's RTT (seconds)
// and the loss rate it experienced. Loss is the shared link loss rate of
// the paper's synchronized-feedback model, possibly combined with
// non-congestion random loss.
type Feedback struct {
	Step   int     // time step index t
	Window float64 // x_i(t), this sender's window (MSS)
	RTT    float64 // RTT(t) in seconds
	Loss   float64 // L(t) in [0, 1)
}

// Protocol is a congestion-control protocol in the paper's model. Next
// consumes the feedback for the current step and returns the window for
// the next step; the link clamps the result to [MinWindow, M].
//
// Implementations must be deterministic: the same sequence of Feedback
// values must always yield the same sequence of windows.
type Protocol interface {
	// Next returns x_i(t+1) given the observations of step t.
	Next(fb Feedback) float64
	// LossBased reports whether the protocol's window choices are
	// invariant to RTT values (§2: "a protocol is loss-based if its
	// choice of window-sizes is invariant to the RTT values").
	LossBased() bool
	// Name returns a short, human-readable identifier such as
	// "AIMD(1,0.5)".
	Name() string
	// Clone returns a fresh instance with the same parameters and
	// reset history, for running the same protocol on many senders.
	Clone() Protocol
}

// MinWindow is the smallest window the link model allows. The paper lets
// windows range over {0, 1, ..., M}; a strictly positive floor keeps the
// multiplicative families meaningful (a window of 0 could never grow
// multiplicatively) and corresponds to TCP's minimum congestion window of
// one segment.
const MinWindow = 1.0

// Clamp restricts w to [MinWindow, max]. It is exported so that both
// simulators apply the identical rule.
func Clamp(w, max float64) float64 {
	if w < MinWindow {
		return MinWindow
	}
	if w > max {
		return max
	}
	return w
}
