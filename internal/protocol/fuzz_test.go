package protocol

import (
	"math"
	"testing"
)

// FuzzParse hardens the spec parser: no input may panic it, and every
// accepted spec must yield a protocol whose Next is finite-in/finite-out.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"reno", "scalable", "cubic", "aimd:1,0.5", "mimd:1.01,0.875",
		"bin:1,0.5,0.5,0.5", "raimd:1,0.8,0.01", "pcc:20", "vegas:2,4",
		"tfrc:0.01", "probe:1", "hstcp", "", "aimd:", "aimd:1", ":::",
		"aimd:NaN,0.5", "aimd:1e308,0.5", "AIMD:1,0.5", "reno:extra",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted protocols must behave on ordinary feedback.
		w := p.Next(Feedback{Window: 10, RTT: 0.042, Loss: 0})
		if math.IsNaN(w) {
			t.Fatalf("Parse(%q): NaN window from loss-free step", spec)
		}
		w = p.Next(Feedback{Window: 10, RTT: 0.042, Loss: 0.1})
		if math.IsNaN(w) {
			t.Fatalf("Parse(%q): NaN window from lossy step", spec)
		}
		if p.Name() == "" {
			t.Fatalf("Parse(%q): empty name", spec)
		}
		if c := p.Clone(); c == nil {
			t.Fatalf("Parse(%q): nil clone", spec)
		}
	})
}

// FuzzProtocolStability drives every family with adversarial feedback
// sequences: windows must remain finite and non-NaN under arbitrary
// (clamped) loss/RTT inputs.
func FuzzProtocolStability(f *testing.F) {
	f.Add(uint8(0), 10.0, 0.05, 0.042)
	f.Add(uint8(3), 1e6, 0.99, 1e-6)
	f.Add(uint8(5), 1.0, 0.0, 10.0)
	f.Fuzz(func(t *testing.T, which uint8, w, loss, rtt float64) {
		protos := []Protocol{
			Reno(), Scalable(), SQRT(), CubicLinux(),
			NewRobustAIMD(1, 0.8, 0.01), DefaultPCC(), DefaultVegas(),
			DefaultTFRC(), NewHighSpeed(),
		}
		p := protos[int(which)%len(protos)]
		// Clamp inputs to the domains the simulators guarantee.
		if math.IsNaN(w) || w < MinWindow {
			w = MinWindow
		}
		if w > 1e9 {
			w = 1e9
		}
		if math.IsNaN(loss) || loss < 0 {
			loss = 0
		}
		if loss >= 1 {
			loss = 0.999999
		}
		if math.IsNaN(rtt) || rtt <= 0 {
			rtt = 1e-6
		}
		for i := 0; i < 8; i++ {
			w = p.Next(Feedback{Step: i, Window: w, RTT: rtt, Loss: loss})
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("%s produced %v", p.Name(), w)
			}
			w = Clamp(w, 1e9)
		}
	})
}
